#include "rdma/rdma.h"

#include <gtest/gtest.h>

#include "net/topology.h"

namespace repro::rdma {
namespace {

using transport::OpType;
using transport::StorageRequest;
using transport::StorageResponse;
using transport::StorageStatus;

struct RdmaFixture {
  sim::Engine eng;
  net::Network net{eng, net::NetworkParams{}, 55};
  net::TwoHosts hosts = net::build_two_hosts(net, gbps(25), us(1));
  sim::CpuPool client_cpu{eng, "c", 2, sim::CpuPool::Dispatch::kByHash};
  sim::CpuPool server_cpu{eng, "s", 2, sim::CpuPool::Dispatch::kByHash};
  RdmaParams params;
  std::unique_ptr<RdmaStack> client;
  std::unique_ptr<RdmaStack> server;

  explicit RdmaFixture(RdmaParams p = RdmaParams{}) : params(p) {
    client = std::make_unique<RdmaStack>(eng, *hosts.a, client_cpu, params,
                                         Rng(1));
    server = std::make_unique<RdmaStack>(eng, *hosts.b, server_cpu, params,
                                         Rng(2));
    server->set_handler(
        [](StorageRequest req, std::function<void(StorageResponse)> reply) {
          StorageResponse resp;
          if (req.op == OpType::kRead) {
            resp.blocks =
                transport::make_placeholder_blocks(0, req.len, 4096);
          }
          reply(std::move(resp));
        });
  }

  StorageRequest write_request(std::uint32_t len) {
    StorageRequest req;
    req.op = OpType::kWrite;
    req.len = len;
    req.blocks = transport::make_placeholder_blocks(0, len, 4096);
    return req;
  }
};

TEST(Rdma, SingleRpcRoundTrip) {
  RdmaFixture f;
  bool done = false;
  TimeNs at = 0;
  f.eng.at(0, [&] {
    f.client->call(f.hosts.b->ip(), f.write_request(4096),
                   [&](StorageResponse) {
                     done = true;
                     at = f.eng.now();
                   });
  });
  f.eng.run();
  EXPECT_TRUE(done);
  // RDMA single 4KB RPC: close to the raw fabric RTT plus a few us.
  EXPECT_LT(at, us(25));
}

TEST(Rdma, RdmaFasterThanLunaOnCpuButSimilarLatency) {
  RdmaFixture f;
  constexpr int kRpcs = 100;
  int done = 0;
  f.eng.at(0, [&] {
    for (int i = 0; i < kRpcs; ++i) {
      f.client->call(f.hosts.b->ip(), f.write_request(4096),
                     [&](StorageResponse) { ++done; });
    }
  });
  f.eng.run();
  EXPECT_EQ(done, kRpcs);
  // Network processing is offloaded: only verbs/completions hit the CPU.
  EXPECT_LT(f.client_cpu.total_busy_ns(), us(200));
}

TEST(Rdma, LargeMessageSegmentsByMtu) {
  RdmaFixture f;
  bool done = false;
  f.eng.at(0, [&] {
    f.client->call(f.hosts.b->ip(), f.write_request(65536),
                   [&](StorageResponse) { done = true; });
  });
  f.eng.run();
  EXPECT_TRUE(done);
}

TEST(Rdma, GoBackNRecoversFromLoss) {
  RdmaFixture f;
  f.net.set_loss_rate(*f.hosts.sw, 0.03);
  int done = 0;
  constexpr int kRpcs = 60;
  f.eng.at(0, [&] {
    for (int i = 0; i < kRpcs; ++i) {
      f.client->call(f.hosts.b->ip(), f.write_request(32768),
                     [&](StorageResponse) { ++done; });
    }
  });
  f.eng.run_until(seconds(30));
  EXPECT_EQ(done, kRpcs);
  EXPECT_GT(f.client->rewinds() + f.server->rewinds(), 0u);
}

TEST(Rdma, GoBackNWastesMoreThanSelectiveRepeatWould) {
  // Under loss, rewinds retransmit packets that had already arrived.
  RdmaFixture f;
  f.net.set_loss_rate(*f.hosts.sw, 0.05);
  int done = 0;
  f.eng.at(0, [&] {
    for (int i = 0; i < 30; ++i) {
      f.client->call(f.hosts.b->ip(), f.write_request(131072),
                     [&](StorageResponse) { ++done; });
    }
  });
  f.eng.run_until(seconds(30));
  EXPECT_EQ(done, 30);
  // Out-of-order arrivals at the *server* (the bulk-data receiver)
  // trigger NAKs, and the client rewinds whole windows.
  EXPECT_GT(f.server->naks(), 0u);
  EXPECT_GT(f.client->rewinds(), 0u);
}

TEST(Rdma, QpCacheMissesChargePenalty) {
  RdmaParams p;
  p.qp_cache_size = 4;  // tiny cache
  RdmaFixture f(p);
  // Talk to many "peers" (ports differ per QP -> here: single host, so
  // force distinct QPs by issuing from server side too; instead spread
  // over rpcs to one host: one QP only -> no misses beyond first).
  int done = 0;
  f.eng.at(0, [&] {
    for (int i = 0; i < 20; ++i) {
      f.client->call(f.hosts.b->ip(), f.write_request(4096),
                     [&](StorageResponse) { ++done; });
    }
  });
  f.eng.run();
  EXPECT_EQ(done, 20);
  // One QP fits the cache: only cold misses.
  EXPECT_LE(f.client->qp_cache_misses(), 4u);
}

TEST(Rdma, ManyQpsThrashTheCache) {
  // Build a fabric with many storage hosts so the client opens many QPs.
  sim::Engine eng;
  net::Network net{eng, net::NetworkParams{}, 77};
  net::ClosConfig cfg;
  cfg.compute_servers = 1;
  cfg.storage_servers = 24;
  cfg.servers_per_rack = 24;
  net::Clos clos = build_clos(net, cfg);
  sim::CpuPool ccpu{eng, "c", 2, sim::CpuPool::Dispatch::kByHash};
  RdmaParams p;
  p.qp_cache_size = 4;
  p.qp_cache_miss_penalty = us(3);
  RdmaStack client(eng, *clos.compute[0], ccpu, p, Rng(1));
  std::vector<std::unique_ptr<sim::CpuPool>> scpus;
  std::vector<std::unique_ptr<RdmaStack>> servers;
  for (auto* nic : clos.storage) {
    scpus.push_back(std::make_unique<sim::CpuPool>(
        eng, "s", 2, sim::CpuPool::Dispatch::kByHash));
    servers.push_back(std::make_unique<RdmaStack>(eng, *nic, *scpus.back(),
                                                  p, Rng(2)));
    servers.back()->set_handler(
        [](StorageRequest, std::function<void(StorageResponse)> reply) {
          reply(StorageResponse{});
        });
  }
  int done = 0;
  eng.at(0, [&] {
    for (int round = 0; round < 10; ++round) {
      for (auto* nic : clos.storage) {
        StorageRequest req;
        req.op = OpType::kWrite;
        req.len = 4096;
        req.blocks = transport::make_placeholder_blocks(0, 4096, 4096);
        client.call(nic->ip(), std::move(req),
                    [&](StorageResponse) { ++done; });
      }
    }
  });
  eng.run();
  EXPECT_EQ(done, 240);
  // 24 QPs round-robin over a 4-entry cache: nearly every touch misses.
  EXPECT_GT(client.qp_cache_misses(), 100u);
}

}  // namespace
}  // namespace repro::rdma
