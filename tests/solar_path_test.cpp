#include "solar/path.h"

#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace repro::solar {
namespace {

PathParams params() {
  PathParams p;
  p.paths_per_peer = 4;
  return p;
}

TEST(PathSet, InitializesDistinctPorts) {
  PathSet ps(params(), 40000);
  std::set<std::uint16_t> ports;
  for (auto& p : ps.paths()) ports.insert(p.port);
  EXPECT_EQ(ports.size(), 4u);
  EXPECT_EQ(*ports.begin(), 40000);
}

TEST(PathSet, PickPrefersLowRtt) {
  PathSet ps(params(), 40000);
  for (std::size_t i = 0; i < ps.paths().size(); ++i) {
    ps.paths()[i].srtt = us(10 + 10 * static_cast<int>(i));
  }
  PathState* p = ps.pick();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->srtt, us(10));
}

TEST(PathSet, PickSkipsFullWindows) {
  PathSet ps(params(), 40000);
  for (auto& p : ps.paths()) {
    p.srtt = us(10);
    p.inflight = static_cast<int>(p.cwnd);
  }
  EXPECT_EQ(ps.pick(), nullptr);
  ps.paths()[2].inflight = 0;
  PathState* p = ps.pick();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->port, ps.paths()[2].port);
}

TEST(PathSet, PickAvoidsTimeoutTaintedPaths) {
  PathSet ps(params(), 40000);
  for (auto& p : ps.paths()) p.srtt = us(10);
  ps.paths()[0].srtt = us(1);          // fastest...
  ps.paths()[0].consec_timeouts = 2;   // ...but suspicious
  PathState* p = ps.pick();
  ASSERT_NE(p, nullptr);
  EXPECT_NE(p->port, ps.paths()[0].port);
}

TEST(PathSet, PickExcludingAvoidsGivenPort) {
  PathSet ps(params(), 40000);
  const std::uint16_t first = ps.paths()[0].port;
  for (int i = 0; i < 20; ++i) {
    PathState* p = ps.pick_excluding(first);
    ASSERT_NE(p, nullptr);
    EXPECT_NE(p->port, first);
  }
}

TEST(PathSet, ForcePickAlwaysReturns) {
  PathSet ps(params(), 40000);
  for (auto& p : ps.paths()) p.inflight = 10000;  // windows all full
  PathState& p = ps.force_pick(ps.paths()[0].port);
  EXPECT_NE(p.port, ps.paths()[0].port);
}

TEST(PathSet, OnAckResetsTimeoutsAndSmoothsRtt) {
  PathSet ps(params(), 40000);
  PathState& p = ps.paths()[0];
  p.consec_timeouts = 2;
  ps.on_ack(p, us(10), {});
  EXPECT_EQ(p.consec_timeouts, 0);
  EXPECT_EQ(p.srtt, us(10));  // first sample adopted
  ps.on_ack(p, us(90), {});
  EXPECT_GT(p.srtt, us(10));
  EXPECT_LT(p.srtt, us(90));  // EWMA, not replacement
}

TEST(PathSet, ConsecutiveTimeoutsRedrawPort) {
  PathSet ps(params(), 40000);
  PathState& p = ps.paths()[0];
  const std::uint16_t old_port = p.port;
  p.srtt = us(50);
  p.inflight = 3;
  EXPECT_FALSE(ps.on_timeout(p));
  EXPECT_FALSE(ps.on_timeout(p));
  EXPECT_TRUE(ps.on_timeout(p));  // third consecutive -> failed
  EXPECT_NE(p.port, old_port);
  EXPECT_EQ(p.srtt, 0);           // fresh path, no estimate
  EXPECT_EQ(p.inflight, 0);       // stranded packets release the window
  EXPECT_EQ(p.redraws, 1u);
  EXPECT_EQ(ps.total_redraws(), 1u);
}

TEST(PathSet, AckBetweenTimeoutsPreventsRedraw) {
  PathSet ps(params(), 40000);
  PathState& p = ps.paths()[0];
  const std::uint16_t old_port = p.port;
  ps.on_timeout(p);
  ps.on_timeout(p);
  ps.on_ack(p, us(10), {});  // path works after all
  EXPECT_FALSE(ps.on_timeout(p));
  EXPECT_EQ(p.port, old_port);
}

TEST(PathSet, HpccDecreasesWindowWhenOverloaded) {
  PathParams pp = params();
  pp.hpcc_eta = 0.95;
  PathSet ps(pp, 40000);
  PathState& p = ps.paths()[0];
  const double w0 = p.cwnd;

  // Two consecutive INT samples from the same hop showing a saturated
  // link: tx advanced at full line rate and a standing queue.
  net::IntTrail first;
  first.push_back({.node = 9,
                   .timestamp = us(100),
                   .queue_bytes = 0,
                   .link_rate = gbps(25),
                   .tx_bytes = 1'000'000});
  ps.on_ack(p, us(10), first);
  net::IntTrail second;
  second.push_back({.node = 9,
                    .timestamp = us(200),
                    .queue_bytes = 200'000,
                    .link_rate = gbps(25),
                    .tx_bytes = 1'000'000 + 312'500});
  ps.on_ack(p, us(10), second);
  EXPECT_LT(p.cwnd, w0 + 1.0);  // decreased (or at least not grown)
}

TEST(PathSet, HpccGrowsWindowWhenIdle) {
  PathSet ps(params(), 40000);
  PathState& p = ps.paths()[0];
  const double w0 = p.cwnd;
  net::IntTrail first;
  first.push_back({.node = 9,
                   .timestamp = us(100),
                   .queue_bytes = 0,
                   .link_rate = gbps(25),
                   .tx_bytes = 1000});
  ps.on_ack(p, us(10), first);
  net::IntTrail second;
  second.push_back({.node = 9,
                    .timestamp = us(200),
                    .queue_bytes = 0,
                    .link_rate = gbps(25),
                    .tx_bytes = 2000});
  ps.on_ack(p, us(10), second);
  EXPECT_GT(p.cwnd, w0);
}

TEST(PathState, RtoScalesWithRttAndFloors) {
  PathParams pp = params();
  PathState p;
  p.srtt = 0;
  EXPECT_EQ(p.rto(pp), pp.timeout_min * 4);  // unprobed: patient
  p.srtt = us(10);
  EXPECT_EQ(p.rto(pp), pp.timeout_min);  // floor dominates
  p.srtt = us(1000);
  EXPECT_EQ(p.rto(pp), us(3000));  // 3x srtt
}

// Property: after any sequence of timeouts/acks, every path keeps a port
// inside its slot's allocation and inflight never goes negative.
class PathSetChaos : public ::testing::TestWithParam<int> {};

TEST_P(PathSetChaos, InvariantsHoldUnderRandomEvents) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  PathSet ps(params(), 40000);
  for (int i = 0; i < 3000; ++i) {
    auto& p = ps.paths()[rng.next_below(ps.paths().size())];
    switch (rng.next_below(4)) {
      case 0:
        if (PathState* picked = ps.pick()) picked->inflight++;
        break;
      case 1:
        p.inflight = std::max(0, p.inflight - 1);
        ps.on_ack(p, static_cast<TimeNs>(rng.next_below(200'000)), {});
        break;
      case 2:
        ps.on_timeout(p);
        break;
      case 3:
        ps.force_pick(p.port).inflight++;
        break;
    }
    for (const auto& path : ps.paths()) {
      EXPECT_GE(path.inflight, 0);
      EXPECT_GE(path.cwnd, 1.0);
      EXPECT_LE(path.cwnd, 256.0 + 1.0);
      EXPECT_GE(path.port, 40000);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathSetChaos, ::testing::Range(1, 6));

}  // namespace
}  // namespace repro::solar
