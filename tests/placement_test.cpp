// Placement control-plane tests (src/placement): rack-major schedule
// algebra and its fallbacks, legacy-policy bit-identity against the inline
// layout, params JSON round-trip + strict parsing through ScenarioSpec,
// exposure-ordered rebuild drain on a live EC fleet, the rack-domain
// durability-oracle variant, and the cluster-level admission gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "chaos/ec_oracle.h"
#include "common/crc32.h"
#include "ebs/cluster.h"
#include "ebs/scenario.h"
#include "ec/maintenance.h"
#include "placement/cluster_view.h"
#include "placement/params.h"
#include "placement/policy.h"
#include "qos/admission.h"
#include "sa/segment_table.h"

namespace repro::placement {
namespace {

using transport::IoCompleteFn;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

// ---------------------------------------------------------------------------
// Schedule algebra.

/// Three racks of two servers: ip 10+i is rack i/2 (the Clos arithmetic).
ClusterView three_racks() {
  ClusterView view;
  for (int i = 0; i < 6; ++i) {
    view.set_rack(static_cast<net::IpAddr>(10 + i), i / 2);
  }
  return view;
}

TEST(RackAwareSchedule, EveryStripeWindowSpansDistinctRacks) {
  ClusterView view = three_racks();
  RackAwareSpread policy;
  // Rotated candidate order, the way create_vd hands it over.
  const std::vector<net::IpAddr> candidates = {11, 12, 13, 14, 15, 10};
  StripeGeometry geo;
  geo.k = 2;
  geo.m = 1;
  geo.num_segments = 48;
  const auto schedule = policy.pick_stripe(1, geo, candidates, view);
  ASSERT_EQ(schedule.size(), candidates.size());
  EXPECT_EQ(std::set<net::IpAddr>(schedule.begin(), schedule.end()),
            std::set<net::IpAddr>(candidates.begin(), candidates.end()));
  // Rack-major: slot j sits in rack order[j % 3], so every window of
  // k+m = 3 consecutive slots (mod len) touches 3 distinct racks and
  // 3 distinct servers — the whole-rack fail-stop bound.
  const int need = geo.k + geo.m;
  for (std::size_t g = 0; g < schedule.size(); ++g) {
    std::set<int> racks;
    std::set<net::IpAddr> servers;
    for (int c = 0; c < need; ++c) {
      const net::IpAddr s = schedule[(g + static_cast<std::size_t>(c)) %
                                     schedule.size()];
      racks.insert(view.rack_of(s));
      servers.insert(s);
    }
    EXPECT_EQ(racks.size(), 3u) << "stripe " << g;
    EXPECT_EQ(servers.size(), 3u) << "stripe " << g;
  }
}

TEST(RackAwareSchedule, UnevenRacksTruncateToKeepWindowsDistinct) {
  // Racks of size 2, 2 and 3: the schedule must truncate every rack to the
  // smallest (2), or a mod-length window could revisit a server.
  ClusterView view;
  const std::vector<net::IpAddr> candidates = {10, 11, 20, 21, 30, 31, 32};
  view.set_rack(10, 0);
  view.set_rack(11, 0);
  view.set_rack(20, 1);
  view.set_rack(21, 1);
  view.set_rack(30, 2);
  view.set_rack(31, 2);
  view.set_rack(32, 2);
  RackAwareSpread policy;
  StripeGeometry geo;
  geo.k = 3;
  geo.m = 2;
  const auto schedule = policy.pick_stripe(1, geo, candidates, view);
  ASSERT_EQ(schedule.size(), 6u);  // 3 racks x min size 2
  const int need = geo.k + geo.m;
  for (std::size_t g = 0; g < schedule.size(); ++g) {
    std::set<net::IpAddr> servers;
    for (int c = 0; c < need; ++c) {
      servers.insert(
          schedule[(g + static_cast<std::size_t>(c)) % schedule.size()]);
    }
    EXPECT_EQ(servers.size(), static_cast<std::size_t>(need))
        << "stripe " << g << " revisits a server";
  }
}

TEST(RackAwareSchedule, FallsBackToCandidatesWhenSpreadImpossible) {
  RackAwareSpread policy;
  StripeGeometry geo;
  geo.k = 2;
  geo.m = 1;
  const std::vector<net::IpAddr> candidates = {10, 11, 12, 13};

  // Unknown rack membership: keep the legacy layout.
  ClusterView dark;
  EXPECT_EQ(policy.pick_stripe(1, geo, candidates, dark), candidates);

  // A single rack has nothing to spread across.
  ClusterView one_rack;
  for (const net::IpAddr s : candidates) one_rack.set_rack(s, 0);
  EXPECT_EQ(policy.pick_stripe(1, geo, candidates, one_rack), candidates);

  // Infeasible: ceil((k+m)/racks) exceeds the smallest rack. Two racks of
  // sizes 3 and 1 truncate to length 2 < k+m.
  ClusterView skewed;
  skewed.set_rack(10, 0);
  skewed.set_rack(11, 0);
  skewed.set_rack(12, 0);
  skewed.set_rack(13, 1);
  geo.k = 2;
  geo.m = 2;
  EXPECT_EQ(policy.pick_stripe(1, geo, candidates, skewed), candidates);
}

TEST(ExposureAwarePolicy, StartsAtLeastLoadedRackAndFeedsTheView) {
  ClusterView view = three_racks();
  ExposureAware policy;
  StripeGeometry geo;
  geo.k = 2;
  geo.m = 1;
  geo.num_segments = 12;
  const std::vector<net::IpAddr> candidates = {10, 11, 12, 13, 14, 15};

  // First VD: all racks empty, ties break to the lowest rack id.
  const auto first = policy.pick_stripe(1, geo, candidates, view);
  ASSERT_EQ(first.size(), 6u);
  EXPECT_EQ(view.rack_of(first[0]), 0);
  // 12 segments over 6 slots: 2 per slot, 4 per rack.
  for (int r = 0; r < 3; ++r) EXPECT_EQ(view.rack_fragments(r), 4u);

  // Load rack 0 and 1 further: the next VD must start its rotation at the
  // now-least-loaded rack 2 (rotation, so the cycle order is 2, 0, 1).
  view.add_rack_fragments(0, 10);
  view.add_rack_fragments(1, 10);
  const auto second = policy.pick_stripe(2, geo, candidates, view);
  ASSERT_EQ(second.size(), 6u);
  EXPECT_EQ(view.rack_of(second[0]), 2);
  EXPECT_EQ(view.rack_of(second[1]), 0);
  EXPECT_EQ(view.rack_of(second[2]), 1);
}

// ---------------------------------------------------------------------------
// Legacy identity: the policy seam must be invisible under LegacyRotated.

TEST(LegacyPolicy, BitIdenticalToInlineLayout) {
  sa::SegmentTable inline_table;
  sa::SegmentTable policy_table;
  ClusterView view = three_racks();
  LegacyRotated legacy;
  policy_table.set_policy(&legacy, &view);

  const std::vector<net::IpAddr> servers = {11, 12, 13, 14, 15, 10};
  inline_table.map_disk(1, 16ull << 20, servers);
  policy_table.map_disk(1, 16ull << 20, servers);
  inline_table.map_disk_ec(2, 24ull << 20, servers, 2, 1);
  policy_table.map_disk_ec(2, 24ull << 20, servers, 2, 1);

  EXPECT_EQ(inline_table.stripe_servers(1), policy_table.stripe_servers(1));
  EXPECT_EQ(inline_table.stripe_servers(2), policy_table.stripe_servers(2));
  for (std::uint64_t vd : {1ull, 2ull}) {
    for (std::uint64_t off = 0; off < (24ull << 20);
         off += sa::SegmentTable::kSegmentBytes) {
      const auto a = inline_table.lookup(vd, off);
      const auto b = policy_table.lookup(vd, off);
      ASSERT_EQ(a.has_value(), b.has_value()) << "vd " << vd << " off " << off;
      if (a.has_value()) {
        EXPECT_EQ(a->segment_id, b->segment_id);
        EXPECT_EQ(a->block_server, b->block_server);
      }
    }
  }
  // The span accessor views the same interned pool the copying one returns.
  const auto span = policy_table.stripe_server_span(2);
  const auto copy = policy_table.stripe_servers(2);
  ASSERT_EQ(span.size(), copy.size());
  EXPECT_TRUE(std::equal(span.begin(), span.end(), copy.begin()));
}

// ---------------------------------------------------------------------------
// Params JSON through the scenario layer.

TEST(PlacementParamsJson, RoundTripsThroughScenario) {
  ebs::ScenarioSpec spec;
  spec.placement.enabled = true;
  spec.placement.policy = PolicyKind::kRackAwareSpread;
  spec.placement.cluster_admission = true;
  spec.placement.cluster_inflight_limit = 7;
  ebs::ScenarioSpec parsed;
  std::string error;
  ASSERT_TRUE(ebs::scenario_from_json(spec.to_json(), &parsed, &error))
      << error;
  EXPECT_TRUE(parsed.placement.enabled);
  EXPECT_EQ(parsed.placement.policy, PolicyKind::kRackAwareSpread);
  EXPECT_TRUE(parsed.placement.cluster_admission);
  EXPECT_EQ(parsed.placement.cluster_inflight_limit, 7);

  // Absent block = subsystem off = the historical spec.
  ebs::ScenarioSpec absent;
  ASSERT_TRUE(
      ebs::scenario_from_json(ebs::ScenarioSpec{}.to_json(), &absent, &error))
      << error;
  EXPECT_FALSE(absent.placement.enabled);
}

TEST(PlacementParamsJson, StrictParseRejectsTyposAndUnknownPolicies) {
  ebs::ScenarioSpec out;
  std::string error;
  // A typo'd knob must not quietly run the default.
  EXPECT_FALSE(ebs::scenario_from_json(
      R"({"placement":{"enabled":true,"polcy":"rack-aware"}})", &out, &error));
  EXPECT_NE(error.find("scenario.placement"), std::string::npos) << error;
  // Unknown policy spelling is an error, not legacy-by-accident.
  EXPECT_FALSE(ebs::scenario_from_json(
      R"({"placement":{"enabled":true,"policy":"rackaware"}})", &out, &error));
  // The limit must stay positive.
  EXPECT_FALSE(ebs::scenario_from_json(
      R"({"placement":{"enabled":true,"cluster_inflight_limit":0}})", &out,
      &error));
}

// ---------------------------------------------------------------------------
// Live-fleet helpers (same shape as the ec_test drivers).

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return v;
}

IoResult run_one_io(sim::Engine& eng, ebs::Cluster& cluster, IoRequest io) {
  IoResult out;
  bool done = false;
  eng.at(eng.now(), [&] {
    cluster.compute(0).submit_io(std::move(io), [&](IoResult r) {
      out = std::move(r);
      done = true;
    });
  });
  while (!done && eng.step()) {
  }
  EXPECT_TRUE(done);
  return out;
}

IoRequest write_io(std::uint64_t vd, std::uint64_t offset, std::uint32_t len) {
  IoRequest io;
  io.vd_id = vd;
  io.op = OpType::kWrite;
  io.offset = offset;
  io.len = len;
  io.payload = transport::make_placeholder_blocks(offset, len, 4096);
  for (auto& blk : io.payload) {
    blk.data = pattern(blk.len, blk.lba + 1);
    blk.crc = crc32_raw(blk.data);
  }
  return io;
}

ebs::ClusterParams placement_fleet(int k, int m, PolicyKind policy,
                                   bool enabled = true) {
  ebs::ClusterParams p;
  p.topo.compute_servers = 1;
  p.topo.storage_servers = 6;
  p.topo.servers_per_rack = 2;  // racks {0,1},{2,3},{4,5}
  p.stack = ebs::StackKind::kSolar;
  p.seed = 11;
  p.block_server.store_payload = true;
  p.ec.enabled = true;
  p.ec.k = k;
  p.ec.m = m;
  p.placement.enabled = enabled;
  p.placement.policy = policy;
  return p;
}

// ---------------------------------------------------------------------------
// Rack-domain durability oracle: the same whole-rack outage that is data
// loss under the legacy layout is survivable under RackAwareSpread.

TEST(RackDurabilityOracle, RackAwareSurvivesWhatLegacyLoses) {
  auto run_layout = [](PolicyKind policy, bool enabled) {
    sim::Engine eng;
    ebs::Cluster cluster(eng, placement_fleet(2, 1, policy, enabled));
    const std::uint64_t vd = cluster.create_vd(24ull << 20);
    // Commit both data cells of stripe 0 row 0 so recoverability really
    // needs k = 2 of the 3 fragment values.
    EXPECT_EQ(run_one_io(eng, cluster, write_io(vd, 0, 4096)).status,
              StorageStatus::kOk);
    EXPECT_EQ(run_one_io(eng, cluster,
                         write_io(vd, sa::SegmentTable::kSegmentBytes, 4096))
                  .status,
              StorageStatus::kOk);
    std::vector<int> loss_racks;
    for (int rack = 0; rack < 3; ++rack) {
      if (!chaos::audit_ec_rack_durability(cluster, rack, eng.now()).empty()) {
        loss_racks.push_back(rack);
      }
    }
    return loss_racks;
  };

  // Legacy rotated layout: vd 1's pool starts at server 1, so stripe 0
  // lands on servers 1, 2, 3 — rack 1 holds two of the three fragments and
  // its fail-stop is unrecoverable data loss.
  EXPECT_FALSE(run_layout(PolicyKind::kLegacyRotated, false).empty());

  // RackAwareSpread bounds any rack to ceil(3/3) = 1 fragment per stripe:
  // every single-rack fail-stop stays recoverable.
  EXPECT_TRUE(run_layout(PolicyKind::kRackAwareSpread, true).empty());
}

// ---------------------------------------------------------------------------
// Exposure-ordered rebuild drain.

TEST(ExposureDrain, MostExposedSegmentsDrainFirst) {
  sim::Engine eng;
  ebs::Cluster cluster(eng,
                       placement_fleet(2, 2, PolicyKind::kExposureAware));
  // 64 MB, k = 2: 32 data segments = 16 stripes over a 6-slot schedule.
  const std::uint64_t vd = cluster.create_vd(64ull << 20);
  const auto pool = cluster.segments().stripe_servers(vd);
  ASSERT_EQ(pool.size(), 6u);

  // One committed row per stripe (first data cell) so every rebuild moves
  // real bytes.
  for (std::uint64_t g = 0; g < 16; ++g) {
    ASSERT_EQ(run_one_io(eng, cluster,
                         write_io(vd,
                                  g * 2 * sa::SegmentTable::kSegmentBytes,
                                  4096))
                  .status,
              StorageStatus::kOk);
  }

  // Fail adjacent schedule slots 0 and 1: stripes whose 4-slot window
  // covers both (g % 6 in {0, 4, 5}) are doubly exposed, g % 6 in {1, 3}
  // singly, g % 6 == 2 not at all. Adjacent slots keep every doubly-lost
  // pair rebuildable in any order (data+data decodes from the two live
  // parities, parity+parity recomputes from the live data; the mixed
  // g % 6 == 5 pair queues its data fragment first). Stop the NICs for
  // real so probe reads cannot revive the servers mid-drain.
  const net::IpAddr a = pool[0];
  const net::IpAddr b = pool[1];
  auto nic_of = [&](net::IpAddr ip) -> net::Nic& {
    for (int i = 0; i < cluster.num_storage(); ++i) {
      if (cluster.storage(i).nic().ip() == ip) return cluster.storage(i).nic();
    }
    ADD_FAILURE() << "no storage nic with ip " << ip;
    return cluster.storage(0).nic();
  };
  cluster.network().fail_device_stop(nic_of(a));
  cluster.network().fail_device_stop(nic_of(b));
  ec::EcClient* ec = cluster.compute(0).ec();
  // Mark both dead in the client first so the first rebuild already
  // excludes the second server from its source reads.
  ec->mark_server(a, false);
  ec->mark_server(b, false);
  ec::MaintenanceAgent* agent = cluster.compute(0).maintenance();
  ASSERT_NE(agent, nullptr);
  // The first force_server_down pumps its first rebuild synchronously;
  // seed the control plane with the full outage first so that pop already
  // sees both deaths (the cluster view learns of a correlated failure
  // before per-segment repair begins).
  cluster.placement_view().set_health(b, false);
  agent->force_server_down(a);
  agent->force_server_down(b);

  // Stopped NICs keep SOLAR path probes alive, so drain in bounded slices.
  const TimeNs deadline = eng.now() + seconds(20);
  while (!agent->idle() && eng.now() < deadline) {
    eng.run_until(eng.now() + ms(50));
  }
  ASSERT_TRUE(agent->idle())
      << "backlog=" << agent->rebuild_backlog()
      << " stalled=" << agent->stalled_segments()
      << " pending_repairs=" << agent->pending_repairs()
      << " rebuilt=" << agent->stats().segments_rebuilt
      << " log=" << agent->rebuild_log().size();

  const auto& log = agent->rebuild_log();
  // Each failed slot backs 10 segments (16 stripes, 4 fragments each over
  // 6 slots) — every one must have been genuinely rebuilt.
  ASSERT_EQ(log.size(), 20u);
  int doubly = 0;
  for (const auto& rec : log) doubly += rec.exposure >= 2 ? 1 : 0;
  // Seven stripes are doubly exposed; their first-rebuilt segment pops at
  // exposure 2 (the sibling then drops to 1 — its lost fragment was
  // restored — so the exposure-ordered pump drains one segment per
  // doubly-exposed stripe before any singly-exposed work).
  EXPECT_EQ(doubly, 7);
  // Drain-order invariant: once the most-exposed class is visible, at-pop
  // exposure never increases (no new deaths arrive after the second stop).
  std::size_t first2 = log.size();
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].exposure >= 2) {
      first2 = i;
      break;
    }
  }
  ASSERT_LT(first2, log.size());
  for (std::size_t i = first2 + 1; i < log.size(); ++i) {
    EXPECT_LE(log[i].exposure, log[i - 1].exposure)
        << "at-pop exposure increased at record " << i;
  }
}

// ---------------------------------------------------------------------------
// Cluster-level admission gate.

TEST(ClusterAdmission, GateRejectsAtAggregateLimitWithGuaranteedBypass) {
  sim::Engine eng;
  qos::SloTable slos;
  qos::SloSpec guaranteed;
  guaranteed.guaranteed_iops = 1000.0;
  guaranteed.cls = qos::SloClass::kGuaranteed;
  slos.set(7, guaranteed);
  sa::QosTable qtab;
  qos::QosParams qp;
  qp.enabled = true;
  qp.early_reject = false;  // isolate the cluster gate
  qos::NodeAdmission adm(eng, slos, qtab, qp);
  ClusterView view;
  adm.set_cluster_gate(&view, 2);

  std::vector<IoCompleteFn> inflight;
  auto pass = [&inflight](IoRequest, IoCompleteFn done) {
    inflight.push_back(std::move(done));
  };
  auto make_io = [](std::uint64_t vd) {
    IoRequest io;
    io.vd_id = vd;
    io.op = OpType::kRead;
    io.len = 4096;
    return io;
  };
  int rejected = 0;
  auto done = [&rejected](IoResult res) {
    if (res.status == StorageStatus::kRejected) ++rejected;
  };

  adm.submit(make_io(1), done, pass);
  adm.submit(make_io(1), done, pass);
  EXPECT_EQ(view.cluster_inflight(), 2);
  // At the limit: best-effort traffic sheds at the doorbell...
  adm.submit(make_io(1), done, pass);
  eng.run();
  EXPECT_EQ(rejected, 1);
  EXPECT_EQ(view.cluster_inflight(), 2);
  // ...but a guaranteed tenant under its floor still gets in.
  adm.submit(make_io(7), done, pass);
  EXPECT_EQ(view.cluster_inflight(), 3);

  for (auto& fn : inflight) {
    IoResult res;
    res.status = StorageStatus::kOk;
    res.completed_at = eng.now();
    fn(std::move(res));
  }
  EXPECT_EQ(view.cluster_inflight(), 0);
  EXPECT_EQ(adm.stats().admitted[0] + adm.stats().admitted[1], 3u);
  EXPECT_EQ(adm.stats().rejected[0] + adm.stats().rejected[1], 1u);
}

}  // namespace
}  // namespace repro::placement
