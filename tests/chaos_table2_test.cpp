// Locks Table 2's qualitative pattern under the chaos harness: silent
// failures (dead ToR, blackhole) hang LUNA — whose 5-tuples stay pinned to
// the broken element — and never SOLAR, which fails over after consecutive
// per-path timeouts; fail-stop failures (carrier loss) hang neither stack.
// This is the bench's "pattern of zeros" expressed as hard assertions, so
// a regression in path failover or carrier detection fails CI instead of
// just reshaping a table.
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"

namespace repro::chaos {
namespace {

using ebs::StackKind;

FaultPlan one_event(FaultKind kind, FaultTarget target, TimeNs duration,
                    double magnitude = 0.0) {
  FaultPlan plan;
  plan.name = "table2";
  FaultEvent e;
  e.at = ms(20);
  e.duration = duration;
  e.kind = kind;
  e.target = target;
  e.magnitude = magnitude;
  plan.events.push_back(e);
  return plan;
}

RunReport run(StackKind stack, const FaultPlan& plan) {
  HarnessConfig cfg;
  cfg.stack = stack;
  cfg.seed = 1234;
  cfg.plan = plan;
  cfg.active = ms(1500);
  cfg.poisson_iops = 1200.0;
  cfg.read_fraction = 0.2;  // paper's R:W = 1:4
  return run_chaos(cfg);
}

TEST(ChaosTable2, SilentTorFailureHangsLunaNeverSolar) {
  const FaultPlan plan = one_event(
      FaultKind::kDeviceSilent, {TargetKind::kComputeTor, 0, -1}, ms(1200));
  const RunReport luna = run(StackKind::kLuna, plan);
  const RunReport solar = run(StackKind::kSolar, plan);
  EXPECT_GT(luna.hangs, 0u);   // pinned 5-tuples wait out the outage
  EXPECT_EQ(solar.hangs, 0u);  // multi-path failover dodges the dead ToR
  // LUNA's hung I/Os are the *signal*, not a bug: they still complete
  // within the recovery SLO once the ToR is repaired.
  EXPECT_TRUE(luna.ok()) << luna.violations.front().oracle << ": "
                         << luna.violations.front().detail;
  EXPECT_TRUE(solar.ok()) << solar.violations.front().oracle << ": "
                          << solar.violations.front().detail;
}

TEST(ChaosTable2, TorBlackholeHangsLunaNeverSolar) {
  const FaultPlan plan = one_event(
      FaultKind::kBlackhole, {TargetKind::kComputeTor, 1, -1}, ms(1200), 0.5);
  ASSERT_TRUE(hang_oracle_applicable(StackKind::kSolar, plan));
  const RunReport luna = run(StackKind::kLuna, plan);

  HarnessConfig solar_cfg;
  solar_cfg.stack = StackKind::kSolar;
  solar_cfg.seed = 1234;
  solar_cfg.plan = plan;
  solar_cfg.active = ms(1500);
  solar_cfg.poisson_iops = 1200.0;
  solar_cfg.read_fraction = 0.2;
  solar_cfg.oracle.hang_oracle = true;  // SOLAR-zero as a hard invariant
  const RunReport solar = run_chaos(solar_cfg);

  EXPECT_GT(luna.hangs, 0u);
  EXPECT_EQ(solar.hangs, 0u);
  EXPECT_TRUE(luna.ok()) << luna.violations.front().oracle << ": "
                         << luna.violations.front().detail;
  EXPECT_TRUE(solar.ok()) << solar.violations.front().oracle << ": "
                          << solar.violations.front().detail;
}

TEST(ChaosTable2, FailStopSpineHangsNeitherStack) {
  // Carrier loss is detected: both stacks steer around the dead spine
  // within the detection delay, far under the 1 s hang threshold.
  const FaultPlan plan = one_event(
      FaultKind::kDeviceStop, {TargetKind::kComputeSpine, 0, -1}, ms(1200));
  const RunReport luna = run(StackKind::kLuna, plan);
  const RunReport solar = run(StackKind::kSolar, plan);
  EXPECT_EQ(luna.hangs, 0u);
  EXPECT_EQ(solar.hangs, 0u);
  EXPECT_TRUE(luna.ok());
  EXPECT_TRUE(solar.ok());
}

TEST(ChaosTable2, TorPortFailureHangsNeitherStack) {
  const FaultPlan plan = one_event(
      FaultKind::kLinkFail, {TargetKind::kComputeNic, 0, 0}, ms(1200));
  const RunReport luna = run(StackKind::kLuna, plan);
  const RunReport solar = run(StackKind::kSolar, plan);
  EXPECT_EQ(luna.hangs, 0u);
  EXPECT_EQ(solar.hangs, 0u);
  EXPECT_TRUE(luna.ok());
  EXPECT_TRUE(solar.ok());
}

TEST(ChaosTable2, TorRebootComposesFailStopAndSilentWindow) {
  // The bench's classic: links drop (detected), come back 1 s later with
  // the FIB unprogrammed — a silent blackhole window right after the
  // fail-stop repair. Kind-specific reverts are what make this composable
  // as two plan events.
  FaultPlan plan;
  plan.name = "tor-reboot";
  FaultEvent stop;
  stop.at = ms(20);
  stop.duration = seconds(1);
  stop.kind = FaultKind::kDeviceStop;
  stop.target = {TargetKind::kComputeTor, 0, -1};
  plan.events.push_back(stop);
  FaultEvent silent;
  silent.at = ms(20) + seconds(1);  // onset coincides with the repair
  silent.duration = 0;  // ops repair the FIB much later (at repair_all)
  silent.kind = FaultKind::kDeviceSilent;
  silent.target = {TargetKind::kComputeTor, 0, -1};
  plan.events.push_back(silent);

  // The silent window must outlast the 1 s hang threshold for pinned
  // LUNA I/Os to cross the line.
  HarnessConfig cfg;
  cfg.seed = 1234;
  cfg.plan = plan;
  cfg.active = ms(2300);
  cfg.poisson_iops = 1200.0;
  cfg.read_fraction = 0.2;
  cfg.stack = StackKind::kLuna;
  const RunReport luna = run_chaos(cfg);
  cfg.stack = StackKind::kSolar;
  const RunReport solar = run_chaos(cfg);
  EXPECT_GT(luna.hangs, 0u);   // the unprogrammed-FIB window pins LUNA
  EXPECT_EQ(solar.hangs, 0u);
  EXPECT_TRUE(luna.ok());
  EXPECT_TRUE(solar.ok());
}

}  // namespace
}  // namespace repro::chaos
