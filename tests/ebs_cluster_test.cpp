#include "ebs/cluster.h"

#include <gtest/gtest.h>

#include "workload/fio.h"

namespace repro::ebs {
namespace {

using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

ClusterParams small_params(StackKind stack) {
  ClusterParams p;
  p.topo.compute_servers = 2;
  p.topo.storage_servers = 4;
  p.topo.servers_per_rack = 4;
  p.stack = stack;
  p.seed = 99;
  return p;
}

IoResult run_one_io(sim::Engine& eng, Cluster& cluster, IoRequest io) {
  IoResult out;
  bool done = false;
  eng.at(eng.now(), [&] {
    cluster.compute(0).submit_io(std::move(io), [&](IoResult r) {
      out = std::move(r);
      done = true;
    });
  });
  while (!done && eng.step()) {
  }
  EXPECT_TRUE(done);
  return out;
}

IoRequest write_io(std::uint64_t vd, std::uint64_t offset,
                   std::uint32_t len) {
  IoRequest io;
  io.vd_id = vd;
  io.op = OpType::kWrite;
  io.offset = offset;
  io.len = len;
  io.payload = transport::make_placeholder_blocks(offset, len, 4096);
  return io;
}

class ClusterStacks : public ::testing::TestWithParam<StackKind> {};

TEST_P(ClusterStacks, WriteAndReadComplete) {
  sim::Engine eng;
  Cluster cluster(eng, small_params(GetParam()));
  const std::uint64_t vd = cluster.create_vd(1ull << 30);

  auto wres = run_one_io(eng, cluster, write_io(vd, 0, 16384));
  EXPECT_EQ(wres.status, StorageStatus::kOk);

  IoRequest rio;
  rio.vd_id = vd;
  rio.op = OpType::kRead;
  rio.offset = 0;
  rio.len = 16384;
  auto rres = run_one_io(eng, cluster, std::move(rio));
  EXPECT_EQ(rres.status, StorageStatus::kOk);
}

TEST_P(ClusterStacks, TraceComponentsPopulated) {
  sim::Engine eng;
  Cluster cluster(eng, small_params(GetParam()));
  const std::uint64_t vd = cluster.create_vd(1ull << 30);
  auto res = run_one_io(eng, cluster, write_io(vd, 4096, 4096));
  ASSERT_EQ(res.status, StorageStatus::kOk);
  EXPECT_GT(res.trace.fn_ns, 0);
  EXPECT_GT(res.trace.bn_ns, 0);
  EXPECT_GT(res.trace.ssd_ns, 0);
}

INSTANTIATE_TEST_SUITE_P(AllStacks, ClusterStacks,
                         ::testing::Values(StackKind::kKernelTcp,
                                           StackKind::kLuna,
                                           StackKind::kRdma,
                                           StackKind::kSolarStar,
                                           StackKind::kSolar),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& c : n) {
                             if (c == '-' || c == '*') c = '_';
                           }
                           return n;
                         });

TEST(Cluster, LatencyOrderingMatchesPaper) {
  // Single 4KB write: kernel > luna > solar (Fig. 6 medians).
  std::map<StackKind, TimeNs> median;
  for (StackKind stack : {StackKind::kKernelTcp, StackKind::kLuna,
                          StackKind::kSolar}) {
    sim::Engine eng;
    Cluster cluster(eng, small_params(stack));
    const std::uint64_t vd = cluster.create_vd(1ull << 30);
    SampleSet lat;
    for (int i = 0; i < 60; ++i) {
      const TimeNs t0 = eng.now();
      auto res = run_one_io(eng, cluster,
                            write_io(vd, (i % 128) * 4096, 4096));
      ASSERT_EQ(res.status, StorageStatus::kOk);
      lat.record(static_cast<double>(eng.now() - t0));
    }
    median[stack] = static_cast<TimeNs>(lat.percentile(0.5));
  }
  EXPECT_GT(median[StackKind::kKernelTcp], median[StackKind::kLuna]);
  EXPECT_GT(median[StackKind::kLuna], median[StackKind::kSolar]);
}

TEST(Cluster, DpuHostedLunaPaysInternalPcie) {
  auto params = small_params(StackKind::kLuna);
  params.on_dpu = true;
  sim::Engine eng;
  Cluster cluster(eng, params);
  const std::uint64_t vd = cluster.create_vd(1ull << 30);
  auto res = run_one_io(eng, cluster, write_io(vd, 0, 65536));
  ASSERT_EQ(res.status, StorageStatus::kOk);
  ASSERT_NE(cluster.compute(0).dpu(), nullptr);
  EXPECT_GE(cluster.compute(0).dpu()->internal_pcie().bytes_transferred(),
            2u * 65536);
}

TEST(Cluster, VdsStripeAcrossStorageNodes) {
  sim::Engine eng;
  Cluster cluster(eng, small_params(StackKind::kLuna));
  const std::uint64_t vd = cluster.create_vd(16ull << 20);  // 8 segments
  std::set<net::IpAddr> servers;
  for (int s = 0; s < 8; ++s) {
    auto loc = cluster.segments().lookup(
        vd, static_cast<std::uint64_t>(s) * sa::SegmentTable::kSegmentBytes);
    ASSERT_TRUE(loc.has_value());
    servers.insert(loc->block_server);
  }
  EXPECT_EQ(servers.size(), 4u);
}

TEST(Cluster, FioJobDrivesCluster) {
  sim::Engine eng;
  Cluster cluster(eng, small_params(StackKind::kSolar));
  const std::uint64_t vd = cluster.create_vd(1ull << 30);
  workload::FioConfig cfg;
  cfg.vd_id = vd;
  cfg.vd_size = 1ull << 30;
  cfg.block_size = 4096;
  cfg.iodepth = 8;
  cfg.read_fraction = 0.5;
  cfg.max_ios = 500;
  workload::FioJob job(
      eng,
      [&](IoRequest io, transport::IoCompleteFn done) {
        cluster.compute(0).submit_io(std::move(io), std::move(done));
      },
      cfg, Rng(5));
  eng.at(0, [&] { job.start(); });
  eng.run();
  EXPECT_EQ(job.completed(), 500u);
  EXPECT_EQ(job.metrics().errors(), 0u);
  EXPECT_EQ(job.metrics().hangs(), 0u);
  EXPECT_GT(job.metrics().iops(eng.now()), 0.0);
}

}  // namespace
}  // namespace repro::ebs
