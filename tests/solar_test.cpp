#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/histogram.h"
#include "net/topology.h"
#include "solar/client.h"
#include "solar/server.h"

namespace repro::solar {
namespace {

using transport::DataBlock;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

struct SolarFixture {
  sim::Engine eng;
  net::Network net{eng, net::NetworkParams{}, 2024};
  net::Clos clos;
  dpu::DpuParams dpu_params;
  std::unique_ptr<dpu::AliDpu> dpu;
  sa::SegmentTable segments;
  sa::QosTable qos;
  SolarParams params;
  std::unique_ptr<SolarClient> client;
  storage::BlockServerParams bs_params;
  std::vector<std::unique_ptr<storage::BlockServer>> block_servers;
  std::vector<std::unique_ptr<sim::CpuPool>> server_cpus;
  std::vector<std::unique_ptr<SolarServer>> servers;

  explicit SolarFixture(SolarParams p = SolarParams{},
                        dpu::FpgaFaults faults = {},
                        bool store_payload = true, int storage_nodes = 2) {
    net::ClosConfig cfg;
    cfg.compute_servers = 1;
    cfg.storage_servers = storage_nodes;
    cfg.servers_per_rack = std::max(storage_nodes, 1);
    cfg.spines_per_pod = 2;
    cfg.core_switches = 2;
    clos = build_clos(net, cfg);

    dpu_params.fpga.faults = faults;
    dpu = std::make_unique<dpu::AliDpu>(eng, dpu_params, Rng(3));
    params = p;
    client = std::make_unique<SolarClient>(eng, *dpu, *clos.compute[0],
                                           segments, qos, params, Rng(4));
    bs_params.store_payload = store_payload;
    std::vector<net::IpAddr> server_ips;
    int idx = 0;
    for (auto* nic : clos.storage) {
      block_servers.push_back(
          std::make_unique<storage::BlockServer>(eng, bs_params,
                                                 Rng(10 + idx)));
      server_cpus.push_back(std::make_unique<sim::CpuPool>(
          eng, "scpu", 4, sim::CpuPool::Dispatch::kByHash));
      servers.push_back(std::make_unique<SolarServer>(
          eng, *nic, *server_cpus.back(), *block_servers.back(),
          SolarServerParams{}, Rng(20 + idx)));
      server_ips.push_back(nic->ip());
      ++idx;
    }
    segments.map_disk(1, 64 * sa::SegmentTable::kSegmentBytes, server_ips);
  }

  IoResult run_io(IoRequest io, TimeNs deadline = seconds(60)) {
    IoResult out;
    bool done = false;
    const TimeNs t0 = eng.now();
    eng.at(eng.now(), [&] {
      client->submit_io(std::move(io), [&](IoResult r) {
        out = std::move(r);
        done = true;
      });
    });
    // Step event-by-event so the clock stops the moment the I/O finishes.
    while (!done && eng.now() < t0 + deadline && eng.step()) {
    }
    EXPECT_TRUE(done) << "I/O did not complete";
    if (!done) out.status = StorageStatus::kTimeout;
    return out;
  }

  IoRequest write_io(std::uint64_t offset, std::uint32_t len, Rng& rng,
                     bool real_payload = true) {
    IoRequest io;
    io.vd_id = 1;
    io.op = OpType::kWrite;
    io.offset = offset;
    io.len = len;
    io.payload = transport::make_placeholder_blocks(offset, len, 4096);
    if (real_payload) {
      for (auto& blk : io.payload) {
        blk.data.resize(blk.len);
        for (auto& b : blk.data) b = static_cast<std::uint8_t>(rng.next());
      }
    }
    return io;
  }

  IoRequest read_io(std::uint64_t offset, std::uint32_t len) {
    IoRequest io;
    io.vd_id = 1;
    io.op = OpType::kRead;
    io.offset = offset;
    io.len = len;
    return io;
  }
};

TEST(Solar, WriteReadRoundTripPreservesData) {
  SolarFixture f;
  Rng rng(1);
  auto wio = f.write_io(8192, 16384, rng);
  auto expected = wio.payload;
  auto wres = f.run_io(std::move(wio));
  ASSERT_EQ(wres.status, StorageStatus::kOk);

  auto rres = f.run_io(f.read_io(8192, 16384));
  ASSERT_EQ(rres.status, StorageStatus::kOk);
  ASSERT_EQ(rres.read_data.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rres.read_data[i].lba, expected[i].lba);
    EXPECT_EQ(rres.read_data[i].data, expected[i].data);
  }
}

TEST(Solar, EncryptedWriteStoresCiphertextAndReadsBack) {
  SolarParams p;
  p.encrypt = true;
  SolarFixture f(p);
  Rng rng(2);
  auto wio = f.write_io(0, 4096, rng);
  const auto plain = wio.payload[0].data;
  ASSERT_EQ(f.run_io(std::move(wio)).status, StorageStatus::kOk);

  auto loc = f.segments.lookup(1, 0);
  ASSERT_TRUE(loc.has_value());
  bool found = false;
  for (auto& bs : f.block_servers) {
    if (auto blk = bs->store().get(loc->segment_id, 0)) {
      EXPECT_NE(blk->data, plain);  // ciphertext at rest
      found = true;
    }
  }
  EXPECT_TRUE(found);

  auto rres = f.run_io(f.read_io(0, 4096));
  ASSERT_EQ(rres.status, StorageStatus::kOk);
  ASSERT_EQ(rres.read_data.size(), 1u);
  EXPECT_EQ(rres.read_data[0].data, plain);
}

TEST(Solar, WriteLatencyIsTensOfMicroseconds) {
  SolarFixture f;
  Rng rng(3);
  SampleSet lat;
  for (int i = 0; i < 100; ++i) {
    const TimeNs t0 = f.eng.now();
    auto res = f.run_io(f.write_io((i % 256) * 4096, 4096, rng));
    ASSERT_EQ(res.status, StorageStatus::kOk);
    lat.record(to_us(f.eng.now() - t0));
  }
  // Fig. 6: SOLAR 4KB write ~ tens of us end-to-end, SA span tiny.
  EXPECT_LT(lat.percentile(0.5), 80.0);
  EXPECT_GT(lat.percentile(0.5), 15.0);
}

TEST(Solar, SaSpanIsMicroscopicComparedToSoftwareSa) {
  SolarFixture f;
  Rng rng(4);
  auto res = f.run_io(f.write_io(0, 4096, rng));
  ASSERT_EQ(res.status, StorageStatus::kOk);
  EXPECT_LT(res.trace.sa_ns, us(10));
  EXPECT_GT(res.trace.fn_ns, 0);
  EXPECT_GT(res.trace.ssd_ns, 0);
}

TEST(Solar, LargeWriteUsesOnePacketPerBlock) {
  SolarFixture f;
  Rng rng(5);
  auto res = f.run_io(f.write_io(0, 65536, rng, /*real_payload=*/false));
  ASSERT_EQ(res.status, StorageStatus::kOk);
  EXPECT_EQ(f.client->stats().data_pkts_tx, 16u);  // 64K / 4K
  EXPECT_EQ(f.client->stats().rpcs, 1u);
}

TEST(Solar, IoSplitsAcrossSegmentsToDifferentServers) {
  SolarFixture f;
  Rng rng(6);
  const std::uint64_t start = sa::SegmentTable::kSegmentBytes - 8192;
  auto res = f.run_io(f.write_io(start, 16384, rng, false));
  ASSERT_EQ(res.status, StorageStatus::kOk);
  EXPECT_EQ(f.client->stats().rpcs, 2u);
  // The two segments live on different block servers (striped).
  EXPECT_GT(f.block_servers[0]->store().blocks_written(), 0u);
  EXPECT_GT(f.block_servers[1]->store().blocks_written(), 0u);
}

TEST(Solar, MultiplePathsAreUsed) {
  SolarFixture f;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(f.run_io(f.write_io(static_cast<std::uint64_t>(i) * 65536,
                                  65536, rng, false))
                  .status,
              StorageStatus::kOk);
  }
  // All four paths to the peer should have carried traffic: every path
  // slot has an RTT estimate.
  auto& ps = f.client->path_set(f.clos.storage[0]->ip());
  int probed = 0;
  for (auto& p : ps.paths()) probed += (p.srtt > 0);
  EXPECT_EQ(probed, 4);
}

TEST(Solar, SurvivesRandomLossWithSelectiveRetransmit) {
  SolarFixture f;
  for (auto* core : f.clos.cores) f.net.set_loss_rate(*core, 0.05);
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    auto res = f.run_io(f.write_io(static_cast<std::uint64_t>(i) * 32768,
                                   32768, rng, false));
    ASSERT_EQ(res.status, StorageStatus::kOk) << i;
  }
  EXPECT_GT(f.client->stats().retransmits, 0u);
}

TEST(Solar, ReadSurvivesLoss) {
  SolarFixture f;
  Rng rng(9);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(f.run_io(f.write_io(static_cast<std::uint64_t>(i) * 16384,
                                  16384, rng))
                  .status,
              StorageStatus::kOk);
  }
  for (auto* core : f.clos.cores) f.net.set_loss_rate(*core, 0.08);
  for (int i = 0; i < 8; ++i) {
    auto res = f.run_io(f.read_io(static_cast<std::uint64_t>(i) * 16384,
                                  16384));
    ASSERT_EQ(res.status, StorageStatus::kOk) << i;
    EXPECT_EQ(res.read_data.size(), 4u);
  }
}

TEST(Solar, SilentToRDeathRecoversInMilliseconds) {
  // Kill the ToR carrying some of the paths *silently* (carrier up).
  // SOLAR's consecutive-timeout failover must route around it fast.
  SolarFixture f;
  Rng rng(10);
  ASSERT_EQ(f.run_io(f.write_io(0, 4096, rng)).status, StorageStatus::kOk);

  f.net.fail_device_silent(*f.clos.compute_tors[0]);
  const TimeNs t0 = f.eng.now();
  auto res = f.run_io(f.write_io(4096, 4096, rng));
  EXPECT_EQ(res.status, StorageStatus::kOk);
  const TimeNs recovery = f.eng.now() - t0;
  // Well under a second (the paper's I/O-hang threshold); typically a few
  // packet timeouts.
  EXPECT_LT(recovery, ms(100));
}

TEST(Solar, BlackholeOnSubsetOfFlowsIsRoutedAround) {
  SolarFixture f;
  Rng rng(11);
  f.net.set_blackhole(*f.clos.cores[0], 0.5);
  for (int i = 0; i < 20; ++i) {
    const TimeNs t0 = f.eng.now();
    auto res = f.run_io(f.write_io(static_cast<std::uint64_t>(i) * 8192,
                                   8192, rng, false));
    ASSERT_EQ(res.status, StorageStatus::kOk);
    EXPECT_LT(f.eng.now() - t0, seconds(1)) << "I/O hang at " << i;
  }
}

TEST(Solar, CrcEngineFaultCaughtByAggregationAndRepaired) {
  dpu::FpgaFaults faults;
  faults.crc_engine_error_rate = 0.3;
  SolarFixture f(SolarParams{}, faults);
  Rng rng(12);
  for (int i = 0; i < 20; ++i) {
    auto wio = f.write_io(static_cast<std::uint64_t>(i) * 16384, 16384, rng);
    auto expected = wio.payload;
    auto res = f.run_io(std::move(wio));
    ASSERT_EQ(res.status, StorageStatus::kOk) << i;
  }
  EXPECT_GT(f.client->stats().agg_check_failures, 0u);
  EXPECT_GT(f.client->stats().blocks_repaired, 0u);
}

TEST(Solar, PreCrcBitflipRepairedEndToEnd) {
  dpu::FpgaFaults faults;
  faults.pre_crc_bitflip_rate = 0.2;
  SolarFixture f(SolarParams{}, faults);
  Rng rng(13);
  auto wio = f.write_io(0, 16384, rng);
  auto expected = wio.payload;
  ASSERT_EQ(f.run_io(std::move(wio)).status, StorageStatus::kOk);

  // Stop injecting faults for the read-back.
  f.dpu->fpga().params().faults = dpu::FpgaFaults{};
  auto rres = f.run_io(f.read_io(0, 16384));
  ASSERT_EQ(rres.status, StorageStatus::kOk);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rres.read_data[i].data, expected[i].data) << i;
  }
}

TEST(Solar, WithoutAggregationCheckCorruptionSlipsThrough) {
  dpu::FpgaFaults faults;
  faults.pre_crc_bitflip_rate = 1.0;  // corrupt every block, consistently
  SolarParams p;
  p.aggregate_check = false;
  SolarFixture f(p, faults);
  Rng rng(14);
  auto wio = f.write_io(0, 4096, rng);
  const auto plain = wio.payload[0].data;
  ASSERT_EQ(f.run_io(std::move(wio)).status, StorageStatus::kOk);
  // The stored block differs from what the guest wrote and nobody noticed.
  auto loc = f.segments.lookup(1, 0);
  bool corrupted = false;
  for (auto& bs : f.block_servers) {
    if (auto blk = bs->store().get(loc->segment_id, 0)) {
      corrupted = blk->data != plain;
    }
  }
  EXPECT_TRUE(corrupted);
  EXPECT_EQ(f.client->stats().agg_check_failures, 0u);
}

TEST(Solar, QosThrottlesIops) {
  SolarFixture f;
  sa::QosSpec spec;
  spec.iops_limit = 1000;
  spec.burst_ios = 1;
  f.qos.set(1, spec);
  Rng rng(15);
  ASSERT_EQ(f.run_io(f.write_io(0, 4096, rng, false)).status,
            StorageStatus::kOk);
  auto res = f.run_io(f.write_io(4096, 4096, rng, false));
  EXPECT_EQ(res.status, StorageStatus::kOk);
  EXPECT_GT(res.trace.qos_wait_ns, us(100));
}

TEST(Solar, SolarStarPaysPcieAndCpu) {
  SolarParams star;
  star.offload = false;
  SolarFixture f_star(star);
  SolarFixture f_hw;
  Rng rng(16);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(f_star
                  .run_io(f_star.write_io(static_cast<std::uint64_t>(i) *
                                              65536,
                                          65536, rng, false))
                  .status,
              StorageStatus::kOk);
    ASSERT_EQ(f_hw
                  .run_io(f_hw.write_io(static_cast<std::uint64_t>(i) * 65536,
                                        65536, rng, false))
                  .status,
              StorageStatus::kOk);
  }
  // SOLAR* burns DPU CPU on CRC and pushes every byte through the
  // internal PCIe; offloaded SOLAR does neither. (Both pay the control
  // plane: RPC issue, path selection, per-ACK CC — §4.7.)
  EXPECT_GT(f_star.dpu->cpu().total_busy_ns(),
            f_hw.dpu->cpu().total_busy_ns() * 1.2);
  EXPECT_GE(f_star.dpu->internal_pcie().bytes_transferred(),
            2ull * 50 * 65536);  // two crossings per payload byte
  EXPECT_EQ(f_hw.dpu->internal_pcie().bytes_transferred(), 0u);
}

TEST(Solar, IntProbingKeepsPathEstimatesFresh) {
  // §4.5 future work implemented: periodic per-path probes maintain RTT
  // estimates even without application traffic.
  SolarParams p;
  p.probe_paths = true;
  p.probe_interval = ms(1);
  SolarFixture f(p);
  Rng rng(17);
  ASSERT_EQ(f.run_io(f.write_io(0, 4096, rng, false)).status,
            StorageStatus::kOk);
  // Idle for a while: probes keep flowing.
  f.eng.run_until(f.eng.now() + ms(20));
  EXPECT_GT(f.client->probes_sent(), 20u);
  auto& ps = f.client->path_set(f.clos.storage[0]->ip());
  for (auto& path : ps.paths()) {
    EXPECT_GT(path.srtt, 0) << "path " << path.port << " never probed";
  }
}

TEST(Solar, ProbingDisabledByDefault) {
  SolarFixture f;
  Rng rng(18);
  ASSERT_EQ(f.run_io(f.write_io(0, 4096, rng, false)).status,
            StorageStatus::kOk);
  f.eng.run_until(f.eng.now() + ms(20));
  EXPECT_EQ(f.client->probes_sent(), 0u);
}

TEST(Solar, UnmappedVdFailsFast) {
  SolarFixture f;
  IoRequest io;
  io.vd_id = 999;
  io.op = OpType::kRead;
  io.offset = 0;
  io.len = 4096;
  auto res = f.run_io(std::move(io));
  EXPECT_EQ(res.status, StorageStatus::kOutOfRange);
}

}  // namespace
}  // namespace repro::solar
