#include <gtest/gtest.h>

#include "common/histogram.h"
#include "storage/block_server.h"
#include "storage/segment_store.h"
#include "storage/ssd.h"

namespace repro::storage {
namespace {

using transport::DataBlock;
using transport::OpType;
using transport::StorageRequest;
using transport::StorageResponse;
using transport::StorageStatus;

TEST(Ssd, WriteCacheIsFastReadsAreSlower) {
  sim::Engine eng;
  SsdModel ssd(eng, SsdParams{}, Rng(1));
  SampleSet writes, reads;
  for (int i = 0; i < 300; ++i) {
    const TimeNs t0 = eng.now();
    bool done = false;
    ssd.write(4096, [&] { done = true; });
    eng.run();
    ASSERT_TRUE(done);
    writes.record(to_us(eng.now() - t0));
  }
  for (int i = 0; i < 300; ++i) {
    const TimeNs t0 = eng.now();
    ssd.read(4096, [] {});
    eng.run();
    reads.record(to_us(eng.now() - t0));
  }
  // Paper: writes land in the SSD write cache (tens of us), reads touch
  // NAND (roughly an order of magnitude slower at the median).
  EXPECT_LT(writes.percentile(0.5), 25.0);
  EXPECT_GT(reads.percentile(0.5), 40.0);
  EXPECT_GT(reads.percentile(0.5), writes.percentile(0.5) * 3);
}

TEST(Ssd, ChannelsAbsorbParallelism) {
  sim::Engine eng;
  SsdParams p;
  p.channels = 8;
  SsdModel ssd(eng, p, Rng(2));
  int done = 0;
  eng.at(0, [&] {
    for (int i = 0; i < 8; ++i) ssd.read(4096, [&] { ++done; });
  });
  eng.run();
  EXPECT_EQ(done, 8);
  // 8 reads across 8 channels should take ~1 read, not 8.
  EXPECT_LT(eng.now(), us(220));
}

TEST(Ssd, SingleChannelQueues) {
  sim::Engine eng;
  SsdParams p;
  p.channels = 1;
  p.read_sigma = 0.0;
  SsdModel ssd(eng, p, Rng(3));
  eng.at(0, [&] {
    for (int i = 0; i < 4; ++i) ssd.read(4096, [] {});
  });
  eng.run();
  EXPECT_GT(eng.now(), us(210));  // ~4x the ~55us read
}

TEST(SegmentStore, PutGetRoundTrip) {
  SegmentStore store(/*store_payload=*/true);
  std::vector<std::uint8_t> data(4096, 0x5A);
  const std::uint32_t crc = crc32_raw(data);
  ASSERT_TRUE(store.put(7, 0, 4096, crc, data));
  auto blk = store.get(7, 0);
  ASSERT_TRUE(blk.has_value());
  EXPECT_EQ(blk->len, 4096u);
  EXPECT_EQ(blk->crc, crc);
  EXPECT_EQ(blk->data, data);
  EXPECT_EQ(blk->version, 1u);
}

TEST(SegmentStore, MissingBlockIsNullopt) {
  SegmentStore store(false);
  EXPECT_FALSE(store.get(1, 0).has_value());
  store.put(1, 0, 4096, 0, {});
  EXPECT_FALSE(store.get(1, 4096).has_value());
  EXPECT_FALSE(store.get(2, 0).has_value());
}

TEST(SegmentStore, OverwriteBumpsVersion) {
  SegmentStore store(false);
  store.put(1, 0, 4096, 1, {});
  store.put(1, 0, 4096, 2, {});
  auto blk = store.get(1, 0);
  ASSERT_TRUE(blk.has_value());
  EXPECT_EQ(blk->version, 2u);
  EXPECT_EQ(blk->crc, 2u);
}

TEST(SegmentStore, RejectsOutOfSegmentWrites) {
  SegmentStore store(false);
  EXPECT_FALSE(store.put(1, kSegmentBytes - 1024, 4096, 0, {}));
  EXPECT_FALSE(store.put(1, 0, 0, 0, {}));
  EXPECT_TRUE(store.put(1, kSegmentBytes - 4096, 4096, 0, {}));
}

TEST(SegmentStore, PlaceholderModeDropsPayload) {
  SegmentStore store(/*store_payload=*/false);
  std::vector<std::uint8_t> data(4096, 1);
  const std::uint32_t crc = crc32_raw(data);
  store.put(3, 0, 4096, crc, std::move(data));
  auto blk = store.get(3, 0);
  ASSERT_TRUE(blk.has_value());
  EXPECT_TRUE(blk->data.empty());
  EXPECT_NE(blk->crc, 0u);
}

TEST(SegmentStore, RollingSegmentCrcMatchesFullRecompute) {
  SegmentStore store(true);
  Rng rng(11);
  std::vector<std::uint8_t> all;
  for (int i = 0; i < 16; ++i) {
    std::vector<std::uint8_t> blk(4096);
    for (auto& b : blk) b = static_cast<std::uint8_t>(rng.next());
    all.insert(all.end(), blk.begin(), blk.end());
    ASSERT_TRUE(store.put(9, static_cast<std::uint64_t>(i) * 4096, 4096,
                          crc32_raw(blk), std::move(blk)));
  }
  auto crc = store.segment_crc(9);
  ASSERT_TRUE(crc.has_value());
  EXPECT_EQ(*crc, crc32_ieee(all));
}

TEST(SegmentStore, OutOfOrderWriteInvalidatesRollingCrc) {
  SegmentStore store(true);
  std::vector<std::uint8_t> blk(4096, 7);
  store.put(9, 8192, 4096, crc32_raw(blk), blk);  // hole at the front
  EXPECT_FALSE(store.segment_crc(9).has_value());
}

struct ServerFixture {
  sim::Engine eng;
  BlockServerParams params;
  std::unique_ptr<BlockServer> server;

  explicit ServerFixture(bool store_payload = true) {
    params.store_payload = store_payload;
    server = std::make_unique<BlockServer>(eng, params, Rng(5));
  }

  StorageResponse run_request(StorageRequest req) {
    StorageResponse out;
    bool done = false;
    eng.at(eng.now(), [&] {
      server->handle(std::move(req), [&](StorageResponse resp) {
        out = std::move(resp);
        done = true;
      });
    });
    eng.run();
    EXPECT_TRUE(done);
    return out;
  }
};

StorageRequest write_req(std::uint64_t segment, std::uint64_t offset,
                         std::vector<std::uint8_t> data) {
  StorageRequest req;
  req.op = OpType::kWrite;
  req.segment_id = segment;
  req.segment_offset = offset;
  req.len = static_cast<std::uint32_t>(data.size());
  DataBlock blk;
  blk.lba = offset;
  blk.len = req.len;
  blk.crc = crc32_raw(data);
  blk.data = std::move(data);
  req.blocks.push_back(std::move(blk));
  return req;
}

TEST(BlockServer, WriteThenReadReturnsSameBytes) {
  ServerFixture f;
  Rng rng(6);
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());

  auto wresp = f.run_request(write_req(1, 0, data));
  EXPECT_EQ(wresp.status, StorageStatus::kOk);
  EXPECT_GT(wresp.server_bn_ns, 0);
  EXPECT_GT(wresp.server_ssd_ns, 0);

  StorageRequest rreq;
  rreq.op = OpType::kRead;
  rreq.segment_id = 1;
  rreq.segment_offset = 0;
  rreq.len = 4096;
  auto rresp = f.run_request(std::move(rreq));
  ASSERT_EQ(rresp.status, StorageStatus::kOk);
  ASSERT_EQ(rresp.blocks.size(), 1u);
  EXPECT_EQ(rresp.blocks[0].data, data);
}

TEST(BlockServer, CorruptedWriteRejected) {
  ServerFixture f;
  std::vector<std::uint8_t> data(4096, 0x42);
  auto req = write_req(1, 0, data);
  req.blocks[0].crc ^= 0xDEAD;  // wrong CRC
  auto resp = f.run_request(std::move(req));
  EXPECT_EQ(resp.status, StorageStatus::kCrcMismatch);
  EXPECT_EQ(f.server->crc_failures(), 1u);
}

TEST(BlockServer, OutOfRangeWriteRejected) {
  ServerFixture f;
  std::vector<std::uint8_t> data(4096, 1);
  auto req = write_req(1, kSegmentBytes - 1024, std::move(data));
  auto resp = f.run_request(std::move(req));
  EXPECT_EQ(resp.status, StorageStatus::kOutOfRange);
}

TEST(BlockServer, ReadOfUnwrittenSpaceReturnsPlaceholders) {
  ServerFixture f;
  StorageRequest rreq;
  rreq.op = OpType::kRead;
  rreq.segment_id = 99;
  rreq.segment_offset = 0;
  rreq.len = 8192;
  auto resp = f.run_request(std::move(rreq));
  ASSERT_EQ(resp.status, StorageStatus::kOk);
  ASSERT_EQ(resp.blocks.size(), 2u);
  EXPECT_FALSE(resp.blocks[0].has_payload());
}

TEST(BlockServer, WriteLatencyDominatedByBnAndWriteCache) {
  ServerFixture f(false);
  SampleSet total;
  for (int i = 0; i < 200; ++i) {
    StorageRequest req;
    req.op = OpType::kWrite;
    req.segment_id = 1;
    req.segment_offset = (static_cast<std::uint64_t>(i) * 4096) %
                         (kSegmentBytes - 4096);
    req.len = 4096;
    DataBlock blk;
    blk.lba = req.segment_offset;
    blk.len = 4096;
    req.blocks.push_back(blk);
    const TimeNs t0 = f.eng.now();
    f.run_request(std::move(req));
    total.record(to_us(f.eng.now() - t0));
  }
  // 3-replica write = BN rtt + write-cache hit, tens of microseconds.
  EXPECT_GT(total.percentile(0.5), 15.0);
  EXPECT_LT(total.percentile(0.5), 70.0);
}

}  // namespace
}  // namespace repro::storage
