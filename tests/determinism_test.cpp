// Whole-run determinism of the timer-wheel engine under a mixed load:
// a SOLAR cluster and a TCP (Luna) cluster sharing one engine, with a
// concurrent stream of timer schedule/cancel churn. Two runs with the
// same seed must execute the same number of events and end at the same
// simulated instant — the FIFO tie-break at equal timestamps is what
// makes this hold.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ebs/cluster.h"
#include "sim/engine.h"
#include "workload/fio.h"

namespace repro::ebs {
namespace {

using transport::IoRequest;

ClusterParams mixed_params(StackKind stack, std::uint64_t seed) {
  ClusterParams p;
  p.topo.compute_servers = 2;
  p.topo.storage_servers = 4;
  p.topo.servers_per_rack = 4;
  p.stack = stack;
  p.seed = seed;
  p.block_server.store_payload = false;
  return p;
}

struct RunSig {
  std::uint64_t executed = 0;
  TimeNs end_time = 0;
  std::uint64_t solar_done = 0;
  std::uint64_t tcp_done = 0;
  std::uint64_t cancels_hit = 0;
};

// Schedules bursts of dummy timers and cancels a pseudo-random subset —
// exercising the cancel path concurrently with real protocol traffic.
struct CancelChurn {
  sim::Engine& eng;
  Rng rng;
  std::uint64_t cancels = 0;
  int rounds_left = 50;

  void round() {
    std::vector<sim::TimerId> ids;
    for (int i = 0; i < 20; ++i) {
      const TimeNs t = eng.now() + static_cast<TimeNs>(rng.next_below(static_cast<std::uint64_t>(us(50))));
      ids.push_back(eng.schedule_at(t, [] {}));
    }
    for (auto id : ids) {
      if (rng.next_below(2) == 0 && eng.cancel(id)) ++cancels;
    }
    if (--rounds_left > 0) {
      eng.after(us(30), [this] { round(); });
    }
  }
};

RunSig run_mixed(std::uint64_t seed) {
  sim::Engine eng;
  Cluster solar(eng, mixed_params(StackKind::kSolar, seed));
  Cluster tcp(eng, mixed_params(StackKind::kLuna, seed + 17));
  const std::uint64_t vd_solar = solar.create_vd(1ull << 30);
  const std::uint64_t vd_tcp = tcp.create_vd(1ull << 30);

  workload::FioConfig cfg;
  cfg.iodepth = 4;
  cfg.read_fraction = 0.5;
  cfg.max_ios = 200;

  cfg.vd_id = vd_solar;
  workload::FioJob job_solar(
      eng,
      [&](IoRequest io, transport::IoCompleteFn done) {
        solar.compute(0).submit_io(std::move(io), std::move(done));
      },
      cfg, Rng(seed));
  cfg.vd_id = vd_tcp;
  workload::FioJob job_tcp(
      eng,
      [&](IoRequest io, transport::IoCompleteFn done) {
        tcp.compute(1).submit_io(std::move(io), std::move(done));
      },
      cfg, Rng(seed + 1));

  CancelChurn churn{eng, Rng(seed + 2)};
  eng.at(0, [&] {
    job_solar.start();
    job_tcp.start();
    churn.round();
  });
  eng.run();

  RunSig sig;
  sig.executed = eng.executed();
  sig.end_time = eng.now();
  sig.solar_done = job_solar.completed();
  sig.tcp_done = job_tcp.completed();
  sig.cancels_hit = churn.cancels;
  return sig;
}

TEST(Determinism, MixedStacksWithCancellationAreBitIdentical) {
  const RunSig a = run_mixed(4242);
  const RunSig b = run_mixed(4242);
  EXPECT_EQ(a.solar_done, 200u);
  EXPECT_EQ(a.tcp_done, 200u);
  EXPECT_GT(a.cancels_hit, 0u);
  EXPECT_EQ(a.executed, b.executed);  // identical event counts
  EXPECT_EQ(a.end_time, b.end_time);  // identical final clock
  EXPECT_EQ(a.solar_done, b.solar_done);
  EXPECT_EQ(a.tcp_done, b.tcp_done);
  EXPECT_EQ(a.cancels_hit, b.cancels_hit);
}

TEST(Determinism, DifferentSeedsProduceDifferentSchedules) {
  const RunSig a = run_mixed(1);
  const RunSig b = run_mixed(2);
  // Sanity that the signature is sensitive enough to catch divergence.
  EXPECT_NE(a.executed, b.executed);
}

}  // namespace
}  // namespace repro::ebs
