// Whole-run determinism of the timer-wheel engine under a mixed load:
// a SOLAR cluster and a TCP (Luna) cluster sharing one engine, with a
// concurrent stream of timer schedule/cancel churn. Two runs with the
// same seed must execute the same number of events and end at the same
// simulated instant — the FIFO tie-break at equal timestamps is what
// makes this hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "ebs/cluster.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "sim/engine.h"
#include "sim/shard_context.h"
#include "sim/sharded.h"
#include "workload/fio.h"

namespace repro::ebs {
namespace {

using transport::IoRequest;

ClusterParams mixed_params(StackKind stack, std::uint64_t seed) {
  ClusterParams p;
  p.topo.compute_servers = 2;
  p.topo.storage_servers = 4;
  p.topo.servers_per_rack = 4;
  p.stack = stack;
  p.seed = seed;
  p.block_server.store_payload = false;
  return p;
}

struct RunSig {
  std::uint64_t executed = 0;
  TimeNs end_time = 0;
  std::uint64_t solar_done = 0;
  std::uint64_t tcp_done = 0;
  std::uint64_t cancels_hit = 0;
  // Latency-histogram fingerprint: any observability-induced perturbation
  // of the simulation shows up here even if event counts happen to match.
  std::uint64_t lat_count = 0;
  TimeNs lat_max = 0;
  double lat_mean = 0.0;

  bool operator==(const RunSig&) const = default;
};

// Schedules bursts of dummy timers and cancels a pseudo-random subset —
// exercising the cancel path concurrently with real protocol traffic.
struct CancelChurn {
  sim::Engine& eng;
  Rng rng;
  std::uint64_t cancels = 0;
  int rounds_left = 50;

  void round() {
    std::vector<sim::TimerId> ids;
    for (int i = 0; i < 20; ++i) {
      const TimeNs t = eng.now() + static_cast<TimeNs>(rng.next_below(static_cast<std::uint64_t>(us(50))));
      ids.push_back(eng.schedule_at(t, [] {}));
    }
    for (auto id : ids) {
      if (rng.next_below(2) == 0 && eng.cancel(id)) ++cancels;
    }
    if (--rounds_left > 0) {
      eng.after(us(30), [this] { round(); });
    }
  }
};

RunSig run_mixed(std::uint64_t seed, obs::Obs* obs = nullptr) {
  sim::Engine eng;
  ClusterParams solar_params = mixed_params(StackKind::kSolar, seed);
  ClusterParams tcp_params = mixed_params(StackKind::kLuna, seed + 17);
  solar_params.obs = obs;
  Cluster solar(eng, solar_params);
  Cluster tcp(eng, tcp_params);
  if (obs != nullptr) obs->attach(eng);
  const std::uint64_t vd_solar = solar.create_vd(1ull << 30);
  const std::uint64_t vd_tcp = tcp.create_vd(1ull << 30);

  workload::FioConfig cfg;
  cfg.iodepth = 4;
  cfg.read_fraction = 0.5;
  cfg.max_ios = 200;

  cfg.vd_id = vd_solar;
  workload::FioJob job_solar(
      eng,
      [&](IoRequest io, transport::IoCompleteFn done) {
        solar.compute(0).submit_io(std::move(io), std::move(done));
      },
      cfg, Rng(seed));
  cfg.vd_id = vd_tcp;
  workload::FioJob job_tcp(
      eng,
      [&](IoRequest io, transport::IoCompleteFn done) {
        tcp.compute(1).submit_io(std::move(io), std::move(done));
      },
      cfg, Rng(seed + 1));

  CancelChurn churn{eng, Rng(seed + 2)};
  eng.at(0, [&] {
    job_solar.start();
    job_tcp.start();
    churn.round();
  });
  eng.run();

  RunSig sig;
  sig.executed = eng.executed();
  sig.end_time = eng.now();
  sig.solar_done = job_solar.completed();
  sig.tcp_done = job_tcp.completed();
  sig.cancels_hit = churn.cancels;
  const Histogram& lat = job_solar.metrics().total();
  sig.lat_count = lat.count() + job_tcp.metrics().total().count();
  sig.lat_max = std::max(lat.max(), job_tcp.metrics().total().max());
  sig.lat_mean = lat.mean() + job_tcp.metrics().total().mean();
  return sig;
}

TEST(Determinism, MixedStacksWithCancellationAreBitIdentical) {
  const RunSig a = run_mixed(4242);
  const RunSig b = run_mixed(4242);
  EXPECT_EQ(a.solar_done, 200u);
  EXPECT_EQ(a.tcp_done, 200u);
  EXPECT_GT(a.cancels_hit, 0u);
  EXPECT_EQ(a.executed, b.executed);  // identical event counts
  EXPECT_EQ(a.end_time, b.end_time);  // identical final clock
  EXPECT_EQ(a.solar_done, b.solar_done);
  EXPECT_EQ(a.tcp_done, b.tcp_done);
  EXPECT_EQ(a.cancels_hit, b.cancels_hit);
}

// The observability invariant: a fully-instrumented run (registry, tracer,
// time-series sampler attached to the engine) must be bit-identical to a
// dark run — same events, same final clock, same latency histograms. The
// sampler rides the engine's probe hook, which fires during clock
// advancement without being an event; spans and counters never schedule.
TEST(Determinism, ObservabilityOnVsOffIsBitIdentical) {
  const RunSig dark = run_mixed(4242);

  obs::ObsConfig oc;
  oc.sample_interval = us(20);  // aggressive sampling to maximize exposure
  obs::Obs obs(oc);
  const RunSig lit = run_mixed(4242, &obs);

  EXPECT_EQ(dark, lit);
  // And the instrumentation actually ran: samples were taken and spans
  // recorded, so the equality above is not vacuous.
  EXPECT_GT(obs.sampler().samples_taken(), 0u);
  EXPECT_GT(obs.tracer().total_recorded(), 0u);
}

TEST(Determinism, DifferentSeedsProduceDifferentSchedules) {
  const RunSig a = run_mixed(1);
  const RunSig b = run_mixed(2);
  // Sanity that the signature is sensitive enough to catch divergence.
  EXPECT_NE(a.executed, b.executed);
}

// 16-seed chaos sweep: for each seed, generate a fault plan, run the full
// chaos harness instrumented (registry + tracer + sampler attached) and
// dark, and demand bit-identical signatures. This extends the
// observability invariant to runs with active fault injection — the
// injector's apply/revert timers, the NIC FCS drops, duplicated and
// reordered packets, SSD stalls, all of it must stay on the deterministic
// schedule whether or not anyone is watching.
TEST(Determinism, ChaosSweepInstrumentedVsDarkAcrossSixteenSeeds) {
  const ebs::StackKind stacks[] = {
      ebs::StackKind::kKernelTcp,
      ebs::StackKind::kLuna,
      ebs::StackKind::kSolarStar,
      ebs::StackKind::kSolar,
  };
  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    chaos::HarnessConfig cfg;
    cfg.stack = stacks[seed % 4];
    cfg.seed = seed * 7919;
    cfg.active = ms(250);
    cfg.poisson_iops = 900.0;
    cfg.readback_samples = 12;

    Rng plan_rng(seed);
    chaos::GeneratorConfig gc;
    gc.window = ms(200);
    chaos::TopologyShape shape;
    shape.compute_nodes = cfg.compute_nodes;
    shape.storage_nodes = cfg.storage_nodes;
    shape.compute_tors = 2;
    shape.storage_tors = 4;
    shape.compute_spines = 2;
    shape.storage_spines = 2;
    shape.cores = 2;
    shape.replica_ssds = 3;
    shape.has_fpga = cfg.stack == ebs::StackKind::kSolar;
    cfg.plan = chaos::generate_plan(plan_rng, gc, shape);

    const chaos::RunReport dark = chaos::run_chaos(cfg);

    obs::ObsConfig oc;
    oc.sample_interval = us(20);
    obs::Obs obs(oc);
    chaos::HarnessConfig lit_cfg = cfg;
    lit_cfg.obs = &obs;
    const chaos::RunReport lit = chaos::run_chaos(lit_cfg);

    EXPECT_EQ(dark.signature(), lit.signature()) << "seed " << seed;
    EXPECT_GT(obs.sampler().samples_taken(), 0u) << "seed " << seed;
    total_faults += dark.faults_applied;
  }
  // The sweep must actually have injected faults, or the equality above
  // says nothing about chaos determinism.
  EXPECT_GT(total_faults, 0u);
}

// A SOLAR cluster on the sharded engine: four compute + eight storage
// servers across four shards, one fio job per compute node. The signature
// must be a function of (seed, shards) only — re-running with 2 or 8 worker
// threads re-times the wall clock, never the simulation.
struct ObsExports {
  std::string metrics, trace, series;
};

// `exports`, when given with `obs`, receives the serialized artifacts —
// written while the cluster is alive, since registry entries read live
// node state.
RunSig run_sharded(std::uint64_t seed, int threads, obs::Obs* obs = nullptr,
                   ObsExports* exports = nullptr) {
  sim::ShardedEngine se(4, threads);
  ClusterParams p;
  p.topo.compute_servers = 4;
  p.topo.storage_servers = 8;
  p.topo.servers_per_rack = 2;
  p.stack = StackKind::kSolar;
  p.seed = seed;
  p.block_server.store_payload = false;
  p.obs = obs;
  Cluster cluster(se, p);
  if (obs != nullptr) obs->attach(se);

  std::vector<std::uint64_t> vds;
  for (int i = 0; i < 4; ++i) vds.push_back(cluster.create_vd(1ull << 30));

  workload::FioConfig cfg;
  cfg.iodepth = 4;
  cfg.read_fraction = 0.5;
  cfg.max_ios = 150;
  std::vector<std::unique_ptr<workload::FioJob>> jobs;
  Rng rng(seed);
  for (int i = 0; i < 4; ++i) {
    cfg.vd_id = vds[static_cast<std::size_t>(i)];
    sim::ShardScope scope(cluster.compute_shard(i));
    jobs.push_back(std::make_unique<workload::FioJob>(
        cluster.engine(),
        [&cluster, i](IoRequest io, transport::IoCompleteFn done) {
          cluster.compute(i).submit_io(std::move(io), std::move(done));
        },
        cfg, rng.fork(static_cast<std::uint64_t>(i))));
  }
  for (int i = 0; i < 4; ++i) {
    sim::ShardScope scope(cluster.compute_shard(i));
    cluster.engine().at(0, [&jobs, i] {
      jobs[static_cast<std::size_t>(i)]->start();
    });
  }
  se.run();

  if (obs != nullptr && exports != nullptr) {
    std::ostringstream m, t, s;
    obs::write_metrics_json(m, obs->registry());
    obs::write_chrome_trace(t, obs->tracer());
    obs::write_series_json(s, obs->registry(), obs->sampler());
    exports->metrics = m.str();
    exports->trace = t.str();
    exports->series = s.str();
  }

  RunSig sig;
  sig.executed = se.executed();
  sig.end_time = se.now();
  for (const auto& j : jobs) {
    sig.solar_done += j->completed();
    const Histogram& lat = j->metrics().total();
    sig.lat_count += lat.count();
    sig.lat_max = std::max(sig.lat_max, lat.max());
    sig.lat_mean += lat.mean();
  }
  return sig;
}

TEST(Determinism, ShardedClusterBitIdenticalAcrossThreadCounts) {
  const RunSig t1 = run_sharded(9001, 1);
  const RunSig t2 = run_sharded(9001, 2);
  const RunSig t8 = run_sharded(9001, 8);
  EXPECT_EQ(t1.solar_done, 600u);  // 4 jobs x max_ios
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

// Observability on the sharded engine: the sampler rides the epoch-barrier
// hook and the tracer writes per-shard rings merged on export, so a fully-
// instrumented run must be bit-identical to a dark one — and the exported
// artifacts themselves (metrics JSON, Chrome/Perfetto trace, time series)
// must be byte-identical across thread counts.
TEST(Determinism, ShardedObservabilityIsEffectFreeAndThreadInvariant) {
  const RunSig dark = run_sharded(9001, 2);

  struct Lit {
    RunSig sig;
    std::uint64_t samples = 0;
    ObsExports out;
  };
  auto lit = [](int threads) {
    obs::ObsConfig oc;
    oc.sample_interval = us(20);
    auto obs = std::make_unique<obs::Obs>(oc);
    Lit e;
    e.sig = run_sharded(9001, threads, obs.get(), &e.out);
    e.samples = obs->sampler().samples_taken();
    return e;
  };
  const Lit a = lit(1);
  const Lit b = lit(2);

  EXPECT_EQ(dark, a.sig);
  EXPECT_EQ(dark, b.sig);
  EXPECT_EQ(a.out.metrics, b.out.metrics);
  EXPECT_EQ(a.out.trace, b.out.trace);
  EXPECT_EQ(a.out.series, b.out.series);
  EXPECT_GT(a.samples, 0u);
  EXPECT_GT(a.out.trace.size(), 100u);  // spans actually exported
}

// Chaos on the sharded engine: same plan, same seed, shards = 2, swept at
// 1, 2 and 8 worker threads. Fault-injection timers are armed on each
// target's home shard and the oracle boards are node-affine, so the full
// report signature — violations, completions, fault counts, executed
// events, final clock — must not move with the thread count.
TEST(Determinism, ShardedChaosSignatureThreadCountInvariant) {
  chaos::HarnessConfig cfg;
  cfg.stack = ebs::StackKind::kSolar;
  cfg.seed = 31337;
  cfg.active = ms(250);
  cfg.poisson_iops = 900.0;
  cfg.readback_samples = 12;
  cfg.shards = 2;

  Rng plan_rng(7);
  chaos::GeneratorConfig gc;
  gc.window = ms(200);
  chaos::TopologyShape shape;
  shape.compute_nodes = cfg.compute_nodes;
  shape.storage_nodes = cfg.storage_nodes;
  shape.compute_tors = 2;
  shape.storage_tors = 4;
  shape.compute_spines = 2;
  shape.storage_spines = 2;
  shape.cores = 2;
  shape.replica_ssds = 3;
  shape.has_fpga = true;
  cfg.plan = chaos::generate_plan(plan_rng, gc, shape);

  cfg.threads = 1;
  const chaos::RunReport t1 = chaos::run_chaos(cfg);
  cfg.threads = 2;
  const chaos::RunReport t2 = chaos::run_chaos(cfg);
  cfg.threads = 8;
  const chaos::RunReport t8 = chaos::run_chaos(cfg);

  EXPECT_EQ(t1.signature(), t2.signature());
  EXPECT_EQ(t1.signature(), t8.signature());
  EXPECT_GT(t1.faults_applied, 0u);
  EXPECT_GT(t1.ios_completed, 0u);
}

}  // namespace
}  // namespace repro::ebs
