// The src/stack layer: StackKind naming round-trips, ScenarioSpec JSON
// round-trips, and — the contract the whole refactor exists for —
// heterogeneous fleets (different generations sharing one fabric) that are
// bit-deterministic end-to-end, instrumented or dark, faults and all.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "ebs/cluster.h"
#include "ebs/scenario.h"
#include "obs/obs.h"
#include "sim/engine.h"
#include "stack/kind.h"
#include "workload/fio.h"

namespace repro::ebs {
namespace {

using transport::IoRequest;

const StackKind kAllKinds[] = {
    StackKind::kKernelTcp, StackKind::kLuna, StackKind::kRdma,
    StackKind::kSolarStar, StackKind::kSolar,
};

TEST(StackKind, DisplayNamesRoundTrip) {
  for (StackKind kind : kAllKinds) {
    StackKind parsed;
    ASSERT_TRUE(stack_from_string(to_string(kind), &parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(StackKind, CliNamesRoundTrip) {
  for (StackKind kind : kAllKinds) {
    StackKind parsed;
    ASSERT_TRUE(stack_from_string(stack::cli_string(kind), &parsed))
        << stack::cli_string(kind);
    EXPECT_EQ(parsed, kind);
  }
}

TEST(StackKind, UnknownNameFailsAndLeavesOutputUntouched) {
  StackKind parsed = StackKind::kRdma;
  EXPECT_FALSE(stack_from_string("lunar", &parsed));
  EXPECT_FALSE(stack_from_string("", &parsed));
  EXPECT_FALSE(stack_from_string("SOLAR", &parsed));
  EXPECT_EQ(parsed, StackKind::kRdma);
}

TEST(StackKind, FamilyPredicates) {
  EXPECT_TRUE(stack::solar_family(StackKind::kSolarStar));
  EXPECT_TRUE(stack::solar_family(StackKind::kSolar));
  EXPECT_FALSE(stack::solar_family(StackKind::kLuna));
  // Only the offloaded generation runs payloads through the FPGA.
  EXPECT_TRUE(stack::has_fpga_datapath(StackKind::kSolar));
  EXPECT_FALSE(stack::has_fpga_datapath(StackKind::kSolarStar));
  // The demux ports of the three server families must be distinct.
  EXPECT_NE(stack::server_port(stack::ServerFamily::kTcp),
            stack::server_port(stack::ServerFamily::kRdma));
  EXPECT_NE(stack::server_port(stack::ServerFamily::kTcp),
            stack::server_port(stack::ServerFamily::kSolar));
  EXPECT_NE(stack::server_port(stack::ServerFamily::kRdma),
            stack::server_port(stack::ServerFamily::kSolar));
}

ScenarioSpec full_spec() {
  ScenarioSpec spec;
  spec.name = "roundtrip";
  spec.compute_nodes = 3;
  spec.storage_nodes = 6;
  spec.servers_per_rack = 3;
  spec.spines_per_pod = 4;
  spec.core_switches = 3;
  spec.stack = StackKind::kSolarStar;
  spec.compute_stacks = {StackKind::kLuna, StackKind::kSolar,
                         StackKind::kKernelTcp};
  spec.on_dpu = true;
  spec.seed = 777;
  spec.store_payload = true;
  spec.vd_size_bytes = 2ull << 30;
  VdSpec vd;
  vd.size_bytes = 1ull << 30;
  spec.vds.push_back(vd);
  vd.has_qos = true;
  vd.qos.iops_limit = 5000;
  vd.qos.bandwidth_limit = 125e6;
  vd.qos.burst_ios = 64;
  vd.qos.burst_bytes = 1ull << 20;
  spec.vds.push_back(vd);
  spec.workload.block_size = 0;
  spec.workload.iodepth = 7;
  spec.workload.read_fraction = 0.25;
  spec.workload.sequential = true;
  spec.workload.real_payload = true;
  spec.workload.max_ios = 123;
  spec.workload.poisson_iops = 450.0;
  spec.fault_plan_file = "plans/p1.json";
  spec.ec.enabled = true;
  spec.ec.k = 4;
  spec.ec.m = 2;
  spec.ec.rebuild_bandwidth_cap = 64e6;
  spec.ec.rebuild_concurrency = 3;
  return spec;
}

TEST(ScenarioSpec, JsonRoundTripPreservesEveryField) {
  const ScenarioSpec spec = full_spec();
  ScenarioSpec back;
  std::string err;
  ASSERT_TRUE(scenario_from_json(spec.to_json(), &back, &err)) << err;
  // The sharpest equality we have: serialize both and compare bytes.
  EXPECT_EQ(spec.to_json(), back.to_json());
  EXPECT_EQ(back.compute_stacks,
            (std::vector<StackKind>{StackKind::kLuna, StackKind::kSolar,
                                    StackKind::kKernelTcp}));
  ASSERT_EQ(back.vds.size(), 2u);
  EXPECT_FALSE(back.vds[0].has_qos);
  ASSERT_TRUE(back.vds[1].has_qos);
  EXPECT_EQ(back.vds[1].qos.iops_limit, 5000);
}

TEST(ScenarioSpec, DefaultsSurviveRoundTrip) {
  ScenarioSpec spec;  // all defaults; optional arrays omitted from JSON
  ScenarioSpec back;
  std::string err;
  ASSERT_TRUE(scenario_from_json(spec.to_json(), &back, &err)) << err;
  EXPECT_EQ(spec.to_json(), back.to_json());
  EXPECT_TRUE(back.compute_stacks.empty());
  EXPECT_TRUE(back.vds.empty());
}

TEST(ScenarioSpec, RejectsUnknownStackAndMalformedInput) {
  ScenarioSpec out;
  std::string err;
  EXPECT_FALSE(scenario_from_json(R"({"stack":"lunar"})", &out, &err));
  EXPECT_NE(err.find("lunar"), std::string::npos);
  EXPECT_FALSE(scenario_from_json(R"({"compute_stacks":"luna"})", &out, &err));
  EXPECT_FALSE(scenario_from_json("[1,2]", &out, &err));
  EXPECT_FALSE(scenario_from_json("{", &out, &err));
}

// Strict parsing: an unrecognized field anywhere in the document is an
// error, not a silent no-op — a typo'd knob must never quietly run the
// default config.
TEST(ScenarioSpec, RejectsUnrecognizedFieldsAtEveryLevel) {
  ScenarioSpec out;
  std::string err;
  // Root level.
  EXPECT_FALSE(scenario_from_json(R"({"sede":7})", &out, &err));
  EXPECT_NE(err.find("sede"), std::string::npos) << err;
  // Nested objects.
  EXPECT_FALSE(
      scenario_from_json(R"({"topology":{"comput":2}})", &out, &err));
  EXPECT_NE(err.find("comput"), std::string::npos) << err;
  EXPECT_FALSE(
      scenario_from_json(R"({"workload":{"blocksize":512}})", &out, &err));
  EXPECT_FALSE(scenario_from_json(
      R"({"vds":[{"size_bytes":1048576,"sloo":{}}]})", &out, &err));
  EXPECT_FALSE(scenario_from_json(
      R"({"vds":[{"size_bytes":1048576,"qos":{"iops":100}}]})", &out, &err));
  EXPECT_FALSE(
      scenario_from_json(R"({"qos":{"enable":true}})", &out, &err));
}

TEST(ScenarioSpec, EcKnobsParseStrictly) {
  ScenarioSpec out;
  std::string err;
  // The classic typo: must be rejected, not ignored.
  EXPECT_FALSE(scenario_from_json(
      R"({"ec":{"enabled":true,"k":4,"m":2,"rebuild_bandwith_cap":1.0}})",
      &out, &err));
  EXPECT_NE(err.find("rebuild_bandwith_cap"), std::string::npos) << err;
  // Bad geometry is a parse error too.
  EXPECT_FALSE(scenario_from_json(R"({"ec":{"enabled":true,"k":0,"m":2}})",
                                  &out, &err));
  // A well-formed EC block lands on the spec.
  ASSERT_TRUE(scenario_from_json(
      R"({"ec":{"enabled":true,"k":8,"m":3,"rebuild_concurrency":5}})", &out,
      &err))
      << err;
  EXPECT_TRUE(out.ec.enabled);
  EXPECT_EQ(out.ec.k, 8);
  EXPECT_EQ(out.ec.m, 3);
  EXPECT_EQ(out.ec.rebuild_concurrency, 5);
}

TEST(ScenarioSpec, ParamsAssignStacksPerNode) {
  ScenarioSpec spec;
  spec.compute_nodes = 4;
  spec.stack = StackKind::kKernelTcp;
  spec.compute_stacks = {StackKind::kLuna, StackKind::kSolar};
  const ClusterParams p = params_from(spec);
  // Shorter-than-fleet assignments repeat cyclically.
  EXPECT_EQ(p.stack_for(0), StackKind::kLuna);
  EXPECT_EQ(p.stack_for(1), StackKind::kSolar);
  EXPECT_EQ(p.stack_for(2), StackKind::kLuna);
  EXPECT_EQ(p.stack_for(3), StackKind::kSolar);
}

// ---------------------------------------------------------------------------
// Heterogeneous end-to-end determinism.

struct HeteroSig {
  std::uint64_t executed = 0;
  TimeNs end_time = 0;
  std::vector<std::uint64_t> done;
  std::vector<double> lat_mean;

  bool operator==(const HeteroSig&) const = default;
};

/// A LUNA node and a SOLAR node driving the same storage fleet at once —
/// one heterogeneous cluster, not two clusters sharing an engine.
HeteroSig run_hetero(std::uint64_t seed, obs::Obs* obs = nullptr) {
  ScenarioSpec spec;
  spec.name = "hetero";
  spec.compute_nodes = 2;
  spec.storage_nodes = 4;
  spec.servers_per_rack = 4;
  spec.compute_stacks = {StackKind::kLuna, StackKind::kSolar};
  spec.seed = seed;
  spec.vd_size_bytes = 1ull << 30;
  Scenario s = build_scenario(spec, obs);
  auto& eng = *s.engine;
  if (obs != nullptr) obs->attach(eng);
  EXPECT_EQ(s.cluster->compute(0).stack_kind(), StackKind::kLuna);
  EXPECT_EQ(s.cluster->compute(1).stack_kind(), StackKind::kSolar);

  std::vector<std::unique_ptr<workload::FioJob>> jobs;
  for (int i = 0; i < 2; ++i) {
    workload::FioConfig cfg;
    cfg.vd_id = s.vds[static_cast<std::size_t>(i)];
    cfg.vd_size = spec.vd_size_bytes;
    cfg.iodepth = 4;
    cfg.read_fraction = 0.5;
    cfg.max_ios = 250;
    auto& cluster = *s.cluster;
    jobs.push_back(std::make_unique<workload::FioJob>(
        eng,
        [&cluster, i](IoRequest io, transport::IoCompleteFn done) {
          cluster.compute(i).submit_io(std::move(io), std::move(done));
        },
        cfg, Rng(seed + static_cast<std::uint64_t>(i))));
  }
  eng.at(0, [&] {
    for (auto& j : jobs) j->start();
  });
  eng.run();

  HeteroSig sig;
  sig.executed = eng.executed();
  sig.end_time = eng.now();
  for (auto& j : jobs) {
    sig.done.push_back(j->completed());
    sig.lat_mean.push_back(j->metrics().total().mean());
  }
  return sig;
}

TEST(HeterogeneousCluster, MixedLunaSolarIsBitIdenticalAcrossRuns) {
  const HeteroSig a = run_hetero(99);
  const HeteroSig b = run_hetero(99);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.done.size(), 2u);
  EXPECT_EQ(a.done[0], 250u);  // both nodes actually finished their I/O
  EXPECT_EQ(a.done[1], 250u);
  // And the two generations genuinely behave differently on one fabric.
  EXPECT_NE(a.lat_mean[0], a.lat_mean[1]);
}

TEST(HeterogeneousCluster, ObservabilityOnVsOffIsBitIdentical) {
  const HeteroSig dark = run_hetero(99);
  obs::ObsConfig oc;
  oc.sample_interval = us(20);
  obs::Obs obs(oc);
  const HeteroSig lit = run_hetero(99, &obs);
  EXPECT_EQ(dark, lit);
  EXPECT_GT(obs.sampler().samples_taken(), 0u);
}

// Chaos against a heterogeneous fleet, with faults addressed to a *single*
// node's stack: a CPU stall on the LUNA node and a PCIe degrade on the
// SOLAR node's DPU. Two runs must match signatures, and both faults must
// actually land (the injector resolves them through the stack interface).
TEST(HeterogeneousCluster, ChaosOnSingleNodeStackIsDeterministic) {
  chaos::HarnessConfig cfg;
  cfg.stack = StackKind::kLuna;
  cfg.compute_stacks = {StackKind::kLuna, StackKind::kSolar};
  cfg.seed = 31337;
  cfg.active = ms(300);
  cfg.poisson_iops = 900.0;
  cfg.readback_samples = 8;

  chaos::FaultEvent stall;
  stall.at = ms(20);
  stall.duration = ms(60);
  stall.kind = chaos::FaultKind::kCpuStall;
  stall.target = {chaos::TargetKind::kComputeCpu, /*index=*/0, /*sub=*/-1};
  cfg.plan.events.push_back(stall);

  chaos::FaultEvent pcie;
  pcie.at = ms(40);
  pcie.duration = ms(120);
  pcie.kind = chaos::FaultKind::kPcieDegrade;
  pcie.target = {chaos::TargetKind::kComputePcie, /*index=*/1, /*sub=*/-1};
  pcie.magnitude = 0.25;
  cfg.plan.events.push_back(pcie);

  const chaos::RunReport a = chaos::run_chaos(cfg);
  const chaos::RunReport b = chaos::run_chaos(cfg);
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_EQ(a.faults_applied, 2u);
  EXPECT_EQ(a.faults_reverted, 2u);
  EXPECT_GT(a.ios_completed, 0u);
  EXPECT_TRUE(a.ok()) << a.violations.size() << " violations";
}

}  // namespace
}  // namespace repro::ebs
