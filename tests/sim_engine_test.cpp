#include "sim/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/cpu.h"
#include "sim/pcie.h"
#include "sim/sharded.h"

namespace repro::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(us(30), [&] { order.push_back(3); });
  eng.at(us(10), [&] { order.push_back(1); });
  eng.at(us(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), us(30));
}

TEST(Engine, EqualTimestampsRunInScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.at(us(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, AfterIsRelativeToNow) {
  Engine eng;
  TimeNs fired_at = -1;
  eng.at(us(10), [&] { eng.after(us(5), [&] { fired_at = eng.now(); }); });
  eng.run();
  EXPECT_EQ(fired_at, us(15));
}

TEST(Engine, PastTimesClampToNow) {
  Engine eng;
  TimeNs fired_at = -1;
  eng.at(us(10), [&] { eng.at(us(3), [&] { fired_at = eng.now(); }); });
  eng.run();
  EXPECT_EQ(fired_at, us(10));
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine eng;
  TimeNs fired_at = -1;
  eng.after(-5, [&] { fired_at = eng.now(); });
  eng.run();
  EXPECT_EQ(fired_at, 0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  const TimerId id = eng.schedule_at(us(10), [&] { fired = true; });
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireReturnsFalseish) {
  Engine eng;
  const TimerId id = eng.schedule_at(us(1), [] {});
  eng.run();
  // Cancel of an already-fired id must not prevent anything or crash;
  // a second cancel of the same id is a no-op.
  eng.cancel(id);
  bool fired = false;
  eng.schedule_at(us(2), [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelAfterFireDoesNotCorruptPending) {
  // Regression: the old scheduler counted canceled tombstones separately
  // and a cancel() after the event had already fired made pending()
  // underflow to a huge value.
  Engine eng;
  const TimerId id = eng.schedule_at(us(1), [] {});
  EXPECT_EQ(eng.pending(), 1u);
  eng.run();
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_FALSE(eng.cancel(id));
  EXPECT_EQ(eng.pending(), 0u);  // was 2^64-1 with the tombstone counter
  eng.schedule_at(us(2), [] {});
  EXPECT_EQ(eng.pending(), 1u);
}

TEST(Engine, PendingTracksScheduleCancelFire) {
  Engine eng;
  std::vector<TimerId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(eng.schedule_at(us(10 + i), [] {}));
  }
  EXPECT_EQ(eng.pending(), 8u);
  EXPECT_TRUE(eng.cancel(ids[2]));
  EXPECT_TRUE(eng.cancel(ids[5]));
  EXPECT_FALSE(eng.cancel(ids[5]));  // double cancel
  EXPECT_EQ(eng.pending(), 6u);
  eng.run_until(us(12));
  EXPECT_EQ(eng.pending(), 4u);  // 13, 14, 16, 17 left (12 and 15 canceled)
  eng.run();
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(Engine, StaleIdAfterSlotReuseDoesNotCancelNewTimer) {
  // A fired timer's slot is recycled; the old TimerId must not be able to
  // cancel whatever new timer now occupies that slot.
  Engine eng;
  const TimerId old_id = eng.schedule_at(us(1), [] {});
  eng.run();
  bool fired = false;
  // The freed node is reused by the next schedule (LIFO free list).
  eng.schedule_at(us(5), [&] { fired = true; });
  EXPECT_FALSE(eng.cancel(old_id));
  eng.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, FifoAcrossSourcesAtEqualTimestamps) {
  // Events scheduled from different "sources" (top level, callbacks, at()
  // vs after()) for the same instant fire in global schedule order.
  Engine eng;
  std::vector<int> order;
  eng.at(us(10), [&] { order.push_back(0); });
  eng.schedule_at(us(10), [&] { order.push_back(1); });
  eng.at(us(5), [&] {
    eng.at(us(10), [&] { order.push_back(2); });
    eng.after(us(5), [&] { order.push_back(3); });
  });
  eng.at(us(10), [&] { order.push_back(4); });
  eng.run();
  // 0, 1, 4 were scheduled before the run; 2 and 3 at us(5) during it —
  // FIFO within a timestamp is global schedule order, not source order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 4, 2, 3}));
}

TEST(Engine, FifoPreservedAcrossCancellations) {
  Engine eng;
  std::vector<int> order;
  std::vector<TimerId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(eng.schedule_at(us(7), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 16; i += 2) eng.cancel(ids[static_cast<size_t>(i)]);
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9, 11, 13, 15}));
}

TEST(Engine, LongDelaysCascadeToExactTimes) {
  // Spread events across every level of the timer hierarchy: each must
  // fire at exactly its scheduled instant even after multiple cascades.
  Engine eng;
  const std::vector<TimeNs> times = {
      1,       63,        64,        65,         4095,         4096,
      100000,  1 << 20,   1 << 26,   TimeNs{1} << 32, TimeNs{1} << 40,
      seconds(1), seconds(100), seconds(3600)};
  std::vector<TimeNs> fired;
  for (TimeNs t : times) {
    eng.at(t, [&fired, &eng] { fired.push_back(eng.now()); });
  }
  eng.run();
  std::vector<TimeNs> expect = times;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(fired, expect);
}

TEST(Engine, RandomizedScheduleCancelMatchesModel) {
  // Drive the wheel with a deterministic random mix of schedules and
  // cancels and check it against a straightforward model: every surviving
  // event fires exactly once, in nondecreasing time order, FIFO within a
  // timestamp, and the clock ends at the latest fired time.
  Engine eng;
  std::mt19937 rng(12345);
  std::uniform_int_distribution<TimeNs> when(0, 100000);
  struct Rec {
    TimerId id;
    TimeNs t;
    std::uint64_t seq;
    bool canceled = false;
  };
  std::vector<Rec> recs;
  std::vector<std::pair<TimeNs, std::uint64_t>> fired;
  std::uint64_t seq = 0;
  for (int i = 0; i < 5000; ++i) {
    if (!recs.empty() && rng() % 4 == 0) {
      Rec& victim = recs[rng() % recs.size()];
      const bool want = !victim.canceled;
      EXPECT_EQ(eng.cancel(victim.id), want);
      victim.canceled = true;
    } else {
      const TimeNs t = when(rng);
      const std::uint64_t s = seq++;
      recs.push_back(
          {eng.schedule_at(t, [&fired, t, s] { fired.emplace_back(t, s); }),
           t, s});
    }
  }
  std::size_t live = 0;
  for (const auto& r : recs) live += !r.canceled;
  EXPECT_EQ(eng.pending(), live);
  eng.run();

  std::vector<std::pair<TimeNs, std::uint64_t>> expect;
  for (const auto& r : recs) {
    if (!r.canceled) expect.emplace_back(r.t, r.seq);
  }
  std::stable_sort(expect.begin(), expect.end());  // time, then seq = FIFO
  EXPECT_EQ(fired, expect);
  EXPECT_EQ(eng.pending(), 0u);
  if (!expect.empty()) {
    EXPECT_EQ(eng.now(), expect.back().first);
  }
}

TEST(Engine, MoveOnlyCallbacksSupported) {
  // The packet path schedules lambdas owning move-only pooled packets;
  // the engine's callback type must accept move-only captures.
  Engine eng;
  auto token = std::make_unique<int>(41);
  int seen = 0;
  eng.at(us(1), [&seen, token = std::move(token)] { seen = *token + 1; });
  eng.run();
  EXPECT_EQ(seen, 42);
}

TEST(Engine, CancelUnknownIdIsFalse) {
  Engine eng;
  EXPECT_FALSE(eng.cancel(0));
  EXPECT_FALSE(eng.cancel(9999));
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Engine eng;
  int count = 0;
  eng.at(us(10), [&] { ++count; });
  eng.at(us(20), [&] { ++count; });
  eng.at(us(30), [&] { ++count; });
  eng.run_until(us(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(eng.now(), us(20));
  eng.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, RunUntilWithOnlyCanceledEvents) {
  Engine eng;
  const TimerId id = eng.schedule_at(us(5), [] { FAIL(); });
  eng.cancel(id);
  eng.run_until(us(10));
  EXPECT_EQ(eng.now(), us(10));
}

TEST(Engine, StopInterruptsRun) {
  Engine eng;
  int count = 0;
  eng.at(us(1), [&] {
    ++count;
    eng.stop();
  });
  eng.at(us(2), [&] { ++count; });
  eng.run();
  EXPECT_EQ(count, 1);
  eng.run();
  EXPECT_EQ(count, 2);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) eng.after(us(1), chain);
  };
  eng.after(us(1), chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eng.now(), us(100));
  EXPECT_EQ(eng.executed(), 100u);
}

TEST(CpuCore, SerializesWork) {
  Engine eng;
  CpuCore core(eng, "c0");
  std::vector<TimeNs> done;
  eng.at(0, [&] {
    core.run(us(10), [&] { done.push_back(eng.now()); });
    core.run(us(5), [&] { done.push_back(eng.now()); });
  });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], us(10));
  EXPECT_EQ(done[1], us(15));  // queued behind the first item
  EXPECT_EQ(core.busy_ns(), us(15));
}

TEST(CpuCore, IdleGapsDoNotAccumulateBusy) {
  Engine eng;
  CpuCore core(eng, "c0");
  eng.at(0, [&] { core.run(us(1)); });
  eng.at(us(100), [&] { core.run(us(1)); });
  eng.run();
  EXPECT_EQ(core.busy_ns(), us(2));
  EXPECT_NEAR(core.utilization(), 2.0 / 101.0, 1e-6);
}

TEST(CpuCore, BacklogReflectsQueuedWork) {
  Engine eng;
  CpuCore core(eng, "c0");
  eng.at(0, [&] {
    core.run(us(10));
    EXPECT_EQ(core.backlog(), us(10));
  });
  eng.run();
  EXPECT_EQ(core.backlog(), 0);
}

TEST(CpuCore, ZeroAndNegativeCostAreInstant) {
  Engine eng;
  CpuCore core(eng, "c0");
  bool fired = false;
  eng.at(us(3), [&] { core.run(-7, [&] { fired = true; }); });
  eng.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(core.busy_ns(), 0);
}

TEST(CpuPool, ByHashPinsAffinity) {
  Engine eng;
  CpuPool pool(eng, "p", 4, CpuPool::Dispatch::kByHash);
  // Same affinity key must always land on the same core: submit many items
  // with one key and check exactly one core accumulated busy time.
  eng.at(0, [&] {
    for (int i = 0; i < 20; ++i) pool.submit(42, us(1));
  });
  eng.run();
  int busy_cores = 0;
  for (int i = 0; i < pool.size(); ++i) {
    busy_cores += (pool.core(i).busy_ns() > 0);
  }
  EXPECT_EQ(busy_cores, 1);
  EXPECT_EQ(pool.total_busy_ns(), us(20));
}

TEST(CpuPool, ByHashSpreadsDistinctKeys) {
  Engine eng;
  CpuPool pool(eng, "p", 4, CpuPool::Dispatch::kByHash);
  eng.at(0, [&] {
    for (std::uint64_t k = 0; k < 64; ++k) pool.submit(k, us(1));
  });
  eng.run();
  int busy_cores = 0;
  for (int i = 0; i < pool.size(); ++i) {
    busy_cores += (pool.core(i).busy_ns() > 0);
  }
  EXPECT_EQ(busy_cores, 4);
}

TEST(CpuPool, LeastLoadedBalances) {
  Engine eng;
  CpuPool pool(eng, "p", 2, CpuPool::Dispatch::kLeastLoaded);
  eng.at(0, [&] {
    pool.submit(0, us(10));
    pool.submit(0, us(10));
    pool.submit(0, us(10));
  });
  eng.run();
  // Third item should queue behind whichever core frees first: total span
  // 20us, not 30us.
  EXPECT_EQ(eng.now(), us(20));
}

TEST(CpuPool, CrossCoreOverheadCharged) {
  Engine eng;
  CpuPool pool(eng, "p", 2, CpuPool::Dispatch::kLeastLoaded, us(2));
  eng.at(0, [&] { pool.submit(0, us(10)); });
  eng.run();
  EXPECT_EQ(pool.total_busy_ns(), us(12));
}

TEST(CpuPool, ConsumedCoresMetric) {
  Engine eng;
  CpuPool pool(eng, "p", 4, CpuPool::Dispatch::kByHash);
  eng.at(0, [&] {
    for (std::uint64_t k = 0; k < 4; ++k) pool.submit(k, ms(1));
  });
  eng.run_until(ms(1));
  // 4 cores busy the whole time -> consumed ~4.
  EXPECT_NEAR(pool.consumed_cores(ms(1)), 4.0, 0.05);
}

TEST(CpuPool, ResetAccountingExcludesWarmup) {
  Engine eng;
  CpuPool pool(eng, "p", 1, CpuPool::Dispatch::kByHash);
  eng.at(0, [&] { pool.submit(0, us(100)); });
  eng.run();
  pool.reset_accounting();
  EXPECT_EQ(pool.total_busy_ns(), 0);
  eng.at(eng.now(), [&] { pool.submit(0, us(7)); });
  eng.run();
  EXPECT_EQ(pool.total_busy_ns(), us(7));
}

TEST(Pcie, TransferTakesSerializationPlusLatency) {
  Engine eng;
  // 100 Gbps, 1us per-transfer latency; 12500 bytes = 1us serialization.
  PcieChannel pcie(eng, "pcie", gbps(100), us(1));
  TimeNs done_at = -1;
  eng.at(0, [&] { pcie.transfer(12500, [&] { done_at = eng.now(); }); });
  eng.run();
  EXPECT_EQ(done_at, us(2));
  EXPECT_EQ(pcie.bytes_transferred(), 12500u);
}

TEST(Pcie, BackToBackTransfersQueue) {
  Engine eng;
  PcieChannel pcie(eng, "pcie", gbps(100), 0);
  std::vector<TimeNs> done;
  eng.at(0, [&] {
    pcie.transfer(12500, [&] { done.push_back(eng.now()); });
    pcie.transfer(12500, [&] { done.push_back(eng.now()); });
  });
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], us(1));
  EXPECT_EQ(done[1], us(2));
  EXPECT_GT(pcie.goodput(), 0.0);
}

TEST(Pcie, GoodputCeiling) {
  Engine eng;
  PcieChannel pcie(eng, "pcie", gbps(10), 0);
  eng.at(0, [&] {
    for (int i = 0; i < 1000; ++i) pcie.transfer(125000);
  });
  eng.run();
  // 1000 * 125KB at 10 Gbps should take 100 ms -> goodput pinned at 10G.
  EXPECT_NEAR(pcie.goodput() / 1e9, 10.0, 0.1);
}

// A cross-shard message posted at exactly `epoch start + lookahead` sits on
// the conservative boundary: it is the earliest instant the contract allows,
// and it must land *after* the destination shard's local events at the same
// timestamp (locals run inside the epoch, the message is delivered at the
// barrier). Both facts must be thread-count independent.
TEST(ShardedEngine, CrossShardAtExactLookaheadBoundary) {
  for (int threads : {1, 2}) {
    ShardedEngine se(2, threads, us(1));
    std::vector<std::pair<int, TimeNs>> order;  // only shard 1 writes
    se.shard(1).at(us(1), [&] { order.push_back({1, se.shard(1).now()}); });
    se.shard(0).at(0, [&] {
      se.post(1, us(1), [&] { order.push_back({2, se.shard(1).now()}); });
    });
    se.run();
    ASSERT_EQ(order.size(), 2u) << "threads " << threads;
    EXPECT_EQ(order[0], (std::pair<int, TimeNs>{1, us(1)}));
    EXPECT_EQ(order[1], (std::pair<int, TimeNs>{2, us(1)}));
    EXPECT_GE(se.now(), us(1));  // drain runs the delivery epoch to its end
  }
}

// Zero-delay same-shard self-messages never cross the mailbox: an event that
// schedules onto its own engine at the current instant runs later in the
// same epoch, before any later-timestamped work, at any thread count.
TEST(ShardedEngine, ZeroDelaySameShardSelfMessage) {
  for (int threads : {1, 2}) {
    ShardedEngine se(2, threads, us(1));
    std::vector<std::pair<int, TimeNs>> order;  // only shard 0 writes
    se.shard(0).at(ns(500), [&] {
      order.push_back({1, se.shard(0).now()});
      se.shard(0).at(se.shard(0).now(),
                     [&] { order.push_back({2, se.shard(0).now()}); });
    });
    se.shard(0).at(ns(700), [&] { order.push_back({3, se.shard(0).now()}); });
    se.run();
    ASSERT_EQ(order.size(), 3u) << "threads " << threads;
    EXPECT_EQ(order[0], (std::pair<int, TimeNs>{1, ns(500)}));
    EXPECT_EQ(order[1], (std::pair<int, TimeNs>{2, ns(500)}));
    EXPECT_EQ(order[2], (std::pair<int, TimeNs>{3, ns(700)}));
  }
}

// Randomized three-shard traffic: every shard runs a burster that picks a
// pseudo-random peer, posts a burst of sequenced messages (per-pair-monotone
// timestamps), and reschedules itself with jitter. The delivery log at each
// destination must (a) preserve per-(source, destination) FIFO order and
// (b) be bit-identical at 1, 2 and 3 worker threads.
TEST(ShardedEngine, RandomizedThreeShardFifoPreservation) {
  struct Ctx {
    ShardedEngine* se = nullptr;
    std::array<std::vector<std::uint64_t>, 3> recv;       // writer: dst shard
    std::array<std::array<std::uint32_t, 3>, 3> seq{};    // writer: src shard
    std::array<std::array<TimeNs, 3>, 3> last_t{};        // writer: src shard
    std::array<std::mt19937_64, 3> rng;
    std::array<int, 3> rounds_left{};
  };
  auto encode = [](int src, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(src) << 32) | seq;
  };

  auto run = [&](int threads) {
    auto ctx = std::make_shared<Ctx>();
    ShardedEngine se(3, threads, us(1));
    ctx->se = &se;
    for (int s = 0; s < 3; ++s) {
      ctx->rng[static_cast<std::size_t>(s)].seed(0x5EEDull + s);
      ctx->rounds_left[static_cast<std::size_t>(s)] = 25;
    }
    auto burst = std::make_shared<std::function<void(int)>>();
    *burst = [ctx, burst, encode](int src) {
      ShardedEngine& eng = *ctx->se;
      Engine& home = eng.shard(src);
      auto& rng = ctx->rng[static_cast<std::size_t>(src)];
      const int dst = (src + 1 + static_cast<int>(rng() % 2)) % 3;
      const int count = 1 + static_cast<int>(rng() % 4);
      // Per-pair-monotone send times: FIFO is only promised for messages a
      // source emits in nondecreasing timestamp order, like a real wire.
      TimeNs t = home.now() + eng.lookahead() +
                 static_cast<TimeNs>(rng() % 3000);
      t = std::max(t, ctx->last_t[static_cast<std::size_t>(src)]
                                 [static_cast<std::size_t>(dst)]);
      ctx->last_t[static_cast<std::size_t>(src)]
                 [static_cast<std::size_t>(dst)] = t;
      for (int k = 0; k < count; ++k) {
        const std::uint64_t payload =
            encode(src, ctx->seq[static_cast<std::size_t>(src)]
                                [static_cast<std::size_t>(dst)]++);
        eng.post(dst, t, [ctx, dst, payload] {
          ctx->recv[static_cast<std::size_t>(dst)].push_back(payload);
        });
      }
      if (--ctx->rounds_left[static_cast<std::size_t>(src)] > 0) {
        home.after(ns(500) + static_cast<TimeNs>(rng() % 2000),
                   [burst, src] { (*burst)(src); });
      }
    };
    for (int s = 0; s < 3; ++s) {
      se.shard(s).at(ns(100 * s), [burst, s] { (*burst)(s); });
    }
    se.run();
    ctx->se = nullptr;
    return ctx;
  };

  const auto a = run(1);
  const auto b = run(2);
  const auto c = run(3);
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(a->recv[d], b->recv[d]) << "dst " << d << " @2 threads";
    EXPECT_EQ(a->recv[d], c->recv[d]) << "dst " << d << " @3 threads";
    // FIFO per (src, dst): each source's sequence numbers at this
    // destination appear exactly in send order, no gaps, no reordering.
    std::array<std::uint32_t, 3> next{};
    for (std::uint64_t p : a->recv[d]) {
      const auto src = static_cast<std::size_t>(p >> 32);
      const auto seq = static_cast<std::uint32_t>(p);
      ASSERT_EQ(seq, next[src]++) << "dst " << d << " src " << src;
      ++total;
    }
  }
  EXPECT_GT(total, 100u);  // the sweep actually generated traffic
}

}  // namespace
}  // namespace repro::sim
