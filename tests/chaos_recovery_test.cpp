// Recovery coverage: every FaultKind in the DSL, applied for a bounded
// window and then repaired, must leave the cluster back at steady state —
// all I/O completes within the recovery SLO, committed data reads back
// with matching CRCs, no pooled packet or engine timer leaks, and
// post-recovery throughput lands within tolerance of a fault-free
// baseline. One parameterized run per kind keeps the sweep honest: a
// revert that forgets to undo its knob (or repairs too much, clobbering a
// composed fault) shows up as a violation or a throughput crater.
#include <gtest/gtest.h>

#include <string>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"

namespace repro::chaos {
namespace {

using ebs::StackKind;

struct KindCase {
  FaultKind kind;
  FaultTarget target;
  double magnitude = 0.0;
  TimeNs param = 0;
};

HarnessConfig base_config() {
  HarnessConfig cfg;
  cfg.stack = StackKind::kSolar;  // has FPGA, so every kind is injectable
  cfg.seed = 404;
  cfg.active = ms(700);
  cfg.poisson_iops = 1000.0;
  cfg.readback_samples = 24;
  return cfg;
}

class ChaosRecoveryTest : public ::testing::TestWithParam<KindCase> {};

TEST_P(ChaosRecoveryTest, FaultThenRepairRestoresSteadyState) {
  const KindCase& kc = GetParam();

  HarnessConfig cfg = base_config();
  FaultEvent e;
  e.at = ms(50);
  e.duration = ms(300);
  e.kind = kc.kind;
  e.target = kc.target;
  e.magnitude = kc.magnitude;
  e.param = kc.param;
  cfg.plan.name = std::string("recovery-") + to_string(kc.kind);
  cfg.plan.events.push_back(e);

  const RunReport faulted = run_chaos(cfg);
  ASSERT_TRUE(faulted.ok()) << faulted.violations.front().oracle << ": "
                            << faulted.violations.front().detail;
  EXPECT_EQ(faulted.faults_applied, 1u);
  EXPECT_EQ(faulted.faults_reverted, 1u);
  EXPECT_GT(faulted.crc_checks, 0u);

  // Throughput tolerance vs a fault-free baseline: the fault window is
  // 300 ms of a 700 ms run, so even a fully-stalled window leaves > half
  // the baseline's completions. A revert that silently sticks (rate left
  // on, SSD left stalled, PCIe left degraded) drags the whole run down
  // and the drain phase out, and trips this floor.
  static const RunReport baseline = run_chaos(base_config());
  ASSERT_TRUE(baseline.ok());
  EXPECT_GE(faulted.ios_completed, baseline.ios_completed / 2)
      << "post-recovery throughput cratered: " << faulted.ios_completed
      << " vs baseline " << baseline.ios_completed;
}

std::string case_name(const ::testing::TestParamInfo<KindCase>& info) {
  return to_string(info.param.kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ChaosRecoveryTest,
    ::testing::Values(
        KindCase{FaultKind::kLinkFail, {TargetKind::kComputeNic, 0, 0}},
        KindCase{FaultKind::kDeviceStop, {TargetKind::kStorageTor, 0, -1}},
        KindCase{FaultKind::kDeviceSilent, {TargetKind::kStorageTor, 1, -1}},
        KindCase{FaultKind::kBlackhole, {TargetKind::kStorageSpine, 0, -1}, 0.5},
        KindCase{FaultKind::kLoss, {TargetKind::kComputeTor, 0, -1}, 0.3},
        KindCase{FaultKind::kCorrupt, {TargetKind::kComputeTor, 1, -1}, 0.1},
        KindCase{FaultKind::kDuplicate, {TargetKind::kStorageTor, 2, -1}, 0.1},
        KindCase{FaultKind::kReorder,
                 {TargetKind::kStorageTor, 3, -1},
                 0.2,
                 us(150)},
        KindCase{FaultKind::kSsdLatency, {TargetKind::kStorageSsd, 0, -1}, 8.0},
        KindCase{FaultKind::kSsdStall, {TargetKind::kStorageSsd, 1, -1}},
        KindCase{FaultKind::kCpuStall, {TargetKind::kStorageCpu, 2, -1}},
        KindCase{FaultKind::kPcieDegrade, {TargetKind::kComputePcie, 0, -1}, 4.0},
        KindCase{FaultKind::kFpgaPreCrcFlip,
                 {TargetKind::kComputeFpga, 0, -1},
                 5e-4},
        KindCase{FaultKind::kFpgaPostCrcFlip,
                 {TargetKind::kComputeFpga, 1, -1},
                 5e-4},
        KindCase{FaultKind::kFpgaCrcEngine,
                 {TargetKind::kComputeFpga, 0, -1},
                 1e-3}),
    case_name);

// ---------------------------------------------------------------------------
// Erasure-coded fleet under the same recovery contract. The run carries
// the extra EC durability oracle: any ≤m concurrent fragment-holder
// outage must stay green (degraded reads + background rebuild), and a
// minimized m+1 plan must fire it — validating the oracle the same way
// sim_fuzz validates the hang oracle with a planted bug.

HarnessConfig ec_config() {
  HarnessConfig cfg = base_config();
  cfg.seed = 405;
  cfg.ec.enabled = true;
  cfg.ec.k = 2;
  cfg.ec.m = 1;  // pool of 4 storage nodes = k + m + 1: one spare
  return cfg;
}

FaultEvent ec_fault(FaultKind kind, TargetKind target, int index,
                    TimeNs duration) {
  FaultEvent e;
  e.at = ms(50);
  e.duration = duration;
  e.kind = kind;
  e.target.kind = target;
  e.target.index = index;
  e.target.sub = -1;
  return e;
}

TEST(EcRecovery, SsdStallOnFragmentHolderStaysGreen) {
  HarnessConfig cfg = ec_config();
  cfg.plan.name = "ec-ssd-stall";
  cfg.plan.events.push_back(
      ec_fault(FaultKind::kSsdStall, TargetKind::kStorageSsd, 0, ms(300)));
  const RunReport r = run_chaos(cfg);
  ASSERT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
  EXPECT_EQ(r.faults_applied, 1u);
  EXPECT_EQ(r.faults_reverted, 1u);
  EXPECT_GT(r.crc_checks, 0u);
}

TEST(EcRecovery, FailStopWithinBudgetRepairsAndRebuilds) {
  HarnessConfig cfg = ec_config();
  cfg.plan.name = "ec-fail-stop";
  cfg.plan.events.push_back(
      ec_fault(FaultKind::kDeviceStop, TargetKind::kStorageNic, 1, ms(300)));
  const RunReport r = run_chaos(cfg);
  ASSERT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
  EXPECT_EQ(r.faults_reverted, 1u);
  EXPECT_GT(r.ios_completed, 0u);
}

TEST(EcRecovery, MinimizedPlanAtMPlusOneTripsOracle) {
  HarnessConfig cfg = ec_config();
  cfg.plan.name = "ec-m-plus-one-minimized";
  // Two permanent concurrent fail-stops: the smallest plan that exceeds
  // m = 1. Still down at the mid-run audit → real data loss, detected.
  cfg.plan.events.push_back(
      ec_fault(FaultKind::kDeviceStop, TargetKind::kStorageNic, 0, 0));
  cfg.plan.events.push_back(
      ec_fault(FaultKind::kDeviceStop, TargetKind::kStorageNic, 1, 0));
  const RunReport r = run_chaos(cfg);
  EXPECT_FALSE(r.ok());
  bool fired = false;
  for (const Violation& v : r.violations) {
    if (v.oracle == "ec_durability") fired = true;
  }
  EXPECT_TRUE(fired) << "m+1 concurrent losses must trip the EC oracle";
}

}  // namespace
}  // namespace repro::chaos
