#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/nic.h"
#include "net/packet.h"
#include "net/switch.h"
#include "net/topology.h"
#include "sim/engine.h"

namespace repro::net {
namespace {

Packet make_pkt(IpAddr src, IpAddr dst, std::uint16_t sport,
                std::uint16_t dport, std::uint32_t size,
                Proto proto = Proto::kUdp) {
  Packet p;
  p.flow = FlowKey{src, dst, sport, dport, proto};
  p.size_bytes = size;
  return p;
}

struct Fixture {
  sim::Engine eng;
  Network net{eng, NetworkParams{}, 12345};
};

TEST(FlowHash, DeterministicAndSaltSensitive) {
  const FlowKey f{1, 2, 100, 200, Proto::kUdp};
  EXPECT_EQ(flow_hash(f, 7), flow_hash(f, 7));
  EXPECT_NE(flow_hash(f, 7), flow_hash(f, 8));
  FlowKey g = f;
  g.src_port = 101;
  EXPECT_NE(flow_hash(f, 7), flow_hash(g, 7));
}

TEST(PacketApp, TypedPayloadRoundTrip) {
  Packet p;
  emplace_app<int>(p, 42);
  auto v = app_as<int>(p);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(app_as<double>(p), nullptr);
}

TEST(TwoHosts, DeliversPacket) {
  Fixture f;
  auto t = build_two_hosts(f.net, gbps(10), us(1));
  int delivered = 0;
  t.b->set_deliver([&](Packet& pkt) {
    ++delivered;
    EXPECT_EQ(pkt.flow.dst_ip, t.b->ip());
    EXPECT_GT(pkt.id, 0u);
  });
  f.eng.at(0, [&] {
    t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 10, 20, 1500));
  });
  f.eng.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(t.a->tx_packets(), 1u);
  EXPECT_EQ(t.b->rx_packets(), 1u);
}

TEST(TwoHosts, LatencyIsSerializationPlusPropagationPerHop) {
  Fixture f;
  // 1 Gbps, 10us prop: 1500B = 12us serialization per hop, 2 hops.
  auto t = build_two_hosts(f.net, gbps(1), us(10));
  TimeNs arrived = -1;
  t.b->set_deliver([&](Packet&) { arrived = f.eng.now(); });
  f.eng.at(0, [&] {
    t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 1, 2, 1500));
  });
  f.eng.run();
  EXPECT_EQ(arrived, 2 * (us(12) + us(10)));
}

TEST(TwoHosts, QueueFullDropsTail) {
  Fixture f;
  // Tiny queue: 3000 bytes capacity, slow link.
  auto t = build_two_hosts(f.net, gbps(1), us(1), 3000);
  int delivered = 0;
  t.b->set_deliver([&](Packet&) { ++delivered; });
  f.eng.at(0, [&] {
    for (int i = 0; i < 10; ++i) {
      t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 1, 2, 1500));
    }
  });
  f.eng.run();
  // One in flight + 2 queued at the NIC; the rest dropped there or at sw.
  EXPECT_LT(delivered, 10);
  EXPECT_GT(f.net.drops().queue_full, 0u);
  EXPECT_EQ(delivered + static_cast<int>(f.net.drops().queue_full), 10);
}

TEST(TwoHosts, HighPriorityOvertakesBestEffort) {
  Fixture f;
  auto t = build_two_hosts(f.net, gbps(1), us(1));
  std::vector<std::uint8_t> arrival_order;
  t.b->set_deliver([&](Packet& pkt) { arrival_order.push_back(pkt.priority); });
  f.eng.at(0, [&] {
    // Three best-effort then one priority packet; priority jumps the queue
    // (but not the packet already serializing).
    for (int i = 0; i < 3; ++i) {
      t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 1, 2, 1500));
    }
    Packet hi = make_pkt(t.a->ip(), t.b->ip(), 9, 9, 1500);
    hi.priority = 0;
    t.a->send_packet(std::move(hi));
  });
  f.eng.run();
  ASSERT_EQ(arrival_order.size(), 4u);
  EXPECT_EQ(arrival_order[1], 0);  // priority arrives second
}

TEST(TwoHosts, RandomLossDropsApproximatelyRate) {
  Fixture f;
  auto t = build_two_hosts(f.net, gbps(100), ns(100));
  int delivered = 0;
  t.b->set_deliver([&](Packet&) { ++delivered; });
  f.net.set_loss_rate(*t.sw, 0.5);
  f.eng.at(0, [&] {
    for (int i = 0; i < 2000; ++i) {
      t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(),
                                static_cast<std::uint16_t>(i), 2, 100));
    }
  });
  f.eng.run();
  EXPECT_NEAR(delivered, 1000, 120);
  EXPECT_EQ(f.net.drops().random_loss, 2000u - static_cast<unsigned>(delivered));
}

TEST(TwoHosts, SilentDeadDeviceDropsEverything) {
  Fixture f;
  auto t = build_two_hosts(f.net, gbps(10), us(1));
  int delivered = 0;
  t.b->set_deliver([&](Packet&) { ++delivered; });
  f.net.fail_device_silent(*t.sw);
  f.eng.at(0, [&] {
    t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 1, 2, 100));
  });
  f.eng.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(f.net.drops().device_dead, 1u);
  // Repair restores forwarding.
  f.net.repair_device(*t.sw);
  f.eng.at(f.eng.now(), [&] {
    t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 1, 2, 100));
  });
  f.eng.run();
  EXPECT_EQ(delivered, 1);
}

TEST(TwoHosts, BlackholeDropsOnlyAffectedFlows) {
  Fixture f;
  auto t = build_two_hosts(f.net, gbps(100), ns(100));
  int delivered = 0;
  t.b->set_deliver([&](Packet&) { ++delivered; });
  f.net.set_blackhole(*t.sw, 0.25);
  constexpr int kFlows = 4000;
  f.eng.at(0, [&] {
    for (int i = 0; i < kFlows; ++i) {
      t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(),
                                static_cast<std::uint16_t>(i % 65535), 2, 100));
    }
  });
  f.eng.run();
  EXPECT_NEAR(delivered, kFlows * 3 / 4, kFlows / 20);
  // Deterministic per flow: an affected flow stays affected.
  const auto drops_before = f.net.drops().blackhole;
  f.eng.at(f.eng.now(), [&] {
    t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 7, 2, 100));
    t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 7, 2, 100));
  });
  f.eng.run();
  const auto new_drops = f.net.drops().blackhole - drops_before;
  EXPECT_TRUE(new_drops == 0 || new_drops == 2) << new_drops;
}

TEST(TwoHosts, FailStopLinkLosesInFlightThenExcluded) {
  Fixture f;
  auto t = build_two_hosts(f.net, gbps(10), us(1));
  int delivered = 0;
  t.b->set_deliver([&](Packet&) { ++delivered; });
  // Kill the b-side link; before detection the switch still transmits into
  // it and packets die, after detection sends are dropped as no_route.
  f.eng.at(0, [&] { f.net.fail_link(*t.b, 0); });
  f.eng.at(us(100), [&] {
    t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 1, 2, 100));
  });
  f.eng.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(f.net.drops().link_down, 1u);  // lost in flight (pre-detection)

  f.eng.at(f.eng.now() + ms(100), [&] {  // well past detection
    t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 1, 2, 100));
  });
  f.eng.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_GE(f.net.drops().no_route, 1u);

  // Repair: traffic flows again after detection of carrier-up.
  f.net.repair_link(*t.b, 0);
  f.eng.at(f.eng.now() + ms(100), [&] {
    t.a->send_packet(make_pkt(t.a->ip(), t.b->ip(), 1, 2, 100));
  });
  f.eng.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Clos, BuildsExpectedDeviceCounts) {
  Fixture f;
  ClosConfig cfg;
  cfg.compute_servers = 8;
  cfg.storage_servers = 8;
  cfg.servers_per_rack = 4;
  cfg.spines_per_pod = 2;
  cfg.core_switches = 2;
  Clos clos = build_clos(f.net, cfg);
  EXPECT_EQ(clos.compute.size(), 8u);
  EXPECT_EQ(clos.storage.size(), 8u);
  EXPECT_EQ(clos.compute_tors.size(), 4u);  // 2 racks x ToR pair
  EXPECT_EQ(clos.storage_tors.size(), 4u);
  EXPECT_EQ(clos.compute_spines.size(), 2u);
  EXPECT_EQ(clos.cores.size(), 2u);
}

TEST(Clos, AllPairsReachable) {
  Fixture f;
  ClosConfig cfg;
  cfg.compute_servers = 6;
  cfg.storage_servers = 6;
  cfg.servers_per_rack = 3;
  Clos clos = build_clos(f.net, cfg);
  int delivered = 0;
  for (auto* nic : clos.storage) {
    nic->set_deliver([&](Packet&) { ++delivered; });
  }
  for (auto* nic : clos.compute) {
    nic->set_deliver([&](Packet&) { ++delivered; });
  }
  f.eng.at(0, [&] {
    for (auto* src : clos.compute) {
      for (auto* dst : clos.storage) {
        src->send_packet(make_pkt(src->ip(), dst->ip(), 5, 6, 200));
        dst->send_packet(make_pkt(dst->ip(), src->ip(), 6, 5, 200));
      }
    }
  });
  f.eng.run();
  EXPECT_EQ(delivered, 6 * 6 * 2);
}

TEST(Clos, EcmpSpreadsFlowsAcrossCores) {
  Fixture f;
  ClosConfig cfg;
  cfg.compute_servers = 4;
  cfg.storage_servers = 4;
  cfg.servers_per_rack = 4;
  cfg.spines_per_pod = 2;
  cfg.core_switches = 4;
  Clos clos = build_clos(f.net, cfg);
  clos.storage[0]->set_deliver([](Packet&) {});
  f.eng.at(0, [&] {
    // Many distinct source ports = many flows = all cores should carry some.
    for (int sport = 1; sport <= 512; ++sport) {
      clos.compute[0]->send_packet(
          make_pkt(clos.compute[0]->ip(), clos.storage[0]->ip(),
                   static_cast<std::uint16_t>(sport), 443, 200));
    }
  });
  f.eng.run();
  int cores_used = 0;
  for (auto* core : clos.cores) cores_used += (core->forwarded() > 0);
  EXPECT_EQ(cores_used, 4);
}

TEST(Clos, SameFlowStaysOnSamePath) {
  Fixture f;
  Clos clos = build_clos(f.net, ClosConfig{});
  clos.storage[0]->set_deliver([](Packet&) {});
  f.eng.at(0, [&] {
    for (int i = 0; i < 50; ++i) {
      clos.compute[0]->send_packet(make_pkt(
          clos.compute[0]->ip(), clos.storage[0]->ip(), 777, 443, 200));
    }
  });
  f.eng.run();
  // Exactly one core must have seen the flow.
  int cores_used = 0;
  for (auto* core : clos.cores) cores_used += (core->forwarded() > 0);
  EXPECT_EQ(cores_used, 1);
}

TEST(Clos, UplinkFailoverAfterDetection) {
  Fixture f;
  Clos clos = build_clos(f.net, ClosConfig{});
  Nic* src = clos.compute[0];
  Nic* dst = clos.storage[0];
  int delivered = 0;
  dst->set_deliver([&](Packet&) { ++delivered; });

  // Find which uplink flow 777 uses, fail that ToR link, wait past
  // detection, and confirm the same flow now flows via the sibling ToR.
  f.eng.at(0, [&] {
    src->send_packet(make_pkt(src->ip(), dst->ip(), 777, 443, 200));
  });
  f.eng.run();
  ASSERT_EQ(delivered, 1);
  const std::uint64_t tx0 = src->port(0).stats().pkts_tx;
  const int used = tx0 > 0 ? 0 : 1;
  f.net.fail_link(*src, used);
  f.eng.at(f.eng.now() + ms(100), [&] {
    src->send_packet(make_pkt(src->ip(), dst->ip(), 777, 443, 200));
  });
  f.eng.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_GT(src->port(1 - used).stats().pkts_tx, 0u);
}

TEST(Clos, SpineFailStopReroutesAfterReconvergence) {
  Fixture f;
  ClosConfig cfg;
  cfg.spines_per_pod = 2;
  Clos clos = build_clos(f.net, cfg);
  Nic* src = clos.compute[0];
  Nic* dst = clos.storage[0];
  int delivered = 0;
  dst->set_deliver([&](Packet&) { ++delivered; });
  f.eng.at(0, [&] { f.net.fail_device_stop(*clos.compute_spines[0]); });
  // After detect (10ms) + reconverge (50ms), everything flows via spine 1.
  f.eng.at(ms(100), [&] {
    for (int sport = 1; sport <= 64; ++sport) {
      src->send_packet(make_pkt(src->ip(), dst->ip(),
                                static_cast<std::uint16_t>(sport), 443, 200));
    }
  });
  f.eng.run();
  EXPECT_EQ(delivered, 64);
  EXPECT_EQ(clos.compute_spines[0]->forwarded(), 0u);
}

TEST(Clos, SilentSpineDeathBlackholesSubsetUntilRepair) {
  Fixture f;
  ClosConfig cfg;
  cfg.spines_per_pod = 2;
  Clos clos = build_clos(f.net, cfg);
  Nic* src = clos.compute[0];
  Nic* dst = clos.storage[0];
  int delivered = 0;
  dst->set_deliver([&](Packet&) { ++delivered; });
  f.net.fail_device_silent(*clos.compute_spines[0]);
  f.eng.at(ms(100), [&] {
    for (int sport = 1; sport <= 256; ++sport) {
      src->send_packet(make_pkt(src->ip(), dst->ip(),
                                static_cast<std::uint16_t>(sport), 443, 200));
    }
  });
  f.eng.run();
  // Roughly half the flows hash through the dead spine and vanish; the
  // control plane never excludes it (carrier is still up).
  EXPECT_GT(delivered, 64);
  EXPECT_LT(delivered, 192);
  EXPECT_GT(f.net.drops().device_dead, 0u);
}

TEST(Clos, IntRecordsAppendedPerSwitchHop) {
  Fixture f;
  Clos clos = build_clos(f.net, ClosConfig{});
  Nic* src = clos.compute[0];
  Nic* dst = clos.storage[0];
  std::size_t hops = 0;
  dst->set_deliver([&](Packet& pkt) { hops = pkt.int_records.size(); });
  f.eng.at(0, [&] {
    Packet p = make_pkt(src->ip(), dst->ip(), 1, 2, 4096);
    p.request_int = true;
    src->send_packet(std::move(p));
  });
  f.eng.run();
  // ToR -> spine -> core -> spine -> ToR = 5 switch hops.
  EXPECT_EQ(hops, 5u);
}

TEST(Clos, BaseRttIsAFewMicroseconds) {
  Fixture f;
  Clos clos = build_clos(f.net, ClosConfig{});
  Nic* src = clos.compute[0];
  Nic* dst = clos.storage[0];
  TimeNs fwd = -1, rtt = -1;
  dst->set_deliver([&](Packet& pkt) {
    fwd = f.eng.now();
    dst->send_packet(make_pkt(dst->ip(), src->ip(), pkt.flow.dst_port,
                              pkt.flow.src_port, 4096));
  });
  src->set_deliver([&](Packet&) { rtt = f.eng.now(); });
  f.eng.at(0, [&] {
    src->send_packet(make_pkt(src->ip(), dst->ip(), 1, 2, 4096));
  });
  f.eng.run();
  ASSERT_GT(fwd, 0);
  ASSERT_GT(rtt, fwd);
  // Base fabric RTT for 4KB jumbo frames should be in single-digit us,
  // matching the paper's 8.3us base RTT once stack overheads are added.
  EXPECT_LT(rtt, us(12));
  EXPECT_GT(rtt, us(4));
}

}  // namespace
}  // namespace repro::net
