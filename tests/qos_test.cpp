// SLO-aware overload control: contracts, the load predictor, early
// rejection, and the chaos interaction.
//
// The determinism tests mirror the overload bench at miniature scale: the
// same overloaded SOLAR fleet must produce bit-identical admission
// bookkeeping at 1, 2 and 8 worker threads, with early rejection on or
// off. The rejection-storm test runs the full chaos harness with the
// admission layer shedding most of the offered load — every oracle
// (exactly-once, recovery, durability) must stay green, because a
// rejection is a completion, not a loss.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "common/crc32.h"
#include "ebs/cluster.h"
#include "ebs/scenario.h"
#include "ec/maintenance.h"
#include "obs/json.h"
#include "obs/json_reader.h"
#include "qos/admission.h"
#include "qos/predictor.h"
#include "qos/scheduler.h"
#include "qos/slo.h"
#include "sa/segment_table.h"
#include "sim/shard_context.h"
#include "sim/sharded.h"
#include "workload/fio.h"

namespace repro::qos {
namespace {

using transport::IoCompleteFn;
using transport::IoRequest;
using transport::IoResult;

TEST(SloJson, SpecRoundTrip) {
  SloSpec s;
  s.target_p99 = us(1500);
  s.guaranteed_iops = 3200.0;
  s.cls = SloClass::kGuaranteed;

  std::ostringstream os;
  obs::JsonWriter w(os);
  write_slo(w, s);
  const std::string text = os.str();

  obs::JsonValue root;
  obs::JsonReader reader(text);
  ASSERT_TRUE(reader.parse(&root)) << reader.error();
  SloSpec back;
  ASSERT_TRUE(read_slo(root, &back));
  EXPECT_EQ(back.target_p99, s.target_p99);
  EXPECT_DOUBLE_EQ(back.guaranteed_iops, s.guaranteed_iops);
  EXPECT_EQ(back.cls, s.cls);
}

TEST(SloJson, ParamsRoundTrip) {
  QosParams p;
  p.enabled = true;
  p.early_reject = true;
  p.headroom = 0.75;
  p.reject_latency = us(25);
  p.predictor_window = ms(8);
  p.predictor_buckets = 16;
  p.sched_enabled = true;
  p.sched_weight_guaranteed = 5;
  p.sched_weight_best_effort = 2;

  std::ostringstream os;
  obs::JsonWriter w(os);
  write_qos_params(w, p);
  const std::string text = os.str();

  obs::JsonValue root;
  obs::JsonReader reader(text);
  ASSERT_TRUE(reader.parse(&root)) << reader.error();
  QosParams back;
  ASSERT_TRUE(read_qos_params(root, &back));
  EXPECT_EQ(back.enabled, p.enabled);
  EXPECT_EQ(back.early_reject, p.early_reject);
  EXPECT_DOUBLE_EQ(back.headroom, p.headroom);
  EXPECT_EQ(back.reject_latency, p.reject_latency);
  EXPECT_EQ(back.predictor_window, p.predictor_window);
  EXPECT_EQ(back.predictor_buckets, p.predictor_buckets);
  EXPECT_EQ(back.sched_enabled, p.sched_enabled);
  EXPECT_EQ(back.sched_weight_guaranteed, p.sched_weight_guaranteed);
  EXPECT_EQ(back.sched_weight_best_effort, p.sched_weight_best_effort);
}

TEST(SloJson, ScenarioSpecCarriesContracts) {
  ebs::ScenarioSpec spec;
  spec.name = "qos_rt";
  spec.compute_nodes = 1;
  spec.storage_nodes = 2;
  ebs::VdSpec vd;
  vd.size_bytes = 64ull << 20;
  vd.has_slo = true;
  vd.slo.target_p99 = ms(3);
  vd.slo.guaranteed_iops = 1000.0;
  vd.slo.cls = SloClass::kGuaranteed;
  spec.vds.push_back(vd);
  spec.qos.enabled = true;
  spec.qos.early_reject = true;
  spec.qos.headroom = 0.9;

  ebs::ScenarioSpec back;
  std::string err;
  ASSERT_TRUE(ebs::scenario_from_json(spec.to_json(), &back, &err)) << err;
  ASSERT_EQ(back.vds.size(), 1u);
  EXPECT_TRUE(back.vds[0].has_slo);
  EXPECT_EQ(back.vds[0].slo.target_p99, ms(3));
  EXPECT_DOUBLE_EQ(back.vds[0].slo.guaranteed_iops, 1000.0);
  EXPECT_EQ(back.vds[0].slo.cls, SloClass::kGuaranteed);
  EXPECT_TRUE(back.qos.enabled);
  EXPECT_TRUE(back.qos.early_reject);
  EXPECT_DOUBLE_EQ(back.qos.headroom, 0.9);
}

TEST(LoadPredictor, ColdWindowNeverRejects) {
  LoadPredictor p(ms(4), 8);
  // No completions observed: predict 0 regardless of queue depth.
  EXPECT_EQ(p.predict(us(100), 500), 0);
}

TEST(LoadPredictor, DrainGrowsWithQueueDepth) {
  LoadPredictor p(ms(4), 8);
  // 10 completions at 100us each over the first ms.
  for (int i = 0; i < 10; ++i) {
    p.on_complete(us(100) * (i + 1), us(100));
  }
  const TimeNs shallow = p.predict(ms(1), 1);
  const TimeNs deep = p.predict(ms(1), 100);
  EXPECT_GT(shallow, 0);
  EXPECT_GT(deep, shallow);
  // Little's law: 100 in flight at 10 completions/ms drains in ~10ms.
  EXPECT_GE(deep, ms(5));
}

TEST(LoadPredictor, DeterministicReplay) {
  // Same event sequence, same queries: bit-identical answers.
  const auto run = [] {
    LoadPredictor p(ms(4), 8);
    Rng rng(99);
    std::vector<std::uint64_t> sig;
    TimeNs now = 0;
    for (int i = 0; i < 2000; ++i) {
      now += static_cast<TimeNs>(rng.next_below(50000));
      p.on_admit(now);
      if (rng.next_below(3) != 0) {
        p.on_complete(now, static_cast<TimeNs>(rng.next_below(2000000)));
      }
      sig.push_back(static_cast<std::uint64_t>(
          p.predict(now, static_cast<int>(rng.next_below(64)))));
      sig.push_back(static_cast<std::uint64_t>(p.admitted_rate(now) * 1e6));
    }
    return sig;
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Bit-determinism of the full admission pipeline across thread counts: a
// miniature overloaded fleet (one throttled DPU core per node, offered load
// far past it), fingerprinted over every per-node, per-class counter.

struct MiniResult {
  std::uint64_t issued = 0;
  std::uint64_t rejected = 0;
  std::uint64_t fingerprint = 0;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h * 0xFF51AFD7ED558CCDull;
}

MiniResult run_mini_overload(int threads, bool early_reject) {
  ebs::ClusterParams p;
  p.topo.compute_servers = 2;
  p.topo.storage_servers = 2;
  p.topo.servers_per_rack = 1;
  p.stack = ebs::StackKind::kSolar;
  p.seed = 42;
  p.block_server.store_payload = false;
  p.qos.enabled = true;
  p.qos.early_reject = early_reject;
  p.qos.sched_enabled = true;
  p.qos.headroom = 0.8;
  p.dpu.cpu_cores = 1;
  p.solar.cpu_per_rpc = us(100);  // throttle: ~10K stage-ops/s per node

  sim::ShardedEngine se(4, threads);
  ebs::Cluster cluster(se, p);
  const int ncompute = cluster.num_compute();
  std::vector<std::uint64_t> vds;
  for (int i = 0; i < ncompute; ++i) {
    vds.push_back(cluster.create_vd(64ull << 20));
    SloSpec slo;
    slo.target_p99 = ms(2);
    slo.guaranteed_iops = i == 0 ? 1000.0 : 0.0;
    slo.cls = i == 0 ? SloClass::kGuaranteed : SloClass::kBestEffort;
    cluster.set_slo(vds.back(), slo);
  }

  struct NodeLoad {
    std::unique_ptr<workload::PoissonLoad> gen;
    std::uint64_t issued = 0;
  };
  std::vector<NodeLoad> loads(static_cast<std::size_t>(ncompute));
  Rng rng(777);
  for (int i = 0; i < ncompute; ++i) {
    NodeLoad& nl = loads[static_cast<std::size_t>(i)];
    auto submit = [&cluster, &nl, i](IoRequest io, IoCompleteFn done) {
      ++nl.issued;
      cluster.compute(i).submit_io(std::move(io), std::move(done));
    };
    workload::PoissonConfig pc;
    pc.vd_id = vds[static_cast<std::size_t>(i)];
    pc.vd_size = 64ull << 20;
    pc.iops = 50000.0;  // ~5x one throttled core
    pc.read_fraction = 0.7;
    pc.block_size = 4096;
    sim::ShardScope scope(cluster.compute_shard(i));
    nl.gen = std::make_unique<workload::PoissonLoad>(
        cluster.engine(), submit, pc,
        rng.fork(static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < ncompute; ++i) {
    sim::ShardScope scope(cluster.compute_shard(i));
    sim::Engine& he = cluster.engine();
    he.at(he.now(),
          [&loads, i] { loads[static_cast<std::size_t>(i)].gen->start(); });
  }
  se.run_until(ms(10));
  for (int i = 0; i < ncompute; ++i) {
    sim::ShardScope scope(cluster.compute_shard(i));
    loads[static_cast<std::size_t>(i)].gen->stop();
  }
  se.run();

  MiniResult r;
  std::uint64_t h = mix(se.executed(), static_cast<std::uint64_t>(se.now()));
  for (int i = 0; i < ncompute; ++i) {
    r.issued += loads[static_cast<std::size_t>(i)].issued;
    h = mix(h, loads[static_cast<std::size_t>(i)].issued);
    const NodeAdmission* adm = cluster.compute(i).admission();
    const NodeAdmission::Stats& st = adm->stats();
    for (int c = 0; c < kSloClasses; ++c) {
      r.rejected += st.rejected[c];
      h = mix(h, st.admitted[c]);
      h = mix(h, st.rejected[c]);
      h = mix(h, st.slo_ok[c]);
      h = mix(h, st.slo_violated[c]);
    }
  }
  r.fingerprint = h;
  return r;
}

TEST(QosDeterminism, BitIdenticalAcrossThreads) {
  for (const bool early : {false, true}) {
    const MiniResult t1 = run_mini_overload(1, early);
    const MiniResult t2 = run_mini_overload(2, early);
    const MiniResult t8 = run_mini_overload(8, early);
    EXPECT_EQ(t1.fingerprint, t2.fingerprint)
        << "early_reject=" << early << ": 1 vs 2 threads";
    EXPECT_EQ(t1.fingerprint, t8.fingerprint)
        << "early_reject=" << early << ": 1 vs 8 threads";
    EXPECT_GT(t1.issued, 0u);
    if (early) {
      // 5x saturation: the gate must actually shed load.
      EXPECT_GT(t1.rejected, 0u);
    } else {
      EXPECT_EQ(t1.rejected, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Rejection storm under the chaos oracles: drive the harness far past
// capacity with early rejection on. Rejections complete with kRejected,
// which the oracles must treat as an error outcome — never as a lost or
// duplicated I/O, and never as a hang.

TEST(QosChaos, RejectionStormKeepsOraclesGreen) {
  chaos::HarnessConfig cfg;
  cfg.stack = ebs::StackKind::kSolar;
  cfg.seed = 7;
  cfg.poisson_iops = 30000.0;  // storm: ~10x one throttled core
  cfg.dpu_cpu_cores = 1;
  cfg.solar_cpu_per_rpc = us(100);
  cfg.fio_max_ios = 100;
  cfg.active = ms(200);
  cfg.qos.enabled = true;
  cfg.qos.early_reject = true;
  cfg.qos.sched_enabled = true;
  cfg.qos.headroom = 0.8;
  cfg.slo_all = true;
  cfg.slo.target_p99 = ms(2);
  cfg.slo.cls = SloClass::kBestEffort;

  const chaos::RunReport report = chaos::run_chaos(cfg);
  EXPECT_TRUE(report.ok()) << report.violations.size() << " violations";
  EXPECT_GT(report.ios_completed, 0u);
  // The storm must have tripped the gate: rejections surface as errors.
  EXPECT_GT(report.errors, 0u);
  EXPECT_EQ(report.hangs, 0u);
}

// ---------------------------------------------------------------------------
// EC rebuild traffic is strictly best-effort: every sub-I/O the
// maintenance agent issues carries `background`, keys under
// kBackgroundTenant (which no SloTable maps), and is served from the
// best-effort WFQ class — even when every real VD holds a guaranteed
// contract. A rebuild storm must never consume guaranteed-class service.

std::vector<std::uint8_t> qe_pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return v;
}

TEST(QosEc, RebuildTrafficServedBestEffort) {
  sim::Engine eng;
  ebs::ClusterParams p;
  p.topo.compute_servers = 1;
  p.topo.storage_servers = 4;  // k + m + 1: one spare for the rebuild
  p.topo.servers_per_rack = 4;
  p.stack = ebs::StackKind::kSolar;
  p.seed = 31;
  p.block_server.store_payload = true;
  p.ec.enabled = true;
  p.ec.k = 2;
  p.ec.m = 1;
  p.qos.enabled = true;
  p.qos.sched_enabled = true;
  ebs::Cluster cluster(eng, p);
  const std::uint64_t vd = cluster.create_vd(32ull << 20);
  SloSpec slo;
  slo.cls = SloClass::kGuaranteed;
  slo.guaranteed_iops = 1000.0;
  cluster.set_slo(vd, slo);

  // Foreground writes covering both data fragments of stripe 0, under the
  // guaranteed contract.
  for (const std::uint64_t off :
       {std::uint64_t{0}, sa::SegmentTable::kSegmentBytes}) {
    IoRequest io;
    io.vd_id = vd;
    io.op = transport::OpType::kWrite;
    io.offset = off;
    io.len = 8192;
    io.payload = transport::make_placeholder_blocks(off, io.len, 4096);
    for (auto& blk : io.payload) {
      blk.data = qe_pattern(blk.len, blk.lba + 1);
      blk.crc = crc32_raw(blk.data);
    }
    bool done = false;
    eng.at(eng.now(), [&] {
      cluster.compute(0).submit_io(std::move(io), [&](IoResult r) {
        EXPECT_EQ(r.status, transport::StorageStatus::kOk);
        done = true;
      });
    });
    while (!done && eng.step()) {
    }
    ASSERT_TRUE(done);
  }
  eng.run();

  qos::CpuScheduler* sched = cluster.compute(0).stack().scheduler();
  ASSERT_NE(sched, nullptr);
  const std::uint64_t fg_before = sched->served_ns(SloClass::kGuaranteed);
  const std::uint64_t bg_before = sched->served_ns(SloClass::kBestEffort);
  EXPECT_GT(fg_before, 0u);  // foreground ran under the contract

  // Lose a fragment holder (belief-only, so the real server still answers
  // the reconstruction reads) and let the rebuild storm drain.
  const auto frags = cluster.segments().ec_fragments(vd, 0);
  cluster.compute(0).maintenance()->force_server_down(frags[0].block_server);
  eng.run();
  EXPECT_GT(cluster.compute(0).maintenance()->stats().segments_rebuilt, 0u);
  // The rebuild consumed best-effort service time only: the guaranteed
  // class served not one extra nanosecond.
  EXPECT_GT(sched->served_ns(SloClass::kBestEffort), bg_before);
  EXPECT_EQ(sched->served_ns(SloClass::kGuaranteed), fg_before);
}

// An EC fleet under QoS with a mid-run fragment-holder outage (rebuild
// storm + admission + WFQ) is bit-identical across worker-thread counts:
// threads are a speed knob, never a schedule input.
TEST(QosEc, RebuildStormDeterministicAcrossThreads) {
  auto config = [](int threads) {
    chaos::HarnessConfig cfg;
    cfg.stack = ebs::StackKind::kSolar;
    cfg.seed = 19;
    cfg.active = ms(300);
    cfg.fio_max_ios = 120;
    cfg.poisson_iops = 800.0;
    cfg.readback_samples = 16;
    cfg.ec.enabled = true;
    cfg.ec.k = 2;
    cfg.ec.m = 1;
    cfg.qos.enabled = true;
    cfg.qos.sched_enabled = true;
    cfg.slo_all = true;
    cfg.slo.cls = SloClass::kGuaranteed;
    cfg.slo.target_p99 = ms(5);
    cfg.slo.guaranteed_iops = 200.0;
    chaos::FaultEvent e;
    e.at = ms(50);
    e.duration = ms(150);
    e.kind = chaos::FaultKind::kDeviceStop;
    e.target.kind = chaos::TargetKind::kStorageNic;
    e.target.index = 1;
    cfg.plan.name = "qos-ec-rebuild-storm";
    cfg.plan.events.push_back(e);
    cfg.shards = 2;
    cfg.threads = threads;
    return cfg;
  };
  const chaos::RunReport t1 = chaos::run_chaos(config(1));
  ASSERT_TRUE(t1.ok()) << t1.violations.front().oracle << ": "
                       << t1.violations.front().detail;
  for (const int threads : {2, 8}) {
    EXPECT_EQ(t1.signature(), chaos::run_chaos(config(threads)).signature())
        << "threads=" << threads;
  }
}

// A rejection-storm run is itself deterministic (same signature twice).
TEST(QosChaos, RejectionStormDeterministic) {
  chaos::HarnessConfig cfg;
  cfg.stack = ebs::StackKind::kSolar;
  cfg.seed = 11;
  cfg.poisson_iops = 20000.0;
  cfg.dpu_cpu_cores = 1;
  cfg.solar_cpu_per_rpc = us(100);
  cfg.fio_max_ios = 50;
  cfg.active = ms(100);
  cfg.qos.enabled = true;
  cfg.qos.early_reject = true;
  cfg.qos.headroom = 0.8;
  cfg.slo_all = true;
  cfg.slo.target_p99 = ms(2);
  cfg.slo.cls = SloClass::kBestEffort;

  const chaos::RunReport a = chaos::run_chaos(cfg);
  const chaos::RunReport b = chaos::run_chaos(cfg);
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_TRUE(a.ok());
}

}  // namespace
}  // namespace repro::qos
