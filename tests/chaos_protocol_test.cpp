// Protocol robustness under adversarial wire conditions: the SOLAR
// client/server pair and the kernel-TCP/LUNA transport must deliver
// exactly-once I/O completion and end-to-end CRC integrity while switches
// drop, corrupt, duplicate, and reorder packets. Corrupted frames are
// FCS-dropped by the receiving NIC (never delivered upward), duplicates
// must be absorbed by sequence/idempotence logic, and reordering must not
// un-order committed data. The oracle board turns each property into a
// violation, so `ok()` is the whole theorem.
#include <gtest/gtest.h>

#include <memory>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "chaos/injector.h"
#include "ebs/cluster.h"
#include "net/network.h"
#include "sim/engine.h"
#include "workload/fio.h"

namespace repro::chaos {
namespace {

using ebs::StackKind;

/// Drop + corrupt + duplicate + reorder spread across the fabric, all held
/// until repair_all so the whole active window runs under fire.
FaultPlan hostile_wire_plan() {
  FaultPlan plan;
  plan.name = "hostile-wire";
  auto add = [&plan](FaultKind kind, FaultTarget target, double magnitude,
                     TimeNs param = 0) {
    FaultEvent e;
    e.at = ms(5);
    e.duration = 0;  // held until repair_all
    e.kind = kind;
    e.target = target;
    e.magnitude = magnitude;
    e.param = param;
    plan.events.push_back(e);
  };
  add(FaultKind::kLoss, {TargetKind::kStorageTor, 0, -1}, 0.08);
  add(FaultKind::kCorrupt, {TargetKind::kStorageTor, 1, -1}, 0.05);
  add(FaultKind::kDuplicate, {TargetKind::kComputeTor, 0, -1}, 0.08);
  add(FaultKind::kReorder, {TargetKind::kComputeTor, 1, -1}, 0.1, us(150));
  return plan;
}

RunReport run(StackKind stack, bool arm_hang_oracle) {
  HarnessConfig cfg;
  cfg.stack = stack;
  cfg.seed = 99;
  cfg.plan = hostile_wire_plan();
  cfg.active = ms(600);
  cfg.read_fraction = 0.5;  // plenty of reads to exercise the CRC oracle
  cfg.oracle.hang_oracle = arm_hang_oracle;
  return run_chaos(cfg);
}

TEST(ChaosProtocol, SolarSurvivesHostileWire) {
  const FaultPlan plan = hostile_wire_plan();
  ASSERT_TRUE(hang_oracle_applicable(StackKind::kSolar, plan));
  const RunReport r = run(StackKind::kSolar, /*arm_hang_oracle=*/true);
  EXPECT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
  EXPECT_GT(r.ios_completed, 0u);
  EXPECT_GT(r.crc_checks, 0u);
  EXPECT_EQ(r.faults_applied, 4u);
  EXPECT_EQ(r.faults_applied, r.faults_reverted);
}

TEST(ChaosProtocol, SolarStarSurvivesHostileWire) {
  const RunReport r = run(StackKind::kSolarStar, /*arm_hang_oracle=*/true);
  EXPECT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
  EXPECT_GT(r.crc_checks, 0u);
}

TEST(ChaosProtocol, KernelTcpSurvivesHostileWire) {
  // No hang oracle: kernel TCP may legitimately back off past 1 s under
  // sustained loss. Exactly-once, durability, SLO, conservation still hold.
  const RunReport r = run(StackKind::kKernelTcp, /*arm_hang_oracle=*/false);
  EXPECT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
  EXPECT_GT(r.ios_completed, 0u);
  EXPECT_GT(r.crc_checks, 0u);
}

TEST(ChaosProtocol, LunaSurvivesHostileWire) {
  const RunReport r = run(StackKind::kLuna, /*arm_hang_oracle=*/false);
  EXPECT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
  EXPECT_GT(r.crc_checks, 0u);
}

// The faults above must actually fire on the wire — otherwise the four
// "survives" tests are vacuous. Drive a cluster directly and check the
// network's wire-fault and FCS-drop counters.
TEST(ChaosProtocol, WireFaultMachineryActuallyFires) {
  sim::Engine eng;
  ebs::ClusterParams params;
  params.topo.compute_servers = 2;
  params.topo.storage_servers = 4;
  params.topo.servers_per_rack = 2;
  params.stack = StackKind::kSolar;
  params.seed = 7;
  ebs::Cluster cluster(eng, params);
  const std::uint64_t vd = cluster.create_vd(1ull << 30);

  workload::PoissonConfig pc;
  pc.vd_id = vd;
  pc.vd_size = 1ull << 30;
  pc.iops = 4000;
  pc.block_size = 8192;
  pc.read_fraction = 0.5;
  workload::PoissonLoad load(
      eng,
      [&](transport::IoRequest io, transport::IoCompleteFn done) {
        cluster.compute(0).submit_io(std::move(io), std::move(done));
      },
      pc, Rng(3));

  Injector inj(cluster);
  FaultPlan plan;
  auto add = [&plan](FaultKind kind, FaultTarget t, double mag,
                     TimeNs param = 0) {
    FaultEvent e;
    e.at = ms(10);
    e.duration = 0;
    e.kind = kind;
    e.target = t;
    e.magnitude = mag;
    e.param = param;
    plan.events.push_back(e);
  };
  // High rates on every switch tier a flow must cross.
  add(FaultKind::kCorrupt, {TargetKind::kStorageTor, 0, -1}, 0.2);
  add(FaultKind::kCorrupt, {TargetKind::kStorageTor, 1, -1}, 0.2);
  add(FaultKind::kDuplicate, {TargetKind::kComputeTor, 0, -1}, 0.2);
  add(FaultKind::kDuplicate, {TargetKind::kComputeTor, 1, -1}, 0.2);
  add(FaultKind::kReorder, {TargetKind::kCore, 0, -1}, 0.3, us(100));
  add(FaultKind::kReorder, {TargetKind::kCore, 1, -1}, 0.3, us(100));

  eng.at(0, [&] { load.start(); });
  eng.run_until(ms(5));
  inj.arm(plan);
  eng.run_until(ms(400));
  load.stop();
  inj.repair_all();
  eng.run_until(eng.now() + seconds(10));

  const net::Network::WireFaultStats& wire = cluster.network().wire_faults();
  EXPECT_GT(wire.corrupted, 0u);
  EXPECT_GT(wire.duplicated, 0u);
  EXPECT_GT(wire.reordered, 0u);
  // Every corrupted frame that reached a NIC was FCS-dropped, never
  // delivered: the drop counter moves in lockstep with delivery attempts.
  EXPECT_GT(cluster.network().drops().corrupt_fcs, 0u);
}

}  // namespace
}  // namespace repro::chaos
