// Observability subsystem unit tests: registry slot semantics, tracer
// flight-recorder ring, probe-driven sampler, Chrome-trace export schema,
// and the end-to-end span tree produced by an instrumented SOLAR cluster.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "ebs/cluster.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "sim/engine.h"
#include "transport/message.h"

namespace repro::obs {
namespace {

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, SameNameAndLabelsShareOneSlot) {
  Registry reg;
  Counter a = reg.counter("pkts", label("node", "c0"));
  Counter b = reg.counter("pkts", label("node", "c0"));
  a.inc();
  b.inc(2);
  EXPECT_EQ(reg.counter_value("pkts", label("node", "c0")), 3u);
  EXPECT_EQ(reg.entries().size(), 1u);
}

TEST(Registry, DifferentLabelsAreDistinctMetrics) {
  Registry reg;
  reg.counter("pkts", label("node", "c0")).inc(1);
  reg.counter("pkts", label("node", "c1")).inc(2);
  EXPECT_EQ(reg.counter_value("pkts", label("node", "c0")), 1u);
  EXPECT_EQ(reg.counter_value("pkts", label("node", "c1")), 2u);
  EXPECT_EQ(reg.entries().size(), 2u);
}

TEST(Registry, EntriesIterateInRegistrationOrder) {
  Registry reg;
  reg.counter("zzz");
  reg.expose_gauge("aaa", {}, [] { return 7; });
  reg.histogram("mmm");
  ASSERT_EQ(reg.entries().size(), 3u);
  EXPECT_EQ(reg.entries()[0].name, "zzz");  // not alphabetical
  EXPECT_EQ(reg.entries()[1].name, "aaa");
  EXPECT_EQ(reg.entries()[2].name, "mmm");
}

TEST(Registry, DefaultCounterHandleIsSafeBeforeRegistration) {
  // Members can bump a default-constructed handle before (or without) a
  // registry existing; the writes land in the shared scratch slot.
  Counter c;
  c.inc(5);
  EXPECT_GE(c.value(), 5u);
}

TEST(Registry, DisabledRegistryRecordsNothing) {
  Registry reg(/*enabled=*/false);
  Counter c = reg.counter("pkts");
  c.inc(10);  // lands in the scratch slot, never exported
  Histogram* h = reg.histogram("lat");
  ASSERT_NE(h, nullptr);
  h->record(42);
  reg.expose_gauge("depth", {}, [] { return 1; });
  EXPECT_TRUE(reg.entries().empty());
  EXPECT_EQ(reg.counter_value("pkts"), 0u);
  EXPECT_EQ(reg.find("depth"), nullptr);
}

TEST(Registry, ValueOfAndFindCoverAllKinds) {
  Registry reg;
  std::uint64_t external = 9;
  std::int64_t depth = 4;
  reg.counter("owned").inc(3);
  reg.expose_counter("exposed", {}, &external);
  reg.expose_gauge("gauge", {}, [&] { return depth; });
  reg.histogram("hist")->record(1);
  reg.histogram("hist")->record(2);
  EXPECT_EQ(reg.value_of(*reg.find("owned")), 3);
  EXPECT_EQ(reg.value_of(*reg.find("exposed")), 9);
  EXPECT_EQ(reg.value_of(*reg.find("gauge")), 4);
  EXPECT_EQ(reg.value_of(*reg.find("hist")), 2);  // histograms report count
}

struct FakeComponent : Resettable {
  std::uint64_t pkts = 0;
  void reset_counters() override { pkts = 0; }
};

TEST(Registry, ResetAllZeroesOwnedMetricsAndResettables) {
  Registry reg;
  Counter c = reg.counter("owned");
  c.inc(7);
  Histogram* h = reg.histogram("lat");
  h->record(100);
  FakeComponent comp;
  comp.pkts = 55;
  reg.expose_counter("comp.pkts", {}, &comp.pkts);
  reg.add_resettable(&comp);
  reg.reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(comp.pkts, 0u);  // via the Resettable hook, not the registry
}

TEST(Registry, ResettablesWorkEvenWhenDisabled) {
  // Phase-split resets are experiment mechanics, not observation: a dark
  // registry still drives them so warmup/measure benches behave identically.
  Registry reg(/*enabled=*/false);
  FakeComponent comp;
  comp.pkts = 12;
  reg.add_resettable(&comp);
  reg.reset_all();
  EXPECT_EQ(comp.pkts, 0u);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, DisabledTracerHandsOutIdZero) {
  Tracer t(/*enabled=*/false, 16);
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.begin(), 0u);
  EXPECT_EQ(t.span("x", 0, 0, 1, 0), 0u);
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Tracer, RecordsSpanFieldsAndNesting) {
  Tracer t(/*enabled=*/true, 64);
  const std::uint64_t root = t.span("io.write", 0, 10, 500, 3, 0, "bytes", 4096);
  const std::uint64_t child = t.span("rpc.write", root, 20, 400, 3, 1);
  const SpanRecord* r = t.find(child);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->parent, root);
  EXPECT_STREQ(r->name, "rpc.write");
  EXPECT_EQ(r->t0, 20);
  EXPECT_EQ(r->t1, 400);
  EXPECT_EQ(r->pid, 3u);
  EXPECT_EQ(r->tid, 1u);
  const SpanRecord* rr = t.find(root);
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->parent, 0u);
  EXPECT_STREQ(rr->arg_name, "bytes");
  EXPECT_EQ(rr->arg, 4096u);
}

TEST(Tracer, BeginReservesIdClosedLater) {
  // The begin()/span_with_id() split lets a span's id travel with a packet
  // before its end time is known.
  Tracer t(/*enabled=*/true, 64);
  const std::uint64_t id = t.begin();
  EXPECT_GT(id, 0u);
  EXPECT_EQ(t.total_recorded(), 0u);  // reserved, not yet recorded
  t.span_with_id(id, "blk.net", 0, 5, 95, 1);
  const SpanRecord* r = t.find(id);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->t1, 95);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer t(/*enabled=*/true, 4);
  for (int i = 0; i < 10; ++i) {
    t.span("s", 0, i, i + 1, 0);
  }
  EXPECT_EQ(t.total_recorded(), 10u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // Retained records are the newest four, visited oldest-first.
  std::vector<std::uint64_t> ids;
  t.for_each([&](const SpanRecord& r) { ids.push_back(r.id); });
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{7, 8, 9, 10}));
  EXPECT_EQ(t.find(1), nullptr);  // overwritten
  EXPECT_NE(t.find(10), nullptr);
}

// ---------------------------------------------------------------------------
// Sampler: rides the engine probe hook, never adds events.

TEST(Sampler, SamplesAtIntervalWithoutPerturbingTheEngine) {
  auto run = [](Obs* obs) {
    sim::Engine eng;
    std::int64_t depth = 0;
    if (obs != nullptr) {
      obs->registry().expose_gauge("queue.depth", {}, [&] { return depth; });
      obs->attach(eng);
    }
    for (int i = 0; i < 50; ++i) {
      eng.at(us(i * 7), [&depth] { ++depth; });
    }
    eng.run();
    return std::pair<std::uint64_t, TimeNs>{eng.executed(), eng.now()};
  };

  const auto dark = run(nullptr);

  ObsConfig cfg;
  cfg.sample_interval = us(10);
  Obs obs(cfg);
  const auto lit = run(&obs);

  EXPECT_EQ(dark, lit);  // probes are not events
  EXPECT_GT(obs.sampler().samples_taken(), 0u);
  ASSERT_EQ(obs.sampler().series().size(), 1u);
  const Sampler::Series& s = obs.sampler().series()[0];
  EXPECT_EQ(s.size(), obs.sampler().samples_taken());
  // Points are monotonically increasing in both t and (here) value.
  TimeNs prev_t = -1;
  std::int64_t prev_v = -1;
  s.for_each([&](const SeriesPoint& p) {
    EXPECT_GT(p.t, prev_t);
    EXPECT_GE(p.v, prev_v);
    prev_t = p.t;
    prev_v = p.v;
  });
}

TEST(Sampler, RingDropsOldestPoints) {
  ObsConfig cfg;
  cfg.sample_interval = us(1);
  cfg.series_capacity = 8;
  Obs obs(cfg);
  sim::Engine eng;
  obs.registry().expose_gauge("g", {}, [&eng] {
    return static_cast<std::int64_t>(eng.now());
  });
  obs.attach(eng);
  eng.at(us(100), [] {});
  eng.run();
  ASSERT_EQ(obs.sampler().series().size(), 1u);
  const Sampler::Series& s = obs.sampler().series()[0];
  EXPECT_GT(s.total, 8u);
  EXPECT_EQ(s.size(), 8u);  // only the newest ring-capacity points retained
}

// ---------------------------------------------------------------------------
// Chrome-trace export: a minimal JSON parser checks the output is
// syntactically valid and carries the fields Perfetto needs.

class MiniJson {
 public:
  explicit MiniJson(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(ChromeTrace, ExportIsValidJsonWithRequiredFields) {
  Tracer t(/*enabled=*/true, 64);
  t.set_process_name(1, "compute-0 \"nic\"");  // quote must be escaped
  t.set_thread_name(1, 2, "port2");
  const std::uint64_t root = t.span("io.write", 0, 1000, 250000, 1, 0,
                                    "bytes", 4096, "vd", 7);
  t.span("fabric.hop", root, 1500, 2500, 42, 3);

  std::ostringstream os;
  write_chrome_trace(os, t);
  const std::string text = os.str();

  EXPECT_TRUE(MiniJson(text).parse()) << text;
  // Top-level object with the trace-event envelope Perfetto expects.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  // "M" metadata + "X" complete events; ts/dur are microseconds with the
  // nanosecond remainder as three decimals (1000ns -> 1.000).
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"io.write\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":249.000"), std::string::npos);
  // The causal tree is recoverable: parent ids ride in args.
  EXPECT_NE(text.find("\"parent\":" + std::to_string(root)),
            std::string::npos);
  // The embedded quote in the process name did not break the JSON.
  EXPECT_NE(text.find("compute-0 \\\"nic\\\""), std::string::npos);
}

TEST(ChromeTrace, MetricsAndSeriesExportsAreValidJson) {
  ObsConfig cfg;
  cfg.sample_interval = us(5);
  Obs obs(cfg);
  obs.registry().counter("pkts", label("node", "c0")).inc(3);
  obs.registry().histogram("lat")->record(1000);
  std::int64_t depth = 2;
  obs.registry().expose_gauge("depth", {}, [&] { return depth; });
  sim::Engine eng;
  obs.attach(eng);
  eng.at(us(40), [] {});
  eng.run();

  std::ostringstream metrics;
  write_metrics_json(metrics, obs.registry());
  EXPECT_TRUE(MiniJson(metrics.str()).parse()) << metrics.str();

  std::ostringstream series;
  write_series_json(series, obs.registry(), obs.sampler());
  EXPECT_TRUE(MiniJson(series.str()).parse()) << series.str();

  std::ostringstream csv;
  write_series_csv(csv, obs.registry(), obs.sampler());
  EXPECT_NE(csv.str().find("metric,labels,t_ns,value"), std::string::npos);
  EXPECT_NE(csv.str().find("depth"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end span tree: one instrumented 4KB write + read through a small
// SOLAR cluster must produce the full guest -> SA -> fabric -> block server
// -> SSD tree with intact parent links.

TEST(SpanTree, SolarWriteAndReadProduceFullCausalTree) {
  ObsConfig cfg;
  cfg.trace_capacity = 1 << 14;
  Obs obs(cfg);

  sim::Engine eng;
  ebs::ClusterParams params;
  params.topo.compute_servers = 2;
  params.topo.storage_servers = 4;
  params.topo.servers_per_rack = 4;
  params.stack = ebs::StackKind::kSolar;
  params.seed = 7;
  params.obs = &obs;
  ebs::Cluster cluster(eng, params);
  obs.attach(eng);
  const std::uint64_t vd = cluster.create_vd(1ull << 30);

  for (auto op : {transport::OpType::kWrite, transport::OpType::kRead}) {
    transport::IoRequest io;
    io.vd_id = vd;
    io.op = op;
    io.offset = 0;
    io.len = 4096;
    if (op == transport::OpType::kWrite) {
      io.payload = transport::make_placeholder_blocks(0, 4096, 4096);
    }
    bool finished = false;
    eng.at(eng.now(), [&] {
      cluster.compute(0).submit_io(std::move(io),
                                   [&](transport::IoResult) { finished = true; });
    });
    while (!finished && eng.step()) {
    }
    ASSERT_TRUE(finished);
  }
  eng.run_until(eng.now() + ms(1));

  EXPECT_EQ(obs.tracer().dropped(), 0u);
  std::map<std::uint64_t, SpanRecord> by_id;
  std::multiset<std::string> names;
  obs.tracer().for_each([&](const SpanRecord& r) {
    by_id[r.id] = r;
    names.insert(r.name);
  });

  // Every stage of the paper's data path shows up, for both directions.
  for (const char* required :
       {"io.write", "io.read", "rpc.write", "rpc.read", "blk.net",
        "fabric.hop", "bs.write", "bs.read", "ssd.write", "ssd.read",
        "server.cpu"}) {
    EXPECT_GT(names.count(required), 0u) << "missing span: " << required;
  }

  // Parent links: every non-root span's parent is a retained record, and
  // walking up from any SSD span reaches an io.* root with parent 0.
  auto root_of = [&](const SpanRecord& leaf) {
    SpanRecord cur = leaf;
    int hops = 0;
    while (cur.parent != 0 && hops++ < 16) {
      auto it = by_id.find(cur.parent);
      if (it == by_id.end()) return std::string("<broken>");
      cur = it->second;
    }
    return std::string(cur.name);
  };
  int ssd_spans = 0;
  for (const auto& [id, r] : by_id) {
    const std::string name = r.name;
    if (name == "ssd.write" || name == "ssd.read") {
      ++ssd_spans;
      const std::string root = root_of(r);
      EXPECT_TRUE(root == "io.write" || root == "io.read")
          << name << " chains to " << root;
    }
    EXPECT_LE(r.t0, r.t1) << name;
  }
  EXPECT_GE(ssd_spans, 2);  // at least one write and one read leaf

  // fabric.hop spans fold the INT trail: parents must be blk.net spans.
  int hops_checked = 0;
  for (const auto& [id, r] : by_id) {
    if (std::string(r.name) != "fabric.hop" || r.parent == 0) continue;
    auto it = by_id.find(r.parent);
    if (it == by_id.end()) continue;  // parent may predate the hop's record
    EXPECT_STREQ(it->second.name, "blk.net");
    ++hops_checked;
  }
  EXPECT_GT(hops_checked, 0);
}

}  // namespace
}  // namespace repro::obs
