#include <gtest/gtest.h>

#include "common/crc32.h"
#include "sa/agent.h"
#include "sa/crypto.h"
#include "sa/qos_table.h"
#include "sa/segment_table.h"
#include "storage/block_server.h"
#include "transport/tcp.h"

#include "net/topology.h"

namespace repro::sa {
namespace {

using transport::DataBlock;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

TEST(SegmentTable, LookupByOffset) {
  SegmentTable t;
  t.map(1, 0, {100, 50});
  t.map(1, 1, {101, 51});
  auto loc = t.lookup(1, 0);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->segment_id, 100u);
  loc = t.lookup(1, SegmentTable::kSegmentBytes - 1);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->segment_id, 100u);
  loc = t.lookup(1, SegmentTable::kSegmentBytes);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->segment_id, 101u);
  EXPECT_FALSE(t.lookup(1, 2 * SegmentTable::kSegmentBytes).has_value());
  EXPECT_FALSE(t.lookup(2, 0).has_value());
}

TEST(SegmentTable, MapDiskStripesAcrossServers) {
  SegmentTable t;
  t.map_disk(5, 10 * SegmentTable::kSegmentBytes, {10, 11, 12});
  EXPECT_EQ(t.size(), 10u);
  EXPECT_EQ(t.lookup(5, 0)->block_server, 10u);
  EXPECT_EQ(t.lookup(5, SegmentTable::kSegmentBytes)->block_server, 11u);
  EXPECT_EQ(t.lookup(5, 2 * SegmentTable::kSegmentBytes)->block_server, 12u);
  EXPECT_EQ(t.lookup(5, 3 * SegmentTable::kSegmentBytes)->block_server, 10u);
}

TEST(SegmentTable, SplitWithinOneSegment) {
  SegmentTable t;
  t.map_disk(1, 4 * SegmentTable::kSegmentBytes, {10});
  auto ext = t.split(1, 4096, 65536);
  ASSERT_EQ(ext.size(), 1u);
  EXPECT_EQ(ext[0].vd_offset, 4096u);
  EXPECT_EQ(ext[0].segment_offset, 4096u);
  EXPECT_EQ(ext[0].len, 65536u);
}

TEST(SegmentTable, SplitAcrossSegmentBoundary) {
  SegmentTable t;
  t.map_disk(1, 4 * SegmentTable::kSegmentBytes, {10, 11});
  const std::uint64_t start = SegmentTable::kSegmentBytes - 8192;
  auto ext = t.split(1, start, 16384);
  ASSERT_EQ(ext.size(), 2u);
  EXPECT_EQ(ext[0].len, 8192u);
  EXPECT_EQ(ext[0].segment_offset, SegmentTable::kSegmentBytes - 8192);
  EXPECT_EQ(ext[1].len, 8192u);
  EXPECT_EQ(ext[1].segment_offset, 0u);
  EXPECT_NE(ext[0].loc.segment_id, ext[1].loc.segment_id);
}

TEST(SegmentTable, SplitUnmappedRangeIsEmpty) {
  SegmentTable t;
  t.map_disk(1, SegmentTable::kSegmentBytes, {10});
  EXPECT_TRUE(t.split(1, SegmentTable::kSegmentBytes - 4096, 8192).empty());
  EXPECT_TRUE(t.split(2, 0, 4096).empty());
}

TEST(QosTable, UnknownVdAdmitsImmediately) {
  QosTable q;
  auto a = q.admit(123, 4096, us(5));
  EXPECT_TRUE(a.admitted);
  EXPECT_EQ(a.admit_at, us(5));
}

TEST(QosTable, IopsLimitDelaysExcessIos) {
  QosTable q;
  QosSpec spec;
  spec.iops_limit = 1000;  // 1 io/ms
  spec.burst_ios = 1;
  spec.burst_bytes = 1e9;
  spec.bandwidth_limit = 1e12;
  q.set(1, spec);
  auto a1 = q.admit(1, 4096, 0);
  EXPECT_EQ(a1.admit_at, 0);
  auto a2 = q.admit(1, 4096, 0);
  EXPECT_GE(a2.admit_at, ms(1) - us(10));
  auto a3 = q.admit(1, 4096, 0);
  EXPECT_GE(a3.admit_at, 2 * ms(1) - us(20));
  EXPECT_EQ(q.throttled(), 2u);
}

TEST(QosTable, BandwidthLimitDelaysLargeIos) {
  QosTable q;
  QosSpec spec;
  spec.iops_limit = 1e9;
  spec.bandwidth_limit = 100.0 * 1024 * 1024;  // 100 MiB/s
  spec.burst_bytes = 1024 * 1024;
  q.set(1, spec);
  ASSERT_EQ(q.admit(1, 1024 * 1024, 0).admit_at, 0);  // burst
  const auto a = q.admit(1, 1024 * 1024, 0);
  // Another 1 MiB must wait ~10 ms at 100 MiB/s.
  EXPECT_NEAR(static_cast<double>(a.admit_at), static_cast<double>(ms(10)),
              static_cast<double>(ms(1)));
}

TEST(QosTable, TokensRecoverAfterIdle) {
  QosTable q;
  QosSpec spec;
  spec.iops_limit = 1000;
  spec.burst_ios = 2;
  q.set(1, spec);
  q.admit(1, 4096, 0);
  q.admit(1, 4096, 0);
  auto a = q.admit(1, 4096, seconds(1));  // long idle refills the bucket
  EXPECT_EQ(a.admit_at, seconds(1));
}

TEST(BlockCipher, RoundTripsAndTweaks) {
  BlockCipher c(0xFEED);
  Rng rng(3);
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  auto original = data;

  c.apply(1, 0, data);
  EXPECT_NE(data, original);  // actually transformed
  auto ct_lba0 = data;
  c.apply(1, 0, data);
  EXPECT_EQ(data, original);  // self-inverse

  // Same plaintext at another LBA yields different ciphertext (tweak).
  c.apply(1, 4096, data);
  EXPECT_NE(data, ct_lba0);
  c.apply(1, 4096, data);

  // Different key yields different ciphertext.
  BlockCipher c2(0xBEEF);
  c2.apply(1, 0, data);
  EXPECT_NE(data, ct_lba0);
}

TEST(BlockCipher, HandlesOddLengths) {
  BlockCipher c(1);
  for (std::size_t len : {1u, 7u, 8u, 9u, 4095u}) {
    std::vector<std::uint8_t> data(len, 0xAB);
    auto orig = data;
    c.apply(0, 0, data);
    c.apply(0, 0, data);
    EXPECT_EQ(data, orig) << len;
  }
}

// ---- End-to-end SA over LUNA to a real block server ----------------------

struct SaFixture {
  sim::Engine eng;
  net::Network net{eng, net::NetworkParams{}, 7};
  net::TwoHosts hosts = net::build_two_hosts(net, gbps(25), us(1));
  sim::CpuPool client_cpu{eng, "c", 4, sim::CpuPool::Dispatch::kByHash};
  sim::CpuPool server_cpu{eng, "s", 4, sim::CpuPool::Dispatch::kByHash};
  transport::TcpStack client_stack{eng, *hosts.a, client_cpu,
                                   transport::luna_profile(), Rng(1)};
  transport::TcpStack server_stack{eng, *hosts.b, server_cpu,
                                   transport::luna_profile(), Rng(2)};
  storage::BlockServerParams bs_params;
  std::unique_ptr<storage::BlockServer> block_server;
  SegmentTable segments;
  QosTable qos;
  BlockCipher cipher{0xABCD};
  SaParams sa_params;
  std::unique_ptr<StorageAgent> agent;

  explicit SaFixture(bool encrypt = false, bool store_payload = true) {
    bs_params.store_payload = store_payload;
    block_server = std::make_unique<storage::BlockServer>(eng, bs_params,
                                                          Rng(3));
    server_stack.set_handler(
        [this](transport::StorageRequest req,
               std::function<void(transport::StorageResponse)> reply) {
          block_server->handle(std::move(req), std::move(reply));
        });
    segments.map_disk(1, 64 * SegmentTable::kSegmentBytes, {hosts.b->ip()});
    sa_params.encrypt = encrypt;
    agent = std::make_unique<StorageAgent>(eng, client_cpu, segments, qos,
                                           client_stack,
                                           encrypt ? &cipher : nullptr,
                                           sa_params);
  }

  IoResult run_io(IoRequest io) {
    IoResult out;
    bool done = false;
    eng.at(eng.now(), [&] {
      agent->submit_io(std::move(io), [&](IoResult r) {
        out = std::move(r);
        done = true;
      });
    });
    eng.run();
    EXPECT_TRUE(done);
    return out;
  }

  IoRequest write_io(std::uint64_t offset, std::uint32_t len, Rng& rng) {
    IoRequest io;
    io.vd_id = 1;
    io.op = OpType::kWrite;
    io.offset = offset;
    io.len = len;
    io.payload = transport::make_placeholder_blocks(offset, len, 4096);
    for (auto& blk : io.payload) {
      blk.data.resize(blk.len);
      for (auto& b : blk.data) b = static_cast<std::uint8_t>(rng.next());
    }
    return io;
  }
};

TEST(StorageAgent, WriteReadRoundTripPreservesData) {
  SaFixture f;
  Rng rng(9);
  auto wio = f.write_io(8192, 16384, rng);
  auto expected = wio.payload;
  auto wres = f.run_io(std::move(wio));
  ASSERT_EQ(wres.status, StorageStatus::kOk);

  IoRequest rio;
  rio.vd_id = 1;
  rio.op = OpType::kRead;
  rio.offset = 8192;
  rio.len = 16384;
  auto rres = f.run_io(std::move(rio));
  ASSERT_EQ(rres.status, StorageStatus::kOk);
  ASSERT_EQ(rres.read_data.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rres.read_data[i].lba, expected[i].lba);
    EXPECT_EQ(rres.read_data[i].data, expected[i].data);
  }
}

TEST(StorageAgent, EncryptionIsTransparentEndToEnd) {
  SaFixture f(/*encrypt=*/true);
  Rng rng(10);
  auto wio = f.write_io(0, 4096, rng);
  auto plain = wio.payload[0].data;
  ASSERT_EQ(f.run_io(std::move(wio)).status, StorageStatus::kOk);

  // The block server must have stored ciphertext, not plaintext.
  auto seg0 = f.segments.lookup(1, 0);
  ASSERT_TRUE(seg0.has_value());
  auto stored = f.block_server->store().get(seg0->segment_id, 0);
  ASSERT_TRUE(stored.has_value());
  EXPECT_NE(stored->data, plain);

  IoRequest rio;
  rio.vd_id = 1;
  rio.op = OpType::kRead;
  rio.offset = 0;
  rio.len = 4096;
  auto rres = f.run_io(std::move(rio));
  ASSERT_EQ(rres.status, StorageStatus::kOk);
  ASSERT_EQ(rres.read_data.size(), 1u);
  EXPECT_EQ(rres.read_data[0].data, plain);  // decrypted back for the guest
}

TEST(StorageAgent, IoCrossingSegmentBoundarySplitsIntoTwoRpcs) {
  SaFixture f;
  Rng rng(11);
  const std::uint64_t start = SegmentTable::kSegmentBytes - 8192;
  auto wio = f.write_io(start, 16384, rng);
  ASSERT_EQ(f.run_io(std::move(wio)).status, StorageStatus::kOk);
  EXPECT_EQ(f.agent->stats().split_ios, 1u);
  EXPECT_EQ(f.agent->stats().rpcs, 2u);
}

TEST(StorageAgent, UnmappedRangeFailsFast) {
  SaFixture f;
  IoRequest rio;
  rio.vd_id = 42;  // unknown disk
  rio.op = OpType::kRead;
  rio.offset = 0;
  rio.len = 4096;
  auto res = f.run_io(std::move(rio));
  EXPECT_EQ(res.status, StorageStatus::kOutOfRange);
}

TEST(StorageAgent, TraceBreakdownCoversComponents) {
  SaFixture f;
  Rng rng(12);
  auto res = f.run_io(f.write_io(0, 4096, rng));
  ASSERT_EQ(res.status, StorageStatus::kOk);
  EXPECT_GT(res.trace.sa_ns, 0);
  EXPECT_GT(res.trace.fn_ns, 0);
  EXPECT_GT(res.trace.bn_ns, 0);
  EXPECT_GT(res.trace.ssd_ns, 0);
  EXPECT_EQ(res.trace.qos_wait_ns, 0);
  // Total must roughly equal wall time (no double counting).
  EXPECT_NEAR(static_cast<double>(res.trace.total_ns()),
              static_cast<double>(res.completed_at), res.completed_at * 0.25);
}

TEST(StorageAgent, QosWaitExcludedFromSpansButReported) {
  SaFixture f;
  QosSpec spec;
  spec.iops_limit = 100;  // 10ms between IOs
  spec.burst_ios = 1;
  f.qos.set(1, spec);
  Rng rng(13);
  auto r1 = f.run_io(f.write_io(0, 4096, rng));
  EXPECT_EQ(r1.trace.qos_wait_ns, 0);
  auto r2 = f.run_io(f.write_io(4096, 4096, rng));
  EXPECT_GT(r2.trace.qos_wait_ns, ms(5));
  EXPECT_LT(r2.trace.sa_ns, ms(5));  // wait not charged to SA span
}

TEST(StorageAgent, CorruptionDetectedOnRead) {
  SaFixture f;
  Rng rng(14);
  ASSERT_EQ(f.run_io(f.write_io(0, 4096, rng)).status, StorageStatus::kOk);
  // Corrupt the stored block behind the server's back (bit rot).
  auto seg0 = f.segments.lookup(1, 0);
  auto blk = f.block_server->store().get(seg0->segment_id, 0);
  ASSERT_TRUE(blk.has_value());
  auto bad = blk->data;
  bad[17] ^= 0x01;
  f.block_server->store().put(seg0->segment_id, 0, 4096, blk->crc, bad);

  IoRequest rio;
  rio.vd_id = 1;
  rio.op = OpType::kRead;
  rio.offset = 0;
  rio.len = 4096;
  auto res = f.run_io(std::move(rio));
  EXPECT_EQ(res.status, StorageStatus::kCrcMismatch);
  EXPECT_EQ(f.agent->stats().crc_mismatches, 1u);
}

}  // namespace
}  // namespace repro::sa
