#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "proto/headers.h"
#include "proto/wire.h"

namespace repro::proto {
namespace {

TEST(ByteWriterReader, RoundTripsScalars) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteWriterReader, LittleEndianOnTheWire) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u32(0x04030201u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(ByteWriterReader, UnderflowPoisonsReader) {
  std::vector<std::uint8_t> buf{1, 2};
  ByteReader r(buf);
  r.u32();
  EXPECT_FALSE(r.ok());
  // Further reads stay poisoned and return zero.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(ByteWriterReader, BytesAndView) {
  std::vector<std::uint8_t> buf{10, 20, 30, 40};
  ByteReader r(buf);
  auto head = r.bytes(2);
  EXPECT_EQ(head, (std::vector<std::uint8_t>{10, 20}));
  auto tail = r.view(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], 30);
  EXPECT_TRUE(r.ok());
  auto over = r.bytes(1);
  EXPECT_TRUE(over.empty());
  EXPECT_FALSE(r.ok());
}

TEST(RpcHeader, EncodeDecodeRoundTrip) {
  RpcHeader h;
  h.rpc_id = 0xABCDEF0123456789ull;
  h.pkt_id = 3;
  h.pkt_count = 16;
  h.msg_type = RpcMsgType::kReadResponse;
  h.flags = 0x5;
  h.path_id = 4711;

  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.encode(w);
  EXPECT_EQ(buf.size(), RpcHeader::kWireSize);

  ByteReader r(buf);
  auto back = RpcHeader::decode(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(RpcHeader, RejectsBadMsgTypeAndZeroCount) {
  RpcHeader h;
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.encode(w);
  buf[12] = 99;  // msg_type byte
  ByteReader r1(buf);
  EXPECT_FALSE(RpcHeader::decode(r1).has_value());

  buf[12] = 1;
  buf[10] = 0;  // pkt_count low byte
  buf[11] = 0;
  ByteReader r2(buf);
  EXPECT_FALSE(RpcHeader::decode(r2).has_value());
}

TEST(EbsHeader, EncodeDecodeRoundTrip) {
  EbsHeader h;
  h.vd_id = 42;
  h.segment_id = 1001;
  h.lba = 0x0F000;
  h.block_len = kBlockSize;
  h.payload_crc = 0xCAFEBABE;
  h.op = EbsOp::kRead;
  h.version = 7;
  h.qos_class = 2;

  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.encode(w);
  EXPECT_EQ(buf.size(), EbsHeader::kWireSize);

  ByteReader r(buf);
  auto back = EbsHeader::decode(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, h);
}

TEST(EbsHeader, RejectsOversizedBlockAndBadOp) {
  EbsHeader h;
  h.block_len = 64 * 1024;  // way past jumbo payload
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  h.encode(w);
  ByteReader r(buf);
  EXPECT_FALSE(EbsHeader::decode(r).has_value());

  buf.clear();
  h.block_len = kBlockSize;
  ByteWriter w2(buf);
  h.encode(w2);
  buf[32] = 0;  // op byte
  ByteReader r2(buf);
  EXPECT_FALSE(EbsHeader::decode(r2).has_value());
}

TEST(NvmeCommand, EncodeDecodeRoundTripAndByteMath) {
  NvmeCommand c;
  c.opcode = NvmeCommand::Opcode::kWrite;
  c.nsid = 9;
  c.slba = 256;        // 128 KiB offset
  c.nlb = 7;           // 8 sectors = 4 KiB
  c.guest_addr = 0xFFEE0000;
  c.cid = 77;

  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  c.encode(w);
  EXPECT_EQ(buf.size(), NvmeCommand::kWireSize);
  ByteReader r(buf);
  auto back = NvmeCommand::decode(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, c);
  EXPECT_EQ(c.byte_offset(), 256u * 512);
  EXPECT_EQ(c.byte_len(), 4096u);
}

TEST(SolarPacket, WriteRequestRoundTrip) {
  Rng rng(5);
  std::vector<std::uint8_t> payload(kBlockSize);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());

  RpcHeader rpc;
  rpc.rpc_id = 1;
  rpc.msg_type = RpcMsgType::kWriteRequest;
  EbsHeader ebs;
  ebs.vd_id = 3;
  ebs.payload_crc = crc32_raw(payload);

  const auto bytes = encode_solar_packet(rpc, ebs, payload);
  EXPECT_EQ(bytes.size(),
            RpcHeader::kWireSize + EbsHeader::kWireSize + kBlockSize);

  auto pkt = parse_solar_packet(bytes);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->rpc, rpc);
  EXPECT_EQ(pkt->ebs, ebs);
  EXPECT_EQ(pkt->payload, payload);
  EXPECT_EQ(crc32_raw(pkt->payload), pkt->ebs.payload_crc);
}

TEST(SolarPacket, ControlPacketsHaveNoPayload) {
  RpcHeader rpc;
  rpc.msg_type = RpcMsgType::kAck;
  EbsHeader ebs;
  const auto bytes = encode_solar_packet(rpc, ebs, {});
  auto pkt = parse_solar_packet(bytes);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->payload.empty());

  // An ACK with trailing junk is rejected.
  auto bad = bytes;
  bad.push_back(0);
  EXPECT_FALSE(parse_solar_packet(bad).has_value());
}

TEST(SolarPacket, TruncationRejected) {
  RpcHeader rpc;
  rpc.msg_type = RpcMsgType::kWriteRequest;
  EbsHeader ebs;
  std::vector<std::uint8_t> payload(kBlockSize, 0xAA);
  auto bytes = encode_solar_packet(rpc, ebs, payload);
  for (std::size_t cut :
       {std::size_t{0}, std::size_t{5}, RpcHeader::kWireSize,
        RpcHeader::kWireSize + EbsHeader::kWireSize - 1, bytes.size() - 1}) {
    auto t = bytes;
    t.resize(cut);
    EXPECT_FALSE(parse_solar_packet(t).has_value()) << "cut=" << cut;
  }
}

TEST(SolarPacket, PayloadLengthMustMatchHeader) {
  RpcHeader rpc;
  rpc.msg_type = RpcMsgType::kWriteRequest;
  EbsHeader ebs;
  ebs.block_len = kBlockSize;
  std::vector<std::uint8_t> payload(kBlockSize - 1, 0x11);
  auto bytes = encode_solar_packet(rpc, ebs, payload);
  EXPECT_FALSE(parse_solar_packet(bytes).has_value());
}

// Parser fuzz-ish property: random byte strings never crash the parser and
// never produce a data-bearing packet with mismatched payload length.
class SolarParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SolarParserFuzz, RandomBytesAreSafe) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk(rng.next_below(5000));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    auto pkt = parse_solar_packet(junk);
    if (pkt.has_value()) {
      const bool data_bearing =
          pkt->rpc.msg_type == RpcMsgType::kWriteRequest ||
          pkt->rpc.msg_type == RpcMsgType::kReadResponse;
      if (data_bearing) {
        EXPECT_EQ(pkt->payload.size(), pkt->ebs.block_len);
      } else {
        EXPECT_TRUE(pkt->payload.empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolarParserFuzz, ::testing::Range(1, 6));

}  // namespace
}  // namespace repro::proto
