// Unit + integration coverage of the chaos subsystem: FaultPlan DSL JSON
// round-trip, seeded generator determinism, kind-specific injector
// apply/revert semantics, greedy plan minimization, and whole-harness runs
// (clean run, bit-reproducibility, planted-bug detection — the acceptance
// demo that a disabled SOLAR failover yields a deterministic, minimizable
// oracle violation).
#include <gtest/gtest.h>

#include <string>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "chaos/injector.h"
#include "chaos/minimize.h"
#include "ebs/cluster.h"
#include "sim/engine.h"

namespace repro::chaos {
namespace {

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.name = "sample";
  FaultEvent silent;
  silent.at = ms(1);
  silent.duration = ms(5);
  silent.kind = FaultKind::kDeviceSilent;
  silent.target = {TargetKind::kStorageTor, 0, -1};
  plan.events.push_back(silent);
  FaultEvent loss;
  loss.at = ms(2);
  loss.duration = ms(10);
  loss.kind = FaultKind::kLoss;
  loss.target = {TargetKind::kCore, 1, -1};
  loss.magnitude = 0.25;
  plan.events.push_back(loss);
  FaultEvent reorder;
  reorder.at = ms(3);
  reorder.duration = 0;  // held until repair_all
  reorder.kind = FaultKind::kReorder;
  reorder.target = {TargetKind::kStorageSpine, 0, -1};
  reorder.magnitude = 0.1;
  reorder.param = us(120);
  plan.events.push_back(reorder);
  return plan;
}

TEST(FaultPlanDsl, JsonRoundTripPreservesEveryField) {
  FaultPlan plan;
  plan.name = "round-trip";
  // One event of every kind, cycling target kinds.
  const FaultKind kinds[] = {
      FaultKind::kLinkFail,       FaultKind::kDeviceStop,
      FaultKind::kDeviceSilent,   FaultKind::kBlackhole,
      FaultKind::kLoss,           FaultKind::kCorrupt,
      FaultKind::kDuplicate,      FaultKind::kReorder,
      FaultKind::kSsdLatency,     FaultKind::kSsdStall,
      FaultKind::kCpuStall,       FaultKind::kPcieDegrade,
      FaultKind::kFpgaPreCrcFlip, FaultKind::kFpgaPostCrcFlip,
      FaultKind::kFpgaCrcEngine,
  };
  const TargetKind targets[] = {
      TargetKind::kComputeNic,  TargetKind::kStorageNic,
      TargetKind::kComputeTor,  TargetKind::kStorageTor,
      TargetKind::kComputeSpine, TargetKind::kStorageSpine,
      TargetKind::kCore,        TargetKind::kStorageSsd,
      TargetKind::kComputeCpu,  TargetKind::kStorageCpu,
      TargetKind::kComputePcie, TargetKind::kComputeFpga,
  };
  int i = 0;
  for (FaultKind k : kinds) {
    FaultEvent e;
    e.at = ms(i);
    e.duration = ms(10 + i);
    e.kind = k;
    e.target.kind = targets[i % 12];
    e.target.index = i;
    e.target.sub = i % 3 - 1;
    e.magnitude = 0.125 * i;
    e.param = us(i * 7);
    plan.events.push_back(e);
    ++i;
  }

  const std::string json = plan.to_json();
  FaultPlan back;
  std::string err;
  ASSERT_TRUE(plan_from_json(json, &back, &err)) << err;
  EXPECT_EQ(back.name, plan.name);
  ASSERT_EQ(back.events.size(), plan.events.size());
  for (std::size_t j = 0; j < plan.events.size(); ++j) {
    const FaultEvent& a = plan.events[j];
    const FaultEvent& b = back.events[j];
    EXPECT_EQ(a.at, b.at) << j;
    EXPECT_EQ(a.duration, b.duration) << j;
    EXPECT_EQ(a.kind, b.kind) << j;
    EXPECT_EQ(a.target.kind, b.target.kind) << j;
    EXPECT_EQ(a.target.index, b.target.index) << j;
    EXPECT_EQ(a.target.sub, b.target.sub) << j;
    EXPECT_DOUBLE_EQ(a.magnitude, b.magnitude) << j;
    EXPECT_EQ(a.param, b.param) << j;
  }
}

TEST(FaultPlanDsl, ParserRejectsMalformedInput) {
  FaultPlan out;
  EXPECT_FALSE(plan_from_json("", &out));
  EXPECT_FALSE(plan_from_json("{", &out));
  EXPECT_FALSE(plan_from_json("[]", &out));
  EXPECT_FALSE(plan_from_json("{\"name\":\"x\"}", &out));  // no events
  EXPECT_FALSE(plan_from_json(
      R"({"name":"x","events":[{"at_ns":0,"kind":"no_such_kind",
          "target":{"kind":"core","index":0}}]})",
      &out));
  // Trailing garbage after a valid document.
  EXPECT_FALSE(plan_from_json("{\"name\":\"x\",\"events\":[]} trailing", &out));
  // Minimal valid plan.
  EXPECT_TRUE(plan_from_json("{\"name\":\"x\",\"events\":[]}", &out));
  EXPECT_TRUE(out.events.empty());
}

TopologyShape test_shape() {
  TopologyShape s;
  s.compute_nodes = 2;
  s.storage_nodes = 4;
  s.compute_tors = 2;
  s.storage_tors = 4;
  s.compute_spines = 2;
  s.storage_spines = 2;
  s.cores = 2;
  s.replica_ssds = 3;
  s.has_fpga = true;
  return s;
}

TEST(Generator, IsDeterministicPerSeed) {
  GeneratorConfig cfg;
  const TopologyShape shape = test_shape();
  Rng a(77), b(77), c(78);
  const FaultPlan pa = generate_plan(a, cfg, shape);
  const FaultPlan pb = generate_plan(b, cfg, shape);
  const FaultPlan pc = generate_plan(c, cfg, shape);
  EXPECT_EQ(pa.to_json(), pb.to_json());
  EXPECT_NE(pa.to_json(), pc.to_json());
}

TEST(Generator, HangSafePlansKeepMisbehaviourOffNics) {
  GeneratorConfig cfg;
  cfg.hang_safe = true;
  cfg.min_events = 3;
  cfg.max_events = 6;
  const TopologyShape shape = test_shape();
  Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    const FaultPlan plan = generate_plan(rng, cfg, shape);
    for (const FaultEvent& e : plan.events) {
      switch (e.kind) {
        case FaultKind::kDeviceSilent:
        case FaultKind::kDeviceStop:
        case FaultKind::kBlackhole:
        case FaultKind::kLoss:
        case FaultKind::kCorrupt:
        case FaultKind::kDuplicate:
        case FaultKind::kReorder:
          EXPECT_NE(e.target.kind, TargetKind::kComputeNic);
          EXPECT_NE(e.target.kind, TargetKind::kStorageNic);
          break;
        case FaultKind::kLinkFail:
          EXPECT_EQ(e.target.sub, 0);
          break;
        case FaultKind::kSsdStall:
        case FaultKind::kCpuStall:
        case FaultKind::kSsdLatency:
          EXPECT_LE(e.duration, ms(300));
          break;
        default:
          break;
      }
    }
  }
}

TEST(HangOracle, ApplicabilityRules) {
  FaultPlan one_silent;
  FaultEvent e;
  e.kind = FaultKind::kDeviceSilent;
  e.target = {TargetKind::kStorageTor, 0, -1};
  e.duration = ms(500);
  one_silent.events.push_back(e);
  EXPECT_TRUE(hang_oracle_applicable(ebs::StackKind::kSolar, one_silent));
  EXPECT_TRUE(hang_oracle_applicable(ebs::StackKind::kSolarStar, one_silent));
  // Never for the software stacks: hangs are their Table 2 signal.
  EXPECT_FALSE(hang_oracle_applicable(ebs::StackKind::kLuna, one_silent));
  EXPECT_FALSE(hang_oracle_applicable(ebs::StackKind::kKernelTcp, one_silent));

  // Two tier-killing faults could cover a whole ECMP tier: not safe.
  FaultPlan two_silent = one_silent;
  two_silent.events.push_back(e);
  EXPECT_FALSE(hang_oracle_applicable(ebs::StackKind::kSolar, two_silent));

  // Loss on a NIC has no path diversity to dodge through: not safe.
  FaultPlan nic_loss;
  FaultEvent l;
  l.kind = FaultKind::kLoss;
  l.target = {TargetKind::kStorageNic, 0, -1};
  l.magnitude = 0.3;
  nic_loss.events.push_back(l);
  EXPECT_FALSE(hang_oracle_applicable(ebs::StackKind::kSolar, nic_loss));
}

TEST(Injector, AppliesAndRevertsKindSpecifically) {
  sim::Engine eng;
  ebs::ClusterParams params;
  params.topo.compute_servers = 2;
  params.topo.storage_servers = 4;
  params.topo.servers_per_rack = 2;
  params.stack = ebs::StackKind::kSolar;
  params.seed = 9;
  ebs::Cluster cluster(eng, params);
  Injector inj(cluster);

  const TopologyShape shape = inj.shape();
  EXPECT_EQ(shape.compute_nodes, 2);
  EXPECT_EQ(shape.storage_nodes, 4);
  EXPECT_GT(shape.storage_tors, 0);
  EXPECT_TRUE(shape.has_fpga);

  // Silent (5 ms) and blackhole (12 ms) composed on the same ToR: the
  // silent repair must not clear the still-running blackhole.
  FaultPlan plan;
  FaultEvent silent;
  silent.at = ms(1);
  silent.duration = ms(5);
  silent.kind = FaultKind::kDeviceSilent;
  silent.target = {TargetKind::kStorageTor, 0, -1};
  plan.events.push_back(silent);
  FaultEvent bh;
  bh.at = ms(1);
  bh.duration = ms(12);
  bh.kind = FaultKind::kBlackhole;
  bh.target = {TargetKind::kStorageTor, 0, -1};
  bh.magnitude = 0.5;
  plan.events.push_back(bh);
  // SSD stall held until repair_all.
  FaultEvent stall;
  stall.at = ms(2);
  stall.duration = 0;
  stall.kind = FaultKind::kSsdStall;
  stall.target = {TargetKind::kStorageSsd, 1, -1};
  plan.events.push_back(stall);

  inj.arm(plan);
  const net::Device& tor = *cluster.clos().storage_tors[0];
  auto& ssd = cluster.storage(1).block_server().replica_ssd(0);

  eng.run_until(ms(3));
  EXPECT_TRUE(tor.faults().silent_dead);
  EXPECT_DOUBLE_EQ(tor.faults().blackhole_fraction, 0.5);
  EXPECT_TRUE(ssd.stalled());

  eng.run_until(ms(8));
  EXPECT_FALSE(tor.faults().silent_dead);          // silent reverted
  EXPECT_DOUBLE_EQ(tor.faults().blackhole_fraction, 0.5);  // still on

  eng.run_until(ms(14));
  EXPECT_DOUBLE_EQ(tor.faults().blackhole_fraction, 0.0);
  EXPECT_TRUE(ssd.stalled());  // duration 0 = held

  inj.repair_all();
  EXPECT_FALSE(ssd.stalled());
  EXPECT_EQ(inj.last_repair_time(), eng.now());
  EXPECT_EQ(inj.applied(), 3);
  EXPECT_EQ(inj.reverted(), 3);
}

TEST(Injector, RepairAllCancelsNotYetAppliedEvents) {
  sim::Engine eng;
  ebs::ClusterParams params;
  params.topo.compute_servers = 1;
  params.topo.storage_servers = 2;
  params.topo.servers_per_rack = 2;
  params.seed = 3;
  ebs::Cluster cluster(eng, params);
  Injector inj(cluster);

  FaultPlan plan;
  FaultEvent late;
  late.at = seconds(5);  // far in the future
  late.duration = ms(100);
  late.kind = FaultKind::kDeviceSilent;
  late.target = {TargetKind::kStorageTor, 0, -1};
  plan.events.push_back(late);
  inj.arm(plan);

  eng.run_until(ms(10));
  inj.repair_all();
  eng.run_until(seconds(6));
  EXPECT_EQ(inj.applied(), 0);  // never fired
  EXPECT_FALSE(cluster.clos().storage_tors[0]->faults().silent_dead);
}

TEST(Minimizer, DropsIrrelevantEventsAndShrinksDurations) {
  FaultPlan plan = sample_plan();
  plan.events[0].duration = ms(800);
  // "Fails" iff a kDeviceSilent event on a storage ToR with >= 100 ms
  // duration survives — events 1 and 2 are noise.
  auto still_fails = [](const FaultPlan& p) {
    for (const FaultEvent& e : p.events) {
      if (e.kind == FaultKind::kDeviceSilent &&
          e.target.kind == TargetKind::kStorageTor && e.duration >= ms(100)) {
        return true;
      }
    }
    return false;
  };
  const MinimizeResult res = minimize_plan(plan, still_fails);
  EXPECT_TRUE(res.converged);
  ASSERT_EQ(res.plan.events.size(), 1u);
  EXPECT_EQ(res.plan.events[0].kind, FaultKind::kDeviceSilent);
  EXPECT_LT(res.plan.events[0].duration, ms(800));
  EXPECT_GE(res.plan.events[0].duration, ms(100));
  EXPECT_GT(res.probes, 0);
}

// --- whole-harness runs ----------------------------------------------------

HarnessConfig quick_config(ebs::StackKind stack, std::uint64_t seed) {
  HarnessConfig cfg;
  cfg.stack = stack;
  cfg.seed = seed;
  cfg.active = ms(400);
  cfg.poisson_iops = 800.0;
  cfg.readback_samples = 16;
  return cfg;
}

TEST(Harness, CleanRunHasNoViolations) {
  HarnessConfig cfg = quick_config(ebs::StackKind::kSolar, 11);
  cfg.oracle.hang_oracle = true;  // nothing injected, so nothing may hang
  const RunReport r = run_chaos(cfg);
  EXPECT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
  EXPECT_GT(r.ios_completed, 0u);
  EXPECT_GT(r.crc_checks, 0u);  // durability oracle actually exercised
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.hangs, 0u);
}

TEST(Harness, ChaosRunIsBitReproducible) {
  Rng rng(31);
  GeneratorConfig gc;
  gc.window = ms(300);
  TopologyShape shape = test_shape();
  shape.has_fpga = true;
  const FaultPlan plan = generate_plan(rng, gc, shape);

  HarnessConfig cfg = quick_config(ebs::StackKind::kSolar, 13);
  cfg.plan = plan;
  const RunReport a = run_chaos(cfg);
  const RunReport b = run_chaos(cfg);
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_GT(a.faults_applied, 0u);
  EXPECT_EQ(a.faults_applied, a.faults_reverted);
}

TEST(Harness, PlantedFailoverBugIsCaughtDeterministically) {
  // One long silent ToR. Healthy SOLAR redraws paths and stays hang-free
  // (Table 2's zero column); with failover disabled the flows stay pinned
  // and the hang oracle must fire.
  FaultPlan plan;
  plan.name = "planted-bug";
  FaultEvent e;
  e.at = ms(10);
  e.duration = ms(1500);
  e.kind = FaultKind::kDeviceSilent;
  e.target = {TargetKind::kStorageTor, 0, -1};
  plan.events.push_back(e);

  HarnessConfig cfg = quick_config(ebs::StackKind::kSolar, 17);
  cfg.plan = plan;
  cfg.active = ms(1600);
  cfg.oracle.hang_oracle = true;

  const RunReport healthy = run_chaos(cfg);
  EXPECT_TRUE(healthy.ok())
      << healthy.violations.front().oracle << ": "
      << healthy.violations.front().detail;

  cfg.disable_solar_failover = true;
  const RunReport buggy = run_chaos(cfg);
  EXPECT_FALSE(buggy.ok());
  const RunReport buggy2 = run_chaos(cfg);
  EXPECT_EQ(buggy.signature(), buggy2.signature());  // fails the same way

  // And the repro minimizes to the single silent event.
  const MinimizeResult min = minimize_plan(plan, [&](const FaultPlan& p) {
    HarnessConfig probe = cfg;
    probe.plan = p;
    return !run_chaos(probe).ok();
  });
  ASSERT_GE(min.plan.events.size(), 1u);
  EXPECT_EQ(min.plan.events[0].kind, FaultKind::kDeviceSilent);
  HarnessConfig replay = cfg;
  replay.plan = min.plan;
  EXPECT_FALSE(run_chaos(replay).ok());
}

}  // namespace
}  // namespace repro::chaos
