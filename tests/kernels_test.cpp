// Cross-tier property suite for the dispatched data-plane kernels
// (src/kernels). The determinism invariant under test: every tier — scalar,
// SSSE3, AVX2, and the CLMUL CRC the vector tiers carry — returns
// BIT-IDENTICAL results for every input, so seeded simulation output can
// never depend on the host ISA. References are computed independently
// (peasant-multiply GF(256), bitwise CRC), not against another tier, so a
// shared table bug can't hide.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "kernels/gf256.h"
#include "kernels/kernels.h"

namespace repro::kernels {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return v;
}

/// Russian-peasant GF(256) multiply — no tables, the independent reference.
std::uint8_t peasant_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    const bool hi = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1D;  // x^8 = x^4 + x^3 + x^2 + 1 (poly 0x11D)
    b >>= 1;
  }
  return r;
}

/// Bitwise CRC-32 (reflected, poly 0xEDB88320), raw register form.
std::uint32_t bitwise_crc(std::uint32_t state, const std::uint8_t* p,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    for (int b = 0; b < 8; ++b) {
      state = (state & 1) ? (0xEDB88320u ^ (state >> 1)) : (state >> 1);
    }
  }
  return state;
}

/// Runs `fn` under each available tier, restoring the entry tier after.
template <typename Fn>
void for_each_tier(Fn fn) {
  const Tier entry = active().tier;
  for (Tier t : available_tiers()) {
    ASSERT_TRUE(set_tier(t)) << tier_name(t);
    fn(t);
  }
  ASSERT_TRUE(set_tier(entry));
}

TEST(Gf256, MulMatchesPeasantExhaustive) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gf256_mul(static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b)),
                peasant_mul(static_cast<std::uint8_t>(a),
                            static_cast<std::uint8_t>(b)))
          << a << " * " << b;
    }
  }
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256_mul(ua, gf256_inv(ua)), 1) << a;
  }
}

TEST(KernelDispatch, TierNamesRoundTrip) {
  for (Tier t : {Tier::kScalar, Tier::kSsse3, Tier::kAvx2}) {
    const auto back = tier_from_string(tier_name(t));
    ASSERT_TRUE(back.has_value()) << tier_name(t);
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(tier_from_string("sse9").has_value());
  EXPECT_FALSE(tier_from_string("").has_value());
}

TEST(KernelDispatch, AvailableTiersSelectable) {
  const auto tiers = available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(best_tier(), tiers.back());
  for_each_tier([](Tier t) {
    EXPECT_EQ(active().tier, t);
    // Scalar pins the whole data plane scalar, CLMUL only rides vector tiers.
    if (t == Tier::kScalar) EXPECT_FALSE(active().crc_is_clmul);
  });
}

// mul_acc: every tier == independent reference, for every length 0..257 and
// unaligned heads on both input and output.
TEST(KernelProperty, MulAccMatchesReference) {
  const std::vector<std::uint8_t> coefs = {0,    1,    2,    3,   0x1D,
                                           0x53, 0x80, 0xC6, 0xFF};
  const auto base_in = pattern(257 + 8, 42);
  for (std::size_t len = 0; len <= 257; ++len) {
    for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      const std::uint8_t c = coefs[(len + off) % coefs.size()];
      const std::uint8_t* in = base_in.data() + off;
      // Independent reference accumulate.
      std::vector<std::uint8_t> want = pattern(len + off + 8, 7);
      for (std::size_t i = 0; i < len; ++i) {
        want[off + i] ^= peasant_mul(c, in[i]);
      }
      for_each_tier([&](Tier t) {
        std::vector<std::uint8_t> out = pattern(len + off + 8, 7);
        active().gf_mul_acc(c, in, out.data() + off, len);
        ASSERT_EQ(out, want) << tier_name(t) << " c=" << int(c)
                             << " len=" << len << " off=" << off;
      });
    }
  }
}

// Fused encode == per-row reference for EVERY geometry up to (k,m) = (32,96)
// (the codec's k cap and the largest m with k + m <= 128), with a mix of
// real and absent (nullptr) fragments and a tail-exercising length.
TEST(KernelProperty, EcEncodeFusedAllGeometries) {
  const std::size_t n = 37;  // odd: vector main loop + scalar tail
  for (int k = 1; k <= 32; ++k) {
    for (int m = 1; m <= 96 && k + m <= 128; ++m) {
      // Cauchy-style coefficients keep rows distinct; sprinkle 0s and 1s.
      std::vector<std::vector<std::uint8_t>> coef(
          static_cast<std::size_t>(m),
          std::vector<std::uint8_t>(static_cast<std::size_t>(k)));
      std::vector<const std::uint8_t*> coef_rows(static_cast<std::size_t>(m));
      for (int q = 0; q < m; ++q) {
        for (int p = 0; p < k; ++p) {
          std::uint8_t c = static_cast<std::uint8_t>((q * 37 + p * 11 + 1));
          if ((q + p) % 13 == 0) c = 0;
          if ((q + p) % 13 == 1) c = 1;
          coef[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)] = c;
        }
        coef_rows[static_cast<std::size_t>(q)] =
            coef[static_cast<std::size_t>(q)].data();
      }
      std::vector<std::vector<std::uint8_t>> data(
          static_cast<std::size_t>(k));
      std::vector<const std::uint8_t*> frags(static_cast<std::size_t>(k),
                                             nullptr);
      for (int p = 0; p < k; ++p) {
        if (p % 5 == 3) continue;  // absent fragment
        data[static_cast<std::size_t>(p)] =
            pattern(n, static_cast<std::uint64_t>(k * 1000 + m * 10 + p));
        frags[static_cast<std::size_t>(p)] =
            data[static_cast<std::size_t>(p)].data();
      }
      // Independent reference: bytewise table multiply per row.
      std::vector<std::vector<std::uint8_t>> want(
          static_cast<std::size_t>(m), std::vector<std::uint8_t>(n, 0));
      for (int p = 0; p < k; ++p) {
        if (frags[static_cast<std::size_t>(p)] == nullptr) continue;
        for (int q = 0; q < m; ++q) {
          const std::uint8_t c =
              coef[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)];
          auto& row = want[static_cast<std::size_t>(q)];
          for (std::size_t i = 0; i < n; ++i) {
            row[i] ^= gf256_mul(c, frags[static_cast<std::size_t>(p)][i]);
          }
        }
      }
      for_each_tier([&](Tier t) {
        std::vector<std::vector<std::uint8_t>> got(
            static_cast<std::size_t>(m),
            std::vector<std::uint8_t>(n, 0xAA));  // kernel must zero these
        std::vector<std::uint8_t*> parity(static_cast<std::size_t>(m));
        for (int q = 0; q < m; ++q) {
          parity[static_cast<std::size_t>(q)] =
              got[static_cast<std::size_t>(q)].data();
        }
        active().ec_encode(static_cast<std::size_t>(k),
                           static_cast<std::size_t>(m), coef_rows.data(),
                           frags.data(), parity.data(), n);
        ASSERT_EQ(got, want)
            << tier_name(t) << " k=" << k << " m=" << m;
      });
    }
  }
}

// CRC32: every tier == bitwise reference for lengths 0..257 at unaligned
// offsets, arbitrary entry state, plus streaming splits of a large buffer
// (the CLMUL kernel's >= 64-byte fold path and its state hand-off).
TEST(KernelProperty, Crc32MatchesBitwiseReference) {
  const auto buf = pattern(257 + 8, 99);
  for (std::size_t len = 0; len <= 257; ++len) {
    for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      const std::uint32_t state =
          0xDEADBEEFu * static_cast<std::uint32_t>(len + off) + 1u;
      const std::uint32_t want = bitwise_crc(state, buf.data() + off, len);
      for_each_tier([&](Tier t) {
        ASSERT_EQ(active().crc32_update(state, buf.data() + off, len), want)
            << tier_name(t) << " len=" << len << " off=" << off;
      });
    }
  }
}

TEST(KernelProperty, Crc32StreamingSplitsLargeBuffer) {
  const auto buf = pattern(1 << 20, 5);
  const std::uint32_t want = bitwise_crc(0, buf.data(), buf.size());
  for_each_tier([&](Tier t) {
    EXPECT_EQ(active().crc32_update(0, buf.data(), buf.size()), want)
        << tier_name(t);
    // Chained updates across awkward split points must agree too.
    for (std::size_t split : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{4096},
                              std::size_t{65537}}) {
      std::uint32_t state = active().crc32_update(0, buf.data(), split);
      state = active().crc32_update(state, buf.data() + split,
                                    buf.size() - split);
      EXPECT_EQ(state, want) << tier_name(t) << " split=" << split;
    }
  });
}

TEST(KernelProperty, XorAccMatchesReference) {
  const auto src = pattern(257 + 8, 11);
  for (std::size_t len = 0; len <= 257; ++len) {
    for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      std::vector<std::uint8_t> want = pattern(len + off + 8, 13);
      for (std::size_t i = 0; i < len; ++i) want[off + i] ^= src[off + i];
      for_each_tier([&](Tier t) {
        std::vector<std::uint8_t> dst = pattern(len + off + 8, 13);
        active().xor_acc(dst.data() + off, src.data() + off, len);
        ASSERT_EQ(dst, want) << tier_name(t) << " len=" << len
                             << " off=" << off;
      });
    }
  }
}

// The SOLAR aggregate check (common/crc32 rides the kernels) must accept and
// reject identically under every tier.
TEST(KernelProperty, CrcAggregateCheckAgreesAcrossTiers) {
  std::vector<std::vector<std::uint8_t>> blocks;
  for (int i = 0; i < 16; ++i) {
    blocks.push_back(pattern(4096, static_cast<std::uint64_t>(i) + 1));
  }
  std::vector<std::uint32_t> crcs;
  for (const auto& b : blocks) crcs.push_back(crc32_raw(b));
  for_each_tier([&](Tier t) {
    EXPECT_TRUE(crc_aggregate_check(blocks, crcs)) << tier_name(t);
    auto bad_blocks = blocks;
    bad_blocks[7][123] ^= 0x40;
    EXPECT_FALSE(crc_aggregate_check(bad_blocks, crcs)) << tier_name(t);
    auto bad_crcs = crcs;
    bad_crcs[3] ^= 1;
    EXPECT_FALSE(crc_aggregate_check(blocks, bad_crcs)) << tier_name(t);
  });
}

}  // namespace
}  // namespace repro::kernels
