// Server-family conformance suite: the contract every server family from
// the StackFactory must honor, parameterized so each future family is
// covered for free. For every family (kernel-TCP, RDMA, SOLAR, and the
// erasure-coded kEcServer wrapping SOLAR) × {homogeneous, sharded}
// clusters the suite asserts, via the chaos harness's full oracle board:
//
//  * exactly-once + CRC durability on a clean (fault-free) run;
//  * bit-determinism: the run signature is a function of the config only,
//    identical across --threads 1, 2, 8 on the sharded build;
//  * observability is a read-only plane: obs-on and dark runs match;
//  * EC only: committed data survives any m concurrent fragment-holder
//    fail-stops (oracle green) and m+1 is detected as real data loss
//    ("ec_durability" fires).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "obs/obs.h"
#include "placement/policy.h"

namespace repro::chaos {
namespace {

using ebs::StackKind;

struct FamilyCase {
  const char* name;       ///< stack::to_string(ServerFamily) spelling
  StackKind stack;
  bool ec = false;
  /// Placement policy name ("legacy" / "rack-aware" / "exposure"); null =
  /// placement subsystem off entirely (the historical config).
  const char* policy = nullptr;
};

constexpr FamilyCase kFamilies[] = {
    {"tcp", StackKind::kKernelTcp},
    {"rdma", StackKind::kRdma},
    {"solar", StackKind::kSolar},
    {"ec", StackKind::kSolar, true},
    // Placement-policy sweep: every family × every policy must honor the
    // same conformance contract (exactly-once, CRC durability, thread-count
    // bit-determinism, obs read-only) as the policy-free configs above.
    {"tcp_legacy", StackKind::kKernelTcp, false, "legacy"},
    {"tcp_rack", StackKind::kKernelTcp, false, "rack-aware"},
    {"tcp_exposure", StackKind::kKernelTcp, false, "exposure"},
    {"rdma_legacy", StackKind::kRdma, false, "legacy"},
    {"rdma_rack", StackKind::kRdma, false, "rack-aware"},
    {"rdma_exposure", StackKind::kRdma, false, "exposure"},
    {"solar_legacy", StackKind::kSolar, false, "legacy"},
    {"solar_rack", StackKind::kSolar, false, "rack-aware"},
    {"solar_exposure", StackKind::kSolar, false, "exposure"},
    {"ec_legacy", StackKind::kSolar, true, "legacy"},
    {"ec_rack", StackKind::kSolar, true, "rack-aware"},
    {"ec_exposure", StackKind::kSolar, true, "exposure"},
};

HarnessConfig family_config(const FamilyCase& fc, int shards = 1,
                            int threads = 1) {
  HarnessConfig cfg;
  cfg.stack = fc.stack;
  cfg.seed = 2024;
  cfg.compute_nodes = 2;
  cfg.storage_nodes = 4;
  cfg.servers_per_rack = 2;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.active = ms(400);
  cfg.fio_max_ios = 150;
  cfg.poisson_iops = 600.0;
  cfg.readback_samples = 24;
  if (fc.ec) {
    cfg.ec.enabled = true;
    cfg.ec.k = 2;
    cfg.ec.m = 1;
  }
  if (fc.policy != nullptr) {
    cfg.placement.enabled = true;
    EXPECT_TRUE(
        placement::policy_from_string(fc.policy, &cfg.placement.policy));
  }
  return cfg;
}

class ServerFamilyConformance : public ::testing::TestWithParam<FamilyCase> {};

std::string case_name(const ::testing::TestParamInfo<FamilyCase>& info) {
  return info.param.name;
}

// Exactly-once + CRC durability: a fault-free run under the full oracle
// board (completion accounting, shadow-CRC read-back) must be green, with
// real traffic and real CRC checks behind the verdict.
TEST_P(ServerFamilyConformance, CleanRunExactlyOnceAndDurable) {
  const RunReport r = run_chaos(family_config(GetParam()));
  ASSERT_TRUE(r.ok()) << r.violations.front().oracle << ": "
                      << r.violations.front().detail;
  EXPECT_GT(r.ios_completed, 0u);
  EXPECT_GT(r.crc_checks, 0u);
  EXPECT_EQ(r.hangs, 0u);
}

// Bit-determinism: same config → same signature, and on the sharded build
// the worker-thread count is purely a speed knob — 1, 2 and 8 threads must
// produce the identical signature (engine schedule, completions, faults).
TEST_P(ServerFamilyConformance, BitDeterministicAcrossThreads) {
  const std::string homogeneous =
      run_chaos(family_config(GetParam())).signature();
  EXPECT_EQ(homogeneous, run_chaos(family_config(GetParam())).signature());

  const std::string sharded1 =
      run_chaos(family_config(GetParam(), /*shards=*/2, /*threads=*/1))
          .signature();
  for (const int threads : {2, 8}) {
    EXPECT_EQ(sharded1,
              run_chaos(family_config(GetParam(), /*shards=*/2, threads))
                  .signature())
        << "threads=" << threads;
  }
}

// Observability must be a read-only plane: attaching the full obs stack
// (registry, sampler, tracer) cannot perturb the simulation.
TEST_P(ServerFamilyConformance, ObsOnMatchesDark) {
  const std::string dark = run_chaos(family_config(GetParam())).signature();

  obs::ObsConfig oc;
  oc.sample_interval = ms(1);
  obs::Obs obs(oc);
  HarnessConfig lit = family_config(GetParam());
  lit.obs = &obs;
  EXPECT_EQ(run_chaos(lit).signature(), dark);
  EXPECT_GT(obs.sampler().samples_taken(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ServerFamilyConformance,
                         ::testing::ValuesIn(kFamilies), case_name);

// ---------------------------------------------------------------------------
// EC-only conformance: availability under f concurrent fragment losses.

FaultEvent storage_stop(int index) {
  FaultEvent e;
  e.at = ms(50);
  e.duration = 0;  // permanent until repair_all — still down at the audit
  e.kind = FaultKind::kDeviceStop;
  e.target.kind = TargetKind::kStorageNic;
  e.target.index = index;
  return e;
}

// Any m concurrent fragment-holder fail-stops: every committed cell must
// stay recoverable (mid-run EC audit green, degraded reads served, rebuild
// restores the fleet by quiesce).
TEST(EcConformance, SurvivesAnyMConcurrentFragmentLosses) {
  const FamilyCase ec{"ec", StackKind::kSolar, true};
  const int width = 4;  // storage_nodes in family_config
  for (int victim = 0; victim < width; ++victim) {
    HarnessConfig cfg = family_config(ec);
    cfg.plan.name = "ec-m-losses";
    cfg.plan.events.push_back(storage_stop(victim));  // m = 1 loss
    const RunReport r = run_chaos(cfg);
    EXPECT_TRUE(r.ok()) << "victim " << victim << ": "
                        << (r.ok() ? ""
                                   : r.violations.front().oracle + ": " +
                                         r.violations.front().detail);
    EXPECT_GT(r.ios_completed, 0u);
  }
}

// Whole-rack fail-stop: the same two-server outage (both servers of rack
// 1 in a 3-rack, 6-server pod) is data loss under the legacy rotated
// layout — consecutive pool slots share a rack, so one rack can hold two
// of a stripe's k+m=3 fragments — but survivable under RackAwareSpread,
// whose schedule bounds any rack to ceil(3/3) = 1 fragment per stripe.
TEST(EcConformance, RackAwareSpreadSurvivesWholeRackFailStop) {
  auto rack_fail_config = [](const char* policy) {
    const FamilyCase ec{"ec", StackKind::kSolar, true};
    HarnessConfig cfg = family_config(ec);
    cfg.storage_nodes = 6;
    cfg.servers_per_rack = 2;  // racks {0,1},{2,3},{4,5}
    cfg.plan.name = "rack-fail";
    cfg.plan.events.push_back(storage_stop(2));
    cfg.plan.events.push_back(storage_stop(3));
    if (policy != nullptr) {
      cfg.placement.enabled = true;
      EXPECT_TRUE(
          placement::policy_from_string(policy, &cfg.placement.policy));
    }
    return cfg;
  };
  auto ec_durability_fired = [](const RunReport& r) {
    return std::any_of(
        r.violations.begin(), r.violations.end(),
        [](const Violation& v) { return v.oracle == "ec_durability"; });
  };

  const RunReport legacy = run_chaos(rack_fail_config("legacy"));
  EXPECT_TRUE(ec_durability_fired(legacy))
      << "legacy rotated layout must lose data to a whole-rack fail-stop";

  const RunReport spread = run_chaos(rack_fail_config("rack-aware"));
  EXPECT_FALSE(ec_durability_fired(spread))
      << (spread.violations.empty()
              ? std::string()
              : spread.violations.front().oracle + ": " +
                    spread.violations.front().detail);
  EXPECT_GT(spread.ios_completed, 0u);
}

// m+1 concurrent losses exceed the code's correction budget: the
// durability-under-f-failures oracle must detect real data loss.
TEST(EcConformance, DetectsDataLossAtMPlusOneLosses) {
  const FamilyCase ec{"ec", StackKind::kSolar, true};
  HarnessConfig cfg = family_config(ec);
  cfg.plan.name = "ec-m-plus-one";
  cfg.plan.events.push_back(storage_stop(0));
  cfg.plan.events.push_back(storage_stop(1));
  const RunReport r = run_chaos(cfg);
  EXPECT_FALSE(r.ok());
  const bool fired = std::any_of(
      r.violations.begin(), r.violations.end(),
      [](const Violation& v) { return v.oracle == "ec_durability"; });
  EXPECT_TRUE(fired) << "m+1 fragment losses must trip the EC oracle";
}

}  // namespace
}  // namespace repro::chaos
