#include "transport/tcp.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/cpu.h"

namespace repro::transport {
namespace {

struct TcpFixture {
  sim::Engine eng;
  net::Network net{eng, net::NetworkParams{}, 99};
  net::TwoHosts hosts = net::build_two_hosts(net, gbps(25), us(1));
  sim::CpuPool client_cpu{eng, "client", 2, sim::CpuPool::Dispatch::kByHash};
  sim::CpuPool server_cpu{eng, "server", 2, sim::CpuPool::Dispatch::kByHash};

  std::unique_ptr<TcpStack> client;
  std::unique_ptr<TcpStack> server;

  explicit TcpFixture(TcpCostProfile profile = luna_profile()) {
    client = std::make_unique<TcpStack>(eng, *hosts.a, client_cpu, profile,
                                        Rng(1));
    server = std::make_unique<TcpStack>(eng, *hosts.b, server_cpu, profile,
                                        Rng(2));
    server->set_handler(
        [](StorageRequest req, std::function<void(StorageResponse)> reply) {
          StorageResponse resp;
          resp.status = StorageStatus::kOk;
          if (req.op == OpType::kRead) {
            resp.blocks = make_placeholder_blocks(req.segment_offset, req.len,
                                                  4096);
          }
          reply(std::move(resp));
        });
  }

  StorageRequest write_request(std::uint32_t len) {
    StorageRequest req;
    req.op = OpType::kWrite;
    req.vd_id = 1;
    req.len = len;
    req.blocks = make_placeholder_blocks(0, len, 4096);
    return req;
  }
};

TEST(MakePlaceholderBlocks, SplitsAtBlockBoundaries) {
  auto blocks = make_placeholder_blocks(0, 16384, 4096);
  ASSERT_EQ(blocks.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(blocks[i].lba, i * 4096);
    EXPECT_EQ(blocks[i].len, 4096u);
  }
}

TEST(MakePlaceholderBlocks, UnalignedOffsetShortensFirstBlock) {
  auto blocks = make_placeholder_blocks(1024, 8192, 4096);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].lba, 1024u);
  EXPECT_EQ(blocks[0].len, 3072u);  // up to the 4K boundary
  EXPECT_EQ(blocks[1].len, 4096u);
  EXPECT_EQ(blocks[2].len, 1024u);
}

TEST(MakePlaceholderBlocks, EmptyAndZeroBlockSize) {
  EXPECT_TRUE(make_placeholder_blocks(0, 0, 4096).empty());
  EXPECT_TRUE(make_placeholder_blocks(0, 100, 0).empty());
}

TEST(Tcp, SingleRpcRoundTrip) {
  TcpFixture f;
  bool done = false;
  f.eng.at(0, [&] {
    f.client->call(f.hosts.b->ip(), f.write_request(4096),
                   [&](StorageResponse resp) {
                     EXPECT_EQ(resp.status, StorageStatus::kOk);
                     done = true;
                   });
  });
  f.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.client->retransmits(), 0u);
}

TEST(Tcp, LunaRpcLatencyIsTensOfMicroseconds) {
  TcpFixture f(luna_profile());
  TimeNs completed = -1;
  f.eng.at(0, [&] {
    f.client->call(f.hosts.b->ip(), f.write_request(4096),
                   [&](StorageResponse) { completed = f.eng.now(); });
  });
  f.eng.run();
  ASSERT_GT(completed, 0);
  EXPECT_LT(completed, us(40));
  EXPECT_GT(completed, us(5));
}

TEST(Tcp, KernelSlowerThanLuna) {
  TimeNs kernel_t = 0, luna_t = 0;
  {
    TcpFixture f(kernel_tcp_profile());
    f.eng.at(0, [&] {
      f.client->call(f.hosts.b->ip(), f.write_request(4096),
                     [&](StorageResponse) { kernel_t = f.eng.now(); });
    });
    f.eng.run();
  }
  {
    TcpFixture f(luna_profile());
    f.eng.at(0, [&] {
      f.client->call(f.hosts.b->ip(), f.write_request(4096),
                     [&](StorageResponse) { luna_t = f.eng.now(); });
    });
    f.eng.run();
  }
  ASSERT_GT(kernel_t, 0);
  ASSERT_GT(luna_t, 0);
  // Paper Table 1: kernel ~3-5x the single-RPC latency of LUNA.
  EXPECT_GT(kernel_t, luna_t * 2);
}

TEST(Tcp, LargeMessageSegmentsAndReassembles) {
  TcpFixture f;
  bool done = false;
  f.eng.at(0, [&] {
    f.client->call(f.hosts.b->ip(), f.write_request(131072),  // 128 KB
                   [&](StorageResponse resp) {
                     EXPECT_EQ(resp.status, StorageStatus::kOk);
                     done = true;
                   });
  });
  f.eng.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.server->messages_delivered(), 1u);
}

TEST(Tcp, ReadReturnsRequestedBlocks) {
  TcpFixture f;
  std::size_t got_blocks = 0;
  f.eng.at(0, [&] {
    StorageRequest req;
    req.op = OpType::kRead;
    req.len = 16384;
    f.client->call(f.hosts.b->ip(), std::move(req),
                   [&](StorageResponse resp) {
                     got_blocks = resp.blocks.size();
                   });
  });
  f.eng.run();
  EXPECT_EQ(got_blocks, 4u);
}

TEST(Tcp, ManyConcurrentRpcsAllComplete) {
  TcpFixture f;
  int done = 0;
  constexpr int kRpcs = 200;
  f.eng.at(0, [&] {
    for (int i = 0; i < kRpcs; ++i) {
      f.client->call(f.hosts.b->ip(), f.write_request(4096),
                     [&](StorageResponse) { ++done; });
    }
  });
  f.eng.run();
  EXPECT_EQ(done, kRpcs);
  // RPCs stripe over a small fixed set of connections per peer.
  EXPECT_EQ(f.client->open_connections(),
            static_cast<std::size_t>(f.client->profile().conns_per_peer));
}

TEST(Tcp, RecoversFromRandomLoss) {
  TcpFixture f;
  f.net.set_loss_rate(*f.hosts.sw, 0.05);
  int done = 0;
  constexpr int kRpcs = 100;
  f.eng.at(0, [&] {
    for (int i = 0; i < kRpcs; ++i) {
      f.client->call(f.hosts.b->ip(), f.write_request(16384),
                     [&](StorageResponse) { ++done; });
    }
  });
  f.eng.run();
  EXPECT_EQ(done, kRpcs);
  EXPECT_GT(f.client->retransmits() + f.server->retransmits(), 0u);
}

TEST(Tcp, SurvivesSevereLossViaRtoBackoff) {
  // 50% loss in both directions: progress is slow (RTO + exponential
  // backoff — the "I/O hang" mechanism of §3.3) but never stops.
  TcpFixture f;
  f.net.set_loss_rate(*f.hosts.sw, 0.5);
  int done = 0;
  f.eng.at(0, [&] {
    for (int i = 0; i < 10; ++i) {
      f.client->call(f.hosts.b->ip(), f.write_request(4096),
                     [&](StorageResponse) { ++done; });
    }
  });
  f.eng.run_until(seconds(120));
  EXPECT_EQ(done, 10);
  EXPECT_GT(f.client->timeouts() + f.client->retransmits(), 0u);
}

TEST(Tcp, HangsAcrossSilentBlackholeUntilRepair) {
  // A connection is pinned to its 5-tuple: if the (only) switch silently
  // dies, RPCs hang until the device is repaired — LUNA's failure mode.
  TcpFixture f;
  int done = 0;
  f.eng.at(0, [&] {
    f.client->call(f.hosts.b->ip(), f.write_request(4096),
                   [&](StorageResponse) { ++done; });
  });
  f.eng.at(ms(1), [&] { f.net.fail_device_silent(*f.hosts.sw); });
  f.eng.at(ms(2), [&] {
    f.client->call(f.hosts.b->ip(), f.write_request(4096),
                   [&](StorageResponse) { ++done; });
  });
  f.eng.run_until(seconds(5));
  EXPECT_EQ(done, 1);  // only the pre-failure RPC completed

  // Ops repair the device; backoff eventually retries and drains.
  f.net.repair_device(*f.hosts.sw);
  f.eng.run_until(seconds(90));
  EXPECT_EQ(done, 2);
  EXPECT_GT(f.client->timeouts(), 0u);
}

TEST(Tcp, ThroughputApproachesLineRate) {
  TcpFixture f;
  // Pipeline 64 large writes; 25 Gbps line rate.
  int done = 0;
  constexpr int kRpcs = 64;
  constexpr std::uint32_t kLen = 131072;
  f.eng.at(0, [&] {
    for (int i = 0; i < kRpcs; ++i) {
      f.client->call(f.hosts.b->ip(), f.write_request(kLen),
                     [&](StorageResponse) { ++done; });
    }
  });
  f.eng.run();
  ASSERT_EQ(done, kRpcs);
  const double gbps_achieved =
      throughput_bps(static_cast<std::uint64_t>(kRpcs) * kLen, f.eng.now()) /
      1e9;
  EXPECT_GT(gbps_achieved, 10.0);  // within 2.5x of the 25G line
}

TEST(Tcp, RttEstimatorConverges) {
  TcpFixture f;
  int done = 0;
  std::function<void()> next = [&] {
    f.client->call(f.hosts.b->ip(), f.write_request(4096),
                   [&](StorageResponse) {
                     if (++done < 50) next();
                   });
  };
  f.eng.at(0, next);
  f.eng.run();
  EXPECT_EQ(done, 50);
  EXPECT_EQ(f.client->timeouts(), 0u);  // RTO never fires on a clean path
}

}  // namespace
}  // namespace repro::transport
