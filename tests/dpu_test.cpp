#include <gtest/gtest.h>

#include "common/crc32.h"
#include "dpu/dpu.h"
#include "dpu/resources.h"

namespace repro::dpu {
namespace {

transport::DataBlock make_block(Rng& rng, std::uint32_t len = 4096) {
  transport::DataBlock b;
  b.lba = 4096;
  b.len = len;
  b.data.resize(len);
  for (auto& v : b.data) v = static_cast<std::uint8_t>(rng.next());
  return b;
}

TEST(Fpga, CleanWriteProducesCorrectCrc) {
  FpgaPipeline fpga(FpgaParams{}, Rng(1));
  Rng rng(2);
  auto blk = make_block(rng);
  const auto original = blk.data;
  const TimeNs lat = fpga.process_write_block(7, blk, /*encrypt=*/false);
  EXPECT_GT(lat, 0);
  EXPECT_EQ(blk.data, original);
  EXPECT_EQ(blk.crc, crc32_raw(original));
}

TEST(Fpga, EncryptionAppliedAfterCrc) {
  FpgaPipeline fpga(FpgaParams{}, Rng(1), /*cipher_key=*/0xFEED);
  Rng rng(3);
  auto blk = make_block(rng);
  const auto plain = blk.data;
  fpga.process_write_block(7, blk, /*encrypt=*/true);
  EXPECT_NE(blk.data, plain);                 // ciphertext on the wire
  EXPECT_EQ(blk.crc, crc32_raw(plain));       // CRC covers the plaintext

  // Read path: decrypt-then-check restores plaintext and passes.
  bool hw_ok = false;
  fpga.process_read_block(7, blk, /*decrypt=*/true, hw_ok);
  EXPECT_TRUE(hw_ok);
  EXPECT_EQ(blk.data, plain);
}

TEST(Fpga, CleanReadCheckPasses) {
  FpgaPipeline fpga(FpgaParams{}, Rng(1));
  Rng rng(4);
  auto blk = make_block(rng);
  blk.crc = crc32_raw(blk.data);
  bool hw_ok = false;
  fpga.process_read_block(7, blk, false, hw_ok);
  EXPECT_TRUE(hw_ok);
}

TEST(Fpga, ReadDetectsWireCorruption) {
  FpgaPipeline fpga(FpgaParams{}, Rng(1));
  Rng rng(5);
  auto blk = make_block(rng);
  blk.crc = crc32_raw(blk.data);
  blk.data[100] ^= 0x10;  // corrupted in flight
  bool hw_ok = true;
  fpga.process_read_block(7, blk, false, hw_ok);
  EXPECT_FALSE(hw_ok);
}

TEST(Fpga, CrcEngineFaultBreaksAggregation) {
  FpgaParams params;
  params.faults.crc_engine_error_rate = 1.0;  // always faulty
  FpgaPipeline fpga(params, Rng(1));
  Rng rng(6);
  auto blk = make_block(rng);
  const auto original = blk.data;
  fpga.process_write_block(7, blk, false);
  EXPECT_NE(blk.crc, crc32_raw(original));
  EXPECT_EQ(fpga.stats().crc_engine_errors, 1u);
  // The software aggregation check rejects the hardware CRC.
  EXPECT_FALSE(crc_aggregate_check(
      std::vector<std::vector<std::uint8_t>>{original},
      std::vector<std::uint32_t>{blk.crc}));
}

TEST(Fpga, PreCrcBitflipIsInvisiblePerBlockButCaughtByAggregation) {
  FpgaParams params;
  params.faults.pre_crc_bitflip_rate = 1.0;
  FpgaPipeline fpga(params, Rng(1));
  Rng rng(7);
  auto blk = make_block(rng);
  const auto original = blk.data;
  fpga.process_write_block(7, blk, false);
  // Per-block check against the *corrupted* data passes...
  EXPECT_EQ(blk.crc, crc32_raw(blk.data));
  EXPECT_NE(blk.data, original);
  // ...but against the guest's original data the aggregation fails.
  EXPECT_FALSE(crc_aggregate_check(
      std::vector<std::vector<std::uint8_t>>{original},
      std::vector<std::uint32_t>{blk.crc}));
}

TEST(Fpga, PostCrcBitflipCaughtByReceiverVerify) {
  FpgaParams params;
  params.faults.data_bitflip_rate = 1.0;
  FpgaPipeline fpga(params, Rng(1));
  Rng rng(8);
  auto blk = make_block(rng);
  const auto original = blk.data;
  fpga.process_write_block(7, blk, false);
  EXPECT_EQ(blk.crc, crc32_raw(original));    // CRC is of the clean data
  EXPECT_NE(crc32_raw(blk.data), blk.crc);    // wire data is corrupt
}

TEST(Fpga, FaultRatesAreApproximatelyRespected) {
  FpgaParams params;
  params.faults.data_bitflip_rate = 0.1;
  FpgaPipeline fpga(params, Rng(42));
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    auto blk = make_block(rng, 256);
    fpga.process_write_block(1, blk, false);
  }
  EXPECT_NEAR(static_cast<double>(fpga.stats().data_bitflips), 200.0, 60.0);
}

TEST(Resources, DefaultConfigMatchesPaperTable3) {
  auto usage = solar_resource_usage(SolarHwConfig{});
  ASSERT_EQ(usage.size(), 6u);  // 5 modules + total
  auto find = [&](const std::string& name) -> const ModuleUsage& {
    for (const auto& m : usage) {
      if (m.name == name) return m;
    }
    ADD_FAILURE() << "missing " << name;
    return usage.front();
  };
  // Paper Table 3: Addr 5.1/8.1, Block 0.2/8.6, QoS 0.1/0.4, SEC 2.8/0.9,
  // CRC 0.3/0.0, Total 8.5/18.2 (LUT% / BRAM%).
  EXPECT_NEAR(find("Addr").lut_pct, 5.1, 0.3);
  EXPECT_NEAR(find("Addr").bram_pct, 8.1, 0.3);
  EXPECT_NEAR(find("Block").lut_pct, 0.2, 0.1);
  EXPECT_NEAR(find("Block").bram_pct, 8.6, 0.3);
  EXPECT_NEAR(find("QoS").lut_pct, 0.1, 0.05);
  EXPECT_NEAR(find("QoS").bram_pct, 0.4, 0.15);
  EXPECT_NEAR(find("SEC").lut_pct, 2.8, 0.2);
  EXPECT_NEAR(find("SEC").bram_pct, 0.9, 0.2);
  EXPECT_NEAR(find("CRC").lut_pct, 0.3, 0.1);
  EXPECT_NEAR(find("CRC").bram_pct, 0.0, 0.01);
  EXPECT_NEAR(find("Total").lut_pct, 8.5, 0.5);
  EXPECT_NEAR(find("Total").bram_pct, 18.2, 0.7);
}

TEST(Resources, UsageScalesWithTableSizes) {
  SolarHwConfig small;
  SolarHwConfig big;
  big.addr_entries = small.addr_entries * 4;
  const auto u_small = solar_resource_usage(small);
  const auto u_big = solar_resource_usage(big);
  EXPECT_GT(u_big[0].bram_bits, u_small[0].bram_bits * 3);
  EXPECT_GT(u_big[0].luts, u_small[0].luts * 2);
}

TEST(Dpu, ResourcesAreWiredTogether) {
  sim::Engine eng;
  AliDpu dpu(eng, DpuParams{}, Rng(1));
  EXPECT_EQ(dpu.cpu().size(), 6);
  EXPECT_LT(dpu.internal_pcie().bandwidth(), gbps(50));  // the bottleneck
  EXPECT_GT(dpu.guest_dma().bandwidth(), dpu.internal_pcie().bandwidth());
}

}  // namespace
}  // namespace repro::dpu
