#include <gtest/gtest.h>

#include "workload/fio.h"
#include "workload/size_dist.h"

namespace repro::workload {
namespace {

TEST(SizeDist, WeightsNormalizedAndSamplesValid) {
  auto dist = SizeDist::io_sizes();
  double total = 0;
  for (const auto& p : dist.points()) total += p.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto s = dist.sample(rng);
    bool valid = false;
    for (const auto& p : dist.points()) valid |= (p.bytes == s);
    EXPECT_TRUE(valid);
  }
}

TEST(SizeDist, CdfMatchesPaperShape) {
  auto dist = SizeDist::io_sizes();
  // Fig. 5: ~40% of RPCs are up to 4K; everything <= 128K.
  EXPECT_NEAR(dist.cdf(4096), 0.40, 0.02);
  EXPECT_GE(dist.cdf(16384), 0.65);
  EXPECT_DOUBLE_EQ(dist.cdf(131072), 1.0);
  EXPECT_DOUBLE_EQ(dist.cdf(1024), 0.0);
}

TEST(SizeDist, SampleFrequenciesMatchWeights) {
  auto dist = SizeDist::io_sizes();
  Rng rng(2);
  std::map<std::uint32_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[dist.sample(rng)];
  for (const auto& p : dist.points()) {
    EXPECT_NEAR(static_cast<double>(counts[p.bytes]) / n, p.weight, 0.01)
        << p.bytes;
  }
}

TEST(Diurnal, MultiplierBoundedAndPeaksInEvening) {
  double min_v = 10, max_v = 0;
  int argmax = -1;
  for (int h = 0; h < 24; ++h) {
    const double v = diurnal_multiplier(h);
    EXPECT_GT(v, 0.3);
    EXPECT_LE(v, 1.2);
    if (v > max_v) {
      max_v = v;
      argmax = h;
    }
    min_v = std::min(min_v, v);
  }
  EXPECT_LT(min_v, 0.6);           // overnight trough
  EXPECT_GE(argmax, 18);           // evening peak
  EXPECT_EQ(diurnal_multiplier(-1), diurnal_multiplier(23));
}

TEST(Diurnal, Fig4PeakNear200kIops) {
  Rng rng(3);
  double peak = 0;
  for (int h = 0; h < 24; ++h) {
    for (int rep = 0; rep < 60; ++rep) {
      peak = std::max(peak, fig4_iops(h, rng));
    }
  }
  EXPECT_GT(peak, 180000.0);
  EXPECT_LT(peak, 280000.0);
}

TEST(FioJob, ClosedLoopHoldsIodepth) {
  sim::Engine eng;
  int inflight = 0;
  int max_inflight = 0;
  FioConfig cfg;
  cfg.iodepth = 16;
  cfg.max_ios = 200;
  FioJob job(
      eng,
      [&](transport::IoRequest, transport::IoCompleteFn done) {
        ++inflight;
        max_inflight = std::max(max_inflight, inflight);
        eng.after(us(10), [&, done = std::move(done)] {
          --inflight;
          done(transport::IoResult{.status = transport::StorageStatus::kOk,
                                   .trace = {},
                                   .completed_at = eng.now(),
                                   .read_data = {}});
        });
      },
      cfg, Rng(4));
  eng.at(0, [&] { job.start(); });
  eng.run();
  EXPECT_EQ(job.completed(), 200u);
  EXPECT_EQ(max_inflight, 16);
}

TEST(FioJob, SequentialOffsetsAdvance) {
  sim::Engine eng;
  std::vector<std::uint64_t> offsets;
  FioConfig cfg;
  cfg.iodepth = 1;
  cfg.max_ios = 5;
  cfg.sequential = true;
  cfg.block_size = 4096;
  FioJob job(
      eng,
      [&](transport::IoRequest io, transport::IoCompleteFn done) {
        offsets.push_back(io.offset);
        eng.after(us(1), [&eng, done = std::move(done)] {
          done(transport::IoResult{.status = transport::StorageStatus::kOk,
                                   .trace = {},
                                   .completed_at = eng.now(),
                                   .read_data = {}});
        });
      },
      cfg, Rng(5));
  eng.at(0, [&] { job.start(); });
  eng.run();
  ASSERT_EQ(offsets.size(), 5u);
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], offsets[i - 1] + 4096);
  }
}

TEST(FioJob, ReadFractionRespected) {
  sim::Engine eng;
  int reads = 0, writes = 0;
  FioConfig cfg;
  cfg.iodepth = 4;
  cfg.max_ios = 2000;
  cfg.read_fraction = 0.25;
  FioJob job(
      eng,
      [&](transport::IoRequest io, transport::IoCompleteFn done) {
        (io.op == transport::OpType::kRead ? reads : writes)++;
        eng.after(us(1), [&eng, done = std::move(done)] {
          done(transport::IoResult{.status = transport::StorageStatus::kOk,
                                   .trace = {},
                                   .completed_at = eng.now(),
                                   .read_data = {}});
        });
      },
      cfg, Rng(6));
  eng.at(0, [&] { job.start(); });
  eng.run();
  EXPECT_NEAR(static_cast<double>(reads) / (reads + writes), 0.25, 0.04);
}

TEST(PoissonLoad, ApproximatesTargetRate) {
  sim::Engine eng;
  int count = 0;
  PoissonConfig cfg;
  cfg.iops = 10000;
  PoissonLoad load(
      eng,
      [&](transport::IoRequest, transport::IoCompleteFn done) {
        ++count;
        done(transport::IoResult{.status = transport::StorageStatus::kOk,
                                 .trace = {},
                                 .completed_at = eng.now(),
                                 .read_data = {}});
      },
      cfg, Rng(7));
  eng.at(0, [&] { load.start(); });
  eng.run_until(seconds(1));
  load.stop();
  EXPECT_NEAR(count, 10000, 400);
}

}  // namespace
}  // namespace repro::workload
