// Unit tests for the erasure-coding subsystem: GF(256) codec algebra,
// EcParams JSON round-trips, the SegmentTable's rotated stripe layout, and
// the EcClient/MaintenanceAgent data path on a small live cluster
// (degraded reads, background rebuild, torn-parity repair).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "common/crc32.h"
#include "ebs/cluster.h"
#include "ec/client.h"
#include "ec/codec.h"
#include "ec/params.h"
#include "kernels/kernels.h"
#include "obs/json.h"
#include "obs/json_reader.h"
#include "sa/segment_table.h"

namespace repro::ec {
namespace {

using transport::IoCompleteFn;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return v;
}

// Codec algebra runs under EVERY available kernel dispatch tier, not just
// the default: a tier whose GF multiply-accumulate drifted from the scalar
// reference would corrupt parity silently, so each property is re-proved per
// tier (the tier sweep narrows to the pinned tier under
// REPRO_KERNEL_DISPATCH, keeping forced-scalar CI genuinely scalar).
class EcCodecTiers : public ::testing::TestWithParam<kernels::Tier> {
 protected:
  void SetUp() override {
    entry_ = kernels::active().tier;
    ASSERT_TRUE(kernels::set_tier(GetParam()))
        << kernels::tier_name(GetParam());
  }
  void TearDown() override { kernels::set_tier(entry_); }

 private:
  kernels::Tier entry_ = kernels::Tier::kScalar;
};

INSTANTIATE_TEST_SUITE_P(
    AllTiers, EcCodecTiers, ::testing::ValuesIn(kernels::available_tiers()),
    [](const ::testing::TestParamInfo<kernels::Tier>& info) {
      return std::string(kernels::tier_name(info.param));
    });

TEST_P(EcCodecTiers, GfFieldAlgebra) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(ua, gf_inv(ua)), 1) << a;
    EXPECT_EQ(gf_mul(ua, 1), ua);
    EXPECT_EQ(gf_mul(ua, 0), 0);
  }
  // Distributivity spot-check on a lattice of values.
  for (int a = 0; a < 256; a += 17) {
    for (int b = 0; b < 256; b += 23) {
      for (int c = 0; c < 256; c += 41) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(gf_mul(ua, static_cast<std::uint8_t>(ub ^ uc)),
                  gf_mul(ua, ub) ^ gf_mul(ua, uc));
      }
    }
  }
}

/// Every ≤m-subset of lost fragments must reconstruct from the first k
/// survivors — the "any k of k+m" property the Cauchy matrix guarantees.
void check_all_loss_patterns(int k, int m) {
  const std::size_t n = 64;
  Codec codec(k, m);

  std::vector<std::vector<std::uint8_t>> data;
  for (int p = 0; p < k; ++p) {
    // Mix real and absent (all-zero) data fragments.
    data.push_back(p % 3 == 2 ? std::vector<std::uint8_t>{}
                              : pattern(n, static_cast<std::uint64_t>(p) + 1));
  }
  std::vector<std::vector<std::uint8_t>> frag(static_cast<std::size_t>(k + m));
  for (int p = 0; p < k; ++p) {
    frag[static_cast<std::size_t>(p)] =
        data[static_cast<std::size_t>(p)].empty()
            ? std::vector<std::uint8_t>(n, 0)
            : data[static_cast<std::size_t>(p)];
  }
  for (int q = 0; q < m; ++q) {
    frag[static_cast<std::size_t>(k + q)] = codec.encode_parity(q, data, n);
  }

  const int total = k + m;
  for (std::uint32_t lost_mask = 1; lost_mask < (1u << total); ++lost_mask) {
    if (__builtin_popcount(lost_mask) > m) continue;
    std::vector<std::pair<int, const std::vector<std::uint8_t>*>> sources;
    for (int f = 0; f < total && static_cast<int>(sources.size()) < k; ++f) {
      if ((lost_mask & (1u << f)) == 0) {
        sources.emplace_back(f, &frag[static_cast<std::size_t>(f)]);
      }
    }
    ASSERT_EQ(static_cast<int>(sources.size()), k);
    for (int f = 0; f < total; ++f) {
      if ((lost_mask & (1u << f)) == 0) continue;
      std::vector<std::uint8_t> got;
      ASSERT_TRUE(codec.reconstruct(sources, f, n, &got))
          << "k=" << k << " m=" << m << " mask=" << lost_mask;
      EXPECT_EQ(got, frag[static_cast<std::size_t>(f)])
          << "k=" << k << " m=" << m << " lost=" << f;
    }
  }
}

TEST_P(EcCodecTiers, ReconstructAnyKOfKPlusM) {
  check_all_loss_patterns(2, 1);
  check_all_loss_patterns(4, 2);
  check_all_loss_patterns(3, 3);
}

TEST_P(EcCodecTiers, FusedEncodeMatchesPerRowEncode) {
  const int k = 7;
  const int m = 4;
  const std::size_t n = 4096 + 13;  // vector main loop + scalar tail
  Codec codec(k, m);
  std::vector<std::vector<std::uint8_t>> data;
  for (int p = 0; p < k; ++p) {
    data.push_back(p == 4 ? std::vector<std::uint8_t>{}
                          : pattern(n, static_cast<std::uint64_t>(p) + 3));
  }
  const auto fused = codec.encode_parities(data, n);
  ASSERT_EQ(fused.size(), static_cast<std::size_t>(m));
  for (int q = 0; q < m; ++q) {
    EXPECT_EQ(fused[static_cast<std::size_t>(q)],
              codec.encode_parity(q, data, n))
        << q;
  }
  // Subset rows come back in request order.
  const auto subset = codec.encode_parity_rows({3, 1}, data, n);
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset[0], fused[3]);
  EXPECT_EQ(subset[1], fused[1]);
}

TEST_P(EcCodecTiers, DeltaParityMatchesFullReencode) {
  const int k = 4;
  const int m = 2;
  const std::size_t n = 96;
  Codec codec(k, m);

  std::vector<std::vector<std::uint8_t>> data;
  for (int p = 0; p < k; ++p) {
    data.push_back(pattern(n, static_cast<std::uint64_t>(p) + 10));
  }
  std::vector<std::vector<std::uint8_t>> parity;
  for (int q = 0; q < m; ++q) parity.push_back(codec.encode_parity(q, data, n));

  // Overwrite data fragment 2 and apply the delta path to every parity.
  const std::vector<std::uint8_t> fresh = pattern(n, 77);
  std::vector<std::uint8_t> delta(n);
  for (std::size_t i = 0; i < n; ++i) delta[i] = data[2][i] ^ fresh[i];
  data[2] = fresh;
  for (int q = 0; q < m; ++q) {
    const auto via_delta = codec.update_parity(q, 2, parity[static_cast<std::size_t>(q)], delta, n);
    EXPECT_EQ(via_delta, codec.encode_parity(q, data, n)) << q;
  }
}

TEST(EcParamsJson, RoundTrip) {
  EcParams p;
  p.enabled = true;
  p.k = 6;
  p.m = 3;
  p.rebuild_bandwidth_cap = 8.0 * 1024 * 1024;
  p.probe_interval = ms(7);
  p.probe_timeout = ms(21);
  p.probe_failures_to_dead = 3;
  p.rebuild_concurrency = 4;
  p.repair_retry = ms(12);

  std::ostringstream os;
  obs::JsonWriter w(os);
  write_ec_params(w, p);
  const std::string text = os.str();  // JsonReader keeps a reference
  obs::JsonValue v;
  obs::JsonReader reader(text);
  ASSERT_TRUE(reader.parse(&v)) << reader.error();

  EcParams back;
  ASSERT_TRUE(read_ec_params(v, &back));
  EXPECT_TRUE(back.enabled);
  EXPECT_EQ(back.k, 6);
  EXPECT_EQ(back.m, 3);
  EXPECT_DOUBLE_EQ(back.rebuild_bandwidth_cap, 8.0 * 1024 * 1024);
  EXPECT_EQ(back.probe_interval, ms(7));
  EXPECT_EQ(back.probe_timeout, ms(21));
  EXPECT_EQ(back.probe_failures_to_dead, 3);
  EXPECT_EQ(back.rebuild_concurrency, 4);
  EXPECT_EQ(back.repair_retry, ms(12));
}

TEST(EcParamsJson, RejectsBadGeometry) {
  auto parse = [](const std::string& text) {
    obs::JsonValue v;
    obs::JsonReader reader(text);  // text outlives the reader (by-ref param)
    EXPECT_TRUE(reader.parse(&v));
    EcParams p;
    return read_ec_params(v, &p);
  };
  EXPECT_FALSE(parse(R"({"enabled":true,"k":0,"m":2})"));
  EXPECT_FALSE(parse(R"({"enabled":true,"k":4,"m":0})"));
  EXPECT_FALSE(parse(R"({"enabled":true,"k":120,"m":20})"));
  // k caps at 32 (the client write directory is a 32-bit coverage mask).
  EXPECT_FALSE(parse(R"({"enabled":true,"k":33,"m":2})"));
  EXPECT_TRUE(parse(R"({"enabled":true,"k":32,"m":2})"));
  EXPECT_TRUE(parse(R"({"enabled":true,"k":4,"m":2})"));
}

TEST(EcParamsJson, KeyAllowList) {
  EXPECT_TRUE(ec_params_key_allowed("enabled"));
  EXPECT_TRUE(ec_params_key_allowed("k"));
  EXPECT_TRUE(ec_params_key_allowed("m"));
  EXPECT_TRUE(ec_params_key_allowed("rebuild_bandwidth_cap"));
  EXPECT_TRUE(ec_params_key_allowed("probe_interval_us"));
  EXPECT_FALSE(ec_params_key_allowed("rebuild_bandwith_cap"));  // the typo
  EXPECT_FALSE(ec_params_key_allowed("parity"));
}

TEST(EcLayout, RotatedPlacementCoversDistinctServers) {
  sa::SegmentTable table;
  const int k = 3;
  const int m = 2;
  std::vector<net::IpAddr> servers = {11, 12, 13, 14, 15, 16};
  // 12 MB of data = 6 data segments = 2 stripes.
  table.map_disk_ec(7, 12ull << 20, servers, k, m);

  const auto info = table.ec_info(7);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->k, k);
  EXPECT_EQ(info->m, m);
  EXPECT_EQ(info->num_data_segments, 6u);
  EXPECT_EQ(info->num_stripes, 2u);

  for (std::uint32_t g = 0; g < info->num_stripes; ++g) {
    const auto frags = table.ec_fragments(7, g);
    ASSERT_EQ(frags.size(), static_cast<std::size_t>(k + m));
    std::set<net::IpAddr> distinct;
    for (int c = 0; c < k + m; ++c) {
      const auto& f = frags[static_cast<std::size_t>(c)];
      EXPECT_NE(f.block_server, 0u);
      distinct.insert(f.block_server);
      // Rotated placement: fragment c of stripe g on servers[(g + c) % W].
      EXPECT_EQ(f.block_server,
                servers[(g + static_cast<std::uint32_t>(c)) % servers.size()]);
    }
    EXPECT_EQ(distinct.size(), static_cast<std::size_t>(k + m));
  }

  // Data offsets route to the owning fragment's server; the parity region
  // sits directly after the data region.
  const auto d0 = table.lookup(7, 0);
  ASSERT_TRUE(d0.has_value());
  EXPECT_EQ(d0->block_server, servers[0]);
  const auto p0 =
      table.lookup(7, 6ull * sa::SegmentTable::kSegmentBytes);  // parity q=0
  ASSERT_TRUE(p0.has_value());
  EXPECT_EQ(p0->block_server, servers[k % servers.size()]);

  // A map() override (rebuild remap) shadows the rotated placement.
  sa::SegmentLocation moved;
  moved.segment_id = d0->segment_id;
  moved.block_server = 99;
  table.map(7, 0, moved);
  EXPECT_EQ(table.ec_fragments(7, 0)[0].block_server, 99u);
  EXPECT_EQ(table.lookup(7, 0)->block_server, 99u);
}

// ---------------------------------------------------------------------------
// Live-cluster tests: a small EC fleet driven through the guest path.

ebs::ClusterParams ec_params(int k, int m) {
  ebs::ClusterParams p;
  p.topo.compute_servers = 1;
  p.topo.storage_servers = k + m + 1;  // one spare for rebuild
  p.topo.servers_per_rack = 4;
  p.stack = ebs::StackKind::kSolar;
  p.seed = 7;
  p.block_server.store_payload = true;
  p.ec.enabled = true;
  p.ec.k = k;
  p.ec.m = m;
  return p;
}

IoResult run_one_io(sim::Engine& eng, ebs::Cluster& cluster, IoRequest io) {
  IoResult out;
  bool done = false;
  eng.at(eng.now(), [&] {
    cluster.compute(0).submit_io(std::move(io), [&](IoResult r) {
      out = std::move(r);
      done = true;
    });
  });
  while (!done && eng.step()) {
  }
  EXPECT_TRUE(done);
  return out;
}

IoRequest write_io(std::uint64_t vd, std::uint64_t offset, std::uint32_t len) {
  IoRequest io;
  io.vd_id = vd;
  io.op = OpType::kWrite;
  io.offset = offset;
  io.len = len;
  io.payload = transport::make_placeholder_blocks(offset, len, 4096);
  for (auto& blk : io.payload) {
    blk.data = pattern(blk.len, blk.lba + 1);
    blk.crc = crc32_raw(blk.data);
  }
  return io;
}

IoRequest read_io(std::uint64_t vd, std::uint64_t offset, std::uint32_t len) {
  IoRequest io;
  io.vd_id = vd;
  io.op = OpType::kRead;
  io.offset = offset;
  io.len = len;
  return io;
}

TEST(EcCluster, WriteReadRoundTripUpdatesParity) {
  sim::Engine eng;
  ebs::Cluster cluster(eng, ec_params(3, 2));
  const std::uint64_t vd = cluster.create_vd(64ull << 20);
  ASSERT_NE(cluster.compute(0).ec(), nullptr);
  ASSERT_NE(cluster.compute(0).maintenance(), nullptr);

  auto wres = run_one_io(eng, cluster, write_io(vd, 0, 16384));
  ASSERT_EQ(wres.status, StorageStatus::kOk);
  // 4 cells written, each with a parity RMW against m = 2 parities.
  EXPECT_EQ(cluster.compute(0).ec()->stats().parity_updates, 8u);

  auto rres = run_one_io(eng, cluster, read_io(vd, 0, 16384));
  ASSERT_EQ(rres.status, StorageStatus::kOk);
  ASSERT_EQ(rres.read_data.size(), 4u);
  for (const auto& blk : rres.read_data) {
    EXPECT_EQ(blk.crc, crc32_raw(pattern(blk.len, blk.lba + 1)));
  }
  EXPECT_EQ(cluster.compute(0).ec()->stats().degraded_reads, 0u);
}

TEST(EcCluster, DegradedReadReconstructsFromAnyK) {
  sim::Engine eng;
  ebs::Cluster cluster(eng, ec_params(3, 2));
  const std::uint64_t vd = cluster.create_vd(64ull << 20);

  ASSERT_EQ(run_one_io(eng, cluster, write_io(vd, 0, 12288)).status,
            StorageStatus::kOk);

  // Down every fragment holder in turn (one at a time = 1 <= m losses):
  // the read must reconstruct the lost cell from the surviving k.
  const auto frags = cluster.segments().ec_fragments(vd, 0);
  ec::EcClient* ec = cluster.compute(0).ec();
  for (int c = 0; c < 5; ++c) {
    const net::IpAddr down = frags[static_cast<std::size_t>(c)].block_server;
    ec->mark_server(down, false);
    auto rres = run_one_io(eng, cluster, read_io(vd, 0, 12288));
    EXPECT_EQ(rres.status, StorageStatus::kOk) << "fragment " << c;
    for (const auto& blk : rres.read_data) {
      EXPECT_EQ(blk.crc, crc32_raw(pattern(blk.len, blk.lba + 1)))
          << "fragment " << c;
    }
    ec->mark_server(down, true);
  }
  EXPECT_GT(ec->stats().degraded_reads, 0u);
}

// A failed data write whose delta parity writes land leaves parity encoding
// the new value while the data cell's on-disk state is unknown. The row must
// be marked dirty — so repair recomputes parity from the data fragments and
// degraded reads fail honestly until then — or a later degraded read of a
// *sibling* cell in the row would decode stale-data + new-parity and return
// corrupt bytes as kOk.
TEST(EcClientRmw, FailedDataWriteMarksRowDirty) {
  sim::Engine eng;
  sa::SegmentTable table;
  const std::uint64_t vd = 1;
  const int k = 2;
  const int m = 1;
  std::vector<net::IpAddr> servers = {21, 22, 23};
  table.map_disk_ec(vd, 32ull << 20, servers, k, m);
  const std::uint64_t data_end =
      table.ec_info(vd)->num_data_segments * sa::SegmentTable::kSegmentBytes;

  // Fake inner stack: reads always succeed; writes to the data region can
  // be told to time out while parity writes keep landing.
  bool fail_data_writes = false;
  EcParams params;
  params.enabled = true;
  params.k = k;
  params.m = m;
  EcClient ec(eng, table, params,
              [&eng, &fail_data_writes, data_end](IoRequest io,
                                                  IoCompleteFn done) {
                IoResult res;
                res.status = (io.op == OpType::kWrite && fail_data_writes &&
                              io.offset < data_end)
                                 ? StorageStatus::kTimeout
                                 : StorageStatus::kOk;
                eng.after(0, [done = std::move(done),
                              res = std::move(res)]() mutable {
                  done(std::move(res));
                });
              });

  auto run_write = [&](std::uint64_t off) {
    IoResult out;
    bool finished = false;
    ec.submit_io(write_io(vd, off, 4096), [&](IoResult r) {
      out = std::move(r);
      finished = true;
    });
    while (!finished && eng.step()) {
    }
    EXPECT_TRUE(finished);
    return out;
  };

  // Healthy write: row stays clean.
  EXPECT_EQ(run_write(0).status, StorageStatus::kOk);
  EXPECT_FALSE(ec.row_dirty(vd, 0));

  // Data write fails, parity deltas land: the caller sees the error AND the
  // row is pending repair — including at the sibling data cell's offset
  // (segment 1 shares stripe 0 / row 0 with k = 2).
  fail_data_writes = true;
  EXPECT_EQ(run_write(0).status, StorageStatus::kTimeout);
  EXPECT_TRUE(ec.row_dirty(vd, 0));
  EXPECT_TRUE(ec.row_dirty(vd, sa::SegmentTable::kSegmentBytes));
}

TEST(EcCluster, DegradedReadFailsPastM) {
  sim::Engine eng;
  ebs::Cluster cluster(eng, ec_params(2, 1));
  const std::uint64_t vd = cluster.create_vd(32ull << 20);

  ASSERT_EQ(run_one_io(eng, cluster, write_io(vd, 0, 4096)).status,
            StorageStatus::kOk);

  // m + 1 = 2 fragment losses on stripe 0: the data is gone.
  const auto frags = cluster.segments().ec_fragments(vd, 0);
  ec::EcClient* ec = cluster.compute(0).ec();
  ec->mark_server(frags[0].block_server, false);
  ec->mark_server(frags[2].block_server, false);
  auto rres = run_one_io(eng, cluster, read_io(vd, 0, 4096));
  EXPECT_NE(rres.status, StorageStatus::kOk);
}

TEST(EcCluster, RejectsUnalignedGuestIo) {
  sim::Engine eng;
  ebs::Cluster cluster(eng, ec_params(2, 1));
  const std::uint64_t vd = cluster.create_vd(32ull << 20);

  ASSERT_EQ(run_one_io(eng, cluster, write_io(vd, 0, 4096)).status,
            StorageStatus::kOk);

  // Sub-cell writes would mutate data fragments behind the parity's back,
  // so non-cell-aligned guest I/O on an EC VD is rejected, never silently
  // passed to the inner stack.
  EXPECT_EQ(run_one_io(eng, cluster, write_io(vd, 2048, 4096)).status,
            StorageStatus::kRejected);
  EXPECT_EQ(run_one_io(eng, cluster, write_io(vd, 0, 2048)).status,
            StorageStatus::kRejected);
  EXPECT_EQ(run_one_io(eng, cluster, read_io(vd, 2048, 4096)).status,
            StorageStatus::kRejected);

  // The stripe stayed consistent: the aligned cell still verifies.
  auto rres = run_one_io(eng, cluster, read_io(vd, 0, 4096));
  ASSERT_EQ(rres.status, StorageStatus::kOk);
  for (const auto& blk : rres.read_data) {
    EXPECT_EQ(blk.crc, crc32_raw(pattern(blk.len, blk.lba + 1)));
  }
}

TEST(EcCluster, MaintenanceRebuildsLostFragment) {
  sim::Engine eng;
  ebs::Cluster cluster(eng, ec_params(3, 2));
  const std::uint64_t vd = cluster.create_vd(64ull << 20);

  ASSERT_EQ(run_one_io(eng, cluster, write_io(vd, 0, 16384)).status,
            StorageStatus::kOk);

  const auto before = cluster.segments().ec_fragments(vd, 0);
  const net::IpAddr lost = before[0].block_server;
  ec::MaintenanceAgent* agent = cluster.compute(0).maintenance();
  agent->force_server_down(lost);
  eng.run();  // rebuild traffic drains to quiesce

  EXPECT_GE(agent->stats().segments_rebuilt, 1u);
  EXPECT_GT(agent->stats().cells_rebuilt, 0u);
  EXPECT_EQ(agent->stalled_segments(), 0u);
  EXPECT_TRUE(agent->idle());

  // The fragment moved to a spare and reads go direct again.
  const auto after = cluster.segments().ec_fragments(vd, 0);
  EXPECT_NE(after[0].block_server, lost);
  EXPECT_EQ(cluster.compute(0).ec()->rebuilding_segments(), 0u);

  auto rres = run_one_io(eng, cluster, read_io(vd, 0, 16384));
  ASSERT_EQ(rres.status, StorageStatus::kOk);
  for (const auto& blk : rres.read_data) {
    EXPECT_EQ(blk.crc, crc32_raw(pattern(blk.len, blk.lba + 1)));
  }
}

TEST(EcCluster, RebuildStallsPastMThenRecovers) {
  sim::Engine eng;
  ebs::Cluster cluster(eng, ec_params(2, 1));
  const std::uint64_t vd = cluster.create_vd(32ull << 20);

  // Write both data fragments of stripe 0 (offset 0 → data cell 0,
  // offset 2MB = segment 1 → data cell 1 with k = 2). An unwritten data
  // cell would count as an implicit-zero source and quietly rescue the
  // rebuild; covering both makes the loss genuinely unrecoverable.
  ASSERT_EQ(run_one_io(eng, cluster, write_io(vd, 0, 4096)).status,
            StorageStatus::kOk);
  ASSERT_EQ(
      run_one_io(eng, cluster, write_io(vd, sa::SegmentTable::kSegmentBytes, 4096)).status,
      StorageStatus::kOk);

  const auto frags = cluster.segments().ec_fragments(vd, 0);
  // Really stop the two fragment holders' NICs (not just the agent's
  // belief): otherwise the next health probe succeeds and revives them.
  auto nic_of = [&cluster](net::IpAddr ip) -> net::Nic& {
    for (int i = 0; i < cluster.num_storage(); ++i) {
      if (cluster.storage(i).nic().ip() == ip) return cluster.storage(i).nic();
    }
    ADD_FAILURE() << "no storage node owns ip " << ip;
    return cluster.storage(0).nic();
  };
  net::Nic& nic0 = nic_of(frags[0].block_server);
  net::Nic& nic1 = nic_of(frags[1].block_server);
  cluster.network().fail_device_stop(nic0);
  cluster.network().fail_device_stop(nic1);
  // Mark both dead in the client first so the rebuild the first
  // force_server_down kicks off already excludes the second server from
  // its source set (a read to the stopped NIC would wedge in flight).
  cluster.compute(0).ec()->mark_server(frags[0].block_server, false);
  cluster.compute(0).ec()->mark_server(frags[1].block_server, false);
  ec::MaintenanceAgent* agent = cluster.compute(0).maintenance();
  agent->force_server_down(frags[0].block_server);
  agent->force_server_down(frags[1].block_server);
  // Bounded: a really-stopped NIC keeps SOLAR's path probing alive, so the
  // engine never fully quiesces the way a belief-only failure would.
  eng.run_until(eng.now() + seconds(2));
  // Two of three fragments down with m = 1: reconstruction is impossible
  // and the rebuild parks as stalled instead of spinning.
  EXPECT_GT(agent->stalled_segments(), 0u);
  EXPECT_FALSE(agent->idle());

  // A server comes back: the stalled segments get requeued and drain.
  for (int i = 0; i < nic1.num_ports(); ++i) {
    if (nic1.port(i).connected()) cluster.network().repair_link(nic1, i);
  }
  agent->force_server_up(frags[1].block_server);
  eng.run_until(eng.now() + seconds(2));
  EXPECT_EQ(agent->stalled_segments(), 0u);
  EXPECT_TRUE(agent->idle());
  EXPECT_EQ(run_one_io(eng, cluster, read_io(vd, 0, 4096)).status,
            StorageStatus::kOk);
  EXPECT_EQ(
      run_one_io(eng, cluster, read_io(vd, sa::SegmentTable::kSegmentBytes, 4096)).status,
      StorageStatus::kOk);
}

}  // namespace
}  // namespace repro::ec
