#include "common/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace repro {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return std::vector<std::uint8_t>(s, s + std::strlen(s));
}

std::vector<std::uint8_t> random_block(Rng& rng, std::size_t len) {
  std::vector<std::uint8_t> b(len);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next());
  return b;
}

TEST(Crc32, KnownVectorCheck) {
  // The canonical CRC-32 check value for "123456789".
  EXPECT_EQ(crc32_ieee(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32_ieee({}), 0x00000000u);
  EXPECT_EQ(crc32_raw({}), 0x00000000u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  Rng rng(42);
  const auto data = random_block(rng, 10000);
  std::uint32_t state = 0xFFFFFFFFu;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        1 + rng.next_below(977), data.size() - pos);
    state = crc32_update(state, std::span(data).subspan(pos, chunk));
    pos += chunk;
  }
  EXPECT_EQ(state ^ 0xFFFFFFFFu, crc32_ieee(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  Rng rng(7);
  auto data = random_block(rng, 4096);
  const std::uint32_t good = crc32_ieee(data);
  for (int trial = 0; trial < 64; ++trial) {
    auto corrupted = data;
    const std::size_t byte = rng.next_below(corrupted.size());
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_NE(crc32_ieee(corrupted), good);
  }
}

TEST(Crc32, RawCrcIsLinearOverXor) {
  // crc32_raw(A ^ B) == crc32_raw(A) ^ crc32_raw(B) for equal lengths —
  // the property SOLAR's software aggregation check is built on (§4.5).
  Rng rng(11);
  for (std::size_t len : {1u, 16u, 512u, 4096u}) {
    const auto a = random_block(rng, len);
    const auto b = random_block(rng, len);
    std::vector<std::uint8_t> axb(len);
    for (std::size_t i = 0; i < len; ++i) axb[i] = a[i] ^ b[i];
    EXPECT_EQ(crc32_raw(axb), crc32_raw(a) ^ crc32_raw(b)) << "len=" << len;
  }
}

TEST(Crc32, IeeeCrcIsNotLinearOverXor) {
  // The standard init/xorout variant deliberately breaks linearity; this
  // guards against accidentally using crc32_ieee in the aggregation check.
  Rng rng(13);
  const auto a = random_block(rng, 256);
  const auto b = random_block(rng, 256);
  std::vector<std::uint8_t> axb(256);
  for (std::size_t i = 0; i < 256; ++i) axb[i] = a[i] ^ b[i];
  EXPECT_NE(crc32_ieee(axb), crc32_ieee(a) ^ crc32_ieee(b));
}

TEST(Crc32, CombineMatchesConcatenation) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_block(rng, 1 + rng.next_below(3000));
    const auto b = random_block(rng, 1 + rng.next_below(3000));
    std::vector<std::uint8_t> ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(crc32_combine(crc32_ieee(a), crc32_ieee(b), b.size()),
              crc32_ieee(ab));
  }
}

TEST(Crc32, CombineWithEmptyTail) {
  const auto a = bytes_of("segment-payload");
  EXPECT_EQ(crc32_combine(crc32_ieee(a), crc32_ieee({}), 0), crc32_ieee(a));
}

TEST(Crc32, CombineZeroOperatorComposesAtHighLengths) {
  // combine(crc, 0, len) applies the "advance past len zero bytes" operator,
  // which must compose: zeros(l1 + l2) == zeros(l2) ∘ zeros(l1). Huge
  // lengths exercise every precomputed per-bit operator table up to bit 63 —
  // a regression net for the one-time table build replacing the old
  // per-call squaring chain.
  Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint32_t crc = static_cast<std::uint32_t>(rng.next());
    const std::uint64_t l1 = rng.next() >> (1 + trial % 3);  // sum can't wrap
    const std::uint64_t l2 = rng.next() >> (3 - trial % 3);
    const std::uint32_t once = crc32_combine(crc, 0, l1 + l2);
    const std::uint32_t twice =
        crc32_combine(crc32_combine(crc, 0, l1), 0, l2);
    EXPECT_EQ(once, twice) << "l1=" << l1 << " l2=" << l2;
  }
}

TEST(CrcAggregate, AcceptsCorrectBlockCrcs) {
  Rng rng(23);
  std::vector<std::vector<std::uint8_t>> blocks;
  std::vector<std::uint32_t> crcs;
  for (int i = 0; i < 32; ++i) {
    blocks.push_back(random_block(rng, 4096));
    crcs.push_back(crc32_raw(blocks.back()));
  }
  EXPECT_TRUE(crc_aggregate_check(blocks, crcs));
}

TEST(CrcAggregate, EmptyAggregateIsVacuouslyTrue) {
  EXPECT_TRUE(crc_aggregate_check({}, {}));
}

TEST(CrcAggregate, RejectsCorruptedData) {
  // Hardware flipped a data bit *after* computing the (correct) CRC.
  Rng rng(29);
  std::vector<std::vector<std::uint8_t>> blocks;
  std::vector<std::uint32_t> crcs;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(random_block(rng, 4096));
    crcs.push_back(crc32_raw(blocks.back()));
  }
  blocks[3][100] ^= 0x40;
  EXPECT_FALSE(crc_aggregate_check(blocks, crcs));
}

TEST(CrcAggregate, RejectsCorruptedCrc) {
  // Hardware computed a wrong CRC (bit flip in the CRC engine itself).
  Rng rng(31);
  std::vector<std::vector<std::uint8_t>> blocks;
  std::vector<std::uint32_t> crcs;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(random_block(rng, 1024));
    crcs.push_back(crc32_raw(blocks.back()));
  }
  crcs[5] ^= 0x00010000u;
  EXPECT_FALSE(crc_aggregate_check(blocks, crcs));
}

TEST(CrcAggregate, RejectsMismatchedArity) {
  std::vector<std::vector<std::uint8_t>> blocks{{1, 2, 3}};
  std::vector<std::uint32_t> crcs;
  EXPECT_FALSE(crc_aggregate_check(blocks, crcs));
}

TEST(CrcAggregate, RejectsMixedBlockLengths) {
  std::vector<std::vector<std::uint8_t>> blocks{{1, 2, 3}, {1, 2}};
  std::vector<std::uint32_t> crcs{crc32_raw(blocks[0]), crc32_raw(blocks[1])};
  EXPECT_FALSE(crc_aggregate_check(blocks, crcs));
}

// Property sweep: a single bit flip anywhere in an aggregate of N blocks is
// always detected, for various N and block sizes.
class CrcAggregateProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrcAggregateProperty, SingleFlipAlwaysDetected) {
  const auto [num_blocks, block_len] = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(num_blocks) * 31 +
          static_cast<std::uint64_t>(block_len));
  std::vector<std::vector<std::uint8_t>> blocks;
  std::vector<std::uint32_t> crcs;
  for (int i = 0; i < num_blocks; ++i) {
    blocks.push_back(random_block(rng, static_cast<std::size_t>(block_len)));
    crcs.push_back(crc32_raw(blocks.back()));
  }
  ASSERT_TRUE(crc_aggregate_check(blocks, crcs));
  for (int trial = 0; trial < 16; ++trial) {
    auto blocks2 = blocks;
    const std::size_t victim = rng.next_below(blocks2.size());
    const std::size_t byte = rng.next_below(blocks2[victim].size());
    blocks2[victim][byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_FALSE(crc_aggregate_check(blocks2, crcs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrcAggregateProperty,
    ::testing::Combine(::testing::Values(1, 2, 7, 64, 512),
                       ::testing::Values(64, 512, 4096)));

}  // namespace
}  // namespace repro
