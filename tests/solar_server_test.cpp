// Unit tests for the SOLAR server's per-packet, no-reassembly semantics:
// out-of-order application, duplicate suppression, lost-response replay,
// and the bounded per-RPC state with garbage collection (§4.4's "few
// maintained states").
#include "solar/server.h"

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "net/topology.h"
#include "solar/client.h"

namespace repro::solar {
namespace {

using proto::RpcMsgType;
using transport::DataBlock;

struct ServerRig {
  sim::Engine eng;
  net::Network net{eng, net::NetworkParams{}, 5};
  net::TwoHosts hosts = net::build_two_hosts(net, gbps(25), us(1));
  sim::CpuPool cpu{eng, "s", 4, sim::CpuPool::Dispatch::kByHash};
  storage::BlockServerParams bs_params;
  std::unique_ptr<storage::BlockServer> bs;
  std::unique_ptr<SolarServer> server;
  std::vector<Frame> client_rx;  // everything the "client" host receives

  ServerRig() {
    bs_params.store_payload = true;
    bs = std::make_unique<storage::BlockServer>(eng, bs_params, Rng(1));
    server = std::make_unique<SolarServer>(eng, *hosts.b, cpu, *bs,
                                           SolarServerParams{}, Rng(2));
    hosts.a->set_deliver([this](net::Packet& pkt) {
      if (auto f = net::app_as<Frame>(pkt)) client_rx.push_back(*f);
    });
  }

  Frame write_frame(std::uint64_t rpc_id, std::uint16_t pkt_id,
                    std::uint16_t pkt_count, std::uint64_t seg = 1) {
    Frame f;
    f.rpc.rpc_id = rpc_id;
    f.rpc.pkt_id = pkt_id;
    f.rpc.pkt_count = pkt_count;
    f.rpc.msg_type = RpcMsgType::kWriteRequest;
    f.rpc.path_id = 40000;
    f.ebs.segment_id = seg;
    f.ebs.lba = static_cast<std::uint64_t>(pkt_id) * 4096;
    f.ebs.block_len = 4096;
    f.block.lba = f.ebs.lba;
    f.block.len = 4096;
    f.block.data.assign(4096, static_cast<std::uint8_t>(pkt_id + 1));
    f.ebs.payload_crc = crc32_raw(f.block.data);
    f.block.crc = f.ebs.payload_crc;
    f.ts = eng.now();
    return f;
  }

  void send(Frame f) {
    net::Packet pkt;
    pkt.flow = net::FlowKey{hosts.a->ip(), hosts.b->ip(), 40000,
                            SolarClient::kServerPort, net::Proto::kUdp};
    pkt.size_bytes = frame_wire_bytes(f);
    net::emplace_app<Frame>(pkt, std::move(f));
    hosts.a->send_packet(std::move(pkt));
  }

  int count(RpcMsgType type) const {
    int n = 0;
    for (const auto& f : client_rx) n += (f.rpc.msg_type == type);
    return n;
  }
};

TEST(SolarServer, AcksEveryDataPacketImmediately) {
  ServerRig rig;
  rig.eng.at(0, [&] {
    rig.send(rig.write_frame(100, 0, 2));
    rig.send(rig.write_frame(100, 1, 2));
  });
  rig.eng.run();
  EXPECT_EQ(rig.count(RpcMsgType::kAck), 2);
  EXPECT_EQ(rig.count(RpcMsgType::kWriteResponse), 1);
}

TEST(SolarServer, AcceptsBlocksInAnyOrder) {
  // One-block-one-packet: arrival order is irrelevant (§4.4).
  ServerRig rig;
  rig.eng.at(0, [&] {
    rig.send(rig.write_frame(200, 3, 4));
    rig.send(rig.write_frame(200, 0, 4));
    rig.send(rig.write_frame(200, 2, 4));
    rig.send(rig.write_frame(200, 1, 4));
  });
  rig.eng.run();
  EXPECT_EQ(rig.count(RpcMsgType::kWriteResponse), 1);
  // All four blocks persisted at their own offsets.
  for (std::uint64_t off : {0u, 4096u, 8192u, 12288u}) {
    EXPECT_TRUE(rig.bs->store().get(1, off).has_value()) << off;
  }
}

TEST(SolarServer, DuplicateBlockOfInFlightRpcIgnored) {
  ServerRig rig;
  rig.eng.at(0, [&] {
    rig.send(rig.write_frame(300, 0, 2));
    rig.send(rig.write_frame(300, 0, 2));  // retransmit of the same block
    rig.send(rig.write_frame(300, 1, 2));
  });
  rig.eng.run();
  EXPECT_EQ(rig.count(RpcMsgType::kWriteResponse), 1);
  EXPECT_GE(rig.server->duplicate_blocks(), 1u);
  auto blk = rig.bs->store().get(1, 0);
  ASSERT_TRUE(blk.has_value());
  EXPECT_EQ(blk->version, 1u);  // stored exactly once
}

TEST(SolarServer, DuplicateAfterCompletionResendsResponse) {
  // Lost-response recovery: the client's poke (a dup block) must trigger a
  // response resend, not a re-write.
  ServerRig rig;
  rig.eng.at(0, [&] { rig.send(rig.write_frame(400, 0, 1)); });
  rig.eng.run();
  ASSERT_EQ(rig.count(RpcMsgType::kWriteResponse), 1);

  rig.eng.at(rig.eng.now(), [&] { rig.send(rig.write_frame(400, 0, 1)); });
  rig.eng.run();
  EXPECT_EQ(rig.count(RpcMsgType::kWriteResponse), 2);
  EXPECT_EQ(rig.bs->store().get(1, 0)->version, 1u);
}

TEST(SolarServer, CorruptBlockRejectedWithCrcStatus) {
  ServerRig rig;
  rig.eng.at(0, [&] {
    auto f = rig.write_frame(500, 0, 1);
    f.block.data[7] ^= 0x80;  // corrupt after CRC
    rig.send(std::move(f));
  });
  rig.eng.run();
  ASSERT_EQ(rig.count(RpcMsgType::kWriteResponse), 1);
  for (const auto& f : rig.client_rx) {
    if (f.rpc.msg_type == RpcMsgType::kWriteResponse) {
      EXPECT_EQ(f.status, transport::StorageStatus::kCrcMismatch);
    }
  }
  EXPECT_EQ(rig.server->crc_rejects(), 1u);
}

TEST(SolarServer, ReadRequestAckedThenAnswered) {
  ServerRig rig;
  rig.eng.at(0, [&] { rig.send(rig.write_frame(600, 0, 1)); });
  rig.eng.run();
  rig.client_rx.clear();

  rig.eng.at(rig.eng.now(), [&] {
    Frame req;
    req.rpc.rpc_id = 601;
    req.rpc.pkt_id = 0;
    req.rpc.pkt_count = 1;
    req.rpc.msg_type = RpcMsgType::kReadRequest;
    req.ebs.segment_id = 1;
    req.ebs.lba = 0;
    req.ebs.block_len = 4096;
    req.ts = rig.eng.now();
    rig.send(std::move(req));
  });
  rig.eng.run();
  EXPECT_EQ(rig.count(RpcMsgType::kAck), 1);
  ASSERT_EQ(rig.count(RpcMsgType::kReadResponse), 1);
  for (const auto& f : rig.client_rx) {
    if (f.rpc.msg_type == RpcMsgType::kReadResponse) {
      EXPECT_EQ(f.block.data,
                std::vector<std::uint8_t>(4096, 1));  // pkt_id 0 + 1
      EXPECT_GT(f.server_ssd, 0);
      EXPECT_GT(f.server_bn, 0);
    }
  }
}

TEST(SolarServer, AckEchoesTimestampAndInt) {
  ServerRig rig;
  rig.eng.at(us(5), [&] {
    auto f = rig.write_frame(700, 0, 1);
    f.ts = us(5);
    net::Packet pkt;
    pkt.flow = net::FlowKey{rig.hosts.a->ip(), rig.hosts.b->ip(), 40000,
                            SolarClient::kServerPort, net::Proto::kUdp};
    pkt.size_bytes = frame_wire_bytes(f);
    pkt.request_int = true;
    net::emplace_app<Frame>(pkt, std::move(f));
    rig.hosts.a->send_packet(std::move(pkt));
  });
  rig.eng.run();
  ASSERT_GE(rig.client_rx.size(), 1u);
  const Frame& ack = rig.client_rx.front();
  EXPECT_EQ(ack.rpc.msg_type, RpcMsgType::kAck);
  EXPECT_EQ(ack.echo_ts, us(5));
  EXPECT_EQ(ack.int_echo.size(), 1u);  // one switch hop collected INT
}

TEST(SolarServer, CompletedRpcStateIsGarbageCollected) {
  ServerRig rig;
  // Complete many RPCs, then advance time and trigger GC via a new packet.
  rig.eng.at(0, [&] {
    for (std::uint64_t r = 0; r < 50; ++r) {
      auto f = rig.write_frame(1000 + r, 0, 1);
      f.ebs.lba = r * 4096;
      f.block.lba = f.ebs.lba;
      rig.send(std::move(f));
    }
  });
  rig.eng.run();
  rig.eng.at(rig.eng.now() + ms(500), [&] {  // well past rpc_state_gc
    rig.send(rig.write_frame(2000, 0, 1));
  });
  rig.eng.run();
  // Only the newest RPC's record may remain.
  EXPECT_LE(rig.server->packets_rx(), 60u);
  // (GC is internal; observable effect: a dup of an old RPC is treated as
  // new work rather than a response replay.)
  rig.client_rx.clear();
  rig.eng.at(rig.eng.now(), [&] { rig.send(rig.write_frame(1000, 0, 1)); });
  rig.eng.run();
  EXPECT_EQ(rig.count(RpcMsgType::kAck), 1);
}

}  // namespace
}  // namespace repro::solar
