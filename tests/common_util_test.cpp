#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/token_bucket.h"
#include "common/units.h"

namespace repro {
namespace {

TEST(Units, Conversions) {
  EXPECT_EQ(us(1), 1000);
  EXPECT_EQ(ms(2), 2'000'000);
  EXPECT_EQ(seconds(3), 3'000'000'000LL);
  EXPECT_DOUBLE_EQ(to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
  EXPECT_EQ(kib(4), 4096u);
  EXPECT_EQ(mib(2), 2u * 1024 * 1024);
}

TEST(Units, SerializationDelay) {
  // 1500 bytes at 1 Gbps = 12 us.
  EXPECT_EQ(serialization_delay(1500, gbps(1)), 12'000);
  // 4KB jumbo at 25 Gbps ~= 1.31 us.
  const TimeNs d = serialization_delay(4096, gbps(25));
  EXPECT_NEAR(static_cast<double>(d), 1310.7, 2.0);
  EXPECT_EQ(serialization_delay(1000, 0.0), 0);
}

TEST(Units, ThroughputInverse) {
  const std::uint64_t bytes = 123456;
  const TimeNs t = serialization_delay(bytes, gbps(10));
  EXPECT_NEAR(throughput_bps(bytes, t), 10e9, 1e7);
  EXPECT_EQ(throughput_bps(100, 0), 0.0);
}

TEST(Rng, Determinism) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowIsInRangeAndCoversAll) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(5, 4), 5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(11);
  SampleSet s;
  for (int i = 0; i < 100000; ++i) s.record(rng.lognormal_median(80.0, 0.5));
  EXPECT_NEAR(s.percentile(0.5), 80.0, 2.5);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng base(77);
  Rng c1 = base.fork(1);
  Rng c2 = base.fork(2);
  Rng c1_again = base.fork(1);
  EXPECT_EQ(c1.next(), c1_again.next());
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (c1.next() == c2.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(12);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 12345);
  EXPECT_EQ(h.max(), 12345);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 12345.0, 12345.0 * 0.04);
}

TEST(Histogram, SmallExactValues) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(i);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 9);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_LE(h.percentile(0.1), 1);
  EXPECT_GE(h.percentile(0.99), 8);
}

TEST(Histogram, PercentileRelativeError) {
  Rng rng(13);
  Histogram h;
  SampleSet exact;
  for (int i = 0; i < 50000; ++i) {
    const auto v =
        static_cast<std::int64_t>(rng.lognormal_median(100000.0, 0.8));
    h.record(v);
    exact.record(static_cast<double>(v));
  }
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double approx = static_cast<double>(h.percentile(q));
    const double truth = exact.percentile(q);
    EXPECT_NEAR(approx, truth, truth * 0.05) << "q=" << q;
  }
}

TEST(Histogram, NegativeClampedToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Rng rng(14);
  Histogram a, b, combined;
  for (int i = 0; i < 3000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(1'000'000));
    combined.record(v);
    (i % 2 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.percentile(0.5), combined.percentile(0.5));
  EXPECT_EQ(a.percentile(0.99), combined.percentile(0.99));
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(10);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.record(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleSet, StddevOfConstantIsZero) {
  SampleSet s;
  s.record(4.0);
  s.record(4.0);
  s.record(4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(TokenBucket, StartsFullAndConsumes) {
  TokenBucket tb(100.0, 10.0);
  EXPECT_TRUE(tb.try_consume(0, 10.0));
  EXPECT_FALSE(tb.try_consume(0, 1.0));
}

TEST(TokenBucket, RefillsOverTime) {
  TokenBucket tb(1000.0, 10.0);  // 1000 tokens/sec
  ASSERT_TRUE(tb.try_consume(0, 10.0));
  EXPECT_FALSE(tb.try_consume(ms(1), 2.0));   // only ~1 token back
  EXPECT_TRUE(tb.try_consume(ms(5), 4.0));    // ~5 tokens back
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket tb(1'000'000.0, 5.0);
  EXPECT_TRUE(tb.try_consume(seconds(100), 5.0));
  EXPECT_FALSE(tb.try_consume(seconds(100), 1.0));
}

TEST(TokenBucket, NextAvailablePredictsAdmission) {
  TokenBucket tb(100.0, 1.0);
  ASSERT_TRUE(tb.try_consume(0, 1.0));
  const TimeNs when = tb.next_available(0, 1.0);
  EXPECT_GT(when, 0);
  EXPECT_FALSE(tb.try_consume(when - us(100), 1.0));
  EXPECT_TRUE(tb.try_consume(when, 1.0));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"stack", "latency_us"});
  t.add_row({"kernel", TextTable::num(70.1)});
  t.add_row({"luna", TextTable::num(13.1)});
  const std::string out = t.render();
  EXPECT_NE(out.find("stack"), std::string::npos);
  EXPECT_NE(out.find("70.1"), std::string::npos);
  EXPECT_NE(out.find("luna"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

}  // namespace
}  // namespace repro
