#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "dpu/fpga.h"
#include "p4/pipeline.h"
#include "p4/solar_program.h"
#include "proto/headers.h"
#include "sa/segment_table.h"

namespace repro::p4 {
namespace {

TEST(Parser, ExtractsLittleEndianFields) {
  Parser p;
  p.field("a", 2).field("b", 4);
  PacketCtx ctx;
  ctx.bytes = {0x01, 0x02, 0xAA, 0xBB, 0xCC, 0xDD};
  ASSERT_TRUE(p.parse(ctx));
  EXPECT_EQ(ctx.field("a"), 0x0201u);
  EXPECT_EQ(ctx.field("b"), 0xDDCCBBAAu);
}

TEST(Parser, UnderflowDrops) {
  Parser p;
  p.field("a", 8);
  PacketCtx ctx;
  ctx.bytes = {1, 2, 3};
  EXPECT_FALSE(p.parse(ctx));
  EXPECT_TRUE(ctx.dropped);
  EXPECT_EQ(ctx.drop_reason, "parser_underflow:a");
}

TEST(Parser, TrailingBytesWithoutPayloadDrops) {
  Parser p;
  p.field("a", 1);
  PacketCtx ctx;
  ctx.bytes = {1, 2};
  EXPECT_FALSE(p.parse(ctx));
  EXPECT_EQ(ctx.drop_reason, "trailing_bytes");
}

TEST(Parser, PayloadLengthFieldEnforced) {
  Parser p;
  p.field("len", 2).payload_rest("len");
  PacketCtx ok;
  ok.bytes = {3, 0, 9, 9, 9};
  EXPECT_TRUE(p.parse(ok));
  EXPECT_EQ(ok.payload.size(), 3u);

  PacketCtx bad;
  bad.bytes = {4, 0, 9, 9, 9};
  EXPECT_FALSE(p.parse(bad));
  EXPECT_EQ(bad.drop_reason, "payload_length_mismatch");
}

TEST(Table, ExactMatchAndDefault) {
  Table t("t", {"k1", "k2"});
  t.add_entry({1, 2}, "hit", {42});
  PacketCtx ctx;
  ctx.fields["k1"] = 1;
  ctx.fields["k2"] = 2;
  const auto* e = t.lookup(ctx);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, "hit");
  EXPECT_EQ(e->args[0], 42u);

  ctx.fields["k2"] = 3;
  EXPECT_EQ(t.lookup(ctx), nullptr);
  t.set_default("miss");
  ASSERT_NE(t.lookup(ctx), nullptr);
  EXPECT_EQ(t.lookup(ctx)->action, "miss");
}

TEST(Pipeline, TableMissDropsWithReason) {
  Pipeline pipe("p");
  Parser parser;
  parser.field("x", 1);
  pipe.set_parser(parser);
  pipe.add_table("only", {"x"});
  PacketCtx ctx;
  ctx.bytes = {7};
  EXPECT_FALSE(pipe.process(ctx));
  EXPECT_EQ(ctx.drop_reason, "table_miss:only");
}

// ---- SOLAR READ RX program -----------------------------------------------

std::vector<std::uint8_t> make_read_response(Rng& rng, std::uint64_t rpc_id,
                                             std::uint16_t pkt_id,
                                             std::vector<std::uint8_t>* out_payload
                                             = nullptr) {
  std::vector<std::uint8_t> payload(proto::kBlockSize);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  proto::RpcHeader rpc;
  rpc.rpc_id = rpc_id;
  rpc.pkt_id = pkt_id;
  rpc.pkt_count = 4;
  rpc.msg_type = proto::RpcMsgType::kReadResponse;
  proto::EbsHeader ebs;
  ebs.vd_id = 7;
  ebs.segment_id = 3;
  ebs.lba = pkt_id * 4096ull;
  ebs.block_len = proto::kBlockSize;
  ebs.payload_crc = crc32_raw(payload);
  ebs.op = proto::EbsOp::kRead;
  if (out_payload) *out_payload = payload;
  return encode_solar_packet(rpc, ebs, payload);
}

TEST(SolarReadRx, AcceptsValidResponseAndResolvesDma) {
  auto pipe = make_read_rx_pipeline(SolarProgramConfig{});
  pipe.table("addr")->add_entry({1001, 2}, "dma", {0xDEAD0000ull});
  Rng rng(1);
  std::vector<std::uint8_t> payload;
  PacketCtx ctx;
  ctx.bytes = make_read_response(rng, 1001, 2, &payload);
  ASSERT_TRUE(pipe.process(ctx));
  EXPECT_EQ(ctx.verdict, "to_dma");
  EXPECT_EQ(ctx.field("dma_addr"), 0xDEAD0000ull);
  EXPECT_EQ(ctx.payload, payload);
}

TEST(SolarReadRx, UnknownRpcDropsAtAddrTable) {
  auto pipe = make_read_rx_pipeline(SolarProgramConfig{});
  Rng rng(2);
  PacketCtx ctx;
  ctx.bytes = make_read_response(rng, 555, 0);
  EXPECT_FALSE(pipe.process(ctx));
  EXPECT_EQ(ctx.drop_reason, "table_miss:addr");
}

TEST(SolarReadRx, CorruptPayloadDropsAtCrc) {
  auto pipe = make_read_rx_pipeline(SolarProgramConfig{});
  pipe.table("addr")->add_entry({1, 0}, "dma", {0x1000});
  Rng rng(3);
  PacketCtx ctx;
  ctx.bytes = make_read_response(rng, 1, 0);
  ctx.bytes[ctx.bytes.size() - 7] ^= 0x20;  // flip a payload bit
  EXPECT_FALSE(pipe.process(ctx));
  EXPECT_EQ(ctx.drop_reason, "crc_mismatch");
}

TEST(SolarReadRx, NonDataPacketsMissTheKindTable) {
  auto pipe = make_read_rx_pipeline(SolarProgramConfig{});
  proto::RpcHeader rpc;
  rpc.msg_type = proto::RpcMsgType::kAck;
  proto::EbsHeader ebs;
  ebs.block_len = 0;
  PacketCtx ctx;
  ctx.bytes = encode_solar_packet(rpc, ebs, {});
  EXPECT_FALSE(pipe.process(ctx));
  EXPECT_EQ(ctx.drop_reason, "table_miss:msg_kind");
}

TEST(SolarReadRx, EncryptedProgramDecryptsBeforeCheck) {
  SolarProgramConfig cfg;
  cfg.encrypt = true;
  auto pipe = make_read_rx_pipeline(cfg);
  pipe.table("addr")->add_entry({9, 0}, "dma", {0x2000});

  // Build a response whose payload is ciphertext and whose CRC covers the
  // plaintext (Figure 12 stage order).
  Rng rng(4);
  std::vector<std::uint8_t> plain(proto::kBlockSize);
  for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next());
  auto cipherdata = plain;
  sa::BlockCipher cipher(cfg.cipher_key);
  cipher.apply(7, 0, cipherdata);

  proto::RpcHeader rpc;
  rpc.rpc_id = 9;
  rpc.pkt_id = 0;
  rpc.msg_type = proto::RpcMsgType::kReadResponse;
  proto::EbsHeader ebs;
  ebs.vd_id = 7;
  ebs.lba = 0;
  ebs.block_len = proto::kBlockSize;
  ebs.payload_crc = crc32_raw(plain);
  ebs.op = proto::EbsOp::kRead;

  PacketCtx ctx;
  ctx.bytes = encode_solar_packet(rpc, ebs, cipherdata);
  ASSERT_TRUE(pipe.process(ctx));
  EXPECT_EQ(ctx.payload, plain);
}

// Equivalence: the P4 READ RX program and the FPGA model must agree on
// accept/reject for the same wire bytes (clean + corrupted).
TEST(SolarReadRx, EquivalentToFpgaModel) {
  auto pipe = make_read_rx_pipeline(SolarProgramConfig{});
  dpu::FpgaPipeline fpga(dpu::FpgaParams{}, Rng(10));
  Rng rng(5);
  int accepts = 0, rejects = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t rpc_id = 100 + trial;
    pipe.table("addr")->add_entry({rpc_id, 0}, "dma", {0x4000});
    std::vector<std::uint8_t> payload;
    auto bytes = make_read_response(rng, rpc_id, 0, &payload);
    const bool corrupt = rng.bernoulli(0.5);
    if (corrupt) {
      bytes[bytes.size() - 1 - rng.next_below(proto::kBlockSize)] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    // P4 path.
    PacketCtx ctx;
    ctx.bytes = bytes;
    const bool p4_ok = pipe.process(ctx);
    // FPGA model path on the parsed frame.
    auto parsed = proto::parse_solar_packet(bytes);
    ASSERT_TRUE(parsed.has_value());
    transport::DataBlock blk;
    blk.lba = parsed->ebs.lba;
    blk.len = parsed->ebs.block_len;
    blk.data = parsed->payload;
    blk.crc = parsed->ebs.payload_crc;
    bool hw_ok = false;
    fpga.process_read_block(parsed->ebs.vd_id, blk, false, hw_ok);
    EXPECT_EQ(p4_ok, hw_ok) << "trial " << trial;
    (p4_ok ? accepts : rejects)++;
  }
  EXPECT_GT(accepts, 50);
  EXPECT_GT(rejects, 50);
}

// ---- SOLAR WRITE TX program ----------------------------------------------

TEST(SolarWriteTx, RoutesAndCrcs) {
  auto pipe = make_write_tx_pipeline(SolarProgramConfig{});
  pipe.table("qos")->add_entry({7}, "qos_pass");
  pipe.table("block")->add_entry({7, 3}, "route", {1234, 42});

  Rng rng(6);
  PacketCtx ctx;
  ctx.fields["nvme.vd"] = 7;
  ctx.fields["nvme.lba"] = 3ull * sa::SegmentTable::kSegmentBytes + 8192;
  ctx.fields["nvme.segment_index"] = 3;
  ctx.payload.resize(4096);
  for (auto& b : ctx.payload) b = static_cast<std::uint8_t>(rng.next());
  const auto plain = ctx.payload;

  ASSERT_TRUE(pipe.process(ctx));
  EXPECT_EQ(ctx.verdict, "to_wire");
  EXPECT_EQ(ctx.field("route.segment_id"), 1234u);
  EXPECT_EQ(ctx.field("route.server"), 42u);
  EXPECT_EQ(ctx.field("ebs.payload_crc"), crc32_raw(plain));
}

TEST(SolarWriteTx, QosDropRejects) {
  auto pipe = make_write_tx_pipeline(SolarProgramConfig{});
  pipe.table("qos")->add_entry({7}, "qos_drop");
  pipe.table("block")->set_default("route", {0, 0});
  PacketCtx ctx;
  ctx.fields["nvme.vd"] = 7;
  ctx.payload.resize(64);
  EXPECT_FALSE(pipe.process(ctx));
  EXPECT_EQ(ctx.drop_reason, "qos_reject");
}

TEST(SolarWriteTx, UnknownVdMissesQosTable) {
  auto pipe = make_write_tx_pipeline(SolarProgramConfig{});
  PacketCtx ctx;
  ctx.fields["nvme.vd"] = 12345;
  EXPECT_FALSE(pipe.process(ctx));
  EXPECT_EQ(ctx.drop_reason, "table_miss:qos");
}

TEST(SolarWriteTx, EncryptionMatchesFpgaModel) {
  SolarProgramConfig cfg;
  cfg.encrypt = true;
  auto pipe = make_write_tx_pipeline(cfg);
  pipe.table("qos")->add_entry({7}, "qos_pass");
  pipe.table("block")->add_entry({7, 0}, "route", {1, 1});

  Rng rng(7);
  PacketCtx ctx;
  ctx.fields["nvme.vd"] = 7;
  ctx.fields["nvme.lba"] = 8192;
  ctx.fields["nvme.segment_index"] = 0;
  ctx.payload.resize(4096);
  for (auto& b : ctx.payload) b = static_cast<std::uint8_t>(rng.next());
  const auto plain = ctx.payload;
  ASSERT_TRUE(pipe.process(ctx));

  // The FPGA model on the same block must produce identical ciphertext
  // and identical CRC.
  dpu::FpgaPipeline fpga(dpu::FpgaParams{}, Rng(11), cfg.cipher_key);
  transport::DataBlock blk;
  blk.lba = 8192;
  blk.len = 4096;
  blk.data = plain;
  fpga.process_write_block(7, blk, /*encrypt=*/true);
  EXPECT_EQ(ctx.payload, blk.data);
  EXPECT_EQ(ctx.field("ebs.payload_crc"), blk.crc);
}

}  // namespace
}  // namespace repro::p4
