// Cross-module integration tests: full clusters under combined stress —
// loss + load, failover mid-burst, mixed read/write with real payloads,
// determinism of whole runs.
#include <gtest/gtest.h>

#include "ebs/cluster.h"
#include "workload/fio.h"

namespace repro::ebs {
namespace {

using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

ClusterParams params_for(StackKind stack, std::uint64_t seed = 7) {
  ClusterParams p;
  p.topo.compute_servers = 2;
  p.topo.storage_servers = 4;
  p.topo.servers_per_rack = 4;
  p.stack = stack;
  p.seed = seed;
  p.block_server.store_payload = false;
  return p;
}

struct RunStats {
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t hangs = 0;
  TimeNs end_time = 0;
};

RunStats run_fio_for(StackKind stack, std::uint64_t seed, double loss,
                     std::uint64_t ios) {
  sim::Engine eng;
  Cluster cluster(eng, params_for(stack, seed));
  const std::uint64_t vd = cluster.create_vd(1ull << 30);
  if (loss > 0) {
    for (auto* core : cluster.clos().cores) {
      cluster.network().set_loss_rate(*core, loss);
    }
  }
  workload::FioConfig cfg;
  cfg.vd_id = vd;
  cfg.iodepth = 8;
  cfg.read_fraction = 0.3;
  cfg.max_ios = ios;
  workload::FioJob job(
      eng,
      [&](IoRequest io, transport::IoCompleteFn done) {
        cluster.compute(0).submit_io(std::move(io), std::move(done));
      },
      cfg, Rng(seed));
  eng.at(0, [&] { job.start(); });
  eng.run();
  RunStats out;
  out.completed = job.completed();
  out.errors = job.metrics().errors();
  out.hangs = job.metrics().hangs();
  out.end_time = eng.now();
  return out;
}

class StackLossMatrix
    : public ::testing::TestWithParam<std::tuple<StackKind, int>> {};

TEST_P(StackLossMatrix, AllIosCompleteWithoutErrors) {
  const auto [stack, loss_pct] = GetParam();
  const auto stats =
      run_fio_for(stack, 11, static_cast<double>(loss_pct) / 100.0, 300);
  EXPECT_EQ(stats.completed, 300u);
  EXPECT_EQ(stats.errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StackLossMatrix,
    ::testing::Combine(::testing::Values(StackKind::kLuna, StackKind::kRdma,
                                         StackKind::kSolar),
                       ::testing::Values(0, 2)),
    [](const auto& info) {
      std::string n = to_string(std::get<0>(info.param)) + "_loss" +
                      std::to_string(std::get<1>(info.param));
      for (auto& c : n) {
        if (c == '-' || c == '*') c = '_';
      }
      return n;
    });

TEST(Integration, WholeRunIsDeterministic) {
  const auto a = run_fio_for(StackKind::kSolar, 99, 0.01, 400);
  const auto b = run_fio_for(StackKind::kSolar, 99, 0.01, 400);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.end_time, b.end_time);  // bit-identical simulated time
}

TEST(Integration, DifferentSeedsDiffer) {
  const auto a = run_fio_for(StackKind::kSolar, 1, 0.01, 400);
  const auto b = run_fio_for(StackKind::kSolar, 2, 0.01, 400);
  EXPECT_NE(a.end_time, b.end_time);
}

TEST(Integration, SolarSurvivesFailoverMidBurst) {
  sim::Engine eng;
  Cluster cluster(eng, params_for(StackKind::kSolar, 21));
  const std::uint64_t vd = cluster.create_vd(1ull << 30);
  workload::FioConfig cfg;
  cfg.vd_id = vd;
  cfg.iodepth = 16;
  cfg.read_fraction = 0.2;
  workload::FioJob job(
      eng,
      [&](IoRequest io, transport::IoCompleteFn done) {
        cluster.compute(0).submit_io(std::move(io), std::move(done));
      },
      cfg, Rng(3));
  eng.at(0, [&] { job.start(); });
  // Kill a spine silently mid-burst, repair later.
  eng.at(ms(20), [&] {
    cluster.network().fail_device_silent(*cluster.clos().compute_spines[0]);
  });
  eng.run_until(ms(500));
  job.stop();
  cluster.network().repair_device(*cluster.clos().compute_spines[0]);
  eng.run_until(seconds(30));
  EXPECT_GT(job.completed(), 1000u);
  EXPECT_EQ(job.metrics().hangs(), 0u);  // SOLAR: zero >=1s stalls
}

TEST(Integration, RealPayloadsSurviveMixedTraffic) {
  sim::Engine eng;
  auto params = params_for(StackKind::kSolar, 31);
  params.block_server.store_payload = true;
  params.solar.encrypt = true;
  Cluster cluster(eng, params);
  const std::uint64_t vd = cluster.create_vd(64ull << 20);

  Rng rng(5);
  std::map<std::uint64_t, std::vector<std::uint8_t>> truth;
  int pending = 0;
  // 50 random 4K writes with real data...
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t off = rng.next_below(4096) * 4096;
    IoRequest io;
    io.vd_id = vd;
    io.op = OpType::kWrite;
    io.offset = off;
    io.len = 4096;
    io.payload = transport::make_placeholder_blocks(off, 4096, 4096);
    io.payload[0].data.resize(4096);
    for (auto& b : io.payload[0].data) {
      b = static_cast<std::uint8_t>(rng.next());
    }
    truth[off] = io.payload[0].data;
    ++pending;
    eng.at(eng.now(), [&, io = std::move(io)]() mutable {
      cluster.compute(0).submit_io(std::move(io), [&](IoResult r) {
        EXPECT_EQ(r.status, StorageStatus::kOk);
        --pending;
      });
    });
  }
  eng.run();
  ASSERT_EQ(pending, 0);

  // ...read back every one and compare bytes (last write wins per offset).
  for (const auto& [off, data] : truth) {
    IoRequest io;
    io.vd_id = vd;
    io.op = OpType::kRead;
    io.offset = off;
    io.len = 4096;
    bool done = false;
    eng.at(eng.now(), [&] {
      cluster.compute(0).submit_io(std::move(io), [&](IoResult r) {
        ASSERT_EQ(r.status, StorageStatus::kOk);
        ASSERT_EQ(r.read_data.size(), 1u);
        EXPECT_EQ(r.read_data[0].data, data) << "offset " << off;
        done = true;
      });
    });
    eng.run();
    ASSERT_TRUE(done);
  }
}

TEST(Integration, QosCapsThroughputAcrossStacks) {
  for (StackKind stack : {StackKind::kLuna, StackKind::kSolar}) {
    sim::Engine eng;
    Cluster cluster(eng, params_for(stack, 41));
    const std::uint64_t vd = cluster.create_vd(1ull << 30);
    sa::QosSpec spec;
    spec.iops_limit = 5000;
    spec.burst_ios = 8;
    cluster.set_qos(vd, spec);
    workload::FioConfig cfg;
    cfg.vd_id = vd;
    cfg.block_size = 4096;
    cfg.iodepth = 32;
    workload::FioJob job(
        eng,
        [&](IoRequest io, transport::IoCompleteFn done) {
          cluster.compute(0).submit_io(std::move(io), std::move(done));
        },
        cfg, Rng(6));
    eng.at(0, [&] { job.start(); });
    eng.run_until(ms(200));
    job.stop();
    eng.run_until(eng.now() + seconds(1));
    const double iops = job.metrics().iops(ms(200));
    EXPECT_NEAR(iops, 5000.0, 700.0) << to_string(stack);
  }
}

}  // namespace
}  // namespace repro::ebs
