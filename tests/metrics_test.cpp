#include "ebs/metrics.h"

#include <gtest/gtest.h>

namespace repro::ebs {
namespace {

using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

IoRequest io_of(OpType op, std::uint32_t len) {
  IoRequest io;
  io.op = op;
  io.len = len;
  return io;
}

IoResult result_at(TimeNs completed, StorageStatus status = StorageStatus::kOk) {
  IoResult r;
  r.status = status;
  r.completed_at = completed;
  return r;
}

TEST(MetricSink, RecordsLatencyExcludingQosWait) {
  MetricSink sink;
  auto res = result_at(us(100));
  res.trace.qos_wait_ns = us(40);
  sink.record(io_of(OpType::kWrite, 4096), res, /*issued_at=*/0);
  EXPECT_EQ(sink.ios(), 1u);
  // Recorded latency is 60us (100 wall - 40 qos), per Fig. 6's caption.
  EXPECT_NEAR(static_cast<double>(sink.total().percentile(0.5)),
              static_cast<double>(us(60)), us(3));
}

TEST(MetricSink, SeparatesReadAndWriteHistograms) {
  MetricSink sink;
  sink.record(io_of(OpType::kWrite, 4096), result_at(us(10)), 0);
  sink.record(io_of(OpType::kRead, 4096), result_at(us(200)), 0);
  EXPECT_EQ(sink.writes().count(), 1u);
  EXPECT_EQ(sink.reads().count(), 1u);
  EXPECT_GT(sink.reads().percentile(0.5), sink.writes().percentile(0.5));
}

TEST(MetricSink, HangDetectionAtOneSecond) {
  MetricSink sink;
  sink.record(io_of(OpType::kWrite, 4096), result_at(ms(999)), 0);
  EXPECT_EQ(sink.hangs(), 0u);
  sink.record(io_of(OpType::kWrite, 4096), result_at(seconds(1)), 0);
  EXPECT_EQ(sink.hangs(), 1u);
  // Hang threshold is wall time: QoS wait does NOT excuse a hang from the
  // guest's point of view... but the issued_at baseline does shift it.
  sink.record(io_of(OpType::kWrite, 4096), result_at(seconds(3)),
              seconds(2) + ms(500));
  EXPECT_EQ(sink.hangs(), 1u);
}

TEST(MetricSink, ErrorsCounted) {
  MetricSink sink;
  sink.record(io_of(OpType::kWrite, 4096),
              result_at(us(10), StorageStatus::kCrcMismatch), 0);
  EXPECT_EQ(sink.errors(), 1u);
}

TEST(MetricSink, ThroughputAndIops) {
  MetricSink sink;
  for (int i = 0; i < 1000; ++i) {
    sink.record(io_of(OpType::kWrite, 4096), result_at(us(10)), 0);
  }
  // 1000 x 4KB over 1 ms = 1M IOPS, ~32.8 Gbps, 4096 MB/s.
  EXPECT_NEAR(sink.iops(ms(1)), 1e6, 1e3);
  EXPECT_NEAR(sink.throughput_gbps(ms(1)), 32.768, 0.1);
  EXPECT_NEAR(sink.throughput_mbps(ms(1)), 4096.0, 1.0);
}

TEST(MetricSink, ClearResetsEverything) {
  MetricSink sink;
  sink.record(io_of(OpType::kWrite, 4096), result_at(seconds(2)), 0);
  sink.clear();
  EXPECT_EQ(sink.ios(), 0u);
  EXPECT_EQ(sink.hangs(), 0u);
  EXPECT_EQ(sink.bytes(), 0u);
  EXPECT_EQ(sink.total().count(), 0u);
}

TEST(MetricSink, ComponentBreakdownRecorded) {
  MetricSink sink;
  auto res = result_at(us(100));
  res.trace.sa_ns = us(5);
  res.trace.fn_ns = us(20);
  res.trace.bn_ns = us(15);
  res.trace.ssd_ns = us(60);
  sink.record(io_of(OpType::kRead, 4096), res, 0);
  EXPECT_NEAR(static_cast<double>(sink.sa().percentile(0.5)),
              static_cast<double>(us(5)), us(1));
  EXPECT_NEAR(static_cast<double>(sink.ssd().percentile(0.5)),
              static_cast<double>(us(60)), us(3));
}

}  // namespace
}  // namespace repro::ebs
