#include "placement/policy.h"

#include <algorithm>
#include <map>

namespace repro::placement {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLegacyRotated:
      return "legacy";
    case PolicyKind::kRackAwareSpread:
      return "rack-aware";
    case PolicyKind::kExposureAware:
      return "exposure";
  }
  return "legacy";
}

bool policy_from_string(const std::string& name, PolicyKind* out) {
  if (name == "legacy") {
    *out = PolicyKind::kLegacyRotated;
  } else if (name == "rack-aware") {
    *out = PolicyKind::kRackAwareSpread;
  } else if (name == "exposure") {
    *out = PolicyKind::kExposureAware;
  } else {
    return false;
  }
  return true;
}

std::vector<net::IpAddr> LegacyRotated::pick_stripe(
    std::uint64_t /*vd*/, const StripeGeometry& /*geo*/,
    const std::vector<net::IpAddr>& candidates, ClusterView& /*view*/) {
  return candidates;
}

std::vector<net::IpAddr> RackAwareSpread::rack_schedule(
    const std::vector<net::IpAddr>& candidates, const ClusterView& view,
    int need, bool least_loaded_first) {
  // Group candidates by rack, keeping candidate order within a rack (the
  // per-VD rotation start survives into the schedule, so VDs still spread
  // their load across servers the way the legacy layout did).
  std::map<int, std::vector<net::IpAddr>> by_rack;
  for (const net::IpAddr s : candidates) {
    const int rack = view.rack_of(s);
    if (rack < 0) return candidates;  // unknown topology: legacy layout
    by_rack[rack].push_back(s);
  }
  const int racks = static_cast<int>(by_rack.size());
  if (racks <= 1) return candidates;  // nothing to spread across
  std::size_t min_size = candidates.size();
  for (const auto& [rack, servers] : by_rack) {
    min_size = std::min(min_size, servers.size());
  }
  // Feasible only when a stripe fits with at most ceil(need/racks)
  // fragments per rack; otherwise keep the legacy layout rather than
  // silently doubling fragments onto one server.
  if (need > 0 &&
      (need + racks - 1) / racks > static_cast<int>(min_size)) {
    return candidates;
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(racks));
  for (const auto& [rack, servers] : by_rack) order.push_back(rack);
  if (least_loaded_first) {
    // Rotate (not sort) so adjacent racks in the cycle stay adjacent; the
    // start point is the least-loaded rack, ties broken by rack id (the
    // map order), keeping the schedule deterministic.
    std::size_t start = 0;
    for (std::size_t i = 1; i < order.size(); ++i) {
      if (view.rack_fragments(order[i]) < view.rack_fragments(order[start])) {
        start = i;
      }
    }
    std::rotate(order.begin(),
                order.begin() + static_cast<std::ptrdiff_t>(start),
                order.end());
  }
  // Rack-major fill: slot j -> rack order[j % R], server (j / R) within the
  // rack. Truncating every rack to min_size keeps the schedule length a
  // multiple of R * min_size, so a k+m window never revisits a server
  // (same server implies same rack implies slot distance >= R * min_size
  // >= need by the feasibility check above).
  std::vector<net::IpAddr> schedule;
  schedule.reserve(static_cast<std::size_t>(racks) * min_size);
  for (std::size_t j = 0;
       j < static_cast<std::size_t>(racks) * min_size; ++j) {
    const auto& servers = by_rack[order[j % static_cast<std::size_t>(racks)]];
    schedule.push_back(servers[j / static_cast<std::size_t>(racks)]);
  }
  return schedule;
}

std::vector<net::IpAddr> RackAwareSpread::pick_stripe(
    std::uint64_t /*vd*/, const StripeGeometry& geo,
    const std::vector<net::IpAddr>& candidates, ClusterView& view) {
  return rack_schedule(candidates, view, geo.k + geo.m,
                       /*least_loaded_first=*/false);
}

std::vector<net::IpAddr> ExposureAware::pick_stripe(
    std::uint64_t /*vd*/, const StripeGeometry& geo,
    const std::vector<net::IpAddr>& candidates, ClusterView& view) {
  std::vector<net::IpAddr> schedule =
      rack_schedule(candidates, view, geo.k + geo.m,
                    /*least_loaded_first=*/true);
  // Feed placement pressure back into the view: fragments land on schedule
  // slot (g + c) % L, i.e. evenly over the slots up to a remainder — the
  // per-rack totals below are exact to within one stripe, which is all the
  // rack-rotation heuristic needs.
  const std::size_t len = schedule.size();
  if (len > 0 && geo.num_segments > 0) {
    const std::uint64_t base = geo.num_segments / len;
    const std::uint64_t rem = geo.num_segments % len;
    for (std::size_t j = 0; j < len; ++j) {
      view.add_rack_fragments(view.rack_of(schedule[j]),
                              base + (j < rem ? 1 : 0));
    }
  }
  return schedule;
}

std::unique_ptr<Policy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLegacyRotated:
      return std::make_unique<LegacyRotated>();
    case PolicyKind::kRackAwareSpread:
      return std::make_unique<RackAwareSpread>();
    case PolicyKind::kExposureAware:
      return std::make_unique<ExposureAware>();
  }
  return std::make_unique<LegacyRotated>();
}

}  // namespace repro::placement
