// Cluster-level placement knobs. Lives on ebs::ClusterParams / ScenarioSpec
// the same way the qos and ec subsystems' params do: `enabled == false`
// (no "placement" key in the scenario) means no policy object is ever
// built and the run is bit-identical to a spec that predates the field.
#pragma once

#include <string>

#include "placement/policy.h"

namespace repro::obs {
struct JsonValue;
class JsonWriter;
}  // namespace repro::obs

namespace repro::placement {

struct PlacementParams {
  bool enabled = false;
  /// Stripe-pool schedule policy (see policy.h). kLegacyRotated under
  /// `enabled` exercises the policy plumbing while staying byte-identical
  /// to the inline layout — the back-compat arm CI byte-diffs.
  PolicyKind policy = PolicyKind::kLegacyRotated;
  /// Optional cluster-level admission gate: nodes reject new I/O while the
  /// fleet-wide inflight count (ClusterView aggregate) is at the limit.
  /// Requires the qos subsystem (`qos.enabled`) and a single-shard build —
  /// the per-I/O shared counter cannot cross shard barriers.
  bool cluster_admission = false;
  int cluster_inflight_limit = 256;
};

/// JSON round-trip (ScenarioSpec "placement" object). Mirrors
/// ec::write_ec_params.
void write_placement_params(obs::JsonWriter& w, const PlacementParams& p);
bool read_placement_params(const obs::JsonValue& v, PlacementParams* p);
/// Keys `read_placement_params` understands — the scenario strict parser
/// rejects anything else.
bool placement_params_key_allowed(const std::string& key);

}  // namespace repro::placement
