// ClusterView: the cluster-level state the placement & repair control plane
// shares across nodes — per-server rack membership and health, per-rack
// placement pressure (fragment counts), and the fleet-wide inflight count
// the optional cluster admission gate reads.
//
// Write discipline (this is shared state on sharded builds):
//  * rack membership and per-rack fragment counts are written only at
//    cluster-construction / create_vd time, before any worker thread runs;
//  * health updates arrive through the cluster's health listener, which
//    routes them over `ShardedEngine::post_global` when shards > 1 — the
//    same every-shard-quiescent barrier the rebuild RemapFn uses;
//  * the cluster inflight counter is mutated per-I/O and is therefore only
//    wired on single-shard builds (see ebs::ComputeNode).
// Readers (maintenance exposure ordering, admission) thus never race a
// writer, and reads at a given simulated time are bit-deterministic at any
// worker-thread count.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.h"

namespace repro::placement {

class ClusterView {
 public:
  // --- topology (map-time writes) ---------------------------------------
  void set_rack(net::IpAddr server, int rack);
  /// Rack of `server`, or -1 when unknown (policies then fall back to the
  /// legacy layout).
  int rack_of(net::IpAddr server) const;
  /// Racks seen so far (max rack id + 1).
  int num_racks() const { return num_racks_; }

  // --- placement pressure (map-time writes) ------------------------------
  /// Accounts `count` fragments placed into `rack` (ExposureAware feeds
  /// this as it schedules VDs, so later VDs start their rack rotation at
  /// the least-loaded rack).
  void add_rack_fragments(int rack, std::uint64_t count);
  std::uint64_t rack_fragments(int rack) const;

  // --- health (barrier-routed writes) ------------------------------------
  void set_health(net::IpAddr server, bool alive);
  /// Servers default to alive until declared otherwise.
  bool alive(net::IpAddr server) const;
  int servers_down() const { return servers_down_; }

  /// Surviving-fragment exposure of one stripe: how many of its fragments
  /// currently sit on a dead server. Fragments with `block_server == 0`
  /// (past-the-end tail slots) do not count.
  template <typename Locs>
  int exposure(const Locs& frags) const {
    int lost = 0;
    for (const auto& loc : frags) {
      if (loc.block_server != 0 && !alive(loc.block_server)) ++lost;
    }
    return lost;
  }

  // --- cluster-wide admission load (single-shard, per-I/O writes) ---------
  void add_inflight(int delta) { cluster_inflight_ += delta; }
  int cluster_inflight() const { return cluster_inflight_; }

 private:
  std::map<net::IpAddr, int> racks_;
  std::map<net::IpAddr, bool> health_;
  std::vector<std::uint64_t> rack_fragments_;
  int num_racks_ = 0;
  int servers_down_ = 0;
  int cluster_inflight_ = 0;
};

}  // namespace repro::placement
