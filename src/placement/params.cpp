#include "placement/params.h"

#include "obs/json.h"
#include "obs/json_reader.h"

namespace repro::placement {

void write_placement_params(obs::JsonWriter& w, const PlacementParams& p) {
  w.begin_object();
  w.field("enabled", p.enabled);
  w.field("policy", to_string(p.policy));
  w.field("cluster_admission", p.cluster_admission);
  w.field("cluster_inflight_limit", p.cluster_inflight_limit);
  w.end_object();
}

bool read_placement_params(const obs::JsonValue& v, PlacementParams* p) {
  if (v.type != obs::JsonValue::Type::kObject) return false;
  obs::json_bool(v, "enabled", &p->enabled);
  std::string policy;
  if (obs::json_string(v, "policy", &policy) &&
      !policy_from_string(policy, &p->policy)) {
    return false;  // a typo'd policy must not quietly run the default
  }
  obs::json_bool(v, "cluster_admission", &p->cluster_admission);
  double num = 0.0;
  if (obs::json_number(v, "cluster_inflight_limit", &num)) {
    p->cluster_inflight_limit = static_cast<int>(num);
  }
  return p->cluster_inflight_limit >= 1;
}

bool placement_params_key_allowed(const std::string& key) {
  static const char* const kKeys[] = {"enabled", "policy",
                                      "cluster_admission",
                                      "cluster_inflight_limit"};
  for (const char* k : kKeys) {
    if (key == k) return true;
  }
  return false;
}

}  // namespace repro::placement
