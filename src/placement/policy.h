// Placement policies: the cluster-level control plane that decides which
// rotation pool a VD's stripes cycle over. The data structure (the
// SegmentTable's interned stripe pool + inline `(g+c) % W` lookup math)
// stays exactly as it was; a policy only reorders/filters the candidate
// server list at map time, so million-VD metadata cost is unchanged and
// the legacy policy is bit-identical to no policy at all.
//
//  * LegacyRotated — returns the candidates verbatim: the historical
//    rotated layout, byte-for-byte.
//  * RackAwareSpread — rack-major schedule: slot j holds a server of rack
//    order[j % R], so any window of k+m consecutive slots touches
//    min(k+m, R) distinct racks and a whole-rack fail-stop costs at most
//    ceil((k+m)/R) fragments of any stripe. Falls back to the legacy
//    layout when rack membership is unknown, there is only one rack, or
//    the spread is infeasible (ceil((k+m)/R) > smallest rack).
//  * ExposureAware — the same spread, plus it feeds the ClusterView: the
//    rack rotation starts at the least-loaded rack (per-rack fragment
//    counts), and the counts are updated as VDs are placed so later VDs
//    steer around hot racks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.h"
#include "placement/cluster_view.h"

namespace repro::placement {

enum class PolicyKind { kLegacyRotated, kRackAwareSpread, kExposureAware };

const char* to_string(PolicyKind kind);
bool policy_from_string(const std::string& name, PolicyKind* out);

/// Stripe geometry handed to `pick_stripe`. `k == 0` means a replication
/// VD (plain round-robin over the returned pool).
struct StripeGeometry {
  int k = 0;
  int m = 0;
  /// Total segments the VD maps (data + parity for EC).
  std::uint64_t num_segments = 0;
};

class Policy {
 public:
  virtual ~Policy() = default;
  virtual PolicyKind kind() const = 0;
  /// Returns the rotation pool the SegmentTable interns for `vd`:
  /// `candidates` (the cluster's creation-order server list) reordered /
  /// restructured per policy. Returning `candidates` unchanged is the
  /// legacy layout. Must return at least k+m entries for an EC VD whenever
  /// `candidates` has at least k+m.
  virtual std::vector<net::IpAddr> pick_stripe(
      std::uint64_t vd, const StripeGeometry& geo,
      const std::vector<net::IpAddr>& candidates, ClusterView& view) = 0;
};

class LegacyRotated : public Policy {
 public:
  PolicyKind kind() const override { return PolicyKind::kLegacyRotated; }
  std::vector<net::IpAddr> pick_stripe(
      std::uint64_t vd, const StripeGeometry& geo,
      const std::vector<net::IpAddr>& candidates, ClusterView& view) override;
};

class RackAwareSpread : public Policy {
 public:
  PolicyKind kind() const override { return PolicyKind::kRackAwareSpread; }
  std::vector<net::IpAddr> pick_stripe(
      std::uint64_t vd, const StripeGeometry& geo,
      const std::vector<net::IpAddr>& candidates, ClusterView& view) override;

 protected:
  /// The rack-major schedule shared by both spread policies. Every rack is
  /// truncated to the smallest rack's size so the schedule wraps cleanly
  /// (length R * min_size, a multiple of R — the rack cycling survives the
  /// mod-length wrap, which is what makes the spread guarantee hold for
  /// every stripe, tail included). `least_loaded_first` rotates the rack
  /// order to start at the rack with the fewest placed fragments.
  static std::vector<net::IpAddr> rack_schedule(
      const std::vector<net::IpAddr>& candidates, const ClusterView& view,
      int need, bool least_loaded_first);
};

class ExposureAware : public RackAwareSpread {
 public:
  PolicyKind kind() const override { return PolicyKind::kExposureAware; }
  std::vector<net::IpAddr> pick_stripe(
      std::uint64_t vd, const StripeGeometry& geo,
      const std::vector<net::IpAddr>& candidates, ClusterView& view) override;
};

std::unique_ptr<Policy> make_policy(PolicyKind kind);

}  // namespace repro::placement
