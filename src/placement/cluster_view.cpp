#include "placement/cluster_view.h"

#include <algorithm>

namespace repro::placement {

void ClusterView::set_rack(net::IpAddr server, int rack) {
  racks_[server] = rack;
  num_racks_ = std::max(num_racks_, rack + 1);
  if (rack >= 0 && static_cast<std::size_t>(rack) >= rack_fragments_.size()) {
    rack_fragments_.resize(static_cast<std::size_t>(rack) + 1, 0);
  }
}

int ClusterView::rack_of(net::IpAddr server) const {
  const auto it = racks_.find(server);
  return it != racks_.end() ? it->second : -1;
}

void ClusterView::add_rack_fragments(int rack, std::uint64_t count) {
  if (rack < 0) return;
  if (static_cast<std::size_t>(rack) >= rack_fragments_.size()) {
    rack_fragments_.resize(static_cast<std::size_t>(rack) + 1, 0);
  }
  rack_fragments_[static_cast<std::size_t>(rack)] += count;
}

std::uint64_t ClusterView::rack_fragments(int rack) const {
  if (rack < 0 || static_cast<std::size_t>(rack) >= rack_fragments_.size()) {
    return 0;
  }
  return rack_fragments_[static_cast<std::size_t>(rack)];
}

void ClusterView::set_health(net::IpAddr server, bool alive) {
  auto it = health_.find(server);
  const bool was = it == health_.end() ? true : it->second;
  if (was == alive) return;
  health_[server] = alive;
  servers_down_ += alive ? -1 : 1;
}

bool ClusterView::alive(net::IpAddr server) const {
  const auto it = health_.find(server);
  return it == health_.end() ? true : it->second;
}

}  // namespace repro::placement
