// SOLAR server: the block-server side of one-block-one-packet.
//
// Every arriving packet is processed independently — there is no receive
// buffer, no reassembly, no connection. A WRITE packet is ACKed for the
// transport (loss detection + INT echo for CC), CRC-verified, stored and
// replicated on its own; the only per-RPC state is a tiny countdown used
// to emit the storage-level response once every block has persisted, and
// it is garbage-collected moments later (§4.4 "few maintained states").
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/nic.h"
#include "sim/cpu.h"
#include "sim/engine.h"
#include "solar/frame.h"
#include "storage/block_server.h"

namespace repro::obs {
class Tracer;
}

namespace repro::solar {

struct SolarServerParams {
  TimeNs cpu_per_packet = ns(350);
  TimeNs cpu_per_block_crc = ns(900);  ///< software verify of real payloads
  bool verify_crc = true;
  TimeNs rpc_state_gc = ms(200);  ///< retire completed-RPC records after
};

class SolarServer {
 public:
  SolarServer(sim::Engine& engine, net::Nic& nic, sim::CpuPool& cpu,
              storage::BlockServer& block_server, SolarServerParams params,
              Rng rng);

  std::uint64_t packets_rx() const { return packets_rx_; }
  std::uint64_t crc_rejects() const { return crc_rejects_; }
  std::uint64_t duplicate_blocks() const { return duplicate_blocks_; }

 private:
  enum class BlockProgress : std::uint8_t { kNone, kInFlight, kDone };

  struct WriteRpc {
    std::uint32_t expected = 0;
    std::uint32_t done_count = 0;
    std::vector<BlockProgress> progress;
    bool response_sent = false;
    transport::StorageStatus status = transport::StorageStatus::kOk;
    TimeNs max_bn = 0;
    TimeNs max_ssd = 0;
    net::FlowKey reply_flow;  ///< reversed flow of the last block seen
    /// Trace span of the last block seen; stamped onto the response so the
    /// return path folds into the client's span tree (0 = untraced).
    std::uint64_t reply_span = 0;
  };

  void on_packet(net::Packet& pkt);
  void handle_write(const Frame& f, const net::Packet& pkt);
  void handle_read(const Frame& f, const net::Packet& pkt);
  void send_ack(const Frame& f, const net::Packet& pkt);
  void send_write_response(std::uint64_t rpc_id, const WriteRpc& rpc);
  void gc(TimeNs now);
  static net::FlowKey reversed(const net::FlowKey& f);
  /// Active tracer, or nullptr when observability is dark.
  obs::Tracer* trc() const;

  sim::Engine& engine_;
  net::Nic& nic_;
  sim::CpuPool& cpu_;
  storage::BlockServer& block_server_;
  SolarServerParams params_;
  Rng rng_;
  std::unordered_map<std::uint64_t, WriteRpc> writes_;
  std::deque<std::pair<TimeNs, std::uint64_t>> gc_queue_;
  std::uint64_t packets_rx_ = 0;
  std::uint64_t crc_rejects_ = 0;
  std::uint64_t duplicate_blocks_ = 0;
};

}  // namespace repro::solar
