#include "solar/server.h"

#include <algorithm>

#include "common/crc32.h"
#include "obs/obs.h"

namespace repro::solar {

using proto::RpcMsgType;
using transport::DataBlock;
using transport::StorageStatus;

namespace {
constexpr std::uint8_t kFlagEncrypted = 0x1;
}

SolarServer::SolarServer(sim::Engine& engine, net::Nic& nic,
                         sim::CpuPool& cpu,
                         storage::BlockServer& block_server,
                         SolarServerParams params, Rng rng)
    : engine_(engine),
      nic_(nic),
      cpu_(cpu),
      block_server_(block_server),
      params_(params),
      rng_(rng) {
  nic_.set_deliver([this](net::Packet& pkt) { on_packet(pkt); });
}

net::FlowKey SolarServer::reversed(const net::FlowKey& f) {
  return net::FlowKey{f.dst_ip, f.src_ip, f.dst_port, f.src_port, f.proto};
}

obs::Tracer* SolarServer::trc() const {
  obs::Obs* o = nic_.network().obs();
  return o != nullptr && o->tracer().enabled() ? &o->tracer() : nullptr;
}

void SolarServer::on_packet(net::Packet& pkt) {
  auto f = net::app_as<Frame>(pkt);
  if (!f) return;
  ++packets_rx_;
  gc(engine_.now());
  switch (f->rpc.msg_type) {
    case RpcMsgType::kWriteRequest:
      handle_write(*f, pkt);
      break;
    case RpcMsgType::kReadRequest:
      handle_read(*f, pkt);
      break;
    case RpcMsgType::kProbe:
      send_ack(*f, pkt);  // INT probing (§4.5 future work)
      break;
    default:
      break;
  }
}

void SolarServer::send_ack(const Frame& f, const net::Packet& pkt) {
  Frame ack;
  ack.rpc = f.rpc;
  ack.rpc.msg_type = RpcMsgType::kAck;
  ack.echo_ts = f.ts;
  ack.ts = engine_.now();
  // Echo the INT trail the packet collected on its way here so the sender
  // can run per-path HPCC (§4.8).
  ack.int_echo = pkt.int_records;
  net::PacketPtr out = nic_.make_packet();
  out->flow = reversed(pkt.flow);
  out->size_bytes = 64 + static_cast<std::uint32_t>(
                             ack.int_echo.size() * 12);
  out->priority = 0;
  out->span = pkt.span;  // return-path hops fold into the same block span
  net::emplace_app<Frame>(*out, std::move(ack));
  nic_.send_packet(std::move(out));
}

void SolarServer::send_write_response(std::uint64_t rpc_id,
                                      const WriteRpc& rpc) {
  Frame resp;
  resp.rpc.rpc_id = rpc_id;
  resp.rpc.pkt_count = static_cast<std::uint16_t>(rpc.expected);
  resp.rpc.msg_type = RpcMsgType::kWriteResponse;
  resp.status = rpc.status;
  resp.server_bn = rpc.max_bn;
  resp.server_ssd = rpc.max_ssd;
  resp.ts = engine_.now();
  net::PacketPtr out = nic_.make_packet();
  out->flow = rpc.reply_flow;
  out->size_bytes = 96;
  out->priority = 0;
  out->span = rpc.reply_span;
  net::emplace_app<Frame>(*out, std::move(resp));
  nic_.send_packet(std::move(out));
}

void SolarServer::handle_write(const Frame& f, const net::Packet& pkt) {
  // Transport-level ACK goes out immediately: loss detection and CC must
  // not wait for storage.
  send_ack(f, pkt);

  const std::uint64_t rpc_id = f.rpc.rpc_id;
  auto [it, created] = writes_.try_emplace(rpc_id);
  WriteRpc& rpc = it->second;
  if (created) {
    rpc.expected = f.rpc.pkt_count;
    rpc.progress.assign(f.rpc.pkt_count, BlockProgress::kNone);
    gc_queue_.emplace_back(engine_.now(), rpc_id);
  }
  rpc.reply_flow = reversed(pkt.flow);
  rpc.reply_span = pkt.span;
  if (rpc.response_sent) {
    // Duplicate block of a completed RPC: the response must have been
    // lost; resend it.
    ++duplicate_blocks_;
    send_write_response(rpc_id, rpc);
    return;
  }
  if (f.rpc.pkt_id >= rpc.progress.size() ||
      rpc.progress[f.rpc.pkt_id] != BlockProgress::kNone) {
    ++duplicate_blocks_;
    return;
  }
  rpc.progress[f.rpc.pkt_id] = BlockProgress::kInFlight;

  const bool encrypted = (f.rpc.flags & kFlagEncrypted) != 0;
  TimeNs cpu = params_.cpu_per_packet;
  if (params_.verify_crc && !encrypted && f.block.has_payload()) {
    cpu += params_.cpu_per_block_crc;
  }
  cpu_.submit(rpc_id, cpu, [this, f, rpc_id, encrypted,
                            span = pkt.span, cpu_t0 = engine_.now()] {
    auto wit = writes_.find(rpc_id);
    if (wit == writes_.end()) return;
    WriteRpc& w = wit->second;
    if (obs::Tracer* t = trc()) {
      t->span("server.cpu", span, cpu_t0, engine_.now(), nic_.id(), 0,
              "pkt", f.rpc.pkt_id);
    }
    // Software CRC verification of the plaintext (skipped when the block
    // is ciphertext — the client-side aggregation covers that case).
    if (params_.verify_crc && !encrypted && f.block.has_payload() &&
        crc32_raw(f.block.data) != f.ebs.payload_crc) {
      ++crc_rejects_;
      w.status = StorageStatus::kCrcMismatch;
      w.response_sent = true;
      send_write_response(rpc_id, w);
      writes_.erase(wit);  // client repairs with a fresh set of blocks
      return;
    }
    DataBlock block = f.block;
    block.crc = f.ebs.payload_crc;
    block_server_.write_block(
        f.ebs.segment_id, f.ebs.lba, std::move(block),
        /*done=*/
        [this, rpc_id, pkt_id = f.rpc.pkt_id, span](StorageStatus status,
                                                    TimeNs bn, TimeNs ssd) {
          auto it2 = writes_.find(rpc_id);
          if (it2 == writes_.end()) return;
          WriteRpc& w2 = it2->second;
          if (pkt_id >= w2.progress.size() || w2.response_sent) return;
          if (obs::Tracer* t = trc()) {
            // bn covers the whole block-server stage, ssd the SSD service
            // tail inside it — reconstruct both from the completion time.
            const TimeNs done_at = engine_.now();
            const std::uint64_t bs_span =
                t->span("bs.write", span, done_at - bn, done_at, nic_.id(),
                        0, "pkt", pkt_id);
            t->span("ssd.write", bs_span, done_at - ssd, done_at, nic_.id());
          }
          w2.progress[pkt_id] = BlockProgress::kDone;
          ++w2.done_count;
          w2.max_bn = std::max(w2.max_bn, bn);
          w2.max_ssd = std::max(w2.max_ssd, ssd);
          if (status != StorageStatus::kOk) w2.status = status;
          if (w2.done_count == w2.expected) {
            w2.response_sent = true;
            send_write_response(rpc_id, w2);
            gc_queue_.emplace_back(engine_.now(), rpc_id);
          }
        },
        /*verify_crc=*/false);  // verified above (plaintext frames only)
  });
}

void SolarServer::handle_read(const Frame& f, const net::Packet& pkt) {
  send_ack(f, pkt);
  const net::FlowKey reply = reversed(pkt.flow);
  cpu_.submit(f.rpc.rpc_id, params_.cpu_per_packet,
              [this, f, reply, span = pkt.span, cpu_t0 = engine_.now()] {
    if (obs::Tracer* t = trc()) {
      t->span("server.cpu", span, cpu_t0, engine_.now(), nic_.id(), 0,
              "pkt", f.rpc.pkt_id);
    }
    block_server_.read_block(
        f.ebs.segment_id, f.ebs.lba, f.ebs.block_len,
        [this, f, reply, span](StorageStatus status, DataBlock block,
                               TimeNs bn, TimeNs ssd) {
          if (obs::Tracer* t = trc()) {
            const TimeNs done_at = engine_.now();
            const std::uint64_t bs_span =
                t->span("bs.read", span, done_at - bn, done_at, nic_.id(),
                        0, "pkt", f.rpc.pkt_id);
            t->span("ssd.read", bs_span, done_at - ssd, done_at, nic_.id());
          }
          Frame resp;
          resp.rpc = f.rpc;
          resp.rpc.msg_type = RpcMsgType::kReadResponse;
          resp.ebs = f.ebs;
          resp.ebs.payload_crc = block.crc;
          resp.status = status;
          resp.server_bn = bn;
          resp.server_ssd = ssd;
          resp.echo_ts = f.ts;
          resp.ts = engine_.now();
          resp.block = std::move(block);
          net::PacketPtr out = nic_.make_packet();
          out->flow = reply;
          out->size_bytes = frame_wire_bytes(resp);
          out->priority = 0;
          out->request_int = true;  // CC signal for the data direction
          out->span = span;
          net::emplace_app<Frame>(*out, std::move(resp));
          nic_.send_packet(std::move(out));
        });
  });
}

void SolarServer::gc(TimeNs now) {
  while (!gc_queue_.empty() &&
         now - gc_queue_.front().first > params_.rpc_state_gc) {
    const std::uint64_t rpc_id = gc_queue_.front().second;
    gc_queue_.pop_front();
    auto it = writes_.find(rpc_id);
    if (it != writes_.end() && it->second.response_sent) {
      writes_.erase(it);
    }
  }
}

}  // namespace repro::solar
