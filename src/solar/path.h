// Multi-path state: SOLAR's failure-recovery and congestion-control core.
//
// The control plane keeps N (default 4) persistent paths per block-server
// peer. A path is just a UDP source port — ECMP's hashing turns distinct
// ports into distinct fabric paths, so "moving a path" is drawing a new
// port. Per path we track cwnd, RTT, and a consecutive-timeout counter:
// hitting the threshold declares the path failed and redraws the port
// within milliseconds — no connection state, no scalability cost (§4.4),
// and the mechanism that zeroes Table 2.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "net/packet.h"

namespace repro::solar {

struct PathParams {
  int paths_per_peer = 4;
  double cwnd_init = 12.0;
  double cwnd_min = 1.0;
  double cwnd_max = 256.0;
  int fail_threshold = 3;        ///< consecutive timeouts -> redraw path
  double hpcc_eta = 0.95;        ///< HPCC target utilization
  TimeNs hpcc_t_base = us(25);   ///< baseline RTT for queue normalization
  double additive_increase = 1.0;
  TimeNs timeout_min = us(400);
  double timeout_rtt_mult = 3.0;
};

struct PathState {
  std::uint16_t port = 0;
  double cwnd = 16.0;
  int inflight = 0;
  TimeNs srtt = 0;  ///< 0 = no sample yet
  int consec_timeouts = 0;
  std::uint64_t redraws = 0;  ///< how many times this slot changed port
  // HPCC per-hop history: node id -> (tx_bytes, timestamp).
  std::unordered_map<std::uint32_t, std::pair<std::uint64_t, TimeNs>> hops;

  bool has_window() const { return inflight < static_cast<int>(cwnd); }
  /// Retransmission timeout for packets on this path.
  TimeNs rto(const PathParams& p) const {
    if (srtt == 0) return p.timeout_min * 4;  // unprobed path: be patient
    const auto t = static_cast<TimeNs>(p.timeout_rtt_mult *
                                       static_cast<double>(srtt));
    return t < p.timeout_min ? p.timeout_min : t;
  }
};

class PathSet {
 public:
  PathSet(const PathParams& params, std::uint16_t first_port);

  /// Best path with window available: fewest consecutive timeouts first,
  /// then lowest smoothed RTT (unprobed paths sort first so they get
  /// probed). nullptr when every path's window is full.
  PathState* pick();

  /// Like pick() but never returns the given port (retransmit elsewhere
  /// when possible).
  PathState* pick_excluding(std::uint16_t port);

  /// For retransmissions: always returns a path (window ignored), best
  /// effort to avoid `exclude` and paths with recent timeouts.
  PathState& force_pick(std::uint16_t exclude);

  PathState* by_port(std::uint16_t port);

  /// ACK bookkeeping: RTT EWMA + HPCC window update from the INT echo.
  void on_ack(PathState& p, TimeNs rtt_sample,
              const net::IntTrail& int_echo);

  /// Timeout bookkeeping. Returns true if the path was declared failed and
  /// its port redrawn.
  bool on_timeout(PathState& p);

  std::vector<PathState>& paths() { return paths_; }
  std::uint64_t total_redraws() const;

 private:
  PathParams params_;
  std::vector<PathState> paths_;
  std::uint16_t next_port_;
};

}  // namespace repro::solar
