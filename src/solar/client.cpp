#include "solar/client.h"

#include <algorithm>

#include "common/crc32.h"
#include "obs/obs.h"
#include "qos/scheduler.h"
#include "qos/slo.h"

namespace repro::solar {

using proto::EbsHeader;
using proto::EbsOp;
using proto::RpcHeader;
using proto::RpcMsgType;
using transport::DataBlock;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

/// QoS tenant key of an I/O: background maintenance traffic is keyed under
/// the reserved best-effort tenant so it never rides a VD's guarantee.
static std::uint64_t tenant_of(const IoRequest& io) {
  return io.background ? qos::kBackgroundTenant : io.vd_id;
}

namespace {
constexpr std::uint8_t kFlagEncrypted = 0x1;
}

struct SolarClient::IoCtx {
  IoRequest io;
  transport::IoCompleteFn done;
  int remaining_rpcs = 0;
  StorageStatus status = StorageStatus::kOk;
  std::uint64_t span = 0;  // root trace span (0 = untraced)
  TimeNs submitted_at = 0;
  TimeNs admitted_at = 0;
  TimeNs qos_wait = 0;
  TimeNs first_tx_at = -1;
  TimeNs last_net_at = 0;
  TimeNs fn_max = 0;
  TimeNs bn_max = 0;
  TimeNs ssd_max = 0;
  std::vector<DataBlock> read_data;
};

struct SolarClient::RpcCtx {
  std::uint64_t rpc_id = 0;
  std::uint64_t span = 0;  // trace span (0 = untraced)
  net::IpAddr dst = 0;
  OpType op = OpType::kWrite;
  sa::Extent ext;
  std::shared_ptr<IoCtx> io;
  /// Guest plaintext slices — the reference for the aggregation check.
  std::vector<DataBlock> original;
  /// Write: hardware-processed blocks as sent on the wire. Read: arrived
  /// (decrypted) blocks, indexed by pkt_id.
  std::vector<DataBlock> wire;
  std::vector<BlockState> st;
  int outstanding = 0;
  bool response_received = false;
  bool completed = false;
  StorageStatus status = StorageStatus::kOk;
  TimeNs started_at = 0;
  TimeNs server_bn = 0;
  TimeNs server_ssd = 0;
  TimeNs fn_elapsed = 0;
  sim::TimerId response_timer = 0;
  int repair_rounds = 0;
};

SolarClient::SolarClient(sim::Engine& engine, dpu::AliDpu& dpu, net::Nic& nic,
                         sa::SegmentTable& segments, sa::QosTable& qos,
                         SolarParams params, Rng rng)
    : engine_(engine),
      dpu_(dpu),
      nic_(nic),
      segments_(segments),
      qos_(qos),
      params_(params),
      rng_(rng) {
  nic_.set_deliver([this](net::Packet& pkt) { on_packet(pkt); });
}

obs::Tracer* SolarClient::trc() const {
  obs::Obs* o = nic_.network().obs();
  return o != nullptr && o->tracer().enabled() ? &o->tracer() : nullptr;
}

SolarClient::PathAggregates SolarClient::path_aggregates() const {
  PathAggregates agg;
  double cwnd_sum = 0.0;
  std::int64_t srtt_sum = 0;
  for (const auto& [peer, ps] : paths_) {
    for (const auto& p : ps->paths()) {
      ++agg.paths;
      agg.total_inflight += p.inflight;
      cwnd_sum += p.cwnd;
      srtt_sum += p.srtt;
    }
  }
  if (agg.paths > 0) {
    agg.avg_cwnd =
        static_cast<std::int64_t>(cwnd_sum / static_cast<double>(agg.paths));
    agg.avg_srtt_ns = srtt_sum / agg.paths;
  }
  return agg;
}

void SolarClient::register_metrics(obs::Registry& reg) {
  const obs::Labels node = obs::label("node", nic_.name());
  reg.expose_counter("solar.ios", node, &stats_.ios);
  reg.expose_counter("solar.rpcs", node, &stats_.rpcs);
  reg.expose_counter("solar.data_pkts_tx", node, &stats_.data_pkts_tx);
  reg.expose_counter("solar.retransmits", node, &stats_.retransmits);
  reg.expose_counter("solar.pkt_timeouts", node, &stats_.pkt_timeouts);
  reg.expose_counter("solar.agg_check_failures", node,
                     &stats_.agg_check_failures);
  reg.expose_counter("solar.blocks_repaired", node, &stats_.blocks_repaired);
  reg.expose_counter("solar.read_hw_crc_rejects", node,
                     &stats_.read_hw_crc_rejects);
  reg.expose_counter("solar.path_redraws", node, &stats_.path_redraws);
  reg.expose_gauge(
      "solar.path.inflight", node,
      [this]() -> std::int64_t { return path_aggregates().total_inflight; },
      /*sampled=*/true);
  reg.expose_gauge(
      "solar.path.avg_cwnd", node,
      [this]() -> std::int64_t { return path_aggregates().avg_cwnd; },
      /*sampled=*/true);
  reg.expose_gauge(
      "solar.path.avg_srtt_ns", node,
      [this]() -> std::int64_t { return path_aggregates().avg_srtt_ns; },
      /*sampled=*/true);
}

PathSet& SolarClient::pathset(net::IpAddr peer) {
  auto it = paths_.find(peer);
  if (it == paths_.end()) {
    // Each peer gets a disjoint source-port range so redraws never collide.
    const auto base = static_cast<std::uint16_t>(
        40000 + 1024 * (next_peer_index_++ % 24));
    it = paths_
             .emplace(peer, std::make_unique<PathSet>(params_.path, base))
             .first;
    if (params_.probe_paths) schedule_probes(peer);
  }
  return *it->second;
}

void SolarClient::cpu_submit(std::uint64_t vd_id, std::uint64_t affinity,
                             TimeNs cost, sim::Callback done) {
  if (sched_ != nullptr) {
    sched_->submit(vd_id, affinity, cost, std::move(done));
    return;
  }
  dpu_.cpu().submit(affinity, cost, std::move(done));
}

void SolarClient::submit_io(IoRequest io, transport::IoCompleteFn done) {
  const TimeNs now = engine_.now();
  // QoS is a hardware match-action stage (Figure 12); admission control
  // happens before anything else and its wait is accounted separately.
  const auto admission = qos_.admit(io.vd_id, io.len, now);
  auto ctx = std::make_shared<IoCtx>();
  ctx->io = std::move(io);
  ctx->done = std::move(done);
  ctx->submitted_at = now;
  ctx->qos_wait = admission.admit_at - now;
  ctx->admitted_at = admission.admit_at;
  if (obs::Tracer* t = trc()) ctx->span = t->begin();
  if (ctx->qos_wait == 0) {
    start_io(std::move(ctx));
  } else {
    engine_.at(admission.admit_at,
               [this, ctx = std::move(ctx)]() mutable { start_io(ctx); });
  }
}

void SolarClient::start_io(std::shared_ptr<IoCtx> io) {
  ++stats_.ios;
  auto extents =
      segments_.split(io->io.vd_id, io->io.offset, io->io.len);
  if (extents.empty()) {
    // Admission consumed QoS tokens for an I/O that does no work: refund
    // them so a misaddressed burst doesn't also burn the tenant's budget.
    qos_.refund(io->io.vd_id, io->io.len);
    IoResult res;
    res.status = StorageStatus::kOutOfRange;
    res.completed_at = engine_.now();
    res.trace.qos_wait_ns = io->qos_wait;
    io->done(std::move(res));
    return;
  }
  if (io->qos_wait > 0) {
    if (obs::Tracer* t = trc()) {
      t->span("qos.wait", io->span, io->submitted_at, io->admitted_at,
              nic_.id());
    }
  }
  io->remaining_rpcs = static_cast<int>(extents.size());
  for (const auto& ext : extents) start_rpc(io, ext);
}

void SolarClient::start_rpc(const std::shared_ptr<IoCtx>& io,
                            const sa::Extent& ext) {
  ++stats_.rpcs;
  auto rpc = std::make_shared<RpcCtx>();
  rpc->rpc_id = (static_cast<std::uint64_t>(nic_.ip()) << 40) | next_rpc_seq_++;
  rpc->dst = ext.loc.block_server;
  rpc->op = io->io.op;
  rpc->ext = ext;
  rpc->io = io;
  rpc->started_at = engine_.now();
  if (rpc->op == OpType::kWrite) {
    for (const auto& blk : io->io.payload) {
      if (blk.lba >= ext.vd_offset && blk.lba < ext.vd_offset + ext.len) {
        rpc->original.push_back(blk);
      }
    }
  } else {
    rpc->original = transport::make_placeholder_blocks(ext.segment_offset,
                                                       ext.len,
                                                       params_.block_size);
    // For reads `original` only carries the per-packet geometry.
  }
  const auto nblocks = rpc->original.size();
  rpc->wire.resize(nblocks);
  rpc->st.resize(nblocks);
  rpc->outstanding = static_cast<int>(nblocks);
  rpcs_[rpc->rpc_id] = rpc;
  if (obs::Tracer* t = trc()) rpc->span = t->begin();

  // RPC issue cost on the DPU CPU (§4.5: the CPU polls the I/O to issue an
  // RPC), then the Block-table lookup in the FPGA.
  const TimeNs cpu_t0 = engine_.now();
  cpu_submit(tenant_of(rpc->io->io), rpc->rpc_id, params_.cpu_per_rpc,
             [this, rpc, cpu_t0] {
    const TimeNs cpu_t1 = engine_.now();
    if (obs::Tracer* t = trc()) {
      t->span("dpu.cpu", rpc->span, cpu_t0, cpu_t1, nic_.id(), 0, "rpc_issue",
              1);
    }
    engine_.after(dpu_.fpga().lookup_latency() * 2 /*QoS + Block*/,
                  [this, rpc, cpu_t1] {
      if (obs::Tracer* t = trc()) {
        t->span("fpga.lookup", rpc->span, cpu_t1, engine_.now(), nic_.id());
      }
      for (std::uint16_t i = 0; i < rpc->st.size(); ++i) {
        if (rpc->op == OpType::kWrite) {
          send_write_block(rpc, i, /*software_path=*/!params_.offload);
        } else {
          send_read_request(rpc, i);
        }
      }
    });
  });
}

void SolarClient::send_write_block(const std::shared_ptr<RpcCtx>& rpc,
                                   std::uint16_t pkt_id, bool software_path) {
  PathSet& ps = pathset(rpc->dst);
  PathState* path = rpc->st[pkt_id].retries == 0
                        ? ps.pick()
                        : &ps.force_pick(rpc->st[pkt_id].port);
  if (path == nullptr) {
    sendq_[rpc->dst].emplace_back(rpc->rpc_id, pkt_id);
    return;
  }
  path->inflight++;
  rpc->st[pkt_id].port = path->port;
  const std::uint16_t port = path->port;
  ++stats_.data_pkts_tx;

  // Prepare the wire block on first send (FPGA or software data path);
  // retransmits resend the already-processed block.
  const bool first_processing = rpc->wire[pkt_id].len == 0;
  TimeNs cpu_cost = params_.cpu_per_packet;
  TimeNs fpga_lat = 0;
  if (first_processing) {
    rpc->wire[pkt_id] = rpc->original[pkt_id];
    // Translate to the on-wire (segment-relative) address *before* the
    // pipeline runs: the SEC tweak is (vd, lba) and the read path decrypts
    // with the address from the EBS header — they must be the same space.
    rpc->wire[pkt_id].lba = rpc->ext.segment_offset +
                            (rpc->original[pkt_id].lba - rpc->ext.vd_offset);
    if (software_path) {
      // SOLAR*: CRC (and SEC) burn DPU CPU cycles.
      cpu_cost += params_.sw_crc_per_block;
      if (params_.encrypt) cpu_cost += params_.sw_sec_per_block;
      DataBlock& blk = rpc->wire[pkt_id];
      blk.crc = blk.has_payload()
                    ? crc32_raw(blk.data)
                    : static_cast<std::uint32_t>(blk.lba * 2654435761u);
      if (params_.encrypt && blk.has_payload()) {
        dpu_.fpga().cipher().apply(rpc->io->io.vd_id, blk.lba, blk.data);
      }
    } else {
      fpga_lat = dpu_.fpga().process_write_block(rpc->io->io.vd_id,
                                                 rpc->wire[pkt_id],
                                                 params_.encrypt);
    }
  }

  rpc->st[pkt_id].stage_t0 = engine_.now();
  cpu_submit(tenant_of(rpc->io->io), rpc->rpc_id, cpu_cost,
             [this, rpc, pkt_id, port, software_path, fpga_lat] {
    const DataBlock& blk = rpc->wire[pkt_id];
    if (obs::Tracer* t = trc()) {
      t->span("dpu.cpu", rpc->span, rpc->st[pkt_id].stage_t0, engine_.now(),
              nic_.id(), 0, "pkt", pkt_id);
    }
    rpc->st[pkt_id].stage_t0 = engine_.now();
    auto send_frame = [this, rpc, pkt_id, port, software_path] {
      if (obs::Tracer* t = trc()) {
        const BlockState& bst = rpc->st[pkt_id];
        if (software_path) {
          // Two internal-PCIe crossings (DPU memory in and out, Fig. 10).
          t->span("pcie.internal", rpc->span, bst.stage_t0, engine_.now(),
                  nic_.id(), 0, "crossings", 2, "pkt", pkt_id);
        } else {
          t->span("pcie.guest_dma", rpc->span, bst.stage_t0, bst.stage_t1,
                  nic_.id(), 0, "pkt", pkt_id);
          t->span("fpga.pipeline", rpc->span, bst.stage_t1, engine_.now(),
                  nic_.id(), 0, "pkt", pkt_id);
        }
      }
      PathSet& ps2 = pathset(rpc->dst);
      PathState* p2 = ps2.by_port(port);
      Frame f;
      f.rpc.rpc_id = rpc->rpc_id;
      f.rpc.pkt_id = pkt_id;
      f.rpc.pkt_count = static_cast<std::uint16_t>(rpc->st.size());
      f.rpc.msg_type = RpcMsgType::kWriteRequest;
      f.rpc.path_id = port;
      if (params_.encrypt) f.rpc.flags |= kFlagEncrypted;
      f.ebs.vd_id = rpc->io->io.vd_id;
      f.ebs.segment_id = rpc->ext.loc.segment_id;
      f.ebs.lba = rpc->wire[pkt_id].lba;  // already segment-relative
      f.ebs.block_len = rpc->wire[pkt_id].len;
      f.ebs.payload_crc = rpc->wire[pkt_id].crc;
      f.ebs.op = EbsOp::kWrite;
      f.block = rpc->wire[pkt_id];
      f.block.lba = f.ebs.lba;
      emit(rpc, pkt_id, std::move(f),
           p2 != nullptr ? *p2 : pathset(rpc->dst).force_pick(0));
    };
    if (software_path) {
      // SOLAR*: DPU memory -> internal PCIe -> NIC (the guest fetch
      // crossed it already on the way in: two crossings total).
      dpu_.internal_pcie().transfer(blk.len, [this, blk, send_frame] {
        dpu_.internal_pcie().transfer(blk.len, send_frame);
      });
    } else {
      // Offloaded path: DMA from guest memory straight into the FPGA,
      // through the pipeline, out of PktGen. No DPU CPU, no internal PCIe.
      rpc->st[pkt_id].stage_t1 =
          dpu_.guest_dma().transfer(blk.len, [this, fpga_lat, send_frame] {
            engine_.after(fpga_lat, send_frame);
          });
    }
  });
}

void SolarClient::send_read_request(const std::shared_ptr<RpcCtx>& rpc,
                                    std::uint16_t pkt_id) {
  PathSet& ps = pathset(rpc->dst);
  PathState* path = rpc->st[pkt_id].retries == 0
                        ? ps.pick()
                        : &ps.force_pick(rpc->st[pkt_id].port);
  if (path == nullptr) {
    sendq_[rpc->dst].emplace_back(rpc->rpc_id, pkt_id);
    return;
  }
  path->inflight++;
  rpc->st[pkt_id].port = path->port;
  rpc->st[pkt_id].request_acked = false;
  const std::uint16_t port = path->port;
  rpc->st[pkt_id].stage_t0 = engine_.now();
  cpu_submit(tenant_of(rpc->io->io), rpc->rpc_id, params_.cpu_per_packet,
             [this, rpc, pkt_id, port] {
    rpc->st[pkt_id].stage_t1 = engine_.now();
    if (obs::Tracer* t = trc()) {
      t->span("dpu.cpu", rpc->span, rpc->st[pkt_id].stage_t0, engine_.now(),
              nic_.id(), 0, "pkt", pkt_id);
    }
    // Addr-table insert + request PktGen in the FPGA.
    engine_.after(dpu_.fpga().lookup_latency() + dpu_.fpga().pktgen_latency(),
                  [this, rpc, pkt_id, port] {
                    if (obs::Tracer* t = trc()) {
                      t->span("fpga.pktgen", rpc->span,
                              rpc->st[pkt_id].stage_t1, engine_.now(),
                              nic_.id(), 0, "pkt", pkt_id);
                    }
                    PathSet& ps2 = pathset(rpc->dst);
                    PathState* p2 = ps2.by_port(port);
                    Frame f;
                    f.rpc.rpc_id = rpc->rpc_id;
                    f.rpc.pkt_id = pkt_id;
                    f.rpc.pkt_count =
                        static_cast<std::uint16_t>(rpc->st.size());
                    f.rpc.msg_type = RpcMsgType::kReadRequest;
                    f.rpc.path_id = port;
                    if (params_.encrypt) f.rpc.flags |= kFlagEncrypted;
                    f.ebs.vd_id = rpc->io->io.vd_id;
                    f.ebs.segment_id = rpc->ext.loc.segment_id;
                    f.ebs.lba = rpc->original[pkt_id].lba;
                    f.ebs.block_len = rpc->original[pkt_id].len;
                    f.ebs.op = EbsOp::kRead;
                    emit(rpc, pkt_id, std::move(f),
                         p2 != nullptr ? *p2
                                       : pathset(rpc->dst).force_pick(0));
                  });
  });
}

void SolarClient::emit(const std::shared_ptr<RpcCtx>& rpc,
                       std::uint16_t pkt_id, Frame frame, PathState& path) {
  frame.ts = engine_.now();
  rpc->st[pkt_id].sent_at = frame.ts;
  if (obs::Tracer* t = trc()) rpc->st[pkt_id].span = t->begin();
  if (rpc->io->first_tx_at < 0) rpc->io->first_tx_at = frame.ts;
  if (rpc->st[pkt_id].timer != 0) engine_.cancel(rpc->st[pkt_id].timer);
  rpc->st[pkt_id].timer = engine_.schedule_after(
      path.rto(params_.path),
      [this, rpc_id = rpc->rpc_id, pkt_id] { on_block_timeout(rpc_id, pkt_id); });

  net::PacketPtr pkt = nic_.make_packet();
  pkt->flow = net::FlowKey{nic_.ip(), rpc->dst, frame.rpc.path_id, kServerPort,
                           net::Proto::kUdp};
  pkt->size_bytes = frame_wire_bytes(frame);
  pkt->priority = 0;  // SOLAR's dedicated switch queue (§4.8)
  pkt->request_int = params_.use_int;
  pkt->span = rpc->st[pkt_id].span;
  net::emplace_app<Frame>(*pkt, std::move(frame));
  nic_.send_packet(std::move(pkt));
}

void SolarClient::drain_queue(net::IpAddr peer) {
  auto it = sendq_.find(peer);
  if (it == sendq_.end()) return;
  auto& q = it->second;
  while (!q.empty()) {
    if (pathset(peer).pick() == nullptr) return;  // still no window
    auto [rpc_id, pkt_id] = q.front();
    q.pop_front();
    auto rit = rpcs_.find(rpc_id);
    if (rit == rpcs_.end() || rit->second->completed) continue;
    auto& rpc = rit->second;
    if (rpc->op == OpType::kWrite) {
      if (!rpc->st[pkt_id].acked) {
        send_write_block(rpc, pkt_id, !params_.offload);
      }
    } else if (!rpc->st[pkt_id].arrived) {
      send_read_request(rpc, pkt_id);
    }
  }
}

void SolarClient::on_packet(net::Packet& pkt) {
  auto f = net::app_as<Frame>(pkt);
  if (!f) return;
  switch (f->rpc.msg_type) {
    case RpcMsgType::kAck:
      if (f->rpc.rpc_id == 0) {
        handle_probe_ack(pkt.flow.src_ip, *f);
      } else {
        handle_ack(*f, f->int_echo);
      }
      break;
    case RpcMsgType::kWriteResponse:
      handle_write_response(*f);
      break;
    case RpcMsgType::kReadResponse:
      handle_read_response(*f, pkt.int_records);
      break;
    default:
      break;
  }
}

void SolarClient::handle_ack(const Frame& f, const net::IntTrail& int_recs) {
  auto it = rpcs_.find(f.rpc.rpc_id);
  if (it == rpcs_.end() || it->second->completed) return;
  auto rpc = it->second;
  if (f.rpc.pkt_id >= rpc->st.size()) return;
  BlockState& st = rpc->st[f.rpc.pkt_id];
  rpc->io->last_net_at = engine_.now();
  PathSet& ps = pathset(rpc->dst);
  PathState* path = ps.by_port(st.port);
  const TimeNs rtt = f.echo_ts > 0 ? engine_.now() - f.echo_ts : 0;

  if (rpc->op == OpType::kWrite) {
    if (st.acked) return;  // duplicate ACK
    // Window/CC update per data ACK (§4.7). Read request-ACKs cost nothing
    // here — they carry no CC signal; the read side pays per data response.
    cpu_submit(tenant_of(rpc->io->io), rpc->rpc_id, params_.cpu_per_ack, [] {});
    st.acked = true;
    if (obs::Tracer* t = trc()) {
      t->span_with_id(st.span, "blk.net", rpc->span, st.sent_at,
                      engine_.now(), nic_.id(), st.port, "pkt", f.rpc.pkt_id,
                      "rtt_ns", static_cast<std::uint64_t>(rtt));
    }
    if (st.timer != 0) {
      engine_.cancel(st.timer);
      st.timer = 0;
    }
    if (path != nullptr) {
      path->inflight = std::max(0, path->inflight - 1);
      ps.on_ack(*path, rtt, int_recs);
    }
    rpc->outstanding--;
    drain_queue(rpc->dst);
    if (rpc->outstanding == 0 && !rpc->response_received) {
      arm_response_timer(rpc);
    }
  } else {
    // ACK of a read request: the data is now a storage-side matter; widen
    // the timer to cover the SSD. The request-ACK's INT describes the
    // *request* direction — do not feed it to the congestion estimator,
    // which tracks the data (response) direction for reads; mixing the two
    // directions' tx counters would corrupt the per-hop rate samples.
    if (st.arrived || st.request_acked) return;
    st.request_acked = true;
    if (path != nullptr) ps.on_ack(*path, rtt, {});
    if (st.timer != 0) engine_.cancel(st.timer);
    const TimeNs allowance =
        (path != nullptr ? path->rto(params_.path) : params_.path.timeout_min) +
        params_.response_timeout_extra;
    st.timer = engine_.schedule_after(
        allowance, [this, rpc_id = rpc->rpc_id, pkt_id = f.rpc.pkt_id] {
          on_block_timeout(rpc_id, pkt_id);
        });
  }
}

void SolarClient::handle_write_response(const Frame& f) {
  auto it = rpcs_.find(f.rpc.rpc_id);
  if (it == rpcs_.end() || it->second->completed) return;
  auto rpc = it->second;
  if (rpc->response_received) return;
  rpc->response_received = true;
  rpc->io->last_net_at = engine_.now();
  rpc->server_bn = std::max(rpc->server_bn, f.server_bn);
  rpc->server_ssd = std::max(rpc->server_ssd, f.server_ssd);
  rpc->fn_elapsed = engine_.now() - rpc->started_at - rpc->server_bn -
                    rpc->server_ssd;
  if (rpc->response_timer != 0) {
    engine_.cancel(rpc->response_timer);
    rpc->response_timer = 0;
  }

  if (f.status == StorageStatus::kCrcMismatch &&
      rpc->repair_rounds < params_.max_repair_rounds) {
    // The server saw a payload/CRC mismatch (e.g. post-CRC FPGA bit flip
    // on the wire side). Resend everything through the software path.
    ++rpc->repair_rounds;
    ++stats_.agg_check_failures;
    rpc->response_received = false;
    for (std::uint16_t i = 0; i < rpc->st.size(); ++i) {
      if (rpc->st[i].timer != 0) engine_.cancel(rpc->st[i].timer);
      if (!rpc->st[i].acked) release_path(rpc->st[i].port, rpc->dst);
      rpc->st[i] = BlockState{};
      rpc->wire[i] = DataBlock{};  // force re-processing
      ++stats_.blocks_repaired;
    }
    rpc->outstanding = static_cast<int>(rpc->st.size());
    for (std::uint16_t i = 0; i < rpc->st.size(); ++i) {
      send_write_block(rpc, i, /*software_path=*/true);
    }
    return;
  }
  if (f.status != StorageStatus::kOk) {
    complete_rpc(rpc, f.status);
    return;
  }

  // Software CRC-aggregation check (§4.5): one CRC pass over the XOR of
  // the RPC's blocks versus the XOR of the hardware-computed CRCs.
  const bool all_payloads =
      !rpc->original.empty() &&
      std::all_of(rpc->original.begin(), rpc->original.end(),
                  [](const DataBlock& b) { return b.has_payload(); });
  cpu_submit(
      tenant_of(rpc->io->io), rpc->io->io.vd_id, params_.cpu_agg_crc_per_rpc,
      [this, rpc, all_payloads] {
        if (params_.aggregate_check && all_payloads) {
          std::vector<std::vector<std::uint8_t>> blocks;
          std::vector<std::uint32_t> crcs;
          blocks.reserve(rpc->original.size());
          for (std::size_t i = 0; i < rpc->original.size(); ++i) {
            blocks.push_back(rpc->original[i].data);
            crcs.push_back(rpc->wire[i].crc);
          }
          if (!crc_aggregate_check(blocks, crcs) &&
              rpc->repair_rounds < params_.max_repair_rounds) {
            ++rpc->repair_rounds;
            ++stats_.agg_check_failures;
            // Fall back to software per-block CRCs to find the culprits.
            TimeNs sw_cost = params_.sw_crc_per_block *
                             static_cast<TimeNs>(rpc->original.size());
            cpu_submit(tenant_of(rpc->io->io), rpc->rpc_id, sw_cost,
                       [this, rpc] {
              rpc->response_received = false;
              int resent = 0;
              for (std::uint16_t i = 0; i < rpc->st.size(); ++i) {
                if (crc32_raw(rpc->original[i].data) != rpc->wire[i].crc) {
                  rpc->st[i] = BlockState{};
                  rpc->wire[i] = DataBlock{};
                  ++rpc->outstanding;
                  ++stats_.blocks_repaired;
                  ++resent;
                  send_write_block(rpc, i, /*software_path=*/true);
                }
              }
              if (resent == 0) {
                // Aggregate failed but every block checks out against the
                // hardware CRCs: the corruption is inside the data (a
                // pre-CRC flip). Resend everything via software.
                for (std::uint16_t i = 0; i < rpc->st.size(); ++i) {
                  rpc->st[i] = BlockState{};
                  rpc->wire[i] = DataBlock{};
                  ++rpc->outstanding;
                  ++stats_.blocks_repaired;
                  send_write_block(rpc, i, /*software_path=*/true);
                }
              }
            });
            return;
          }
        }
        complete_rpc(rpc, StorageStatus::kOk);
      });
}

void SolarClient::handle_read_response(const Frame& f,
                                       const net::IntTrail& int_recs) {
  auto it = rpcs_.find(f.rpc.rpc_id);
  if (it == rpcs_.end() || it->second->completed) return;
  auto rpc = it->second;
  if (f.rpc.pkt_id >= rpc->st.size()) return;
  BlockState& st = rpc->st[f.rpc.pkt_id];
  if (st.arrived) return;  // duplicate response
  rpc->io->last_net_at = engine_.now();

  DataBlock block = f.block;
  const std::uint16_t pkt_id = f.rpc.pkt_id;
  auto deliver = [this, rpc, pkt_id, block = std::move(block), f,
                  int_recs]() mutable {
    BlockState& stt = rpc->st[pkt_id];
    if (stt.arrived || rpc->completed) return;
    bool hw_ok = true;
    TimeNs fpga_lat = 0;
    if (params_.offload) {
      fpga_lat = dpu_.fpga().process_read_block(rpc->io->io.vd_id, block,
                                                params_.encrypt, hw_ok);
    } else if (params_.encrypt && block.has_payload()) {
      dpu_.fpga().cipher().apply(rpc->io->io.vd_id, block.lba, block.data);
      hw_ok = !block.has_payload() || crc32_raw(block.data) == block.crc;
    }
    auto finish = [this, rpc, pkt_id, block = std::move(block), f,
                   int_recs, hw_ok]() mutable {
      BlockState& stt = rpc->st[pkt_id];
      if (stt.arrived || rpc->completed) return;
      if (!hw_ok) {
        // Hardware CRC check failed on the inbound block: treat as loss —
        // but a block that *persistently* fails integrity is a storage
        // error, not congestion; give up after a bounded number of tries.
        ++stats_.read_hw_crc_rejects;
        ++stt.retries;
        if (stt.retries > 16) {
          complete_rpc(rpc, StorageStatus::kCrcMismatch);
          return;
        }
        ++stats_.retransmits;
        if (stt.timer != 0) engine_.cancel(stt.timer);
        release_path(stt.port, rpc->dst);
        send_read_request(rpc, pkt_id);
        return;
      }
      stt.arrived = true;
      if (obs::Tracer* t = trc()) {
        t->span_with_id(stt.span, "blk.net", rpc->span, stt.sent_at,
                        engine_.now(), nic_.id(), stt.port, "pkt", pkt_id);
      }
      if (stt.timer != 0) {
        engine_.cancel(stt.timer);
        stt.timer = 0;
      }
      PathSet& ps = pathset(rpc->dst);
      PathState* path = ps.by_port(stt.port);
      if (path != nullptr) {
        path->inflight = std::max(0, path->inflight - 1);
        ps.on_ack(*path, 0, int_recs);
      }
      rpc->server_bn = std::max(rpc->server_bn, f.server_bn);
      rpc->server_ssd = std::max(rpc->server_ssd, f.server_ssd);
      rpc->fn_elapsed = std::max(
          rpc->fn_elapsed, engine_.now() - stt.sent_at - f.server_bn -
                               f.server_ssd);
      rpc->wire[pkt_id] = std::move(block);
      rpc->outstanding--;
      cpu_submit(tenant_of(rpc->io->io), rpc->rpc_id, params_.cpu_per_ack,
                 [] {});
      drain_queue(rpc->dst);
      if (rpc->outstanding == 0) maybe_complete_read(rpc);
    };
    // The block only "lands" once it has traversed the data path: FPGA
    // pipeline + guest DMA when offloaded; CPU + *two* internal-PCIe
    // crossings for SOLAR* (Fig. 10) — the latter is the goodput ceiling.
    const std::uint32_t len = rpc->original[pkt_id].len;
    if (params_.offload) {
      dpu_.guest_dma().transfer(len, [this, fpga_lat,
                                      finish = std::move(finish)]() mutable {
        engine_.after(fpga_lat, std::move(finish));
      });
    } else {
      const std::uint64_t vd = tenant_of(rpc->io->io);
      dpu_.internal_pcie().transfer(len, [this, len, vd,
                                          finish = std::move(finish)]() mutable {
        dpu_.internal_pcie().transfer(len, [this, vd,
                                            finish = std::move(finish)]() mutable {
          cpu_submit(vd, 0, params_.sw_crc_per_block, std::move(finish));
        });
      });
    }
  };
  deliver();
}

void SolarClient::maybe_complete_read(const std::shared_ptr<RpcCtx>& rpc) {
  const bool all_payloads =
      !rpc->wire.empty() &&
      std::all_of(rpc->wire.begin(), rpc->wire.end(),
                  [](const DataBlock& b) { return b.has_payload(); });
  cpu_submit(
      tenant_of(rpc->io->io), rpc->io->io.vd_id, params_.cpu_agg_crc_per_rpc,
      [this, rpc, all_payloads] {
        if (params_.aggregate_check && all_payloads) {
          std::vector<std::vector<std::uint8_t>> blocks;
          std::vector<std::uint32_t> crcs;
          for (const auto& b : rpc->wire) {
            blocks.push_back(b.data);
            crcs.push_back(b.crc);
          }
          if (!crc_aggregate_check(blocks, crcs) &&
              rpc->repair_rounds < params_.max_repair_rounds) {
            ++rpc->repair_rounds;
            ++stats_.agg_check_failures;
            const TimeNs sw_cost = params_.sw_crc_per_block *
                                   static_cast<TimeNs>(rpc->wire.size());
            cpu_submit(tenant_of(rpc->io->io), rpc->rpc_id, sw_cost,
                       [this, rpc] {
              for (std::uint16_t i = 0; i < rpc->st.size(); ++i) {
                if (crc32_raw(rpc->wire[i].data) != rpc->wire[i].crc) {
                  rpc->st[i] = BlockState{};
                  rpc->wire[i] = DataBlock{};
                  ++rpc->outstanding;
                  ++stats_.blocks_repaired;
                  send_read_request(rpc, i);
                }
              }
              if (rpc->outstanding == 0) {
                complete_rpc(rpc, StorageStatus::kOk);  // false alarm
              }
            });
            return;
          }
        }
        complete_rpc(rpc, rpc->status);
      });
}

void SolarClient::on_block_timeout(std::uint64_t rpc_id,
                                   std::uint16_t pkt_id) {
  auto it = rpcs_.find(rpc_id);
  if (it == rpcs_.end() || it->second->completed) return;
  auto rpc = it->second;
  BlockState& st = rpc->st[pkt_id];
  st.timer = 0;
  if (rpc->op == OpType::kWrite ? st.acked : st.arrived) return;
  ++stats_.pkt_timeouts;
  if (obs::Tracer* t = trc()) {
    t->span_with_id(st.span, "blk.net.timeout", rpc->span, st.sent_at,
                    engine_.now(), nic_.id(), st.port, "pkt", pkt_id,
                    "retries", static_cast<std::uint64_t>(st.retries));
  }
  PathSet& ps = pathset(rpc->dst);
  if (PathState* path = ps.by_port(st.port)) {
    path->inflight = std::max(0, path->inflight - 1);
    if (ps.on_timeout(*path)) ++stats_.path_redraws;
  }
  ++st.retries;
  ++stats_.retransmits;
  rpc->io->last_net_at = engine_.now();
  if (rpc->op == OpType::kWrite) {
    send_write_block(rpc, pkt_id, !params_.offload);
  } else {
    send_read_request(rpc, pkt_id);
  }
}

void SolarClient::arm_response_timer(const std::shared_ptr<RpcCtx>& rpc) {
  if (rpc->response_timer != 0) engine_.cancel(rpc->response_timer);
  PathSet& ps = pathset(rpc->dst);
  TimeNs min_rto = params_.path.timeout_min * 2;
  for (auto& p : ps.paths()) {
    if (p.srtt > 0) min_rto = std::max(min_rto, p.rto(params_.path));
  }
  rpc->response_timer = engine_.schedule_after(
      min_rto + params_.response_timeout_extra,
      [this, rpc_id = rpc->rpc_id] {
        auto it = rpcs_.find(rpc_id);
        if (it == rpcs_.end()) return;
        auto rpc2 = it->second;
        rpc2->response_timer = 0;
        if (rpc2->completed || rpc2->response_received) return;
        // Poke the server with a duplicate of block 0: a completed RPC
        // answers with a (re)sent response.
        PathState& path = pathset(rpc2->dst).force_pick(0);
        Frame f;
        f.rpc.rpc_id = rpc2->rpc_id;
        f.rpc.pkt_id = 0;
        f.rpc.pkt_count = static_cast<std::uint16_t>(rpc2->st.size());
        f.rpc.msg_type = RpcMsgType::kWriteRequest;
        f.rpc.path_id = path.port;
        if (params_.encrypt) f.rpc.flags |= kFlagEncrypted;
        f.ebs.vd_id = rpc2->io->io.vd_id;
        f.ebs.segment_id = rpc2->ext.loc.segment_id;
        f.ebs.lba = rpc2->ext.segment_offset;
        f.ebs.block_len = rpc2->wire[0].len;
        f.ebs.payload_crc = rpc2->wire[0].crc;
        f.ebs.op = EbsOp::kWrite;
        f.block = rpc2->wire[0];
        f.block.lba = f.ebs.lba;
        f.ts = engine_.now();
        net::PacketPtr pkt = nic_.make_packet();
        pkt->flow = net::FlowKey{nic_.ip(), rpc2->dst, path.port, kServerPort,
                                 net::Proto::kUdp};
        pkt->size_bytes = frame_wire_bytes(f);
        pkt->priority = 0;
        net::emplace_app<Frame>(*pkt, std::move(f));
        nic_.send_packet(std::move(pkt));
        ++stats_.retransmits;
        arm_response_timer(rpc2);
      });
}

void SolarClient::schedule_probes(net::IpAddr peer) {
  engine_.after(params_.probe_interval, [this, peer] {
    auto it = paths_.find(peer);
    if (it == paths_.end()) return;
    // One probe per path per interval: a tiny kProbe frame whose ACK
    // refreshes the path's RTT and INT view (and clears its timeout
    // counter) without waiting for application traffic.
    for (auto& p : it->second->paths()) {
      Frame f;
      f.rpc.rpc_id = 0;  // probe marker
      f.rpc.msg_type = RpcMsgType::kProbe;
      f.rpc.path_id = p.port;
      f.ts = engine_.now();
      net::PacketPtr pkt = nic_.make_packet();
      pkt->flow = net::FlowKey{nic_.ip(), peer, p.port, kServerPort,
                               net::Proto::kUdp};
      pkt->size_bytes = 64;
      pkt->priority = 0;
      pkt->request_int = params_.use_int;
      net::emplace_app<Frame>(*pkt, std::move(f));
      nic_.send_packet(std::move(pkt));
      ++probes_sent_;
    }
    schedule_probes(peer);
  });
}

void SolarClient::handle_probe_ack(net::IpAddr peer, const Frame& f) {
  auto it = paths_.find(peer);
  if (it == paths_.end()) return;
  PathState* path = it->second->by_port(f.rpc.path_id);
  if (path == nullptr) return;  // path was redrawn since the probe
  const TimeNs rtt = f.echo_ts > 0 ? engine_.now() - f.echo_ts : 0;
  it->second->on_ack(*path, rtt, f.int_echo);
  cpu_submit(0, f.rpc.path_id, params_.cpu_per_ack, [] {});
}

void SolarClient::release_path(std::uint16_t port, net::IpAddr peer) {
  if (port == 0) return;
  if (PathState* p = pathset(peer).by_port(port)) {
    p->inflight = std::max(0, p->inflight - 1);
  }
}

void SolarClient::complete_rpc(const std::shared_ptr<RpcCtx>& rpc,
                               StorageStatus status) {
  if (rpc->completed) return;
  rpc->completed = true;
  if (obs::Tracer* t = trc()) {
    t->span_with_id(rpc->span,
                    rpc->op == OpType::kWrite ? "rpc.write" : "rpc.read",
                    rpc->io->span, rpc->started_at, engine_.now(), nic_.id(),
                    0, "blocks", rpc->st.size(), "status",
                    static_cast<std::uint64_t>(status));
  }
  if (rpc->response_timer != 0) {
    engine_.cancel(rpc->response_timer);
    rpc->response_timer = 0;
  }
  for (std::uint16_t i = 0; i < rpc->st.size(); ++i) {
    BlockState& st = rpc->st[i];
    if (st.timer != 0) {
      engine_.cancel(st.timer);
      st.timer = 0;
    }
    const bool settled = rpc->op == OpType::kWrite ? st.acked : st.arrived;
    if (!settled) release_path(st.port, rpc->dst);
  }
  auto io = rpc->io;
  if (status != StorageStatus::kOk) io->status = status;
  io->fn_max = std::max(io->fn_max, rpc->fn_elapsed);
  io->bn_max = std::max(io->bn_max, rpc->server_bn);
  io->ssd_max = std::max(io->ssd_max, rpc->server_ssd);
  if (rpc->op == OpType::kRead) {
    for (std::size_t i = 0; i < rpc->wire.size(); ++i) {
      DataBlock out = std::move(rpc->wire[i]);
      out.lba = rpc->ext.vd_offset +
                (rpc->original[i].lba - rpc->ext.segment_offset);
      out.len = rpc->original[i].len;
      io->read_data.push_back(std::move(out));
    }
  }
  rpcs_.erase(rpc->rpc_id);
  drain_queue(rpc->dst);
  if (--io->remaining_rpcs == 0) finish_io(io);
}

void SolarClient::finish_io(const std::shared_ptr<IoCtx>& io) {
  if (obs::Tracer* t = trc()) {
    t->span_with_id(io->span,
                    io->io.op == OpType::kWrite ? "io.write" : "io.read", 0,
                    io->submitted_at, engine_.now(), nic_.id(), 0, "bytes",
                    io->io.len, "vd", io->io.vd_id);
  }
  IoResult res;
  res.status = io->status;
  res.completed_at = engine_.now();
  res.read_data = std::move(io->read_data);
  std::sort(res.read_data.begin(), res.read_data.end(),
            [](const DataBlock& a, const DataBlock& b) {
              return a.lba < b.lba;
            });
  const TimeNs first_tx = io->first_tx_at < 0 ? io->admitted_at
                                              : io->first_tx_at;
  res.trace.sa_ns = (first_tx - io->admitted_at) +
                    std::max<TimeNs>(0, engine_.now() - io->last_net_at);
  res.trace.fn_ns = io->fn_max;
  res.trace.bn_ns = io->bn_max;
  res.trace.ssd_ns = io->ssd_max;
  res.trace.qos_wait_ns = io->qos_wait;
  io->done(std::move(res));
}

}  // namespace repro::solar
