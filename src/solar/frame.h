// SOLAR frames as carried by the simulated fabric.
//
// On the real wire a frame is the byte layout of proto/headers.h (see the
// equivalence tests in tests/p4_test.cpp); inside the simulator we carry
// the typed form. The UDP source port doubles as the path id (§4.5).
#pragma once

#include "common/units.h"
#include "net/packet.h"
#include "proto/headers.h"
#include "transport/message.h"

namespace repro::solar {

struct Frame {
  proto::RpcHeader rpc;
  proto::EbsHeader ebs;
  transport::DataBlock block;  ///< payload for data-bearing frames

  TimeNs ts = 0;       ///< sender timestamp
  TimeNs echo_ts = 0;  ///< ACK/response: timestamp of the trigger packet

  // Response-only metadata.
  transport::StorageStatus status = transport::StorageStatus::kOk;
  TimeNs server_bn = 0;
  TimeNs server_ssd = 0;

  /// ACKs return the INT trail the data packet collected on its way out,
  /// so the sender can run HPCC-style congestion control per path (§4.8).
  net::IntTrail int_echo;
};

/// Wire size of a frame (headers + payload), for queue/link accounting.
inline std::uint32_t frame_wire_bytes(const Frame& f) {
  std::uint32_t sz = 42 /*eth+ip+udp*/ +
                     static_cast<std::uint32_t>(proto::RpcHeader::kWireSize +
                                                proto::EbsHeader::kWireSize);
  const auto type = f.rpc.msg_type;
  if (type == proto::RpcMsgType::kWriteRequest ||
      type == proto::RpcMsgType::kReadResponse) {
    sz += f.block.len;
  }
  return sz;
}

}  // namespace repro::solar
