// SOLAR client: the fused storage-agent + transport running on ALI-DPU
// (§4.4-4.5). There is no connection state and no packet reassembly:
// every 4 KB block travels as one self-contained UDP packet, the FPGA
// pipeline does QoS/Block lookups, CRC and SEC, and the DPU CPU only sees
// RPC bookkeeping, path selection and congestion control.
//
// `offload = false` gives SOLAR* (§4.7): the same protocol with the data
// path forced through the DPU CPU and the internal PCIe — the ablation the
// paper uses to isolate how much of SOLAR's win is the hardware data path.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/rng.h"
#include "dpu/dpu.h"
#include "net/nic.h"
#include "sa/qos_table.h"
#include "sa/segment_table.h"
#include "sim/engine.h"
#include "solar/frame.h"
#include "solar/path.h"
#include "transport/message.h"

namespace repro::obs {
class Registry;
class Tracer;
}

namespace repro::qos {
class CpuScheduler;
}

namespace repro::solar {

struct SolarParams {
  PathParams path;
  std::uint32_t block_size = 4096;  ///< one-block-one-packet (4K jumbo)
  bool offload = true;              ///< false = SOLAR*
  bool encrypt = false;
  bool use_int = true;              ///< INT + HPCC CC on the dedicated queue
  bool aggregate_check = true;      ///< software CRC aggregation (§4.5)
  /// §4.5's stated future work ("we plan to make the path selection more
  /// explicit with INT probing"): when on, every path is probed
  /// periodically so RTT/INT stay fresh and sick paths are noticed even
  /// between I/O bursts.
  bool probe_paths = false;
  TimeNs probe_interval = ms(1);
  int max_repair_rounds = 3;
  // DPU CPU service times, calibrated to §4.8's ~150K IOPS per core
  // (path selection + per-packet-ACK congestion control stay on the CPU,
  // which §4.7 calls out as SOLAR's residual CPU load, especially WRITE).
  /// Fixed per-RPC issue cost (doorbell poll, RPC bookkeeping): the bulk
  /// of SOLAR's per-I/O CPU (§4.7); the per-block marginal cost is kept
  /// ~1us so large I/Os stream at line rate from one core (Fig. 14a).
  TimeNs cpu_per_rpc = us(4);
  TimeNs cpu_per_packet = ns(300);  ///< poll + path selection + doorbell
  TimeNs cpu_per_ack = ns(700);     ///< CC/window update per ACK (§4.7)
  TimeNs cpu_agg_crc_per_rpc = ns(1200);  ///< one software CRC per RPC
  // Software data-path costs (SOLAR* or repair fallback).
  TimeNs sw_crc_per_block = ns(900);
  TimeNs sw_sec_per_block = ns(1400);
  TimeNs response_timeout_extra = ms(6);  ///< storage-side allowance
};

struct SolarStats {
  std::uint64_t ios = 0;
  std::uint64_t rpcs = 0;
  std::uint64_t data_pkts_tx = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t pkt_timeouts = 0;
  std::uint64_t agg_check_failures = 0;   ///< hardware faults caught
  std::uint64_t blocks_repaired = 0;      ///< software-path resends
  std::uint64_t read_hw_crc_rejects = 0;  ///< hardware-detected rx errors
  std::uint64_t path_redraws = 0;
};

class SolarClient {
 public:
  static constexpr std::uint16_t kServerPort = 9020;

  SolarClient(sim::Engine& engine, dpu::AliDpu& dpu, net::Nic& nic,
              sa::SegmentTable& segments, sa::QosTable& qos,
              SolarParams params, Rng rng);

  /// Guest-facing entry point (NVMe command arrives at the DPU).
  void submit_io(transport::IoRequest io, transport::IoCompleteFn done);

  const SolarStats& stats() const { return stats_; }
  std::uint64_t probes_sent() const { return probes_sent_; }
  SolarParams& params() { return params_; }
  PathSet& path_set(net::IpAddr peer) { return pathset(peer); }

  /// Order-independent aggregates over all peers' paths (the per-path map
  /// is unordered, so gauges must not depend on iteration order).
  struct PathAggregates {
    std::int64_t paths = 0;
    std::int64_t total_inflight = 0;
    std::int64_t avg_cwnd = 0;     ///< mean congestion window (blocks)
    std::int64_t avg_srtt_ns = 0;  ///< mean smoothed RTT
  };
  PathAggregates path_aggregates() const;

  /// Publishes transport counters and path gauges (labels: node=<name>).
  void register_metrics(obs::Registry& reg);

  /// Routes every DPU CPU dispatch through a tenant-aware scheduler
  /// (weighted fair queueing between guaranteed and best-effort tenants).
  /// Null (the default) submits straight to the pool — bit-identical to
  /// the pre-scheduler behavior.
  void set_cpu_scheduler(qos::CpuScheduler* sched) { sched_ = sched; }

 private:
  struct IoCtx;
  struct RpcCtx;

  struct BlockState {
    bool acked = false;     // write: transport-ACKed
    bool arrived = false;   // read: data landed
    bool request_acked = false;
    std::uint16_t port = 0;
    TimeNs sent_at = 0;
    sim::TimerId timer = 0;
    int retries = 0;
    /// Trace span of the current network attempt (obs; 0 = untraced).
    /// Timestamps for data-path stage spans live here rather than in
    /// lambda captures so the hot-path SmallFns stay within inline SBO.
    std::uint64_t span = 0;
    TimeNs stage_t0 = 0;
    TimeNs stage_t1 = 0;
  };

  PathSet& pathset(net::IpAddr peer);
  void start_io(std::shared_ptr<IoCtx> io);
  void start_rpc(const std::shared_ptr<IoCtx>& io, const sa::Extent& ext);
  void send_write_block(const std::shared_ptr<RpcCtx>& rpc,
                        std::uint16_t pkt_id, bool software_path);
  void send_read_request(const std::shared_ptr<RpcCtx>& rpc,
                         std::uint16_t pkt_id);
  void emit(const std::shared_ptr<RpcCtx>& rpc, std::uint16_t pkt_id,
            Frame frame, PathState& path);
  void drain_queue(net::IpAddr peer);
  void on_packet(net::Packet& pkt);
  void handle_ack(const Frame& f, const net::IntTrail& int_recs);
  void handle_probe_ack(net::IpAddr peer, const Frame& f);
  void schedule_probes(net::IpAddr peer);
  void handle_write_response(const Frame& f);
  void handle_read_response(const Frame& f, const net::IntTrail& int_recs);
  void on_block_timeout(std::uint64_t rpc_id, std::uint16_t pkt_id);
  void arm_response_timer(const std::shared_ptr<RpcCtx>& rpc);
  void maybe_complete_read(const std::shared_ptr<RpcCtx>& rpc);
  void complete_rpc(const std::shared_ptr<RpcCtx>& rpc,
                    transport::StorageStatus status);
  void finish_io(const std::shared_ptr<IoCtx>& io);
  void release_path(std::uint16_t port, net::IpAddr peer);
  /// DPU CPU dispatch point: through the tenant scheduler when attached,
  /// straight to the pool otherwise. `vd_id` classifies the tenant,
  /// `affinity` pins the core (the same key the bare pool hashes).
  void cpu_submit(std::uint64_t vd_id, std::uint64_t affinity, TimeNs cost,
                  sim::Callback done);
  /// Active tracer, or nullptr when observability is dark.
  obs::Tracer* trc() const;

  sim::Engine& engine_;
  dpu::AliDpu& dpu_;
  net::Nic& nic_;
  sa::SegmentTable& segments_;
  sa::QosTable& qos_;
  qos::CpuScheduler* sched_ = nullptr;
  SolarParams params_;
  Rng rng_;
  SolarStats stats_;
  std::unordered_map<net::IpAddr, std::unique_ptr<PathSet>> paths_;
  std::unordered_map<std::uint64_t, std::shared_ptr<RpcCtx>> rpcs_;
  /// Blocks waiting for path window, per peer.
  std::unordered_map<net::IpAddr,
                     std::deque<std::pair<std::uint64_t, std::uint16_t>>>
      sendq_;
  std::uint64_t next_rpc_seq_ = 1;
  int next_peer_index_ = 0;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace repro::solar
