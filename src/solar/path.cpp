#include "solar/path.h"

#include <algorithm>

namespace repro::solar {

PathSet::PathSet(const PathParams& params, std::uint16_t first_port)
    : params_(params), next_port_(first_port) {
  paths_.resize(static_cast<std::size_t>(params_.paths_per_peer));
  for (auto& p : paths_) {
    p.port = next_port_++;
    p.cwnd = params_.cwnd_init;
  }
}

PathState* PathSet::pick() { return pick_excluding(0); }

PathState* PathSet::pick_excluding(std::uint16_t port) {
  PathState* best = nullptr;
  for (auto& p : paths_) {
    if (p.port == port || !p.has_window()) continue;
    if (best == nullptr) {
      best = &p;
      continue;
    }
    if (p.consec_timeouts != best->consec_timeouts) {
      if (p.consec_timeouts < best->consec_timeouts) best = &p;
      continue;
    }
    if (p.srtt < best->srtt) best = &p;
  }
  // If everything is excluded/full, allow the excluded port as last resort.
  if (best == nullptr && port != 0) {
    for (auto& p : paths_) {
      if (p.port == port && p.has_window()) return &p;
    }
  }
  return best;
}

PathState& PathSet::force_pick(std::uint16_t exclude) {
  PathState* best = nullptr;
  for (auto& p : paths_) {
    if (p.port == exclude && paths_.size() > 1) continue;
    if (best == nullptr || p.consec_timeouts < best->consec_timeouts ||
        (p.consec_timeouts == best->consec_timeouts &&
         p.inflight < best->inflight)) {
      best = &p;
    }
  }
  return best != nullptr ? *best : paths_.front();
}

PathState* PathSet::by_port(std::uint16_t port) {
  for (auto& p : paths_) {
    if (p.port == port) return &p;
  }
  return nullptr;
}

void PathSet::on_ack(PathState& p, TimeNs rtt_sample,
                     const net::IntTrail& int_echo) {
  p.consec_timeouts = 0;
  if (rtt_sample > 0) {
    p.srtt = p.srtt == 0 ? rtt_sample : (7 * p.srtt + rtt_sample) / 8;
  }
  // HPCC-style window update: per-hop utilization from INT.
  double max_u = 0.0;
  for (const auto& rec : int_echo) {
    auto it = p.hops.find(rec.node);
    if (it != p.hops.end() && rec.timestamp > it->second.second) {
      const double dt =
          static_cast<double>(rec.timestamp - it->second.second) / 1e9;
      const double tx_rate_bps =
          static_cast<double>(rec.tx_bytes - it->second.first) * 8.0 / dt;
      const double qterm =
          static_cast<double>(rec.queue_bytes) * 8.0 /
          (rec.link_rate * static_cast<double>(params_.hpcc_t_base) / 1e9);
      const double u = qterm + tx_rate_bps / rec.link_rate;
      max_u = std::max(max_u, u);
    }
    p.hops[rec.node] = {rec.tx_bytes, rec.timestamp};
  }
  if (max_u > params_.hpcc_eta) {
    // Multiplicative decrease toward eta/U, damped so one ACK does not
    // crater the window.
    const double target = params_.hpcc_eta / max_u;
    p.cwnd = std::max(params_.cwnd_min, p.cwnd * (0.5 + 0.5 * target));
  } else {
    p.cwnd = std::min(params_.cwnd_max, p.cwnd + params_.additive_increase);
  }
}

bool PathSet::on_timeout(PathState& p) {
  if (++p.consec_timeouts < params_.fail_threshold) return false;
  // Declare the path failed: redraw the source port (new ECMP path), reset
  // state. Recovery cost is a few packet timeouts — milliseconds.
  p.port = next_port_++;
  p.consec_timeouts = 0;
  p.srtt = 0;
  p.cwnd = params_.cwnd_init;
  p.inflight = 0;  // packets on the dead path no longer hold window
  p.hops.clear();
  ++p.redraws;
  return true;
}

std::uint64_t PathSet::total_redraws() const {
  std::uint64_t total = 0;
  for (const auto& p : paths_) total += p.redraws;
  return total;
}

}  // namespace repro::solar
