// EC durability oracle: the erasure-coded twin of the OracleBoard's
// replica durability check.
//
// The invariant is availability-under-f-failures: every committed data
// cell of every EC VD must remain recoverable — its value either directly
// readable from the fragment's current holder, or decodable from any k of
// the stripe's k+m fragment values (unwritten data cells count as known
// zeros, the codec's absent-as-zero convention). With at most m fragment
// servers down the audit must stay green; with m+1 concurrently down some
// stripe necessarily drops below k known values and the oracle fires —
// that is real data loss, exactly what an m-parity code cannot survive.
//
// The audit reads ground truth: fragment presence straight from each
// block server's SegmentStore (a remapped-but-not-yet-rebuilt fragment is
// honestly absent at its new location) and the caller's `down` set for
// which holders are unreachable. Rows under a torn parity update
// (`EcClient::row_dirty`) are skipped the way a production scrub skips
// cells under active repair — their parity is stale by design and the
// maintenance agent already owns re-encoding them.
#pragma once

#include <set>
#include <vector>

#include "chaos/oracle.h"
#include "net/packet.h"

namespace repro::ebs {
class Cluster;
}

namespace repro::chaos {

/// Audits every EC VD of `cluster` (via each compute node's EcClient
/// directory) and returns one "ec_durability" violation per unrecoverable
/// (vd, stripe, row). `down` is the set of storage-server IPs currently
/// unreachable (fail-stopped / silent); pass an empty set for a
/// post-repair audit. `max_rows_per_vd` bounds the sweep deterministically
/// (first N directory rows in offset order); <= 0 = unbounded.
std::vector<Violation> audit_ec_durability(ebs::Cluster& cluster,
                                           const std::set<net::IpAddr>& down,
                                           TimeNs now,
                                           int max_rows_per_vd = 0);

/// The storage-server IPs of rack `rack` (per the cluster's Clos rack
/// arithmetic) — the down set a whole-rack fail-stop produces.
std::set<net::IpAddr> rack_down_set(ebs::Cluster& cluster, int rack);

/// Rack-domain variant of the durability audit: every server of `rack`
/// fail-stopped at once. Under RackAwareSpread a single rack holds at most
/// ceil((k+m)/racks) fragments of any stripe, so the audit stays green
/// whenever that bound is <= m; the legacy rotated layout makes no such
/// promise and can lose a whole stripe's quorum to one rack.
std::vector<Violation> audit_ec_rack_durability(ebs::Cluster& cluster,
                                                int rack, TimeNs now,
                                                int max_rows_per_vd = 0);

}  // namespace repro::chaos
