#include "chaos/injector.h"

#include "dpu/fpga.h"
#include "ebs/cluster.h"

namespace repro::chaos {

namespace {

int wrap(int index, int count) {
  if (count <= 0) return 0;
  const int m = index % count;
  return m < 0 ? m + count : m;
}

net::Switch* pick(const std::vector<net::Switch*>& v, int index) {
  if (v.empty()) return nullptr;
  return v[static_cast<std::size_t>(wrap(index, static_cast<int>(v.size())))];
}

}  // namespace

Injector::Injector(ebs::Cluster& cluster) : cluster_(cluster) {}

TopologyShape Injector::shape() const {
  const net::Clos& clos = cluster_.clos();
  TopologyShape s;
  s.compute_nodes = cluster_.num_compute();
  s.storage_nodes = cluster_.num_storage();
  s.compute_tors = static_cast<int>(clos.compute_tors.size());
  s.storage_tors = static_cast<int>(clos.storage_tors.size());
  s.compute_spines = static_cast<int>(clos.compute_spines.size());
  s.storage_spines = static_cast<int>(clos.storage_spines.size());
  s.cores = static_cast<int>(clos.cores.size());
  s.replica_ssds =
      s.storage_nodes > 0
          ? cluster_.storage(0).block_server().num_replica_ssds()
          : 0;
  // Only the fully-offloaded generation pushes data through the FPGA
  // pipeline; SOLAR* and the software stacks never touch it. Heterogeneous
  // fleets count as FPGA-bearing if any node runs that generation.
  s.has_fpga = false;
  for (int i = 0; i < s.compute_nodes; ++i) {
    if (stack::has_fpga_datapath(cluster_.compute(i).stack_kind())) {
      s.has_fpga = true;
      break;
    }
  }
  return s;
}

int Injector::home_shard(const FaultTarget& t) const {
  if (cluster_.sharded() == nullptr) return 0;
  if (const net::Device* dev = resolve_device(t)) return dev->shard();
  switch (t.kind) {
    case TargetKind::kStorageSsd:
    case TargetKind::kStorageCpu:
      return cluster_.storage_shard(wrap(t.index, cluster_.num_storage()));
    case TargetKind::kComputeCpu:
    case TargetKind::kComputePcie:
    case TargetKind::kComputeFpga:
      return cluster_.compute_shard(wrap(t.index, cluster_.num_compute()));
    default:
      return 0;
  }
}

net::Device* Injector::resolve_device(const FaultTarget& t) const {
  const net::Clos& clos = cluster_.clos();
  switch (t.kind) {
    case TargetKind::kComputeNic:
      return &cluster_.compute(wrap(t.index, cluster_.num_compute())).nic();
    case TargetKind::kStorageNic:
      return &cluster_.storage(wrap(t.index, cluster_.num_storage())).nic();
    case TargetKind::kComputeTor:
      return pick(clos.compute_tors, t.index);
    case TargetKind::kStorageTor:
      return pick(clos.storage_tors, t.index);
    case TargetKind::kComputeSpine:
      return pick(clos.compute_spines, t.index);
    case TargetKind::kStorageSpine:
      return pick(clos.storage_spines, t.index);
    case TargetKind::kCore:
      return pick(clos.cores, t.index);
    default:
      return nullptr;
  }
}

void Injector::arm(const FaultPlan& plan) {
  armed_.reserve(armed_.size() + plan.events.size());
  for (const FaultEvent& e : plan.events) {
    armed_.push_back(Armed{e});
    const std::size_t slot = armed_.size() - 1;
    Armed& a = armed_[slot];
    // Arm the timers on the target's home shard: apply/revert then run on
    // the worker that owns the device, never racing its event processing.
    a.home = home_shard(e.target);
    sim::ShardScope scope(a.home);
    sim::Engine& eng = cluster_.engine();
    a.eng = &eng;
    a.apply_timer =
        eng.schedule_after(e.at, [this, slot] { apply(armed_[slot]); });
    if (e.duration > 0) {
      a.revert_timer = eng.schedule_after(
          e.at + e.duration, [this, slot] { revert(armed_[slot]); });
    }
  }
}

void Injector::apply(Armed& a) {
  const FaultEvent& e = a.event;
  net::Network& net = cluster_.network();
  a.applied = true;
  applied_.fetch_add(1, std::memory_order_relaxed);
  switch (e.kind) {
    case FaultKind::kLinkFail: {
      net::Device* dev = resolve_device(e.target);
      if (dev == nullptr) break;
      const int port = wrap(e.target.sub < 0 ? 0 : e.target.sub,
                            dev->num_ports());
      net.fail_link(*dev, port);
      break;
    }
    case FaultKind::kDeviceStop: {
      if (net::Device* dev = resolve_device(e.target)) net.fail_device_stop(*dev);
      break;
    }
    case FaultKind::kDeviceSilent: {
      if (net::Device* dev = resolve_device(e.target)) net.set_silent(*dev, true);
      break;
    }
    case FaultKind::kBlackhole: {
      if (net::Device* dev = resolve_device(e.target)) {
        net.set_blackhole(*dev, e.magnitude);
      }
      break;
    }
    case FaultKind::kLoss: {
      if (net::Device* dev = resolve_device(e.target)) {
        net.set_loss_rate(*dev, e.magnitude);
      }
      break;
    }
    case FaultKind::kCorrupt: {
      if (net::Device* dev = resolve_device(e.target)) {
        net.set_corrupt_rate(*dev, e.magnitude);
      }
      break;
    }
    case FaultKind::kDuplicate: {
      if (net::Device* dev = resolve_device(e.target)) {
        net.set_dup_rate(*dev, e.magnitude);
      }
      break;
    }
    case FaultKind::kReorder: {
      if (net::Device* dev = resolve_device(e.target)) {
        net.set_reorder(*dev, e.magnitude, e.param > 0 ? e.param : us(150));
      }
      break;
    }
    case FaultKind::kSsdLatency:
    case FaultKind::kSsdStall: {
      auto& bs = cluster_.storage(wrap(e.target.index, cluster_.num_storage()))
                     .block_server();
      for (int i = 0; i < bs.num_replica_ssds(); ++i) {
        if (e.target.sub >= 0 && i != wrap(e.target.sub, bs.num_replica_ssds()))
          continue;
        if (e.kind == FaultKind::kSsdLatency) {
          bs.replica_ssd(i).set_latency_multiplier(e.magnitude);
        } else {
          bs.replica_ssd(i).set_stalled(true);
        }
      }
      break;
    }
    case FaultKind::kCpuStall: {
      // One-shot: the stall length is the event's duration, applied now.
      const TimeNs dur = e.duration > 0 ? e.duration : ms(100);
      if (e.target.kind == TargetKind::kStorageCpu) {
        cluster_.storage(wrap(e.target.index, cluster_.num_storage()))
            .cpu()
            .stall_all(dur);
      } else {
        cluster_.compute(wrap(e.target.index, cluster_.num_compute()))
            .stack()
            .chaos_stall_cores(dur);
      }
      break;
    }
    case FaultKind::kPcieDegrade: {
      auto& node = cluster_.compute(wrap(e.target.index, cluster_.num_compute()));
      a.saved_magnitude = node.stack().chaos_pcie_degrade(e.magnitude);
      break;
    }
    case FaultKind::kFpgaPreCrcFlip:
    case FaultKind::kFpgaPostCrcFlip:
    case FaultKind::kFpgaCrcEngine: {
      auto& node = cluster_.compute(wrap(e.target.index, cluster_.num_compute()));
      if (dpu::FpgaFaults* faults = node.stack().chaos_fpga_faults()) {
        dpu::FpgaFaults& f = *faults;
        if (e.kind == FaultKind::kFpgaPreCrcFlip) {
          a.saved_magnitude = f.pre_crc_bitflip_rate;
          f.pre_crc_bitflip_rate = e.magnitude;
        } else if (e.kind == FaultKind::kFpgaPostCrcFlip) {
          a.saved_magnitude = f.data_bitflip_rate;
          f.data_bitflip_rate = e.magnitude;
        } else {
          a.saved_magnitude = f.crc_engine_error_rate;
          f.crc_engine_error_rate = e.magnitude;
        }
      }
      break;
    }
  }
}

void Injector::revert(Armed& a) {
  if (a.reverted) return;
  const FaultEvent& e = a.event;
  net::Network& net = cluster_.network();
  a.reverted = true;
  reverted_.fetch_add(1, std::memory_order_relaxed);
  // CAS-max: reverts on different shards race, but the maximum is
  // order-independent, and in a single-shard run this is plain assignment.
  const TimeNs now = cluster_.engine().now();
  TimeNs prev = last_repair_.load(std::memory_order_relaxed);
  while (prev < now && !last_repair_.compare_exchange_weak(
                           prev, now, std::memory_order_relaxed)) {
  }
  switch (e.kind) {
    case FaultKind::kLinkFail: {
      net::Device* dev = resolve_device(e.target);
      if (dev == nullptr) break;
      const int port = wrap(e.target.sub < 0 ? 0 : e.target.sub,
                            dev->num_ports());
      net.repair_link(*dev, port);
      break;
    }
    case FaultKind::kDeviceStop: {
      if (net::Device* dev = resolve_device(e.target)) {
        for (int i = 0; i < dev->num_ports(); ++i) {
          if (dev->port(i).connected()) net.repair_link(*dev, i);
        }
      }
      break;
    }
    case FaultKind::kDeviceSilent: {
      if (net::Device* dev = resolve_device(e.target)) net.set_silent(*dev, false);
      break;
    }
    case FaultKind::kBlackhole: {
      if (net::Device* dev = resolve_device(e.target)) net.set_blackhole(*dev, 0.0);
      break;
    }
    case FaultKind::kLoss: {
      if (net::Device* dev = resolve_device(e.target)) net.set_loss_rate(*dev, 0.0);
      break;
    }
    case FaultKind::kCorrupt: {
      if (net::Device* dev = resolve_device(e.target)) net.set_corrupt_rate(*dev, 0.0);
      break;
    }
    case FaultKind::kDuplicate: {
      if (net::Device* dev = resolve_device(e.target)) net.set_dup_rate(*dev, 0.0);
      break;
    }
    case FaultKind::kReorder: {
      if (net::Device* dev = resolve_device(e.target)) net.set_reorder(*dev, 0.0, 0);
      break;
    }
    case FaultKind::kSsdLatency:
    case FaultKind::kSsdStall: {
      auto& bs = cluster_.storage(wrap(e.target.index, cluster_.num_storage()))
                     .block_server();
      for (int i = 0; i < bs.num_replica_ssds(); ++i) {
        if (e.target.sub >= 0 && i != wrap(e.target.sub, bs.num_replica_ssds()))
          continue;
        if (e.kind == FaultKind::kSsdLatency) {
          bs.replica_ssd(i).set_latency_multiplier(1.0);
        } else {
          bs.replica_ssd(i).set_stalled(false);
        }
      }
      break;
    }
    case FaultKind::kCpuStall:
      break;  // one-shot; nothing to undo
    case FaultKind::kPcieDegrade: {
      cluster_.compute(wrap(e.target.index, cluster_.num_compute()))
          .stack()
          .chaos_pcie_restore(a.saved_magnitude);
      break;
    }
    case FaultKind::kFpgaPreCrcFlip:
    case FaultKind::kFpgaPostCrcFlip:
    case FaultKind::kFpgaCrcEngine: {
      auto& node = cluster_.compute(wrap(e.target.index, cluster_.num_compute()));
      if (dpu::FpgaFaults* faults = node.stack().chaos_fpga_faults()) {
        dpu::FpgaFaults& f = *faults;
        if (e.kind == FaultKind::kFpgaPreCrcFlip) {
          f.pre_crc_bitflip_rate = a.saved_magnitude;
        } else if (e.kind == FaultKind::kFpgaPostCrcFlip) {
          f.data_bitflip_rate = a.saved_magnitude;
        } else {
          f.crc_engine_error_rate = a.saved_magnitude;
        }
      }
      break;
    }
  }
}

void Injector::repair_all() {
  // Runs from the coordinator with every shard quiescent, so touching
  // remote-shard state directly is safe; the shard scope keeps any engine
  // interaction on the fault's home engine.
  for (Armed& a : armed_) {
    sim::ShardScope scope(a.home);
    sim::Engine& eng = a.eng != nullptr ? *a.eng : cluster_.engine();
    if (!a.applied) {
      // Never fired: cancel the onset so it cannot apply post-repair.
      if (a.apply_timer != 0) eng.cancel(a.apply_timer);
      if (a.revert_timer != 0) eng.cancel(a.revert_timer);
      a.reverted = true;
      continue;
    }
    if (a.reverted) continue;
    if (a.revert_timer != 0) eng.cancel(a.revert_timer);
    revert(a);
  }
  const TimeNs now = cluster_.now();
  if (last_repair_.load(std::memory_order_relaxed) < now) {
    last_repair_.store(now, std::memory_order_relaxed);
  }
}

}  // namespace repro::chaos
