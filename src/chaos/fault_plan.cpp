#include "chaos/fault_plan.h"

#include <iterator>
#include <sstream>
#include <utility>

#include "obs/json.h"
#include "obs/json_reader.h"

namespace repro::chaos {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};
constexpr KindName kKindNames[] = {
    {FaultKind::kLinkFail, "link_fail"},
    {FaultKind::kDeviceStop, "device_stop"},
    {FaultKind::kDeviceSilent, "device_silent"},
    {FaultKind::kBlackhole, "blackhole"},
    {FaultKind::kLoss, "loss"},
    {FaultKind::kCorrupt, "corrupt"},
    {FaultKind::kDuplicate, "duplicate"},
    {FaultKind::kReorder, "reorder"},
    {FaultKind::kSsdLatency, "ssd_latency"},
    {FaultKind::kSsdStall, "ssd_stall"},
    {FaultKind::kCpuStall, "cpu_stall"},
    {FaultKind::kPcieDegrade, "pcie_degrade"},
    {FaultKind::kFpgaPreCrcFlip, "fpga_pre_crc_flip"},
    {FaultKind::kFpgaPostCrcFlip, "fpga_post_crc_flip"},
    {FaultKind::kFpgaCrcEngine, "fpga_crc_engine"},
};

struct TargetName {
  TargetKind kind;
  const char* name;
};
constexpr TargetName kTargetNames[] = {
    {TargetKind::kComputeNic, "compute_nic"},
    {TargetKind::kStorageNic, "storage_nic"},
    {TargetKind::kComputeTor, "compute_tor"},
    {TargetKind::kStorageTor, "storage_tor"},
    {TargetKind::kComputeSpine, "compute_spine"},
    {TargetKind::kStorageSpine, "storage_spine"},
    {TargetKind::kCore, "core"},
    {TargetKind::kStorageSsd, "storage_ssd"},
    {TargetKind::kComputeCpu, "compute_cpu"},
    {TargetKind::kStorageCpu, "storage_cpu"},
    {TargetKind::kComputePcie, "compute_pcie"},
    {TargetKind::kComputeFpga, "compute_fpga"},
};

}  // namespace

const char* to_string(FaultKind k) {
  for (const auto& e : kKindNames) {
    if (e.kind == k) return e.name;
  }
  return "?";
}

const char* to_string(TargetKind k) {
  for (const auto& e : kTargetNames) {
    if (e.kind == k) return e.name;
  }
  return "?";
}

bool parse_fault_kind(const std::string& s, FaultKind* out) {
  for (const auto& e : kKindNames) {
    if (s == e.name) {
      *out = e.kind;
      return true;
    }
  }
  return false;
}

bool parse_target_kind(const std::string& s, TargetKind* out) {
  for (const auto& e : kTargetNames) {
    if (s == e.name) {
      *out = e.kind;
      return true;
    }
  }
  return false;
}

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("name").value(name);
  w.key("events").begin_array();
  for (const FaultEvent& e : events) {
    w.begin_object();
    w.key("at_ns").value(static_cast<std::int64_t>(e.at));
    w.key("duration_ns").value(static_cast<std::int64_t>(e.duration));
    w.key("kind").value(to_string(e.kind));
    w.key("target").begin_object();
    w.key("kind").value(to_string(e.target.kind));
    w.key("index").value(e.target.index);
    w.key("sub").value(e.target.sub);
    w.end_object();
    w.key("magnitude").value(e.magnitude);
    w.key("param_ns").value(static_cast<std::int64_t>(e.param));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

// ---------------------------------------------------------------------------
// Replay parser, on the shared obs JSON reader (obs/json_reader.h).

bool plan_from_json(const std::string& text, FaultPlan* out,
                    std::string* err) {
  auto set_err = [err](const std::string& e) {
    if (err != nullptr) *err = e;
    return false;
  };
  obs::JsonValue root;
  obs::JsonReader reader(text);
  if (!reader.parse(&root)) return set_err(reader.error());
  if (root.type != obs::JsonValue::Type::kObject) {
    return set_err("root not object");
  }

  FaultPlan plan;
  if (const obs::JsonValue* n = root.find("name");
      n != nullptr && n->type == obs::JsonValue::Type::kString) {
    plan.name = n->str;
  }
  const obs::JsonValue* events = root.find("events");
  if (events == nullptr || events->type != obs::JsonValue::Type::kArray) {
    return set_err("missing events array");
  }
  for (const obs::JsonValue& ev : events->items) {
    if (ev.type != obs::JsonValue::Type::kObject) {
      return set_err("event not object");
    }
    FaultEvent e;
    double num = 0.0;
    if (!obs::json_number(ev, "at_ns", &num)) {
      return set_err("event missing at_ns");
    }
    e.at = static_cast<TimeNs>(num);
    if (obs::json_number(ev, "duration_ns", &num)) {
      e.duration = static_cast<TimeNs>(num);
    }
    if (obs::json_number(ev, "magnitude", &num)) e.magnitude = num;
    if (obs::json_number(ev, "param_ns", &num)) e.param = static_cast<TimeNs>(num);
    const obs::JsonValue* kind = ev.find("kind");
    if (kind == nullptr || kind->type != obs::JsonValue::Type::kString ||
        !parse_fault_kind(kind->str, &e.kind)) {
      return set_err("bad fault kind");
    }
    const obs::JsonValue* target = ev.find("target");
    if (target == nullptr || target->type != obs::JsonValue::Type::kObject) {
      return set_err("event missing target");
    }
    const obs::JsonValue* tkind = target->find("kind");
    if (tkind == nullptr || tkind->type != obs::JsonValue::Type::kString ||
        !parse_target_kind(tkind->str, &e.target.kind)) {
      return set_err("bad target kind");
    }
    if (obs::json_number(*target, "index", &num)) {
      e.target.index = static_cast<int>(num);
    }
    if (obs::json_number(*target, "sub", &num)) {
      e.target.sub = static_cast<int>(num);
    }
    plan.events.push_back(e);
  }
  *out = std::move(plan);
  return true;
}

// ---------------------------------------------------------------------------
// Seeded generator.

namespace {

/// Switch-role targets with at least one instance in `shape`.
std::vector<TargetKind> switch_roles(const TopologyShape& shape) {
  std::vector<TargetKind> roles;
  if (shape.compute_tors > 0) roles.push_back(TargetKind::kComputeTor);
  if (shape.storage_tors > 0) roles.push_back(TargetKind::kStorageTor);
  if (shape.compute_spines > 0) roles.push_back(TargetKind::kComputeSpine);
  if (shape.storage_spines > 0) roles.push_back(TargetKind::kStorageSpine);
  if (shape.cores > 0) roles.push_back(TargetKind::kCore);
  return roles;
}

int role_count(const TopologyShape& shape, TargetKind k) {
  switch (k) {
    case TargetKind::kComputeNic: return shape.compute_nodes;
    case TargetKind::kStorageNic: return shape.storage_nodes;
    case TargetKind::kComputeTor: return shape.compute_tors;
    case TargetKind::kStorageTor: return shape.storage_tors;
    case TargetKind::kComputeSpine: return shape.compute_spines;
    case TargetKind::kStorageSpine: return shape.storage_spines;
    case TargetKind::kCore: return shape.cores;
    case TargetKind::kStorageSsd: return shape.storage_nodes;
    case TargetKind::kComputeCpu: return shape.compute_nodes;
    case TargetKind::kStorageCpu: return shape.storage_nodes;
    case TargetKind::kComputePcie: return shape.compute_nodes;
    case TargetKind::kComputeFpga: return shape.compute_nodes;
  }
  return 0;
}

}  // namespace

FaultPlan generate_plan(Rng& rng, const GeneratorConfig& cfg,
                        const TopologyShape& shape) {
  FaultPlan plan;
  const std::vector<TargetKind> switches = switch_roles(shape);
  const int span = cfg.max_events - cfg.min_events;
  const int n = cfg.min_events +
                (span > 0 ? static_cast<int>(rng.next_below(
                                static_cast<std::uint64_t>(span + 1)))
                          : 0);
  for (int i = 0; i < n; ++i) {
    FaultEvent e;
    e.at = static_cast<TimeNs>(
        rng.next_below(static_cast<std::uint64_t>(cfg.window)));
    e.duration = cfg.min_duration +
                 static_cast<TimeNs>(rng.next_below(static_cast<std::uint64_t>(
                     cfg.max_duration - cfg.min_duration + 1)));

    // Draw a kind. FPGA faults only where an FPGA data path exists.
    static constexpr FaultKind kNetKinds[] = {
        FaultKind::kLinkFail,  FaultKind::kDeviceSilent,
        FaultKind::kBlackhole, FaultKind::kLoss,
        FaultKind::kCorrupt,   FaultKind::kDuplicate,
        FaultKind::kReorder,   FaultKind::kDeviceStop,
    };
    static constexpr FaultKind kHostKinds[] = {
        FaultKind::kSsdLatency, FaultKind::kSsdStall,
        FaultKind::kCpuStall,   FaultKind::kPcieDegrade,
    };
    const bool host_side = rng.next_below(4) == 0;  // 25% host, 75% fabric
    if (host_side) {
      static constexpr FaultKind kFpgaKinds[] = {
          FaultKind::kFpgaPreCrcFlip,
          FaultKind::kFpgaPostCrcFlip,
          FaultKind::kFpgaCrcEngine,
      };
      const auto pick = rng.next_below(shape.has_fpga ? 7 : 4);
      e.kind = pick < 4 ? kHostKinds[pick] : kFpgaKinds[pick - 4];
    } else {
      e.kind = kNetKinds[rng.next_below(std::size(kNetKinds))];
    }

    // Pick the target by kind (hang-safe plans keep misbehaviour off the
    // NICs: a NIC has no sibling to fail over to).
    switch (e.kind) {
      case FaultKind::kLinkFail: {
        if (cfg.hang_safe || switches.empty()) {
          // Only uplink 0 of a host: the second ToR of the pair survives.
          e.target.kind = rng.next_below(2) == 0 ? TargetKind::kComputeNic
                                                 : TargetKind::kStorageNic;
          e.target.sub = 0;
        } else {
          e.target.kind = switches[rng.next_below(switches.size())];
          e.target.sub = 0;
        }
        break;
      }
      case FaultKind::kDeviceStop:
      case FaultKind::kDeviceSilent:
      case FaultKind::kBlackhole:
      case FaultKind::kLoss:
      case FaultKind::kCorrupt:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder: {
        if (!switches.empty()) {
          e.target.kind = switches[rng.next_below(switches.size())];
        } else {
          e.target.kind = TargetKind::kStorageNic;
        }
        break;
      }
      case FaultKind::kSsdLatency:
      case FaultKind::kSsdStall:
        e.target.kind = TargetKind::kStorageSsd;
        e.target.sub = -1;
        break;
      case FaultKind::kCpuStall:
        e.target.kind = rng.next_below(2) == 0 ? TargetKind::kComputeCpu
                                               : TargetKind::kStorageCpu;
        break;
      case FaultKind::kPcieDegrade:
        e.target.kind = TargetKind::kComputePcie;
        break;
      case FaultKind::kFpgaPreCrcFlip:
      case FaultKind::kFpgaPostCrcFlip:
      case FaultKind::kFpgaCrcEngine:
        e.target.kind = TargetKind::kComputeFpga;
        break;
    }
    const int count = role_count(shape, e.target.kind);
    e.target.index =
        count > 0
            ? static_cast<int>(rng.next_below(static_cast<std::uint64_t>(count)))
            : 0;

    // Magnitude per kind.
    switch (e.kind) {
      case FaultKind::kBlackhole:
        e.magnitude = 0.25 + 0.5 * rng.uniform01();
        break;
      case FaultKind::kLoss:
        e.magnitude = 0.05 + 0.45 * rng.uniform01();
        break;
      case FaultKind::kCorrupt:
      case FaultKind::kDuplicate:
        e.magnitude = 0.02 + 0.18 * rng.uniform01();
        break;
      case FaultKind::kReorder:
        e.magnitude = 0.05 + 0.25 * rng.uniform01();
        e.param = us(50) + static_cast<TimeNs>(rng.next_below(
                               static_cast<std::uint64_t>(us(200))));
        break;
      case FaultKind::kSsdLatency:
        e.magnitude = 2.0 + 18.0 * rng.uniform01();
        break;
      case FaultKind::kPcieDegrade:
        e.magnitude = 2.0 + 6.0 * rng.uniform01();
        break;
      case FaultKind::kFpgaPreCrcFlip:
      case FaultKind::kFpgaPostCrcFlip:
      case FaultKind::kFpgaCrcEngine:
        e.magnitude = 1e-4 + 1e-3 * rng.uniform01();
        break;
      default:
        break;
    }

    if (cfg.hang_safe) {
      // Latency-heavy faults briefly: an SSD stall or CPU stall feeds
      // straight into honest end-to-end latency, and the hang oracle must
      // only ever fire on *stuck* I/O, not on slow-but-moving I/O.
      if (e.kind == FaultKind::kSsdStall || e.kind == FaultKind::kCpuStall ||
          e.kind == FaultKind::kSsdLatency) {
        if (e.duration > ms(300)) e.duration = ms(300);
      }
    }
    if (cfg.stretch_duration > 0 && e.duration < cfg.stretch_duration &&
        e.kind != FaultKind::kSsdStall && e.kind != FaultKind::kCpuStall &&
        e.kind != FaultKind::kSsdLatency) {
      e.duration = cfg.stretch_duration;
    }
    plan.events.push_back(e);
  }
  return plan;
}

}  // namespace repro::chaos
