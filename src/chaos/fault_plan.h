// FaultPlan DSL: declarative, timed, composable fault schedules.
//
// A plan is a list of events, each naming a fault kind, a target resource
// in the cluster (by role + index, never by pointer, so plans serialize and
// replay across processes), an onset time relative to injection, an
// optional duration (0 = held until `Injector::repair_all`), and a
// magnitude/parameter. Plans round-trip through JSON so a fuzz failure can
// be shipped as a replayable repro file, and a seeded generator draws
// random plans for the `sim_fuzz` driver — the FoundationDB-style
// search over the fault x workload space the paper's Table 2 / Fig. 8 /
// Fig. 11 scenarios hand-pick points from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace repro::chaos {

/// Every fault the simulation can express, across every resource layer.
enum class FaultKind {
  kLinkFail,        ///< fail-stop one uplink (carrier loss, detectable)
  kDeviceStop,      ///< fail-stop a whole device (all links down)
  kDeviceSilent,    ///< silent death: forwards nothing, carrier stays up
  kBlackhole,       ///< fraction of flows silently dropped (magnitude)
  kLoss,            ///< iid packet drop probability (magnitude)
  kCorrupt,         ///< wire bit errors, dropped at the NIC FCS (magnitude)
  kDuplicate,       ///< iid duplicate delivery (magnitude)
  kReorder,         ///< delay-a-subset reordering (magnitude + param delay)
  kSsdLatency,      ///< SSD service-time spike (magnitude = multiplier)
  kSsdStall,        ///< SSD serves nothing for the duration (GC pause)
  kCpuStall,        ///< stalls all cores of a pool for the duration
  kPcieDegrade,     ///< internal-PCIe bandwidth / magnitude
  kFpgaPreCrcFlip,  ///< bit flips before the FPGA CRC engine (magnitude)
  kFpgaPostCrcFlip, ///< bit flips after CRC — only the §4.5 software
                    ///< aggregation check can catch these (magnitude)
  kFpgaCrcEngine,   ///< the CRC engine itself miscomputes (magnitude)
};

/// Where a fault lands. `index` selects among same-role resources (taken
/// modulo the actual count at injection time); `port`/`sub` selects a port
/// (kLinkFail) or a replica SSD (kSsd*; -1 = all replicas).
enum class TargetKind {
  kComputeNic,
  kStorageNic,
  kComputeTor,
  kStorageTor,
  kComputeSpine,
  kStorageSpine,
  kCore,
  kStorageSsd,
  kComputeCpu,   ///< the compute node's data-path CPU pool
  kStorageCpu,   ///< the storage node's server CPU pool
  kComputePcie,  ///< the DPU's internal PCIe channel
  kComputeFpga,  ///< the DPU's FPGA pipeline fault knobs
};

struct FaultTarget {
  TargetKind kind = TargetKind::kStorageTor;
  int index = 0;
  int sub = -1;
};

struct FaultEvent {
  TimeNs at = 0;        ///< onset, relative to Injector::arm
  TimeNs duration = 0;  ///< 0 = held until repair_all
  FaultKind kind = FaultKind::kLoss;
  FaultTarget target;
  double magnitude = 0.0;  ///< rate / fraction / multiplier per kind
  TimeNs param = 0;        ///< kReorder: extra delivery delay
};

struct FaultPlan {
  std::string name;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::string to_json() const;
};

const char* to_string(FaultKind k);
const char* to_string(TargetKind k);
bool parse_fault_kind(const std::string& s, FaultKind* out);
bool parse_target_kind(const std::string& s, TargetKind* out);

/// Parses a plan previously produced by `FaultPlan::to_json` (or written by
/// hand). Returns false on malformed input; `err` gets a short reason.
bool plan_from_json(const std::string& text, FaultPlan* out,
                    std::string* err = nullptr);

/// Resource counts the generator draws targets from. Derive one from a
/// live cluster with `Injector::shape()` or fill it by hand.
struct TopologyShape {
  int compute_nodes = 0;
  int storage_nodes = 0;
  int compute_tors = 0;
  int storage_tors = 0;
  int compute_spines = 0;
  int storage_spines = 0;
  int cores = 0;
  int replica_ssds = 0;  ///< per storage node
  bool has_fpga = false; ///< stack runs the FPGA data path
};

struct GeneratorConfig {
  int min_events = 1;
  int max_events = 4;
  TimeNs window = ms(800);        ///< onsets drawn from [0, window)
  TimeNs min_duration = ms(50);
  TimeNs max_duration = ms(600);
  /// Constrain the draw so a healthy SOLAR stack is guaranteed hang-free
  /// (Table 2's claim), letting the harness arm the solar-hang oracle:
  /// silent/blackhole/loss faults hit switches only (never a NIC, which
  /// has no path diversity), link-fails take only uplink 0 (the pair
  /// survives), and latency-heavy SSD/CPU faults are duration-capped so
  /// honest latency stays well under the 1 s hang threshold.
  bool hang_safe = true;
  /// Planted-bug hunting: stretch fault durations past the hang threshold
  /// so a stack that cannot fail over is forced over the line.
  TimeNs stretch_duration = 0;  ///< 0 = off; else every duration >= this
};

/// Draws a seeded random plan. Identical (rng state, cfg, shape) inputs
/// produce identical plans — the fuzzer's reproducibility contract.
FaultPlan generate_plan(Rng& rng, const GeneratorConfig& cfg,
                        const TopologyShape& shape);

}  // namespace repro::chaos
