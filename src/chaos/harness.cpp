#include "chaos/harness.h"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "chaos/ec_oracle.h"
#include "chaos/injector.h"
#include "obs/obs.h"
#include "workload/fio.h"

namespace repro::chaos {

using transport::IoCompleteFn;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;

std::string RunReport::signature() const {
  std::ostringstream os;
  os << "executed=" << executed << ",end=" << end_time
     << ",done=" << ios_completed << ",err=" << errors << ",hang=" << hangs
     << ",crc=" << crc_checks << ",viol=" << violations.size();
  return os.str();
}

bool hang_oracle_applicable(ebs::StackKind stack, const FaultPlan& plan) {
  if (!stack::solar_family(stack)) {
    return false;  // on software stacks hangs are the Table 2 *signal*
  }
  auto is_switch = [](TargetKind k) {
    switch (k) {
      case TargetKind::kComputeTor:
      case TargetKind::kStorageTor:
      case TargetKind::kComputeSpine:
      case TargetKind::kStorageSpine:
      case TargetKind::kCore:
        return true;
      default:
        return false;
    }
  };
  int outage_events = 0;  // faults that can dead-end a whole ECMP tier
  for (const FaultEvent& e : plan.events) {
    switch (e.kind) {
      case FaultKind::kDeviceStop:
      case FaultKind::kDeviceSilent:
        // Even SOLAR cannot route around *every* device of a tier being
        // dead at once; allow at most one such event, on a switch, bounded.
        if (!is_switch(e.target.kind)) return false;
        if (e.duration <= 0 || e.duration > ms(700)) return false;
        if (++outage_events > 1) return false;
        break;
      case FaultKind::kBlackhole:
      case FaultKind::kLoss:
      case FaultKind::kCorrupt:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
        // Probabilistic faults must sit where path diversity can dodge
        // them; a NIC has no sibling.
        if (!is_switch(e.target.kind)) return false;
        break;
      case FaultKind::kLinkFail:
        if (e.target.sub != 0) return false;  // keep the pair's second leg
        break;
      case FaultKind::kSsdLatency:
      case FaultKind::kSsdStall:
      case FaultKind::kCpuStall:
        // These feed straight into honest latency: bound them so slow
        // never masquerades as stuck.
        if (e.duration <= 0 || e.duration > ms(400)) return false;
        break;
      case FaultKind::kPcieDegrade:
      case FaultKind::kFpgaPreCrcFlip:
      case FaultKind::kFpgaPostCrcFlip:
      case FaultKind::kFpgaCrcEngine:
        break;
    }
  }
  return true;
}

ebs::ScenarioSpec HarnessConfig::scenario() const {
  ebs::ScenarioSpec spec;
  spec.name = "chaos";
  spec.compute_nodes = compute_nodes;
  spec.storage_nodes = storage_nodes;
  spec.servers_per_rack = servers_per_rack > 0
                              ? servers_per_rack
                              : std::max(1, (storage_nodes + 1) / 2);
  spec.stack = stack;
  spec.compute_stacks = compute_stacks;
  spec.seed = seed;
  spec.store_payload = true;  // durability oracle needs bytes
  spec.vd_size_bytes = 1ull << 30;
  spec.workload.block_size = block_size;
  spec.workload.iodepth = iodepth;
  spec.workload.read_fraction = read_fraction;
  spec.workload.real_payload = true;
  spec.workload.max_ios = static_cast<std::uint64_t>(fio_max_ios);
  spec.workload.poisson_iops = poisson_iops;
  spec.shards = shards;
  spec.threads = threads;
  spec.qos = qos;
  spec.ec = ec;
  spec.placement = placement;
  return spec;
}

namespace {

/// Storage-server IPs unreachable at `now` under `plan` (armed at
/// `armed_at`): fail-stop and silent-death NIC faults still in their
/// window. This is the ground-truth down set the EC audit measures
/// against — derived from the plan, not from probe state, so the oracle
/// never trusts the subsystem it is checking.
std::set<net::IpAddr> storage_down_at(ebs::Cluster& cluster,
                                      const FaultPlan& plan, TimeNs armed_at,
                                      TimeNs now) {
  std::set<net::IpAddr> down;
  const int n = cluster.num_storage();
  if (n == 0) return down;
  for (const FaultEvent& e : plan.events) {
    if (e.kind != FaultKind::kDeviceStop && e.kind != FaultKind::kDeviceSilent) {
      continue;
    }
    if (e.target.kind != TargetKind::kStorageNic) continue;
    const TimeNs start = armed_at + e.at;
    if (start > now) continue;
    if (e.duration > 0 && start + e.duration <= now) continue;
    down.insert(cluster.storage(e.target.index % n).nic().ip());
  }
  return down;
}

/// Runs the EC durability audit and files its findings on `board`.
void audit_ec(ebs::Cluster& cluster, const std::set<net::IpAddr>& down,
              TimeNs now, OracleBoard& board) {
  for (const Violation& v : audit_ec_durability(cluster, down, now)) {
    board.add_violation(v.oracle, v.detail, v.at);
  }
}

/// True when every compute node's maintenance agent has drained (no
/// rebuild backlog, repairs or stalls) — the precondition for the
/// post-repair audit with an empty down set.
bool maintenance_idle(ebs::Cluster& cluster) {
  for (int i = 0; i < cluster.num_compute(); ++i) {
    const ec::MaintenanceAgent* agent = cluster.compute(i).maintenance();
    if (agent != nullptr && !agent->idle()) return false;
  }
  return true;
}

/// The sharded twin of `run_chaos`: same lifecycle, but the fleet runs on a
/// ShardedEngine and oracle bookkeeping is split one board per compute node
/// so submit/complete hooks execute only on the node's home shard (each
/// node's VD is driven only by that node, so boards never cross shards).
RunReport run_chaos_sharded(const HarnessConfig& cfg) {
  const ebs::ScenarioSpec spec = cfg.scenario();
  sim::ShardedEngine se(spec.shards, spec.threads > 0 ? spec.threads : 1);
  ebs::ClusterParams params = ebs::params_from(spec);
  params.obs = cfg.obs;
  if (cfg.dpu_cpu_cores > 0) params.dpu.cpu_cores = cfg.dpu_cpu_cores;
  if (cfg.solar_cpu_per_rpc > 0) params.solar.cpu_per_rpc = cfg.solar_cpu_per_rpc;
  if (cfg.disable_solar_failover) {
    params.solar.path.fail_threshold = 1 << 30;  // the planted bug
  }
  ebs::Cluster cluster(se, params);
  if (cfg.obs != nullptr) cfg.obs->attach(se);

  const int nodes = cluster.num_compute();
  std::vector<std::unique_ptr<OracleBoard>> boards;
  for (int i = 0; i < nodes; ++i) {
    boards.push_back(std::make_unique<OracleBoard>(cfg.oracle));
  }
  Injector injector(cluster);
  Rng rng(cfg.seed ^ 0xC4A05F'44D2ull);

  std::vector<std::uint64_t> vds;
  for (int i = 0; i < nodes; ++i) {
    vds.push_back(cluster.create_vd(spec.vd_size_bytes));
    if (cfg.slo_all) cluster.set_slo(vds.back(), cfg.slo);
  }

  // `cluster.engine().now()` routes through the calling thread's shard
  // context, so inside submit/complete hooks it reads the home engine.
  auto wrapped_submit = [&cluster, &boards](int node) {
    OracleBoard* board = boards[static_cast<std::size_t>(node)].get();
    return [&cluster, board, node](IoRequest io, IoCompleteFn done) {
      const std::uint64_t id = board->on_submit(io, cluster.engine().now());
      cluster.compute(node).submit_io(
          std::move(io),
          [&cluster, board, id, done = std::move(done)](IoResult res) {
            board->on_complete(id, res, cluster.engine().now());
            done(std::move(res));
          });
    };
  };

  workload::FioConfig fc;
  fc.vd_id = vds[0];
  fc.vd_size = spec.vd_size_bytes;
  fc.block_size = spec.workload.block_size;
  fc.iodepth = spec.workload.iodepth;
  fc.read_fraction = spec.workload.read_fraction;
  fc.real_payload = spec.workload.real_payload;
  fc.max_ios = spec.workload.max_ios;  // closed loop must not swamp the run
  std::unique_ptr<workload::FioJob> fio;
  {
    sim::ShardScope scope(cluster.compute_shard(0));
    fio = std::make_unique<workload::FioJob>(cluster.engine(),
                                             wrapped_submit(0), fc,
                                             rng.fork(100));
  }

  std::vector<std::unique_ptr<workload::PoissonLoad>> poissons;
  for (int i = 0; i < nodes; ++i) {
    workload::PoissonConfig pc;
    pc.vd_id = vds[static_cast<std::size_t>(i)];
    pc.vd_size = spec.vd_size_bytes;
    pc.iops = spec.workload.poisson_iops;
    pc.read_fraction = spec.workload.read_fraction;
    pc.block_size = spec.workload.block_size;
    pc.real_payload = spec.workload.real_payload;
    sim::ShardScope scope(cluster.compute_shard(i));
    poissons.push_back(std::make_unique<workload::PoissonLoad>(
        cluster.engine(), wrapped_submit(i), pc,
        rng.fork(200 + static_cast<std::uint64_t>(i))));
  }

  for (int i = 0; i < nodes; ++i) {
    sim::ShardScope scope(cluster.compute_shard(i));
    sim::Engine& he = cluster.engine();
    he.at(he.now(), [&fio, &poissons, i] {
      if (i == 0) fio->start();
      poissons[static_cast<std::size_t>(i)]->start();
    });
  }
  se.run_until(cfg.warmup);

  const TimeNs armed_at = se.now();
  injector.arm(cfg.plan);
  se.run_until(se.now() + cfg.active);

  {
    sim::ShardScope scope(cluster.compute_shard(0));
    fio->stop();
  }
  for (int i = 0; i < nodes; ++i) {
    sim::ShardScope scope(cluster.compute_shard(i));
    poissons[static_cast<std::size_t>(i)]->stop();
  }
  // EC durability under the plan's live outages: with the fleet's worst
  // moment behind us but faults not yet repaired, every committed cell
  // must still be recoverable — unless more than m fragments are down.
  if (params.ec.enabled) {
    audit_ec(cluster,
             storage_down_at(cluster, cfg.plan, armed_at, se.now()),
             se.now(), *boards[0]);
  }
  injector.repair_all();
  for (auto& b : boards) b->set_repair_time(injector.last_repair_time());

  // Drain to quiesce in slices so we notice the fleet going idle early.
  const TimeNs deadline = se.now() + cfg.drain_limit;
  while (se.pending() > 0 && se.now() < deadline) {
    se.run_until(std::min(deadline, se.now() + cfg.drain_slice));
  }

  // Post-repair: once the maintenance agents have drained, the fleet must
  // be whole again (every fragment rebuilt or back online).
  if (params.ec.enabled && maintenance_idle(cluster)) {
    audit_ec(cluster, {}, se.now(), *boards[0]);
  }

  std::uint64_t outstanding = 0;
  for (auto& b : boards) {
    b->check_outstanding(se.now(), injector.last_repair_time());
    outstanding += b->outstanding();
  }
  if (outstanding == 0) {
    // Conservation is a fleet-global property; report it once, on node 0.
    if (se.pending() > 0) {
      boards[0]->add_violation("conservation",
                               std::to_string(se.pending()) +
                                   " timers still pending at quiesce",
                               se.now());
    }
    const std::size_t leaked = cluster.network().packets_outstanding();
    if (leaked > 0) {
      boards[0]->add_violation(
          "conservation",
          std::to_string(leaked) + " pooled packets never returned",
          se.now());
    }
  }

  // Durability read-back, one probe batch per node through its own VD.
  if (outstanding == 0 && cfg.oracle.check_crc && cfg.readback_samples > 0) {
    for (int i = 0; i < nodes; ++i) {
      OracleBoard* board = boards[static_cast<std::size_t>(i)].get();
      const auto cells =
          board->stable_cells(static_cast<std::size_t>(cfg.readback_samples));
      sim::ShardScope scope(cluster.compute_shard(i));
      for (const OracleBoard::StableCell& cell : cells) {
        IoRequest io;
        io.vd_id = cell.vd_id;
        io.op = OpType::kRead;
        io.offset = cell.lba;
        io.len = 4096;
        cluster.compute(i).submit_io(
            std::move(io), [&cluster, board, cell](IoResult res) {
              board->check_readback(cell, res, cluster.engine().now());
            });
      }
    }
    se.run();
  }

  RunReport report;
  for (int i = 0; i < nodes; ++i) {
    const auto& v = boards[static_cast<std::size_t>(i)]->violations();
    report.violations.insert(report.violations.end(), v.begin(), v.end());
    report.ios_completed += boards[static_cast<std::size_t>(i)]->completed();
    report.errors += boards[static_cast<std::size_t>(i)]->errors();
    report.hangs += boards[static_cast<std::size_t>(i)]->hangs();
    report.crc_checks += boards[static_cast<std::size_t>(i)]->crc_checks();
  }
  report.faults_applied = static_cast<std::uint64_t>(injector.applied());
  report.faults_reverted = static_cast<std::uint64_t>(injector.reverted());
  report.executed = se.executed();
  report.end_time = se.now();
  return report;
}

}  // namespace

RunReport run_chaos(const HarnessConfig& cfg) {
  if (cfg.shards > 1) return run_chaos_sharded(cfg);
  sim::Engine eng;
  const ebs::ScenarioSpec spec = cfg.scenario();
  ebs::ClusterParams params = ebs::params_from(spec);
  params.obs = cfg.obs;
  if (cfg.dpu_cpu_cores > 0) params.dpu.cpu_cores = cfg.dpu_cpu_cores;
  if (cfg.solar_cpu_per_rpc > 0) params.solar.cpu_per_rpc = cfg.solar_cpu_per_rpc;
  if (cfg.disable_solar_failover) {
    params.solar.path.fail_threshold = 1 << 30;  // the planted bug
  }
  ebs::Cluster cluster(eng, params);
  if (cfg.obs != nullptr) cfg.obs->attach(eng);

  OracleBoard oracle(cfg.oracle);
  Injector injector(cluster);
  Rng rng(cfg.seed ^ 0xC4A05F'44D2ull);

  std::vector<std::uint64_t> vds;
  for (int i = 0; i < cluster.num_compute(); ++i) {
    vds.push_back(cluster.create_vd(spec.vd_size_bytes));
    if (cfg.slo_all) cluster.set_slo(vds.back(), cfg.slo);
  }

  auto wrapped_submit = [&cluster, &oracle, &eng](int node) {
    return [&cluster, &oracle, &eng, node](IoRequest io, IoCompleteFn done) {
      const std::uint64_t id = oracle.on_submit(io, eng.now());
      cluster.compute(node).submit_io(
          std::move(io),
          [&oracle, &eng, id, done = std::move(done)](IoResult res) {
            oracle.on_complete(id, res, eng.now());
            done(std::move(res));
          });
    };
  };

  workload::FioConfig fc;
  fc.vd_id = vds[0];
  fc.vd_size = spec.vd_size_bytes;
  fc.block_size = spec.workload.block_size;
  fc.iodepth = spec.workload.iodepth;
  fc.read_fraction = spec.workload.read_fraction;
  fc.real_payload = spec.workload.real_payload;
  fc.max_ios = spec.workload.max_ios;  // closed loop must not swamp the run
  workload::FioJob fio(eng, wrapped_submit(0), fc, rng.fork(100));

  std::vector<std::unique_ptr<workload::PoissonLoad>> poissons;
  for (int i = 0; i < cluster.num_compute(); ++i) {
    workload::PoissonConfig pc;
    pc.vd_id = vds[static_cast<std::size_t>(i)];
    pc.vd_size = spec.vd_size_bytes;
    pc.iops = spec.workload.poisson_iops;
    pc.read_fraction = spec.workload.read_fraction;
    pc.block_size = spec.workload.block_size;
    pc.real_payload = spec.workload.real_payload;
    poissons.push_back(std::make_unique<workload::PoissonLoad>(
        eng, wrapped_submit(i), pc,
        rng.fork(200 + static_cast<std::uint64_t>(i))));
  }

  eng.at(eng.now(), [&] {
    fio.start();
    for (auto& p : poissons) p->start();
  });
  eng.run_until(cfg.warmup);

  const TimeNs armed_at = eng.now();
  injector.arm(cfg.plan);
  eng.run_until(eng.now() + cfg.active);

  fio.stop();
  for (auto& p : poissons) p->stop();
  // EC durability under the plan's live outages (see the sharded twin).
  if (params.ec.enabled) {
    audit_ec(cluster,
             storage_down_at(cluster, cfg.plan, armed_at, eng.now()),
             eng.now(), oracle);
  }
  injector.repair_all();
  oracle.set_repair_time(injector.last_repair_time());

  // Drain to quiesce in slices so we notice the engine going idle early.
  const TimeNs deadline = eng.now() + cfg.drain_limit;
  while (eng.pending() > 0 && eng.now() < deadline) {
    eng.run_until(std::min(deadline, eng.now() + cfg.drain_slice));
  }

  // Post-repair: once the maintenance agent has drained, the fleet must
  // be whole again (every fragment rebuilt or back online).
  if (params.ec.enabled && maintenance_idle(cluster)) {
    audit_ec(cluster, {}, eng.now(), oracle);
  }

  oracle.check_quiesce(eng, cluster.network(), injector.last_repair_time());

  // Durability read-back: probe a deterministic sample of committed cells
  // through the full stack (post-repair, so probes themselves are clean).
  if (oracle.outstanding() == 0 && cfg.oracle.check_crc &&
      cfg.readback_samples > 0) {
    const auto cells =
        oracle.stable_cells(static_cast<std::size_t>(cfg.readback_samples));
    for (const OracleBoard::StableCell& cell : cells) {
      IoRequest io;
      io.vd_id = cell.vd_id;
      io.op = OpType::kRead;
      io.offset = cell.lba;
      io.len = 4096;
      cluster.compute(0).submit_io(
          std::move(io), [&oracle, &eng, cell](IoResult res) {
            oracle.check_readback(cell, res, eng.now());
          });
    }
    eng.run();
  }

  RunReport report;
  report.violations = oracle.violations();
  report.ios_completed = oracle.completed();
  report.errors = oracle.errors();
  report.hangs = oracle.hangs();
  report.crc_checks = oracle.crc_checks();
  report.faults_applied = static_cast<std::uint64_t>(injector.applied());
  report.faults_reverted = static_cast<std::uint64_t>(injector.reverted());
  report.executed = eng.executed();
  report.end_time = eng.now();
  return report;
}

}  // namespace repro::chaos
