#include "chaos/harness.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "chaos/injector.h"
#include "obs/obs.h"
#include "workload/fio.h"

namespace repro::chaos {

using transport::IoCompleteFn;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;

std::string RunReport::signature() const {
  std::ostringstream os;
  os << "executed=" << executed << ",end=" << end_time
     << ",done=" << ios_completed << ",err=" << errors << ",hang=" << hangs
     << ",crc=" << crc_checks << ",viol=" << violations.size();
  return os.str();
}

bool hang_oracle_applicable(ebs::StackKind stack, const FaultPlan& plan) {
  if (!stack::solar_family(stack)) {
    return false;  // on software stacks hangs are the Table 2 *signal*
  }
  auto is_switch = [](TargetKind k) {
    switch (k) {
      case TargetKind::kComputeTor:
      case TargetKind::kStorageTor:
      case TargetKind::kComputeSpine:
      case TargetKind::kStorageSpine:
      case TargetKind::kCore:
        return true;
      default:
        return false;
    }
  };
  int outage_events = 0;  // faults that can dead-end a whole ECMP tier
  for (const FaultEvent& e : plan.events) {
    switch (e.kind) {
      case FaultKind::kDeviceStop:
      case FaultKind::kDeviceSilent:
        // Even SOLAR cannot route around *every* device of a tier being
        // dead at once; allow at most one such event, on a switch, bounded.
        if (!is_switch(e.target.kind)) return false;
        if (e.duration <= 0 || e.duration > ms(700)) return false;
        if (++outage_events > 1) return false;
        break;
      case FaultKind::kBlackhole:
      case FaultKind::kLoss:
      case FaultKind::kCorrupt:
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
        // Probabilistic faults must sit where path diversity can dodge
        // them; a NIC has no sibling.
        if (!is_switch(e.target.kind)) return false;
        break;
      case FaultKind::kLinkFail:
        if (e.target.sub != 0) return false;  // keep the pair's second leg
        break;
      case FaultKind::kSsdLatency:
      case FaultKind::kSsdStall:
      case FaultKind::kCpuStall:
        // These feed straight into honest latency: bound them so slow
        // never masquerades as stuck.
        if (e.duration <= 0 || e.duration > ms(400)) return false;
        break;
      case FaultKind::kPcieDegrade:
      case FaultKind::kFpgaPreCrcFlip:
      case FaultKind::kFpgaPostCrcFlip:
      case FaultKind::kFpgaCrcEngine:
        break;
    }
  }
  return true;
}

ebs::ScenarioSpec HarnessConfig::scenario() const {
  ebs::ScenarioSpec spec;
  spec.name = "chaos";
  spec.compute_nodes = compute_nodes;
  spec.storage_nodes = storage_nodes;
  spec.servers_per_rack = servers_per_rack;
  spec.stack = stack;
  spec.compute_stacks = compute_stacks;
  spec.seed = seed;
  spec.store_payload = true;  // durability oracle needs bytes
  spec.vd_size_bytes = 1ull << 30;
  spec.workload.block_size = block_size;
  spec.workload.iodepth = iodepth;
  spec.workload.read_fraction = read_fraction;
  spec.workload.real_payload = true;
  spec.workload.max_ios = static_cast<std::uint64_t>(fio_max_ios);
  spec.workload.poisson_iops = poisson_iops;
  return spec;
}

RunReport run_chaos(const HarnessConfig& cfg) {
  sim::Engine eng;
  const ebs::ScenarioSpec spec = cfg.scenario();
  ebs::ClusterParams params = ebs::params_from(spec);
  params.obs = cfg.obs;
  if (cfg.disable_solar_failover) {
    params.solar.path.fail_threshold = 1 << 30;  // the planted bug
  }
  ebs::Cluster cluster(eng, params);
  if (cfg.obs != nullptr) cfg.obs->attach(eng);

  OracleBoard oracle(cfg.oracle);
  Injector injector(cluster);
  Rng rng(cfg.seed ^ 0xC4A05F'44D2ull);

  std::vector<std::uint64_t> vds;
  for (int i = 0; i < cluster.num_compute(); ++i) {
    vds.push_back(cluster.create_vd(spec.vd_size_bytes));
  }

  auto wrapped_submit = [&cluster, &oracle, &eng](int node) {
    return [&cluster, &oracle, &eng, node](IoRequest io, IoCompleteFn done) {
      const std::uint64_t id = oracle.on_submit(io, eng.now());
      cluster.compute(node).submit_io(
          std::move(io),
          [&oracle, &eng, id, done = std::move(done)](IoResult res) {
            oracle.on_complete(id, res, eng.now());
            done(std::move(res));
          });
    };
  };

  workload::FioConfig fc;
  fc.vd_id = vds[0];
  fc.vd_size = spec.vd_size_bytes;
  fc.block_size = spec.workload.block_size;
  fc.iodepth = spec.workload.iodepth;
  fc.read_fraction = spec.workload.read_fraction;
  fc.real_payload = spec.workload.real_payload;
  fc.max_ios = spec.workload.max_ios;  // closed loop must not swamp the run
  workload::FioJob fio(eng, wrapped_submit(0), fc, rng.fork(100));

  std::vector<std::unique_ptr<workload::PoissonLoad>> poissons;
  for (int i = 0; i < cluster.num_compute(); ++i) {
    workload::PoissonConfig pc;
    pc.vd_id = vds[static_cast<std::size_t>(i)];
    pc.vd_size = spec.vd_size_bytes;
    pc.iops = spec.workload.poisson_iops;
    pc.read_fraction = spec.workload.read_fraction;
    pc.block_size = spec.workload.block_size;
    pc.real_payload = spec.workload.real_payload;
    poissons.push_back(std::make_unique<workload::PoissonLoad>(
        eng, wrapped_submit(i), pc,
        rng.fork(200 + static_cast<std::uint64_t>(i))));
  }

  eng.at(eng.now(), [&] {
    fio.start();
    for (auto& p : poissons) p->start();
  });
  eng.run_until(cfg.warmup);

  injector.arm(cfg.plan);
  eng.run_until(eng.now() + cfg.active);

  fio.stop();
  for (auto& p : poissons) p->stop();
  injector.repair_all();
  oracle.set_repair_time(injector.last_repair_time());

  // Drain to quiesce in slices so we notice the engine going idle early.
  const TimeNs deadline = eng.now() + cfg.drain_limit;
  while (eng.pending() > 0 && eng.now() < deadline) {
    eng.run_until(std::min(deadline, eng.now() + cfg.drain_slice));
  }

  oracle.check_quiesce(eng, cluster.network(), injector.last_repair_time());

  // Durability read-back: probe a deterministic sample of committed cells
  // through the full stack (post-repair, so probes themselves are clean).
  if (oracle.outstanding() == 0 && cfg.oracle.check_crc &&
      cfg.readback_samples > 0) {
    const auto cells =
        oracle.stable_cells(static_cast<std::size_t>(cfg.readback_samples));
    for (const OracleBoard::StableCell& cell : cells) {
      IoRequest io;
      io.vd_id = cell.vd_id;
      io.op = OpType::kRead;
      io.offset = cell.lba;
      io.len = 4096;
      cluster.compute(0).submit_io(
          std::move(io), [&oracle, &eng, cell](IoResult res) {
            oracle.check_readback(cell, res, eng.now());
          });
    }
    eng.run();
  }

  RunReport report;
  report.violations = oracle.violations();
  report.ios_completed = oracle.completed();
  report.errors = oracle.errors();
  report.hangs = oracle.hangs();
  report.crc_checks = oracle.crc_checks();
  report.faults_applied = static_cast<std::uint64_t>(injector.applied());
  report.faults_reverted = static_cast<std::uint64_t>(injector.reverted());
  report.executed = eng.executed();
  report.end_time = eng.now();
  return report;
}

}  // namespace repro::chaos
