#include "chaos/oracle.h"

#include <algorithm>

#include "common/crc32.h"
#include "net/network.h"
#include "sim/engine.h"

namespace repro::chaos {

using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

void OracleBoard::add_violation(std::string oracle, std::string detail,
                                TimeNs at) {
  violations_.push_back({std::move(oracle), std::move(detail), at});
}

std::uint64_t OracleBoard::on_submit(const IoRequest& io, TimeNs now) {
  const std::uint64_t id = next_id_++;
  PendingIo p;
  p.op = io.op;
  p.issued_at = now;
  p.vd_id = io.vd_id;
  if (io.op == OpType::kWrite) {
    for (const transport::DataBlock& blk : io.payload) {
      if (!blk.has_payload()) continue;
      p.lbas.push_back(blk.lba);
      // Shadow CRC captured at submit and compared at completion/read-back.
      // These feed run signatures, so they lean on the src/kernels guarantee
      // that every dispatch tier computes bit-identical CRCs.
      p.crcs.push_back(crc32_raw(blk.data));
      ShadowCell& cell = shadow_[CellKey{io.vd_id, blk.lba}];
      if (++cell.writers_inflight > 1) {
        // Two writes racing for one cell: the committed contents depend on
        // arrival order deep in the stack; stop judging this cell.
        cell.tainted = true;
      }
    }
  } else {
    for (std::uint64_t off = io.offset; off < io.offset + io.len;
         off += 4096) {
      auto it = shadow_.find(CellKey{io.vd_id, off});
      p.lbas.push_back(off);
      // UINT64_MAX = "not judgeable at submit time"; a cell committed
      // *after* this read was issued must not be held against the read.
      p.epochs.push_back(it != shadow_.end() && it->second.committed &&
                                 !it->second.tainted
                             ? it->second.epoch
                             : UINT64_MAX);
    }
  }
  outstanding_.emplace(id, std::move(p));
  return id;
}

void OracleBoard::on_complete(std::uint64_t id, const IoResult& res,
                              TimeNs now) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    add_violation("exactly_once",
                  finished_.contains(id)
                      ? "duplicate completion for io " + std::to_string(id)
                      : "completion for unknown io " + std::to_string(id),
                  now);
    return;
  }
  PendingIo p = std::move(it->second);
  outstanding_.erase(it);
  finished_.emplace(id, true);
  ++completed_;
  if (res.status != StorageStatus::kOk) ++errors_;

  const TimeNs latency = now - p.issued_at;
  if (latency >= cfg_.hang_threshold) {
    ++hangs_;
    if (cfg_.hang_oracle) {
      add_violation("hang",
                    "io " + std::to_string(id) + " took " +
                        std::to_string(latency / 1000000) + " ms",
                    now);
    }
  }
  if (repair_time_ > 0 && now > repair_time_ + cfg_.recovery_slo) {
    add_violation("slo",
                  "io " + std::to_string(id) + " completed " +
                      std::to_string((now - repair_time_) / 1000000) +
                      " ms after the last repair (slo " +
                      std::to_string(cfg_.recovery_slo / 1000000) + " ms)",
                  now);
  }

  if (p.op == OpType::kWrite) {
    const bool ok = res.status == StorageStatus::kOk;
    for (std::size_t i = 0; i < p.lbas.size(); ++i) {
      ShadowCell& cell = shadow_[CellKey{p.vd_id, p.lbas[i]}];
      --cell.writers_inflight;
      ++cell.epoch;
      if (!ok) {
        // A failed write may have landed on some replicas: contents are
        // ambiguous from here on.
        cell.tainted = true;
      } else if (!cell.tainted) {
        cell.crc = p.crcs[i];
        cell.committed = true;
      }
    }
  } else if (cfg_.check_crc && res.status == StorageStatus::kOk) {
    for (const transport::DataBlock& blk : res.read_data) {
      if (!blk.has_payload()) continue;
      // Match the returned block to the epoch captured at submit.
      auto pos = std::find(p.lbas.begin(), p.lbas.end(), blk.lba);
      if (pos == p.lbas.end()) continue;
      const std::uint64_t want_epoch =
          p.epochs[static_cast<std::size_t>(pos - p.lbas.begin())];
      if (want_epoch == UINT64_MAX) continue;
      auto cit = shadow_.find(CellKey{p.vd_id, blk.lba});
      if (cit == shadow_.end() || cit->second.tainted ||
          cit->second.epoch != want_epoch) {
        continue;  // a write raced this read; not judgeable
      }
      ++crc_checks_;
      if (crc32_raw(blk.data) != cit->second.crc) {
        add_violation("durability",
                      "read of vd " + std::to_string(p.vd_id) + " lba " +
                          std::to_string(blk.lba) +
                          " returned data whose CRC differs from the acked "
                          "write",
                      now);
      }
    }
  }
}

void OracleBoard::check_outstanding(TimeNs now, TimeNs last_repair) {
  if (outstanding_.empty()) return;
  // Sorted report so violation text is deterministic.
  std::vector<std::uint64_t> ids;
  ids.reserve(outstanding_.size());
  for (const auto& [id, p] : outstanding_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) {
    const PendingIo& p = outstanding_.at(id);
    if (last_repair > 0 && now >= last_repair + cfg_.recovery_slo) {
      add_violation(
          "slo",
          "io " + std::to_string(id) + " (issued at " +
              std::to_string(p.issued_at / 1000000) +
              " ms) still outstanding " +
              std::to_string((now - last_repair) / 1000000) +
              " ms after the last repair",
          now);
    } else {
      add_violation("exactly_once",
                    "io " + std::to_string(id) + " never completed", now);
    }
  }
}

void OracleBoard::check_quiesce(const sim::Engine& engine,
                                const net::Network& net, TimeNs last_repair) {
  const TimeNs now = engine.now();
  if (!outstanding_.empty()) {
    check_outstanding(now, last_repair);
    return;  // leaked packets/timers are implied by the stuck I/Os
  }
  if (engine.pending() > 0) {
    add_violation("conservation",
                  std::to_string(engine.pending()) +
                      " timers still pending at quiesce",
                  now);
  }
  if (net.packet_pool().outstanding() > 0) {
    add_violation("conservation",
                  std::to_string(net.packet_pool().outstanding()) +
                      " pooled packets never returned",
                  now);
  }
}

std::vector<OracleBoard::StableCell> OracleBoard::stable_cells(
    std::size_t max) const {
  std::vector<StableCell> cells;
  for (const auto& [key, cell] : shadow_) {
    if (!cell.committed || cell.tainted || cell.writers_inflight != 0)
      continue;
    cells.push_back({key.vd_id, key.lba, cell.crc});
  }
  // The shadow map's iteration order is not part of the determinism
  // contract; sort so replays probe identical cells.
  std::sort(cells.begin(), cells.end(),
            [](const StableCell& a, const StableCell& b) {
              return a.vd_id != b.vd_id ? a.vd_id < b.vd_id : a.lba < b.lba;
            });
  if (cells.size() > max) cells.resize(max);
  return cells;
}

void OracleBoard::check_readback(const StableCell& cell, const IoResult& res,
                                 TimeNs now) {
  if (res.status != StorageStatus::kOk) {
    add_violation("durability",
                  "read-back of vd " + std::to_string(cell.vd_id) + " lba " +
                      std::to_string(cell.lba) + " failed with status " +
                      std::to_string(static_cast<int>(res.status)),
                  now);
    return;
  }
  for (const transport::DataBlock& blk : res.read_data) {
    if (blk.lba != cell.lba) continue;
    if (!blk.has_payload()) break;
    ++crc_checks_;
    if (crc32_raw(blk.data) != cell.crc) {
      add_violation("durability",
                    "read-back of vd " + std::to_string(cell.vd_id) +
                        " lba " + std::to_string(cell.lba) +
                        " returned different bytes than the acked write",
                    now);
    }
    return;
  }
  add_violation("durability",
                "read-back of vd " + std::to_string(cell.vd_id) + " lba " +
                    std::to_string(cell.lba) + " returned no payload",
                now);
}

}  // namespace repro::chaos
