// Injector: applies a FaultPlan to a live cluster through engine timers.
//
// Every apply/revert is an ordinary engine event, so a chaos run is exactly
// as deterministic as a fault-free one: identical (seed, plan) inputs give
// bit-identical schedules. Reverts are *kind-specific* — repairing a
// blackhole leaves a concurrently-injected silent death in place — so
// plans compose faults freely on one device (Table 2's "reboot" is a
// fail-stop whose repair coincides with a silent-death onset).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "chaos/fault_plan.h"
#include "sim/engine.h"

namespace repro::ebs {
class Cluster;
}
namespace repro::net {
class Device;
}

namespace repro::chaos {

class Injector {
 public:
  explicit Injector(ebs::Cluster& cluster);

  /// Resource counts of the attached cluster (feed to `generate_plan`).
  TopologyShape shape() const;

  /// Schedules every event of `plan` relative to the engine's current
  /// time. Events with duration > 0 also schedule their revert. May be
  /// called once per run.
  void arm(const FaultPlan& plan);

  /// Immediately reverts every active fault and cancels every not-yet-
  /// applied event. After this the cluster is back to nominal (modulo
  /// link-detection / reconvergence delays already in flight).
  void repair_all();

  /// Engine time of the most recent revert (applied or via repair_all);
  /// 0 if nothing has been reverted yet. The recovery-SLO oracle measures
  /// from here.
  TimeNs last_repair_time() const {
    return last_repair_.load(std::memory_order_relaxed);
  }

  int applied() const { return applied_.load(std::memory_order_relaxed); }
  int reverted() const { return reverted_.load(std::memory_order_relaxed); }

 private:
  struct Armed {
    FaultEvent event;
    sim::TimerId apply_timer = 0;
    sim::TimerId revert_timer = 0;
    /// Home shard of the target: the timers live on this shard's engine, so
    /// apply/revert mutate device state only from the worker that owns it.
    int home = 0;
    sim::Engine* eng = nullptr;  ///< the home shard's engine
    bool applied = false;
    bool reverted = false;
    double saved_magnitude = 0.0;  ///< pre-fault knob value for restore
  };

  void apply(Armed& a);
  void revert(Armed& a);
  net::Device* resolve_device(const FaultTarget& t) const;
  int home_shard(const FaultTarget& t) const;

  ebs::Cluster& cluster_;
  std::vector<Armed> armed_;
  // Counters are bumped from whichever shard a fault fires on; the totals
  // (and the max repair time) are order-independent, so relaxed atomics
  // keep the report deterministic.
  std::atomic<TimeNs> last_repair_{0};
  std::atomic<int> applied_{0};
  std::atomic<int> reverted_{0};
};

}  // namespace repro::chaos
