// Invariant oracles checked during and after a chaos run.
//
//  * exactly-once  — every submitted I/O completes exactly once; a second
//    completion or a completion for an unknown id is a violation.
//  * durability    — every acked write is readable with a matching CRC.
//    The board keeps a shadow model of committed 4 KB cells; concurrent
//    overlapping writes taint a cell permanently (committed contents are
//    ambiguous) and epoch counters void read checks that raced a write.
//  * recovery SLO  — once every fault is repaired, no I/O stays
//    outstanding (or completes) later than `recovery_slo` past the repair.
//  * hang (opt-in) — Table 2's SOLAR claim: no I/O ever exceeds the 1 s
//    hang threshold. Armed only for SOLAR-family stacks under hang-safe
//    plans; on software stacks hangs are the *expected* Table 2 signal.
//  * conservation  — at quiesce the engine has no pending timers and the
//    packet pool has no outstanding packets (nothing leaked).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "transport/message.h"

namespace repro::sim {
class Engine;
}
namespace repro::net {
class Network;
}

namespace repro::chaos {

struct OracleConfig {
  /// Post-repair completion deadline. Sized to absorb kernel-TCP RTO
  /// backoff (min_rto 200 ms doubling across a ~1.5 s outage) with room
  /// to spare: honest-but-slow recovery is not a violation, stuck I/O is.
  TimeNs recovery_slo = seconds(8);
  bool check_crc = true;
  /// Arm the hang oracle (SOLAR-family stacks under hang-safe plans only).
  bool hang_oracle = false;
  TimeNs hang_threshold = seconds(1);
};

struct Violation {
  std::string oracle;  ///< "exactly_once", "durability", "slo", "hang", ...
  std::string detail;
  TimeNs at = 0;
};

class OracleBoard {
 public:
  explicit OracleBoard(OracleConfig cfg) : cfg_(cfg) {}

  /// Wrap a workload's submit path: call on_submit before handing the I/O
  /// down, and on_complete from inside the completion callback.
  std::uint64_t on_submit(const transport::IoRequest& io, TimeNs now);
  void on_complete(std::uint64_t id, const transport::IoResult& res,
                   TimeNs now);

  /// Call once after Injector::repair_all: completions later than
  /// `t + recovery_slo` then count as SLO violations.
  void set_repair_time(TimeNs t) { repair_time_ = t; }

  /// End-of-run checks; `last_repair` is Injector::last_repair_time().
  void check_quiesce(const sim::Engine& engine, const net::Network& net,
                     TimeNs last_repair);

  /// The stuck-I/O half of `check_quiesce` alone. Sharded runs keep one
  /// board per compute node and call this on each, then do the global
  /// conservation checks (engine timers, pooled packets) once per fleet.
  void check_outstanding(TimeNs now, TimeNs last_repair);

  /// Stable committed cells suitable for a read-back probe: untainted,
  /// with the epoch captured so a racing write voids the sample.
  struct StableCell {
    std::uint64_t vd_id = 0;
    std::uint64_t lba = 0;
    std::uint32_t crc = 0;
  };
  std::vector<StableCell> stable_cells(std::size_t max) const;
  /// Verify one read-back result against the shadow (call at probe
  /// completion). Mismatch or error is a durability violation.
  void check_readback(const StableCell& cell, const transport::IoResult& res,
                      TimeNs now);

  std::uint64_t submitted() const { return next_id_ - 1; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t hangs() const { return hangs_; }
  std::uint64_t outstanding() const { return outstanding_.size(); }
  std::uint64_t crc_checks() const { return crc_checks_; }

  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  void add_violation(std::string oracle, std::string detail, TimeNs at);

 private:
  struct CellKey {
    std::uint64_t vd_id;
    std::uint64_t lba;
    bool operator==(const CellKey&) const = default;
  };
  struct CellKeyHash {
    std::size_t operator()(const CellKey& k) const {
      std::uint64_t h = k.vd_id * 0x9E3779B97F4A7C15ull;
      h ^= k.lba + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h * 0xFF51AFD7ED558CCDull);
    }
  };
  struct ShadowCell {
    std::uint32_t crc = 0;
    std::uint64_t epoch = 0;   ///< bumps on every commit
    int writers_inflight = 0;  ///< > 1 at any instant => tainted
    bool committed = false;
    bool tainted = false;
  };
  struct PendingIo {
    transport::OpType op;
    TimeNs issued_at = 0;
    // Write: per-cell CRCs captured at submit. Read: per-cell epochs.
    std::vector<std::uint64_t> lbas;
    std::vector<std::uint32_t> crcs;
    std::vector<std::uint64_t> epochs;
    std::uint64_t vd_id = 0;
  };

  OracleConfig cfg_;
  TimeNs repair_time_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t hangs_ = 0;
  std::uint64_t crc_checks_ = 0;
  std::unordered_map<std::uint64_t, PendingIo> outstanding_;
  std::unordered_map<std::uint64_t, bool> finished_;  ///< id -> seen once
  std::unordered_map<CellKey, ShadowCell, CellKeyHash> shadow_;
  std::vector<Violation> violations_;
};

}  // namespace repro::chaos
