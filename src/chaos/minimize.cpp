#include "chaos/minimize.h"

namespace repro::chaos {

MinimizeResult minimize_plan(
    const FaultPlan& plan,
    const std::function<bool(const FaultPlan&)>& still_fails,
    int max_probes) {
  MinimizeResult res;
  res.plan = plan;
  res.plan.name = plan.name + ".min";

  auto probe = [&](const FaultPlan& candidate) {
    ++res.probes;
    return still_fails(candidate);
  };

  // Phase 1: drop events one at a time until a full pass removes nothing.
  bool changed = true;
  while (changed && res.probes < max_probes) {
    changed = false;
    for (std::size_t i = res.plan.events.size(); i-- > 0;) {
      if (res.plan.events.size() <= 1) break;
      if (res.probes >= max_probes) break;
      FaultPlan candidate = res.plan;
      candidate.events.erase(candidate.events.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (probe(candidate)) {
        res.plan = std::move(candidate);
        changed = true;
      }
    }
  }

  // Phase 2: shrink surviving events' durations (halving descent).
  for (std::size_t i = 0; i < res.plan.events.size(); ++i) {
    while (res.probes < max_probes && res.plan.events[i].duration > ms(100)) {
      FaultPlan candidate = res.plan;
      candidate.events[i].duration /= 2;
      if (!probe(candidate)) break;
      res.plan = std::move(candidate);
    }
  }

  res.converged = res.probes < max_probes;
  return res;
}

}  // namespace repro::chaos
