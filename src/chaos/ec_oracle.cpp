#include "chaos/ec_oracle.h"

#include <map>
#include <sstream>
#include <string>

#include "ebs/cluster.h"
#include "ec/client.h"
#include "sa/segment_table.h"
#include "storage/block_server.h"
#include "storage/segment_store.h"

namespace repro::chaos {

namespace {

constexpr std::uint32_t kCell = ec::EcParams::kCellBytes;
constexpr std::uint32_t kRowsPerSegment = ec::EcClient::kRowsPerSegment;

}  // namespace

std::vector<Violation> audit_ec_durability(ebs::Cluster& cluster,
                                           const std::set<net::IpAddr>& down,
                                           TimeNs now, int max_rows_per_vd) {
  std::vector<Violation> out;

  // Ground truth: fragment bytes live in the block servers' stores.
  std::map<net::IpAddr, const storage::SegmentStore*> stores;
  for (int i = 0; i < cluster.num_storage(); ++i) {
    stores[cluster.storage(i).nic().ip()] =
        &cluster.storage(i).block_server().store();
  }
  // A fragment value is "known" when its holder is up and actually has the
  // cell on disk. Absence is honest: a rebuild target that has not been
  // written yet contributes nothing.
  auto present = [&](const sa::SegmentLocation& loc,
                     std::uint32_t row) -> bool {
    if (loc.block_server == 0) return false;  // past-the-end tail fragment
    if (down.count(loc.block_server) != 0) return false;
    const auto it = stores.find(loc.block_server);
    if (it == stores.end()) return false;
    return it->second
        ->get(loc.segment_id, static_cast<std::uint64_t>(row) * kCell)
        .has_value();
  };

  const sa::SegmentTable& table = cluster.segments();
  for (int node = 0; node < cluster.num_compute(); ++node) {
    const ec::EcClient* ec = cluster.compute(node).ec();
    if (ec == nullptr) continue;
    for (const auto& [vd, dir] : ec->directory()) {
      const auto info = table.ec_info(vd);
      if (!info.has_value()) continue;
      const int k = info->k;
      const int m = info->m;
      int audited = 0;
      std::vector<sa::SegmentLocation> frags;  // reused across the row sweep
      for (const auto& [rowid, mask] : dir.rows) {
        if (max_rows_per_vd > 0 && audited >= max_rows_per_vd) break;
        ++audited;
        const auto stripe = static_cast<std::uint32_t>(rowid / kRowsPerSegment);
        const auto row = static_cast<std::uint32_t>(rowid % kRowsPerSegment);
        // Data offset of the row's first cell — `row_dirty` keys on it.
        const std::uint64_t data_off =
            static_cast<std::uint64_t>(stripe) * k *
                sa::SegmentTable::kSegmentBytes +
            static_cast<std::uint64_t>(row) * kCell;
        if (ec->row_dirty(vd, data_off)) continue;  // under active repair
        // A held row lock means a write/repair never acknowledged (e.g.
        // wedged against a dead server): durability is not owed yet.
        if (ec->row_busy(vd, stripe, row)) continue;
        table.ec_fragments(vd, stripe, &frags);
        int known = 0;
        for (int c = 0; c < k; ++c) {
          if ((mask & (1u << c)) == 0) {
            ++known;  // never written: known zero, no read needed
          } else if (present(frags[static_cast<std::size_t>(c)], row)) {
            ++known;
          }
        }
        for (int q = 0; q < m; ++q) {
          if (present(frags[static_cast<std::size_t>(k + q)], row)) ++known;
        }
        if (known < k) {
          std::ostringstream os;
          os << "vd " << vd << " stripe " << stripe << " row " << row
             << ": " << known << " of " << (k + m)
             << " fragment values recoverable, need " << k;
          out.push_back(Violation{"ec_durability", os.str(), now});
        }
      }
    }
  }
  return out;
}

std::set<net::IpAddr> rack_down_set(ebs::Cluster& cluster, int rack) {
  std::set<net::IpAddr> down;
  for (int i = 0; i < cluster.num_storage(); ++i) {
    if (cluster.clos().rack_of_server(i) == rack) {
      down.insert(cluster.storage(i).nic().ip());
    }
  }
  return down;
}

std::vector<Violation> audit_ec_rack_durability(ebs::Cluster& cluster,
                                                int rack, TimeNs now,
                                                int max_rows_per_vd) {
  return audit_ec_durability(cluster, rack_down_set(cluster, rack), now,
                             max_rows_per_vd);
}

}  // namespace repro::chaos
