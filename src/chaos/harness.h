// Chaos harness: one (stack, seed, plan, workload) run under full oracle
// supervision.
//
// Lifecycle: build a small cluster with real payloads → closed-loop fio
// plus an open-loop Poisson stream per compute node, submits wrapped by
// the OracleBoard → warmup → arm the plan → active fault window →
// repair_all → drain to quiesce (bounded) → quiesce checks → durability
// read-back of a deterministic sample of committed cells. The RunReport
// carries a determinism signature — two runs of the same config must match
// it bit-for-bit, faults and all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/oracle.h"
#include "ebs/cluster.h"
#include "ebs/scenario.h"
#include "qos/slo.h"

namespace repro::obs {
class Obs;
}

namespace repro::chaos {

struct HarnessConfig {
  ebs::StackKind stack = ebs::StackKind::kSolar;
  /// Per-node stack assignment for heterogeneous fleets (mid-rollout
  /// chaos); empty = homogeneous `stack`.
  std::vector<ebs::StackKind> compute_stacks;
  std::uint64_t seed = 1;
  FaultPlan plan;

  // Topology (kept small: fault coverage, not throughput, is the point).
  int compute_nodes = 2;
  int storage_nodes = 4;
  /// Rack width. 0 (default) derives a two-rack storage pod from
  /// `storage_nodes` — the same ⌈n/2⌉ the harness used to hardcode as 2
  /// for its 4-node default, but now one knob instead of two that could
  /// silently disagree (net::ClosConfig defaults to 8/rack on its own).
  int servers_per_rack = 0;

  // Workload: one open-loop Poisson stream per compute node (rate-bounded,
  // and open-loop arrivals keep probing a broken path the way guests do)
  // plus one capped closed-loop fio job for queue-depth backpressure.
  int iodepth = 4;
  int fio_max_ios = 400;
  double poisson_iops = 1500.0;  ///< per compute node
  std::uint32_t block_size = 8192;
  double read_fraction = 0.3;

  // Admission/scheduling layer under chaos: rejection storms must not
  // break exactly-once or recovery oracles (early-rejected I/Os complete
  // with kRejected, which the oracle counts as an error, not a loss).
  qos::QosParams qos;
  /// Erasure-coded fleet (`ec.enabled`): the run additionally audits EC
  /// durability — mid-run against the fault plan's live storage outages
  /// (any m concurrent fragment losses must stay recoverable; m+1 fires
  /// "ec_durability") and again at post-repair quiesce once the
  /// maintenance agents have drained.
  ec::EcParams ec;
  /// Cluster-level placement knobs; forwarded into the scenario so chaos
  /// runs exercise the same policies as every other harness.
  placement::PlacementParams placement;
  bool slo_all = false;  ///< attach `slo` to every VD the harness creates
  qos::SloSpec slo;
  /// Capacity throttle for rejection-storm runs: saturating the default
  /// six-core DPU takes offered loads too big to simulate cheaply, so
  /// storms shrink the node instead (0 = stack default).
  int dpu_cpu_cores = 0;
  TimeNs solar_cpu_per_rpc = 0;

  // Phases.
  TimeNs warmup = ms(50);
  TimeNs active = seconds(1);     ///< window the plan plays out in
  TimeNs drain_slice = ms(100);
  TimeNs drain_limit = seconds(30);  ///< give up draining after this

  OracleConfig oracle;
  int readback_samples = 48;

  /// Fabric partition for the sharded engine; 1 = the classic single-engine
  /// harness, bit-identical to before the knob existed. With shards > 1 the
  /// run executes on a ShardedEngine with one oracle board per compute node
  /// (node-affine, so oracle bookkeeping stays on the node's home shard).
  int shards = 1;
  /// Worker threads for the sharded run. Purely a speed knob: the report
  /// signature is a function of the config (including `shards`), never of
  /// `threads` — the determinism sweep asserts it.
  int threads = 1;

  /// Planted bug for fuzzer validation: SOLAR never declares a path dead,
  /// so silent failures pin I/O exactly like LUNA — the hang oracle must
  /// catch it.
  bool disable_solar_failover = false;

  /// Optional observability (trace export for repro bundles). Must not
  /// change the run — the determinism sweep asserts it.
  obs::Obs* obs = nullptr;

  /// The declarative scenario this config describes (topology, stacks,
  /// VDs, workload knobs); `run_chaos` builds the cluster from it.
  ebs::ScenarioSpec scenario() const;
};

struct RunReport {
  std::vector<Violation> violations;
  std::uint64_t ios_completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t hangs = 0;
  std::uint64_t crc_checks = 0;
  std::uint64_t faults_applied = 0;
  std::uint64_t faults_reverted = 0;
  // Determinism signature.
  std::uint64_t executed = 0;
  TimeNs end_time = 0;

  bool ok() const { return violations.empty(); }
  /// Compact fingerprint for bit-reproducibility comparisons.
  std::string signature() const;
};

/// Decide whether the hang oracle may be armed for `cfg`: SOLAR-family
/// stack and a plan within the hang-safe envelope (see GeneratorConfig).
bool hang_oracle_applicable(ebs::StackKind stack, const FaultPlan& plan);

RunReport run_chaos(const HarnessConfig& cfg);

}  // namespace repro::chaos
