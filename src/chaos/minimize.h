// Greedy fault-schedule minimization (delta debugging, one-at-a-time).
//
// Given a failing plan and an "does it still fail?" predicate (one full
// deterministic re-run per probe), repeatedly drop events and shrink
// durations while the violation persists. The result is the smallest plan
// this greedy descent reaches — typically one or two events — which ships
// as the replayable JSON repro.
#pragma once

#include <functional>

#include "chaos/fault_plan.h"

namespace repro::chaos {

struct MinimizeResult {
  FaultPlan plan;
  int probes = 0;     ///< predicate invocations spent
  bool converged = false;  ///< false if the probe budget ran out first
};

/// `still_fails` must be deterministic for a fixed plan (the harness
/// guarantees this per (seed, plan)). `max_probes` bounds total re-runs.
MinimizeResult minimize_plan(
    const FaultPlan& plan,
    const std::function<bool(const FaultPlan&)>& still_fails,
    int max_probes = 48);

}  // namespace repro::chaos
