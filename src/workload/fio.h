// fio-style load generators.
//
// `FioJob` is the closed-loop generator used by the paper's testbed
// experiments (Figures 14/15, Table 2): a fixed iodepth of outstanding
// I/Os per job, each completion immediately issuing the next. `PoissonLoad`
// is an open-loop generator for background traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "ebs/metrics.h"
#include "sim/engine.h"
#include "transport/message.h"
#include "workload/size_dist.h"

namespace repro::workload {

using SubmitFn =
    std::function<void(transport::IoRequest, transport::IoCompleteFn)>;

struct FioConfig {
  std::uint64_t vd_id = 1;
  std::uint64_t vd_size = 1ull << 30;
  std::uint32_t block_size = 4096;  ///< 0 = sample from SizeDist::io_sizes()
  int iodepth = 32;
  double read_fraction = 1.0;
  bool sequential = false;
  bool real_payload = false;
  std::uint64_t max_ios = 0;  ///< stop after this many completions (0 = run)
};

class FioJob {
 public:
  FioJob(sim::Engine& engine, SubmitFn submit, FioConfig config, Rng rng);

  void start();
  /// Stops issuing new I/Os (outstanding ones drain).
  void stop() { running_ = false; }

  ebs::MetricSink& metrics() { return metrics_; }
  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }

 private:
  void issue_one();
  transport::IoRequest next_io();

  sim::Engine& engine_;
  SubmitFn submit_;
  FioConfig config_;
  Rng rng_;
  SizeDist sizes_ = SizeDist::io_sizes();
  ebs::MetricSink metrics_;
  bool running_ = false;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t seq_pos_ = 0;
};

struct PoissonConfig {
  std::uint64_t vd_id = 1;
  std::uint64_t vd_size = 1ull << 30;
  double iops = 1000.0;
  double read_fraction = 0.22;  ///< paper: writes are ~3-4x reads
  std::uint32_t block_size = 0;  ///< 0 = sample sizes
  bool real_payload = false;
};

class PoissonLoad {
 public:
  PoissonLoad(sim::Engine& engine, SubmitFn submit, PoissonConfig config,
              Rng rng);
  void start();
  void stop() { running_ = false; }
  ebs::MetricSink& metrics() { return metrics_; }

 private:
  void schedule_next();

  sim::Engine& engine_;
  SubmitFn submit_;
  PoissonConfig config_;
  Rng rng_;
  SizeDist sizes_ = SizeDist::io_sizes();
  ebs::MetricSink metrics_;
  bool running_ = false;
};

}  // namespace repro::workload
