// Workload models distilled from §2.3 (Figures 3-5).
//
// * I/O and RPC sizes step at 4K/16K/64K with everything <= 128K on FN
//   (Fig. 5) — guest databases deliberately issue small I/Os.
// * WRITE requests outnumber READs 3-4x in both volume and rate (Fig. 3).
// * Per-server load follows a diurnal curve peaking around 200K IOPS for
//   hot servers (Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace repro::workload {

/// Discrete size mixture matching the Fig. 5 CDF steps.
class SizeDist {
 public:
  struct Point {
    std::uint32_t bytes;
    double weight;
  };

  /// The paper's I/O-size mixture (~40% at 4K, visible steps at 16K/64K,
  /// nothing above 128K).
  static SizeDist io_sizes();
  /// RPC (FN flow) sizes: I/O sizes after segment splitting — slightly
  /// more mass at small sizes.
  static SizeDist rpc_sizes();

  explicit SizeDist(std::vector<Point> points);

  std::uint32_t sample(Rng& rng) const;
  /// P(size <= bytes), exact over the mixture.
  double cdf(std::uint32_t bytes) const;
  double mean() const;

  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;  // normalized weights
};

/// Write fraction of EBS I/O (writes are 3-4x reads; §2.3).
inline constexpr double kWriteFraction = 0.78;

/// Hourly diurnal multiplier (0..23) for per-server load, shaped like
/// Fig. 4: overnight trough, business-hours plateau, evening peak.
double diurnal_multiplier(int hour);

/// Hot-server IOPS profile of Fig. 4: peak around 200K IOPS.
double fig4_iops(int hour, Rng& rng);

}  // namespace repro::workload
