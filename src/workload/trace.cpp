#include "workload/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/json_reader.h"
#include "workload/size_dist.h"

namespace repro::workload {

using transport::IoRequest;
using transport::IoResult;
using transport::OpType;

bool parse_trace_jsonl(const std::string& text,
                       std::vector<TraceRecord>* out, std::string* error) {
  std::string scratch;
  if (error == nullptr) error = &scratch;
  std::size_t line_no = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    obs::JsonValue root;
    obs::JsonReader reader(line);
    if (!reader.parse(&root) ||
        root.type != obs::JsonValue::Type::kObject) {
      *error = "trace line " + std::to_string(line_no) + ": " +
               (reader.error().empty() ? "not a JSON object"
                                       : reader.error());
      return false;
    }
    TraceRecord r;
    double num = 0.0;
    if (obs::json_number(root, "ts_us", &num)) {
      r.at = static_cast<TimeNs>(num * 1e3);
    }
    if (obs::json_number(root, "vd", &num)) {
      r.vd_index = static_cast<std::uint32_t>(num);
    }
    std::string op;
    if (obs::json_string(root, "op", &op)) {
      if (op == "write") {
        r.op = OpType::kWrite;
      } else if (op == "read") {
        r.op = OpType::kRead;
      } else {
        *error = "trace line " + std::to_string(line_no) +
                 ": unknown op \"" + op + "\"";
        return false;
      }
    }
    if (obs::json_number(root, "offset", &num)) {
      r.offset = static_cast<std::uint64_t>(num);
    }
    if (obs::json_number(root, "len", &num)) {
      r.len = static_cast<std::uint32_t>(num);
    }
    out->push_back(r);
  }
  return true;
}

bool load_trace_file(const std::string& path, std::vector<TraceRecord>* out,
                     std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error != nullptr) *error = "cannot open trace file: " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_trace_jsonl(ss.str(), out, error);
}

std::string trace_to_jsonl(const std::vector<TraceRecord>& records) {
  std::ostringstream os;
  for (const TraceRecord& r : records) {
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("ts_us", static_cast<double>(r.at) / 1e3);
    w.field("vd", r.vd_index);
    w.field("op", r.op == OpType::kWrite ? "write" : "read");
    w.field("offset", r.offset);
    w.field("len", r.len);
    w.end_object();
    os << '\n';
  }
  return os.str();
}

std::vector<TraceRecord> synth_diurnal_trace(const DiurnalTraceConfig& cfg,
                                             Rng rng) {
  // Normalize the Fig. 4 shape so the peak hour runs at exactly peak_iops.
  double peak_mult = 0.0;
  for (int h = 0; h < 24; ++h) {
    peak_mult = std::max(peak_mult, diurnal_multiplier(h));
  }
  std::vector<TraceRecord> records;
  const TimeNs slice = cfg.duration / 24;
  const std::uint32_t vds = std::max<std::uint32_t>(1, cfg.vds);
  const std::uint64_t cells =
      std::max<std::uint64_t>(1, cfg.vd_size / cfg.block_size);
  std::uint32_t next_vd = 0;
  for (int h = 0; h < 24; ++h) {
    const double iops =
        cfg.peak_iops * diurnal_multiplier(h) / peak_mult;
    if (iops <= 0.0) continue;
    double t = static_cast<double>(h) * static_cast<double>(slice);
    const double end = static_cast<double>(h + 1) * static_cast<double>(slice);
    while (true) {
      t += rng.exponential(1e9 / iops);
      if (t >= end) break;
      TraceRecord r;
      r.at = static_cast<TimeNs>(t);
      r.vd_index = next_vd++ % vds;
      r.op = rng.bernoulli(cfg.read_fraction) ? OpType::kRead
                                              : OpType::kWrite;
      r.offset = rng.next_below(cells) * cfg.block_size;
      r.len = cfg.block_size;
      records.push_back(r);
    }
  }
  return records;
}

TraceReplay::TraceReplay(sim::Engine& engine, SubmitFn submit,
                         std::vector<std::uint64_t> vds,
                         std::vector<TraceRecord> records,
                         TraceReplayConfig config, Rng rng)
    : engine_(engine),
      submit_(std::move(submit)),
      vds_(std::move(vds)),
      records_(std::move(records)),
      config_(config),
      rng_(rng) {
  // Replay in time order regardless of file order; stable so same-timestamp
  // records keep their relative order (determinism).
  std::stable_sort(records_.begin(), records_.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.at < b.at;
                   });
}

void TraceReplay::start() {
  if (vds_.empty() || records_.empty()) return;
  running_ = true;
  base_ = engine_.now();
  schedule_from(0);
}

void TraceReplay::schedule_from(std::size_t idx) {
  if (!running_ || idx >= records_.size()) return;
  const TraceRecord& r = records_[idx];
  const TimeNs at =
      base_ + static_cast<TimeNs>(static_cast<double>(r.at) *
                                  config_.time_scale);
  engine_.at(std::max(at, engine_.now()), [this, idx] {
    if (!running_) return;
    issue(records_[idx]);
    schedule_from(idx + 1);
  });
}

void TraceReplay::issue(const TraceRecord& r) {
  IoRequest io;
  io.vd_id = vds_[r.vd_index % vds_.size()];
  io.op = r.op;
  io.len = r.len;
  io.offset = r.offset;
  if (io.op == OpType::kWrite) {
    io.payload = transport::make_placeholder_blocks(io.offset, io.len, 4096);
    if (config_.real_payload) {
      for (auto& blk : io.payload) {
        blk.data.resize(blk.len);
        for (auto& b : blk.data) b = static_cast<std::uint8_t>(rng_.next());
      }
    }
  }
  io.issued_at = engine_.now();
  ++issued_;
  const TimeNs issued_at = engine_.now();
  auto io_copy = io;
  submit_(std::move(io), [this, io_copy = std::move(io_copy),
                          issued_at](IoResult res) {
    ++completed_;
    metrics_.record(io_copy, res, issued_at);
  });
}

}  // namespace repro::workload
