#include "workload/fio.h"

namespace repro::workload {

using transport::IoRequest;
using transport::IoResult;
using transport::OpType;

FioJob::FioJob(sim::Engine& engine, SubmitFn submit, FioConfig config,
               Rng rng)
    : engine_(engine),
      submit_(std::move(submit)),
      config_(config),
      rng_(rng) {}

void FioJob::start() {
  running_ = true;
  for (int i = 0; i < config_.iodepth; ++i) issue_one();
}

IoRequest FioJob::next_io() {
  IoRequest io;
  io.vd_id = config_.vd_id;
  io.op = rng_.bernoulli(config_.read_fraction) ? OpType::kRead
                                                : OpType::kWrite;
  const std::uint32_t bs =
      config_.block_size != 0 ? config_.block_size : sizes_.sample(rng_);
  io.len = bs;
  const std::uint64_t cells = config_.vd_size / bs;
  if (config_.sequential) {
    io.offset = (seq_pos_++ % cells) * bs;
  } else {
    io.offset = rng_.next_below(cells) * bs;
  }
  if (io.op == OpType::kWrite) {
    io.payload = transport::make_placeholder_blocks(io.offset, bs, 4096);
    if (config_.real_payload) {
      for (auto& blk : io.payload) {
        blk.data.resize(blk.len);
        for (auto& b : blk.data) b = static_cast<std::uint8_t>(rng_.next());
      }
    }
  }
  io.issued_at = engine_.now();
  return io;
}

void FioJob::issue_one() {
  if (!running_) return;
  if (config_.max_ios != 0 && issued_ >= config_.max_ios) return;
  ++issued_;
  IoRequest io = next_io();
  const TimeNs issued_at = engine_.now();
  auto io_copy = io;  // metrics need op/len after the move
  submit_(std::move(io), [this, io_copy = std::move(io_copy),
                          issued_at](IoResult res) {
    ++completed_;
    metrics_.record(io_copy, res, issued_at);
    issue_one();  // closed loop
  });
}

PoissonLoad::PoissonLoad(sim::Engine& engine, SubmitFn submit,
                         PoissonConfig config, Rng rng)
    : engine_(engine),
      submit_(std::move(submit)),
      config_(config),
      rng_(rng) {}

void PoissonLoad::start() {
  running_ = true;
  schedule_next();
}

void PoissonLoad::schedule_next() {
  if (!running_ || config_.iops <= 0) return;
  const auto gap = static_cast<TimeNs>(rng_.exponential(1e9 / config_.iops));
  engine_.after(gap, [this] {
    if (!running_) return;
    IoRequest io;
    io.vd_id = config_.vd_id;
    io.op = rng_.bernoulli(config_.read_fraction) ? OpType::kRead
                                                  : OpType::kWrite;
    const std::uint32_t bs =
        config_.block_size != 0 ? config_.block_size : sizes_.sample(rng_);
    io.len = bs;
    io.offset = rng_.next_below(config_.vd_size / bs) * bs;
    if (io.op == OpType::kWrite) {
      io.payload = transport::make_placeholder_blocks(io.offset, bs, 4096);
      if (config_.real_payload) {
        for (auto& blk : io.payload) {
          blk.data.resize(blk.len);
          for (auto& b : blk.data) b = static_cast<std::uint8_t>(rng_.next());
        }
      }
    }
    io.issued_at = engine_.now();
    const TimeNs issued_at = engine_.now();
    auto io_copy = io;
    submit_(std::move(io), [this, io_copy = std::move(io_copy),
                            issued_at](IoResult res) {
      metrics_.record(io_copy, res, issued_at);
    });
    schedule_next();
  });
}

}  // namespace repro::workload
