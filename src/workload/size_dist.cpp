#include "workload/size_dist.h"

#include <algorithm>
#include <cmath>

namespace repro::workload {

SizeDist SizeDist::io_sizes() {
  return SizeDist({
      {4096, 0.40},    // databases committing single pages
      {8192, 0.13},    // Oracle-style 8K pages
      {16384, 0.20},   // MySQL 16K pages
      {32768, 0.07},
      {65536, 0.14},   // log segments / batched commits
      {131072, 0.06},  // FN RPCs top out at 128K (Fig. 5)
  });
}

SizeDist SizeDist::rpc_sizes() {
  // After the Block stage splits I/Os at segment boundaries, RPCs skew a
  // touch smaller than I/Os.
  return SizeDist({
      {4096, 0.42},
      {8192, 0.14},
      {16384, 0.21},
      {32768, 0.07},
      {65536, 0.12},
      {131072, 0.04},
  });
}

SizeDist::SizeDist(std::vector<Point> points) : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) { return a.bytes < b.bytes; });
  double total = 0;
  for (const auto& p : points_) total += p.weight;
  if (total > 0) {
    for (auto& p : points_) p.weight /= total;
  }
}

std::uint32_t SizeDist::sample(Rng& rng) const {
  double u = rng.uniform01();
  for (const auto& p : points_) {
    if (u < p.weight) return p.bytes;
    u -= p.weight;
  }
  return points_.empty() ? 4096 : points_.back().bytes;
}

double SizeDist::cdf(std::uint32_t bytes) const {
  double acc = 0;
  for (const auto& p : points_) {
    if (p.bytes <= bytes) acc += p.weight;
  }
  return acc;
}

double SizeDist::mean() const {
  double m = 0;
  for (const auto& p : points_) m += p.weight * p.bytes;
  return m;
}

double diurnal_multiplier(int hour) {
  hour = ((hour % 24) + 24) % 24;
  // Trough ~4am, ramp through the morning, plateau, evening peak ~21h.
  static constexpr double kShape[24] = {
      0.62, 0.55, 0.50, 0.47, 0.45, 0.48, 0.56, 0.68,  // 0-7
      0.80, 0.90, 0.96, 1.00, 0.98, 0.95, 0.97, 0.99,  // 8-15
      1.00, 0.98, 0.96, 0.99, 1.05, 1.10, 0.95, 0.75,  // 16-23
  };
  return kShape[hour];
}

double fig4_iops(int hour, Rng& rng) {
  // A highly-loaded compute server: ~200K IOPS at peak with minute-level
  // jitter (Fig. 4).
  const double base = 185000.0 * diurnal_multiplier(hour);
  return std::max(0.0, base * (1.0 + 0.08 * rng.normal()));
}

}  // namespace repro::workload
