// Trace-replay load generation (Mooncake-style jsonl traces).
//
// A trace is a sequence of timestamped I/O records — one JSON object per
// line (`{"ts_us":..,"vd":..,"op":"read","offset":..,"len":..}`), the
// format Mooncake publishes its serving traces in. `TraceReplay` replays a
// trace open-loop against a cluster: each record fires at its recorded
// time (optionally rescaled), targeting the replay's VD list by index, so
// the same trace drives any fleet shape. `synth_diurnal_trace` compresses
// the paper's Fig. 4 diurnal curve into a trace for overload benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ebs/metrics.h"
#include "sim/engine.h"
#include "transport/message.h"
#include "workload/fio.h"

namespace repro::workload {

/// One trace line. `at` is relative to replay start; `vd_index` indexes the
/// replay's VD list (traces are fleet-shape agnostic).
struct TraceRecord {
  TimeNs at = 0;
  std::uint32_t vd_index = 0;
  transport::OpType op = transport::OpType::kRead;
  std::uint64_t offset = 0;
  std::uint32_t len = 4096;
};

/// Parses jsonl text (one record per line; blank lines ignored). Returns
/// false with `*error` set on the first malformed line.
bool parse_trace_jsonl(const std::string& text,
                       std::vector<TraceRecord>* out, std::string* error);

/// Reads and parses a jsonl trace file.
bool load_trace_file(const std::string& path, std::vector<TraceRecord>* out,
                     std::string* error);

/// Serializes records to the jsonl wire format (`parse_trace_jsonl`'s
/// inverse, for --emit-trace style tooling).
std::string trace_to_jsonl(const std::vector<TraceRecord>& records);

/// Knobs for the synthetic compressed-day trace.
struct DiurnalTraceConfig {
  double peak_iops = 20000.0;   ///< arrival rate at the Fig. 4 evening peak
  TimeNs duration = ms(120);    ///< the 24 h curve compresses into this
  std::uint32_t block_size = 4096;
  double read_fraction = 0.7;
  std::uint32_t vds = 1;        ///< records spread over vd_index 0..vds-1
  std::uint64_t vd_size = 256ull << 20;
};

/// Synthesizes a compressed day: 24 equal slices, slice h carrying Fig. 4's
/// hour-h load shape, scaled so the peak hour arrives at `peak_iops`.
/// Deterministic for a given rng seed.
std::vector<TraceRecord> synth_diurnal_trace(const DiurnalTraceConfig& cfg,
                                             Rng rng);

struct TraceReplayConfig {
  double time_scale = 1.0;  ///< record times are multiplied by this
  bool real_payload = false;
};

/// Open-loop replay of a trace. Submission order and timing depend only on
/// the records (plus rng for payload bytes), so replays are bit-identical
/// at any shard/thread count when bound to a node's home engine.
class TraceReplay {
 public:
  TraceReplay(sim::Engine& engine, SubmitFn submit,
              std::vector<std::uint64_t> vds,
              std::vector<TraceRecord> records, TraceReplayConfig config,
              Rng rng);

  void start();
  /// Stops issuing (outstanding I/Os drain; scheduled records are skipped).
  void stop() { running_ = false; }

  ebs::MetricSink& metrics() { return metrics_; }
  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }

 private:
  void schedule_from(std::size_t idx);
  void issue(const TraceRecord& r);

  sim::Engine& engine_;
  SubmitFn submit_;
  std::vector<std::uint64_t> vds_;
  std::vector<TraceRecord> records_;
  TraceReplayConfig config_;
  Rng rng_;
  ebs::MetricSink metrics_;
  TimeNs base_ = 0;
  bool running_ = false;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace repro::workload
