// Sharded parallel discrete-event engine.
//
// The fleet is partitioned into node-affine shards: every component of a
// node (CPU, PCIe, SSD, NIC) and its rack-local switches live on one home
// shard, each shard owning a private single-threaded `Engine`. Shards
// advance together in conservative epochs: with lookahead L = the minimum
// cross-shard link propagation delay, every shard can safely execute all
// events in [start, start + L] without seeing input from its peers, because
// any cross-shard effect generated in that window arrives at t >= start + L.
// At the epoch barrier the coordinating thread delivers buffered cross-shard
// messages — sorted by (timestamp, source shard, per-pair sequence) — and
// runs globally-serialized control operations (link flips, route
// recomputation), then the next epoch begins.
//
// Determinism contract: the epoch structure (start/end instants, delivery
// and global-op order) is a pure function of the event timeline, the shard
// count and the lookahead — NEVER of the thread count. Threads only decide
// which OS thread executes a given shard's epoch (shard s runs on worker
// s % T), so the same seed produces bit-identical metrics, traces and chaos
// signatures at 1, 2 or N threads. tests/determinism_test.cpp enforces this
// with a thread-count sweep.
#pragma once

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/small_fn.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/shard_context.h"

namespace repro::sim {

class ShardedEngine {
 public:
  /// Called once per epoch barrier with the (aligned) epoch-end instant,
  /// on the coordinating thread while all workers are quiescent. The
  /// observability sampler rides this hook in sharded runs.
  using BarrierHook = SmallFn<void(TimeNs), 48>;

  /// `threads` > shards is clamped; `threads` <= 1 runs every epoch on the
  /// calling thread (same epoch structure, so same results).
  explicit ShardedEngine(int shards, int threads = 1,
                         TimeNs lookahead = us(1));
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  int shards() const { return static_cast<int>(engines_.size()); }
  int threads() const { return threads_; }
  TimeNs lookahead() const { return lookahead_; }

  /// Must be called before any events run. The caller (the cluster builder)
  /// is responsible for `l` being <= the minimum cross-shard propagation
  /// delay; `post` asserts it in debug builds.
  void set_lookahead(TimeNs l);

  Engine& shard(int s) { return *engines_[static_cast<std::size_t>(s)]; }
  const Engine& shard(int s) const {
    return *engines_[static_cast<std::size_t>(s)];
  }
  /// The engine of the shard the calling thread is currently executing.
  Engine& home() { return shard(current_shard()); }

  /// Aligned fleet clock: every shard's engine sits at this instant between
  /// runs and at epoch barriers.
  TimeNs now() const { return now_; }
  std::uint64_t executed() const;
  std::size_t pending() const;

  /// Schedules `fn` at absolute time `t` on shard `dst`'s engine. Inside an
  /// epoch this buffers into the per-(source, destination) mailbox and is
  /// delivered at the barrier in (t, source shard, sequence) order; the
  /// conservative contract requires t >= the current epoch's end, i.e. the
  /// underlying delay must be >= the lookahead. Outside a run it schedules
  /// directly.
  void post(int dst, TimeNs t, Callback fn);

  /// Runs `fn` on the coordinating thread with every shard quiescent: at
  /// the next epoch barrier when posted from inside an epoch, immediately
  /// when posted while idle. For shared-fabric mutations (link state,
  /// routing tables) that individual shards must never touch mid-epoch.
  void post_global(Callback fn);

  /// Timed variant: `fn` runs at the first epoch barrier with time >= `t`,
  /// and the epoch layout is clamped so that a barrier lands exactly at `t`
  /// (control operations keep their exact timestamps).
  void post_global_at(TimeNs t, Callback fn);

  /// Installs the (single) barrier hook. Pass an empty hook to clear.
  void set_barrier_hook(BarrierHook hook) { hook_ = std::move(hook); }

  /// Runs all shards until their queues, the cross-shard mailboxes and the
  /// global-operation queue drain.
  void run();

  /// Runs everything with timestamp <= `t`, then aligns all clocks to `t`.
  void run_until(TimeNs t);

 private:
  struct Msg {
    TimeNs t;
    Callback fn;
  };
  struct BufferedGlobal {
    TimeNs t;  // -1 = "at this epoch's barrier"
    Callback fn;
  };
  // Per-source-shard outbox; cache-line-aligned so concurrent workers never
  // false-share. Row `to[dst]` is written only by the owning worker during
  // an epoch and drained only by the coordinator at the barrier (an SPSC
  // handoff sequenced by the epoch barrier itself).
  struct alignas(64) Outbox {
    std::vector<std::vector<Msg>> to;
    std::vector<BufferedGlobal> globals;
  };
  struct GlobalOp {
    TimeNs t;
    std::uint64_t seq;
    Callback fn;
  };
  struct GlobalOpLater {
    bool operator()(const GlobalOp& a, const GlobalOp& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  struct Team {
    std::unique_ptr<std::barrier<>> gate;
    std::vector<std::thread> threads;
    std::atomic<bool> done{false};
    bool running = false;
  };

  void run_loop(TimeNs target, bool drain);
  void run_epoch(Team& team, int nthreads, TimeNs end);
  void worker_main(Team& team, int worker_index, int nthreads);
  void deliver_mailboxes(TimeNs barrier_time);
  void flush_buffered_globals(TimeNs barrier_time);
  void run_globals(TimeNs limit);
  void advance_to(TimeNs target);
  void spawn_team(Team& team, int nthreads);
  void shutdown_team(Team& team);
  TimeNs lower_bound() const;

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Outbox> outboxes_;
  std::priority_queue<GlobalOp, std::vector<GlobalOp>, GlobalOpLater>
      globals_;
  std::uint64_t next_global_seq_ = 0;
  BarrierHook hook_;
  int threads_ = 1;
  TimeNs lookahead_ = 0;
  TimeNs now_ = 0;
  TimeNs epoch_end_ = 0;  // written by coordinator, read by workers; the
                          // barrier sequences every access
  bool in_run_ = false;
};

}  // namespace repro::sim
