// Deterministic discrete-event engine.
//
// Everything in the reproduction — NIC serialization, switch queues, CPU
// service times, SSD latencies, retransmission timers — is an event on this
// engine. Events at equal timestamps run in scheduling order (a strictly
// increasing sequence number breaks ties), so runs are fully deterministic
// for a given seed.
//
// The scheduler is a hierarchical timer wheel: 11 levels of 64 slots, each
// level covering 64x the span of the one below, with a per-level occupancy
// bitmap. Events are intrusive nodes drawn from a chunked free list, so
// steady-state scheduling allocates nothing; cancel is an O(1) unlink
// guarded by a per-node generation counter (no tombstone set to leak).
// Within a slot, nodes are kept in insertion order and cascades preserve
// that order, which is what keeps the equal-timestamp FIFO guarantee — and
// therefore bit-identical seeded runs — intact across the rewrite.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/small_fn.h"
#include "common/units.h"

namespace repro::sim {

using Callback = SmallFn<void(), 48>;

/// Out-of-band clock probe: called with the probe instant, returns the next
/// instant (a value <= the argument disarms the probe).
using ProbeFn = SmallFn<TimeNs(TimeNs), 48>;

/// Identifier for a cancelable event. 0 is never a valid id.
using TimerId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now for past times).
  void at(TimeNs t, Callback fn) { schedule_at(t, std::move(fn)); }

  /// Schedules `fn` after `delay` nanoseconds.
  void after(TimeNs delay, Callback fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancelable variants. `cancel` returns true if the event had not yet
  /// fired (and will now never fire); canceling an already-fired or
  /// already-canceled id returns false and costs O(1).
  TimerId schedule_at(TimeNs t, Callback fn);
  TimerId schedule_after(TimeNs delay, Callback fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }
  bool cancel(TimerId id);

  /// Executes the next event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs all events with timestamp <= `t`, then advances the clock to `t`.
  void run_until(TimeNs t);

  /// Makes `run`/`run_until` return after the current event completes.
  void stop() { stopped_ = true; }

  std::size_t pending() const { return pending_; }
  std::uint64_t executed() const { return executed_; }

  /// Installs an out-of-band clock probe, first firing at `first_at`.
  ///
  /// The probe is NOT an event: it fires while the clock advances past each
  /// probe instant, is invisible to `pending()`/`executed()`, cannot keep a
  /// run alive, and must not mutate simulation state. This is the hook the
  /// observability sampler uses so that sampling cannot perturb the event
  /// schedule (tests/determinism_test.cpp holds runs bit-identical with it
  /// armed or not). The probe returns the next instant to fire at; a return
  /// value <= the current instant disarms it.
  void set_probe(TimeNs first_at, ProbeFn fn) {
    assert_owner();
    probe_ = std::move(fn);
    probe_at_ = first_at < now_ ? now_ : first_at;
  }
  void clear_probe() {
    assert_owner();
    probe_.reset();
    probe_at_ = -1;
  }

  /// Earliest timestamp at which this engine could possibly execute an
  /// event, or -1 if the queue is empty. Exact for events in the current
  /// level-0 wheel window; a (never-late) lower bound — the slot start —
  /// for events parked on higher levels. Non-mutating; the sharded engine
  /// uses it to skip empty epochs without disturbing the wheel.
  TimeNs next_lower_bound() const;

  /// Re-binds the debug-mode owning thread to the calling thread. The
  /// sharded engine hands per-shard engines between its worker threads and
  /// the coordinating thread at epoch barriers; each handoff re-binds. A
  /// no-op in release builds.
  void bind_owner() {
#ifndef NDEBUG
    owner_ = std::this_thread::get_id();
#endif
  }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64
  // Times are non-negative int64, so t ^ now never sets bit 63 and the
  // highest home level is (62 / kSlotBits) = 10.
  static constexpr int kLevels = 11;
  static constexpr std::size_t kChunk = 256;  // nodes per pool chunk

  struct Node {
    Node* prev = nullptr;
    Node* next = nullptr;  // doubles as the free-list link when unlinked
    TimeNs time = 0;
    std::uint64_t seq = 0;
    Callback fn;
    std::uint32_t gen = 0;
    std::uint32_t index = 0;  // position in the pool, encodes into TimerId
    std::uint8_t level = 0;
    std::uint8_t slot = 0;
    bool linked = false;
  };

  Node* alloc_node();
  void release_node(Node* n);
  Node* node_at(std::uint64_t index) {
    return &chunks_[index / kChunk][index % kChunk];
  }

  void wheel_insert(Node* n);
  void unlink(Node* n);
  Node* pop_front(int level, int idx);
  void cascade(int level, int idx);

  /// Advances the clock to — and detaches — the earliest pending node with
  /// time <= limit, or returns nullptr (clock never passes `limit`).
  Node* take_next(TimeNs limit);

  /// Fires the probe for every armed instant <= `t` (the clock is about to
  /// advance to `t`).
  void run_probe_to(TimeNs t) {
    while (probe_at_ >= 0 && probe_at_ <= t) {
      const TimeNs at = probe_at_;
      const TimeNs next = probe_(at);
      probe_at_ = next > at ? next : -1;
    }
  }

  /// Debug-mode ownership check: the engine is single-threaded by design,
  /// and under sharding each per-shard engine must only ever be touched by
  /// the thread that currently owns its shard. Catches cross-thread
  /// scheduling/probing (a silent race in release) as a loud assert.
  void assert_owner() const {
#ifndef NDEBUG
    assert(owner_ == std::this_thread::get_id() &&
           "sim::Engine touched from a thread that does not own it "
           "(missing ShardedEngine mailbox hop or bind_owner?)");
#endif
  }

  Node* heads_[kLevels][kSlots] = {};
  Node* tails_[kLevels][kSlots] = {};
  std::uint64_t occupied_[kLevels] = {};

  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* free_head_ = nullptr;

  TimeNs now_ = 0;
  ProbeFn probe_;
  TimeNs probe_at_ = -1;  // -1 = disarmed
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
#ifndef NDEBUG
  std::thread::id owner_ = std::this_thread::get_id();
#endif
};

}  // namespace repro::sim
