// Deterministic discrete-event engine.
//
// Everything in the reproduction — NIC serialization, switch queues, CPU
// service times, SSD latencies, retransmission timers — is an event on this
// engine. Events at equal timestamps run in scheduling order (a strictly
// increasing sequence number breaks ties), so runs are fully deterministic
// for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace repro::sim {

using Callback = std::function<void()>;

/// Identifier for a cancelable event. 0 is never a valid id.
using TimerId = std::uint64_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  TimeNs now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to now for past times).
  void at(TimeNs t, Callback fn) { schedule_at(t, std::move(fn)); }

  /// Schedules `fn` after `delay` nanoseconds.
  void after(TimeNs delay, Callback fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancelable variants. `cancel` returns true if the event had not yet
  /// fired (and will now never fire).
  TimerId schedule_at(TimeNs t, Callback fn);
  TimerId schedule_after(TimeNs delay, Callback fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }
  bool cancel(TimerId id);

  /// Executes the next event. Returns false if the queue is empty.
  bool step();

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs all events with timestamp <= `t`, then advances the clock to `t`.
  void run_until(TimeNs t);

  /// Makes `run`/`run_until` return after the current event completes.
  void stop() { stopped_ = true; }

  std::size_t pending() const { return queue_.size() - canceled_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    TimerId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<TimerId> canceled_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace repro::sim
