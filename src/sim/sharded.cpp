#include "sim/sharded.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace repro::sim {

ShardedEngine::ShardedEngine(int shards, int threads, TimeNs lookahead)
    : threads_(threads < 1 ? 1 : threads), lookahead_(lookahead) {
  assert(shards >= 1);
  assert(lookahead_ > 0);
  engines_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    engines_.push_back(std::make_unique<Engine>());
  }
  outboxes_.resize(static_cast<std::size_t>(shards));
  for (auto& ob : outboxes_) {
    ob.to.resize(static_cast<std::size_t>(shards));
  }
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::set_lookahead(TimeNs l) {
  assert(l > 0);
  assert(!in_run_);
  lookahead_ = l;
}

std::uint64_t ShardedEngine::executed() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->executed();
  return total;
}

std::size_t ShardedEngine::pending() const {
  std::size_t total = globals_.size();
  for (const auto& e : engines_) total += e->pending();
  for (const auto& ob : outboxes_) {
    total += ob.globals.size();
    for (const auto& row : ob.to) total += row.size();
  }
  return total;
}

void ShardedEngine::post(int dst, TimeNs t, Callback fn) {
  assert(dst >= 0 && dst < shards());
  if (in_parallel_phase()) {
    // The conservative contract: a message generated inside an epoch may
    // not be needed before the epoch's end (its delay is >= the lookahead).
    assert(t >= epoch_end_ &&
           "cross-shard message inside the lookahead window — lookahead is "
           "larger than the minimum cross-shard delay");
    outboxes_[static_cast<std::size_t>(current_shard())]
        .to[static_cast<std::size_t>(dst)]
        .push_back({t, std::move(fn)});
    return;
  }
  engines_[static_cast<std::size_t>(dst)]->schedule_at(t, std::move(fn));
}

void ShardedEngine::post_global(Callback fn) {
  if (in_parallel_phase()) {
    outboxes_[static_cast<std::size_t>(current_shard())].globals.push_back(
        {TimeNs{-1}, std::move(fn)});
    return;
  }
  if (in_run_) {
    // Barrier phase (a global op posting another "immediate" one): run at
    // this barrier's instant, after the ops already queued for it.
    globals_.push({now_, next_global_seq_++, std::move(fn)});
    return;
  }
  fn();  // idle: every shard is quiescent already
}

void ShardedEngine::post_global_at(TimeNs t, Callback fn) {
  if (t < now_) t = now_;
  if (in_parallel_phase()) {
    outboxes_[static_cast<std::size_t>(current_shard())].globals.push_back(
        {t, std::move(fn)});
    return;
  }
  globals_.push({t, next_global_seq_++, std::move(fn)});
}

TimeNs ShardedEngine::lower_bound() const {
  TimeNs lb = globals_.empty() ? TimeNs{-1} : globals_.top().t;
  for (const auto& e : engines_) {
    const TimeNs elb = e->next_lower_bound();
    if (elb >= 0 && (lb < 0 || elb < lb)) lb = elb;
  }
  return lb;
}

void ShardedEngine::advance_to(TimeNs target) {
  if (target <= now_) return;
  for (int s = 0; s < shards(); ++s) {
    ShardScope scope(s);
    engines_[static_cast<std::size_t>(s)]->run_until(target);
  }
  now_ = target;
  if (hook_) hook_(now_);
}

void ShardedEngine::worker_main(Team& team, int worker_index, int nthreads) {
  const int num_shards = shards();
  for (;;) {
    team.gate->arrive_and_wait();
    if (team.done.load(std::memory_order_acquire)) return;
    detail::tls_in_parallel = true;
    const TimeNs end = epoch_end_;
    for (int s = worker_index; s < num_shards; s += nthreads) {
      detail::tls_shard = s;
      Engine& e = *engines_[static_cast<std::size_t>(s)];
      e.bind_owner();
      e.run_until(end);
    }
    detail::tls_shard = 0;
    detail::tls_in_parallel = false;
    team.gate->arrive_and_wait();
  }
}

void ShardedEngine::spawn_team(Team& team, int nthreads) {
  team.gate = std::make_unique<std::barrier<>>(nthreads + 1);
  team.done.store(false, std::memory_order_relaxed);
  team.threads.reserve(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) {
    team.threads.emplace_back(
        [this, &team, w, nthreads] { worker_main(team, w, nthreads); });
  }
  team.running = true;
}

void ShardedEngine::shutdown_team(Team& team) {
  if (!team.running) return;
  team.done.store(true, std::memory_order_release);
  team.gate->arrive_and_wait();
  for (auto& t : team.threads) t.join();
  team.threads.clear();
  team.gate.reset();
  team.running = false;
}

void ShardedEngine::run_epoch(Team& team, int nthreads, TimeNs end) {
  epoch_end_ = end;
  if (nthreads <= 1) {
    // Same epoch structure, executed by the calling thread shard-by-shard.
    // tls_in_parallel is raised so cross-shard effects still go through the
    // mailboxes — direct scheduling here would assign destination-engine
    // sequence numbers mid-epoch and order equal-timestamp events
    // differently than the barrier merge does at T > 1.
    detail::tls_in_parallel = true;
    for (int s = 0; s < shards(); ++s) {
      detail::tls_shard = s;
      engines_[static_cast<std::size_t>(s)]->run_until(end);
    }
    detail::tls_shard = 0;
    detail::tls_in_parallel = false;
    return;
  }
  if (!team.running) spawn_team(team, nthreads);
  team.gate->arrive_and_wait();  // release the epoch
  team.gate->arrive_and_wait();  // all shards reached `end`
  // Between barriers the coordinator owns every engine (mailbox delivery,
  // global ops); re-bind for the debug-mode ownership checks.
  for (auto& e : engines_) e->bind_owner();
}

void ShardedEngine::deliver_mailboxes(TimeNs barrier_time) {
  struct Incoming {
    TimeNs t;
    int src;
    std::uint32_t idx;
    Msg* msg;
  };
  std::vector<Incoming> items;
  const int num_shards = shards();
  for (int dst = 0; dst < num_shards; ++dst) {
    items.clear();
    for (int src = 0; src < num_shards; ++src) {
      auto& row = outboxes_[static_cast<std::size_t>(src)]
                      .to[static_cast<std::size_t>(dst)];
      for (std::uint32_t i = 0; i < row.size(); ++i) {
        items.push_back({row[i].t, src, i, &row[i]});
      }
    }
    if (items.empty()) continue;
    // The deterministic merge: (timestamp, source shard, per-pair sequence).
    // The destination engine's own seq-FIFO then preserves this order among
    // equal timestamps for the rest of the run.
    std::sort(items.begin(), items.end(),
              [](const Incoming& a, const Incoming& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.src != b.src) return a.src < b.src;
                return a.idx < b.idx;
              });
    ShardScope scope(dst);
    Engine& e = *engines_[static_cast<std::size_t>(dst)];
    for (auto& it : items) {
      assert(it.t >= barrier_time);
      e.schedule_at(it.t, std::move(it.msg->fn));
    }
  }
  (void)barrier_time;
  for (auto& ob : outboxes_) {
    for (auto& row : ob.to) row.clear();
  }
}

void ShardedEngine::flush_buffered_globals(TimeNs barrier_time) {
  for (auto& ob : outboxes_) {
    for (auto& g : ob.globals) {
      const TimeNs t = g.t < barrier_time ? barrier_time : g.t;
      globals_.push({t, next_global_seq_++, std::move(g.fn)});
    }
    ob.globals.clear();
  }
}

void ShardedEngine::run_globals(TimeNs limit) {
  while (!globals_.empty() && globals_.top().t <= limit) {
    // priority_queue::top() is const; the callback is move-only, so detach
    // it via const_cast before popping (the node is discarded right after).
    Callback fn = std::move(const_cast<GlobalOp&>(globals_.top()).fn);
    globals_.pop();
    fn();
  }
}

void ShardedEngine::run_loop(TimeNs target, bool drain) {
  assert(!in_run_ && "ShardedEngine::run is not reentrant");
  in_run_ = true;
  const int num_shards = shards();
  const int nthreads = threads_ < num_shards ? threads_ : num_shards;
  Team team;
  for (;;) {
    const TimeNs lb = lower_bound();
    if (lb < 0) {
      // Everything drained. In run_until mode still advance the clocks.
      if (!drain) advance_to(target);
      break;
    }
    if (!drain && lb > target) {
      advance_to(target);
      break;
    }
    const TimeNs start = lb > now_ ? lb : now_;
    TimeNs end = start + lookahead_;
    // Clamp the epoch so a barrier lands exactly on the next global
    // control operation — link flips and reconvergence keep exact times.
    if (!globals_.empty() && globals_.top().t < end) end = globals_.top().t;
    if (!drain && end > target) end = target;
    run_epoch(team, nthreads, end);
    deliver_mailboxes(end);
    flush_buffered_globals(end);
    run_globals(end);
    now_ = end;
    if (hook_) hook_(now_);
  }
  shutdown_team(team);
  in_run_ = false;
}

void ShardedEngine::run() { run_loop(0, /*drain=*/true); }

void ShardedEngine::run_until(TimeNs t) { run_loop(t, /*drain=*/false); }

}  // namespace repro::sim
