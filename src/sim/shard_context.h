// Thread-local shard context for sharded (parallel) simulation.
//
// Every simulation thread carries the id of the shard whose events it is
// currently executing. Single-threaded runs never touch it and always see
// shard 0, so legacy code paths are unchanged. The context is what lets
// shard-agnostic call sites (`Network::engine()`, `Network::rng()`,
// `Network::make_packet()`, the obs counter scratch slot, the tracer ring)
// route to per-shard state without threading a shard id through every
// signature in the simulator.
//
// The context is deliberately header-only (inline thread_local): it must be
// readable from every layer — common, sim, net, obs — without creating a
// link-order dependency.
#pragma once

namespace repro::sim {

namespace detail {
/// Shard whose events the current thread is executing. 0 outside any
/// sharded run (the legacy single-engine world is "shard 0 everywhere").
inline thread_local int tls_shard = 0;
/// True while the current thread is inside a ShardedEngine parallel phase
/// (i.e. cross-shard effects must go through mailboxes, not direct calls).
inline thread_local bool tls_in_parallel = false;
}  // namespace detail

/// The shard the calling thread is currently executing for.
inline int current_shard() { return detail::tls_shard; }

/// True when called from inside a parallel epoch (worker context).
inline bool in_parallel_phase() { return detail::tls_in_parallel; }

/// RAII shard context, used on the *construction* path: building a device
/// or node under `ShardScope(s)` makes every construction-time draw (ECMP
/// salts, component RNG forks) and every captured `engine()` reference
/// resolve to shard `s`'s state.
class ShardScope {
 public:
  explicit ShardScope(int shard) : prev_(detail::tls_shard) {
    detail::tls_shard = shard;
  }
  ~ShardScope() { detail::tls_shard = prev_; }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  int prev_;
};

}  // namespace repro::sim
