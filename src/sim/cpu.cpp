#include "sim/cpu.h"

#include <algorithm>

namespace repro::sim {

TimeNs CpuCore::run(TimeNs cost, Callback done) {
  if (cost < 0) cost = 0;
  const TimeNs start = std::max(engine_.now(), free_at_);
  free_at_ = start + cost;
  busy_ns_ += cost;
  // Always schedule the completion so simulated time covers the occupancy
  // even when the caller does not care about the completion itself.
  engine_.at(free_at_, done ? std::move(done) : Callback([] {}));
  return free_at_;
}

double CpuCore::utilization() const {
  const TimeNs now = engine_.now();
  if (now <= 0) return 0.0;
  return static_cast<double>(busy_ns_) / static_cast<double>(now);
}

CpuPool::CpuPool(Engine& engine, std::string name, int cores,
                 Dispatch dispatch, TimeNs cross_core_overhead)
    : engine_(engine),
      dispatch_(dispatch),
      cross_core_overhead_(cross_core_overhead) {
  cores_.reserve(static_cast<std::size_t>(cores));
  for (int i = 0; i < cores; ++i) {
    cores_.push_back(std::make_unique<CpuCore>(
        engine, name + "/core" + std::to_string(i)));
  }
}

TimeNs CpuPool::submit(std::uint64_t affinity, TimeNs cost, Callback done) {
  CpuCore* target = nullptr;
  switch (dispatch_) {
    case Dispatch::kByHash: {
      // Fibonacci-hash the affinity key onto a core: share-nothing pinning.
      const std::uint64_t h = affinity * 0x9E3779B97F4A7C15ull;
      target = cores_[h % cores_.size()].get();
      break;
    }
    case Dispatch::kLeastLoaded: {
      target = cores_.front().get();
      for (auto& c : cores_) {
        if (c->free_at() < target->free_at()) target = c.get();
      }
      cost += cross_core_overhead_;
      break;
    }
  }
  return target->run(cost, std::move(done));
}

TimeNs CpuPool::total_busy_ns() const {
  TimeNs total = 0;
  for (const auto& c : cores_) total += c->busy_ns();
  return total - busy_baseline_;
}

void CpuPool::reset_counters() {
  busy_baseline_ = 0;
  busy_baseline_ = total_busy_ns();
}

}  // namespace repro::sim
