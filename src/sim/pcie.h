// PCIe channel model.
//
// ALI-DPU's internal PCIe interconnect carries far less than the 2x25GE
// Ethernet (§4.2), so stacks whose data path crosses it twice (LUNA, RDMA,
// SOLAR with offload disabled) hit a goodput ceiling — the flat line in
// Fig. 14. The channel is a bandwidth-limited FIFO resource with a fixed
// per-transfer latency (DMA doorbell + completion).
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"
#include "obs/resettable.h"
#include "sim/engine.h"

namespace repro::sim {

class PcieChannel : public obs::Resettable {
 public:
  PcieChannel(Engine& engine, std::string name, BitsPerSec bandwidth,
              TimeNs per_transfer_latency)
      : engine_(engine),
        name_(std::move(name)),
        bandwidth_(bandwidth),
        per_transfer_latency_(per_transfer_latency) {}

  /// Queues a DMA of `bytes`; `done` fires when the last byte lands.
  /// Returns the completion time.
  TimeNs transfer(std::uint64_t bytes, Callback done = {});

  std::uint64_t bytes_transferred() const { return bytes_transferred_; }
  BitsPerSec bandwidth() const { return bandwidth_; }

  /// Chaos hook: scales effective bandwidth by 1/factor (link retraining /
  /// lane degradation). 1.0 = healthy; e.g. 4.0 quarters the bandwidth.
  void set_degrade(double factor) { degrade_ = factor < 1.0 ? 1.0 : factor; }
  double degrade() const { return degrade_; }

  /// Achieved goodput over [0, now].
  BitsPerSec goodput() const {
    return throughput_bps(bytes_transferred_, engine_.now());
  }

  TimeNs backlog() const {
    const TimeNs now = engine_.now();
    return free_at_ > now ? free_at_ - now : 0;
  }

  /// Canonical reset per the obs::Resettable convention; the historical
  /// `reset_accounting()` spelling forwards to it.
  void reset_counters() override { bytes_transferred_ = 0; }
  void reset_accounting() { reset_counters(); }

 private:
  Engine& engine_;
  std::string name_;
  BitsPerSec bandwidth_;
  TimeNs per_transfer_latency_;
  double degrade_ = 1.0;
  TimeNs free_at_ = 0;
  std::uint64_t bytes_transferred_ = 0;
};

}  // namespace repro::sim
