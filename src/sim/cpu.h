// CPU models.
//
// A `CpuCore` is a serial resource: work items are executed FIFO, each
// occupying the core for its service time. This is what turns per-packet /
// per-IO CPU costs into queueing delay — the effect behind the paper's
// "consumed cores" and stress-test latency numbers (Table 1) and the SA
// bottleneck (Fig. 6).
//
// A `CpuPool` groups cores with two dispatch policies:
//  * by_hash  — share-nothing (LUNA/SOLAR): a flow/VD is pinned to a core.
//  * least_loaded — work-stealing-ish global queue (kernel stack), which
//    additionally pays a cross-core coordination cost per item.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/resettable.h"
#include "sim/engine.h"

namespace repro::sim {

class CpuCore {
 public:
  CpuCore(Engine& engine, std::string name)
      : engine_(engine), name_(std::move(name)) {}

  /// Enqueues a work item taking `cost` of core time; `done` (optional)
  /// fires when the item completes. Returns the completion time.
  TimeNs run(TimeNs cost, Callback done = {});

  /// Time at which currently queued work drains.
  TimeNs free_at() const { return free_at_; }

  /// Outstanding work (0 when idle).
  TimeNs backlog() const {
    const TimeNs now = engine_.now();
    return free_at_ > now ? free_at_ - now : 0;
  }

  /// Total busy time accumulated so far (including scheduled future work).
  TimeNs busy_ns() const { return busy_ns_; }

  /// Chaos hook: occupies the core for `dur` without counting as busy work
  /// (interrupt storm / SMI / scheduler stall). Queued items slip by `dur`.
  void stall_for(TimeNs dur) {
    if (dur <= 0) return;
    const TimeNs start = engine_.now() > free_at_ ? engine_.now() : free_at_;
    free_at_ = start + dur;
  }

  /// Mean utilization over [0, now] (can exceed 1 transiently because
  /// scheduled-but-unfinished work counts as busy).
  double utilization() const;

  const std::string& name() const { return name_; }

 private:
  Engine& engine_;
  std::string name_;
  TimeNs free_at_ = 0;
  TimeNs busy_ns_ = 0;
};

class CpuPool : public obs::Resettable {
 public:
  enum class Dispatch { kByHash, kLeastLoaded };

  CpuPool(Engine& engine, std::string name, int cores, Dispatch dispatch,
          TimeNs cross_core_overhead = 0);

  /// Submits work keyed by `affinity` (connection id, VD id, ...).
  TimeNs submit(std::uint64_t affinity, TimeNs cost, Callback done = {});

  int size() const { return static_cast<int>(cores_.size()); }
  CpuCore& core(int i) { return *cores_[i]; }

  /// Sum of busy time across cores; `consumed_cores(T)` = busy / T is the
  /// paper's "consumed cores" metric.
  TimeNs total_busy_ns() const;
  double consumed_cores(TimeNs over) const {
    return over > 0 ? static_cast<double>(total_busy_ns()) /
                          static_cast<double>(over)
                    : 0.0;
  }

  /// Chaos hook: stalls every core in the pool for `dur` (see
  /// CpuCore::stall_for).
  void stall_all(TimeNs dur) {
    for (auto& c : cores_) c->stall_for(dur);
  }

  /// Resets busy accounting (used between warmup and measurement phases).
  /// Canonical name per the obs::Resettable convention; the historical
  /// `reset_accounting()` spelling forwards to it.
  void reset_counters() override;
  void reset_accounting() { reset_counters(); }

 private:
  Engine& engine_;
  std::vector<std::unique_ptr<CpuCore>> cores_;
  Dispatch dispatch_;
  TimeNs cross_core_overhead_;
  TimeNs busy_baseline_ = 0;
};

}  // namespace repro::sim
