#include "sim/pcie.h"

#include <algorithm>

namespace repro::sim {

TimeNs PcieChannel::transfer(std::uint64_t bytes, Callback done) {
  // DMA engines pipeline: the channel is occupied for the serialization
  // time only; the fixed doorbell/completion latency delays the completion
  // without blocking the next transfer.
  const TimeNs start = std::max(engine_.now(), free_at_);
  const auto rate =
      static_cast<BitsPerSec>(static_cast<double>(bandwidth_) / degrade_);
  free_at_ = start + serialization_delay(bytes, rate);
  bytes_transferred_ += bytes;
  const TimeNs completion = free_at_ + per_transfer_latency_;
  engine_.at(completion, done ? std::move(done) : Callback([] {}));
  return completion;
}

}  // namespace repro::sim
