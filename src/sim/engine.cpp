#include "sim/engine.h"

#include <bit>
#include <cassert>
#include <limits>
#include <utility>

namespace repro::sim {

namespace {
constexpr TimeNs kNoLimit = std::numeric_limits<TimeNs>::max();
}

Engine::~Engine() = default;

Engine::Node* Engine::alloc_node() {
  if (free_head_ == nullptr) {
    auto chunk = std::make_unique<Node[]>(kChunk);
    const std::uint32_t base =
        static_cast<std::uint32_t>(chunks_.size() * kChunk);
    // Thread the fresh chunk onto the free list in reverse so nodes are
    // handed out in ascending index order (cosmetic, but makes ids stable).
    for (std::size_t i = kChunk; i-- > 0;) {
      chunk[i].index = base + static_cast<std::uint32_t>(i);
      chunk[i].next = free_head_;
      free_head_ = &chunk[i];
    }
    chunks_.push_back(std::move(chunk));
  }
  Node* n = free_head_;
  free_head_ = n->next;
  return n;
}

void Engine::release_node(Node* n) {
  // Bump the generation first: any TimerId still referring to this node is
  // now stale, including one captured by the callback we are about to run.
  ++n->gen;
  n->fn.reset();
  n->next = free_head_;
  free_head_ = n;
}

void Engine::wheel_insert(Node* n) {
  const std::uint64_t diff = static_cast<std::uint64_t>(n->time ^ now_);
  const int level = diff == 0 ? 0 : (std::bit_width(diff) - 1) / kSlotBits;
  const int idx = static_cast<int>(
      (static_cast<std::uint64_t>(n->time) >> (kSlotBits * level)) &
      (kSlots - 1));
  n->level = static_cast<std::uint8_t>(level);
  n->slot = static_cast<std::uint8_t>(idx);
  n->linked = true;
  n->next = nullptr;
  n->prev = tails_[level][idx];
  if (tails_[level][idx] != nullptr) {
    tails_[level][idx]->next = n;
  } else {
    heads_[level][idx] = n;
    occupied_[level] |= std::uint64_t{1} << idx;
  }
  tails_[level][idx] = n;
}

void Engine::unlink(Node* n) {
  const int level = n->level;
  const int idx = n->slot;
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    heads_[level][idx] = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    tails_[level][idx] = n->prev;
  }
  if (heads_[level][idx] == nullptr) {
    occupied_[level] &= ~(std::uint64_t{1} << idx);
  }
  n->linked = false;
}

Engine::Node* Engine::pop_front(int level, int idx) {
  Node* n = heads_[level][idx];
  heads_[level][idx] = n->next;
  if (n->next != nullptr) {
    n->next->prev = nullptr;
  } else {
    tails_[level][idx] = nullptr;
    occupied_[level] &= ~(std::uint64_t{1} << idx);
  }
  n->linked = false;
  return n;
}

void Engine::cascade(int level, int idx) {
  Node* n = heads_[level][idx];
  heads_[level][idx] = nullptr;
  tails_[level][idx] = nullptr;
  occupied_[level] &= ~(std::uint64_t{1} << idx);
  // Re-insert in list order. Each node lands at a strictly lower level
  // (its level-`level` chunk now matches the clock's), and appending in
  // source order preserves the global seq-FIFO within equal timestamps.
  while (n != nullptr) {
    Node* next = n->next;
    wheel_insert(n);
    n = next;
  }
}

Engine::Node* Engine::take_next(TimeNs limit) {
  for (;;) {
    if (pending_ == 0) return nullptr;
    // Level 0: every node in slot idx has the exact time
    // (now & ~63) | idx, and only idx >= (now & 63) can be occupied.
    const unsigned cur0 = static_cast<unsigned>(now_) & (kSlots - 1);
    if (const std::uint64_t m0 = occupied_[0] & (~std::uint64_t{0} << cur0);
        m0 != 0) {
      const int idx = std::countr_zero(m0);
      const TimeNs t = (now_ & ~TimeNs{kSlots - 1}) | idx;
      if (t > limit) return nullptr;
      run_probe_to(t);
      now_ = t;
      Node* n = pop_front(0, idx);
      --pending_;
      return n;
    }
    // Higher levels: the first occupied slot strictly above the clock's
    // chunk, at the lowest such level, bounds every pending event from
    // below. Cascade it and rescan.
    bool cascaded = false;
    for (int level = 1; level < kLevels; ++level) {
      const unsigned cur = static_cast<unsigned>(
          (static_cast<std::uint64_t>(now_) >> (kSlotBits * level)) &
          (kSlots - 1));
      if (cur + 1 >= kSlots) continue;
      const std::uint64_t above =
          occupied_[level] & (~std::uint64_t{0} << (cur + 1));
      if (above == 0) continue;
      const int idx = std::countr_zero(above);
      const int shift = kSlotBits * (level + 1);
      const TimeNs high =
          shift >= 64
              ? TimeNs{0}
              : static_cast<TimeNs>(
                    (static_cast<std::uint64_t>(now_) >> shift) << shift);
      const TimeNs slot_start =
          high | (static_cast<TimeNs>(idx) << (kSlotBits * level));
      if (slot_start > limit) return nullptr;
      run_probe_to(slot_start);
      now_ = slot_start;
      cascade(level, idx);
      cascaded = true;
      break;
    }
    if (!cascaded) {
      assert(false && "pending_ > 0 but wheel scan found nothing");
      return nullptr;
    }
  }
}

TimeNs Engine::next_lower_bound() const {
  if (pending_ == 0) return -1;
  // Mirrors the take_next scan without cascading. Level 0 gives the exact
  // earliest time; a higher-level slot start is a lower bound on every
  // pending event (slots at or below the clock's chunk are always empty —
  // they would have cascaded already).
  const unsigned cur0 = static_cast<unsigned>(now_) & (kSlots - 1);
  if (const std::uint64_t m0 = occupied_[0] & (~std::uint64_t{0} << cur0);
      m0 != 0) {
    return (now_ & ~TimeNs{kSlots - 1}) | std::countr_zero(m0);
  }
  for (int level = 1; level < kLevels; ++level) {
    const unsigned cur = static_cast<unsigned>(
        (static_cast<std::uint64_t>(now_) >> (kSlotBits * level)) &
        (kSlots - 1));
    if (cur + 1 >= kSlots) continue;
    const std::uint64_t above =
        occupied_[level] & (~std::uint64_t{0} << (cur + 1));
    if (above == 0) continue;
    const int idx = std::countr_zero(above);
    const int shift = kSlotBits * (level + 1);
    const TimeNs high =
        shift >= 64 ? TimeNs{0}
                    : static_cast<TimeNs>(
                          (static_cast<std::uint64_t>(now_) >> shift) << shift);
    return high | (static_cast<TimeNs>(idx) << (kSlotBits * level));
  }
  assert(false && "pending_ > 0 but wheel scan found nothing");
  return -1;
}

TimerId Engine::schedule_at(TimeNs t, Callback fn) {
  assert_owner();
  if (t < now_) t = now_;
  Node* n = alloc_node();
  n->time = t;
  n->seq = next_seq_++;
  n->fn = std::move(fn);
  const TimerId id =
      (static_cast<std::uint64_t>(n->index) + 1) << 32 | n->gen;
  wheel_insert(n);
  ++pending_;
  return id;
}

bool Engine::cancel(TimerId id) {
  assert_owner();
  const std::uint64_t idx1 = id >> 32;
  if (idx1 == 0 || idx1 > chunks_.size() * kChunk) return false;
  Node* n = node_at(idx1 - 1);
  if (n->gen != static_cast<std::uint32_t>(id) || !n->linked) return false;
  unlink(n);
  release_node(n);
  --pending_;
  return true;
}

bool Engine::step() {
  assert_owner();
  Node* n = take_next(kNoLimit);
  if (n == nullptr) return false;
  ++executed_;
  Callback fn = std::move(n->fn);
  release_node(n);  // recycle before invoking: fn may reschedule onto it
  fn();
  return true;
}

void Engine::run() {
  assert_owner();
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Engine::run_until(TimeNs t) {
  assert_owner();
  stopped_ = false;
  while (!stopped_) {
    Node* n = take_next(t);
    if (n == nullptr) break;
    ++executed_;
    Callback fn = std::move(n->fn);
    release_node(n);
    fn();
  }
  if (now_ < t) {
    run_probe_to(t);
    now_ = t;
  }
}

}  // namespace repro::sim
