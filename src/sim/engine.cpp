#include "sim/engine.h"

#include <utility>

namespace repro::sim {

TimerId Engine::schedule_at(TimeNs t, Callback fn) {
  if (t < now_) t = now_;
  const TimerId id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(fn)});
  return id;
}

bool Engine::cancel(TimerId id) {
  if (id == 0 || id >= next_id_) return false;
  // Insertion into the canceled set only succeeds once per id; events that
  // already ran removed their id from bookkeeping by never consulting it
  // again (ids are unique), so a double-cancel is a harmless no-op.
  return canceled_.insert(id).second;
}

bool Engine::step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = canceled_.find(ev.id); it != canceled_.end()) {
      canceled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Engine::run_until(TimeNs t) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    // Peek through canceled entries to find the next live event time.
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (auto it = canceled_.find(top.id); it != canceled_.end()) {
        canceled_.erase(it);
        queue_.pop();
        continue;
      }
      break;
    }
    if (queue_.empty() || queue_.top().time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace repro::sim
