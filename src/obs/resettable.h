// The one reset convention for measurement-phase splits.
//
// Warmup/measure experiments need to zero every throughput counter at the
// phase boundary; historically `net::Nic` called this `reset_counters()`
// while `sim::CpuPool`/`sim::PcieChannel` called it `reset_accounting()`,
// and a bench that forgot one silently reported warmup traffic. Components
// implement this interface and register with `obs::Registry`, so
// `Registry::reset_all()` cannot miss a counter.
//
// Header-only and dependency-free on purpose: sim-layer components
// implement it without linking against repro_obs.
#pragma once

namespace repro::obs {

class Resettable {
 public:
  virtual ~Resettable() = default;

  /// Zeroes accumulated counters (packets, bytes, busy time). Must not
  /// change any behaviourally relevant state — resetting during a run is
  /// an observation-side action and must keep the simulation bit-identical.
  virtual void reset_counters() = 0;
};

}  // namespace repro::obs
