#include "obs/export.h"

#include <fstream>

#include "obs/json.h"

namespace repro::obs {

namespace {

// Chrome trace timestamps are microseconds; emit "<us>.<ns%1000 padded>"
// as text so nanosecond precision survives without float formatting.
std::string us_text(TimeNs t) {
  const TimeNs us_part = t / 1000;
  const TimeNs ns_part = t % 1000;
  std::string out = std::to_string(us_part);
  out.push_back('.');
  out.push_back(static_cast<char>('0' + ns_part / 100));
  out.push_back(static_cast<char>('0' + (ns_part / 10) % 10));
  out.push_back(static_cast<char>('0' + ns_part % 10));
  return out;
}

std::string labels_text(const Labels& labels) {
  std::string out;
  for (const Label& l : labels) {
    if (!out.empty()) out.push_back(';');
    out += l.key;
    out.push_back('=');
    out += l.value;
  }
  return out;
}

void write_entry_meta(JsonWriter& w, const MetricEntry& e) {
  w.field("name", std::string_view(e.name));
  w.key("labels").begin_object();
  for (const Label& l : e.labels) {
    w.field(std::string_view(l.key), std::string_view(l.value));
  }
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& [pid, name] : tracer.process_names()) {
    w.begin_object();
    w.field("ph", "M");
    w.field("pid", static_cast<std::uint64_t>(pid));
    w.field("name", "process_name");
    w.key("args").begin_object();
    w.field("name", std::string_view(name));
    w.end_object();
    w.end_object();
  }
  for (const auto& [key, name] : tracer.thread_names()) {
    w.begin_object();
    w.field("ph", "M");
    w.field("pid", static_cast<std::uint64_t>(key.first));
    w.field("tid", static_cast<std::uint64_t>(key.second));
    w.field("name", "thread_name");
    w.key("args").begin_object();
    w.field("name", std::string_view(name));
    w.end_object();
    w.end_object();
  }
  tracer.for_each([&](const SpanRecord& r) {
    w.begin_object();
    w.field("ph", "X");
    w.field("cat", "sim");
    w.field("name", r.name);
    w.field("pid", static_cast<std::uint64_t>(r.pid));
    w.field("tid", static_cast<std::uint64_t>(r.tid));
    w.key("ts").value_raw(us_text(r.t0));
    const TimeNs dur = r.t1 > r.t0 ? r.t1 - r.t0 : 0;
    w.key("dur").value_raw(us_text(dur));
    w.key("args").begin_object();
    w.field("id", r.id);
    w.field("parent", r.parent);
    if (r.arg_name != nullptr) w.field(r.arg_name, r.arg);
    if (r.arg2_name != nullptr) w.field(r.arg2_name, r.arg2);
    w.end_object();
    w.end_object();
  });
  w.end_array();
  w.field("displayTimeUnit", "ns");
  w.end_object();
  os << '\n';
}

void write_metrics_json(std::ostream& os, const Registry& registry) {
  JsonWriter w(os);
  w.begin_object();
  w.key("metrics").begin_array();
  for (const MetricEntry& e : registry.entries()) {
    w.begin_object();
    write_entry_meta(w, e);
    switch (e.kind) {
      case MetricKind::kCounter:
        w.field("kind", "counter");
        w.field("value", *e.counter);
        break;
      case MetricKind::kGauge:
        w.field("kind", "gauge");
        w.field("value", e.gauge());
        break;
      case MetricKind::kHistogram:
        w.field("kind", "histogram");
        w.field("count", e.hist->count());
        w.field("mean", e.hist->mean());
        w.field("p50", e.hist->percentile(0.50));
        w.field("p95", e.hist->percentile(0.95));
        w.field("p99", e.hist->percentile(0.99));
        w.field("max", e.hist->max());
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_series_json(std::ostream& os, const Registry& registry,
                       const Sampler& sampler) {
  JsonWriter w(os);
  w.begin_object();
  w.field("samples_taken", sampler.samples_taken());
  w.key("series").begin_array();
  for (const Sampler::Series& s : sampler.series()) {
    const MetricEntry& e = registry.entries()[s.entry_index];
    w.begin_object();
    write_entry_meta(w, e);
    w.key("points").begin_array();
    s.for_each([&](const SeriesPoint& p) {
      w.begin_array();
      w.value(static_cast<std::int64_t>(p.t));
      w.value(p.v);
      w.end_array();
    });
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_series_csv(std::ostream& os, const Registry& registry,
                      const Sampler& sampler) {
  os << "metric,labels,t_ns,value\n";
  for (const Sampler::Series& s : sampler.series()) {
    const MetricEntry& e = registry.entries()[s.entry_index];
    const std::string labels = labels_text(e.labels);
    s.for_each([&](const SeriesPoint& p) {
      os << e.name << ',' << labels << ',' << p.t << ',' << p.v << '\n';
    });
  }
}

bool export_chrome_trace(const std::string& path, const Tracer& tracer) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f, tracer);
  return true;
}

bool export_metrics_json(const std::string& path, const Registry& registry) {
  std::ofstream f(path);
  if (!f) return false;
  write_metrics_json(f, registry);
  return true;
}

bool export_series_json(const std::string& path, const Registry& registry,
                        const Sampler& sampler) {
  std::ofstream f(path);
  if (!f) return false;
  write_series_json(f, registry, sampler);
  return true;
}

bool export_series_csv(const std::string& path, const Registry& registry,
                       const Sampler& sampler) {
  std::ofstream f(path);
  if (!f) return false;
  write_series_csv(f, registry, sampler);
  return true;
}

}  // namespace repro::obs
