#include "obs/series.h"

#include "sim/engine.h"
#include "sim/sharded.h"

namespace repro::obs {

void Sampler::attach(sim::Engine& engine, TimeNs interval) {
  if (!registry_.enabled() || interval <= 0) return;
  engine.set_probe(engine.now() + interval,
                   [this, interval](TimeNs t) -> TimeNs {
                     sample(t);
                     return t + interval;
                   });
}

void Sampler::attach(sim::ShardedEngine& se, TimeNs interval) {
  if (!registry_.enabled() || interval <= 0) return;
  next_due_ = se.now() + interval;
  se.set_barrier_hook([this, interval](TimeNs t) {
    // One sample per due instant crossed, stamped with the due instant
    // (regular cadence) and reading values as of this barrier.
    while (next_due_ <= t) {
      sample(next_due_);
      next_due_ += interval;
    }
  });
}

void Sampler::sample(TimeNs t) {
  if (!registry_.enabled()) return;
  ++samples_;
  const auto& entries = registry_.entries();
  if (slot_of_entry_.size() < entries.size()) {
    slot_of_entry_.resize(entries.size(), 0);
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const MetricEntry& e = entries[i];
    if (!e.sampled) continue;
    std::size_t slot = slot_of_entry_[i];
    if (slot == 0) {
      series_.emplace_back();
      Series& s = series_.back();
      s.entry_index = i;
      s.ring.resize(capacity_);
      slot = series_.size();
      slot_of_entry_[i] = slot;
    }
    Series& s = series_[slot - 1];
    SeriesPoint& p =
        s.ring[static_cast<std::size_t>(s.total % s.ring.size())];
    ++s.total;
    p.t = t;
    p.v = registry_.value_of(e);
  }
}

}  // namespace repro::obs
