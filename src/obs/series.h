// Sim-time series: periodic snapshots of sampled registry entries.
//
// The sampler rides the engine's out-of-band probe hook (see
// `sim::Engine::set_probe`) rather than scheduling events: probes fire as
// the clock advances past each sample instant but are not events, so
// `executed()`, `pending()` and the event interleaving are bit-identical
// with sampling on or off. That is the subsystem's hard invariant —
// observation must not perturb the simulation.
//
// Each sampled entry (gauges by default, counters opt-in) gets a
// fixed-capacity ring of `{t, value}` points; when a run outlives the ring
// the oldest points fall off, like the span flight recorder.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/units.h"
#include "obs/registry.h"

namespace repro::sim {
class Engine;
class ShardedEngine;
}  // namespace repro::sim

namespace repro::obs {

struct SeriesPoint {
  TimeNs t = 0;
  std::int64_t v = 0;
};

class Sampler {
 public:
  /// A ring of sample points for one registry entry.
  struct Series {
    std::size_t entry_index = 0;  // index into Registry::entries()
    std::vector<SeriesPoint> ring;
    std::uint64_t total = 0;

    std::size_t size() const {
      return total < ring.size() ? static_cast<std::size_t>(total)
                                 : ring.size();
    }
    /// Visits retained points oldest-first.
    template <class F>
    void for_each(F&& f) const {
      const std::size_t n = size();
      const std::size_t start =
          total < ring.size()
              ? 0
              : static_cast<std::size_t>(total % ring.size());
      for (std::size_t i = 0; i < n; ++i) {
        f(ring[(start + i) % ring.size()]);
      }
    }
  };

  Sampler(Registry& registry, std::size_t capacity)
      : registry_(registry), capacity_(capacity == 0 ? 1 : capacity) {}
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Starts periodic sampling on `engine`'s probe hook. No-op when the
  /// registry is disabled or `interval <= 0`.
  void attach(sim::Engine& engine, TimeNs interval);

  /// Sharded variant: rides the epoch-barrier hook. Sample *timestamps*
  /// stay on the exact interval grid, but values are read at the first
  /// barrier at-or-after each due instant, i.e. quantized to the epoch
  /// layout (a pure function of the simulation and shard count, never of
  /// the thread count — so sampled series are bit-identical at any thread
  /// count). The hook runs with every worker quiescent; reads are race-free.
  void attach(sim::ShardedEngine& se, TimeNs interval);

  /// Takes one snapshot of every sampled entry at time `t`. Entries
  /// registered after earlier samples join the series from now on.
  void sample(TimeNs t);

  const std::vector<Series>& series() const { return series_; }
  std::uint64_t samples_taken() const { return samples_; }

  /// Series for a given registry entry index, or nullptr.
  const Series* series_for(std::size_t entry_index) const {
    for (const Series& s : series_) {
      if (s.entry_index == entry_index) return &s;
    }
    return nullptr;
  }

 private:
  Registry& registry_;
  std::size_t capacity_;
  std::vector<Series> series_;
  // entry index -> series_ slot + 1 (0 = none yet); grows with the registry.
  std::vector<std::size_t> slot_of_entry_;
  std::uint64_t samples_ = 0;
  TimeNs next_due_ = 0;  // next sample instant (sharded barrier-hook mode)
};

}  // namespace repro::obs
