#include "obs/registry.h"

#include "sim/shard_context.h"

namespace repro::obs {

namespace {
// One cache line per shard so concurrent shards' dark-counter bumps never
// false-share; thread_local so concurrent *worlds* (sim_fuzz --jobs) never
// share at all. A handle constructed under ShardScope(s) binds the
// constructing thread's slot s, which only shard s's worker ever bumps —
// and the epoch barrier sequences those bumps across epochs.
struct alignas(64) ScratchSlot {
  std::uint64_t v = 0;
};
constexpr int kMaxScratchShards = 64;
thread_local ScratchSlot g_scratch[kMaxScratchShards];
}  // namespace

std::uint64_t* Counter::scratch_slot() {
  return &g_scratch[sim::current_shard() & (kMaxScratchShards - 1)].v;
}

std::string metric_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  key.push_back('|');
  for (const Label& l : labels) {
    key += l.key;
    key.push_back('=');
    key += l.value;
    key.push_back(',');
  }
  return key;
}

Counter Registry::counter(const std::string& name, const Labels& labels,
                          bool sampled) {
  if (!enabled_) return Counter(Counter::scratch_slot());
  const std::string key = metric_key(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Re-opening an owned counter hands back the same slot; re-opening an
    // exposed one would alias foreign storage, so those get the scratch.
    const MetricEntry& e = entries_[it->second];
    if (e.kind == MetricKind::kCounter && e.counter != nullptr) {
      return Counter(const_cast<std::uint64_t*>(e.counter));
    }
    return Counter(Counter::scratch_slot());
  }
  slots_.push_back(0);
  std::uint64_t* slot = &slots_.back();
  owned_slots_.push_back(slot);
  MetricEntry e;
  e.name = name;
  e.labels = labels;
  e.kind = MetricKind::kCounter;
  e.counter = slot;
  e.sampled = sampled;
  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(e));
  return Counter(slot);
}

Histogram* Registry::histogram(const std::string& name, const Labels& labels) {
  if (!enabled_) return &scratch_hist_;
  const std::string key = metric_key(name, labels);
  auto it = index_.find(key);
  if (it != index_.end()) {
    const MetricEntry& e = entries_[it->second];
    if (e.kind == MetricKind::kHistogram && e.hist != nullptr) {
      return const_cast<Histogram*>(e.hist);
    }
    return &scratch_hist_;
  }
  hists_.emplace_back();
  Histogram* h = &hists_.back();
  owned_hists_.push_back(h);
  MetricEntry e;
  e.name = name;
  e.labels = labels;
  e.kind = MetricKind::kHistogram;
  e.hist = h;
  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(e));
  return h;
}

void Registry::expose_counter(const std::string& name, const Labels& labels,
                              const std::uint64_t* v, bool sampled) {
  if (!enabled_ || v == nullptr) return;
  const std::string key = metric_key(name, labels);
  if (index_.count(key)) return;
  MetricEntry e;
  e.name = name;
  e.labels = labels;
  e.kind = MetricKind::kCounter;
  e.counter = v;
  e.sampled = sampled;
  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(e));
}

void Registry::expose_histogram(const std::string& name, const Labels& labels,
                                const Histogram* h) {
  if (!enabled_ || h == nullptr) return;
  const std::string key = metric_key(name, labels);
  if (index_.count(key)) return;
  MetricEntry e;
  e.name = name;
  e.labels = labels;
  e.kind = MetricKind::kHistogram;
  e.hist = h;
  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(e));
}

void Registry::expose_gauge(const std::string& name, const Labels& labels,
                            GaugeFn fn, bool sampled) {
  if (!enabled_ || !fn) return;
  const std::string key = metric_key(name, labels);
  if (index_.count(key)) return;
  MetricEntry e;
  e.name = name;
  e.labels = labels;
  e.kind = MetricKind::kGauge;
  e.gauge = std::move(fn);
  e.sampled = sampled;
  index_.emplace(key, entries_.size());
  entries_.push_back(std::move(e));
}

void Registry::reset_all() {
  for (std::uint64_t* slot : owned_slots_) *slot = 0;
  for (Histogram* h : owned_hists_) h->clear();
  for (Resettable* r : resettables_) r->reset_counters();
}

std::int64_t Registry::value_of(const MetricEntry& e) const {
  switch (e.kind) {
    case MetricKind::kCounter:
      return static_cast<std::int64_t>(*e.counter);
    case MetricKind::kGauge:
      return e.gauge();
    case MetricKind::kHistogram:
      return static_cast<std::int64_t>(e.hist->count());
  }
  return 0;
}

const MetricEntry* Registry::find(const std::string& name,
                                  const Labels& labels) const {
  auto it = index_.find(metric_key(name, labels));
  if (it == index_.end()) return nullptr;
  return &entries_[it->second];
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  const MetricEntry* e = find(name, labels);
  if (e == nullptr || e->kind != MetricKind::kCounter) return 0;
  return *e->counter;
}

}  // namespace repro::obs
