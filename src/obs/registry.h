// Metric registry: named, label-tagged counters, gauges and histograms.
//
// Hot-path design: a `Counter` is nothing but a pointer to a u64 slot owned
// by the registry. `inc()` is a single predictable add — no branch, no
// indirection through the registry, no allocation. When the registry is
// disabled every handle points at one shared scratch slot, so instrumented
// code is identical either way and the disabled cost is the same single add
// to a dead cache line.
//
// Components that already keep their own counters (`net::Nic`,
// `net::PortStats`, ...) are published by address via `expose_counter`;
// derived values (queue depth, utilization, cwnd) are published as pull
// gauges that the sampler reads at sample instants. Nothing in this file
// ever schedules engine events — registration and reads are pure
// observation.
//
// Iteration order over `entries()` is registration order, which is
// deterministic for a deterministic construction order; exporters rely on
// this so artifact files are stable across identical runs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "obs/resettable.h"

namespace repro::obs {

struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// Convenience constructor for the common one-label case.
inline Labels label(std::string key, std::string value) {
  return {{std::move(key), std::move(value)}};
}

/// Canonical "name|k=v,k=v" key used for dedup and lookups.
std::string metric_key(const std::string& name, const Labels& labels);

/// Pointer-to-slot counter handle. Default-constructed (and disabled)
/// handles target a scratch slot chosen by the *constructing* thread's
/// shard context: slots are thread-local and padded per shard, so dark
/// counters bumped concurrently — by sharded workers (components are built
/// under their home shard's ShardScope, and shard s only ever runs on one
/// thread per epoch) or by independent sim_fuzz --jobs sweeps (each job
/// constructs its world on its own thread) — never share a cache line and
/// never race.
class Counter {
 public:
  Counter() : v_(scratch_slot()) {}

  void inc(std::uint64_t n = 1) { *v_ += n; }
  std::uint64_t value() const { return *v_; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* v) : v_(v) {}

  static std::uint64_t* scratch_slot();
  std::uint64_t* v_;
};

using GaugeFn = std::function<std::int64_t()>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricEntry {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  const std::uint64_t* counter = nullptr;  // kCounter
  GaugeFn gauge;                           // kGauge
  const Histogram* hist = nullptr;         // kHistogram
  bool sampled = false;  // include in the time-series sampler
};

class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_; }

  /// Creates (or re-opens) a registry-owned counter. Slots live in a deque
  /// so handles stay valid as the registry grows. Disabled registries hand
  /// out the scratch handle and record nothing.
  Counter counter(const std::string& name, const Labels& labels = {},
                  bool sampled = false);

  /// Creates (or re-opens) a registry-owned histogram. Disabled registries
  /// return a scratch histogram that is never exported.
  Histogram* histogram(const std::string& name, const Labels& labels = {});

  /// Publishes an existing component-owned counter/histogram by address.
  /// The pointee must outlive the registry's export calls.
  void expose_counter(const std::string& name, const Labels& labels,
                      const std::uint64_t* v, bool sampled = false);
  void expose_histogram(const std::string& name, const Labels& labels,
                        const Histogram* h);

  /// Publishes a derived value; `fn` is called at sample/export instants
  /// only, never on the simulation hot path.
  void expose_gauge(const std::string& name, const Labels& labels, GaugeFn fn,
                    bool sampled = true);

  /// Registers a component for `reset_all()`. Works even when disabled:
  /// phase-split resets are experiment mechanics, not observation.
  void add_resettable(Resettable* r) { resettables_.push_back(r); }

  /// Zeroes owned counters/histograms and every registered Resettable.
  void reset_all();

  const std::vector<MetricEntry>& entries() const { return entries_; }

  /// Current numeric value of an entry (histograms report their count).
  std::int64_t value_of(const MetricEntry& e) const;

  /// Lookup helpers (export/test paths; linear in label count only).
  const MetricEntry* find(const std::string& name,
                          const Labels& labels = {}) const;
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;

 private:
  bool enabled_;
  std::deque<std::uint64_t> slots_;      // owned counter storage
  std::deque<Histogram> hists_;          // owned histogram storage
  std::vector<MetricEntry> entries_;     // registration order
  std::unordered_map<std::string, std::size_t> index_;  // key -> entry
  std::vector<Resettable*> resettables_;
  std::vector<std::uint64_t*> owned_slots_;
  std::vector<Histogram*> owned_hists_;
  Histogram scratch_hist_;
};

}  // namespace repro::obs
