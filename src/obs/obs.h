// Facade bundling the three observability pieces — metric registry,
// sim-time sampler, span tracer — behind one config and one pointer.
//
// A `Cluster` (or a test) owns an `Obs` and hands a non-owning pointer to
// `net::Network`; everything fabric-adjacent reaches it from there. A null
// pointer or `enabled=false` yields the same simulation bit-for-bit — the
// perturbation-freedom invariant enforced by tests/determinism_test.cpp.
#pragma once

#include "common/units.h"
#include "obs/registry.h"
#include "obs/series.h"
#include "obs/trace.h"
#include "sim/sharded.h"

namespace repro::sim {
class Engine;
}

namespace repro::obs {

struct ObsConfig {
  bool enabled = true;
  /// Record causal spans (requires `enabled`).
  bool trace = true;
  /// Span flight-recorder capacity (records; oldest overwritten).
  std::size_t trace_capacity = 1 << 16;
  /// Time-series sample period; <= 0 disables sampling.
  TimeNs sample_interval = us(100);
  /// Points retained per series ring.
  std::size_t series_capacity = 4096;
};

class Obs {
 public:
  explicit Obs(ObsConfig cfg = {})
      : cfg_(cfg),
        registry_(cfg.enabled),
        tracer_(cfg.enabled && cfg.trace, cfg.trace_capacity),
        sampler_(registry_, cfg.series_capacity) {}
  Obs(const Obs&) = delete;
  Obs& operator=(const Obs&) = delete;

  bool enabled() const { return cfg_.enabled; }
  const ObsConfig& config() const { return cfg_; }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Sampler& sampler() { return sampler_; }
  const Sampler& sampler() const { return sampler_; }

  /// Starts periodic gauge sampling on `engine` (out-of-band probe; adds no
  /// engine events). Call once after registering gauges is fine too —
  /// late-registered entries join subsequent samples.
  void attach(sim::Engine& engine) {
    sampler_.attach(engine, cfg_.sample_interval);
  }

  /// Sharded variant: single-shard engines use the legacy probe hook (bit
  /// identical to attach(Engine&)); multi-shard engines sample on the
  /// epoch-barrier hook and split the tracer into per-shard rings.
  void attach(sim::ShardedEngine& se) {
    tracer_.set_shards(se.shards());
    if (se.shards() == 1) {
      sampler_.attach(se.shard(0), cfg_.sample_interval);
    } else {
      sampler_.attach(se, cfg_.sample_interval);
    }
  }

 private:
  ObsConfig cfg_;
  Registry registry_;
  Tracer tracer_;
  Sampler sampler_;
};

}  // namespace repro::obs
