// Causal trace spans: a flight recorder for per-I/O stage timing.
//
// One I/O produces a tree of spans — guest NVMe submit → SA / DPU CPU →
// FPGA pipeline → internal PCIe → per-hop fabric traversal (folded from the
// HPCC INT trail each packet already carries) → block server → SSD. Each
// span is `{id, parent, name, t0, t1, pid, tid, args}` where `pid` is a
// simulated device (NIC/switch node id) and `tid` a core or port within it,
// matching the Chrome trace-event process/thread model so exports load
// straight into Perfetto.
//
// The recorder is a fixed-capacity ring fully allocated at construction:
// recording a span is a couple of stores plus one wrapping index increment,
// with zero steady-state allocations. When full it overwrites the oldest
// records (flight-recorder semantics) and counts the drops. Span names and
// arg names must be string literals (static storage) — records keep the
// pointer only.
//
// Disabled tracers hand out span id 0 and drop records after one
// predictable branch; id 0 also means "no parent", so call sites never
// special-case the disabled path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"

namespace repro::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  const char* name = "";
  TimeNs t0 = 0;
  TimeNs t1 = 0;
  std::uint32_t pid = 0;  // simulated device (node id)
  std::uint32_t tid = 0;  // core / port within the device
  const char* arg_name = nullptr;
  std::uint64_t arg = 0;
  const char* arg2_name = nullptr;
  std::uint64_t arg2 = 0;
};

class Tracer {
 public:
  Tracer(bool enabled, std::size_t capacity)
      : enabled_(enabled && capacity > 0) {
    if (enabled_) ring_.resize(capacity);
  }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  /// Reserves a span id before its end time is known; the record is written
  /// later via `span_with_id`. Returns 0 when disabled.
  std::uint64_t begin() { return enabled_ ? next_id_++ : 0; }

  /// Records a completed span and returns its id (0 when disabled).
  std::uint64_t span(const char* name, std::uint64_t parent, TimeNs t0,
                     TimeNs t1, std::uint32_t pid, std::uint32_t tid = 0,
                     const char* arg_name = nullptr, std::uint64_t arg = 0,
                     const char* arg2_name = nullptr, std::uint64_t arg2 = 0) {
    if (!enabled_) return 0;
    return write(next_id_++, name, parent, t0, t1, pid, tid, arg_name, arg,
                 arg2_name, arg2);
  }

  /// Records a span under an id previously reserved with `begin()`.
  void span_with_id(std::uint64_t id, const char* name, std::uint64_t parent,
                    TimeNs t0, TimeNs t1, std::uint32_t pid,
                    std::uint32_t tid = 0, const char* arg_name = nullptr,
                    std::uint64_t arg = 0, const char* arg2_name = nullptr,
                    std::uint64_t arg2 = 0) {
    if (!enabled_ || id == 0) return;
    write(id, name, parent, t0, t1, pid, tid, arg_name, arg, arg2_name, arg2);
  }

  /// Perfetto-visible display names, emitted as "M" metadata events.
  void set_process_name(std::uint32_t pid, std::string name) {
    if (enabled_) process_names_[pid] = std::move(name);
  }
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       std::string name) {
    if (enabled_) thread_names_[{pid, tid}] = std::move(name);
  }

  std::size_t size() const {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
  }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ < ring_.size() ? 0 : total_ - ring_.size();
  }

  /// Visits retained records oldest-first.
  template <class F>
  void for_each(F&& f) const {
    const std::size_t n = size();
    const std::size_t start =
        total_ < ring_.size() ? 0 : static_cast<std::size_t>(total_ % ring_.size());
    for (std::size_t i = 0; i < n; ++i) {
      f(ring_[(start + i) % ring_.size()]);
    }
  }

  /// Linear scan by id (test/export convenience, not a hot path).
  const SpanRecord* find(std::uint64_t id) const {
    const SpanRecord* out = nullptr;
    for_each([&](const SpanRecord& r) {
      if (r.id == id) out = &r;
    });
    return out;
  }

  const std::map<std::uint32_t, std::string>& process_names() const {
    return process_names_;
  }
  const std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>&
  thread_names() const {
    return thread_names_;
  }

  void clear() {
    total_ = 0;
    next_id_ = 1;
  }

 private:
  std::uint64_t write(std::uint64_t id, const char* name, std::uint64_t parent,
                      TimeNs t0, TimeNs t1, std::uint32_t pid,
                      std::uint32_t tid, const char* arg_name,
                      std::uint64_t arg, const char* arg2_name,
                      std::uint64_t arg2) {
    SpanRecord& r = ring_[static_cast<std::size_t>(total_ % ring_.size())];
    ++total_;
    r.id = id;
    r.parent = parent;
    r.name = name;
    r.t0 = t0;
    r.t1 = t1;
    r.pid = pid;
    r.tid = tid;
    r.arg_name = arg_name;
    r.arg = arg;
    r.arg2_name = arg2_name;
    r.arg2 = arg2;
    return id;
  }

  bool enabled_;
  std::vector<SpanRecord> ring_;
  std::uint64_t total_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint32_t, std::string> process_names_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names_;
};

}  // namespace repro::obs
