// Causal trace spans: a flight recorder for per-I/O stage timing.
//
// One I/O produces a tree of spans — guest NVMe submit → SA / DPU CPU →
// FPGA pipeline → internal PCIe → per-hop fabric traversal (folded from the
// HPCC INT trail each packet already carries) → block server → SSD. Each
// span is `{id, parent, name, t0, t1, pid, tid, args}` where `pid` is a
// simulated device (NIC/switch node id) and `tid` a core or port within it,
// matching the Chrome trace-event process/thread model so exports load
// straight into Perfetto.
//
// The recorder is a set of fixed-capacity rings fully allocated up front:
// recording a span is a couple of stores plus one wrapping index increment,
// with zero steady-state allocations. When full a ring overwrites its
// oldest records (flight-recorder semantics) and counts the drops. Span
// names and arg names must be string literals (static storage) — records
// keep the pointer only.
//
// Sharded runs call `set_shards(n)` before any span is recorded: each shard
// then writes its own ring (selected by the thread's shard context), so
// workers never contend, and `for_each` merges rings in (t0, id) order —
// a deterministic function of the simulation, not of the thread count.
// Single-shard tracers keep one ring and the exact legacy record order.
// Recording from shard s >= the configured ring count is a debug assert
// (the loud-failure ownership check for span writes).
//
// Disabled tracers hand out span id 0 and drop records after one
// predictable branch; id 0 also means "no parent", so call sites never
// special-case the disabled path.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/shard_context.h"

namespace repro::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  const char* name = "";
  TimeNs t0 = 0;
  TimeNs t1 = 0;
  std::uint32_t pid = 0;  // simulated device (node id)
  std::uint32_t tid = 0;  // core / port within the device
  const char* arg_name = nullptr;
  std::uint64_t arg = 0;
  const char* arg2_name = nullptr;
  std::uint64_t arg2 = 0;
};

class Tracer {
 public:
  Tracer(bool enabled, std::size_t capacity)
      : enabled_(enabled && capacity > 0), capacity_(capacity) {
    rings_.resize(1);
    if (enabled_) rings_[0].ring.resize(capacity);
  }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }

  /// Splits the flight-recorder capacity into one ring per shard. Must be
  /// called before any span is recorded (the cluster builder does this
  /// right after attaching obs, before devices exist). Shard s > 0 tags
  /// its span ids with (s << 48); shard 0 keeps the legacy id sequence.
  void set_shards(int shards) {
    if (!enabled_ || shards <= 1) return;
    assert(total_recorded() == 0 &&
           "Tracer::set_shards after spans were recorded");
    const std::size_t per =
        std::max<std::size_t>(1, capacity_ / static_cast<std::size_t>(shards));
    rings_.clear();
    rings_.resize(static_cast<std::size_t>(shards));
    for (std::size_t s = 0; s < rings_.size(); ++s) {
      rings_[s].ring.resize(per);
      rings_[s].id_tag = s == 0 ? 0 : static_cast<std::uint64_t>(s) << 48;
    }
  }
  int shards() const { return static_cast<int>(rings_.size()); }

  /// Reserves a span id before its end time is known; the record is written
  /// later via `span_with_id`. Returns 0 when disabled.
  std::uint64_t begin() {
    if (!enabled_) return 0;
    Ring& r = home_ring();
    return r.id_tag | r.next_seq++;
  }

  /// Records a completed span and returns its id (0 when disabled).
  std::uint64_t span(const char* name, std::uint64_t parent, TimeNs t0,
                     TimeNs t1, std::uint32_t pid, std::uint32_t tid = 0,
                     const char* arg_name = nullptr, std::uint64_t arg = 0,
                     const char* arg2_name = nullptr, std::uint64_t arg2 = 0) {
    if (!enabled_) return 0;
    Ring& r = home_ring();
    return write(r, r.id_tag | r.next_seq++, name, parent, t0, t1, pid, tid,
                 arg_name, arg, arg2_name, arg2);
  }

  /// Records a span under an id previously reserved with `begin()`.
  void span_with_id(std::uint64_t id, const char* name, std::uint64_t parent,
                    TimeNs t0, TimeNs t1, std::uint32_t pid,
                    std::uint32_t tid = 0, const char* arg_name = nullptr,
                    std::uint64_t arg = 0, const char* arg2_name = nullptr,
                    std::uint64_t arg2 = 0) {
    if (!enabled_ || id == 0) return;
    write(home_ring(), id, name, parent, t0, t1, pid, tid, arg_name, arg,
          arg2_name, arg2);
  }

  /// Perfetto-visible display names, emitted as "M" metadata events.
  /// Registration happens at construction time (single-threaded, under the
  /// builder's shard scopes), never from workers.
  void set_process_name(std::uint32_t pid, std::string name) {
    if (enabled_) process_names_[pid] = std::move(name);
  }
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       std::string name) {
    if (enabled_) thread_names_[{pid, tid}] = std::move(name);
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Ring& r : rings_) n += r.size();
    return n;
  }
  std::uint64_t total_recorded() const {
    std::uint64_t n = 0;
    for (const Ring& r : rings_) n += r.total;
    return n;
  }
  std::uint64_t dropped() const {
    std::uint64_t n = 0;
    for (const Ring& r : rings_) n += r.dropped();
    return n;
  }

  /// Visits retained records: single ring (legacy) oldest-first in record
  /// order; sharded rings merged by (t0, id) — deterministic regardless of
  /// how many threads executed the run.
  template <class F>
  void for_each(F&& f) const {
    if (rings_.size() == 1) {
      rings_[0].for_each_local(f);
      return;
    }
    std::vector<const SpanRecord*> all;
    all.reserve(size());
    for (const Ring& r : rings_) {
      r.for_each_local([&all](const SpanRecord& rec) { all.push_back(&rec); });
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const SpanRecord* a, const SpanRecord* b) {
                       return a->t0 != b->t0 ? a->t0 < b->t0 : a->id < b->id;
                     });
    for (const SpanRecord* rec : all) f(*rec);
  }

  /// Linear scan by id (test/export convenience, not a hot path).
  const SpanRecord* find(std::uint64_t id) const {
    const SpanRecord* out = nullptr;
    for_each([&](const SpanRecord& r) {
      if (r.id == id) out = &r;
    });
    return out;
  }

  const std::map<std::uint32_t, std::string>& process_names() const {
    return process_names_;
  }
  const std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>&
  thread_names() const {
    return thread_names_;
  }

  void clear() {
    for (Ring& r : rings_) {
      r.total = 0;
      r.next_seq = 1;
    }
  }

 private:
  struct Ring {
    std::vector<SpanRecord> ring;
    std::uint64_t total = 0;
    std::uint64_t next_seq = 1;
    std::uint64_t id_tag = 0;

    std::size_t size() const {
      return total < ring.size() ? static_cast<std::size_t>(total)
                                 : ring.size();
    }
    std::uint64_t dropped() const {
      return total < ring.size() ? 0 : total - ring.size();
    }
    template <class F>
    void for_each_local(F&& f) const {
      const std::size_t n = size();
      const std::size_t start =
          total < ring.size() ? 0
                              : static_cast<std::size_t>(total % ring.size());
      for (std::size_t i = 0; i < n; ++i) {
        f(ring[(start + i) % ring.size()]);
      }
    }
  };

  Ring& home_ring() {
    const std::size_t s = static_cast<std::size_t>(sim::current_shard());
    // The loud-failure ownership check: recording a span from a shard this
    // tracer was never configured for means a sharded cluster is sharing a
    // tracer with a single-shard one (or set_shards was skipped) — a silent
    // data race in release builds.
    assert(s < rings_.size() &&
           "span recorded from an unconfigured shard (missing "
           "Tracer::set_shards?)");
    return rings_[s < rings_.size() ? s : 0];
  }

  std::uint64_t write(Ring& r, std::uint64_t id, const char* name,
                      std::uint64_t parent, TimeNs t0, TimeNs t1,
                      std::uint32_t pid, std::uint32_t tid,
                      const char* arg_name, std::uint64_t arg,
                      const char* arg2_name, std::uint64_t arg2) {
    SpanRecord& rec =
        r.ring[static_cast<std::size_t>(r.total % r.ring.size())];
    ++r.total;
    rec.id = id;
    rec.parent = parent;
    rec.name = name;
    rec.t0 = t0;
    rec.t1 = t1;
    rec.pid = pid;
    rec.tid = tid;
    rec.arg_name = arg_name;
    rec.arg = arg;
    rec.arg2_name = arg2_name;
    rec.arg2 = arg2;
    return id;
  }

  bool enabled_;
  std::size_t capacity_;
  std::vector<Ring> rings_;
  std::map<std::uint32_t, std::string> process_names_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names_;
};

}  // namespace repro::obs
