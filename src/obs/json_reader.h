// Minimal JSON reader for artifact round-trips.
//
// The obs layer's JsonWriter only *writes*; subsystems that replay their
// own artifacts (chaos fault plans, ebs scenario specs) share this
// recursive-descent reader: objects, arrays, strings (with the escapes the
// writer emits), numbers, bools. Enough for any file JsonWriter produced —
// and for hand-edited repros.
#pragma once

#include <cctype>
#include <cstdlib>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace repro::obs {

struct JsonValue;
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;      // kArray
  std::unique_ptr<JsonMembers> obj;  // kObject

  const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : *obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& s) : s_(s) {}

  bool parse(JsonValue* out) {
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  std::string error() const { return err_; }

 private:
  bool fail(const std::string& why) {
    if (err_.empty()) {
      err_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return string(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return number(out);
  }

  bool object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    out->obj = std::make_unique<JsonMembers>();
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      JsonValue v;
      if (!value(&v)) return false;
      out->obj->emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            // The writer only emits \u00XX for control bytes.
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            out->push_back(static_cast<char>(
                std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16)));
            pos_ += 4;
            break;
          default: return fail("unknown escape");
        }
        continue;
      }
      out->push_back(c);
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    out->type = JsonValue::Type::kNumber;
    out->num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

/// Fetches `obj[key]` as a number; false if absent or not numeric.
inline bool json_number(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) return false;
  *out = v->num;
  return true;
}

/// Fetches `obj[key]` as a string; false if absent or not a string.
inline bool json_string(const JsonValue& obj, const char* key,
                        std::string* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString) return false;
  *out = v->str;
  return true;
}

/// Fetches `obj[key]` as a bool; false if absent or not a bool.
inline bool json_bool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != JsonValue::Type::kBool) return false;
  *out = v->b;
  return true;
}

/// Strict-parse guard: verifies every member of object `obj` is named in
/// `allowed`. A misspelled knob in a hand-edited spec must fail loudly, not
/// silently fall back to the default. On the first unknown key sets `*error`
/// to `<where>: unrecognized field "<key>"` and returns false. `pred` (when
/// non-null) extends the allow-list for keys a subsystem validates itself.
inline bool json_check_keys(const JsonValue& obj,
                            std::initializer_list<const char*> allowed,
                            const char* where, std::string* error,
                            bool (*pred)(const std::string&) = nullptr) {
  if (obj.type != JsonValue::Type::kObject) return true;
  for (const auto& [key, value] : *obj.obj) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok && pred != nullptr) ok = pred(key);
    if (!ok) {
      if (error != nullptr) {
        *error = std::string(where) + ": unrecognized field \"" + key + "\"";
      }
      return false;
    }
  }
  return true;
}

}  // namespace repro::obs
