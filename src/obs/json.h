// Minimal streaming JSON writer shared by the exporters and the bench
// run-summary helper. Handles commas and string escaping; structure is the
// caller's responsibility (matched begin/end, key before value in objects).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace repro::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() {
    separator();
    os_ << '{';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    separator();
    os_ << '[';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    os_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    separator();
    write_string(k);
    os_ << ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    separator();
    write_string(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v) {
    separator();
    if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
      os_ << static_cast<std::int64_t>(v) << ".0";
    } else {
      os_ << v;
    }
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separator();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separator();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(bool v) {
    separator();
    os_ << (v ? "true" : "false");
    return *this;
  }
  /// Emits pre-formatted numeric text verbatim (caller guarantees it is a
  /// valid JSON number, e.g. fixed-point "12.345").
  JsonWriter& value_raw(std::string_view text) {
    separator();
    os_ << text;
    return *this;
  }

  template <class V>
  JsonWriter& field(std::string_view k, V v) {
    key(k);
    return value(v);
  }

 private:
  void separator() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (!stack_.back()) os_ << ',';
      stack_.back() = false;
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          os_ << "\\\"";
          break;
        case '\\':
          os_ << "\\\\";
          break;
        case '\n':
          os_ << "\\n";
          break;
        case '\t':
          os_ << "\\t";
          break;
        case '\r':
          os_ << "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            const char* hex = "0123456789abcdef";
            os_ << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> stack_;  // true = container still empty
  bool pending_value_ = false;
};

}  // namespace repro::obs
