// Exporters: Chrome trace-event JSON (Perfetto-loadable), metric/series
// JSON, and series CSV.
//
// Chrome trace mapping: span pid = simulated device, tid = core/port within
// it; "M" metadata events name processes/threads, "X" complete events carry
// one span each with `ts`/`dur` in (fractional) microseconds and the span
// id/parent in `args` so tooling can rebuild the causal tree.
#pragma once

#include <ostream>
#include <string>

#include "obs/registry.h"
#include "obs/series.h"
#include "obs/trace.h"

namespace repro::obs {

void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// All registry entries with current values; histograms include
/// count/mean/p50/p95/p99/max.
void write_metrics_json(std::ostream& os, const Registry& registry);

/// Sampled time series as JSON: one object per series with its points.
void write_series_json(std::ostream& os, const Registry& registry,
                       const Sampler& sampler);

/// Sampled time series as CSV rows: metric,labels,t_ns,value.
void write_series_csv(std::ostream& os, const Registry& registry,
                      const Sampler& sampler);

/// File-writing wrappers; return false if the file cannot be opened.
bool export_chrome_trace(const std::string& path, const Tracer& tracer);
bool export_metrics_json(const std::string& path, const Registry& registry);
bool export_series_json(const std::string& path, const Registry& registry,
                        const Sampler& sampler);
bool export_series_csv(const std::string& path, const Registry& registry,
                       const Sampler& sampler);

}  // namespace repro::obs
