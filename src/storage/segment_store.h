// Per-block-server persistent state: segments and their blocks.
//
// A segment is a 2 MB contiguous slice of a virtual disk hosted on one
// block server (§4.5: "each segment hosted in a block server contains
// relatively large (e.g., 2MB) and continuous LBA addresses"). The store
// keeps per-block CRCs always, and the data bytes only when asked to
// (integrity experiments) — high-rate benches run metadata-only.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/crc32.h"

namespace repro::storage {

inline constexpr std::uint64_t kSegmentBytes = 2 * 1024 * 1024;

struct StoredBlock {
  std::uint32_t len = 0;
  std::uint32_t crc = 0;               ///< crc32_raw of the block data
  std::vector<std::uint8_t> data;      ///< kept only if store_payload
  std::uint64_t version = 0;
};

class SegmentStore {
 public:
  explicit SegmentStore(bool store_payload) : store_payload_(store_payload) {}

  /// Writes a block at `offset` within `segment_id`. `data` may be empty
  /// (sized placeholder): then only (len, crc) are recorded.
  /// Returns false if the block would cross the segment end.
  bool put(std::uint64_t segment_id, std::uint64_t offset, std::uint32_t len,
           std::uint32_t crc, std::vector<std::uint8_t> data);

  std::optional<StoredBlock> get(std::uint64_t segment_id,
                                 std::uint64_t offset) const;

  /// Running segment-level CRC maintained via crc32_combine as blocks are
  /// appended in offset order (exercised by the integrity tests). Cheap to
  /// keep per append: combine is a handful of precomputed GF(2) matrix-vector
  /// products, and the per-block CRC rides the dispatched kernels
  /// (src/kernels), whose tiers are bit-identical — a segment CRC can never
  /// depend on the host ISA.
  std::optional<std::uint32_t> segment_crc(std::uint64_t segment_id) const;

  std::size_t segment_count() const { return segments_.size(); }
  std::uint64_t blocks_written() const { return blocks_written_; }
  bool stores_payload() const { return store_payload_; }

 private:
  struct Segment {
    std::map<std::uint64_t, StoredBlock> blocks;  // by offset
    std::uint32_t rolling_crc = 0;  // crc32_ieee over appended data, if real
    std::uint64_t appended = 0;     // bytes covered by rolling_crc
    bool crc_valid = true;          // false after out-of-order overwrite
  };

  bool store_payload_;
  std::unordered_map<std::uint64_t, Segment> segments_;
  std::uint64_t blocks_written_ = 0;
};

}  // namespace repro::storage
