// SSD service model.
//
// The paper's Fig. 6 shows writes completing in tens of microseconds (SSD
// write cache, no NAND touch — §2.3 footnote) while reads pay the NAND
// medium. We model an SSD as a set of parallel channels, each a serial
// resource, with log-normal service times per op class plus a bandwidth
// term for large transfers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/cpu.h"
#include "sim/engine.h"

namespace repro::storage {

struct SsdParams {
  TimeNs write_cache_median = us(10);  ///< DRAM-backed write cache hit
  double write_sigma = 0.25;
  TimeNs read_median = us(55);  ///< NAND read + FTL
  double read_sigma = 0.30;
  int channels = 8;
  double internal_bandwidth_gbps = 24.0;  ///< per-channel transfer rate
};

class SsdModel {
 public:
  SsdModel(sim::Engine& engine, SsdParams params, Rng rng);

  /// Completion fires after queueing + service. Returns completion time.
  TimeNs write(std::uint32_t bytes, sim::Callback done);
  TimeNs read(std::uint32_t bytes, sim::Callback done);

  std::uint64_t writes() const { return writes_; }
  std::uint64_t reads() const { return reads_; }

  // --- chaos fault hooks -------------------------------------------------
  /// Scales per-op service medians (latency spike). 1.0 = healthy.
  void set_latency_multiplier(double m) { latency_mult_ = m; }
  double latency_multiplier() const { return latency_mult_; }
  /// While stalled the device accepts ops but serves none; pending ops
  /// flush in FIFO order on unstall (firmware hiccup / GC pause model).
  void set_stalled(bool stalled);
  bool stalled() const { return stalled_; }

  /// Total queued-but-unserved work across channels (the sampler's "SSD
  /// queue length" gauge).
  TimeNs queue_backlog() const {
    TimeNs total = 0;
    for (const auto& c : channels_) total += c->backlog();
    return total;
  }

 private:
  struct PendingOp {
    std::uint32_t bytes;
    TimeNs median;
    double sigma;
    sim::Callback done;
  };

  TimeNs submit(std::uint32_t bytes, TimeNs median, double sigma,
                sim::Callback done);
  TimeNs dispatch(std::uint32_t bytes, TimeNs median, double sigma,
                  sim::Callback done);

  sim::Engine& engine_;
  SsdParams params_;
  Rng rng_;
  std::vector<std::unique_ptr<sim::CpuCore>> channels_;  // serial resources
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
  double latency_mult_ = 1.0;
  bool stalled_ = false;
  std::vector<PendingOp> stalled_ops_;  // FIFO, flushed on unstall
};

}  // namespace repro::storage
