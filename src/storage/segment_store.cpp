#include "storage/segment_store.h"

namespace repro::storage {

bool SegmentStore::put(std::uint64_t segment_id, std::uint64_t offset,
                       std::uint32_t len, std::uint32_t crc,
                       std::vector<std::uint8_t> data) {
  if (len == 0 || offset + len > kSegmentBytes) return false;
  Segment& seg = segments_[segment_id];
  StoredBlock blk;
  blk.len = len;
  blk.crc = crc;
  auto existing = seg.blocks.find(offset);
  blk.version = existing == seg.blocks.end() ? 1 : existing->second.version + 1;

  // Maintain the append-order segment CRC when data is real and writes
  // arrive strictly at the append point; anything else invalidates it
  // (the production system re-scrubs in that case).
  if (store_payload_ && !data.empty()) {
    if (seg.crc_valid && offset == seg.appended) {
      seg.rolling_crc = crc32_combine(seg.rolling_crc, crc32_ieee(data),
                                      data.size());
      seg.appended += data.size();
    } else {
      seg.crc_valid = false;
    }
    blk.data = std::move(data);
  }
  seg.blocks[offset] = std::move(blk);
  ++blocks_written_;
  return true;
}

std::optional<StoredBlock> SegmentStore::get(std::uint64_t segment_id,
                                             std::uint64_t offset) const {
  auto sit = segments_.find(segment_id);
  if (sit == segments_.end()) return std::nullopt;
  auto bit = sit->second.blocks.find(offset);
  if (bit == sit->second.blocks.end()) return std::nullopt;
  return bit->second;
}

std::optional<std::uint32_t> SegmentStore::segment_crc(
    std::uint64_t segment_id) const {
  auto sit = segments_.find(segment_id);
  if (sit == segments_.end() || !sit->second.crc_valid ||
      sit->second.appended == 0) {
    return std::nullopt;
  }
  return sit->second.rolling_crc;
}

}  // namespace repro::storage
