#include "storage/block_server.h"

#include <algorithm>

namespace repro::storage {

using transport::DataBlock;
using transport::StorageRequest;
using transport::StorageResponse;
using transport::StorageStatus;

BlockServer::BlockServer(sim::Engine& engine, BlockServerParams params,
                         Rng rng)
    : engine_(engine),
      params_(params),
      rng_(rng),
      store_(params.store_payload) {
  for (int r = 0; r < params_.backend.replicas; ++r) {
    replica_ssds_.push_back(
        std::make_unique<SsdModel>(engine, params_.ssd, rng_.fork(100 + r)));
  }
}

TimeNs BlockServer::backend_delay() {
  return static_cast<TimeNs>(rng_.lognormal_median(
      static_cast<double>(params_.backend.rtt_median),
      params_.backend.rtt_sigma));
}

void BlockServer::handle(StorageRequest request,
                         std::function<void(StorageResponse)> reply) {
  const std::size_t block_estimate = std::max<std::size_t>(
      request.blocks.size(), (request.len + 4095) / 4096);
  const TimeNs cpu = params_.per_request_cpu +
                     params_.per_block_cpu *
                         static_cast<TimeNs>(block_estimate);
  // Block-server CPU is modelled as a fixed service delay: the paper's FN
  // experiments never bottleneck on storage-server cores.
  engine_.after(cpu, [this, req = std::move(request),
                      cb = std::move(reply)]() mutable {
    if (req.op == transport::OpType::kWrite) {
      handle_write(std::move(req), std::move(cb));
    } else {
      handle_read(std::move(req), std::move(cb));
    }
  });
}

void BlockServer::handle_write(StorageRequest request,
                               std::function<void(StorageResponse)> reply) {
  // CRC verification of real payloads (placeholders carry no bytes to
  // verify; their CRC is trusted — the latency cost is already charged).
  // crc32_raw dispatches through src/kernels (CLMUL-folded on vector
  // tiers), so verifying every simulated block stays cheap and the
  // pass/fail outcome is identical on every host ISA.
  for (auto& blk : request.blocks) {
    if (params_.verify_crc && blk.has_payload()) {
      if (crc32_raw(blk.data) != blk.crc) {
        ++crc_failures_;
        StorageResponse resp;
        resp.status = StorageStatus::kCrcMismatch;
        reply(std::move(resp));
        return;
      }
    }
  }
  // Store on the primary, then 3-way replicate to chunk servers over BN.
  std::uint64_t offset_in_segment = request.segment_offset;
  for (auto& blk : request.blocks) {
    if (!store_.put(request.segment_id, offset_in_segment, blk.len, blk.crc,
                    std::move(blk.data))) {
      StorageResponse resp;
      resp.status = StorageStatus::kOutOfRange;
      reply(std::move(resp));
      return;
    }
    offset_in_segment += blk.len;
  }

  struct Fanout {
    int remaining;
    TimeNs max_bn = 0;
    TimeNs max_ssd = 0;
    std::function<void(StorageResponse)> reply;
  };
  auto st = std::make_shared<Fanout>();
  st->remaining = params_.backend.replicas;
  st->reply = std::move(reply);
  const std::uint32_t len = request.len;

  for (int r = 0; r < params_.backend.replicas; ++r) {
    const TimeNs bn = backend_delay();
    SsdModel* ssd = replica_ssds_[static_cast<std::size_t>(r)].get();
    engine_.after(bn / 2, [this, st, ssd, len, bn] {
      const TimeNs ssd_start = engine_.now();
      ssd->write(len, [this, st, bn, ssd_start] {
        const TimeNs ssd_span = engine_.now() - ssd_start;
        engine_.after(bn / 2, [st, bn, ssd_span] {
          st->max_bn = std::max(st->max_bn, bn);
          st->max_ssd = std::max(st->max_ssd, ssd_span);
          if (--st->remaining == 0) {
            StorageResponse resp;
            resp.status = StorageStatus::kOk;
            resp.server_bn_ns = st->max_bn;
            resp.server_ssd_ns = st->max_ssd;
            st->reply(std::move(resp));
          }
        });
      });
    });
  }
}

void BlockServer::write_block(std::uint64_t segment_id, std::uint64_t offset,
                              DataBlock block, BlockWriteFn done,
                              bool verify_crc) {
  if (verify_crc && params_.verify_crc && block.has_payload() &&
      crc32_raw(block.data) != block.crc) {
    ++crc_failures_;
    done(StorageStatus::kCrcMismatch, 0, 0);
    return;
  }
  const std::uint32_t len = block.len;
  if (!store_.put(segment_id, offset, len, block.crc, std::move(block.data))) {
    done(StorageStatus::kOutOfRange, 0, 0);
    return;
  }
  struct Fanout {
    int remaining;
    TimeNs max_bn = 0;
    TimeNs max_ssd = 0;
    BlockWriteFn done;
  };
  auto st = std::make_shared<Fanout>();
  st->remaining = params_.backend.replicas;
  st->done = std::move(done);
  for (int r = 0; r < params_.backend.replicas; ++r) {
    const TimeNs bn = backend_delay();
    SsdModel* ssd = replica_ssds_[static_cast<std::size_t>(r)].get();
    engine_.after(bn / 2, [this, st, ssd, len, bn] {
      const TimeNs ssd_start = engine_.now();
      ssd->write(len, [this, st, bn, ssd_start] {
        const TimeNs ssd_span = engine_.now() - ssd_start;
        engine_.after(bn / 2, [st, bn, ssd_span] {
          st->max_bn = std::max(st->max_bn, bn);
          st->max_ssd = std::max(st->max_ssd, ssd_span);
          if (--st->remaining == 0) {
            st->done(StorageStatus::kOk, st->max_bn, st->max_ssd);
          }
        });
      });
    });
  }
}

void BlockServer::read_block(std::uint64_t segment_id, std::uint64_t offset,
                             std::uint32_t len, BlockReadFn done) {
  const TimeNs bn = backend_delay();
  SsdModel* ssd = replica_ssds_.front().get();
  engine_.after(bn / 2, [this, ssd, segment_id, offset, len, bn,
                         done = std::move(done)]() mutable {
    const TimeNs ssd_start = engine_.now();
    ssd->read(len, [this, segment_id, offset, len, bn, ssd_start,
                    done = std::move(done)]() mutable {
      const TimeNs ssd_span = engine_.now() - ssd_start;
      DataBlock out;
      out.lba = offset;
      if (auto blk = store_.get(segment_id, offset)) {
        out.len = blk->len;
        out.crc = blk->crc;
        out.data = blk->data;
      } else {
        out.len = len;
        out.crc = 0;
      }
      engine_.after(bn / 2, [out = std::move(out), bn, ssd_span,
                             done = std::move(done)]() mutable {
        done(StorageStatus::kOk, std::move(out), bn, ssd_span);
      });
    });
  });
}

void BlockServer::handle_read(StorageRequest request,
                              std::function<void(StorageResponse)> reply) {
  // Enumerate the 4K cells covered by [segment_offset, +len).
  auto cells = transport::make_placeholder_blocks(request.segment_offset,
                                                  request.len, 4096);
  struct Fanout {
    int remaining;
    TimeNs max_ssd = 0;
    TimeNs bn = 0;
    StorageResponse resp;
    std::function<void(StorageResponse)> reply;
  };
  auto st = std::make_shared<Fanout>();
  st->remaining = static_cast<int>(cells.size());
  st->reply = std::move(reply);
  st->resp.status = StorageStatus::kOk;
  st->resp.blocks.resize(cells.size());
  st->bn = backend_delay();

  SsdModel* ssd = replica_ssds_.front().get();  // read from the primary
  const std::uint64_t segment_id = request.segment_id;

  engine_.after(st->bn / 2, [this, st, ssd, segment_id,
                             cells = std::move(cells)] {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const TimeNs ssd_start = engine_.now();
      ssd->read(cells[i].len, [this, st, i, segment_id, cell = cells[i],
                               ssd_start] {
        st->max_ssd = std::max(st->max_ssd, engine_.now() - ssd_start);
        DataBlock out;
        out.lba = cell.lba;  // segment-relative; the SA maps it back
        if (auto blk = store_.get(segment_id, cell.lba)) {
          out.len = blk->len;
          out.crc = blk->crc;
          out.data = blk->data;
        } else {
          out.len = cell.len;  // unwritten space reads as zero placeholder
          out.crc = 0;
        }
        st->resp.blocks[i] = std::move(out);
        if (--st->remaining == 0) {
          engine_.after(st->bn / 2, [st] {
            st->resp.server_bn_ns = st->bn;
            st->resp.server_ssd_ns = st->max_ssd;
            st->reply(std::move(st->resp));
          });
        }
      });
    }
  });
}

}  // namespace repro::storage
