#include "storage/ssd.h"

#include <algorithm>

namespace repro::storage {

SsdModel::SsdModel(sim::Engine& engine, SsdParams params, Rng rng)
    : engine_(engine), params_(params), rng_(rng) {
  channels_.reserve(static_cast<std::size_t>(params_.channels));
  for (int i = 0; i < params_.channels; ++i) {
    channels_.push_back(
        std::make_unique<sim::CpuCore>(engine, "ssd-ch" + std::to_string(i)));
  }
}

TimeNs SsdModel::submit(std::uint32_t bytes, TimeNs median, double sigma,
                        sim::Callback done) {
  if (stalled_) {
    stalled_ops_.push_back({bytes, median, sigma, std::move(done)});
    return engine_.now();
  }
  return dispatch(bytes, median, sigma, std::move(done));
}

TimeNs SsdModel::dispatch(std::uint32_t bytes, TimeNs median, double sigma,
                          sim::Callback done) {
  // Least-loaded channel, like an FTL spreading across dies.
  sim::CpuCore* ch = channels_.front().get();
  for (auto& c : channels_) {
    if (c->free_at() < ch->free_at()) ch = c.get();
  }
  const auto base = static_cast<TimeNs>(
      latency_mult_ *
      rng_.lognormal_median(static_cast<double>(median), sigma));
  const TimeNs xfer =
      serialization_delay(bytes, params_.internal_bandwidth_gbps * 1e9);
  return ch->run(base + xfer, std::move(done));
}

void SsdModel::set_stalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  if (stalled_) return;
  std::vector<PendingOp> flush;
  flush.swap(stalled_ops_);
  for (auto& op : flush) {
    dispatch(op.bytes, op.median, op.sigma, std::move(op.done));
  }
}

TimeNs SsdModel::write(std::uint32_t bytes, sim::Callback done) {
  ++writes_;
  return submit(bytes, params_.write_cache_median, params_.write_sigma,
                std::move(done));
}

TimeNs SsdModel::read(std::uint32_t bytes, sim::Callback done) {
  ++reads_;
  return submit(bytes, params_.read_median, params_.read_sigma,
                std::move(done));
}

}  // namespace repro::storage
