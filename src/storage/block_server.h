// Block server: the storage-cluster endpoint of FN RPCs.
//
// On WRITE it verifies the per-block CRC, stores the block, and replicates
// to three chunk servers over the backend network (BN). BN is RDMA in
// production (§3.1); we model it as a latency distribution rather than a
// second full fabric — Fig. 6 only needs its contribution to the breakdown.
// On READ it fetches from a chunk server (SSD NAND path).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "storage/segment_store.h"
#include "storage/ssd.h"
#include "transport/message.h"

namespace repro::storage {

struct BackendParams {
  TimeNs rtt_median = us(14);  ///< BN RDMA round trip incl. replica stack
  double rtt_sigma = 0.35;
  int replicas = 3;
};

struct BlockServerParams {
  TimeNs per_request_cpu = us(2);  ///< request parse + commit bookkeeping
  TimeNs per_block_cpu = ns(600);  ///< per-block handling
  bool verify_crc = true;          ///< software CRC verify of real payloads
  bool store_payload = false;
  SsdParams ssd;
  BackendParams backend;
};

class BlockServer {
 public:
  BlockServer(sim::Engine& engine, BlockServerParams params, Rng rng);

  /// Transport-facing handler (bind to RpcServer::set_handler).
  void handle(transport::StorageRequest request,
              std::function<void(transport::StorageResponse)> reply);

  /// Per-block entry points for SOLAR's one-block-one-packet path: every
  /// arriving packet is applied independently, no request reassembly.
  using BlockWriteFn =
      std::function<void(transport::StorageStatus, TimeNs bn, TimeNs ssd)>;
  using BlockReadFn = std::function<void(
      transport::StorageStatus, transport::DataBlock, TimeNs bn, TimeNs ssd)>;

  /// `verify_crc=false` skips the payload check — SOLAR's server does its
  /// own verification (and ciphertext blocks carry a plaintext CRC that
  /// cannot be checked here, §4.5 / Figure 12 stage order).
  void write_block(std::uint64_t segment_id, std::uint64_t offset,
                   transport::DataBlock block, BlockWriteFn done,
                   bool verify_crc = true);
  void read_block(std::uint64_t segment_id, std::uint64_t offset,
                  std::uint32_t len, BlockReadFn done);

  SegmentStore& store() { return store_; }
  const BlockServerParams& params() const { return params_; }
  std::uint64_t crc_failures() const { return crc_failures_; }

  /// Queued-but-unserved SSD work across all replicas (sampler gauge).
  TimeNs ssd_queue_backlog() const {
    TimeNs total = 0;
    for (const auto& s : replica_ssds_) total += s->queue_backlog();
    return total;
  }
  /// Completed SSD ops across all replicas.
  std::uint64_t ssd_ops() const {
    std::uint64_t total = 0;
    for (const auto& s : replica_ssds_) total += s->writes() + s->reads();
    return total;
  }

  /// Replica SSD access for fault injection (latency spikes, stalls).
  int num_replica_ssds() const {
    return static_cast<int>(replica_ssds_.size());
  }
  SsdModel& replica_ssd(int i) {
    return *replica_ssds_[static_cast<std::size_t>(i)];
  }

 private:
  void handle_write(transport::StorageRequest request,
                    std::function<void(transport::StorageResponse)> reply);
  void handle_read(transport::StorageRequest request,
                   std::function<void(transport::StorageResponse)> reply);
  TimeNs backend_delay();

  sim::Engine& engine_;
  BlockServerParams params_;
  Rng rng_;
  SegmentStore store_;
  // One SSD per replica chunk server (the primary's plus two peers).
  std::vector<std::unique_ptr<SsdModel>> replica_ssds_;
  std::uint64_t crc_failures_ = 0;
};

}  // namespace repro::storage
