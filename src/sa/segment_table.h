// Segment Table: the core storage-virtualization data structure (§2.2).
//
// A virtual disk's address space is carved into 2 MB segments; each segment
// lives on one block server. An I/O that crosses segment boundaries splits
// into per-segment extents, each becoming its own RPC (§4.5 "Block splits
// the I/O ... by adjusting the LBA address").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "storage/segment_store.h"

namespace repro::sa {

struct SegmentLocation {
  std::uint64_t segment_id = 0;
  net::IpAddr block_server = 0;
};

struct Extent {
  SegmentLocation loc;
  std::uint64_t vd_offset = 0;       ///< where this extent starts in the VD
  std::uint64_t segment_offset = 0;  ///< where it starts within the segment
  std::uint32_t len = 0;
};

class SegmentTable {
 public:
  static constexpr std::uint64_t kSegmentBytes = storage::kSegmentBytes;

  /// Maps segment index `seg_index` of disk `vd_id` to a location.
  void map(std::uint64_t vd_id, std::uint64_t seg_index, SegmentLocation loc);

  /// Convenience: maps a whole VD of `size_bytes`, striping segments
  /// round-robin across `servers` with ids drawn from `next_segment_id`.
  void map_disk(std::uint64_t vd_id, std::uint64_t size_bytes,
                const std::vector<net::IpAddr>& servers);

  std::optional<SegmentLocation> lookup(std::uint64_t vd_id,
                                        std::uint64_t offset) const;

  /// Splits [offset, offset+len) into per-segment extents. Returns an empty
  /// vector if any part of the range is unmapped.
  std::vector<Extent> split(std::uint64_t vd_id, std::uint64_t offset,
                            std::uint32_t len) const;

  std::size_t size() const { return table_.size(); }

 private:
  static std::uint64_t key(std::uint64_t vd_id, std::uint64_t seg_index) {
    return vd_id * 0x1000003ull + seg_index;
  }
  std::unordered_map<std::uint64_t, SegmentLocation> table_;
  std::uint64_t next_segment_id_ = 1;
};

}  // namespace repro::sa
