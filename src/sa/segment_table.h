// Segment Table: the core storage-virtualization data structure (§2.2).
//
// A virtual disk's address space is carved into 2 MB segments; each segment
// lives on one block server. An I/O that crosses segment boundaries splits
// into per-segment extents, each becoming its own RPC (§4.5 "Block splits
// the I/O ... by adjusting the LBA address").
//
// Layout: `map_disk` (the only bulk path — every VD in a cluster goes
// through it) assigns segment ids sequentially and stripes servers
// round-robin, so a whole VD compresses to one fixed-size `VdMeta` record
// in a vector indexed by vd id, plus a shared, deduplicated stripe pool
// (fleets rotate the same few stripe patterns across millions of VDs).
// A million-VD fleet is ~32 MB of contiguous metadata instead of gigabytes
// of per-segment hash nodes. Individual `map()` overrides (tests, segment
// migration) live in a side map consulted first — empty in the common case.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "storage/segment_store.h"

namespace repro::placement {
class Policy;
class ClusterView;
}  // namespace repro::placement

namespace repro::sa {

struct SegmentLocation {
  std::uint64_t segment_id = 0;
  net::IpAddr block_server = 0;
};

struct Extent {
  SegmentLocation loc;
  std::uint64_t vd_offset = 0;       ///< where this extent starts in the VD
  std::uint64_t segment_offset = 0;  ///< where it starts within the segment
  std::uint32_t len = 0;
};

/// Stripe geometry of an erasure-coded VD (see `map_disk_ec`).
struct EcInfo {
  int k = 0;
  int m = 0;
  std::uint32_t num_data_segments = 0;
  std::uint32_t num_stripes = 0;
};

class SegmentTable {
 public:
  static constexpr std::uint64_t kSegmentBytes = storage::kSegmentBytes;

  /// Installs the cluster-level placement policy consulted by `map_disk` /
  /// `map_disk_ec`: the policy turns the caller's candidate server list
  /// into the rotation pool that gets interned (see placement/policy.h).
  /// Null (the default) keeps the candidates verbatim — bit-identical to
  /// the pre-placement layout. Set before any disks are mapped.
  void set_policy(placement::Policy* policy, placement::ClusterView* view) {
    policy_ = policy;
    view_ = view;
  }

  /// Maps segment index `seg_index` of disk `vd_id` to a location.
  void map(std::uint64_t vd_id, std::uint64_t seg_index, SegmentLocation loc);

  /// Convenience: maps a whole VD of `size_bytes`, striping segments
  /// round-robin across `servers` with ids drawn from `next_segment_id`.
  void map_disk(std::uint64_t vd_id, std::uint64_t size_bytes,
                const std::vector<net::IpAddr>& servers);

  /// Erasure-coded layout: the VD's physical offset space is the data
  /// region [0, nd·2MB) followed by a parity region of ceil(nd/k)·m
  /// segments. Stripe g covers data segments g·k .. g·k+k-1 plus parity
  /// segments nd + g·m .. nd + g·m + m-1, and fragment c of stripe g
  /// (data c < k, parity c = k+q) lands on servers[(g + c) % W] — the
  /// classic rotated placement, guaranteeing k+m distinct servers per
  /// stripe when W >= k+m (required; aborts otherwise).
  void map_disk_ec(std::uint64_t vd_id, std::uint64_t size_bytes,
                   const std::vector<net::IpAddr>& servers, int k, int m);

  /// Stripe geometry of an EC VD; nullopt for replication VDs.
  std::optional<EcInfo> ec_info(std::uint64_t vd_id) const;

  /// Current location of every fragment of stripe `g` (index 0..k+m-1,
  /// overrides honored). Fragments past the end of a tail stripe come back
  /// zero-initialized (block_server == 0).
  std::vector<SegmentLocation> ec_fragments(std::uint64_t vd_id,
                                            std::uint32_t stripe) const;

  /// Allocation-free variant for the EC hot paths (maintenance pumps, the
  /// durability oracle's per-row sweep): fills `out` in place, reusing its
  /// capacity. Same semantics as the copying overload, overrides included.
  void ec_fragments(std::uint64_t vd_id, std::uint32_t stripe,
                    std::vector<SegmentLocation>* out) const;

  /// The server set an EC VD rotates its stripes over (pool slice).
  std::vector<net::IpAddr> stripe_servers(std::uint64_t vd_id) const;

  /// Zero-copy view of the same pool slice — the common case on the EC
  /// hot path. Overrides never shadow the pool itself, so unlike
  /// `ec_fragments` there is no copying case to fall back to; the copying
  /// `stripe_servers` stays only for callers that outlive the table.
  std::span<const net::IpAddr> stripe_server_span(std::uint64_t vd_id) const;

  std::optional<SegmentLocation> lookup(std::uint64_t vd_id,
                                        std::uint64_t offset) const;

  /// Splits [offset, offset+len) into per-segment extents. Returns an empty
  /// vector if any part of the range is unmapped.
  std::vector<Extent> split(std::uint64_t vd_id, std::uint64_t offset,
                            std::uint32_t len) const;

  /// Mapped segments: bulk-mapped plus explicit overrides.
  std::size_t size() const { return flat_segments_ + overrides_.size(); }

 private:
  /// One bulk-mapped VD: `num_segments` sequential ids from
  /// `base_segment_id`, striped over pool_[pool_off .. pool_off+pool_len).
  /// EC VDs (ec_k > 0) count data + parity segments in `num_segments` and
  /// use the rotated stripe placement instead of plain round-robin.
  struct VdMeta {
    std::uint64_t base_segment_id = 0;
    std::uint32_t num_segments = 0;
    std::uint32_t num_data_segments = 0;  ///< == num_segments unless EC
    std::uint32_t pool_off = 0;
    std::uint32_t pool_len = 0;
    std::uint8_t ec_k = 0;  ///< 0 = replication layout
    std::uint8_t ec_m = 0;
  };

  static std::uint64_t key(std::uint64_t vd_id, std::uint64_t seg_index) {
    return vd_id * 0x1000003ull + seg_index;
  }
  /// Stripe-pool slot for `servers`, deduplicating repeats.
  std::uint32_t intern_stripe(const std::vector<net::IpAddr>& servers);

  std::vector<VdMeta> vds_;          ///< indexed by vd id
  std::vector<net::IpAddr> pool_;    ///< shared stripe patterns
  std::map<std::vector<net::IpAddr>, std::uint32_t> stripe_index_;
  std::size_t flat_segments_ = 0;
  /// Explicit `map()` entries; shadow the flat layout when present.
  std::unordered_map<std::uint64_t, SegmentLocation> overrides_;
  std::uint64_t next_segment_id_ = 1;
  placement::Policy* policy_ = nullptr;      ///< not owned; null = legacy
  placement::ClusterView* view_ = nullptr;   ///< not owned
};

}  // namespace repro::sa
