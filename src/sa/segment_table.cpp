#include "sa/segment_table.h"

#include <algorithm>

namespace repro::sa {

void SegmentTable::map(std::uint64_t vd_id, std::uint64_t seg_index,
                       SegmentLocation loc) {
  table_[key(vd_id, seg_index)] = loc;
}

void SegmentTable::map_disk(std::uint64_t vd_id, std::uint64_t size_bytes,
                            const std::vector<net::IpAddr>& servers) {
  if (servers.empty()) return;
  const std::uint64_t segments =
      (size_bytes + kSegmentBytes - 1) / kSegmentBytes;
  for (std::uint64_t s = 0; s < segments; ++s) {
    SegmentLocation loc;
    loc.segment_id = next_segment_id_++;
    loc.block_server = servers[s % servers.size()];
    map(vd_id, s, loc);
  }
}

std::optional<SegmentLocation> SegmentTable::lookup(
    std::uint64_t vd_id, std::uint64_t offset) const {
  auto it = table_.find(key(vd_id, offset / kSegmentBytes));
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

std::vector<Extent> SegmentTable::split(std::uint64_t vd_id,
                                        std::uint64_t offset,
                                        std::uint32_t len) const {
  std::vector<Extent> extents;
  std::uint64_t pos = offset;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const auto loc = lookup(vd_id, pos);
    if (!loc) return {};
    const std::uint64_t seg_end = (pos / kSegmentBytes + 1) * kSegmentBytes;
    const auto take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, seg_end - pos));
    Extent e;
    e.loc = *loc;
    e.vd_offset = pos;
    e.segment_offset = pos % kSegmentBytes;
    e.len = take;
    extents.push_back(e);
    pos += take;
    remaining -= take;
  }
  return extents;
}

}  // namespace repro::sa
