#include "sa/segment_table.h"

#include <algorithm>
#include <cstdlib>

#include "placement/policy.h"

namespace repro::sa {

void SegmentTable::map(std::uint64_t vd_id, std::uint64_t seg_index,
                       SegmentLocation loc) {
  overrides_[key(vd_id, seg_index)] = loc;
}

std::uint32_t SegmentTable::intern_stripe(
    const std::vector<net::IpAddr>& servers) {
  const auto it = stripe_index_.find(servers);
  if (it != stripe_index_.end()) return it->second;
  const auto off = static_cast<std::uint32_t>(pool_.size());
  pool_.insert(pool_.end(), servers.begin(), servers.end());
  stripe_index_.emplace(servers, off);
  return off;
}

void SegmentTable::map_disk(std::uint64_t vd_id, std::uint64_t size_bytes,
                            const std::vector<net::IpAddr>& servers) {
  if (servers.empty()) return;
  const std::uint64_t segments =
      (size_bytes + kSegmentBytes - 1) / kSegmentBytes;
  const std::vector<net::IpAddr>* pool = &servers;
  std::vector<net::IpAddr> scheduled;
  if (policy_ != nullptr) {
    placement::StripeGeometry geo;
    geo.num_segments = segments;
    scheduled = policy_->pick_stripe(vd_id, geo, servers, *view_);
    pool = &scheduled;
  }
  if (vd_id >= vds_.size()) vds_.resize(vd_id + 1);
  VdMeta& vd = vds_[vd_id];
  vd.base_segment_id = next_segment_id_;
  vd.num_segments = static_cast<std::uint32_t>(segments);
  vd.num_data_segments = vd.num_segments;
  vd.pool_off = intern_stripe(*pool);
  vd.pool_len = static_cast<std::uint32_t>(pool->size());
  next_segment_id_ += segments;
  flat_segments_ += segments;
}

void SegmentTable::map_disk_ec(std::uint64_t vd_id, std::uint64_t size_bytes,
                               const std::vector<net::IpAddr>& servers, int k,
                               int m) {
  if (k < 1 || k > 32 || m < 1 ||
      servers.size() < static_cast<std::size_t>(k) + static_cast<std::size_t>(m)) {
    std::abort();  // a stripe needs k+m distinct servers, k fits a 32-bit mask
  }
  const std::uint64_t data_segments =
      (size_bytes + kSegmentBytes - 1) / kSegmentBytes;
  const std::uint64_t stripes =
      (data_segments + static_cast<std::uint64_t>(k) - 1) /
      static_cast<std::uint64_t>(k);
  const std::uint64_t total =
      data_segments + stripes * static_cast<std::uint64_t>(m);
  const std::vector<net::IpAddr>* pool = &servers;
  std::vector<net::IpAddr> scheduled;
  if (policy_ != nullptr) {
    placement::StripeGeometry geo;
    geo.k = k;
    geo.m = m;
    geo.num_segments = total;
    scheduled = policy_->pick_stripe(vd_id, geo, servers, *view_);
    pool = &scheduled;
    if (pool->size() < static_cast<std::size_t>(k) + static_cast<std::size_t>(m)) {
      std::abort();  // the policy contract forbids shrinking below k+m
    }
  }
  if (vd_id >= vds_.size()) vds_.resize(vd_id + 1);
  VdMeta& vd = vds_[vd_id];
  vd.base_segment_id = next_segment_id_;
  vd.num_segments = static_cast<std::uint32_t>(total);
  vd.num_data_segments = static_cast<std::uint32_t>(data_segments);
  vd.pool_off = intern_stripe(*pool);
  vd.pool_len = static_cast<std::uint32_t>(pool->size());
  vd.ec_k = static_cast<std::uint8_t>(k);
  vd.ec_m = static_cast<std::uint8_t>(m);
  next_segment_id_ += total;
  flat_segments_ += total;
}

std::optional<EcInfo> SegmentTable::ec_info(std::uint64_t vd_id) const {
  if (vd_id >= vds_.size() || vds_[vd_id].ec_k == 0) return std::nullopt;
  const VdMeta& vd = vds_[vd_id];
  EcInfo info;
  info.k = vd.ec_k;
  info.m = vd.ec_m;
  info.num_data_segments = vd.num_data_segments;
  info.num_stripes =
      (vd.num_data_segments + vd.ec_k - 1) / static_cast<std::uint32_t>(vd.ec_k);
  return info;
}

std::vector<SegmentLocation> SegmentTable::ec_fragments(
    std::uint64_t vd_id, std::uint32_t stripe) const {
  std::vector<SegmentLocation> frags;
  ec_fragments(vd_id, stripe, &frags);
  return frags;
}

void SegmentTable::ec_fragments(std::uint64_t vd_id, std::uint32_t stripe,
                                std::vector<SegmentLocation>* out) const {
  out->clear();
  if (vd_id >= vds_.size() || vds_[vd_id].ec_k == 0) return;
  const VdMeta& vd = vds_[vd_id];
  const std::uint32_t k = vd.ec_k;
  const std::uint32_t m = vd.ec_m;
  out->resize(k + m);
  for (std::uint32_t c = 0; c < k + m; ++c) {
    const std::uint64_t seg =
        c < k ? static_cast<std::uint64_t>(stripe) * k + c
              : vd.num_data_segments +
                    static_cast<std::uint64_t>(stripe) * m + (c - k);
    if (c < k && seg >= vd.num_data_segments) continue;  // tail stripe
    if (const auto loc = lookup(vd_id, seg * kSegmentBytes)) {
      (*out)[c] = *loc;
    }
  }
}

std::vector<net::IpAddr> SegmentTable::stripe_servers(
    std::uint64_t vd_id) const {
  const auto span = stripe_server_span(vd_id);
  return {span.begin(), span.end()};
}

std::span<const net::IpAddr> SegmentTable::stripe_server_span(
    std::uint64_t vd_id) const {
  if (vd_id >= vds_.size() || vds_[vd_id].pool_len == 0) return {};
  const VdMeta& vd = vds_[vd_id];
  return {pool_.data() + vd.pool_off, vd.pool_len};
}

std::optional<SegmentLocation> SegmentTable::lookup(
    std::uint64_t vd_id, std::uint64_t offset) const {
  const std::uint64_t seg = offset / kSegmentBytes;
  if (!overrides_.empty()) {
    const auto it = overrides_.find(key(vd_id, seg));
    if (it != overrides_.end()) return it->second;
  }
  if (vd_id < vds_.size()) {
    const VdMeta& vd = vds_[vd_id];
    if (seg < vd.num_segments) {
      SegmentLocation loc;
      loc.segment_id = vd.base_segment_id + seg;
      if (vd.ec_k == 0) {
        loc.block_server = pool_[vd.pool_off + seg % vd.pool_len];
      } else {
        // Rotated EC placement: fragment c of stripe g sits on server
        // (g + c) % W, so one stripe spans k+m distinct servers and
        // consecutive stripes shift by one (RAID-5-style parity rotation).
        std::uint64_t g;
        std::uint64_t c;
        if (seg < vd.num_data_segments) {
          g = seg / vd.ec_k;
          c = seg % vd.ec_k;
        } else {
          const std::uint64_t pi = seg - vd.num_data_segments;
          g = pi / vd.ec_m;
          c = vd.ec_k + pi % vd.ec_m;
        }
        loc.block_server = pool_[vd.pool_off + (g + c) % vd.pool_len];
      }
      return loc;
    }
  }
  return std::nullopt;
}

std::vector<Extent> SegmentTable::split(std::uint64_t vd_id,
                                        std::uint64_t offset,
                                        std::uint32_t len) const {
  std::vector<Extent> extents;
  std::uint64_t pos = offset;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const auto loc = lookup(vd_id, pos);
    if (!loc) return {};
    const std::uint64_t seg_end = (pos / kSegmentBytes + 1) * kSegmentBytes;
    const auto take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, seg_end - pos));
    Extent e;
    e.loc = *loc;
    e.vd_offset = pos;
    e.segment_offset = pos % kSegmentBytes;
    e.len = take;
    extents.push_back(e);
    pos += take;
    remaining -= take;
  }
  return extents;
}

}  // namespace repro::sa
