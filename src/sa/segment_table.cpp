#include "sa/segment_table.h"

#include <algorithm>

namespace repro::sa {

void SegmentTable::map(std::uint64_t vd_id, std::uint64_t seg_index,
                       SegmentLocation loc) {
  overrides_[key(vd_id, seg_index)] = loc;
}

std::uint32_t SegmentTable::intern_stripe(
    const std::vector<net::IpAddr>& servers) {
  const auto it = stripe_index_.find(servers);
  if (it != stripe_index_.end()) return it->second;
  const auto off = static_cast<std::uint32_t>(pool_.size());
  pool_.insert(pool_.end(), servers.begin(), servers.end());
  stripe_index_.emplace(servers, off);
  return off;
}

void SegmentTable::map_disk(std::uint64_t vd_id, std::uint64_t size_bytes,
                            const std::vector<net::IpAddr>& servers) {
  if (servers.empty()) return;
  const std::uint64_t segments =
      (size_bytes + kSegmentBytes - 1) / kSegmentBytes;
  if (vd_id >= vds_.size()) vds_.resize(vd_id + 1);
  VdMeta& vd = vds_[vd_id];
  vd.base_segment_id = next_segment_id_;
  vd.num_segments = static_cast<std::uint32_t>(segments);
  vd.pool_off = intern_stripe(servers);
  vd.pool_len = static_cast<std::uint32_t>(servers.size());
  next_segment_id_ += segments;
  flat_segments_ += segments;
}

std::optional<SegmentLocation> SegmentTable::lookup(
    std::uint64_t vd_id, std::uint64_t offset) const {
  const std::uint64_t seg = offset / kSegmentBytes;
  if (!overrides_.empty()) {
    const auto it = overrides_.find(key(vd_id, seg));
    if (it != overrides_.end()) return it->second;
  }
  if (vd_id < vds_.size()) {
    const VdMeta& vd = vds_[vd_id];
    if (seg < vd.num_segments) {
      SegmentLocation loc;
      loc.segment_id = vd.base_segment_id + seg;
      loc.block_server = pool_[vd.pool_off + seg % vd.pool_len];
      return loc;
    }
  }
  return std::nullopt;
}

std::vector<Extent> SegmentTable::split(std::uint64_t vd_id,
                                        std::uint64_t offset,
                                        std::uint32_t len) const {
  std::vector<Extent> extents;
  std::uint64_t pos = offset;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    const auto loc = lookup(vd_id, pos);
    if (!loc) return {};
    const std::uint64_t seg_end = (pos / kSegmentBytes + 1) * kSegmentBytes;
    const auto take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, seg_end - pos));
    Extent e;
    e.loc = *loc;
    e.vd_offset = pos;
    e.segment_offset = pos % kSegmentBytes;
    e.len = take;
    extents.push_back(e);
    pos += take;
    remaining -= take;
  }
  return extents;
}

}  // namespace repro::sa
