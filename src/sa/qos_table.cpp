#include "sa/qos_table.h"

#include <algorithm>

namespace repro::sa {

void QosTable::set(std::uint64_t vd_id, const QosSpec& spec) {
  entries_.insert_or_assign(
      vd_id, Entry{TokenBucket(spec.iops_limit, spec.burst_ios),
                   TokenBucket(spec.bandwidth_limit, spec.burst_bytes)});
}

QosTable::Admission QosTable::admit(std::uint64_t vd_id, std::uint32_t bytes,
                                    TimeNs now) {
  auto it = entries_.find(vd_id);
  if (it == entries_.end()) return {true, now};
  Entry& e = it->second;
  const double want_bytes = static_cast<double>(bytes);
  // Peek both buckets first so a partial admission never half-consumes.
  if (e.iops.current_tokens(now) >= 1.0 &&
      e.bytes.current_tokens(now) >= want_bytes) {
    e.iops.try_consume(now, 1.0);
    e.bytes.try_consume(now, want_bytes);
    return {true, now};
  }
  const TimeNs t = std::max(e.iops.next_available(now, 1.0),
                            e.bytes.next_available(now, want_bytes));
  ++throttled_;
  // Consume at the future admission point; the caller delays until then.
  e.iops.try_consume(t, 1.0);
  e.bytes.try_consume(t, want_bytes);
  return {true, t};
}

TimeNs QosTable::peek(std::uint64_t vd_id, std::uint32_t bytes,
                      TimeNs now) const {
  const auto it = entries_.find(vd_id);
  if (it == entries_.end()) return 0;
  const Entry& e = it->second;
  const double want_bytes = static_cast<double>(bytes);
  if (e.iops.current_tokens(now) >= 1.0 &&
      e.bytes.current_tokens(now) >= want_bytes) {
    return 0;
  }
  const TimeNs t = std::max(e.iops.next_available(now, 1.0),
                            e.bytes.next_available(now, want_bytes));
  return t > now ? t - now : 0;
}

void QosTable::refund(std::uint64_t vd_id, std::uint32_t bytes) {
  auto it = entries_.find(vd_id);
  if (it == entries_.end()) return;
  it->second.iops.refund(1.0);
  it->second.bytes.refund(static_cast<double>(bytes));
  ++refunded_;
}

}  // namespace repro::sa
