#include "sa/agent.h"

#include <algorithm>

#include "common/crc32.h"
#include "obs/obs.h"

namespace repro::sa {

using transport::DataBlock;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageRequest;
using transport::StorageResponse;
using transport::StorageStatus;

struct StorageAgent::Gather {
  int remaining = 0;
  std::uint64_t span = 0;   ///< root trace span of the I/O (0 = untraced)
  TimeNs submitted_at = 0;
  StorageStatus status = StorageStatus::kOk;
  TimeNs fn_max = 0;
  TimeNs bn_max = 0;
  TimeNs ssd_max = 0;
  TimeNs sa_pre = 0;
  TimeNs qos_wait = 0;
  TimeNs last_resp_at = 0;
  IoRequest io;
  std::vector<std::pair<Extent, StorageResponse>> responses;
  transport::IoCompleteFn done;
};

StorageAgent::StorageAgent(sim::Engine& engine, sim::CpuPool& cpu,
                           SegmentTable& segments, QosTable& qos,
                           transport::RpcTransport& rpc,
                           const BlockCipher* cipher, SaParams params)
    : engine_(engine),
      cpu_(cpu),
      segments_(segments),
      qos_(qos),
      rpc_(rpc),
      cipher_(cipher),
      params_(params) {}

void StorageAgent::set_obs(obs::Obs* obs, std::uint32_t pid) {
  obs_ = obs;
  pid_ = pid;
}

obs::Tracer* StorageAgent::trc() const {
  return obs_ != nullptr && obs_->tracer().enabled() ? &obs_->tracer()
                                                     : nullptr;
}

void StorageAgent::register_metrics(obs::Registry& reg,
                                    const std::string& node) {
  const obs::Labels labels = obs::label("node", node);
  reg.expose_counter("sa.ios", labels, &stats_.ios);
  reg.expose_counter("sa.rpcs", labels, &stats_.rpcs);
  reg.expose_counter("sa.split_ios", labels, &stats_.split_ios);
  reg.expose_counter("sa.crc_mismatches", labels, &stats_.crc_mismatches);
  reg.expose_counter("sa.qos_throttled_ns", labels,
                     &stats_.qos_throttled_ns);
}

void StorageAgent::submit_io(IoRequest io, transport::IoCompleteFn done) {
  const TimeNs now = engine_.now();
  const auto admission = qos_.admit(io.vd_id, io.len, now);
  const TimeNs qos_wait = admission.admit_at - now;
  stats_.qos_throttled_ns += static_cast<std::uint64_t>(qos_wait);
  if (qos_wait == 0) {
    run_io(std::move(io), std::move(done), now, 0);
  } else {
    engine_.at(admission.admit_at,
               [this, io = std::move(io), done = std::move(done), qos_wait,
                at = admission.admit_at]() mutable {
                 run_io(std::move(io), std::move(done), at, qos_wait);
               });
  }
}

void StorageAgent::run_io(IoRequest io, transport::IoCompleteFn done,
                          TimeNs admitted_at, TimeNs qos_wait) {
  ++stats_.ios;
  std::uint64_t io_span = 0;
  if (obs::Tracer* t = trc()) {
    io_span = t->begin();
    if (qos_wait > 0) {
      t->span("qos.wait", io_span, admitted_at - qos_wait, admitted_at,
              pid_);
    }
  }
  const std::size_t nblocks = std::max<std::size_t>(
      io.payload.size(), (io.len + 4095) / 4096);
  TimeNs cpu_cost = params_.per_io_cost;
  if (io.op == OpType::kWrite) {
    cpu_cost += params_.per_block_crc * static_cast<TimeNs>(nblocks);
    if (params_.encrypt) {
      cpu_cost += params_.per_block_crypto * static_cast<TimeNs>(nblocks);
    }
  }

  cpu_.submit(io.vd_id, cpu_cost, [this, io = std::move(io),
                                   done = std::move(done), admitted_at,
                                   qos_wait, io_span]() mutable {
    const TimeNs sa_pre = engine_.now() - admitted_at;
    if (obs::Tracer* t = trc()) {
      t->span("sa.cpu", io_span, admitted_at, engine_.now(), pid_, 0,
              "blocks", io.payload.size());
    }
    // Real byte work for blocks that carry payloads: encrypt then CRC the
    // ciphertext (the wire/storage CRC covers exactly what is stored).
    if (io.op == OpType::kWrite) {
      for (auto& blk : io.payload) {
        if (!blk.has_payload()) {
          blk.crc = static_cast<std::uint32_t>(blk.lba * 2654435761u);
          continue;
        }
        if (params_.encrypt && cipher_ != nullptr) {
          cipher_->apply(io.vd_id, blk.lba, blk.data);
        }
        blk.crc = crc32_raw(blk.data);
      }
    }

    auto extents = segments_.split(io.vd_id, io.offset, io.len);
    if (extents.empty()) {
      // The I/O consumed QoS tokens at submit but does no work: return
      // them so a misaddressed burst doesn't also burn the tenant's budget.
      qos_.refund(io.vd_id, io.len);
      IoResult res;
      res.status = StorageStatus::kOutOfRange;
      res.completed_at = engine_.now();
      done(std::move(res));
      return;
    }
    if (extents.size() > 1) ++stats_.split_ios;

    auto g = std::make_shared<Gather>();
    g->remaining = static_cast<int>(extents.size());
    g->span = io_span;
    g->submitted_at = admitted_at - qos_wait;
    g->sa_pre = sa_pre;
    g->qos_wait = qos_wait;
    g->io = std::move(io);
    g->done = std::move(done);
    g->responses.reserve(extents.size());

    for (const Extent& ext : extents) {
      StorageRequest req;
      req.op = g->io.op;
      req.vd_id = g->io.vd_id;
      req.segment_id = ext.loc.segment_id;
      req.segment_offset = ext.segment_offset;
      req.len = ext.len;
      req.encrypted = params_.encrypt;
      if (g->io.op == OpType::kWrite) {
        for (auto& blk : g->io.payload) {
          if (blk.lba >= ext.vd_offset && blk.lba < ext.vd_offset + ext.len) {
            DataBlock copy = blk;
            copy.lba = ext.segment_offset + (blk.lba - ext.vd_offset);
            req.blocks.push_back(std::move(copy));
          }
        }
      }
      ++stats_.rpcs;
      const TimeNs call_at = engine_.now();
      rpc_.call(ext.loc.block_server, std::move(req),
                [this, g, ext, call_at](StorageResponse resp) {
                  const TimeNs elapsed = engine_.now() - call_at;
                  if (obs::Tracer* t = trc()) {
                    // Server-side stage durations come back in the response
                    // metadata; anchor them at the response arrival, nested
                    // bs > ssd — the §2.3 breakdown as a span tree.
                    const TimeNs now = engine_.now();
                    const bool wr = g->io.op == OpType::kWrite;
                    const std::uint64_t rpc_span =
                        t->span(wr ? "rpc.write" : "rpc.read", g->span,
                                call_at, now, pid_, 0, "len", ext.len);
                    const std::uint64_t bs_span =
                        t->span(wr ? "bs.write" : "bs.read", rpc_span,
                                now - resp.server_bn_ns, now, pid_);
                    t->span(wr ? "ssd.write" : "ssd.read", bs_span,
                            now - resp.server_ssd_ns, now, pid_);
                  }
                  g->fn_max = std::max(
                      g->fn_max,
                      elapsed - resp.server_bn_ns - resp.server_ssd_ns);
                  g->bn_max = std::max(g->bn_max, resp.server_bn_ns);
                  g->ssd_max = std::max(g->ssd_max, resp.server_ssd_ns);
                  if (resp.status != StorageStatus::kOk) {
                    g->status = resp.status;
                  }
                  g->responses.emplace_back(ext, std::move(resp));
                  if (--g->remaining == 0) {
                    g->last_resp_at = engine_.now();
                    finish_io(g);
                  }
                });
    }
  });
}

void StorageAgent::finish_io(const std::shared_ptr<Gather>& g) {
  // Post-processing on CPU: for reads, per-block CRC verify and decrypt.
  TimeNs cpu_cost = 0;
  std::size_t read_blocks = 0;
  if (g->io.op == OpType::kRead) {
    for (const auto& [ext, resp] : g->responses) read_blocks += resp.blocks.size();
    if (params_.verify_read_crc) {
      cpu_cost += params_.per_block_crc * static_cast<TimeNs>(read_blocks);
    }
    if (params_.encrypt) {
      cpu_cost += params_.per_block_crypto * static_cast<TimeNs>(read_blocks);
    }
  }
  cpu_.submit(g->io.vd_id, cpu_cost, [this, g, post_t0 = engine_.now()] {
    if (obs::Tracer* t = trc()) {
      const TimeNs now = engine_.now();
      t->span("sa.post", g->span, post_t0, now, pid_);
      t->span_with_id(g->span,
                      g->io.op == OpType::kWrite ? "io.write" : "io.read",
                      0, g->submitted_at, now, pid_, 0, "bytes", g->io.len,
                      "vd", g->io.vd_id);
    }
    IoResult res;
    res.status = g->status;
    if (g->io.op == OpType::kRead && g->status == StorageStatus::kOk) {
      for (auto& [ext, resp] : g->responses) {
        for (auto& blk : resp.blocks) {
          DataBlock out = std::move(blk);
          // Map the segment-relative address back into VD space.
          out.lba = ext.vd_offset + (out.lba - ext.segment_offset);
          if (out.has_payload()) {
            if (params_.verify_read_crc && crc32_raw(out.data) != out.crc) {
              ++stats_.crc_mismatches;
              res.status = StorageStatus::kCrcMismatch;
            }
            if (params_.encrypt && cipher_ != nullptr) {
              cipher_->apply(g->io.vd_id, out.lba, out.data);
            }
          }
          res.read_data.push_back(std::move(out));
        }
      }
      std::sort(res.read_data.begin(), res.read_data.end(),
                [](const DataBlock& a, const DataBlock& b) {
                  return a.lba < b.lba;
                });
    }
    res.completed_at = engine_.now();
    res.trace.sa_ns = g->sa_pre + (engine_.now() - g->last_resp_at);
    res.trace.fn_ns = g->fn_max;
    res.trace.bn_ns = g->bn_max;
    res.trace.ssd_ns = g->ssd_max;
    res.trace.qos_wait_ns = g->qos_wait;
    g->done(std::move(res));
  });
}

}  // namespace repro::sa
