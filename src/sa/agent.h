// Software Storage Agent (§2.2, Figure 2): the compute-side data path used
// with kernel TCP, LUNA and RDMA. Everything here runs on host/DPU CPU
// cores — per-I/O table lookups, per-block CRC and crypto — which is
// exactly why SA became the end-to-end bottleneck once LUNA fixed the
// network (§3.3), motivating SOLAR's hardware offload.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "sa/crypto.h"
#include "sa/qos_table.h"
#include "sa/segment_table.h"
#include "sim/cpu.h"
#include "sim/engine.h"
#include "transport/rpc.h"

namespace repro::obs {
class Obs;
class Registry;
class Tracer;
}

namespace repro::sa {

struct SaParams {
  TimeNs per_io_cost = us(4);        ///< QoS + Segment lookups, bookkeeping
  TimeNs per_block_crc = ns(900);    ///< software CRC32 of a 4 KB block
  TimeNs per_block_crypto = ns(1400);///< software AES-equivalent per block
  bool encrypt = false;
  bool verify_read_crc = true;
};

struct SaStats {
  std::uint64_t ios = 0;
  std::uint64_t rpcs = 0;
  std::uint64_t split_ios = 0;  ///< I/Os that crossed a segment boundary
  std::uint64_t crc_mismatches = 0;
  std::uint64_t qos_throttled_ns = 0;
};

class StorageAgent {
 public:
  StorageAgent(sim::Engine& engine, sim::CpuPool& cpu, SegmentTable& segments,
               QosTable& qos, transport::RpcTransport& rpc,
               const BlockCipher* cipher, SaParams params);

  /// Guest-facing entry point (what the virtio/NVMe frontend calls).
  void submit_io(transport::IoRequest io, transport::IoCompleteFn done);

  const SaStats& stats() const { return stats_; }
  SaParams& params() { return params_; }

  /// Hooks the agent up to the observability subsystem. The agent has no
  /// NIC of its own, so the caller supplies the trace pid (its node id).
  void set_obs(obs::Obs* obs, std::uint32_t pid);
  /// Publishes SA counters (labels: node=<node>).
  void register_metrics(obs::Registry& reg, const std::string& node);

 private:
  struct Gather;  // in-flight multi-extent I/O state (defined in agent.cpp)

  void run_io(transport::IoRequest io, transport::IoCompleteFn done,
              TimeNs admitted_at, TimeNs qos_wait);
  void finish_io(const std::shared_ptr<Gather>& g);
  /// Active tracer, or nullptr when observability is dark.
  obs::Tracer* trc() const;

  sim::Engine& engine_;
  sim::CpuPool& cpu_;
  SegmentTable& segments_;
  QosTable& qos_;
  transport::RpcTransport& rpc_;
  const BlockCipher* cipher_;
  SaParams params_;
  SaStats stats_;
  obs::Obs* obs_ = nullptr;
  std::uint32_t pid_ = 0;  ///< trace process id (owning node's device id)
};

}  // namespace repro::sa
