// QoS Table: per-VD admission control by IOPS and bandwidth (§2.2, and the
// QoS match-action stage of the SOLAR pipeline in Figures 12/13).
//
// Fig. 6's caption notes that policy-based queueing delay (QoS) is excluded
// from the latency breakdown; callers therefore receive the admission time
// separately and record it as IoTrace::qos_wait_ns.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/token_bucket.h"
#include "common/units.h"

namespace repro::sa {

struct QosSpec {
  double iops_limit = 1e9;       ///< I/O operations per second
  double bandwidth_limit = 1e12; ///< bytes per second
  double burst_ios = 256;
  double burst_bytes = 16.0 * 1024 * 1024;
};

class QosTable {
 public:
  void set(std::uint64_t vd_id, const QosSpec& spec);
  bool has(std::uint64_t vd_id) const { return entries_.contains(vd_id); }

  struct Admission {
    bool admitted = false;
    TimeNs admit_at = 0;  ///< when the I/O may proceed (>= now)
  };

  /// Admits one I/O of `bytes` at time `now`. If tokens are short, returns
  /// the earliest time both buckets can cover it (tokens are consumed
  /// up-front, so the caller just delays until admit_at — matching the
  /// paper's "admission control ... to enforce bandwidth constraints").
  /// Unknown VDs are admitted immediately (no policy configured).
  Admission admit(std::uint64_t vd_id, std::uint32_t bytes, TimeNs now);

  /// Non-consuming probe: the wait `admit()` would impose on this I/O at
  /// `now` (0 = immediate). The admission layer's rejection decision reads
  /// this so tokens are only ever consumed by the stack's real admit.
  TimeNs peek(std::uint64_t vd_id, std::uint32_t bytes, TimeNs now) const;

  /// Returns the tokens an admitted I/O consumed when the I/O is dropped
  /// before doing any work (early rejection, out-of-range): without this a
  /// rejected burst double-penalizes the tenant — once by the rejection,
  /// once by the burned budget.
  void refund(std::uint64_t vd_id, std::uint32_t bytes);

  std::uint64_t throttled() const { return throttled_; }
  std::uint64_t refunded() const { return refunded_; }

 private:
  struct Entry {
    TokenBucket iops;
    TokenBucket bytes;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t throttled_ = 0;
  std::uint64_t refunded_ = 0;
};

}  // namespace repro::sa
