#include "sa/crypto.h"

namespace repro::sa {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void BlockCipher::apply(std::uint64_t vd_id, std::uint64_t lba,
                        std::span<std::uint8_t> data) const {
  std::uint64_t state = key_ ^ (vd_id * 0xC2B2AE3D27D4EB4Full) ^
                        (lba * 0x165667B19E3779F9ull);
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t ks = splitmix64(state);
    for (int b = 0; b < 8 && i < data.size(); ++b, ++i) {
      data[i] ^= static_cast<std::uint8_t>(ks >> (8 * b));
    }
  }
}

}  // namespace repro::sa
