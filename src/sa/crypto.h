// SEC stage: per-block encryption of EBS data (the "optionally encrypted"
// path of §2.2 and the SEC module of Figure 12 / Table 3).
//
// This is a *model* cipher, not a secure one: an XOR keystream derived from
// (key, vd_id, lba) via splitmix64. It has the properties the system code
// needs — deterministic, tweakable per block (same plaintext at different
// LBAs encrypts differently), self-inverse (encrypt == decrypt), and it
// touches every byte so fault injection and cost accounting are honest.
#pragma once

#include <cstdint>
#include <span>

namespace repro::sa {

class BlockCipher {
 public:
  explicit BlockCipher(std::uint64_t key) : key_(key) {}

  /// In-place XOR-keystream transform; applying twice restores the input.
  void apply(std::uint64_t vd_id, std::uint64_t lba,
             std::span<std::uint8_t> data) const;

  std::uint64_t key() const { return key_; }

 private:
  std::uint64_t key_;
};

}  // namespace repro::sa
