// Per-tenant SLO contracts and the knobs of the admission/scheduling layer.
//
// The paper's QoS story stops at per-VD token buckets in the SA (§2.2,
// Figs. 12/13). This extends it the way Mooncake does for LLM serving: a
// tenant declares *what it needs* (a p99 latency target, a guaranteed IOPS
// share, a service class) and the admission layer decides — per node, from
// a sliding-window load prediction — whether a new I/O can still meet that
// contract or should be rejected up-front instead of queueing doomed work.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/units.h"

namespace repro::obs {
class JsonWriter;
struct JsonValue;
}

namespace repro::qos {

/// Service class under contention: guaranteed tenants are protected by the
/// admission floor and preferred by the DPU scheduler; best-effort tenants
/// absorb rejections first.
enum class SloClass : std::uint8_t { kGuaranteed = 0, kBestEffort = 1 };
inline constexpr int kSloClasses = 2;

/// Tenant key used for background maintenance traffic (EC rebuild, scrub).
/// No VD ever carries this id, so SloTable lookups miss and the work is
/// scheduled best-effort regardless of the originating VD's contract.
inline constexpr std::uint64_t kBackgroundTenant = ~0ull;

const char* to_string(SloClass c);
bool slo_class_from_string(const std::string& s, SloClass* out);

/// One tenant's contract. VDs without a spec behave as best-effort tenants
/// with the default target.
struct SloSpec {
  TimeNs target_p99 = ms(5);     ///< completion deadline for "goodput"
  double guaranteed_iops = 0.0;  ///< admission floor (0 = none)
  SloClass cls = SloClass::kBestEffort;
};

/// vd id -> contract. Populate during cluster setup, before traffic: the
/// admission layer caches spec pointers, so entries must not move once I/O
/// starts (same contract as `sa::QosTable`).
class SloTable {
 public:
  void set(std::uint64_t vd_id, const SloSpec& spec) {
    entries_.insert_or_assign(vd_id, spec);
  }
  const SloSpec* find(std::uint64_t vd_id) const {
    const auto it = entries_.find(vd_id);
    return it == entries_.end() ? nullptr : &it->second;
  }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::uint64_t, SloSpec> entries_;
};

/// Fleet-wide admission/scheduling configuration (rides in `StackParams`,
/// so `ebs::ClusterParams` and `ScenarioSpec` carry it). Everything is off
/// by default: a dark cluster builds no admission state at all and stays
/// bit-identical to pre-qos builds.
struct QosParams {
  bool enabled = false;       ///< build per-node admission state
  bool early_reject = false;  ///< Mooncake-style prediction-based rejection
  /// Reject when predicted sojourn > target_p99 * headroom. >1 tolerates
  /// prediction noise; <1 sheds earlier.
  double headroom = 1.0;
  /// A rejection is not free (doorbell + completion): it comes back to the
  /// guest after this much simulated time, which also keeps closed-loop
  /// generators from spinning at one timestamp.
  TimeNs reject_latency = us(10);
  TimeNs predictor_window = ms(4);  ///< sliding-window span
  int predictor_buckets = 8;        ///< ring granularity within the window
  bool sched_enabled = false;       ///< WFQ at the DPU dispatch point
  int sched_weight_guaranteed = 8;
  int sched_weight_best_effort = 1;
};

// JSON round-trip helpers (ScenarioSpec / chaos configs).
void write_slo(obs::JsonWriter& w, const SloSpec& s);
bool read_slo(const obs::JsonValue& v, SloSpec* s);
void write_qos_params(obs::JsonWriter& w, const QosParams& p);
bool read_qos_params(const obs::JsonValue& v, QosParams* p);

}  // namespace repro::qos
