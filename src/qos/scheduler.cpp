#include "qos/scheduler.h"

#include <utility>

namespace repro::qos {

CpuScheduler::CpuScheduler(sim::CpuPool& pool, const SloTable& slos,
                           const QosParams& params)
    : pool_(pool), slos_(slos) {
  weight_[static_cast<int>(SloClass::kGuaranteed)] = static_cast<std::uint64_t>(
      params.sched_weight_guaranteed > 0 ? params.sched_weight_guaranteed : 1);
  weight_[static_cast<int>(SloClass::kBestEffort)] = static_cast<std::uint64_t>(
      params.sched_weight_best_effort > 0 ? params.sched_weight_best_effort
                                          : 1);
  cores_.resize(static_cast<std::size_t>(pool.size()));
}

int CpuScheduler::classify(std::uint64_t vd_id) const {
  const SloSpec* slo = slos_.find(vd_id);
  return static_cast<int>(slo != nullptr ? slo->cls : SloClass::kBestEffort);
}

std::uint64_t CpuScheduler::served_ns(SloClass cls) const {
  std::uint64_t total = 0;
  for (const Core& c : cores_) total += c.served[static_cast<int>(cls)];
  return total;
}

void CpuScheduler::submit(std::uint64_t vd_id, std::uint64_t affinity,
                          TimeNs cost, sim::Callback done) {
  // Same Fibonacci hash as CpuPool::submit kByHash: an uncontended stream
  // lands on the same core the bare pool would pick.
  const std::size_t core =
      (affinity * 0x9E3779B97F4A7C15ull) % cores_.size();
  Core& c = cores_[core];
  if (cost < 0) cost = 0;
  c.q[classify(vd_id)].push_back(Item{cost, std::move(done)});
  if (!c.busy) dispatch(core);
}

void CpuScheduler::dispatch(std::size_t core) {
  Core& c = cores_[core];
  const int g = static_cast<int>(SloClass::kGuaranteed);
  const int be = static_cast<int>(SloClass::kBestEffort);
  int cls;
  if (c.q[g].empty() && c.q[be].empty()) return;
  if (c.q[g].empty()) {
    cls = be;
  } else if (c.q[be].empty()) {
    cls = g;
  } else {
    // WFQ on cumulative served time: pick the class whose served/weight is
    // lowest (integer cross-multiply; tie favors guaranteed).
    cls = c.served[g] * weight_[be] <= c.served[be] * weight_[g] ? g : be;
  }
  c.running = std::move(c.q[cls].front());
  c.q[cls].pop_front();
  c.busy = true;
  c.served[cls] += static_cast<std::uint64_t>(c.running.cost);
  // The completion wrapper captures only {this, core}: the item itself
  // lives in the core slot, so nested callbacks never outgrow Callback's
  // inline buffer. `done` runs while the core is still marked busy, so
  // work it re-submits queues behind it instead of double-dispatching.
  pool_.core(static_cast<int>(core))
      .run(c.running.cost, [this, core] {
        Core& c2 = cores_[core];
        sim::Callback done = std::move(c2.running.done);
        if (done) done();
        c2.busy = false;
        dispatch(core);
      });
}

}  // namespace repro::qos
