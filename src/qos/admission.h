// Per-node admission control: the Mooncake-style early-rejection gate that
// sits between the guest doorbell and the stack's data path.
//
// One `NodeAdmission` per compute node (node-affine state, bound to the
// node's home engine at construction, so sharded runs stay bit-identical
// at any thread count). For each arriving I/O it combines
//   * the tenant's token-bucket wait (a non-consuming `QosTable::peek` —
//     the stack still does the real, consuming admit, so QoS'd VDs behave
//     byte-for-byte the same whether this layer is present or not), and
//   * the tenant's sliding-window load prediction (`LoadPredictor`)
// and rejects up-front when the predicted sojourn can no longer meet the
// tenant's p99 target — instead of queueing work that is already doomed.
// Guaranteed tenants running under their promised IOPS bypass rejection
// (the admission floor); best-effort tenants absorb the shed load.
//
// Rejections complete with `StorageStatus::kRejected` after a small
// `reject_latency` so closed-loop generators advance simulated time, and
// they count as completions for the exactly-once oracle (every submitted
// I/O still gets exactly one completion).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "obs/registry.h"
#include "obs/resettable.h"
#include "qos/predictor.h"
#include "qos/slo.h"
#include "sa/qos_table.h"
#include "sim/engine.h"
#include "transport/message.h"

namespace repro::placement {
class ClusterView;
}  // namespace repro::placement

namespace repro::qos {

class NodeAdmission : public obs::Resettable {
 public:
  NodeAdmission(sim::Engine& engine, const SloTable& slos, sa::QosTable& qos,
                const QosParams& params);

  using PassFn =
      std::function<void(transport::IoRequest, transport::IoCompleteFn)>;

  /// Admits or rejects `io`. Admitted I/Os are forwarded through `pass`
  /// with `done` wrapped for completion bookkeeping; rejected ones complete
  /// with kRejected after `reject_latency` and never reach `pass`.
  void submit(transport::IoRequest io, transport::IoCompleteFn done,
              const PassFn& pass);

  /// Per-class counters, indexed by `SloClass`.
  struct Stats {
    std::uint64_t admitted[kSloClasses] = {0, 0};
    std::uint64_t rejected[kSloClasses] = {0, 0};
    std::uint64_t slo_ok[kSloClasses] = {0, 0};        ///< kOk within target
    std::uint64_t slo_violated[kSloClasses] = {0, 0};  ///< late or failed
  };
  const Stats& stats() const { return stats_; }
  /// Completions that met their SLO — the goodput numerator.
  std::uint64_t goodput_total() const {
    return stats_.slo_ok[0] + stats_.slo_ok[1];
  }

  /// Optional cluster-level gate on top of the per-node predictors: while
  /// the fleet-wide inflight count (ClusterView aggregate, maintained by
  /// every node's admission layer) is at `inflight_limit`, new I/O is
  /// rejected — except guaranteed tenants under their floor, exactly like
  /// the per-node path. Single-shard runs only: the shared counter is
  /// mutated on every admit/complete and cannot cross shard barriers.
  void set_cluster_gate(placement::ClusterView* view, int inflight_limit);

  /// Publishes per-class admit/reject/SLO counters and the goodput series
  /// gauge (labels: node=<node>, class=<class>).
  void register_metrics(obs::Registry& reg, const std::string& node);

  /// Warmup reset: zeroes counters, keeps predictor state (the model keeps
  /// what it learned; only the measurement restarts).
  void reset_counters() override { stats_ = Stats{}; }

 private:
  struct Tenant {
    const SloSpec* slo;  ///< points into the SloTable (or the default)
    LoadPredictor predictor;
    int inflight = 0;
  };
  Tenant& tenant(std::uint64_t vd_id);

  sim::Engine& engine_;
  const SloTable& slos_;
  sa::QosTable& qos_;
  QosParams params_;
  SloSpec default_slo_;  ///< contract for VDs with no explicit SLO
  std::unordered_map<std::uint64_t, Tenant> tenants_;
  /// Node-wide aggregate: a tenant starved so hard it never completes is
  /// "cold" in its own window forever, so doom must also be readable from
  /// the node's total queue (Mooncake predicts from instance load, not
  /// per-request history alone).
  LoadPredictor node_predictor_;
  int node_inflight_ = 0;
  placement::ClusterView* cluster_view_ = nullptr;  ///< not owned; may be null
  int cluster_limit_ = 0;
  Stats stats_;
};

}  // namespace repro::qos
