#include "qos/slo.h"

#include "obs/json.h"
#include "obs/json_reader.h"

namespace repro::qos {

const char* to_string(SloClass c) {
  return c == SloClass::kGuaranteed ? "guaranteed" : "best_effort";
}

bool slo_class_from_string(const std::string& s, SloClass* out) {
  if (s == "guaranteed") {
    *out = SloClass::kGuaranteed;
    return true;
  }
  if (s == "best_effort") {
    *out = SloClass::kBestEffort;
    return true;
  }
  return false;
}

void write_slo(obs::JsonWriter& w, const SloSpec& s) {
  w.begin_object();
  w.field("target_p99_us", static_cast<double>(s.target_p99) / 1e3);
  w.field("guaranteed_iops", s.guaranteed_iops);
  w.field("class", to_string(s.cls));
  w.end_object();
}

bool read_slo(const obs::JsonValue& v, SloSpec* s) {
  if (v.type != obs::JsonValue::Type::kObject) return false;
  double num = 0.0;
  if (obs::json_number(v, "target_p99_us", &num)) {
    s->target_p99 = static_cast<TimeNs>(num * 1e3);
  }
  obs::json_number(v, "guaranteed_iops", &s->guaranteed_iops);
  std::string cls;
  if (obs::json_string(v, "class", &cls) &&
      !slo_class_from_string(cls, &s->cls)) {
    return false;
  }
  return true;
}

void write_qos_params(obs::JsonWriter& w, const QosParams& p) {
  w.begin_object();
  w.field("enabled", p.enabled);
  w.field("early_reject", p.early_reject);
  w.field("headroom", p.headroom);
  w.field("reject_latency_us", static_cast<double>(p.reject_latency) / 1e3);
  w.field("predictor_window_us",
          static_cast<double>(p.predictor_window) / 1e3);
  w.field("predictor_buckets", p.predictor_buckets);
  w.field("sched_enabled", p.sched_enabled);
  w.field("sched_weight_guaranteed", p.sched_weight_guaranteed);
  w.field("sched_weight_best_effort", p.sched_weight_best_effort);
  w.end_object();
}

bool read_qos_params(const obs::JsonValue& v, QosParams* p) {
  if (v.type != obs::JsonValue::Type::kObject) return false;
  obs::json_bool(v, "enabled", &p->enabled);
  obs::json_bool(v, "early_reject", &p->early_reject);
  obs::json_number(v, "headroom", &p->headroom);
  double num = 0.0;
  if (obs::json_number(v, "reject_latency_us", &num)) {
    p->reject_latency = static_cast<TimeNs>(num * 1e3);
  }
  if (obs::json_number(v, "predictor_window_us", &num)) {
    p->predictor_window = static_cast<TimeNs>(num * 1e3);
  }
  if (obs::json_number(v, "predictor_buckets", &num)) {
    p->predictor_buckets = static_cast<int>(num);
  }
  obs::json_bool(v, "sched_enabled", &p->sched_enabled);
  if (obs::json_number(v, "sched_weight_guaranteed", &num)) {
    p->sched_weight_guaranteed = static_cast<int>(num);
  }
  if (obs::json_number(v, "sched_weight_best_effort", &num)) {
    p->sched_weight_best_effort = static_cast<int>(num);
  }
  return true;
}

}  // namespace repro::qos
