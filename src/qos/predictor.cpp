#include "qos/predictor.h"

#include <algorithm>

namespace repro::qos {

LoadPredictor::LoadPredictor(TimeNs window, int buckets) {
  if (buckets < 1) buckets = 1;
  if (window < buckets) window = buckets;
  span_ = window / buckets;
  ring_.resize(static_cast<std::size_t>(buckets));
}

void LoadPredictor::advance(TimeNs now) {
  const std::uint64_t idx = static_cast<std::uint64_t>(now) /
                            static_cast<std::uint64_t>(span_);
  if (idx <= cur_) return;
  const std::uint64_t steps =
      std::min<std::uint64_t>(idx - cur_, ring_.size());
  for (std::uint64_t s = 1; s <= steps; ++s) {
    Bucket& b = ring_[(cur_ + s) % ring_.size()];
    completions_ -= b.completions;
    admissions_ -= b.admissions;
    latency_sum_ -= b.latency_sum;
    b = Bucket{};
  }
  cur_ = idx;
}

TimeNs LoadPredictor::covered(TimeNs now) const {
  const TimeNs window = span_ * static_cast<TimeNs>(ring_.size());
  return std::min(window, std::max(span_, now));
}

void LoadPredictor::on_admit(TimeNs now) {
  advance(now);
  ++ring_[cur_ % ring_.size()].admissions;
  ++admissions_;
}

void LoadPredictor::on_complete(TimeNs now, TimeNs latency) {
  advance(now);
  if (latency < 0) latency = 0;
  Bucket& b = ring_[cur_ % ring_.size()];
  ++b.completions;
  b.latency_sum += latency;
  ++completions_;
  latency_sum_ += latency;
}

TimeNs LoadPredictor::predict(TimeNs now, int inflight) {
  advance(now);
  if (completions_ == 0) return 0;  // cold: admit, gather evidence
  const TimeNs avg_latency =
      latency_sum_ / static_cast<TimeNs>(completions_);
  // Little's law: the window saw `completions_` finish over `covered`
  // ns, so the tenant's queue drains one I/O every covered/completions
  // ns. A new arrival waits for everything in flight plus itself.
  const TimeNs drain =
      static_cast<TimeNs>(inflight) * covered(now) /
      static_cast<TimeNs>(completions_);
  return std::max(avg_latency, drain);
}

double LoadPredictor::admitted_rate(TimeNs now) {
  advance(now);
  return static_cast<double>(admissions_) * 1e9 /
         static_cast<double>(covered(now));
}

std::uint64_t LoadPredictor::window_completions(TimeNs now) {
  advance(now);
  return completions_;
}

}  // namespace repro::qos
