#include "qos/admission.h"

#include <algorithm>
#include <utility>

#include "placement/cluster_view.h"

namespace repro::qos {

using transport::IoResult;
using transport::StorageStatus;

NodeAdmission::NodeAdmission(sim::Engine& engine, const SloTable& slos,
                             sa::QosTable& qos, const QosParams& params)
    : engine_(engine),
      slos_(slos),
      qos_(qos),
      params_(params),
      node_predictor_(params.predictor_window, params.predictor_buckets) {}

NodeAdmission::Tenant& NodeAdmission::tenant(std::uint64_t vd_id) {
  auto it = tenants_.find(vd_id);
  if (it != tenants_.end()) return it->second;
  const SloSpec* slo = slos_.find(vd_id);
  if (slo == nullptr) slo = &default_slo_;
  auto [ins, _] = tenants_.try_emplace(
      vd_id,
      Tenant{slo,
             LoadPredictor(params_.predictor_window,
                           params_.predictor_buckets),
             0});
  return ins->second;
}

void NodeAdmission::submit(transport::IoRequest io,
                           transport::IoCompleteFn done, const PassFn& pass) {
  const TimeNs now = engine_.now();
  Tenant& t = tenant(io.vd_id);
  // Background maintenance traffic (EC rebuild, scrub) never inherits the
  // VD's contract: it is classed best-effort and gets no admission floor —
  // a rebuild storm must shed before foreground guarantees do.
  const SloSpec& slo = io.background ? default_slo_ : *t.slo;
  const int cls = static_cast<int>(slo.cls);

  bool reject = false;
  if (params_.early_reject) {
    const TimeNs token_wait = qos_.peek(io.vd_id, io.len, now);
    // A starved tenant has an empty completion window (its own predictor
    // stays cold), so doom is the max of the tenant's view and the node's.
    const TimeNs predicted =
        std::max(t.predictor.predict(now, t.inflight),
                 node_predictor_.predict(now, node_inflight_)) +
        token_wait;
    if (static_cast<double>(predicted) >
        static_cast<double>(slo.target_p99) * params_.headroom) {
      reject = true;
      // Admission floor: a guaranteed tenant running under its promised
      // rate gets in regardless of the prediction — overload must not
      // starve the tenants the contract protects.
      if (slo.guaranteed_iops > 0.0 &&
          t.predictor.admitted_rate(now) < slo.guaranteed_iops) {
        reject = false;
      }
    }
  }

  // Cluster-level gate: a fleet at its aggregate inflight limit sheds new
  // work at the doorbell regardless of this node's local predictors — the
  // guaranteed-floor bypass applies the same way.
  if (!reject && cluster_view_ != nullptr && cluster_limit_ > 0 &&
      cluster_view_->cluster_inflight() >= cluster_limit_) {
    reject = true;
    if (slo.guaranteed_iops > 0.0 &&
        t.predictor.admitted_rate(now) < slo.guaranteed_iops) {
      reject = false;
    }
  }

  if (reject) {
    ++stats_.rejected[cls];
    engine_.at(now + params_.reject_latency,
               [this, done = std::move(done)]() mutable {
                 IoResult res;
                 res.status = StorageStatus::kRejected;
                 res.completed_at = engine_.now();
                 done(std::move(res));
               });
    return;
  }

  ++stats_.admitted[cls];
  t.predictor.on_admit(now);
  node_predictor_.on_admit(now);
  ++t.inflight;
  ++node_inflight_;
  if (cluster_view_ != nullptr) cluster_view_->add_inflight(1);
  const TimeNs target = slo.target_p99;
  const std::uint64_t vd = io.vd_id;
  pass(std::move(io),
       [this, done = std::move(done), vd, cls, target, now](IoResult res) {
         Tenant& t = tenants_.find(vd)->second;
         --t.inflight;
         --node_inflight_;
         if (cluster_view_ != nullptr) cluster_view_->add_inflight(-1);
         TimeNs latency =
             res.completed_at - now - res.trace.qos_wait_ns;
         if (latency < 0) latency = 0;
         t.predictor.on_complete(engine_.now(), latency);
         node_predictor_.on_complete(engine_.now(), latency);
         if (res.status == StorageStatus::kOk && latency <= target) {
           ++stats_.slo_ok[cls];
         } else {
           ++stats_.slo_violated[cls];
         }
         done(std::move(res));
       });
}

void NodeAdmission::set_cluster_gate(placement::ClusterView* view,
                                     int inflight_limit) {
  cluster_view_ = view;
  cluster_limit_ = inflight_limit;
}

void NodeAdmission::register_metrics(obs::Registry& reg,
                                     const std::string& node) {
  for (int c = 0; c < kSloClasses; ++c) {
    const obs::Labels labels = {
        {"node", node}, {"class", to_string(static_cast<SloClass>(c))}};
    reg.expose_counter("qos.admitted", labels, &stats_.admitted[c]);
    reg.expose_counter("qos.rejected", labels, &stats_.rejected[c]);
    reg.expose_counter("qos.slo_ok", labels, &stats_.slo_ok[c]);
    reg.expose_counter("qos.slo_violated", labels, &stats_.slo_violated[c]);
  }
  // Goodput-under-SLO as a sampled series: the sampler's deltas of this
  // cumulative count are the per-interval goodput curve.
  reg.expose_gauge("qos.goodput_total", obs::label("node", node),
                   [this]() -> std::int64_t {
                     return static_cast<std::int64_t>(goodput_total());
                   });
}

}  // namespace repro::qos
