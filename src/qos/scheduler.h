// Weighted-fair CPU scheduling at the DPU dispatch point.
//
// The plain `sim::CpuPool` is FIFO per core: under contention a best-effort
// tenant's burst delays guaranteed tenants head-of-line. `CpuScheduler`
// wraps a pool with two class queues per core (guaranteed / best-effort)
// and dispatches one item at a time by weighted fair queueing on cumulative
// served nanoseconds — integer cross-multiplied, so the pick is exact and
// deterministic. Core choice uses the pool's own Fibonacci affinity hash,
// so an uncontended single-class stream executes in exactly the FIFO order
// the bare pool would give.
//
// One scheduler per node's DPU (built by the stack adapter when
// `QosParams::sched_enabled`); never shared across shards.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "qos/slo.h"
#include "sim/cpu.h"

namespace repro::qos {

class CpuScheduler {
 public:
  CpuScheduler(sim::CpuPool& pool, const SloTable& slos,
               const QosParams& params);

  /// Queues `cost` ns of work for tenant `vd_id`; `affinity` pins the core
  /// (same key the bare pool would hash). `done` fires at completion.
  void submit(std::uint64_t vd_id, std::uint64_t affinity, TimeNs cost,
              sim::Callback done);

  std::uint64_t served_ns(SloClass cls) const;

 private:
  struct Item {
    TimeNs cost = 0;
    sim::Callback done;
  };
  struct Core {
    bool busy = false;
    std::deque<Item> q[kSloClasses];
    std::uint64_t served[kSloClasses] = {0, 0};
    Item running;
  };

  int classify(std::uint64_t vd_id) const;
  void dispatch(std::size_t core);

  sim::CpuPool& pool_;
  const SloTable& slos_;
  std::uint64_t weight_[kSloClasses];
  std::vector<Core> cores_;
};

}  // namespace repro::qos
