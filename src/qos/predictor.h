// Sliding-window load predictor: the signal behind early rejection.
//
// One predictor per (tenant, node). It watches the tenant's recent
// completions through a ring of time buckets and answers one question at
// admission time: "if this I/O enters now, how long until it completes?"
// The estimate combines the window's mean latency (what the system is
// currently delivering) with a Little's-law drain term (how long the
// tenant's in-flight queue takes to clear at the observed completion
// rate) — under overload the drain term dominates and grows linearly with
// queue depth, which is exactly the doomed-work signal Mooncake rejects on.
//
// Everything is integer state driven by caller-supplied sim time: same
// inputs, same outputs, on any shard/thread layout.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace repro::qos {

class LoadPredictor {
 public:
  LoadPredictor(TimeNs window, int buckets);

  /// Records an admission at `now` (feeds the guaranteed-floor rate).
  void on_admit(TimeNs now);

  /// Records a completion observed at `now` with end-to-end latency
  /// `latency` (QoS wait excluded, like every latency in this repo).
  void on_complete(TimeNs now, TimeNs latency);

  /// Predicted sojourn of an I/O admitted at `now` with `inflight` I/Os
  /// already outstanding for this tenant. Cold windows (no completions
  /// observed) predict 0: never reject without evidence.
  TimeNs predict(TimeNs now, int inflight);

  /// Admissions per second over the window (guaranteed-floor check).
  double admitted_rate(TimeNs now);

  std::uint64_t window_completions(TimeNs now);

 private:
  struct Bucket {
    std::uint64_t completions = 0;
    std::uint64_t admissions = 0;
    TimeNs latency_sum = 0;
  };

  /// Expires buckets the window slid past. O(buckets) worst case, O(1)
  /// amortized under steady traffic.
  void advance(TimeNs now);
  /// Window span actually covered at `now` (ramps up from one bucket span
  /// so the first instants of a run don't divide by the full window).
  TimeNs covered(TimeNs now) const;

  TimeNs span_;  ///< one bucket's duration
  std::vector<Bucket> ring_;
  std::uint64_t cur_ = 0;  ///< absolute index of the newest bucket
  // Window totals, maintained incrementally as buckets expire.
  std::uint64_t completions_ = 0;
  std::uint64_t admissions_ = 0;
  TimeNs latency_sum_ = 0;
};

}  // namespace repro::qos
