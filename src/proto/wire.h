// Byte-level serialization helpers (little-endian, bounds-checked).
//
// The simulator mostly passes typed frames around, but SOLAR's claim in
// §4.6 — that the whole SA data path can run in a P4 pipeline — only means
// something against real bytes. These helpers define the wire formats the
// P4 parser (src/p4) consumes and the tests round-trip.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace repro::proto {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return out_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    // Host is little-endian on every supported target; memcpy keeps the
    // encoding defined even for unaligned destinations.
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t u8() { return read<std::uint8_t>(); }
  std::uint16_t u16() { return read<std::uint16_t>(); }
  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }

  /// Reads exactly n bytes; returns an empty vector (and poisons the
  /// reader) on underflow.
  std::vector<std::uint8_t> bytes(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(pos_),
                                  data_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> view(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

 private:
  template <typename T>
  T read() {
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace repro::proto
