// SOLAR's on-wire headers (Figures 12 & 13) and the NVMe command that
// enters the DPU from the guest.
//
// A SOLAR packet is: [UDP (modelled by the fabric's FlowKey; the source
// port is the path id)] [RPC HDR] [EBS HDR] [payload = exactly one 4 KB
// data block] — the "one-block-one-packet" fusion. READ/WRITE requests,
// per-packet ACKs, and path probes reuse the same RPC header with empty or
// partial EBS sections.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/wire.h"

namespace repro::proto {

/// EBS data blocks are 4 KB to match the SSD sector size (§2.2) and fit a
/// jumbo frame with headers (§4.4 uses 4 KB rather than 8 KB, §4.8).
inline constexpr std::uint32_t kBlockSize = 4096;

enum class RpcMsgType : std::uint8_t {
  kWriteRequest = 1,   ///< carries one data block
  kWriteResponse = 2,  ///< per-RPC completion from the block server
  kReadRequest = 3,    ///< asks for blocks; no payload
  kReadResponse = 4,   ///< carries one data block
  kAck = 5,            ///< per-packet transport ACK (CC + loss detection)
  kProbe = 6,          ///< path liveness/RTT probe
};

struct RpcHeader {
  std::uint64_t rpc_id = 0;
  std::uint16_t pkt_id = 0;     ///< block index within the RPC
  std::uint16_t pkt_count = 1;  ///< total blocks in the RPC
  RpcMsgType msg_type = RpcMsgType::kWriteRequest;
  std::uint8_t flags = 0;
  std::uint16_t path_id = 0;  ///< echo of the UDP source port / path

  static constexpr std::size_t kWireSize = 8 + 2 + 2 + 1 + 1 + 2;

  bool operator==(const RpcHeader&) const = default;

  void encode(ByteWriter& w) const;
  static std::optional<RpcHeader> decode(ByteReader& r);
};

enum class EbsOp : std::uint8_t { kWrite = 1, kRead = 2 };

struct EbsHeader {
  std::uint64_t vd_id = 0;       ///< virtual disk
  std::uint64_t segment_id = 0;  ///< physical segment on the block server
  std::uint64_t lba = 0;         ///< byte offset of the block within the VD
  std::uint32_t block_len = kBlockSize;
  std::uint32_t payload_crc = 0;  ///< crc32_raw of the data block
  EbsOp op = EbsOp::kWrite;
  std::uint8_t version = 1;
  std::uint16_t qos_class = 0;

  static constexpr std::size_t kWireSize = 8 * 3 + 4 + 4 + 1 + 1 + 2;

  bool operator==(const EbsHeader&) const = default;

  void encode(ByteWriter& w) const;
  static std::optional<EbsHeader> decode(ByteReader& r);
};

/// Guest-side NVMe command as it arrives at the DPU (Figure 12, step 1).
struct NvmeCommand {
  enum class Opcode : std::uint8_t { kRead = 0x02, kWrite = 0x01 };
  Opcode opcode = Opcode::kWrite;
  std::uint32_t nsid = 0;        ///< namespace == virtual disk id
  std::uint64_t slba = 0;        ///< starting LBA (in 512B sectors)
  std::uint16_t nlb = 0;         ///< number of logical blocks (0-based)
  std::uint64_t guest_addr = 0;  ///< PRP: guest memory address
  std::uint16_t cid = 0;         ///< command id

  static constexpr std::size_t kWireSize = 1 + 4 + 8 + 2 + 8 + 2;

  bool operator==(const NvmeCommand&) const = default;

  void encode(ByteWriter& w) const;
  static std::optional<NvmeCommand> decode(ByteReader& r);

  std::uint64_t byte_offset() const { return slba * 512; }
  std::uint32_t byte_len() const {
    return (static_cast<std::uint32_t>(nlb) + 1) * 512;
  }
};

/// A fully parsed SOLAR packet.
struct SolarPacket {
  RpcHeader rpc;
  EbsHeader ebs;
  std::vector<std::uint8_t> payload;

  bool operator==(const SolarPacket&) const = default;
};

/// Encodes RPC HDR | EBS HDR | payload. The payload CRC must already be in
/// ebs.payload_crc (the FPGA's CRC stage fills it on the real data path).
std::vector<std::uint8_t> encode_solar_packet(const RpcHeader& rpc,
                                              const EbsHeader& ebs,
                                              std::span<const std::uint8_t>
                                                  payload);

/// Parses and validates structure (not the CRC — integrity checking is the
/// receiver pipeline's job). Returns nullopt on truncation/garbage.
std::optional<SolarPacket> parse_solar_packet(
    std::span<const std::uint8_t> bytes);

}  // namespace repro::proto
