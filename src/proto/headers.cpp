#include "proto/headers.h"

namespace repro::proto {

void RpcHeader::encode(ByteWriter& w) const {
  w.u64(rpc_id);
  w.u16(pkt_id);
  w.u16(pkt_count);
  w.u8(static_cast<std::uint8_t>(msg_type));
  w.u8(flags);
  w.u16(path_id);
}

std::optional<RpcHeader> RpcHeader::decode(ByteReader& r) {
  RpcHeader h;
  h.rpc_id = r.u64();
  h.pkt_id = r.u16();
  h.pkt_count = r.u16();
  const std::uint8_t type = r.u8();
  h.flags = r.u8();
  h.path_id = r.u16();
  if (!r.ok()) return std::nullopt;
  if (type < 1 || type > 6) return std::nullopt;
  h.msg_type = static_cast<RpcMsgType>(type);
  if (h.pkt_count == 0) return std::nullopt;
  return h;
}

void EbsHeader::encode(ByteWriter& w) const {
  w.u64(vd_id);
  w.u64(segment_id);
  w.u64(lba);
  w.u32(block_len);
  w.u32(payload_crc);
  w.u8(static_cast<std::uint8_t>(op));
  w.u8(version);
  w.u16(qos_class);
}

std::optional<EbsHeader> EbsHeader::decode(ByteReader& r) {
  EbsHeader h;
  h.vd_id = r.u64();
  h.segment_id = r.u64();
  h.lba = r.u64();
  h.block_len = r.u32();
  h.payload_crc = r.u32();
  const std::uint8_t op = r.u8();
  h.version = r.u8();
  h.qos_class = r.u16();
  if (!r.ok()) return std::nullopt;
  if (op != 1 && op != 2) return std::nullopt;
  h.op = static_cast<EbsOp>(op);
  if (h.block_len > 2 * kBlockSize) return std::nullopt;
  return h;
}

void NvmeCommand::encode(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(opcode));
  w.u32(nsid);
  w.u64(slba);
  w.u16(nlb);
  w.u64(guest_addr);
  w.u16(cid);
}

std::optional<NvmeCommand> NvmeCommand::decode(ByteReader& r) {
  NvmeCommand c;
  const std::uint8_t op = r.u8();
  c.nsid = r.u32();
  c.slba = r.u64();
  c.nlb = r.u16();
  c.guest_addr = r.u64();
  c.cid = r.u16();
  if (!r.ok()) return std::nullopt;
  if (op != 0x01 && op != 0x02) return std::nullopt;
  c.opcode = static_cast<Opcode>(op);
  return c;
}

std::vector<std::uint8_t> encode_solar_packet(
    const RpcHeader& rpc, const EbsHeader& ebs,
    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(RpcHeader::kWireSize + EbsHeader::kWireSize + payload.size());
  ByteWriter w(out);
  rpc.encode(w);
  ebs.encode(w);
  w.bytes(payload);
  return out;
}

std::optional<SolarPacket> parse_solar_packet(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto rpc = RpcHeader::decode(r);
  if (!rpc) return std::nullopt;
  auto ebs = EbsHeader::decode(r);
  if (!ebs) return std::nullopt;
  SolarPacket pkt;
  pkt.rpc = *rpc;
  pkt.ebs = *ebs;
  // Data-bearing packets must carry exactly block_len payload bytes;
  // control packets (requests, ACKs, probes) carry none.
  const bool data_bearing = rpc->msg_type == RpcMsgType::kWriteRequest ||
                            rpc->msg_type == RpcMsgType::kReadResponse;
  if (data_bearing) {
    if (r.remaining() != ebs->block_len) return std::nullopt;
    pkt.payload = r.bytes(ebs->block_len);
  } else if (r.remaining() != 0) {
    return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return pkt;
}

}  // namespace repro::proto
