#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace repro {

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit(header_);
  out << "|";
  for (std::size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace repro
