// Token bucket used by the QoS table (per-VD IOPS and bandwidth quotas).
//
// The bucket is driven by simulated time supplied by the caller: there is no
// hidden clock, which keeps it usable both inside the event engine and in
// plain unit tests.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/units.h"

namespace repro {

class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per simulated second, up to `burst`.
  TokenBucket(double rate_per_sec, double burst)
      : rate_per_sec_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Attempts to consume `amount` tokens at time `now`. Returns true and
  /// deducts on success; leaves the bucket untouched on failure.
  bool try_consume(TimeNs now, double amount) {
    refill(now);
    if (tokens_ + 1e-9 < amount) return false;
    tokens_ -= amount;
    return true;
  }

  /// Earliest time at which `amount` tokens will be available (>= now).
  TimeNs next_available(TimeNs now, double amount) const {
    const double have = current_tokens(now);
    if (have >= amount) return now;
    if (rate_per_sec_ <= 0) return now + kSecond * 3600;  // effectively never
    const double deficit = amount - have;
    return now + static_cast<TimeNs>(deficit / rate_per_sec_ * 1e9) + 1;
  }

  /// Token level projected to `now`. May be negative (and `now` may lie
  /// before the last refill point): the bucket supports reservation-style
  /// consumption at a future instant, and linear extrapolation in both
  /// directions is exactly what makes next_available() consistent then.
  double current_tokens(TimeNs now) const {
    const double elapsed = static_cast<double>(now - last_refill_) / 1e9;
    return std::min(burst_, tokens_ + elapsed * rate_per_sec_);
  }

  /// Returns `amount` tokens consumed for work that never happened (an
  /// admitted I/O rejected before execution). Capped at `burst` so a
  /// refund can never mint tokens beyond the bucket's ceiling.
  void refund(double amount) {
    tokens_ = std::min(burst_, tokens_ + amount);
  }

  double rate_per_sec() const { return rate_per_sec_; }
  double burst() const { return burst_; }

  void set_rate(double rate_per_sec) { rate_per_sec_ = rate_per_sec; }

 private:
  void refill(TimeNs now) {
    if (now <= last_refill_) return;  // never rewind the refill point
    tokens_ = current_tokens(now);
    last_refill_ = now;
  }

  double rate_per_sec_;
  double burst_;
  double tokens_;
  TimeNs last_refill_ = 0;
};

}  // namespace repro
