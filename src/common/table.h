// ASCII table printer used by the bench harnesses to render the paper's
// tables and figure series in a uniform way.
#pragma once

#include <string>
#include <vector>

namespace repro {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with column alignment and a header separator.
  std::string render() const;

  /// Convenience for numeric cells.
  static std::string num(double v, int precision = 1);
  static std::string num(std::int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace repro
