#include "common/rng.h"

#include <cmath>

namespace repro {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift with rejection for uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal_median(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

Rng Rng::fork(std::uint64_t stream_id) const {
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 13) ^ (stream_id * 0xD6E8FEB86659FD93ull);
  Rng child(0);
  child.reseed(mix + 0x632BE59BD9B4E019ull);
  return child;
}

}  // namespace repro
