// Latency/size recording with percentile queries.
//
// `Histogram` is an HDR-style log-linear histogram: values are bucketed with
// bounded relative error (~1/32), so it stays O(1) per record no matter how
// many samples an experiment produces. `SampleSet` keeps exact samples for
// small populations where exact order statistics matter in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace repro {

class Histogram {
 public:
  Histogram() = default;

  void record(std::int64_t value);
  void record_n(std::int64_t value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;

  /// Value at quantile q in [0,1]; e.g. 0.5 for the median, 0.99 for p99.
  /// Returns 0 for an empty histogram. Result has <=~3% relative error.
  std::int64_t percentile(double q) const;

  void merge(const Histogram& other);
  void clear();

  /// Human-readable one-line summary ("n=.. mean=.. p50=.. p95=.. p99=..").
  std::string summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets / octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static std::size_t bucket_index(std::int64_t value);
  static std::int64_t bucket_representative(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

/// Exact sample container for small populations.
class SampleSet {
 public:
  void record(double v) { samples_.push_back(v); sorted_ = false; }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact order statistic with linear interpolation, q in [0,1].
  double percentile(double q) const;
  void clear() { samples_.clear(); sorted_ = false; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace repro
