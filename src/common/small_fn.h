// Small-buffer-optimized, move-only callable wrapper.
//
// The event engine schedules tens of millions of callbacks per simulated
// second; `std::function` heap-allocates any capture larger than two
// pointers and requires copyability (which forces shared_ptr wrappers
// around move-only captures like pooled packets). `SmallFn` fixes both:
// captures up to `InlineBytes` live inside the object, and move-only
// callables (unique_ptr captures, pool handles) are first-class. Larger
// callables transparently fall back to a single heap allocation, so cold
// paths keep working unchanged.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace repro {

template <typename Signature, std::size_t InlineBytes = 48>
class SmallFn;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  R operator()(Args... args) {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return vt_ != nullptr; }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  /// True if the stored callable lives in the inline buffer (test hook).
  bool is_inline() const { return vt_ != nullptr && vt_->inline_storage; }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*move_to)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= InlineBytes && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      static const VTable vt = {
          [](void* p, Args&&... args) -> R {
            return (*std::launder(reinterpret_cast<D*>(p)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) {
            D* s = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
          },
          [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
          /*inline_storage=*/true,
      };
      vt_ = &vt;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      static const VTable vt = {
          [](void* p, Args&&... args) -> R {
            return (**std::launder(reinterpret_cast<D**>(p)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) {
            D** s = std::launder(reinterpret_cast<D**>(src));
            ::new (dst) D*(*s);
          },
          [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
          /*inline_storage=*/false,
      };
      vt_ = &vt;
    }
  }

  void move_from(SmallFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->move_to(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace repro
