// Fixed-capacity inline vector.
//
// Drop-in replacement for the handful of hot-path `std::vector` members
// whose size has a small hard bound (e.g. INT trails on Clos paths of
// at most 5 hops): elements live inside the owning object, so append,
// copy, and clear never touch the allocator. Exceeding the capacity is
// a programming error and asserts in debug builds; in release the
// append is dropped (the trail is then truncated, never corrupted).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace repro {

template <typename T, std::size_t N>
class InlineVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;

  std::size_t size() const { return size_; }
  static constexpr std::size_t capacity() { return N; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == N; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& v) {
    assert(size_ < N);
    if (size_ < N) data_[size_++] = v;
  }
  void push_back(T&& v) {
    assert(size_ < N);
    if (size_ < N) data_[size_++] = std::move(v);
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    assert(size_ < N);
    if (size_ < N) data_[size_++] = T{std::forward<Args>(args)...};
  }

  void clear() { size_ = 0; }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  // Value-initialized storage keeps InlineVec trivially copyable for
  // trivially copyable T, which is what the packet pool relies on.
  T data_[N]{};
  std::uint32_t size_ = 0;
};

}  // namespace repro
