// Time, size and rate units used across the whole simulation.
//
// All simulated time is kept in integral nanoseconds (`TimeNs`). Using a
// plain integral type (rather than std::chrono) keeps the event engine's
// hot path trivial and makes serialization of traces unambiguous.
#pragma once

#include <cstdint>

namespace repro {

/// Simulated time in nanoseconds since the start of the run.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

constexpr TimeNs ns(std::int64_t v) { return v; }
constexpr TimeNs us(std::int64_t v) { return v * kMicrosecond; }
constexpr TimeNs ms(std::int64_t v) { return v * kMillisecond; }
constexpr TimeNs seconds(std::int64_t v) { return v * kSecond; }

/// Converts a nanosecond count to (floating) microseconds for reporting.
constexpr double to_us(TimeNs t) { return static_cast<double>(t) / 1e3; }
/// Converts a nanosecond count to (floating) milliseconds for reporting.
constexpr double to_ms(TimeNs t) { return static_cast<double>(t) / 1e6; }
/// Converts a nanosecond count to (floating) seconds for reporting.
constexpr double to_sec(TimeNs t) { return static_cast<double>(t) / 1e9; }

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

constexpr std::uint64_t kib(std::uint64_t v) { return v * kKiB; }
constexpr std::uint64_t mib(std::uint64_t v) { return v * kMiB; }

/// Bits-per-second rate expressed as a double (values like 25e9 for 25GE).
using BitsPerSec = double;

constexpr BitsPerSec gbps(double v) { return v * 1e9; }

/// Time to serialize `bytes` onto a link of rate `rate` (bits/sec).
constexpr TimeNs serialization_delay(std::uint64_t bytes, BitsPerSec rate) {
  if (rate <= 0) return 0;
  return static_cast<TimeNs>(static_cast<double>(bytes) * 8.0 * 1e9 / rate);
}

/// Throughput in bits/sec achieved by `bytes` over `elapsed` time.
constexpr BitsPerSec throughput_bps(std::uint64_t bytes, TimeNs elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 * 1e9 /
         static_cast<double>(elapsed);
}

}  // namespace repro
