#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace repro {

std::size_t Histogram::bucket_index(std::int64_t value) {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int octave = msb - kSubBucketBits + 1;
  const auto sub = static_cast<std::size_t>(v >> octave) & (kSubBuckets - 1);
  return static_cast<std::size_t>(octave + 1) * kSubBuckets + sub;
}

std::int64_t Histogram::bucket_representative(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::size_t octave = index / kSubBuckets - 1;
  const std::size_t sub = index % kSubBuckets;
  // `sub` holds the top kSubBucketBits bits of the value (leading bit
  // included), so the bucket's base is simply sub << octave.
  const std::uint64_t base = static_cast<std::uint64_t>(sub) << octave;
  // Midpoint of the bucket's covered range for low bias.
  const std::uint64_t width = 1ull << octave;
  return static_cast<std::int64_t>(base + width / 2);
}

void Histogram::record(std::int64_t value) { record_n(value, 1); }

void Histogram::record_n(std::int64_t value, std::uint64_t n) {
  if (n == 0) return;
  if (value < 0) value = 0;
  const std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += n;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += n;
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

std::int64_t Histogram::min() const { return count_ ? min_ : 0; }
std::int64_t Histogram::max() const { return count_ ? max_ : 0; }

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(bucket_representative(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() {
  buckets_.clear();
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%lld p95=%lld p99=%lld max=%lld",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<long long>(percentile(0.50)),
                static_cast<long long>(percentile(0.95)),
                static_cast<long long>(percentile(0.99)),
                static_cast<long long>(max()));
  return buf;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

}  // namespace repro
