// Deterministic random number generation for the simulator.
//
// Every stochastic component owns (or borrows) an `Rng` seeded from the run
// configuration, so a whole experiment is reproducible bit-for-bit from its
// seed. The engine is xoshiro256** (fast, high quality, tiny state).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace repro {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed (splitmix64 spread).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64 bits (UniformRandomBitGenerator interface).
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (cached pair).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal parameterized by the *median* and sigma of log-space.
  /// median = exp(mu). Handy for latency distributions with heavy tails.
  double lognormal_median(double median, double sigma);

  /// Fork a child generator with an independent stream derived from this
  /// one's state and `stream_id`. Children are stable across runs.
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace repro
