#include "common/crc32.h"

#include <array>

#include "kernels/kernels.h"

namespace repro {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

// The byte-touching work (CRC register advance, XOR aggregation) dispatches
// through the kernel layer — scalar slice-by-8 at minimum, CLMUL-folded on
// the vector tiers. All tiers are bit-identical (kernels.h invariant).
std::uint32_t crc_core(std::uint32_t state,
                       std::span<const std::uint8_t> data) {
  return kernels::active().crc32_update(state, data.data(), data.size());
}

// GF(2) 32x32 matrix ops for crc32_combine (after zlib).
using Matrix = std::array<std::uint32_t, 32>;

std::uint32_t gf2_times_vec(const Matrix& m, std::uint32_t vec) {
  std::uint32_t sum = 0;
  for (int i = 0; vec; ++i, vec >>= 1) {
    if (vec & 1) sum ^= m[i];
  }
  return sum;
}

Matrix gf2_square(const Matrix& m) {
  Matrix sq{};
  for (int i = 0; i < 32; ++i) sq[i] = gf2_times_vec(m, m[i]);
  return sq;
}

// Precomputed zero operators: op[j] advances a CRC register past 2^j zero
// BYTES. Built once — crc32_combine used to rebuild the whole squaring chain
// per call, which sat directly on the aggregate-CRC / segment-append path.
struct ZeroOps {
  Matrix op[64];
};

ZeroOps build_zero_ops() {
  ZeroOps z;
  // odd = matrix applying one zero bit to the CRC register.
  Matrix odd{};
  odd[0] = kPoly;
  for (int i = 1; i < 32; ++i) odd[i] = 1u << (i - 1);
  const Matrix two = gf2_square(odd);    // two zero bits
  const Matrix four = gf2_square(two);   // four zero bits
  z.op[0] = gf2_square(four);            // eight zero bits = one byte
  for (int j = 1; j < 64; ++j) z.op[j] = gf2_square(z.op[j - 1]);
  return z;
}

const ZeroOps& zero_ops() {
  static const ZeroOps z = build_zero_ops();
  return z;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) {
  return crc_core(state, data);
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) {
  return crc_core(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_raw(std::span<const std::uint8_t> data) {
  return crc_core(0, data);
}

std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::uint64_t len_b) {
  if (len_b == 0) return crc_a;
  const ZeroOps& z = zero_ops();
  std::uint64_t len = len_b;
  for (int j = 0; len != 0; ++j, len >>= 1) {
    if (len & 1) crc_a = gf2_times_vec(z.op[j], crc_a);
  }
  return crc_a ^ crc_b;
}

void xor_accumulate(std::vector<std::uint8_t>& agg,
                    std::span<const std::uint8_t> block,
                    std::size_t block_len) {
  if (agg.size() != block_len) agg.assign(block_len, 0);
  const std::size_t n = block_len < block.size() ? block_len : block.size();
  kernels::active().xor_acc(agg.data(), block.data(), n);
}

bool crc_aggregate_check(std::span<const std::vector<std::uint8_t>> blocks,
                         std::span<const std::uint32_t> block_crcs) {
  if (blocks.size() != block_crcs.size()) return false;
  if (blocks.empty()) return true;
  const std::size_t len = blocks.front().size();
  std::vector<std::uint8_t> agg(len, 0);
  std::uint32_t crc_xor = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].size() != len) return false;
    xor_accumulate(agg, blocks[i], len);
    crc_xor ^= block_crcs[i];
  }
  return crc32_raw(agg) == crc_xor;
}

}  // namespace repro
