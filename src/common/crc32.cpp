#include "common/crc32.h"

#include <array>

namespace repro {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable = make_table();

std::uint32_t crc_core(std::uint32_t state,
                       std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) {
    state = kTable[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

// GF(2) 32x32 matrix ops for crc32_combine (after zlib).
using Matrix = std::array<std::uint32_t, 32>;

std::uint32_t gf2_times_vec(const Matrix& m, std::uint32_t vec) {
  std::uint32_t sum = 0;
  for (int i = 0; vec; ++i, vec >>= 1) {
    if (vec & 1) sum ^= m[i];
  }
  return sum;
}

Matrix gf2_square(const Matrix& m) {
  Matrix sq{};
  for (int i = 0; i < 32; ++i) sq[i] = gf2_times_vec(m, m[i]);
  return sq;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) {
  return crc_core(state, data);
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) {
  return crc_core(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_raw(std::span<const std::uint8_t> data) {
  return crc_core(0, data);
}

std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::uint64_t len_b) {
  if (len_b == 0) return crc_a;
  // odd = matrix applying one zero bit to the CRC register.
  Matrix odd{};
  odd[0] = kPoly;
  for (int i = 1; i < 32; ++i) odd[i] = 1u << (i - 1);
  Matrix even = gf2_square(odd);  // two zero bits
  odd = gf2_square(even);         // four zero bits

  // Apply len_b zero *bytes* == 8 * len_b zero bits to crc_a.
  std::uint64_t len = len_b;
  do {
    even = gf2_square(odd);
    if (len & 1) crc_a = gf2_times_vec(even, crc_a);
    len >>= 1;
    if (len == 0) break;
    odd = gf2_square(even);
    if (len & 1) crc_a = gf2_times_vec(odd, crc_a);
    len >>= 1;
  } while (len != 0);
  return crc_a ^ crc_b;
}

void xor_accumulate(std::vector<std::uint8_t>& agg,
                    std::span<const std::uint8_t> block,
                    std::size_t block_len) {
  if (agg.size() != block_len) agg.assign(block_len, 0);
  for (std::size_t i = 0; i < block_len && i < block.size(); ++i) {
    agg[i] ^= block[i];
  }
}

bool crc_aggregate_check(std::span<const std::vector<std::uint8_t>> blocks,
                         std::span<const std::uint32_t> block_crcs) {
  if (blocks.size() != block_crcs.size()) return false;
  if (blocks.empty()) return true;
  const std::size_t len = blocks.front().size();
  std::vector<std::uint8_t> agg(len, 0);
  std::uint32_t crc_xor = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].size() != len) return false;
    xor_accumulate(agg, blocks[i], len);
    crc_xor ^= block_crcs[i];
  }
  return crc32_raw(agg) == crc_xor;
}

}  // namespace repro
