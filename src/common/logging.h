// Minimal leveled logger. Off by default so simulation hot paths stay quiet;
// benches and examples raise the level when narrating.
#pragma once

#include <cstdio>
#include <string>

namespace repro {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

}  // namespace repro

#define REPRO_LOG(level, msg)                              \
  do {                                                     \
    if (static_cast<int>(level) >=                         \
        static_cast<int>(::repro::log_level())) {          \
      ::repro::log_message(level, msg);                    \
    }                                                      \
  } while (0)

#define REPRO_DEBUG(msg) REPRO_LOG(::repro::LogLevel::kDebug, msg)
#define REPRO_INFO(msg) REPRO_LOG(::repro::LogLevel::kInfo, msg)
#define REPRO_WARN(msg) REPRO_LOG(::repro::LogLevel::kWarn, msg)
#define REPRO_ERROR(msg) REPRO_LOG(::repro::LogLevel::kError, msg)
