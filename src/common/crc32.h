// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) with the two extra
// operations SOLAR's data-integrity design relies on (§4.5 of the paper):
//
//  * `crc32_raw` — CRC with init=0 and no final XOR. This variant is a
//    *linear* map over GF(2): for equal-length blocks A and B,
//        crc32_raw(A ^ B) == crc32_raw(A) ^ crc32_raw(B).
//    SOLAR's DPU CPU uses this to validate a whole segment's worth of
//    FPGA-computed per-block CRCs with a single software CRC pass over the
//    XOR-aggregate of the blocks, instead of re-CRCing every block.
//
//  * `crc32_combine` — concatenation: given crc(A), crc(B) and len(B),
//    produces crc(A||B) without touching the data (zlib's GF(2) matrix
//    trick). Used for segment-level CRC maintenance in the block server.
//
// Byte-touching work routes through the dispatched kernel layer
// (src/kernels): slice-by-8 scalar at minimum, CLMUL-folded CRC and wide XOR
// on the vector tiers — all tiers bit-identical, so every CRC the storage,
// chaos, and DPU models compute is host-ISA independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace repro {

/// Standard CRC-32 (init 0xFFFFFFFF, final XOR 0xFFFFFFFF).
std::uint32_t crc32_ieee(std::span<const std::uint8_t> data);

/// Streaming form: feed the previous return value back in as `state`.
/// Start with state = 0xFFFFFFFF and XOR the final state with 0xFFFFFFFF.
std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data);

/// Linear CRC-32 (init 0, no final XOR). See file comment.
std::uint32_t crc32_raw(std::span<const std::uint8_t> data);

/// crc(A||B) from crc32_ieee(A), crc32_ieee(B) and len(B).
std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::uint64_t len_b);

/// XOR-aggregates equal-length blocks into `agg` (resized/zeroed to
/// `block_len` if needed). Precondition: block.size() == block_len.
void xor_accumulate(std::vector<std::uint8_t>& agg,
                    std::span<const std::uint8_t> block,
                    std::size_t block_len);

/// SOLAR's software CRC-aggregation check. `block_crcs[i]` must be
/// crc32_raw(blocks[i]) as computed by (possibly faulty) hardware; all
/// blocks must share one length. Returns true iff a single software CRC of
/// the XOR-aggregate matches the XOR of the reported per-block CRCs, i.e.
/// no corruption happened in either the data or the CRC computation.
bool crc_aggregate_check(std::span<const std::vector<std::uint8_t>> blocks,
                         std::span<const std::uint32_t> block_crcs);

}  // namespace repro
