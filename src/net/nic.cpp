#include "net/nic.h"

namespace repro::net {

void Nic::send_packet(PacketPtr pkt) {
  pkt->id = network().next_packet_id();
  pkt->sent_at = network().engine().now();
  int live[8];
  int n_live = 0;
  for (int i = 0; i < num_ports() && n_live < 8; ++i) {
    if (port(i).detected_up()) live[n_live++] = i;
  }
  if (n_live == 0) {
    ++network().drops().no_route;
    return;
  }
  const std::uint64_t h = flow_hash(pkt->flow, salt_);
  ++tx_packets_;
  tx_bytes_ += pkt->size_bytes;
  send(live[h % static_cast<std::uint64_t>(n_live)], std::move(pkt));
}

void Nic::receive(PacketPtr pkt, int in_port) {
  (void)in_port;
  ++rx_packets_;
  rx_bytes_ += pkt->size_bytes;
  if (deliver_) deliver_(*pkt);
}

BitsPerSec Nic::uplink_capacity() const {
  BitsPerSec total = 0;
  for (int i = 0; i < num_ports(); ++i) {
    if (port(i).detected_up()) total += port(i).rate();
  }
  return total;
}

}  // namespace repro::net
