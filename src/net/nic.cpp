#include "net/nic.h"

#include "obs/obs.h"

namespace repro::net {

void Nic::register_metrics(obs::Registry& reg) {
  const obs::Labels node = obs::label("node", name());
  reg.expose_counter("nic.tx_packets", node, &tx_packets_);
  reg.expose_counter("nic.rx_packets", node, &rx_packets_);
  reg.expose_counter("nic.tx_bytes", node, &tx_bytes_, /*sampled=*/true);
  reg.expose_counter("nic.rx_bytes", node, &rx_bytes_, /*sampled=*/true);
  reg.add_resettable(this);
}

void Nic::send_packet(PacketPtr pkt) {
  pkt->id = network().next_packet_id();
  pkt->sent_at = network().engine().now();
  int live[8];
  int n_live = 0;
  for (int i = 0; i < num_ports() && n_live < 8; ++i) {
    if (port(i).detected_up()) live[n_live++] = i;
  }
  if (n_live == 0) {
    ++network().drops().no_route;
    return;
  }
  const std::uint64_t h = flow_hash(pkt->flow, salt_);
  ++tx_packets_;
  tx_bytes_ += pkt->size_bytes;
  send(live[h % static_cast<std::uint64_t>(n_live)], std::move(pkt));
}

void Nic::receive(PacketPtr pkt, int in_port) {
  (void)in_port;
  ++rx_packets_;
  rx_bytes_ += pkt->size_bytes;
  if (pkt->wire_corrupted) {
    // FCS check fails: the frame never reaches the host stack, so
    // wire corruption manifests to transports as loss.
    ++fcs_drops_;
    ++network().drops().corrupt_fcs;
    return;
  }
  // Fold the INT trail of a traced packet into per-hop fabric spans: each
  // switch stamp opens a hop that closes at the next stamp (arrival here
  // for the last one). pid = the switch, parented on the sender's span.
  if (pkt->span != 0 && !pkt->int_records.empty()) {
    if (obs::Obs* o = network().obs(); o != nullptr && o->tracer().enabled()) {
      obs::Tracer& trc = o->tracer();
      const TimeNs now = network().engine().now();
      for (std::size_t i = 0; i < pkt->int_records.size(); ++i) {
        const IntRecord& r = pkt->int_records[i];
        const TimeNs t1 = i + 1 < pkt->int_records.size()
                              ? pkt->int_records[i + 1].timestamp
                              : now;
        trc.span("fabric.hop", pkt->span, r.timestamp, t1, r.node,
                 /*tid=*/0, "queue_bytes", r.queue_bytes, "tx_bytes",
                 r.tx_bytes);
      }
    }
  }
  if (deliver_) deliver_(*pkt);
}

BitsPerSec Nic::uplink_capacity() const {
  BitsPerSec total = 0;
  for (int i = 0; i < num_ports(); ++i) {
    if (port(i).detected_up()) total += port(i).rate();
  }
  return total;
}

}  // namespace repro::net
