// Packet model for the simulated fabric.
//
// A packet carries its 5-tuple (what switches hash for ECMP), its wire size
// (what links/queues account), an optional in-band-telemetry trail (what
// HPCC-style congestion control consumes, §4.8), and a typed application
// payload (the transport frame). Payload bytes live inside the transport
// frames; the fabric only ever looks at `size_bytes`.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"

namespace repro::net {

using DeviceId = std::uint32_t;
/// Host addresses equal the host's DeviceId; switches are not addressable.
using IpAddr = std::uint32_t;

enum class Proto : std::uint8_t { kTcp = 6, kUdp = 17 };

struct FlowKey {
  IpAddr src_ip = 0;
  IpAddr dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Proto proto = Proto::kUdp;

  bool operator==(const FlowKey&) const = default;
};

/// 5-tuple hash with a per-device salt: each switch hashes flows
/// independently, like real ECMP.
std::uint64_t flow_hash(const FlowKey& flow, std::uint64_t salt);

/// One INT record appended by each switch on the path (HPCC-style).
struct IntRecord {
  DeviceId node = 0;
  TimeNs timestamp = 0;
  std::uint64_t queue_bytes = 0;  ///< egress queue depth at enqueue
  BitsPerSec link_rate = 0;       ///< egress link capacity
  std::uint64_t tx_bytes = 0;     ///< cumulative bytes sent on the egress
};

struct Packet {
  FlowKey flow{};
  std::uint32_t size_bytes = 0;
  /// 0 = dedicated high-priority queue (SOLAR, §4.8); 1 = best effort.
  std::uint8_t priority = 1;
  bool request_int = false;
  std::vector<IntRecord> int_records;
  /// Transport frame (e.g. solar::Frame), stored as shared_ptr<const T>.
  std::any app;
  std::uint64_t id = 0;
  TimeNs sent_at = 0;
};

/// Helpers for the typed payload convention.
template <typename T>
void set_app(Packet& pkt, std::shared_ptr<const T> frame) {
  pkt.app = std::move(frame);
}

template <typename T, typename... Args>
void emplace_app(Packet& pkt, Args&&... args) {
  pkt.app = std::shared_ptr<const T>(
      std::make_shared<T>(std::forward<Args>(args)...));
}

/// Returns nullptr if the packet does not carry a T payload.
template <typename T>
std::shared_ptr<const T> app_as(const Packet& pkt) {
  if (auto* p = std::any_cast<std::shared_ptr<const T>>(&pkt.app)) return *p;
  return nullptr;
}

}  // namespace repro::net
