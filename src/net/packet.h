// Packet model for the simulated fabric.
//
// A packet carries its 5-tuple (what switches hash for ECMP), its wire size
// (what links/queues account), an optional in-band-telemetry trail (what
// HPCC-style congestion control consumes, §4.8), and a typed application
// payload (the transport frame). Payload bytes live inside the transport
// frames; the fabric only ever looks at `size_bytes`.
//
// The hot path is allocation-free in steady state:
//  * Packets are pooled per Network (`PacketPool`) and passed around as
//    `PacketPtr`, a unique_ptr whose deleter returns the packet to its pool.
//    The intrusive `next_` link doubles as the pool free-list link and the
//    egress-queue link, so queuing a packet costs two pointer writes.
//  * The app payload is a tagged, intrusively refcounted record drawn from
//    a process-global per-type free list — replacing the old
//    `std::any` + `shared_ptr` pair (two allocations per packet).
//  * The INT trail is a fixed-capacity inline array (Clos paths are <= 5
//    hops) instead of a heap vector.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "common/inline_vec.h"
#include "common/units.h"

namespace repro::net {

using DeviceId = std::uint32_t;
/// Host addresses equal the host's DeviceId; switches are not addressable.
using IpAddr = std::uint32_t;

enum class Proto : std::uint8_t { kTcp = 6, kUdp = 17 };

struct FlowKey {
  IpAddr src_ip = 0;
  IpAddr dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Proto proto = Proto::kUdp;

  bool operator==(const FlowKey&) const = default;
};

/// 5-tuple hash with a per-device salt: each switch hashes flows
/// independently, like real ECMP.
std::uint64_t flow_hash(const FlowKey& flow, std::uint64_t salt);

/// One INT record appended by each switch on the path (HPCC-style).
struct IntRecord {
  DeviceId node = 0;
  TimeNs timestamp = 0;
  std::uint64_t queue_bytes = 0;  ///< egress queue depth at enqueue
  BitsPerSec link_rate = 0;       ///< egress link capacity
  std::uint64_t tx_bytes = 0;     ///< cumulative bytes sent on the egress
};

/// INT trail, inline. Clos paths are at most 5 switch hops; 8 leaves slack
/// for ad-hoc test topologies.
using IntTrail = InlineVec<IntRecord, 8>;

// ---------------------------------------------------------------------------
// Typed, pooled, refcounted app payloads.
// ---------------------------------------------------------------------------

/// Header shared by every pooled payload record. `tag` identifies the
/// concrete type (for checked downcasts), `refs` is an atomic refcount —
/// a payload can be referenced from two shards at once (e.g. a frame held
/// for retransmission on its source shard while a copy is in flight on the
/// destination shard), and sharded workers as well as sim_fuzz `--jobs`
/// sweeps run concurrently — and `recycle` returns the record to the
/// calling thread's free list for its type.
struct PayloadBase {
  std::uint32_t tag = 0;
  std::atomic<std::uint32_t> refs{0};
  void (*recycle)(PayloadBase*) = nullptr;
  PayloadBase* free_next = nullptr;
};

namespace detail {
inline std::uint32_t next_payload_tag() {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace detail

/// Stable process-wide tag for payload type T (assigned on first use).
template <typename T>
std::uint32_t payload_tag() {
  static const std::uint32_t tag = detail::next_payload_tag();
  return tag;
}

inline void payload_ref(PayloadBase* b) {
  if (b != nullptr) b->refs.fetch_add(1, std::memory_order_relaxed);
}

inline void payload_unref(PayloadBase* b) {
  if (b != nullptr &&
      b->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    b->recycle(b);
  }
}

namespace detail {

template <typename T>
struct PayloadRec {
  PayloadBase base;
  union {
    T value;  // constructed on acquire, destroyed on recycle
  };
  PayloadRec() {}   // NOLINT: value intentionally left unconstructed
  ~PayloadRec() {}  // NOLINT
};

/// Per-type, per-thread free list. Records are returned to the recycling
/// thread's list on last unref and never freed (the thread-local head keeps
/// them reachable for the thread's lifetime), so steady state allocates
/// nothing and leak checkers stay quiet. thread_local makes the list safe
/// under both sharded workers and sim_fuzz `--jobs` sweeps; a record that
/// crosses shards simply migrates to the consuming thread's list, which is
/// invisible to the simulation (the allocator is not part of the model).
/// Immortal registry of every payload record ever allocated. Worker threads
/// are transient (spawned per parallel run); a record parked on a dead
/// thread's free list would otherwise be unreachable and show up as a leak.
/// Records are never freed anyway — the registry just keeps them reachable.
/// Locked only on allocation (freelist misses), not on acquire/recycle.
inline void keep_payload_record(PayloadBase* b) {
  static std::mutex mu;
  static auto* all = new std::vector<PayloadBase*>();  // intentionally immortal
  const std::lock_guard<std::mutex> lock(mu);
  all->push_back(b);
}

template <typename T>
struct PayloadFreeList {
  inline static thread_local PayloadBase* head = nullptr;

  template <typename... Args>
  static PayloadBase* acquire(Args&&... args) {
    PayloadRec<T>* rec;
    if (head != nullptr) {
      rec = reinterpret_cast<PayloadRec<T>*>(head);
      head = head->free_next;
    } else {
      rec = new PayloadRec<T>();
      rec->base.tag = payload_tag<T>();
      rec->base.recycle = &PayloadFreeList<T>::recycle;
      keep_payload_record(&rec->base);
    }
    rec->base.refs.store(1, std::memory_order_relaxed);
    ::new (static_cast<void*>(&rec->value)) T(std::forward<Args>(args)...);
    return &rec->base;
  }

  static void recycle(PayloadBase* b) {
    auto* rec = reinterpret_cast<PayloadRec<T>*>(b);
    rec->value.~T();
    b->free_next = head;
    head = b;
  }
};

}  // namespace detail

/// Shared, typed view of a pooled payload (the successor of the old
/// `shared_ptr<const T>` convention). Copying bumps the refcount; the
/// record returns to its free list when the last reference drops.
template <typename T>
class PayloadHandle {
 public:
  PayloadHandle() = default;
  ~PayloadHandle() { payload_unref(base_); }

  PayloadHandle(const PayloadHandle& o) : base_(o.base_) {
    payload_ref(base_);
  }
  PayloadHandle(PayloadHandle&& o) noexcept : base_(o.base_) {
    o.base_ = nullptr;
  }
  PayloadHandle& operator=(const PayloadHandle& o) {
    if (this != &o) {
      payload_unref(base_);
      base_ = o.base_;
      payload_ref(base_);
    }
    return *this;
  }
  PayloadHandle& operator=(PayloadHandle&& o) noexcept {
    if (this != &o) {
      payload_unref(base_);
      base_ = o.base_;
      o.base_ = nullptr;
    }
    return *this;
  }

  /// Adopts an already-counted reference (does not bump the refcount).
  static PayloadHandle adopt(PayloadBase* b) {
    PayloadHandle h;
    h.base_ = b;
    return h;
  }
  /// Shares an existing reference (bumps the refcount).
  static PayloadHandle share(PayloadBase* b) {
    payload_ref(b);
    return adopt(b);
  }

  const T& operator*() const {
    return reinterpret_cast<const detail::PayloadRec<T>*>(base_)->value;
  }
  const T* operator->() const { return &**this; }
  const T* get() const { return base_ == nullptr ? nullptr : &**this; }

  explicit operator bool() const { return base_ != nullptr; }
  friend bool operator==(const PayloadHandle& h, std::nullptr_t) {
    return h.base_ == nullptr;
  }

  PayloadBase* base() const { return base_; }

 private:
  PayloadBase* base_ = nullptr;
};

/// Builds a standalone pooled payload (e.g. a transport frame shared across
/// retransmissions) without attaching it to a packet yet.
template <typename T, typename... Args>
PayloadHandle<T> make_payload(Args&&... args) {
  return PayloadHandle<T>::adopt(
      detail::PayloadFreeList<T>::acquire(std::forward<Args>(args)...));
}

// ---------------------------------------------------------------------------
// Packet + per-network pool.
// ---------------------------------------------------------------------------

class PacketPool;

struct Packet {
  FlowKey flow{};
  std::uint32_t size_bytes = 0;
  /// 0 = dedicated high-priority queue (SOLAR, §4.8); 1 = best effort.
  std::uint8_t priority = 1;
  bool request_int = false;
  IntTrail int_records;
  /// Transport frame (e.g. solar::Frame); owns one reference.
  PayloadBase* app = nullptr;
  std::uint64_t id = 0;
  TimeNs sent_at = 0;
  /// Originating trace span (obs::Tracer id); 0 = untraced. Receivers
  /// parent their spans on it and copy it onto response packets so the
  /// return path folds into the same causal tree.
  std::uint64_t span = 0;
  /// Wire-level bit error (chaos corrupt fault). The receiving NIC's FCS
  /// check drops such packets, so transports see it as loss.
  bool wire_corrupted = false;

  Packet() = default;
  ~Packet() { payload_unref(app); }
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  /// Moves the wire-visible fields and payload reference. The destination's
  /// pool/queue links are untouched, so moving into a pooled packet is safe.
  Packet(Packet&& o) noexcept
      : flow(o.flow),
        size_bytes(o.size_bytes),
        priority(o.priority),
        request_int(o.request_int),
        int_records(o.int_records),
        app(std::exchange(o.app, nullptr)),
        id(o.id),
        sent_at(o.sent_at),
        span(o.span),
        wire_corrupted(o.wire_corrupted) {}
  Packet& operator=(Packet&& o) noexcept {
    if (this != &o) {
      flow = o.flow;
      size_bytes = o.size_bytes;
      priority = o.priority;
      request_int = o.request_int;
      int_records = o.int_records;
      payload_unref(app);
      app = std::exchange(o.app, nullptr);
      id = o.id;
      sent_at = o.sent_at;
      span = o.span;
      wire_corrupted = o.wire_corrupted;
    }
    return *this;
  }

 private:
  friend class PacketPool;
  friend class Device;
  friend class Port;
  friend struct PacketRecycle;

  Packet* next_ = nullptr;     // pool free list / egress queue link
  PacketPool* pool_ = nullptr;
};

struct PacketRecycle {
  void operator()(Packet* p) const;
};

/// Owning handle to a pooled packet; releasing returns it to its pool.
using PacketPtr = std::unique_ptr<Packet, PacketRecycle>;

/// Per-network packet free list. Heap-allocated and owned via the
/// retire() protocol: the Network retires the pool in its destructor, and
/// the pool deletes itself once the last outstanding packet (e.g. one still
/// captured in an in-flight engine closure) comes home. That makes handle
/// lifetime independent of Network lifetime.
class PacketPool {
 public:
  PacketPtr acquire() {
    if (free_head_ == nullptr) grow();
    Packet* p = free_head_;
    free_head_ = p->next_;
    p->next_ = nullptr;
    ++outstanding_;
    return PacketPtr(p);
  }

  void release(Packet* p) {
    payload_unref(p->app);
    p->app = nullptr;
    p->int_records.clear();
    p->flow = FlowKey{};
    p->size_bytes = 0;
    p->priority = 1;
    p->request_int = false;
    p->id = 0;
    p->sent_at = 0;
    p->span = 0;
    p->wire_corrupted = false;
    p->next_ = free_head_;
    free_head_ = p;
    if (--outstanding_ == 0 && retired_) delete this;
  }

  /// Owner is going away; self-destruct once all packets are back.
  void retire() {
    retired_ = true;
    if (outstanding_ == 0) delete this;
  }

  std::size_t outstanding() const { return outstanding_; }
  std::size_t capacity() const { return chunks_.size() * kChunk; }

 private:
  static constexpr std::size_t kChunk = 256;

  void grow() {
    auto chunk = std::make_unique<Packet[]>(kChunk);
    for (std::size_t i = kChunk; i-- > 0;) {
      chunk[i].pool_ = this;
      chunk[i].next_ = free_head_;
      free_head_ = &chunk[i];
    }
    chunks_.push_back(std::move(chunk));
  }

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  Packet* free_head_ = nullptr;
  std::size_t outstanding_ = 0;
  bool retired_ = false;
};

inline void PacketRecycle::operator()(Packet* p) const {
  p->pool_->release(p);
}

// ---------------------------------------------------------------------------
// Typed payload helpers (same names as the std::any era, pooled semantics).
// ---------------------------------------------------------------------------

/// Attaches a shared payload to the packet (bumps the refcount).
template <typename T>
void set_app(Packet& pkt, const PayloadHandle<T>& frame) {
  payload_unref(pkt.app);
  pkt.app = frame.base();
  payload_ref(pkt.app);
}

/// Constructs the payload in place from the type's free list.
template <typename T, typename... Args>
void emplace_app(Packet& pkt, Args&&... args) {
  payload_unref(pkt.app);
  pkt.app = detail::PayloadFreeList<T>::acquire(std::forward<Args>(args)...);
}

/// Returns an empty handle if the packet does not carry a T payload. The
/// handle shares ownership, so it may outlive the packet (the TCP interrupt
/// path relies on this).
template <typename T>
PayloadHandle<T> app_as(const Packet& pkt) {
  if (pkt.app != nullptr && pkt.app->tag == payload_tag<T>()) {
    return PayloadHandle<T>::share(pkt.app);
  }
  return {};
}

}  // namespace repro::net
