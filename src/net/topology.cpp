#include "net/topology.h"

#include <string>

#include "sim/shard_context.h"

namespace repro::net {
namespace {

int racks_for(int servers, int per_rack) {
  return (servers + per_rack - 1) / per_rack;
}

/// Node-affine shard assignment across both pods. Racks map to contiguous
/// shard blocks (`rack * shards / total_racks`), so a rack's servers, its
/// ToR pair and all the 200 ns host links stay on one shard; spines and
/// cores round-robin across shards. With shards == 1 everything lands on
/// shard 0 and construction order — hence RNG draws, device ids and packet
/// ids — is bit-identical to the pre-sharding builder.
struct ShardPlan {
  int shards = 1;
  int rack_base = 0;     ///< first global rack index of the pod being built
  int total_racks = 1;   ///< racks across all pods
  int spine_base = 0;    ///< first global spine index of the pod being built
};

int shard_of_rack(const ShardPlan& plan, int global_rack) {
  return static_cast<int>(static_cast<long long>(global_rack) * plan.shards /
                          plan.total_racks);
}

struct Pod {
  std::vector<Nic*> servers;
  std::vector<Switch*> tors;
  std::vector<Switch*> spines;
};

Pod build_pod(Network& net, const ClosConfig& cfg, const std::string& prefix,
              int num_servers, const ShardPlan& plan) {
  Pod pod;
  const int racks = racks_for(num_servers, cfg.servers_per_rack);
  const int tor_ports = cfg.servers_per_rack + cfg.spines_per_pod;
  const int spine_ports = 2 * racks + cfg.core_switches;

  for (int r = 0; r < 2 * racks; ++r) {
    const sim::ShardScope scope(shard_of_rack(plan, plan.rack_base + r / 2));
    pod.tors.push_back(net.add_device<Switch>(
        prefix + "-tor" + std::to_string(r), tor_ports));
  }
  for (int s = 0; s < cfg.spines_per_pod; ++s) {
    const sim::ShardScope scope((plan.spine_base + s) % plan.shards);
    pod.spines.push_back(net.add_device<Switch>(
        prefix + "-spine" + std::to_string(s), spine_ports));
  }
  for (int i = 0; i < num_servers; ++i) {
    const int rack = i / cfg.servers_per_rack;
    const int slot = i % cfg.servers_per_rack;
    const sim::ShardScope scope(shard_of_rack(plan, plan.rack_base + rack));
    Nic* nic = net.add_device<Nic>(prefix + "-srv" + std::to_string(i),
                                   /*uplinks=*/2);
    pod.servers.push_back(nic);
    // Dual-home: uplink 0 to the even ToR of the pair, uplink 1 to the odd.
    for (int u = 0; u < 2; ++u) {
      Switch* tor = pod.tors[static_cast<std::size_t>(2 * rack + u)];
      net.link(*nic, u, *tor, slot, cfg.host_link_rate, cfg.host_prop,
               cfg.queue_capacity);
    }
  }
  // Every ToR to every pod spine.
  for (std::size_t t = 0; t < pod.tors.size(); ++t) {
    for (int s = 0; s < cfg.spines_per_pod; ++s) {
      net.link(*pod.tors[t], cfg.servers_per_rack + s, *pod.spines[s],
               static_cast<int>(t), cfg.fabric_link_rate, cfg.fabric_prop,
               cfg.queue_capacity);
    }
  }
  return pod;
}

}  // namespace

Clos build_clos(Network& net, const ClosConfig& cfg) {
  Clos clos;
  clos.config = cfg;

  const int compute_racks = racks_for(cfg.compute_servers, cfg.servers_per_rack);
  const int storage_racks = racks_for(cfg.storage_servers, cfg.servers_per_rack);
  ShardPlan plan;
  plan.shards = cfg.shards < 1 ? 1 : cfg.shards;
  plan.total_racks = compute_racks + storage_racks;

  Pod compute = build_pod(net, cfg, "cmp", cfg.compute_servers, plan);
  plan.rack_base = compute_racks;
  plan.spine_base = cfg.spines_per_pod;
  Pod storage = build_pod(net, cfg, "sto", cfg.storage_servers, plan);

  const int core_ports = 2 * cfg.spines_per_pod;
  std::vector<Switch*> cores;
  for (int c = 0; c < cfg.core_switches; ++c) {
    const sim::ShardScope scope(c % plan.shards);
    cores.push_back(
        net.add_device<Switch>("core" + std::to_string(c), core_ports));
  }
  for (int c = 0; c < cfg.core_switches; ++c) {
    for (int s = 0; s < cfg.spines_per_pod; ++s) {
      net.link(*compute.spines[static_cast<std::size_t>(s)],
               2 * compute_racks + c, *cores[static_cast<std::size_t>(c)], s,
               cfg.fabric_link_rate, cfg.fabric_prop, cfg.queue_capacity);
      net.link(*storage.spines[static_cast<std::size_t>(s)],
               2 * storage_racks + c, *cores[static_cast<std::size_t>(c)],
               cfg.spines_per_pod + s, cfg.fabric_link_rate, cfg.fabric_prop,
               cfg.queue_capacity);
    }
  }

  clos.compute = std::move(compute.servers);
  clos.compute_tors = std::move(compute.tors);
  clos.compute_spines = std::move(compute.spines);
  clos.storage = std::move(storage.servers);
  clos.storage_tors = std::move(storage.tors);
  clos.storage_spines = std::move(storage.spines);
  clos.cores = std::move(cores);

  net.compute_routes();
  return clos;
}

TwoHosts build_two_hosts(Network& net, BitsPerSec rate, TimeNs prop,
                         std::uint64_t queue_capacity) {
  TwoHosts t;
  t.sw = net.add_device<Switch>("sw", 2);
  t.a = net.add_device<Nic>("hostA", 1);
  t.b = net.add_device<Nic>("hostB", 1);
  net.link(*t.a, 0, *t.sw, 0, rate, prop, queue_capacity);
  net.link(*t.b, 0, *t.sw, 1, rate, prop, queue_capacity);
  net.compute_routes();
  return t;
}

}  // namespace repro::net
