#include "net/topology.h"

#include <string>

namespace repro::net {
namespace {

int racks_for(int servers, int per_rack) {
  return (servers + per_rack - 1) / per_rack;
}

struct Pod {
  std::vector<Nic*> servers;
  std::vector<Switch*> tors;
  std::vector<Switch*> spines;
};

Pod build_pod(Network& net, const ClosConfig& cfg, const std::string& prefix,
              int num_servers) {
  Pod pod;
  const int racks = racks_for(num_servers, cfg.servers_per_rack);
  const int tor_ports = cfg.servers_per_rack + cfg.spines_per_pod;
  const int spine_ports = 2 * racks + cfg.core_switches;

  for (int r = 0; r < 2 * racks; ++r) {
    pod.tors.push_back(net.add_device<Switch>(
        prefix + "-tor" + std::to_string(r), tor_ports));
  }
  for (int s = 0; s < cfg.spines_per_pod; ++s) {
    pod.spines.push_back(net.add_device<Switch>(
        prefix + "-spine" + std::to_string(s), spine_ports));
  }
  for (int i = 0; i < num_servers; ++i) {
    Nic* nic = net.add_device<Nic>(prefix + "-srv" + std::to_string(i),
                                   /*uplinks=*/2);
    pod.servers.push_back(nic);
    const int rack = i / cfg.servers_per_rack;
    const int slot = i % cfg.servers_per_rack;
    // Dual-home: uplink 0 to the even ToR of the pair, uplink 1 to the odd.
    for (int u = 0; u < 2; ++u) {
      Switch* tor = pod.tors[static_cast<std::size_t>(2 * rack + u)];
      net.link(*nic, u, *tor, slot, cfg.host_link_rate, cfg.host_prop,
               cfg.queue_capacity);
    }
  }
  // Every ToR to every pod spine.
  for (std::size_t t = 0; t < pod.tors.size(); ++t) {
    for (int s = 0; s < cfg.spines_per_pod; ++s) {
      net.link(*pod.tors[t], cfg.servers_per_rack + s, *pod.spines[s],
               static_cast<int>(t), cfg.fabric_link_rate, cfg.fabric_prop,
               cfg.queue_capacity);
    }
  }
  return pod;
}

}  // namespace

Clos build_clos(Network& net, const ClosConfig& cfg) {
  Clos clos;
  clos.config = cfg;

  Pod compute = build_pod(net, cfg, "cmp", cfg.compute_servers);
  Pod storage = build_pod(net, cfg, "sto", cfg.storage_servers);

  const int core_ports = 2 * cfg.spines_per_pod;
  std::vector<Switch*> cores;
  for (int c = 0; c < cfg.core_switches; ++c) {
    cores.push_back(
        net.add_device<Switch>("core" + std::to_string(c), core_ports));
  }
  const int compute_racks = racks_for(cfg.compute_servers, cfg.servers_per_rack);
  const int storage_racks = racks_for(cfg.storage_servers, cfg.servers_per_rack);
  for (int c = 0; c < cfg.core_switches; ++c) {
    for (int s = 0; s < cfg.spines_per_pod; ++s) {
      net.link(*compute.spines[static_cast<std::size_t>(s)],
               2 * compute_racks + c, *cores[static_cast<std::size_t>(c)], s,
               cfg.fabric_link_rate, cfg.fabric_prop, cfg.queue_capacity);
      net.link(*storage.spines[static_cast<std::size_t>(s)],
               2 * storage_racks + c, *cores[static_cast<std::size_t>(c)],
               cfg.spines_per_pod + s, cfg.fabric_link_rate, cfg.fabric_prop,
               cfg.queue_capacity);
    }
  }

  clos.compute = std::move(compute.servers);
  clos.compute_tors = std::move(compute.tors);
  clos.compute_spines = std::move(compute.spines);
  clos.storage = std::move(storage.servers);
  clos.storage_tors = std::move(storage.tors);
  clos.storage_spines = std::move(storage.spines);
  clos.cores = std::move(cores);

  net.compute_routes();
  return clos;
}

TwoHosts build_two_hosts(Network& net, BitsPerSec rate, TimeNs prop,
                         std::uint64_t queue_capacity) {
  TwoHosts t;
  t.sw = net.add_device<Switch>("sw", 2);
  t.a = net.add_device<Nic>("hostA", 1);
  t.b = net.add_device<Nic>("hostB", 1);
  net.link(*t.a, 0, *t.sw, 0, rate, prop, queue_capacity);
  net.link(*t.b, 0, *t.sw, 1, rate, prop, queue_capacity);
  net.compute_routes();
  return t;
}

}  // namespace repro::net
