// The fabric: devices, ports, links, failures and routing.
//
// `Network` owns every device and all shared link state. Devices exchange
// packets through `Port`s: each port has a strict-priority pair of
// byte-limited egress queues (shallow buffers, per §3.1 the FN deliberately
// uses shallow-buffer switches), a serialization stage at link rate, and a
// propagation stage. Packets are pooled (`Network::make_packet`) and move
// through the fabric as `PacketPtr`; egress queues are intrusive lists
// threaded through the packets themselves, so the forwarding path performs
// no allocation. Failure semantics:
//
//  * fail-stop (link/port down, device power-off): carrier loss is detected
//    by both ends after `link_detect_delay`; ECMP selection then excludes
//    the port, and a routing recomputation runs after `reconverge_delay`.
//    Packets transmitted into a dead link during the detection window are
//    lost — the realistic sub-second blackhole.
//  * silent failures (hung switch, post-reboot unprogrammed FIB, partial
//    blackhole on a subset of flows, random loss): carrier stays up, the
//    control plane sees nothing, and only endpoint action (SOLAR's
//    multi-path timeouts) or manual ops repair ends the outage. These are
//    the incidents behind Fig. 8 and Table 2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "net/packet.h"
#include "sim/engine.h"
#include "sim/shard_context.h"
#include "sim/sharded.h"

namespace repro::obs {
class Obs;
}

namespace repro::net {

class Device;
class Network;

struct LinkState {
  bool alive = true;
};

struct PortStats {
  std::uint64_t pkts_tx = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t enqueues = 0;
  std::uint64_t queue_bytes_peak = 0;  ///< high-water mark across classes
  std::uint64_t drops_queue_full = 0;
  std::uint64_t drops_link_down = 0;
};

class Port {
 public:
  static constexpr int kNumQueues = 2;  // 0 = high priority, 1 = best effort

  Port() = default;
  ~Port() { drain(); }
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;
  Port(Port&& o) noexcept;

  bool connected() const { return peer_ != nullptr; }
  /// Carrier as currently *known* at this end (detection lags reality).
  bool detected_up() const { return connected() && detected_up_; }
  Device* peer() const { return peer_; }
  int peer_port() const { return peer_port_; }
  BitsPerSec rate() const { return rate_; }
  std::uint64_t queue_bytes() const { return q_bytes_[0] + q_bytes_[1]; }
  std::uint64_t tx_bytes_total() const { return stats_.bytes_tx; }
  const PortStats& stats() const { return stats_; }

 private:
  friend class Device;
  friend class Network;

  void push(int cls, Packet* pkt);
  PacketPtr pop(int cls);
  void drain();

  Device* owner_ = nullptr;
  int index_ = -1;
  Device* peer_ = nullptr;
  int peer_port_ = -1;
  BitsPerSec rate_ = 0;
  TimeNs prop_delay_ = 0;
  std::shared_ptr<LinkState> link_;
  bool detected_up_ = false;
  std::uint64_t cap_bytes_ = 0;
  // Intrusive FIFO per priority class, linked through Packet::next_.
  Packet* q_head_[kNumQueues] = {nullptr, nullptr};
  Packet* q_tail_[kNumQueues] = {nullptr, nullptr};
  std::uint64_t q_bytes_[kNumQueues] = {0, 0};
  bool transmitting_ = false;
  PortStats stats_;
};

/// Per-device fault knobs (set via Network's failure API).
struct DeviceFaults {
  bool silent_dead = false;     ///< forwards nothing, carrier stays up
  double loss_rate = 0.0;       ///< iid drop probability on receive
  double blackhole_fraction = 0.0;  ///< fraction of flows silently dropped
  std::uint64_t blackhole_salt = 0;
  // Wire-level misbehaviour (chaos): applied to arrivals at this device.
  double corrupt_rate = 0.0;    ///< iid bit-error probability (FCS-caught)
  double dup_rate = 0.0;        ///< iid duplicate-delivery probability
  double reorder_rate = 0.0;    ///< iid probability of delaying a packet
  TimeNs reorder_delay = 0;     ///< extra delivery delay for reordered pkts
};

class Device {
 public:
  Device(Network& net, DeviceId id, std::string name, int num_ports,
         bool is_host);
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  DeviceId id() const { return id_; }
  const std::string& name() const { return name_; }
  bool is_host() const { return is_host_; }
  /// Home shard (0 in single-shard networks). Fixed at construction: a
  /// device's events always execute on its home shard's engine.
  int shard() const { return shard_; }
  int num_ports() const { return static_cast<int>(ports_.size()); }
  Port& port(int i) { return ports_[static_cast<std::size_t>(i)]; }
  const Port& port(int i) const { return ports_[static_cast<std::size_t>(i)]; }

  /// Enqueues `pkt` on `port`'s egress. Drops (with accounting) if the
  /// queue is full or the port was never connected.
  void send(int port, PacketPtr pkt);

  Network& network() { return *net_; }
  const DeviceFaults& faults() const { return faults_; }

 protected:
  /// Delivered packets after fault filtering. `in_port` is the ingress.
  virtual void receive(PacketPtr pkt, int in_port) = 0;
  /// Carrier change notifications (fired at *detection* time).
  virtual void on_link_down(int port) { (void)port; }
  virtual void on_link_up(int port) { (void)port; }

 private:
  friend class Network;

  void start_tx(int port);
  void handle_arrival(PacketPtr pkt, int in_port);

  Network* net_;
  DeviceId id_;
  std::string name_;
  bool is_host_;
  int shard_;
  std::vector<Port> ports_;
  DeviceFaults faults_;
};

struct NetworkParams {
  /// Time for an endpoint/switch to notice carrier loss on a fail-stop.
  TimeNs link_detect_delay = ms(10);
  /// Additional time for routing to recompute after a detection.
  TimeNs reconverge_delay = ms(50);
  /// Default egress queue capacity per priority class (shallow buffer).
  std::uint64_t default_queue_capacity = 384 * 1024;
};

class Network {
 public:
  struct DropStats {
    std::uint64_t queue_full = 0;
    std::uint64_t link_down = 0;
    std::uint64_t device_dead = 0;
    std::uint64_t blackhole = 0;
    std::uint64_t random_loss = 0;
    std::uint64_t no_route = 0;
    std::uint64_t corrupt_fcs = 0;  ///< corrupted packets dropped by NIC FCS
    std::uint64_t total() const {
      return queue_full + link_down + device_dead + blackhole + random_loss +
             no_route + corrupt_fcs;
    }
  };

  /// Wire-fault event counters (chaos corrupt/dup/reorder injection).
  struct WireFaultStats {
    std::uint64_t corrupted = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
  };

  Network(sim::Engine& engine, NetworkParams params, std::uint64_t seed);
  /// Sharded fabric: one ShardState (rng, packet pool, drop counters,
  /// packet-id space) per shard of `se`. Shard 0's streams are seeded
  /// exactly like the single-engine constructor, so a 1-shard sharded
  /// network is bit-identical to a legacy one.
  Network(sim::ShardedEngine& se, NetworkParams params, std::uint64_t seed);
  ~Network();

  /// Creates and owns a device. T must derive from Device and take
  /// (Network&, DeviceId, forwarded args...) in its constructor.
  template <typename T, typename... Args>
  T* add_device(Args&&... args) {
    auto dev = std::make_unique<T>(*this, next_device_id_++,
                                   std::forward<Args>(args)...);
    T* raw = dev.get();
    devices_.push_back(std::move(dev));
    return raw;
  }

  /// Draws a blank packet from the calling shard's pool. Pools are
  /// strictly shard-affine: a packet shell never crosses shards (only its
  /// contents do, see Device::start_tx), so each pool stays single-threaded.
  PacketPtr make_packet() { return state().pool->acquire(); }
  /// Shard 0's pool — the whole pool in single-shard networks (every
  /// existing call site). Use packets_outstanding() for fleet totals.
  const PacketPool& packet_pool() const { return *shards_[0]->pool; }
  /// Packets currently in flight across all shards' pools.
  std::size_t packets_outstanding() const;

  /// Connects a.port(pa) <-> b.port(pb) with symmetric rate/propagation.
  void link(Device& a, int pa, Device& b, int pb, BitsPerSec rate,
            TimeNs prop_delay, std::uint64_t queue_capacity = 0);

  /// (Re)computes shortest-path ECMP routes from the currently *detected*
  /// topology. Must be called once after building the topology.
  void compute_routes();

  /// ECMP candidate ports at `dev` toward host `dst` (from the last route
  /// computation). nullptr if unreachable.
  const std::vector<int>* routes(DeviceId dev, IpAddr dst) const;

  // --- failure injection -------------------------------------------------
  void fail_link(Device& dev, int port);
  void repair_link(Device& dev, int port);
  /// Fail-stop: all of the device's links go down (detectable).
  void fail_device_stop(Device& dev);
  /// Silent death: forwards nothing, carrier stays up (undetectable).
  void fail_device_silent(Device& dev);
  /// Kind-specific toggle for silent death: unlike `repair_device` it does
  /// not touch any other fault knob or link, so composed fault schedules
  /// (chaos plans stacking faults on one device) revert independently.
  void set_silent(Device& dev, bool dead);
  void repair_device(Device& dev);
  void set_loss_rate(Device& dev, double p);
  void set_blackhole(Device& dev, double fraction);
  /// Wire-level misbehaviour at a device (NIC or switch): mark arrivals
  /// corrupted (dropped by the receiving NIC's FCS check), deliver them
  /// twice, or delay a random subset by `delay` (reordering them past
  /// later arrivals). All repaired by `repair_device` or a rate of 0.
  void set_corrupt_rate(Device& dev, double p);
  void set_dup_rate(Device& dev, double p);
  void set_reorder(Device& dev, double p, TimeNs delay);

  /// Non-owning observability hook shared by everything fabric-adjacent.
  /// Null (the default) means fully dark; set it before building devices so
  /// construction-time registrations land. Attaching obs must never change
  /// simulation behaviour.
  void set_obs(obs::Obs* obs) { obs_ = obs; }
  obs::Obs* obs() const { return obs_; }

  /// The calling shard's engine (the single engine in legacy networks).
  /// Inside a sharded run this is the engine of the shard whose events the
  /// current thread is executing — i.e. always the home engine of the
  /// device whose handler is on the stack.
  sim::Engine& engine() {
    return sharded_ != nullptr ? sharded_->shard(sim::current_shard())
                               : *engine_;
  }
  /// Non-null when this fabric runs on a ShardedEngine.
  sim::ShardedEngine* sharded() { return sharded_; }
  Rng& rng() { return state().rng; }
  const NetworkParams& params() const { return params_; }
  DropStats& drops() { return state().drops; }
  /// Shard 0's counters (the whole story in single-shard networks); use
  /// the *_total() variants for fleet-wide numbers.
  const DropStats& drops() const { return shards_[0]->drops; }
  WireFaultStats& wire_faults() { return state().wire_faults; }
  const WireFaultStats& wire_faults() const { return shards_[0]->wire_faults; }
  DropStats drops_total() const;
  WireFaultStats wire_faults_total() const;
  std::uint64_t next_packet_id() {
    ShardState& st = state();
    return st.packet_id_tag | st.next_packet_id++;
  }

  /// Smallest propagation delay on any link whose endpoints live on
  /// different shards (the upper bound for the conservative lookahead).
  /// -1 if no such link exists.
  TimeNs min_cross_shard_prop() const { return min_cross_shard_prop_; }

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

 private:
  friend class Device;

  // Per-shard mutable fabric state. Everything a packet's journey touches
  // on its home shard lives here, so concurrent shards never share a
  // cache line, an RNG stream, a counter or a pool. Shard 0 is seeded
  // exactly like the legacy single-engine network; shard s > 0 gets a
  // forked stream. Packet ids are (shard << 48) | counter, with shard 0
  // untagged so single-shard ids match the legacy sequence bit-for-bit.
  struct alignas(64) ShardState {
    Rng rng;
    // Owned via the retire() protocol: packets captured in still-pending
    // engine closures may outlive the Network; the pool outlives them all.
    PacketPool* pool;
    DropStats drops;
    WireFaultStats wire_faults;
    std::uint64_t next_packet_id = 1;
    std::uint64_t packet_id_tag = 0;

    ShardState(Rng r, int shard)
        : rng(r),
          pool(new PacketPool),
          packet_id_tag(shard == 0
                            ? 0
                            : static_cast<std::uint64_t>(shard) << 48) {}
  };

  ShardState& state() {
    return *shards_[sharded_ != nullptr
                        ? static_cast<std::size_t>(sim::current_shard())
                        : 0];
  }

  void set_link_alive(Device& dev, int port, bool alive);
  void set_link_alive_now(Device& dev, int port, bool alive);
  void schedule_reconvergence();

  sim::Engine* engine_;
  sim::ShardedEngine* sharded_ = nullptr;
  NetworkParams params_;
  obs::Obs* obs_ = nullptr;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::unique_ptr<Device>> devices_;
  DeviceId next_device_id_ = 1;
  TimeNs min_cross_shard_prop_ = -1;
  bool reconvergence_pending_ = false;
  // routes_[device id][dst ip] -> egress ports on shortest paths.
  std::unordered_map<DeviceId, std::unordered_map<IpAddr, std::vector<int>>>
      routes_;
};

}  // namespace repro::net
