// Store-and-forward switch with ECMP and INT.
#pragma once

#include <string>

#include "net/network.h"

namespace repro::obs {
class Registry;
}

namespace repro::net {

class Switch : public Device {
 public:
  Switch(Network& net, DeviceId id, std::string name, int num_ports)
      : Device(net, id, std::move(name), num_ports, /*is_host=*/false),
        salt_(net.rng().next()) {}

  std::uint64_t forwarded() const { return forwarded_; }
  /// Packets whose nominal ECMP choice (hash over the full candidate set)
  /// was a detected-down port, forcing a re-hash onto the live subset —
  /// the window where flows silently shift paths.
  std::uint64_t ecmp_rehashes() const { return ecmp_rehashes_; }

  /// Publishes forwarding/drop/queue metrics (labels: node=<name>).
  void register_metrics(obs::Registry& reg) const;

 protected:
  void receive(PacketPtr pkt, int in_port) override;

 private:
  std::uint64_t salt_;  ///< per-switch ECMP hash salt
  std::uint64_t forwarded_ = 0;
  std::uint64_t ecmp_rehashes_ = 0;
};

}  // namespace repro::net
