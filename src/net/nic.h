// Host NIC: the attachment point for transport stacks.
//
// A NIC owns the host's uplinks (typically two, one per ToR of the rack's
// ToR pair — §3.3 "even with the ToR switch, we connect each server to a
// pair of it"). Egress flows are spread over detected-up uplinks by flow
// hash, so losing one uplink (fail-stop) moves traffic to the sibling after
// carrier detection, while a *silent* upstream failure keeps the flow
// pinned to its dead path — that asymmetry is what Table 2 measures.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "net/network.h"
#include "obs/resettable.h"

namespace repro::obs {
class Registry;
}

namespace repro::net {

class Nic : public Device, public obs::Resettable {
 public:
  /// The NIC keeps ownership of the packet; the stack reads (and may strip
  /// the payload off) the reference, and the packet recycles on return.
  using DeliverFn = std::function<void(Packet&)>;

  Nic(Network& net, DeviceId id, std::string name, int uplinks)
      : Device(net, id, std::move(name), uplinks, /*is_host=*/true),
        salt_(net.rng().next()) {}

  /// Host stack receive callback.
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  /// Currently installed receive callback. Heterogeneous storage nodes
  /// snapshot each stack's hook and re-install a port demux over them.
  const DeliverFn& deliver() const { return deliver_; }

  /// Blank pooled packet for the host stack to fill in.
  PacketPtr make_packet() { return network().make_packet(); }

  /// Sends a transport packet: picks an uplink by flow hash over the
  /// currently detected-up ports, stamps ids/timestamps.
  void send_packet(PacketPtr pkt);
  /// Convenience for stacks/tests that build value packets: moves the
  /// fields into a pooled packet first.
  void send_packet(Packet&& pkt) {
    PacketPtr p = make_packet();
    *p = std::move(pkt);
    send_packet(std::move(p));
  }

  IpAddr ip() const { return id(); }

  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }
  std::uint64_t fcs_drops() const { return fcs_drops_; }
  void reset_counters() override {
    tx_packets_ = rx_packets_ = tx_bytes_ = rx_bytes_ = fcs_drops_ = 0;
  }

  /// Publishes tx/rx counters and registers for reset (labels: node=<name>).
  void register_metrics(obs::Registry& reg);

  /// Aggregate line rate over detected-up uplinks.
  BitsPerSec uplink_capacity() const;

 protected:
  void receive(PacketPtr pkt, int in_port) override;

 private:
  DeliverFn deliver_;
  std::uint64_t salt_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t fcs_drops_ = 0;
};

}  // namespace repro::net
