#include "net/switch.h"

#include "obs/registry.h"

namespace repro::net {

void Switch::register_metrics(obs::Registry& reg) const {
  const obs::Labels node = obs::label("node", name());
  reg.expose_counter("switch.forwarded", node, &forwarded_);
  reg.expose_counter("switch.ecmp_rehashes", node, &ecmp_rehashes_);
  reg.expose_gauge(
      "switch.queue_bytes", node,
      [this]() -> std::int64_t {
        std::int64_t total = 0;
        for (int i = 0; i < num_ports(); ++i) {
          total += static_cast<std::int64_t>(port(i).queue_bytes());
        }
        return total;
      },
      /*sampled=*/true);
  reg.expose_gauge(
      "switch.queue_bytes_peak", node,
      [this]() -> std::int64_t {
        std::int64_t peak = 0;
        for (int i = 0; i < num_ports(); ++i) {
          const std::int64_t p = static_cast<std::int64_t>(
              port(i).stats().queue_bytes_peak);
          if (p > peak) peak = p;
        }
        return peak;
      },
      /*sampled=*/false);
  reg.expose_gauge(
      "switch.drops", node,
      [this]() -> std::int64_t {
        std::int64_t total = 0;
        for (int i = 0; i < num_ports(); ++i) {
          const PortStats& s = port(i).stats();
          total += static_cast<std::int64_t>(s.drops_queue_full +
                                             s.drops_link_down);
        }
        return total;
      },
      /*sampled=*/false);
  reg.expose_gauge(
      "switch.enqueues", node,
      [this]() -> std::int64_t {
        std::int64_t total = 0;
        for (int i = 0; i < num_ports(); ++i) {
          total += static_cast<std::int64_t>(port(i).stats().enqueues);
        }
        return total;
      },
      /*sampled=*/false);
}

void Switch::receive(PacketPtr pkt, int in_port) {
  (void)in_port;
  const std::vector<int>* candidates =
      network().routes(id(), pkt->flow.dst_ip);
  if (candidates == nullptr || candidates->empty()) {
    ++network().drops().no_route;
    return;
  }
  // Fast local exclusion: between carrier detection and routing
  // reconvergence, skip ports we already know are down.
  int live[16];
  int n_live = 0;
  for (int p : *candidates) {
    if (port(p).detected_up() && n_live < 16) live[n_live++] = p;
  }
  if (n_live == 0) {
    ++network().drops().no_route;
    return;
  }
  const std::uint64_t h = flow_hash(pkt->flow, salt_);
  // Count flows that the live-port filter moved off their nominal hash
  // choice — observation only, the selection below is unchanged.
  if (n_live != static_cast<int>(candidates->size()) &&
      !port((*candidates)[h % candidates->size()]).detected_up()) {
    ++ecmp_rehashes_;
  }
  const int egress = live[h % static_cast<std::uint64_t>(n_live)];

  if (pkt->request_int && !pkt->int_records.full()) {
    Port& p = port(egress);
    pkt->int_records.push_back(IntRecord{
        .node = id(),
        .timestamp = network().engine().now(),
        .queue_bytes = p.queue_bytes(),
        .link_rate = p.rate(),
        .tx_bytes = p.tx_bytes_total(),
    });
  }
  ++forwarded_;
  send(egress, std::move(pkt));
}

}  // namespace repro::net
