#include "net/switch.h"

namespace repro::net {

void Switch::receive(PacketPtr pkt, int in_port) {
  (void)in_port;
  const std::vector<int>* candidates =
      network().routes(id(), pkt->flow.dst_ip);
  if (candidates == nullptr || candidates->empty()) {
    ++network().drops().no_route;
    return;
  }
  // Fast local exclusion: between carrier detection and routing
  // reconvergence, skip ports we already know are down.
  int live[16];
  int n_live = 0;
  for (int p : *candidates) {
    if (port(p).detected_up() && n_live < 16) live[n_live++] = p;
  }
  if (n_live == 0) {
    ++network().drops().no_route;
    return;
  }
  const std::uint64_t h = flow_hash(pkt->flow, salt_);
  const int egress = live[h % static_cast<std::uint64_t>(n_live)];

  if (pkt->request_int && !pkt->int_records.full()) {
    Port& p = port(egress);
    pkt->int_records.push_back(IntRecord{
        .node = id(),
        .timestamp = network().engine().now(),
        .queue_bytes = p.queue_bytes(),
        .link_rate = p.rate(),
        .tx_bytes = p.tx_bytes_total(),
    });
  }
  ++forwarded_;
  send(egress, std::move(pkt));
}

}  // namespace repro::net
