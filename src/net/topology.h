// Topology builders.
//
// `build_clos` produces the paper's FN shape: a compute pod and a storage
// pod, each with racks of dual-homed servers under ToR *pairs* and a spine
// tier, joined by a core tier (the region boundary every FN flow crosses).
// `build_two_hosts` is a minimal host-switch-host fixture for transport
// unit tests.
#pragma once

#include <vector>

#include "net/nic.h"
#include "net/switch.h"

namespace repro::net {

struct ClosConfig {
  int compute_servers = 8;
  int storage_servers = 8;
  int servers_per_rack = 8;
  int spines_per_pod = 2;
  int core_switches = 2;
  BitsPerSec host_link_rate = gbps(25);  ///< per uplink; 2 uplinks/server
  BitsPerSec fabric_link_rate = gbps(100);
  TimeNs host_prop = ns(200);
  TimeNs fabric_prop = ns(300);
  std::uint64_t queue_capacity = 0;  ///< 0 = network default
  /// Node-affine partition for parallel simulation. Racks are split into
  /// `shards` contiguous blocks: a rack's servers and its ToR pair share
  /// the rack's shard (the 200 ns host links stay shard-local), spines and
  /// cores round-robin. Every cross-shard link is a fabric link, so the
  /// conservative lookahead equals `fabric_prop`. 1 = legacy single-shard.
  int shards = 1;
};

struct Clos {
  ClosConfig config;
  std::vector<Nic*> compute;
  std::vector<Nic*> storage;
  std::vector<Switch*> compute_tors;  ///< rack r's pair at [2r], [2r+1]
  std::vector<Switch*> storage_tors;
  std::vector<Switch*> compute_spines;
  std::vector<Switch*> storage_spines;
  std::vector<Switch*> cores;

  /// The ToR pair serving compute server `i`.
  std::pair<Switch*, Switch*> compute_tor_pair(int i) const {
    const int rack = i / config.servers_per_rack;
    return {compute_tors[static_cast<std::size_t>(2 * rack)],
            compute_tors[static_cast<std::size_t>(2 * rack + 1)]};
  }
  std::pair<Switch*, Switch*> storage_tor_pair(int i) const {
    const int rack = i / config.servers_per_rack;
    return {storage_tors[static_cast<std::size_t>(2 * rack)],
            storage_tors[static_cast<std::size_t>(2 * rack + 1)]};
  }

  /// Rack index of server `i` — the fault/placement domain (both pods use
  /// the same rack arithmetic; the shard partition and the ToR pairing
  /// derive from it too).
  int rack_of_server(int i) const { return i / config.servers_per_rack; }
};

/// Builds the fabric into `net` and computes routes.
Clos build_clos(Network& net, const ClosConfig& cfg);

struct TwoHosts {
  Nic* a = nullptr;
  Nic* b = nullptr;
  Switch* sw = nullptr;
};

/// a -- sw -- b with single uplinks. Computes routes.
TwoHosts build_two_hosts(Network& net, BitsPerSec rate, TimeNs prop,
                         std::uint64_t queue_capacity = 0);

}  // namespace repro::net
