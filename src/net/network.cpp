#include "net/network.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace repro::net {

std::uint64_t flow_hash(const FlowKey& flow, std::uint64_t salt) {
  std::uint64_t h = salt ^ 0x9E3779B97F4A7C15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
  };
  mix(flow.src_ip);
  mix(flow.dst_ip);
  mix(static_cast<std::uint64_t>(flow.src_port) << 16 | flow.dst_port);
  mix(static_cast<std::uint64_t>(flow.proto));
  return h;
}

Port::Port(Port&& o) noexcept
    : owner_(o.owner_),
      index_(o.index_),
      peer_(o.peer_),
      peer_port_(o.peer_port_),
      rate_(o.rate_),
      prop_delay_(o.prop_delay_),
      link_(std::move(o.link_)),
      detected_up_(o.detected_up_),
      cap_bytes_(o.cap_bytes_),
      transmitting_(o.transmitting_),
      stats_(o.stats_) {
  for (int c = 0; c < kNumQueues; ++c) {
    q_head_[c] = std::exchange(o.q_head_[c], nullptr);
    q_tail_[c] = std::exchange(o.q_tail_[c], nullptr);
    q_bytes_[c] = std::exchange(o.q_bytes_[c], 0);
  }
}

void Port::push(int cls, Packet* pkt) {
  pkt->next_ = nullptr;
  if (q_tail_[cls] != nullptr) {
    q_tail_[cls]->next_ = pkt;
  } else {
    q_head_[cls] = pkt;
  }
  q_tail_[cls] = pkt;
}

PacketPtr Port::pop(int cls) {
  Packet* pkt = q_head_[cls];
  q_head_[cls] = pkt->next_;
  if (q_head_[cls] == nullptr) q_tail_[cls] = nullptr;
  pkt->next_ = nullptr;
  return PacketPtr(pkt);
}

void Port::drain() {
  for (int c = 0; c < kNumQueues; ++c) {
    while (q_head_[c] != nullptr) pop(c);  // PacketPtr recycles on drop
    q_bytes_[c] = 0;
  }
}

Device::Device(Network& net, DeviceId id, std::string name, int num_ports,
               bool is_host)
    : net_(&net),
      id_(id),
      name_(std::move(name)),
      is_host_(is_host),
      shard_(sim::current_shard()) {
  ports_.resize(static_cast<std::size_t>(num_ports));
  for (int i = 0; i < num_ports; ++i) {
    ports_[static_cast<std::size_t>(i)].owner_ = this;
    ports_[static_cast<std::size_t>(i)].index_ = i;
  }
}

void Device::send(int port_idx, PacketPtr pkt) {
  Port& p = port(port_idx);
  if (!p.connected()) {
    ++net_->drops().no_route;
    return;
  }
  const int cls = pkt->priority == 0 ? 0 : 1;
  if (p.q_bytes_[cls] + pkt->size_bytes > p.cap_bytes_) {
    ++p.stats_.drops_queue_full;
    ++net_->drops().queue_full;
    return;
  }
  p.q_bytes_[cls] += pkt->size_bytes;
  ++p.stats_.enqueues;
  const std::uint64_t depth = p.q_bytes_[0] + p.q_bytes_[1];
  if (depth > p.stats_.queue_bytes_peak) p.stats_.queue_bytes_peak = depth;
  p.push(cls, pkt.release());
  start_tx(port_idx);
}

void Device::start_tx(int port_idx) {
  Port& p = port(port_idx);
  if (p.transmitting_) return;
  int cls = -1;
  for (int c = 0; c < Port::kNumQueues; ++c) {
    if (p.q_head_[c] != nullptr) {
      cls = c;
      break;
    }
  }
  if (cls < 0) return;
  PacketPtr pkt = p.pop(cls);
  p.q_bytes_[cls] -= pkt->size_bytes;
  p.transmitting_ = true;

  const TimeNs ser = serialization_delay(pkt->size_bytes, p.rate_);
  net_->engine().after(ser, [this, port_idx, pkt = std::move(pkt)]() mutable {
    Port& port_ref = port(port_idx);
    port_ref.transmitting_ = false;
    ++port_ref.stats_.pkts_tx;
    port_ref.stats_.bytes_tx += pkt->size_bytes;
    // Propagate; the link may die while the packet is in flight.
    auto* link = port_ref.link_.get();
    Device* peer = port_ref.peer_;
    const int peer_port = port_ref.peer_port_;
    if (peer->shard_ != shard_) {
      // Cross-shard hop. The pooled shell stays home (pools are strictly
      // shard-affine); the wire-visible contents — flow key, INT trail,
      // payload reference, span id — move through the epoch mailbox and
      // are re-shelled from the destination shard's pool on arrival. The
      // propagation delay is >= the lookahead by construction, which is
      // what makes the conservative epoch schedule correct.
      net_->sharded()->post(
          peer->shard_, net_->engine().now() + port_ref.prop_delay_,
          [this, link, peer, peer_port, val = std::move(*pkt)]() mutable {
            if (link == nullptr || !link->alive) {
              ++net_->drops().link_down;
              return;
            }
            PacketPtr p = net_->make_packet();
            *p = std::move(val);
            peer->handle_arrival(std::move(p), peer_port);
          });
      pkt.reset();
    } else {
      net_->engine().after(
          port_ref.prop_delay_,
          [this, link, peer, peer_port, pkt = std::move(pkt)]() mutable {
            if (link == nullptr || !link->alive) {
              ++net_->drops().link_down;
              return;
            }
            peer->handle_arrival(std::move(pkt), peer_port);
          });
    }
    start_tx(port_idx);
  });
}

void Device::handle_arrival(PacketPtr pkt, int in_port) {
  if (faults_.silent_dead) {
    ++net_->drops().device_dead;
    return;
  }
  if (faults_.loss_rate > 0.0 && net_->rng().bernoulli(faults_.loss_rate)) {
    ++net_->drops().random_loss;
    return;
  }
  if (faults_.blackhole_fraction > 0.0) {
    const std::uint64_t h = flow_hash(pkt->flow, faults_.blackhole_salt);
    if (static_cast<double>(h % 1024) <
        faults_.blackhole_fraction * 1024.0) {
      ++net_->drops().blackhole;
      return;
    }
  }
  if (faults_.corrupt_rate > 0.0 && !pkt->wire_corrupted &&
      net_->rng().bernoulli(faults_.corrupt_rate)) {
    pkt->wire_corrupted = true;  // dropped by the receiving NIC's FCS check
    ++net_->wire_faults().corrupted;
  }
  if (faults_.dup_rate > 0.0 && net_->rng().bernoulli(faults_.dup_rate)) {
    PacketPtr copy = net_->make_packet();
    copy->flow = pkt->flow;
    copy->size_bytes = pkt->size_bytes;
    copy->priority = pkt->priority;
    copy->request_int = pkt->request_int;
    copy->int_records = pkt->int_records;
    copy->id = pkt->id;
    copy->sent_at = pkt->sent_at;
    copy->span = pkt->span;
    copy->wire_corrupted = pkt->wire_corrupted;
    if (pkt->app != nullptr) {
      payload_ref(pkt->app);
      copy->app = pkt->app;
    }
    ++net_->wire_faults().duplicated;
    receive(std::move(copy), in_port);
  }
  if (faults_.reorder_rate > 0.0 && faults_.reorder_delay > 0 &&
      net_->rng().bernoulli(faults_.reorder_rate)) {
    ++net_->wire_faults().reordered;
    net_->engine().after(faults_.reorder_delay,
                         [this, in_port, pkt = std::move(pkt)]() mutable {
                           receive(std::move(pkt), in_port);
                         });
    return;
  }
  receive(std::move(pkt), in_port);
}

Network::Network(sim::Engine& engine, NetworkParams params,
                 std::uint64_t seed)
    : engine_(&engine), params_(params) {
  shards_.push_back(std::make_unique<ShardState>(Rng(seed), 0));
}

Network::Network(sim::ShardedEngine& se, NetworkParams params,
                 std::uint64_t seed)
    : engine_(&se.shard(0)), sharded_(&se), params_(params) {
  const int num_shards = se.shards();
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    // Shard 0 reproduces the legacy stream exactly; the rest are forked
    // with a distinctive stream id so no two shards share a sequence.
    const Rng r = s == 0 ? Rng(seed) : Rng(seed).fork(0xFAB5'0000ull + s);
    shards_.push_back(std::make_unique<ShardState>(r, s));
  }
}

Network::~Network() {
  // Devices (and their queued packets) go first; then each pool deletes
  // itself once any packets still captured in engine closures come home.
  devices_.clear();
  for (auto& st : shards_) st->pool->retire();
}

std::size_t Network::packets_outstanding() const {
  std::size_t total = 0;
  for (const auto& st : shards_) total += st->pool->outstanding();
  return total;
}

Network::DropStats Network::drops_total() const {
  DropStats total;
  for (const auto& st : shards_) {
    total.queue_full += st->drops.queue_full;
    total.link_down += st->drops.link_down;
    total.device_dead += st->drops.device_dead;
    total.blackhole += st->drops.blackhole;
    total.random_loss += st->drops.random_loss;
    total.no_route += st->drops.no_route;
    total.corrupt_fcs += st->drops.corrupt_fcs;
  }
  return total;
}

Network::WireFaultStats Network::wire_faults_total() const {
  WireFaultStats total;
  for (const auto& st : shards_) {
    total.corrupted += st->wire_faults.corrupted;
    total.duplicated += st->wire_faults.duplicated;
    total.reordered += st->wire_faults.reordered;
  }
  return total;
}

void Network::link(Device& a, int pa, Device& b, int pb, BitsPerSec rate,
                   TimeNs prop_delay, std::uint64_t queue_capacity) {
  if (queue_capacity == 0) queue_capacity = params_.default_queue_capacity;
  auto state = std::make_shared<LinkState>();
  Port& ap = a.port(pa);
  Port& bp = b.port(pb);
  ap.peer_ = &b;
  ap.peer_port_ = pb;
  ap.rate_ = rate;
  ap.prop_delay_ = prop_delay;
  ap.link_ = state;
  ap.detected_up_ = true;
  ap.cap_bytes_ = queue_capacity;
  bp.peer_ = &a;
  bp.peer_port_ = pa;
  bp.rate_ = rate;
  bp.prop_delay_ = prop_delay;
  bp.link_ = state;
  bp.detected_up_ = true;
  bp.cap_bytes_ = queue_capacity;
  if (a.shard_ != b.shard_ &&
      (min_cross_shard_prop_ < 0 || prop_delay < min_cross_shard_prop_)) {
    min_cross_shard_prop_ = prop_delay;
  }
}

void Network::set_link_alive(Device& dev, int port, bool alive) {
  if (sharded_ != nullptr && sharded_->shards() > 1) {
    // Link state is shared fabric state (both endpoints read `alive` on
    // their own shards); mutate it only with every shard quiescent. The
    // flip lands at the posting epoch's barrier — within one lookahead of
    // the legacy instant — and detection/reconvergence keep their exact
    // configured delays from there.
    sharded_->post_global(
        [this, d = &dev, port, alive] { set_link_alive_now(*d, port, alive); });
    return;
  }
  set_link_alive_now(dev, port, alive);
}

void Network::set_link_alive_now(Device& dev, int port, bool alive) {
  Port& p = dev.port(port);
  if (!p.connected() || p.link_->alive == alive) return;
  p.link_->alive = alive;
  Device* peer = p.peer_;
  const int peer_port = p.peer_port_;
  // Both ends detect the carrier change after the detection delay.
  auto detect = [this, d = &dev, port, peer, peer_port, alive] {
    d->port(port).detected_up_ = alive;
    peer->port(peer_port).detected_up_ = alive;
    // The carrier handlers run under their device's shard context so any
    // timers they arm (e.g. SOLAR path probing) land on the home engine.
    {
      const sim::ShardScope scope(d->shard_);
      if (alive) {
        d->on_link_up(port);
      } else {
        d->on_link_down(port);
      }
    }
    {
      const sim::ShardScope scope(peer->shard_);
      if (alive) {
        peer->on_link_up(peer_port);
      } else {
        peer->on_link_down(peer_port);
      }
    }
    schedule_reconvergence();
  };
  if (sharded_ != nullptr && sharded_->shards() > 1) {
    sharded_->post_global_at(sharded_->now() + params_.link_detect_delay,
                             std::move(detect));
  } else {
    engine_->after(params_.link_detect_delay, std::move(detect));
  }
}

void Network::schedule_reconvergence() {
  if (reconvergence_pending_) return;
  reconvergence_pending_ = true;
  auto reconverge = [this] {
    reconvergence_pending_ = false;
    compute_routes();
  };
  if (sharded_ != nullptr && sharded_->shards() > 1) {
    sharded_->post_global_at(sharded_->now() + params_.reconverge_delay,
                             std::move(reconverge));
  } else {
    engine_->after(params_.reconverge_delay, std::move(reconverge));
  }
}

void Network::fail_link(Device& dev, int port) {
  set_link_alive(dev, port, false);
}

void Network::repair_link(Device& dev, int port) {
  set_link_alive(dev, port, true);
}

void Network::fail_device_stop(Device& dev) {
  for (int i = 0; i < dev.num_ports(); ++i) {
    if (dev.port(i).connected()) set_link_alive(dev, i, false);
  }
}

void Network::fail_device_silent(Device& dev) {
  dev.faults_.silent_dead = true;
}

void Network::set_silent(Device& dev, bool dead) {
  dev.faults_.silent_dead = dead;
}

void Network::repair_device(Device& dev) {
  dev.faults_.silent_dead = false;
  dev.faults_.loss_rate = 0.0;
  dev.faults_.blackhole_fraction = 0.0;
  dev.faults_.corrupt_rate = 0.0;
  dev.faults_.dup_rate = 0.0;
  dev.faults_.reorder_rate = 0.0;
  for (int i = 0; i < dev.num_ports(); ++i) {
    if (dev.port(i).connected()) set_link_alive(dev, i, true);
  }
}

void Network::set_loss_rate(Device& dev, double p) {
  dev.faults_.loss_rate = p;
}

void Network::set_blackhole(Device& dev, double fraction) {
  dev.faults_.blackhole_fraction = fraction;
  // Salt from the *device's* home-shard stream: the injector applies this
  // on the target's shard, so the draw is deterministic under sharding and
  // identical to the legacy single-stream draw when shards == 1.
  dev.faults_.blackhole_salt = rng().next();
}

void Network::set_corrupt_rate(Device& dev, double p) {
  dev.faults_.corrupt_rate = p;
}

void Network::set_dup_rate(Device& dev, double p) {
  dev.faults_.dup_rate = p;
}

void Network::set_reorder(Device& dev, double p, TimeNs delay) {
  dev.faults_.reorder_rate = p;
  dev.faults_.reorder_delay = delay;
}

void Network::compute_routes() {
  routes_.clear();
  // BFS from every host over the control-plane-visible (detected-up) graph.
  for (const auto& host : devices_) {
    if (!host->is_host()) continue;
    std::unordered_map<DeviceId, int> dist;
    dist[host->id()] = 0;
    std::queue<Device*> frontier;
    frontier.push(host.get());
    while (!frontier.empty()) {
      Device* d = frontier.front();
      frontier.pop();
      const int dd = dist[d->id()];
      // Packets never transit through another host.
      if (d->is_host() && d != host.get()) continue;
      for (int i = 0; i < d->num_ports(); ++i) {
        const Port& p = d->port(i);
        if (!p.detected_up()) continue;
        Device* n = p.peer();
        if (dist.contains(n->id())) continue;
        dist[n->id()] = dd + 1;
        frontier.push(n);
      }
    }
    const IpAddr dst = host->id();
    for (const auto& dev : devices_) {
      if (dev.get() == host.get()) continue;
      auto it = dist.find(dev->id());
      if (it == dist.end()) continue;
      std::vector<int> next_hops;
      for (int i = 0; i < dev->num_ports(); ++i) {
        const Port& p = dev->port(i);
        if (!p.detected_up()) continue;
        auto pit = dist.find(p.peer()->id());
        if (pit == dist.end()) continue;
        if (pit->second == it->second - 1 &&
            (p.peer()->is_host() ? p.peer()->id() == dst : true)) {
          next_hops.push_back(i);
        }
      }
      if (!next_hops.empty()) routes_[dev->id()][dst] = std::move(next_hops);
    }
  }
}

const std::vector<int>* Network::routes(DeviceId dev, IpAddr dst) const {
  auto it = routes_.find(dev);
  if (it == routes_.end()) return nullptr;
  auto jt = it->second.find(dst);
  if (jt == it->second.end()) return nullptr;
  return &jt->second;
}

}  // namespace repro::net
