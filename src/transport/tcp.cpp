#include "transport/tcp.h"

#include <algorithm>

namespace repro::transport {
namespace {

constexpr std::uint32_t kHeaderBytes = 58;  // eth+ip+tcp on the wire
constexpr std::uint32_t kAckBytes = 64;

std::uint64_t client_key(net::IpAddr dst, int slot) {
  return (static_cast<std::uint64_t>(dst) << 5u) |
         (static_cast<std::uint64_t>(slot) << 1u) | 0u;
}
std::uint64_t server_key(net::IpAddr ip, std::uint16_t port) {
  return (static_cast<std::uint64_t>(ip) << 17u) |
         (static_cast<std::uint64_t>(port) << 1u) | 1u;
}

}  // namespace

TcpCostProfile kernel_tcp_profile() {
  TcpCostProfile p;
  p.name = "kernel-tcp";
  p.tx_per_packet = ns(800);
  p.rx_per_packet = ns(900);
  p.rx_per_ack = ns(400);
  p.per_message_tx = us(4);   // syscall + sk_buff setup + socket locking
  p.per_message_rx = us(4);   // wakeup + recv syscall + copies
  p.copy_per_kb = ns(60);     // user<->kernel copies
  p.tso_batch = 1;
  // Softirq + scheduler wakeup on a production host sharing cores with
  // guest work: tens of microseconds at the median with a heavy tail
  // (this, not protocol work, dominates the kernel-era FN latency).
  p.interrupt_delay = us(15);
  p.interrupt_sigma = 0.7;
  p.mss = 1448;
  p.min_rto = ms(200);
  return p;
}

TcpCostProfile luna_profile() {
  TcpCostProfile p;
  p.name = "luna";
  p.tx_per_packet = ns(400);  // run-to-complete, no syscalls
  p.rx_per_packet = ns(300);
  p.rx_per_ack = ns(100);
  p.per_message_tx = us(2);   // RPC framing, buffer mgmt (still no kernel)
  p.per_message_rx = us(2);
  p.copy_per_kb = 0;          // zero-copy across SA and RPC (§3.2)
  p.tso_batch = 2;            // TSO/GSO partial offload (§3.2)
  p.interrupt_delay = 0;      // polling mode
  p.mss = 1448;
  p.min_rto = ms(5);          // user-space stack with fine-grained timers
  p.max_rto = ms(100);        // storage-oriented cap: keep probing
  return p;
}

TcpStack::TcpStack(sim::Engine& engine, net::Nic& nic, sim::CpuPool& cpu,
                   TcpCostProfile profile, Rng rng)
    : engine_(engine),
      nic_(nic),
      cpu_(cpu),
      profile_(std::move(profile)),
      rng_(rng) {
  nic_.set_deliver([this](net::Packet& pkt) { on_packet(pkt); });
}

TcpStack::~TcpStack() = default;

std::uint64_t TcpStack::key_of(const net::FlowKey& local_flow) const {
  if (local_flow.dst_port == kServerPort) {
    // Recover the stripe slot from the allocated source port.
    const int slot = (local_flow.src_port - 20000) %
                     std::max(profile_.conns_per_peer, 1);
    return client_key(local_flow.dst_ip, slot);
  }
  return server_key(local_flow.dst_ip, local_flow.dst_port);
}

TcpStack::Connection& TcpStack::conn_to(net::IpAddr dst) {
  const int slot = static_cast<int>(next_rpc_id_ %
                                    std::max(profile_.conns_per_peer, 1));
  const std::uint64_t key = client_key(dst, slot);
  auto it = conns_.find(key);
  if (it == conns_.end()) {
    Connection c;
    // Port allocation encodes the slot so key_of can invert it.
    const std::uint16_t port = static_cast<std::uint16_t>(
        20000 + conn_count_ * std::max(profile_.conns_per_peer, 1) + slot);
    ++conn_count_;
    c.flow = net::FlowKey{nic_.ip(), dst, port, kServerPort,
                          net::Proto::kTcp};
    c.cwnd = profile_.initial_cwnd;
    c.rto = profile_.min_rto;
    it = conns_.emplace(key, std::move(c)).first;
  }
  return it->second;
}

TcpStack::Connection& TcpStack::conn_for_flow(
    const net::FlowKey& remote_to_local) {
  // Build the local->remote flow and find/create the connection.
  net::FlowKey local{remote_to_local.dst_ip, remote_to_local.src_ip,
                     remote_to_local.dst_port, remote_to_local.src_port,
                     net::Proto::kTcp};
  const std::uint64_t key = key_of(local);
  auto it = conns_.find(key);
  if (it == conns_.end()) {
    Connection c;
    c.flow = local;
    c.cwnd = profile_.initial_cwnd;
    c.rto = profile_.min_rto;
    it = conns_.emplace(key, std::move(c)).first;
  }
  return it->second;
}

void TcpStack::call(net::IpAddr dst, StorageRequest request,
                    ResponseFn on_response) {
  const std::uint64_t rpc_id = next_rpc_id_++;
  request.rpc_id = rpc_id;
  outstanding_[rpc_id] = std::move(on_response);
  Message m;
  m.bytes = request.wire_bytes();
  m.is_request = true;
  m.rpc_id = rpc_id;
  m.payload = std::move(request);
  send_message(conn_to(dst), std::move(m));
}

void TcpStack::send_message(Connection& c, Message msg) {
  const TimeNs cost =
      profile_.per_message_tx +
      profile_.copy_per_kb * static_cast<TimeNs>(msg.bytes / 1024);
  auto shared = net::make_payload<Message>(std::move(msg));
  cpu_.submit(key_of(c.flow), cost, [this, &c, shared] {
    // Segment the message; the last segment carries the payload handle.
    std::uint64_t remaining = shared->bytes;
    while (remaining > 0) {
      const std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(remaining, profile_.mss));
      remaining -= take;
      Segment seg;
      seg.flow = c.flow;
      seg.bytes = take;
      if (remaining == 0) {
        seg.msg = shared;
        seg.msg_last = true;
      }
      c.pending.push_back(std::move(seg));
    }
    pump(c);
  });
}

void TcpStack::pump(Connection& c) {
  while (!c.pending.empty() &&
         static_cast<double>(c.next_seq - c.send_base) < c.cwnd) {
    Segment seg = std::move(c.pending.front());
    c.pending.pop_front();
    seg.seq = c.next_seq++;
    SentSeg meta;
    meta.bytes = seg.bytes;
    meta.msg = seg.msg;
    meta.msg_last = seg.msg_last;
    meta.sent_at = engine_.now();
    c.unacked.emplace(seg.seq, std::move(meta));
    transmit(c, std::move(seg), /*retransmission=*/false);
  }
  arm_rto(c);
}

void TcpStack::transmit(Connection& c, Segment seg, bool retransmission) {
  if (retransmission) ++retransmits_;
  seg.ts = engine_.now();
  // TSO/GSO amortizes the per-packet CPU charge across a batch.
  const TimeNs cost =
      std::max<TimeNs>(profile_.tx_per_packet / profile_.tso_batch, 1);
  auto shared = net::make_payload<Segment>(std::move(seg));
  cpu_.submit(key_of(c.flow), cost, [this, shared] {
    net::PacketPtr pkt = nic_.make_packet();
    pkt->flow = shared->flow;
    pkt->size_bytes = shared->bytes + kHeaderBytes;
    net::set_app(*pkt, shared);
    nic_.send_packet(std::move(pkt));
  });
}

void TcpStack::on_packet(net::Packet& pkt) {
  auto seg = net::app_as<Segment>(pkt);
  if (!seg) return;  // not TCP traffic for this stack
  if (profile_.interrupt_delay > 0) {
    // Interrupt/softirq latency before the stack sees the packet. Kept
    // monotonic per stack so the model does not invent packet reordering.
    const TimeNs delay = static_cast<TimeNs>(rng_.lognormal_median(
        static_cast<double>(profile_.interrupt_delay),
        profile_.interrupt_sigma));
    // Monotonic per stack (no model-invented reordering), but packets that
    // arrive while the stack is already awake ride the same softirq batch
    // (NAPI): they are spaced by a small per-packet cost, not by fresh
    // wakeup latencies — otherwise the wakeup delay would act as a bogus
    // serial throughput bottleneck.
    const TimeNs deliver_at =
        std::max(engine_.now() + delay, last_rx_deliver_ + ns(250));
    last_rx_deliver_ = deliver_at;
    engine_.at(deliver_at, [this, seg] { on_segment(*seg); });
  } else {
    on_segment(*seg);
  }
}

void TcpStack::on_segment(const Segment& seg) {
  Connection& c = conn_for_flow(seg.flow);
  const std::uint64_t affinity = key_of(c.flow);
  if (seg.is_ack) {
    cpu_.submit(affinity, profile_.rx_per_ack,
                [this, &c, ack = seg.ack_seq, echo = seg.ts] {
                  if (echo > 0) {
                    const TimeNs sample = engine_.now() - echo;
                    if (c.srtt == 0) {
                      c.srtt = sample;
                      c.rttvar = sample / 2;
                    } else {
                      const TimeNs err = std::abs(sample - c.srtt);
                      c.rttvar = (3 * c.rttvar + err) / 4;
                      c.srtt = (7 * c.srtt + sample) / 8;
                    }
                    c.rto = std::clamp(c.srtt + 4 * c.rttvar,
                                       profile_.min_rto, profile_.max_rto);
                  }
                  on_ack(c, ack);
                });
    return;
  }
  cpu_.submit(affinity, profile_.rx_per_packet, [this, &c, seg] {
    if (seg.seq < c.rcv_next) {
      send_ack(c, seg.ts);  // stale duplicate
      return;
    }
    if (seg.seq > c.rcv_next) {
      c.reorder.emplace(seg.seq, seg);  // out of order: buffer + dup ACK
      send_ack(c, seg.ts);
      return;
    }
    // In-order: advance through the reorder buffer.
    if (seg.msg_last && seg.msg) deliver_message(c, seg.msg);
    ++c.rcv_next;
    auto it = c.reorder.begin();
    while (it != c.reorder.end() && it->first == c.rcv_next) {
      if (it->second.msg_last && it->second.msg) {
        deliver_message(c, it->second.msg);
      }
      ++c.rcv_next;
      it = c.reorder.erase(it);
    }
    send_ack(c, seg.ts);
  });
}

void TcpStack::send_ack(Connection& c, TimeNs echo_ts) {
  Segment ack;
  ack.flow = c.flow;
  ack.is_ack = true;
  ack.ack_seq = c.rcv_next;
  ack.ts = echo_ts;
  net::PacketPtr pkt = nic_.make_packet();
  pkt->flow = c.flow;
  pkt->size_bytes = kAckBytes;
  net::emplace_app<Segment>(*pkt, std::move(ack));
  nic_.send_packet(std::move(pkt));
}

void TcpStack::retransmit_first_unacked(Connection& c) {
  auto it = c.unacked.begin();
  if (it == c.unacked.end()) return;
  it->second.retransmitted = true;
  Segment seg;
  seg.flow = c.flow;
  seg.seq = it->first;
  seg.bytes = it->second.bytes;
  seg.msg = it->second.msg;
  seg.msg_last = it->second.msg_last;
  transmit(c, std::move(seg), /*retransmission=*/true);
}

void TcpStack::on_ack(Connection& c, std::uint64_t ack_seq) {
  if (ack_seq > c.send_base) {
    std::uint64_t newly_acked = 0;
    auto it = c.unacked.begin();
    while (it != c.unacked.end() && it->first < ack_seq) {
      ++newly_acked;
      it = c.unacked.erase(it);
    }
    c.send_base = ack_seq;
    c.dup_acks = 0;
    c.backoff = 0;
    if (c.in_recovery) {
      if (c.send_base >= c.recovery_until) {
        c.in_recovery = false;  // full recovery
      } else {
        // NewReno partial ACK: the next hole is the first unacked segment;
        // retransmit it immediately instead of waiting for another RTO.
        retransmit_first_unacked(c);
      }
    }
    // Slow start then AIMD.
    for (std::uint64_t i = 0; i < newly_acked; ++i) {
      if (c.cwnd < c.ssthresh) {
        c.cwnd += 1.0;
      } else {
        c.cwnd += 1.0 / c.cwnd;
      }
    }
    c.cwnd = std::min(c.cwnd, profile_.max_cwnd);
    arm_rto(c, /*restart=*/true);
    pump(c);
    return;
  }
  if (!c.unacked.empty() && ack_seq == c.send_base) {
    if (++c.dup_acks == 3 && !c.in_recovery) {
      // Fast retransmit; enter recovery until everything outstanding at
      // this point is acknowledged.
      c.in_recovery = true;
      c.recovery_until = c.next_seq;
      retransmit_first_unacked(c);
      c.ssthresh = std::max(c.cwnd / 2, 2.0);
      c.cwnd = c.ssthresh;
      c.dup_acks = 0;
    }
  }
}

void TcpStack::arm_rto(Connection& c, bool restart) {
  // The retransmission timer restarts on ACK progress or after an RTO —
  // never merely because new data was queued: with outstanding data and a
  // steady arrival stream, resetting here would starve the timer forever.
  if (c.unacked.empty()) {
    if (c.rto_timer != 0) {
      engine_.cancel(c.rto_timer);
      c.rto_timer = 0;
    }
    return;
  }
  if (c.rto_timer != 0) {
    if (!restart) return;
    engine_.cancel(c.rto_timer);
    c.rto_timer = 0;
  }
  TimeNs rto = c.rto;
  for (int i = 0; i < c.backoff && rto < profile_.max_rto; ++i) rto *= 2;
  rto = std::min(rto, profile_.max_rto);
  c.rto_timer = engine_.schedule_after(rto, [this, &c] {
    c.rto_timer = 0;
    if (c.unacked.empty()) return;
    ++timeouts_;
    c.ssthresh = std::max(c.cwnd / 2, 2.0);
    c.cwnd = 2.0;
    ++c.backoff;
    c.in_recovery = true;
    c.recovery_until = c.next_seq;
    retransmit_first_unacked(c);
    arm_rto(c);
  });
}

void TcpStack::deliver_message(Connection& c,
                               const net::PayloadHandle<Message>& m) {
  ++messages_delivered_;
  const TimeNs cost =
      profile_.per_message_rx +
      profile_.copy_per_kb * static_cast<TimeNs>(m->bytes / 1024);
  cpu_.submit(key_of(c.flow), cost, [this, &c, m] {
    if (m->is_request) {
      if (!handler_) return;
      auto req = std::any_cast<StorageRequest>(m->payload);
      const std::uint64_t rpc_id = m->rpc_id;
      handler_(std::move(req), [this, &c, rpc_id](StorageResponse resp) {
        resp.rpc_id = rpc_id;
        Message out;
        out.bytes = resp.wire_bytes();
        out.is_request = false;
        out.rpc_id = rpc_id;
        out.payload = std::move(resp);
        send_message(c, std::move(out));
      });
    } else {
      auto resp = std::any_cast<StorageResponse>(m->payload);
      auto it = outstanding_.find(m->rpc_id);
      if (it == outstanding_.end()) return;
      ResponseFn cb = std::move(it->second);
      outstanding_.erase(it);
      cb(std::move(resp));
    }
  });
}

}  // namespace repro::transport
