// Shared TCP engine for the two software stacks.
//
// Kernel TCP and LUNA (§3) are protocol-wise the same reliable ordered
// byte stream; what separates them in the paper's data (Table 1, Fig. 6)
// is *where the cycles go*: kernel TCP pays syscalls, interrupts, copies
// and cross-core locking, while LUNA's run-to-complete, zero-copy,
// share-nothing design pays a fraction of a microsecond per packet. Both
// are expressed here as one engine parameterized by a `TcpCostProfile`.
//
// Protocol realism (packet granularity): MSS segmentation, cumulative
// ACKs, out-of-order receive buffering (head-of-line blocking), fast
// retransmit on 3 dup-ACKs, RTO with exponential backoff, slow start +
// AIMD congestion avoidance. A connection's 5-tuple is fixed, so a
// connection is pinned to one ECMP path — the root of LUNA's failure-
// recovery story (§3.3, Table 2).
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "common/units.h"
#include "net/nic.h"
#include "sim/cpu.h"
#include "sim/engine.h"
#include "transport/rpc.h"

namespace repro::transport {

struct TcpCostProfile {
  std::string name = "tcp";
  // --- CPU service times (charged on the owning host's cores) ----------
  TimeNs tx_per_packet = us(1);    ///< per MSS segment sent
  TimeNs rx_per_packet = us(1);    ///< per data segment received
  TimeNs rx_per_ack = ns(300);     ///< per pure ACK processed
  TimeNs per_message_tx = us(2);   ///< per RPC message (syscall, doorbell)
  TimeNs per_message_rx = us(2);   ///< per delivered message (wakeup)
  TimeNs copy_per_kb = ns(100);    ///< data copies (0 for zero-copy LUNA)
  int tso_batch = 1;               ///< segments per tx CPU charge (TSO/GSO)
  // --- latency penalties not consuming a core --------------------------
  TimeNs interrupt_delay = 0;      ///< rx softirq/wakeup latency (kernel)
  double interrupt_sigma = 0.0;    ///< lognormal sigma on the above
  // --- protocol parameters ---------------------------------------------
  std::uint32_t mss = 1448;
  /// Connections striped per peer; RPCs round-robin over them. With the
  /// share-nothing core model this is what spreads load across cores.
  int conns_per_peer = 4;
  double initial_cwnd = 16.0;      ///< segments
  double max_cwnd = 1024.0;
  TimeNs min_rto = ms(200);
  TimeNs max_rto = seconds(60);
};

TcpCostProfile kernel_tcp_profile();
TcpCostProfile luna_profile();

/// A TCP endpoint bound to a NIC + CPU pool. Acts as both RPC client
/// (RpcTransport) and RPC server (RpcServer) — block servers use the
/// server half, SAs the client half.
class TcpStack : public RpcTransport, public RpcServer {
 public:
  static constexpr std::uint16_t kServerPort = 9000;

  TcpStack(sim::Engine& engine, net::Nic& nic, sim::CpuPool& cpu,
           TcpCostProfile profile, Rng rng);
  ~TcpStack() override;

  // RpcTransport:
  void call(net::IpAddr dst, StorageRequest request,
            ResponseFn on_response) override;
  std::string name() const override { return profile_.name; }

  // RpcServer:
  void set_handler(ServerHandlerFn handler) override {
    handler_ = std::move(handler);
  }

  /// Stats for calibration and tests.
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::size_t open_connections() const { return conns_.size(); }

  const TcpCostProfile& profile() const { return profile_; }

 private:
  struct Message {
    std::any payload;       // StorageRequest or StorageResponse
    std::uint64_t bytes = 0;
    bool is_request = false;
    std::uint64_t rpc_id = 0;
  };

  struct Segment {  // also used for pure ACKs
    net::FlowKey flow;      // as seen by the *receiver*
    std::uint64_t seq = 0;  // segment index in the sender's stream
    std::uint32_t bytes = 0;
    bool is_ack = false;
    std::uint64_t ack_seq = 0;  // next expected (cumulative)
    /// Data: transmit timestamp. ACK: echoed timestamp of the data packet
    /// that triggered this ACK (RFC 7323-style), the only unambiguous RTT
    /// sampling source under retransmission and HoL-delayed cumulative ACKs.
    TimeNs ts = 0;
    net::PayloadHandle<Message> msg;  // set on a message's last segment
    bool msg_last = false;
  };

  struct SentSeg {
    std::uint32_t bytes = 0;
    net::PayloadHandle<Message> msg;
    bool msg_last = false;
    bool retransmitted = false;
    TimeNs sent_at = 0;
  };

  struct Connection {
    net::FlowKey flow;  // local -> remote
    // sender state
    std::uint64_t next_seq = 0;
    std::uint64_t send_base = 0;
    std::map<std::uint64_t, SentSeg> unacked;
    std::deque<Segment> pending;  // segmented, waiting for cwnd
    double cwnd = 16.0;
    double ssthresh = 512.0;
    int dup_acks = 0;
    bool in_recovery = false;          // NewReno-style loss recovery
    std::uint64_t recovery_until = 0;  // leave recovery at this send_base
    sim::TimerId rto_timer = 0;
    TimeNs srtt = 0;
    TimeNs rttvar = 0;
    TimeNs rto = ms(200);
    int backoff = 0;
    int tso_credit = 0;  // segments still covered by the last tx charge
    // receiver state
    std::uint64_t rcv_next = 0;
    std::map<std::uint64_t, Segment> reorder;
  };

  Connection& conn_to(net::IpAddr dst);
  Connection& conn_for_flow(const net::FlowKey& remote_to_local);
  void send_message(Connection& c, Message msg);
  void pump(Connection& c);
  void transmit(Connection& c, Segment seg, bool retransmission);
  void on_packet(net::Packet& pkt);
  void on_segment(const Segment& seg);
  void on_ack(Connection& c, std::uint64_t ack_seq);
  void arm_rto(Connection& c, bool restart = false);
  void retransmit_first_unacked(Connection& c);
  void deliver_message(Connection& c, const net::PayloadHandle<Message>& m);
  void send_ack(Connection& c, TimeNs echo_ts);
  std::uint64_t key_of(const net::FlowKey& local_flow) const;

  sim::Engine& engine_;
  net::Nic& nic_;
  sim::CpuPool& cpu_;
  TcpCostProfile profile_;
  Rng rng_;
  ServerHandlerFn handler_;
  std::unordered_map<std::uint64_t, Connection> conns_;
  std::unordered_map<std::uint64_t, ResponseFn> outstanding_;
  int conn_count_ = 0;
  std::uint64_t next_rpc_id_ = 1;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t messages_delivered_ = 0;
  TimeNs last_rx_deliver_ = 0;
};

}  // namespace repro::transport
