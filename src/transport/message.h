// Storage-level messages exchanged between the compute side (SA) and the
// block servers, plus the distributed-trace record the paper's Fig. 6
// latency breakdown methodology relies on.
//
// Payload handling: a DataBlock may carry real bytes (integrity and
// correctness tests, Fig. 11 fault campaigns) or be a *sized placeholder*
// (data.empty() but len > 0) for high-rate throughput benches where
// carrying 4 KB of real bytes per simulated packet would only burn host
// memory without changing any measured quantity.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "net/packet.h"

namespace repro::transport {

enum class OpType : std::uint8_t { kWrite = 1, kRead = 2 };

struct DataBlock {
  std::uint64_t lba = 0;  ///< byte address within the VD
  std::uint32_t len = 0;  ///< block length in bytes (usually 4096)
  std::vector<std::uint8_t> data;  ///< empty => sized placeholder
  std::uint32_t crc = 0;           ///< crc32_raw of data (when real)

  bool has_payload() const { return !data.empty(); }
};

/// Per-I/O distributed trace: time spent in each component, mirroring the
/// paper's production monitoring (policy/QoS queueing is recorded apart and
/// excluded from the component spans, as in Fig. 6's caption).
struct IoTrace {
  TimeNs sa_ns = 0;   ///< storage-agent processing (compute side)
  TimeNs fn_ns = 0;   ///< frontend network incl. transport stack
  TimeNs bn_ns = 0;   ///< backend network (intra-storage-cluster)
  TimeNs ssd_ns = 0;  ///< chunk server processing + physical SSD
  TimeNs qos_wait_ns = 0;  ///< admission delay (excluded from e2e spans)

  TimeNs total_ns() const { return sa_ns + fn_ns + bn_ns + ssd_ns; }
  void accumulate(const IoTrace& o) {
    sa_ns += o.sa_ns;
    fn_ns += o.fn_ns;
    bn_ns += o.bn_ns;
    ssd_ns += o.ssd_ns;
    qos_wait_ns += o.qos_wait_ns;
  }
};

/// One RPC against a single block server (an I/O may split into several if
/// it crosses 2 MB segment boundaries — §4.5 "Block splits the I/O").
struct StorageRequest {
  std::uint64_t rpc_id = 0;
  OpType op = OpType::kWrite;
  std::uint64_t vd_id = 0;
  std::uint64_t segment_id = 0;
  std::uint64_t segment_offset = 0;  ///< byte offset within the segment
  std::uint32_t len = 0;             ///< total bytes
  std::vector<DataBlock> blocks;     ///< write payload; empty for reads
  bool encrypted = false;

  /// Wire size of the request message (headers + payload).
  std::uint64_t wire_bytes() const {
    std::uint64_t sz = 64;  // rpc + ebs headers, framing
    for (const auto& b : blocks) sz += b.len;
    return sz;
  }
};

enum class StorageStatus : std::uint8_t {
  kOk = 0,
  kCrcMismatch = 1,
  kOutOfRange = 2,
  kRejected = 3,
  kTimeout = 4,
};

struct StorageResponse {
  std::uint64_t rpc_id = 0;
  StorageStatus status = StorageStatus::kOk;
  std::vector<DataBlock> blocks;  ///< read payload; empty for writes
  TimeNs server_bn_ns = 0;        ///< backend-network span at the server
  TimeNs server_ssd_ns = 0;       ///< chunk/SSD span at the server

  std::uint64_t wire_bytes() const {
    std::uint64_t sz = 64;
    for (const auto& b : blocks) sz += b.len;
    return sz;
  }
};

/// Guest-visible I/O request against a virtual disk (what the NVMe command
/// carries into the data path).
struct IoRequest {
  std::uint64_t vd_id = 0;
  OpType op = OpType::kWrite;
  std::uint64_t offset = 0;  ///< bytes within the VD
  std::uint32_t len = 0;     ///< bytes
  std::vector<DataBlock> payload;  ///< for writes; block-granular
  TimeNs issued_at = 0;
  /// Background maintenance traffic (EC rebuild, scrub): scheduled
  /// best-effort by QoS regardless of the VD's tenant class, and never
  /// eligible for the guaranteed-floor admission bypass.
  bool background = false;
};

struct IoResult {
  StorageStatus status = StorageStatus::kOk;
  IoTrace trace;
  TimeNs completed_at = 0;
  std::vector<DataBlock> read_data;
};

using IoCompleteFn = std::function<void(IoResult)>;

/// Splits a byte range into kBlock-sized DataBlock placeholders.
std::vector<DataBlock> make_placeholder_blocks(std::uint64_t offset,
                                               std::uint32_t len,
                                               std::uint32_t block_size);

}  // namespace repro::transport
