// Transport-neutral RPC interface between the compute-side data path and
// the block servers. Kernel TCP, LUNA, RDMA and SOLAR all implement this,
// which is what lets every experiment harness swap stacks.
#pragma once

#include <functional>
#include <string>

#include "net/packet.h"
#include "transport/message.h"

namespace repro::transport {

using ResponseFn = std::function<void(StorageResponse)>;

/// Client half: issue an RPC to a block server.
class RpcTransport {
 public:
  virtual ~RpcTransport() = default;

  virtual void call(net::IpAddr dst, StorageRequest request,
                    ResponseFn on_response) = 0;
  virtual std::string name() const = 0;
};

/// Server half: the block server registers a handler; the transport feeds
/// it fully reassembled requests and sends the handler's reply back.
using ServerHandlerFn =
    std::function<void(StorageRequest, std::function<void(StorageResponse)>)>;

class RpcServer {
 public:
  virtual ~RpcServer() = default;
  virtual void set_handler(ServerHandlerFn handler) = 0;
};

}  // namespace repro::transport
