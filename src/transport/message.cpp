#include "transport/message.h"

namespace repro::transport {

std::vector<DataBlock> make_placeholder_blocks(std::uint64_t offset,
                                               std::uint32_t len,
                                               std::uint32_t block_size) {
  std::vector<DataBlock> blocks;
  if (block_size == 0 || len == 0) return blocks;
  std::uint64_t pos = offset;
  std::uint64_t remaining = len;
  while (remaining > 0) {
    // First block may be short if the offset is unaligned; all blocks stay
    // within one block_size-aligned cell so a block never straddles cells.
    const std::uint64_t cell_end = (pos / block_size + 1) * block_size;
    const std::uint32_t take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(remaining, cell_end - pos));
    DataBlock b;
    b.lba = pos;
    b.len = take;
    blocks.push_back(std::move(b));
    pos += take;
    remaining -= take;
  }
  return blocks;
}

}  // namespace repro::transport
