// Client-side erasure-coding layer: stripes guest I/O over k data + m
// parity fragment cells, keeps parity consistent with per-row
// read-modify-write, reconstructs degraded reads from any k surviving
// fragments, and exposes the reconstruct/repair primitives the
// MaintenanceAgent drives for background rebuild.
//
// Placement lives in sa::SegmentTable (`map_disk_ec`): the physical offset
// space is data segments followed by parity segments, so every sub-I/O the
// layer issues routes through the unmodified inner stack (LUNA, SOLAR, …)
// exactly like guest traffic — EC cost is real simulated traffic, not an
// analytic model. All state is per compute node (node-affine, so sharded
// runs stay bit-deterministic); each EC VD must be driven from a single
// compute node, which every harness in this repo already guarantees.
//
// Cell granularity is 4 KB — the block size the workloads, the block
// server and the chaos durability oracle all share. In real-payload runs
// the codec operates on actual bytes (requires store_payload so parity
// read-modify-write sees stored content); placeholder runs carry sized
// placeholders through the same traffic pattern and skip the byte math.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ec/codec.h"
#include "ec/params.h"
#include "sa/segment_table.h"
#include "sim/engine.h"
#include "transport/message.h"

namespace repro::ec {

class MaintenanceAgent;

class EcClient {
 public:
  /// Forwards a sub-I/O to the node's inner compute stack.
  using SubmitFn =
      std::function<void(transport::IoRequest, transport::IoCompleteFn)>;

  EcClient(sim::Engine& engine, sa::SegmentTable& segments,
           const EcParams& params, SubmitFn inner);

  /// Guest entry point (between admission and the stack).
  void submit_io(transport::IoRequest io, transport::IoCompleteFn done);

  // --- fragment-server health -----------------------------------------
  void mark_server(net::IpAddr ip, bool alive);
  bool server_alive(net::IpAddr ip) const {
    return dead_.find(ip) == dead_.end();
  }
  const std::set<net::IpAddr>& dead_servers() const { return dead_; }

  // --- maintenance hooks ----------------------------------------------
  void set_agent(MaintenanceAgent* agent) { agent_ = agent; }
  /// While set, reads of the segment are forced through degraded decode
  /// (the fragment's new location may not hold rebuilt data yet).
  void set_segment_rebuilding(std::uint64_t vd, std::uint64_t seg_index,
                              bool rebuilding);
  bool segment_rebuilding(std::uint64_t vd, std::uint64_t seg_index) const {
    return rebuilding_.find({vd, seg_index}) != rebuilding_.end();
  }
  /// Reconstructs fragment cell `c` of (vd, stripe, row) from any k healthy
  /// fragments and writes it to the fragment's current location (background
  /// traffic). `done(ok)` fires when the write lands or the attempt fails.
  void reconstruct_cell(std::uint64_t vd, std::uint32_t stripe,
                        std::uint32_t row, int c,
                        std::function<void(bool)> done);
  /// Recomputes all m parity cells of a row from its data cells (row
  /// repair after a torn parity update). Clears the dirty mark on success.
  void repair_row(std::uint64_t vd, std::uint32_t stripe, std::uint32_t row,
                  std::function<void(bool)> done);

  // --- directory (rebuild discovery, durability oracle) ----------------
  /// Written data cells per (stripe, row): rowid = stripe * rows_per_segment
  /// + row, value = bitmask of data fragment indices ever written.
  struct VdDirectory {
    std::map<std::uint64_t, std::uint32_t> rows;
  };
  const std::map<std::uint64_t, VdDirectory>& directory() const {
    return dir_;
  }
  /// True when the row covering data offset `offset` has a potentially
  /// stale parity (pending repair) — the durability oracle skips such rows
  /// the way a production audit skips cells under active repair.
  bool row_dirty(std::uint64_t vd, std::uint64_t offset) const;
  /// True while an operation holds the row's lock — an unacknowledged
  /// write/repair is mid-flight, so durability is not yet owed for the
  /// row and the oracle skips it (like cells under active I/O in a
  /// production audit).
  bool row_busy(std::uint64_t vd, std::uint32_t stripe,
                std::uint32_t row) const {
    return locks_.find(RowRef{vd, stripe, row}) != locks_.end();
  }
  std::size_t dirty_rows() const { return dirty_.size(); }
  std::size_t rebuilding_segments() const { return rebuilding_.size(); }

  struct Stats {
    std::uint64_t sub_ios = 0;
    std::uint64_t degraded_reads = 0;
    std::uint64_t parity_updates = 0;
    std::uint64_t reconstructs = 0;
    std::uint64_t row_repairs = 0;
  };
  const Stats& stats() const { return stats_; }

  static constexpr std::uint32_t kCell = EcParams::kCellBytes;
  static constexpr std::uint32_t kRowsPerSegment =
      static_cast<std::uint32_t>(sa::SegmentTable::kSegmentBytes / kCell);

 private:
  struct RowRef {
    std::uint64_t vd = 0;
    std::uint32_t stripe = 0;
    std::uint32_t row = 0;  ///< cell row within the segment
    bool operator<(const RowRef& o) const {
      if (vd != o.vd) return vd < o.vd;
      if (stripe != o.stripe) return stripe < o.stripe;
      return row < o.row;
    }
  };

  /// Physical VD offset of fragment `c`'s cell (c < k data, else parity).
  std::uint64_t frag_offset(const sa::EcInfo& info, const RowRef& r,
                            int c) const;
  /// Serializes row-granular operations: parity RMW, repair, reconstruct
  /// and degraded reads all run one-at-a-time per row. `op` receives a
  /// release callback it must invoke exactly once when finished.
  using RowOp = std::function<void(std::function<void()>)>;
  void run_locked(const RowRef& row, RowOp op);

  void submit_per_cell_read(transport::IoRequest io,
                            transport::IoCompleteFn done);

  void write_cell(const RowRef& row, int p, transport::DataBlock block,
                  bool background,
                  std::function<void(transport::IoResult)> done);
  void read_cell_direct(std::uint64_t vd, std::uint64_t offset,
                        bool background,
                        std::function<void(transport::IoResult)> done);
  void read_cell_degraded(const RowRef& row, int p,
                          std::function<void(transport::IoResult)> done);
  /// Shared tail of repair_row / parity reconstruct: read all k data cells,
  /// re-encode the requested parities, write them.
  void recompute_parity(const RowRef& row, std::vector<int> parities,
                        bool clear_dirty, std::function<void(bool)> done);

  void inner_submit(transport::IoRequest io, transport::IoCompleteFn done);
  transport::IoRequest cell_read(std::uint64_t vd, std::uint64_t offset,
                                 bool background) const;
  transport::IoRequest cell_write(std::uint64_t vd, std::uint64_t offset,
                                  std::vector<std::uint8_t> bytes,
                                  bool placeholder, bool background) const;
  void note_result(net::IpAddr server, const transport::IoResult& res);
  void mark_dirty(const RowRef& row);
  const Codec& codec() { return codec_; }

  sim::Engine& engine_;
  sa::SegmentTable& segments_;
  EcParams params_;
  SubmitFn inner_;
  Codec codec_;
  MaintenanceAgent* agent_ = nullptr;

  std::map<std::uint64_t, VdDirectory> dir_;
  std::set<net::IpAddr> dead_;
  std::set<RowRef> dirty_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> rebuilding_;
  std::map<RowRef, std::deque<RowOp>> locks_;
  Stats stats_;
};

}  // namespace repro::ec
