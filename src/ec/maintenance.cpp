#include "ec/maintenance.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "placement/cluster_view.h"

namespace repro::ec {

using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

namespace {

double rebuild_cell_cost(const EcParams& p) {
  // One reconstructed cell moves k source reads plus one write.
  return static_cast<double>(p.k + 1) * EcParams::kCellBytes;
}

double rebuild_burst(const EcParams& p) {
  const double cost = rebuild_cell_cost(p);
  if (p.rebuild_bandwidth_cap <= 0) return cost;
  return std::max(cost * std::max(p.rebuild_concurrency, 1),
                  p.rebuild_bandwidth_cap * 0.01);
}

}  // namespace

MaintenanceAgent::MaintenanceAgent(sim::Engine& engine, EcClient& ec,
                                   sa::SegmentTable& segments,
                                   const EcParams& params,
                                   EcClient::SubmitFn probe_submit,
                                   RemapFn remap)
    : engine_(engine),
      ec_(ec),
      segments_(segments),
      params_(params),
      probe_submit_(std::move(probe_submit)),
      remap_(std::move(remap)),
      bucket_(params.rebuild_bandwidth_cap, rebuild_burst(params)) {
  ec_.set_agent(this);
}

void MaintenanceAgent::on_activity(std::uint64_t vd) {
  vds_.insert(vd);
  activity_ = true;
  ensure_timer();
}

void MaintenanceAgent::on_fragment_failure(net::IpAddr server) {
  note_failure(server);
}

void MaintenanceAgent::on_row_damage(std::uint64_t vd, std::uint32_t stripe,
                                     std::uint32_t row) {
  RowKey r{vd, stripe, row};
  stalled_rows_.erase(r);
  if (damage_queued_.insert(r).second) damage_q_.push_back(r);
  ensure_timer();
  pump_repairs();
}

void MaintenanceAgent::force_server_down(net::IpAddr server) {
  declare_dead(server);
}

void MaintenanceAgent::force_server_up(net::IpAddr server) {
  auto& h = health_[server];
  if (h.dead) declare_alive(server);
}

void MaintenanceAgent::ensure_timer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  engine_.schedule_after(params_.probe_interval, [this] { tick(); });
}

void MaintenanceAgent::tick() {
  timer_armed_ = false;
  // Rearm only while something can still make progress: guest traffic in
  // the last interval, or queued rebuild/repair work. A drained cluster
  // stops ticking so the engine quiesces.
  const bool keep = activity_ || !rebuild_q_.empty() || rebuild_active_ ||
                    !damage_q_.empty() || repair_active_;
  activity_ = false;
  probe_all();
  pump_rebuild();
  pump_repairs();
  if (keep) ensure_timer();
}

std::vector<net::IpAddr> MaintenanceAgent::tracked_servers() const {
  std::set<net::IpAddr> set;
  for (const std::uint64_t vd : vds_) {
    for (const net::IpAddr s : segments_.stripe_server_span(vd)) set.insert(s);
  }
  return {set.begin(), set.end()};
}

void MaintenanceAgent::probe_all() {
  for (const net::IpAddr s : tracked_servers()) probe(s);
}

std::optional<std::pair<std::uint64_t, std::uint64_t>>
MaintenanceAgent::probe_target(net::IpAddr server) {
  const auto cached = probe_cache_.find(server);
  if (cached != probe_cache_.end()) {
    const auto loc =
        segments_.lookup(cached->second.first, cached->second.second);
    if (loc && loc->block_server == server) return cached->second;
    probe_cache_.erase(cached);
  }
  for (const std::uint64_t vd : vds_) {
    const auto info = segments_.ec_info(vd);
    if (!info) continue;
    const std::uint64_t total =
        info->num_data_segments +
        static_cast<std::uint64_t>(info->num_stripes) * info->m;
    for (std::uint64_t seg = 0; seg < total; ++seg) {
      const std::uint64_t off = seg * sa::SegmentTable::kSegmentBytes;
      const auto loc = segments_.lookup(vd, off);
      if (loc && loc->block_server == server) {
        probe_cache_[server] = {vd, off};
        return std::make_pair(vd, off);
      }
    }
  }
  return std::nullopt;
}

void MaintenanceAgent::probe(net::IpAddr server) {
  auto& h = health_[server];
  if (h.outstanding) return;
  const auto target = probe_target(server);
  if (!target) return;  // server no longer holds any fragment
  ++stats_.probes;
  h.outstanding = true;
  const std::uint64_t gen = ++h.probe_gen;
  h.timeout_timer = engine_.schedule_after(
      params_.probe_timeout,
      [this, server, gen] { probe_done(server, gen, false); });
  IoRequest io;
  io.vd_id = target->first;
  io.op = OpType::kRead;
  io.offset = target->second;
  io.len = EcParams::kCellBytes;
  io.background = true;
  probe_submit_(std::move(io), [this, server, gen](IoResult res) {
    probe_done(server, gen, res.status == StorageStatus::kOk);
  });
}

void MaintenanceAgent::probe_done(net::IpAddr server, std::uint64_t gen,
                                  bool ok) {
  auto& h = health_[server];
  if (gen != h.probe_gen || !h.outstanding) return;  // superseded / late
  h.outstanding = false;
  engine_.cancel(h.timeout_timer);
  if (ok) {
    note_ok(server);
  } else {
    ++stats_.probe_failures;
    note_failure(server);
  }
}

void MaintenanceAgent::note_ok(net::IpAddr server) {
  auto& h = health_[server];
  h.fails = 0;
  if (h.dead) declare_alive(server);
}

void MaintenanceAgent::note_failure(net::IpAddr server) {
  auto& h = health_[server];
  if (h.dead) return;
  if (++h.fails >= params_.probe_failures_to_dead) declare_dead(server);
}

void MaintenanceAgent::declare_dead(net::IpAddr server) {
  auto& h = health_[server];
  if (h.dead) return;
  h.dead = true;
  h.fails = 0;
  ++stats_.servers_died;
  ec_.mark_server(server, false);
  if (health_fn_) health_fn_(server, false);
  // Queue every fragment currently placed on the dead server.
  for (const std::uint64_t vd : vds_) {
    const auto info = segments_.ec_info(vd);
    if (!info) continue;
    const std::uint64_t total =
        info->num_data_segments +
        static_cast<std::uint64_t>(info->num_stripes) * info->m;
    for (std::uint64_t seg = 0; seg < total; ++seg) {
      const auto loc =
          segments_.lookup(vd, seg * sa::SegmentTable::kSegmentBytes);
      if (!loc || loc->block_server != server) continue;
      if (queued_.insert({vd, seg}).second) rebuild_q_.push_back({vd, seg});
    }
  }
  requeue_stalled();
  ensure_timer();
  pump_rebuild();
}

void MaintenanceAgent::declare_alive(net::IpAddr server) {
  auto& h = health_[server];
  if (!h.dead) return;
  h.dead = false;
  h.fails = 0;
  ++stats_.servers_revived;
  ec_.mark_server(server, true);
  if (health_fn_) health_fn_(server, true);
  requeue_stalled();
  ensure_timer();
  pump_rebuild();
  pump_repairs();
}

void MaintenanceAgent::requeue_stalled() {
  for (const FragKey& f : stalled_) {
    if (queued_.insert(f).second) rebuild_q_.push_back(f);
  }
  stalled_.clear();
  for (const RowKey& r : stalled_rows_) {
    if (damage_queued_.insert(r).second) damage_q_.push_back(r);
  }
  stalled_rows_.clear();
}

int MaintenanceAgent::exposure_of(std::uint64_t vd, std::uint64_t seg) {
  if (view_ == nullptr) return 0;
  const auto info = segments_.ec_info(vd);
  if (!info) return 0;
  const std::uint64_t nd = info->num_data_segments;
  const std::uint32_t stripe =
      seg < nd ? static_cast<std::uint32_t>(seg / info->k)
               : static_cast<std::uint32_t>((seg - nd) / info->m);
  segments_.ec_fragments(vd, stripe, &frag_scratch_);
  return view_->exposure(frag_scratch_);
}

void MaintenanceAgent::pump_rebuild() {
  if (rebuild_active_ || rebuild_q_.empty()) return;
  rebuild_active_ = true;
  std::size_t pick = 0;
  active_exposure_ = view_ == nullptr
                         ? 0
                         : exposure_of(rebuild_q_[0].first,
                                       rebuild_q_[0].second);
  if (exposure_order_ && view_ != nullptr) {
    // Most-exposed segment first; strict `>` keeps FIFO order among ties,
    // so the legacy drain order is preserved whenever exposure is uniform.
    for (std::size_t i = 1; i < rebuild_q_.size(); ++i) {
      const int e = exposure_of(rebuild_q_[i].first, rebuild_q_[i].second);
      if (e > active_exposure_) {
        active_exposure_ = e;
        pick = i;
      }
    }
  }
  const FragKey f = rebuild_q_[pick];
  rebuild_q_.erase(rebuild_q_.begin() + static_cast<std::ptrdiff_t>(pick));
  start_segment_rebuild(f.first, f.second);
}

void MaintenanceAgent::start_segment_rebuild(std::uint64_t vd,
                                             std::uint64_t seg) {
  const auto info = segments_.ec_info(vd);
  const auto cur =
      segments_.lookup(vd, seg * sa::SegmentTable::kSegmentBytes);
  if (!info || !cur) {
    finish_segment(vd, seg, true);  // nothing to do
    return;
  }
  // A previous attempt may have remapped the fragment to a spare and then
  // stalled before any data landed; the rebuilding flag is still set and
  // the (healthy) holder does not yet hold the fragment. Dropping because
  // "the holder is alive" would leave the fragment silently absent.
  const bool resuming = ec_.segment_rebuilding(vd, seg);
  if (ec_.server_alive(cur->block_server) && !resuming) {
    // The holder revived (or was never truly down): drop the rebuild.
    finish_segment(vd, seg, true);
    return;
  }
  const std::uint64_t nd = info->num_data_segments;
  const std::uint32_t stripe =
      seg < nd ? static_cast<std::uint32_t>(seg / info->k)
               : static_cast<std::uint32_t>((seg - nd) / info->m);
  const int frag = seg < nd
                       ? static_cast<int>(seg % info->k)
                       : info->k + static_cast<int>((seg - nd) % info->m);
  // Rows holding data for this fragment (from the write directory).
  std::vector<std::uint32_t> rows;
  const auto& dirs = ec_.directory();
  const auto dit = dirs.find(vd);
  if (dit != dirs.end()) {
    const std::uint64_t first_row =
        static_cast<std::uint64_t>(stripe) * EcClient::kRowsPerSegment;
    for (auto it = dit->second.rows.lower_bound(first_row);
         it != dit->second.rows.end() &&
         it->first < first_row + EcClient::kRowsPerSegment;
         ++it) {
      const bool need =
          frag < info->k ? (it->second >> frag & 1u) != 0 : it->second != 0;
      if (need) {
        rows.push_back(static_cast<std::uint32_t>(it->first - first_row));
      }
    }
  }
  if (resuming && ec_.server_alive(cur->block_server)) {
    // Resume into the spare the stalled attempt already remapped to.
    rebuild_rows(vd, seg, stripe, frag, std::move(rows), 0);
    return;
  }
  // Replacement: the first healthy pool server not already holding a
  // fragment of this stripe (rotation guarantees one exists when the pool
  // is at least k+m+1 wide and at most m servers are down).
  std::set<net::IpAddr> used;
  segments_.ec_fragments(vd, stripe, &frag_scratch_);
  for (const auto& loc : frag_scratch_) {
    if (loc.block_server != 0) used.insert(loc.block_server);
  }
  net::IpAddr target = 0;
  for (const net::IpAddr s : segments_.stripe_server_span(vd)) {
    if (ec_.server_alive(s) && used.find(s) == used.end()) {
      target = s;
      break;
    }
  }
  if (target == 0) {
    stall_segment(vd, seg);
    return;
  }
  ec_.set_segment_rebuilding(vd, seg, true);
  sa::SegmentLocation loc;
  loc.segment_id = cur->segment_id;
  loc.block_server = target;
  remap_(vd, seg, loc, [this, vd, seg, stripe, frag, rows] {
    rebuild_rows(vd, seg, stripe, frag, rows, 0);
  });
}

void MaintenanceAgent::rebuild_rows(std::uint64_t vd, std::uint64_t seg,
                                    std::uint32_t stripe, int frag,
                                    std::vector<std::uint32_t> rows,
                                    int attempt) {
  struct St {
    std::vector<std::uint32_t> rows;
    std::size_t next = 0;
    int inflight = 0;
    bool waiting = false;  ///< a token-bucket wakeup is scheduled
    std::vector<std::uint32_t> failed;
  };
  auto st = std::make_shared<St>();
  st->rows = std::move(rows);
  // Weak self-capture: every invocation of the pump comes from a caller
  // holding a strong ref (the initial call below, the token-bucket wakeup,
  // or a reconstruct completion) — a strong self-capture would be a
  // shared_ptr cycle that leaks the closure and its St.
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, vd, seg, stripe, frag, attempt, st,
           weak = std::weak_ptr<std::function<void()>>(pump)] {
    auto pump = weak.lock();
    while (st->inflight < std::max(params_.rebuild_concurrency, 1) &&
           st->next < st->rows.size()) {
      if (params_.rebuild_bandwidth_cap > 0) {
        const double cost = rebuild_cell_cost(params_);
        const TimeNs now = engine_.now();
        if (!bucket_.try_consume(now, cost)) {
          if (!st->waiting) {
            st->waiting = true;
            engine_.schedule_at(bucket_.next_available(now, cost),
                                [st, pump] {
                                  st->waiting = false;
                                  (*pump)();
                                });
          }
          break;
        }
      }
      const std::uint32_t row = st->rows[st->next++];
      ++st->inflight;
      ec_.reconstruct_cell(
          vd, stripe, row, frag, [this, st, pump, row](bool ok) {
            engine_.after(0, [this, st, pump, row, ok] {
              --st->inflight;
              if (ok) {
                ++stats_.cells_rebuilt;
              } else {
                st->failed.push_back(row);
              }
              (*pump)();
            });
          });
    }
    if (st->inflight == 0 && !st->waiting && st->next >= st->rows.size()) {
      st->next = st->rows.size() + 1;  // guard: finish exactly once
      if (st->failed.empty()) {
        finish_segment(vd, seg, true);
      } else if (attempt + 1 < 3) {
        engine_.schedule_after(
            params_.repair_retry,
            [this, vd, seg, stripe, frag, failed = st->failed, attempt] {
              rebuild_rows(vd, seg, stripe, frag, failed, attempt + 1);
            });
      } else {
        finish_segment(vd, seg, false);
      }
    }
  };
  (*pump)();
}

void MaintenanceAgent::finish_segment(std::uint64_t vd, std::uint64_t seg,
                                      bool ok) {
  if (!ok) {
    stall_segment(vd, seg);
    return;
  }
  if (view_ != nullptr && ec_.segment_rebuilding(vd, seg)) {
    // Genuine rebuild (not a dropped/no-op pop): log the at-pop exposure
    // for the drain-order invariant the placement tests assert.
    rebuild_log_.push_back({vd, seg, active_exposure_});
  }
  ec_.set_segment_rebuilding(vd, seg, false);
  queued_.erase({vd, seg});
  ++stats_.segments_rebuilt;
  rebuild_active_ = false;
  engine_.after(0, [this] { pump_rebuild(); });
}

void MaintenanceAgent::stall_segment(std::uint64_t vd, std::uint64_t seg) {
  // Keep the rebuilding flag (if set): the fragment's new location does not
  // hold complete data, so reads must keep decoding around it.
  queued_.erase({vd, seg});
  stalled_.insert({vd, seg});
  ++stats_.segments_stalled;
  rebuild_active_ = false;
  engine_.after(0, [this] { pump_rebuild(); });
}

void MaintenanceAgent::pump_repairs() {
  if (repair_active_ || damage_q_.empty()) return;
  repair_active_ = true;
  const RowKey r = damage_q_.front();
  damage_q_.pop_front();
  damage_queued_.erase(r);
  ec_.repair_row(r.vd, r.stripe, r.row, [this, r](bool ok) {
    engine_.after(0, [this, r, ok] {
      repair_active_ = false;
      if (ok) {
        ++stats_.rows_repaired;
        repair_attempts_.erase(r);
      } else {
        ++stats_.repair_failures;
        const int attempts = ++repair_attempts_[r];
        if (attempts < 3) {
          engine_.schedule_after(params_.repair_retry, [this, r] {
            if (damage_queued_.insert(r).second) damage_q_.push_back(r);
            pump_repairs();
          });
        } else {
          repair_attempts_.erase(r);
          stalled_rows_.insert(r);
        }
      }
      pump_repairs();
    });
  });
}

}  // namespace repro::ec
