#include "ec/client.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/crc32.h"
#include "ec/maintenance.h"

namespace repro::ec {

using transport::DataBlock;
using transport::IoCompleteFn;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

EcClient::EcClient(sim::Engine& engine, sa::SegmentTable& segments,
                   const EcParams& params, SubmitFn inner)
    : engine_(engine),
      segments_(segments),
      params_(params),
      inner_(std::move(inner)),
      codec_(params.k, params.m) {}

std::uint64_t EcClient::frag_offset(const sa::EcInfo& info, const RowRef& r,
                                    int c) const {
  const auto k = static_cast<std::uint64_t>(info.k);
  const auto m = static_cast<std::uint64_t>(info.m);
  const std::uint64_t seg =
      c < info.k
          ? static_cast<std::uint64_t>(r.stripe) * k +
                static_cast<std::uint64_t>(c)
          : info.num_data_segments +
                static_cast<std::uint64_t>(r.stripe) * m +
                static_cast<std::uint64_t>(c - info.k);
  return seg * sa::SegmentTable::kSegmentBytes +
         static_cast<std::uint64_t>(r.row) * kCell;
}

void EcClient::run_locked(const RowRef& row,
                          RowOp op) {
  auto& q = locks_[row];
  q.push_back(std::move(op));
  if (q.size() > 1) return;  // an op holds the row; we run at its release
  // The closure only holds a weak ref to itself (every invocation comes
  // from a caller holding a strong one) — a strong self-capture would be a
  // shared_ptr cycle that leaks once the queue drains.
  auto run_front = std::make_shared<std::function<void()>>();
  *run_front = [this, row,
                weak = std::weak_ptr<std::function<void()>>(run_front)] {
    auto run_front = weak.lock();
    auto it = locks_.find(row);
    auto op = std::move(it->second.front());
    op([this, row, run_front] {
      auto lit = locks_.find(row);
      lit->second.pop_front();
      if (lit->second.empty()) {
        locks_.erase(lit);
        return;
      }
      // Next holder runs from a fresh event: completions that release a
      // row never re-enter another operation's call chain.
      engine_.after(0, [run_front] { (*run_front)(); });
    });
  };
  (*run_front)();
}

void EcClient::inner_submit(IoRequest io, IoCompleteFn done) {
  ++stats_.sub_ios;
  inner_(std::move(io), std::move(done));
}

IoRequest EcClient::cell_read(std::uint64_t vd, std::uint64_t offset,
                              bool background) const {
  IoRequest io;
  io.vd_id = vd;
  io.op = OpType::kRead;
  io.offset = offset;
  io.len = kCell;
  io.background = background;
  return io;
}

IoRequest EcClient::cell_write(std::uint64_t vd, std::uint64_t offset,
                               std::vector<std::uint8_t> bytes,
                               bool placeholder, bool background) const {
  IoRequest io;
  io.vd_id = vd;
  io.op = OpType::kWrite;
  io.offset = offset;
  io.len = kCell;
  io.background = background;
  DataBlock blk;
  blk.lba = offset;
  blk.len = kCell;
  if (!placeholder) {
    blk.data = std::move(bytes);
    blk.crc = crc32_raw(blk.data);
  }
  io.payload.push_back(std::move(blk));
  return io;
}

void EcClient::note_result(net::IpAddr server, const IoResult& res) {
  if (agent_ == nullptr) return;
  if (res.status == StorageStatus::kTimeout ||
      res.status == StorageStatus::kCrcMismatch) {
    agent_->on_fragment_failure(server);
  }
}

void EcClient::mark_dirty(const RowRef& row) {
  if (dirty_.insert(row).second && agent_ != nullptr) {
    agent_->on_row_damage(row.vd, row.stripe, row.row);
  }
}

void EcClient::mark_server(net::IpAddr ip, bool alive) {
  if (alive) {
    dead_.erase(ip);
  } else {
    dead_.insert(ip);
  }
}

void EcClient::set_segment_rebuilding(std::uint64_t vd,
                                      std::uint64_t seg_index,
                                      bool rebuilding) {
  if (rebuilding) {
    rebuilding_.insert({vd, seg_index});
  } else {
    rebuilding_.erase({vd, seg_index});
  }
}

bool EcClient::row_dirty(std::uint64_t vd, std::uint64_t offset) const {
  if (dirty_.empty()) return false;
  const auto info = segments_.ec_info(vd);
  if (!info) return false;
  const std::uint64_t seg = offset / sa::SegmentTable::kSegmentBytes;
  if (seg >= info->num_data_segments) return false;
  RowRef r;
  r.vd = vd;
  r.stripe = static_cast<std::uint32_t>(seg / info->k);
  r.row = static_cast<std::uint32_t>(
      (offset % sa::SegmentTable::kSegmentBytes) / kCell);
  return dirty_.find(r) != dirty_.end();
}

void EcClient::submit_io(IoRequest io, IoCompleteFn done) {
  const auto info = segments_.ec_info(io.vd_id);
  if (!info) {
    inner_(std::move(io), std::move(done));  // replication VD: pass through
    return;
  }
  if (io.len == 0 || io.offset % kCell != 0 || io.len % kCell != 0) {
    // The layer only stripes cell-aligned traffic (every workload in the
    // repo is). Passing sub-cell I/O through would mutate data fragments
    // behind the parity's back, so reject it rather than silently let
    // stripe consistency rot.
    IoResult res;
    res.status = StorageStatus::kRejected;
    res.completed_at = engine_.now();
    done(std::move(res));
    return;
  }
  if (agent_ != nullptr) agent_->on_activity(io.vd_id);

  const int cells = static_cast<int>(io.len / kCell);
  const sa::EcInfo geo = *info;

  if (io.op == OpType::kRead) {
    if (dead_.empty() && rebuilding_.empty()) {
      // Healthy fast path: one pass-through read (a single inner RPC per
      // segment extent, exactly like a replication VD). Failures fall back
      // to the per-cell degraded path below.
      const IoRequest retry = io;
      inner_(std::move(io),
             [this, retry, done](IoResult res) mutable {
               if (res.status == StorageStatus::kOk ||
                   res.status == StorageStatus::kOutOfRange ||
                   res.status == StorageStatus::kRejected) {
                 done(std::move(res));
                 return;
               }
               if (const auto loc = segments_.lookup(retry.vd_id,
                                                     retry.offset)) {
                 note_result(loc->block_server, res);
               }
               submit_per_cell_read(std::move(retry), std::move(done));
             });
      return;
    }
    submit_per_cell_read(std::move(io), std::move(done));
    return;
  }

  // Write: one row-locked read-modify-write chain per cell.
  struct Agg {
    IoResult result;
    int remaining = 0;
    IoCompleteFn done;
  };
  auto agg = std::make_shared<Agg>();
  // One sentinel on top of the per-cell counts, released after the issue
  // loop: completion can never fire (or double-fire) while cells are still
  // being issued, even if a write chain ever completed synchronously.
  agg->remaining = cells + 1;
  agg->done = std::move(done);
  for (int i = 0; i < cells; ++i) {
    const std::uint64_t off = io.offset + static_cast<std::uint64_t>(i) * kCell;
    const std::uint64_t seg = off / sa::SegmentTable::kSegmentBytes;
    if (seg >= geo.num_data_segments) {
      // Write beyond the data region (into parity space): reject like any
      // out-of-range guest I/O.
      --agg->remaining;
      agg->result.status = StorageStatus::kOutOfRange;
      continue;
    }
    RowRef row;
    row.vd = io.vd_id;
    row.stripe = static_cast<std::uint32_t>(seg / geo.k);
    const int p = static_cast<int>(seg % geo.k);
    row.row = static_cast<std::uint32_t>(
        (off % sa::SegmentTable::kSegmentBytes) / kCell);
    dir_[io.vd_id].rows[static_cast<std::uint64_t>(row.stripe) *
                            kRowsPerSegment +
                        row.row] |= 1u << p;

    DataBlock blk;
    if (i < static_cast<int>(io.payload.size())) {
      blk = io.payload[static_cast<std::size_t>(i)];
    }
    blk.lba = off;
    blk.len = kCell;

    write_cell(row, p, std::move(blk), io.background,
               [this, agg](IoResult res) {
                 if (res.status != StorageStatus::kOk &&
                     agg->result.status == StorageStatus::kOk) {
                   agg->result.status = res.status;
                 }
                 agg->result.trace.accumulate(res.trace);
                 if (--agg->remaining == 0) {
                   agg->result.completed_at = engine_.now();
                   agg->done(std::move(agg->result));
                 }
               });
  }
  if (--agg->remaining == 0) {  // release the sentinel
    agg->result.completed_at = engine_.now();
    agg->done(std::move(agg->result));
  }
}

void EcClient::submit_per_cell_read(IoRequest io, IoCompleteFn done) {
  const sa::EcInfo geo = *segments_.ec_info(io.vd_id);
  const int cells = static_cast<int>(io.len / kCell);
  struct Agg {
    IoResult result;
    std::vector<DataBlock> blocks;
    int remaining = 0;
    IoCompleteFn done;
  };
  auto agg = std::make_shared<Agg>();
  agg->remaining = cells;
  agg->blocks.resize(static_cast<std::size_t>(cells));
  agg->done = std::move(done);
  auto finish_cell = [this, agg](int idx, IoResult res) {
    if (res.status != StorageStatus::kOk &&
        agg->result.status == StorageStatus::kOk) {
      agg->result.status = res.status;
    }
    agg->result.trace.accumulate(res.trace);
    if (!res.read_data.empty()) {
      agg->blocks[static_cast<std::size_t>(idx)] =
          std::move(res.read_data.front());
    }
    if (--agg->remaining == 0) {
      agg->result.read_data = std::move(agg->blocks);
      agg->result.completed_at = engine_.now();
      agg->done(std::move(agg->result));
    }
  };
  for (int i = 0; i < cells; ++i) {
    const std::uint64_t off = io.offset + static_cast<std::uint64_t>(i) * kCell;
    const std::uint64_t seg = off / sa::SegmentTable::kSegmentBytes;
    if (seg >= geo.num_data_segments) {
      IoResult res;
      res.status = StorageStatus::kOutOfRange;
      finish_cell(i, std::move(res));
      continue;
    }
    RowRef row;
    row.vd = io.vd_id;
    row.stripe = static_cast<std::uint32_t>(seg / geo.k);
    const int p = static_cast<int>(seg % geo.k);
    row.row = static_cast<std::uint32_t>(
        (off % sa::SegmentTable::kSegmentBytes) / kCell);

    const auto loc = segments_.lookup(io.vd_id, off);
    const bool direct_ok =
        loc && server_alive(loc->block_server) &&
        rebuilding_.find({io.vd_id, seg}) == rebuilding_.end();
    if (direct_ok) {
      read_cell_direct(io.vd_id, off, io.background,
                       [this, row, p, i, finish_cell,
                        server = loc->block_server](IoResult res) {
                         if (res.status == StorageStatus::kOk) {
                           finish_cell(i, std::move(res));
                           return;
                         }
                         note_result(server, res);
                         read_cell_degraded(row, p, [finish_cell, i](
                                                        IoResult r) {
                           finish_cell(i, std::move(r));
                         });
                       });
    } else {
      read_cell_degraded(row, p, [finish_cell, i](IoResult r) {
        finish_cell(i, std::move(r));
      });
    }
  }
}

void EcClient::read_cell_direct(std::uint64_t vd, std::uint64_t offset,
                                bool background,
                                std::function<void(IoResult)> done) {
  inner_submit(cell_read(vd, offset, background), std::move(done));
}

void EcClient::read_cell_degraded(const RowRef& row, int p,
                                  std::function<void(IoResult)> done) {
  ++stats_.degraded_reads;
  const sa::EcInfo geo = *segments_.ec_info(row.vd);
  run_locked(row, [this, row, p, geo,
                   done = std::move(done)](std::function<void()> release) mutable {
    if (dirty_.find(row) != dirty_.end()) {
      // A torn parity update is pending repair: a decode would hand back
      // wrong bytes as kOk. Fail honestly; the row heals and a retry wins.
      IoResult res;
      res.status = StorageStatus::kTimeout;
      res.completed_at = engine_.now();
      release();
      done(std::move(res));
      return;
    }
    // Pick k sources among the surviving fragments, ascending fragment
    // order (data first, then parity) for determinism. Data fragments past
    // the tail stripe are implicit zero sources and cost no read.
    struct Src {
      int frag;
      bool implicit_zero;
      std::vector<std::uint8_t> bytes;
      bool ok = false;
    };
    auto st = std::make_shared<std::vector<Src>>();
    for (int c = 0; c < geo.k + geo.m && static_cast<int>(st->size()) < geo.k;
         ++c) {
      if (c == p) continue;
      const std::uint64_t seg =
          frag_offset(geo, row, c) / sa::SegmentTable::kSegmentBytes;
      if (c < geo.k && seg >= geo.num_data_segments) {
        st->push_back({c, true, {}, true});
        continue;
      }
      const auto loc = segments_.lookup(row.vd, frag_offset(geo, row, c));
      if (!loc || !server_alive(loc->block_server)) continue;
      if (rebuilding_.find({row.vd, seg}) != rebuilding_.end()) continue;
      st->push_back({c, false, {}, false});
    }
    if (static_cast<int>(st->size()) < geo.k) {
      IoResult res;
      res.status = StorageStatus::kTimeout;  // < k survivors: unavailable
      res.completed_at = engine_.now();
      release();
      done(std::move(res));
      return;
    }
    auto remaining = std::make_shared<int>(0);
    auto trace = std::make_shared<transport::IoTrace>();
    auto failed = std::make_shared<bool>(false);
    auto finish = [this, st, row, p, geo, release, done = std::move(done),
                   trace, failed]() mutable {
      IoResult res;
      res.trace = *trace;
      res.completed_at = engine_.now();
      if (*failed) {
        res.status = StorageStatus::kTimeout;
        release();
        done(std::move(res));
        return;
      }
      const bool real = std::any_of(
          st->begin(), st->end(), [](const Src& s) { return !s.bytes.empty(); });
      DataBlock blk;
      blk.lba = frag_offset(geo, row, p);
      blk.len = kCell;
      if (real) {
        std::vector<std::pair<int, const std::vector<std::uint8_t>*>> sources;
        sources.reserve(st->size());
        for (const Src& s : *st) sources.push_back({s.frag, &s.bytes});
        std::vector<std::uint8_t> out;
        if (!codec_.reconstruct(sources, p, kCell, &out)) {
          res.status = StorageStatus::kCrcMismatch;
          release();
          done(std::move(res));
          return;
        }
        blk.data = std::move(out);
        blk.crc = crc32_raw(blk.data);
      }
      res.status = StorageStatus::kOk;
      res.read_data.push_back(std::move(blk));
      release();
      done(std::move(res));
    };
    for (std::size_t i = 0; i < st->size(); ++i) {
      if ((*st)[i].implicit_zero) continue;
      ++*remaining;
    }
    if (*remaining == 0) {
      finish();
      return;
    }
    for (std::size_t i = 0; i < st->size(); ++i) {
      Src& s = (*st)[i];
      if (s.implicit_zero) continue;
      inner_submit(
          cell_read(row.vd, frag_offset(geo, row, s.frag), false),
          [st, i, remaining, trace, failed, finish](IoResult r) mutable {
            trace->accumulate(r.trace);
            if (r.status != StorageStatus::kOk) {
              *failed = true;
            } else if (!r.read_data.empty()) {
              (*st)[i].bytes = std::move(r.read_data.front().data);
              (*st)[i].ok = true;
            }
            if (--*remaining == 0) finish();
          });
    }
  });
}

void EcClient::write_cell(const RowRef& row, int p, DataBlock block,
                          bool background,
                          std::function<void(IoResult)> done) {
  const sa::EcInfo geo = *segments_.ec_info(row.vd);
  run_locked(row, [this, row, p, geo, block = std::move(block), background,
                   done = std::move(done)](std::function<void()> release) mutable {
    // Phase 1: read old data + old parity cells (the delta RMW inputs).
    // Index 0 = old data, 1..m = parities.
    struct St {
      std::vector<IoResult> old_reads;
      int remaining = 0;
    };
    auto st = std::make_shared<St>();
    st->old_reads.resize(static_cast<std::size_t>(geo.m) + 1);
    st->remaining = geo.m + 1;
    auto phase2 = [this, row, p, geo, block = std::move(block), background,
                   release, done = std::move(done), st]() mutable {
      const bool real = block.has_payload();
      std::vector<std::uint8_t> delta;
      const bool have_old_data =
          st->old_reads[0].status == StorageStatus::kOk;
      if (real && have_old_data) {
        delta.assign(block.data.begin(), block.data.end());
        delta.resize(kCell, 0);
        const auto& old = st->old_reads[0].read_data;
        if (!old.empty() && !old.front().data.empty()) {
          const auto& ob = old.front().data;
          for (std::size_t i = 0; i < delta.size() && i < ob.size(); ++i) {
            delta[i] ^= ob[i];
          }
        }
      }
      auto wr = std::make_shared<St>();
      wr->old_reads.resize(static_cast<std::size_t>(geo.m) + 1);
      wr->remaining = 1;
      bool torn = false;
      auto phase3 = [this, row, release, done = std::move(done), st,
                     wr]() mutable {
        IoResult res;
        res.status = wr->old_reads[0].status;
        for (const IoResult& r : st->old_reads) res.trace.accumulate(r.trace);
        bool parity_failed = false;
        for (std::size_t q = 1; q < wr->old_reads.size(); ++q) {
          res.trace.accumulate(wr->old_reads[q].trace);
          if (wr->old_reads[q].status != StorageStatus::kOk) {
            parity_failed = true;
          }
        }
        res.trace.accumulate(wr->old_reads[0].trace);
        res.completed_at = engine_.now();
        // A failed data write leaves the data cell's on-disk content
        // indeterminate while the delta parity writes may have landed —
        // the row is just as torn as when a parity write fails. Either
        // way, repair must recompute parity from the data fragments
        // before any degraded read may decode this row.
        if (parity_failed ||
            wr->old_reads[0].status != StorageStatus::kOk) {
          mark_dirty(row);
        }
        release();
        done(std::move(res));
      };
      // Data write.
      auto count_down = [wr, phase3](std::size_t slot) mutable {
        return [wr, phase3, slot](IoResult r) mutable {
          wr->old_reads[slot] = std::move(r);
          if (--wr->remaining == 0) phase3();
        };
      };
      IoRequest dw;
      dw.vd_id = row.vd;
      dw.op = OpType::kWrite;
      dw.offset = block.lba;
      dw.len = kCell;
      dw.background = background;
      dw.payload.push_back(block);
      // Parity writes: only those whose old value we hold (a failed old
      // read means the delta would corrupt the parity — leave it stale and
      // let row repair recompute it from the data fragments).
      std::vector<std::pair<std::size_t, IoRequest>> parity_writes;
      for (int q = 0; q < geo.m; ++q) {
        const auto slot = static_cast<std::size_t>(q) + 1;
        if (st->old_reads[slot].status != StorageStatus::kOk ||
            (real && !have_old_data)) {
          IoResult skipped;
          skipped.status = StorageStatus::kTimeout;
          wr->old_reads[slot] = std::move(skipped);
          torn = true;
          continue;
        }
        std::vector<std::uint8_t> pbytes;
        if (real) {
          std::vector<std::uint8_t> old_parity;
          if (!st->old_reads[slot].read_data.empty()) {
            old_parity = st->old_reads[slot].read_data.front().data;
          }
          pbytes = codec_.update_parity(q, p, old_parity, delta, kCell);
        }
        ++stats_.parity_updates;
        parity_writes.push_back(
            {slot, cell_write(row.vd, frag_offset(geo, row, geo.k + q),
                              std::move(pbytes), !real, background)});
        ++wr->remaining;
      }
      if (torn) mark_dirty(row);
      inner_submit(std::move(dw), count_down(0));
      for (auto& [slot, req] : parity_writes) {
        inner_submit(std::move(req), count_down(slot));
      }
    };
    const std::uint64_t data_off = block.lba;
    auto count_read = [this, st, phase2](std::size_t slot) mutable {
      return [st, phase2, slot](IoResult r) mutable {
        st->old_reads[slot] = std::move(r);
        if (--st->remaining == 0) phase2();
      };
    };
    auto read_or_fail = [this, &count_read](std::uint64_t vd,
                                            std::uint64_t off,
                                            bool background,
                                            std::size_t slot) {
      const auto loc = segments_.lookup(vd, off);
      if (!loc || !server_alive(loc->block_server)) {
        IoResult res;
        res.status = StorageStatus::kTimeout;
        res.completed_at = engine_.now();
        count_read(slot)(std::move(res));
        return;
      }
      inner_submit(cell_read(vd, off, background), count_read(slot));
    };
    read_or_fail(row.vd, data_off, background, 0);
    for (int q = 0; q < geo.m; ++q) {
      read_or_fail(row.vd, frag_offset(geo, row, geo.k + q), background,
                   static_cast<std::size_t>(q) + 1);
    }
  });
}

void EcClient::recompute_parity(const RowRef& row, std::vector<int> parities,
                                bool clear_dirty,
                                std::function<void(bool)> done) {
  const sa::EcInfo geo = *segments_.ec_info(row.vd);
  run_locked(row, [this, row, geo, parities = std::move(parities), clear_dirty,
                   done = std::move(done)](std::function<void()> release) mutable {
    struct St {
      std::vector<std::vector<std::uint8_t>> data;
      int remaining = 0;
      bool failed = false;
    };
    auto st = std::make_shared<St>();
    st->data.resize(static_cast<std::size_t>(geo.k));
    auto phase2 = [this, row, geo, parities, clear_dirty, release,
                   done = std::move(done), st]() mutable {
      if (st->failed) {
        release();
        done(false);
        return;
      }
      const bool real = std::any_of(
          st->data.begin(), st->data.end(),
          [](const std::vector<std::uint8_t>& d) { return !d.empty(); });
      auto remaining = std::make_shared<int>(
          static_cast<int>(parities.size()));
      auto ok = std::make_shared<bool>(true);
      auto finish = [this, row, clear_dirty, release, done = std::move(done),
                     ok]() mutable {
        if (*ok && clear_dirty) dirty_.erase(row);
        release();
        done(*ok);
      };
      if (*remaining == 0) {
        finish();
        return;
      }
      // Fused: all requested parity rows in one kernel pass over each data
      // fragment, instead of one full sweep per row.
      std::vector<std::vector<std::uint8_t>> pbytes_all;
      if (real) pbytes_all = codec_.encode_parity_rows(parities, st->data, kCell);
      for (std::size_t qi = 0; qi < parities.size(); ++qi) {
        const int q = parities[qi];
        std::vector<std::uint8_t> pbytes;
        if (real) pbytes = std::move(pbytes_all[qi]);
        inner_submit(
            cell_write(row.vd, frag_offset(geo, row, geo.k + q),
                       std::move(pbytes), !real, true),
            [remaining, ok, finish](IoResult r) mutable {
              if (r.status != StorageStatus::kOk) *ok = false;
              if (--*remaining == 0) finish();
            });
      }
    };
    for (int p = 0; p < geo.k; ++p) {
      const std::uint64_t off = frag_offset(geo, row, p);
      if (off / sa::SegmentTable::kSegmentBytes >= geo.num_data_segments) {
        continue;  // tail stripe: implicit zero fragment
      }
      ++st->remaining;
    }
    if (st->remaining == 0) {
      phase2();
      return;
    }
    for (int p = 0; p < geo.k; ++p) {
      const std::uint64_t off = frag_offset(geo, row, p);
      if (off / sa::SegmentTable::kSegmentBytes >= geo.num_data_segments) {
        continue;
      }
      const auto loc = segments_.lookup(row.vd, off);
      if (!loc || !server_alive(loc->block_server)) {
        st->failed = true;
        if (--st->remaining == 0) phase2();
        continue;
      }
      inner_submit(cell_read(row.vd, off, true),
                   [st, p, phase2](IoResult r) mutable {
                     if (r.status != StorageStatus::kOk) {
                       st->failed = true;
                     } else if (!r.read_data.empty()) {
                       st->data[static_cast<std::size_t>(p)] =
                           std::move(r.read_data.front().data);
                     }
                     if (--st->remaining == 0) phase2();
                   });
    }
  });
}

void EcClient::repair_row(std::uint64_t vd, std::uint32_t stripe,
                          std::uint32_t row, std::function<void(bool)> done) {
  ++stats_.row_repairs;
  RowRef r;
  r.vd = vd;
  r.stripe = stripe;
  r.row = row;
  const auto info = segments_.ec_info(vd);
  if (!info) {
    done(false);
    return;
  }
  std::vector<int> all;
  for (int q = 0; q < info->m; ++q) all.push_back(q);
  recompute_parity(r, std::move(all), /*clear_dirty=*/true, std::move(done));
}

void EcClient::reconstruct_cell(std::uint64_t vd, std::uint32_t stripe,
                                std::uint32_t row, int c,
                                std::function<void(bool)> done) {
  ++stats_.reconstructs;
  RowRef r;
  r.vd = vd;
  r.stripe = stripe;
  r.row = row;
  const auto info = segments_.ec_info(vd);
  if (!info) {
    done(false);
    return;
  }
  const sa::EcInfo geo = *info;
  if (c >= geo.k) {
    // Parity fragment: recompute from the data fragments.
    recompute_parity(r, {c - geo.k}, /*clear_dirty=*/false, std::move(done));
    return;
  }
  // Data fragment: decode from k survivors, then write to the fragment's
  // current (post-remap) location. The write needs no parity update — the
  // decoded value is exactly what the parity already encodes.
  run_locked(r, [this, r, c, geo,
                 done = std::move(done)](std::function<void()> release) mutable {
    if (dirty_.find(r) != dirty_.end()) {
      release();
      done(false);  // repair must run first; the agent retries
      return;
    }
    struct Src {
      int frag;
      bool implicit_zero;
      std::vector<std::uint8_t> bytes;
    };
    auto st = std::make_shared<std::vector<Src>>();
    for (int f = 0; f < geo.k + geo.m && static_cast<int>(st->size()) < geo.k;
         ++f) {
      if (f == c) continue;
      const std::uint64_t seg =
          frag_offset(geo, r, f) / sa::SegmentTable::kSegmentBytes;
      if (f < geo.k && seg >= geo.num_data_segments) {
        st->push_back({f, true, {}});
        continue;
      }
      const auto loc = segments_.lookup(r.vd, frag_offset(geo, r, f));
      if (!loc || !server_alive(loc->block_server)) continue;
      if (rebuilding_.find({r.vd, seg}) != rebuilding_.end() &&
          seg != frag_offset(geo, r, c) / sa::SegmentTable::kSegmentBytes) {
        continue;
      }
      st->push_back({f, false, {}});
    }
    if (static_cast<int>(st->size()) < geo.k) {
      release();
      done(false);
      return;
    }
    auto remaining = std::make_shared<int>(0);
    auto failed = std::make_shared<bool>(false);
    auto finish = [this, st, r, c, geo, release, done = std::move(done),
                   failed]() mutable {
      if (*failed) {
        release();
        done(false);
        return;
      }
      const bool real = std::any_of(
          st->begin(), st->end(), [](const Src& s) { return !s.bytes.empty(); });
      std::vector<std::uint8_t> out;
      if (real) {
        std::vector<std::pair<int, const std::vector<std::uint8_t>*>> sources;
        sources.reserve(st->size());
        for (const Src& s : *st) sources.push_back({s.frag, &s.bytes});
        if (!codec_.reconstruct(sources, c, kCell, &out)) {
          release();
          done(false);
          return;
        }
      }
      inner_submit(cell_write(r.vd, frag_offset(geo, r, c), std::move(out),
                              !real, true),
                   [release, done = std::move(done)](IoResult wres) mutable {
                     release();
                     done(wres.status == StorageStatus::kOk);
                   });
    };
    for (const Src& s : *st) {
      if (!s.implicit_zero) ++*remaining;
    }
    if (*remaining == 0) {
      finish();
      return;
    }
    for (std::size_t i = 0; i < st->size(); ++i) {
      if ((*st)[i].implicit_zero) continue;
      inner_submit(cell_read(r.vd, frag_offset(geo, r, (*st)[i].frag), true),
                   [st, i, remaining, failed, finish](IoResult res) mutable {
                     if (res.status != StorageStatus::kOk) {
                       *failed = true;
                     } else if (!res.read_data.empty()) {
                       (*st)[i].bytes = std::move(res.read_data.front().data);
                     }
                     if (--*remaining == 0) finish();
                   });
    }
  });
}

}  // namespace repro::ec
