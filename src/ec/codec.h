// Systematic Reed-Solomon erasure codec over GF(256).
//
// The generator matrix is [I_k ; C] with C an m x k Cauchy matrix
// (c[q][p] = 1 / (x_q + y_p), x_q = k + q, y_p = p): every k x k minor is
// invertible, so any k of the k+m fragments reconstruct the rest. Fragments
// are equal-length byte buffers — in this simulator one 4 KB cell each.
// Two properties the data path relies on:
//
//  * absent-as-zero: an all-zero fragment is what unwritten space reads
//    back as, and the codec is linear, so parity over a partially written
//    stripe is simply parity over zero-padded data;
//  * delta update: p' = p + c[q][p]·(d + d'), so a single-cell overwrite
//    updates each parity with one read-modify-write instead of re-reading
//    the whole stripe.
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace repro::ec {

/// GF(256) arithmetic (polynomial 0x11D), table-driven (kernels/gf256).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);
std::uint8_t gf_inv(std::uint8_t a);

class Codec {
 public:
  /// Requires 1 <= k <= 32, 1 <= m and k + m <= 128 (Cauchy x/y sets must
  /// be disjoint in GF(256); k additionally caps at 32 because the client
  /// write directory is a 32-bit per-row coverage mask. The fleet never
  /// goes near either bound).
  Codec(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }

  /// Coefficient of data fragment `p` in parity `q` (the Cauchy entry).
  std::uint8_t coef(int q, int p) const {
    return cauchy_[static_cast<std::size_t>(q * k_ + p)];
  }

  /// out[i] ^= c * in[i] for n bytes — the GF multiply-accumulate every
  /// encode/decode path reduces to. Dispatches to the active kernel tier
  /// (scalar / SSSE3 pshufb / AVX2); all tiers are bit-identical.
  static void mul_acc(std::uint8_t c, const std::uint8_t* in,
                      std::uint8_t* out, std::size_t n);

  /// Parity fragment `q` of a full stripe: data[p] may be empty (= zero
  /// fragment); non-empty buffers must all have size n.
  std::vector<std::uint8_t> encode_parity(
      int q, const std::vector<std::vector<std::uint8_t>>& data,
      std::size_t n) const;

  /// Fused encode of the parity rows in `qs` (each in [0, m)): one pass over
  /// each data fragment produces all requested rows (kernel-level cache
  /// reuse), bit-identical to calling encode_parity per row. Returned in the
  /// order of `qs`.
  std::vector<std::vector<std::uint8_t>> encode_parity_rows(
      const std::vector<int>& qs,
      const std::vector<std::vector<std::uint8_t>>& data, std::size_t n) const;

  /// All m parity rows of a stripe, fused.
  std::vector<std::vector<std::uint8_t>> encode_parities(
      const std::vector<std::vector<std::uint8_t>>& data, std::size_t n) const;

  /// Delta update: new parity bytes from old parity + the XOR-delta of data
  /// fragment `p`. Empty `old_parity` means the parity cell was never
  /// written (all-zero).
  std::vector<std::uint8_t> update_parity(
      int q, int p, const std::vector<std::uint8_t>& old_parity,
      const std::vector<std::uint8_t>& delta, std::size_t n) const;

  /// Reconstructs fragment `lost` (0..k-1 = data, k..k+m-1 = parity) from
  /// exactly k sources (fragment index, bytes; empty bytes = zero
  /// fragment). Returns false on bad input (wrong source count, duplicate
  /// or out-of-range indices — never happens from the data path).
  bool reconstruct(
      const std::vector<std::pair<int, const std::vector<std::uint8_t>*>>&
          sources,
      int lost, std::size_t n, std::vector<std::uint8_t>* out) const;

 private:
  /// Row `frag` of the systematic generator matrix (length k).
  std::vector<std::uint8_t> generator_row(int frag) const;

  int k_;
  int m_;
  std::vector<std::uint8_t> cauchy_;  ///< m x k, row-major
};

}  // namespace repro::ec
