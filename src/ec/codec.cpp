#include "ec/codec.h"

#include <cstdlib>

#include "kernels/gf256.h"
#include "kernels/kernels.h"

namespace repro::ec {

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  return kernels::gf256_mul(a, b);
}

std::uint8_t gf_inv(std::uint8_t a) { return kernels::gf256_inv(a); }

Codec::Codec(int k, int m) : k_(k), m_(m) {
  if (k < 1 || k > 32 || m < 1 || k + m > 128) std::abort();
  cauchy_.resize(static_cast<std::size_t>(k * m));
  for (int q = 0; q < m; ++q) {
    for (int p = 0; p < k; ++p) {
      const auto xq = static_cast<std::uint8_t>(k + q);
      const auto yp = static_cast<std::uint8_t>(p);
      cauchy_[static_cast<std::size_t>(q * k + p)] =
          gf_inv(static_cast<std::uint8_t>(xq ^ yp));
    }
  }
}

void Codec::mul_acc(std::uint8_t c, const std::uint8_t* in, std::uint8_t* out,
                    std::size_t n) {
  kernels::active().gf_mul_acc(c, in, out, n);
}

std::vector<std::vector<std::uint8_t>> Codec::encode_parity_rows(
    const std::vector<int>& qs,
    const std::vector<std::vector<std::uint8_t>>& data, std::size_t n) const {
  const std::size_t m = qs.size();
  std::vector<std::vector<std::uint8_t>> out(m);
  if (m == 0) return out;
  std::vector<const std::uint8_t*> coef_rows(m);
  std::vector<std::uint8_t*> parity(m);
  for (std::size_t i = 0; i < m; ++i) {
    coef_rows[i] = &cauchy_[static_cast<std::size_t>(qs[i] * k_)];
    out[i].assign(n, 0);
    parity[i] = out[i].data();
  }
  std::vector<const std::uint8_t*> frags(static_cast<std::size_t>(k_),
                                         nullptr);
  for (int p = 0; p < k_ && p < static_cast<int>(data.size()); ++p) {
    const auto& d = data[static_cast<std::size_t>(p)];
    if (!d.empty()) frags[static_cast<std::size_t>(p)] = d.data();
  }
  kernels::active().ec_encode(static_cast<std::size_t>(k_), m,
                              coef_rows.data(), frags.data(), parity.data(),
                              n);
  return out;
}

std::vector<std::vector<std::uint8_t>> Codec::encode_parities(
    const std::vector<std::vector<std::uint8_t>>& data, std::size_t n) const {
  std::vector<int> qs(static_cast<std::size_t>(m_));
  for (int q = 0; q < m_; ++q) qs[static_cast<std::size_t>(q)] = q;
  return encode_parity_rows(qs, data, n);
}

std::vector<std::uint8_t> Codec::encode_parity(
    int q, const std::vector<std::vector<std::uint8_t>>& data,
    std::size_t n) const {
  return std::move(encode_parity_rows({q}, data, n).front());
}

std::vector<std::uint8_t> Codec::update_parity(
    int q, int p, const std::vector<std::uint8_t>& old_parity,
    const std::vector<std::uint8_t>& delta, std::size_t n) const {
  std::vector<std::uint8_t> out(n, 0);
  if (!old_parity.empty()) {
    for (std::size_t i = 0; i < n && i < old_parity.size(); ++i) {
      out[i] = old_parity[i];
    }
  }
  if (!delta.empty()) mul_acc(coef(q, p), delta.data(), out.data(), n);
  return out;
}

std::vector<std::uint8_t> Codec::generator_row(int frag) const {
  std::vector<std::uint8_t> row(static_cast<std::size_t>(k_), 0);
  if (frag < k_) {
    row[static_cast<std::size_t>(frag)] = 1;
  } else {
    for (int p = 0; p < k_; ++p) {
      row[static_cast<std::size_t>(p)] = coef(frag - k_, p);
    }
  }
  return row;
}

bool Codec::reconstruct(
    const std::vector<std::pair<int, const std::vector<std::uint8_t>*>>&
        sources,
    int lost, std::size_t n, std::vector<std::uint8_t>* out) const {
  const int k = k_;
  if (static_cast<int>(sources.size()) != k) return false;
  std::vector<bool> seen(static_cast<std::size_t>(k_ + m_), false);
  for (const auto& [idx, bytes] : sources) {
    (void)bytes;
    if (idx < 0 || idx >= k_ + m_ || seen[static_cast<std::size_t>(idx)]) {
      return false;
    }
    seen[static_cast<std::size_t>(idx)] = true;
  }
  if (lost < 0 || lost >= k_ + m_) return false;

  // Gauss-Jordan invert the k x k matrix of the sources' generator rows:
  // inv maps source bytes back to the k data fragments.
  std::vector<std::uint8_t> mat(static_cast<std::size_t>(k * k), 0);
  std::vector<std::uint8_t> inv(static_cast<std::size_t>(k * k), 0);
  for (int r = 0; r < k; ++r) {
    const auto row = generator_row(sources[static_cast<std::size_t>(r)].first);
    for (int c = 0; c < k; ++c) {
      mat[static_cast<std::size_t>(r * k + c)] =
          row[static_cast<std::size_t>(c)];
    }
    inv[static_cast<std::size_t>(r * k + r)] = 1;
  }
  for (int col = 0; col < k; ++col) {
    int pivot = -1;
    for (int r = col; r < k; ++r) {
      if (mat[static_cast<std::size_t>(r * k + col)] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return false;  // singular: impossible for Cauchy minors
    if (pivot != col) {
      for (int c = 0; c < k; ++c) {
        std::swap(mat[static_cast<std::size_t>(pivot * k + c)],
                  mat[static_cast<std::size_t>(col * k + c)]);
        std::swap(inv[static_cast<std::size_t>(pivot * k + c)],
                  inv[static_cast<std::size_t>(col * k + c)]);
      }
    }
    const std::uint8_t d =
        gf_inv(mat[static_cast<std::size_t>(col * k + col)]);
    for (int c = 0; c < k; ++c) {
      mat[static_cast<std::size_t>(col * k + c)] =
          gf_mul(mat[static_cast<std::size_t>(col * k + c)], d);
      inv[static_cast<std::size_t>(col * k + c)] =
          gf_mul(inv[static_cast<std::size_t>(col * k + c)], d);
    }
    for (int r = 0; r < k; ++r) {
      if (r == col) continue;
      const std::uint8_t f = mat[static_cast<std::size_t>(r * k + col)];
      if (f == 0) continue;
      for (int c = 0; c < k; ++c) {
        mat[static_cast<std::size_t>(r * k + c)] = static_cast<std::uint8_t>(
            mat[static_cast<std::size_t>(r * k + c)] ^
            gf_mul(f, mat[static_cast<std::size_t>(col * k + c)]));
        inv[static_cast<std::size_t>(r * k + c)] = static_cast<std::uint8_t>(
            inv[static_cast<std::size_t>(r * k + c)] ^
            gf_mul(f, inv[static_cast<std::size_t>(col * k + c)]));
      }
    }
  }

  // lost-fragment row of (generator · inv): one pass over the sources.
  const auto lost_row = generator_row(lost);
  std::vector<std::uint8_t> weights(static_cast<std::size_t>(k), 0);
  for (int s = 0; s < k; ++s) {
    std::uint8_t w = 0;
    for (int c = 0; c < k; ++c) {
      w = static_cast<std::uint8_t>(
          w ^ gf_mul(lost_row[static_cast<std::size_t>(c)],
                     inv[static_cast<std::size_t>(c * k + s)]));
    }
    weights[static_cast<std::size_t>(s)] = w;
  }
  out->assign(n, 0);
  for (int s = 0; s < k; ++s) {
    const auto* bytes = sources[static_cast<std::size_t>(s)].second;
    if (bytes == nullptr || bytes->empty()) continue;
    mul_acc(weights[static_cast<std::size_t>(s)], bytes->data(), out->data(),
            n);
  }
  return true;
}

}  // namespace repro::ec
