// Background maintenance plane of the EC server family: watches fragment
// health (probes + foreground failure signals), declares servers dead after
// repeated failures, and turns fragment loss into real rebuild traffic —
// remapping the lost segment to a healthy spare server and reconstructing
// every written cell from k survivors, throttled by a token bucket
// (`rebuild_bandwidth_cap`) and classed best-effort by QoS so foreground
// guarantees win under contention. Torn parity rows reported by the
// EcClient are repaired here too (re-encode from the data fragments).
//
// Determinism: the agent lives on its VDs' compute node and is driven only
// by engine timers and I/O completions; every container it iterates is an
// ordered map/set. The probe timer self-gates on activity so an idle
// cluster still quiesces (runs end when the guest workload does).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/token_bucket.h"
#include "ec/client.h"
#include "ec/params.h"
#include "sa/segment_table.h"
#include "sim/engine.h"

namespace repro::placement {
class ClusterView;
}  // namespace repro::placement

namespace repro::ec {

class MaintenanceAgent {
 public:
  /// Installs a segment-location override (rebuild remap). In sharded runs
  /// the cluster routes this through a global barrier op (the SegmentTable
  /// is shared state); `done` fires on the agent's home shard afterwards.
  using RemapFn =
      std::function<void(std::uint64_t vd, std::uint64_t seg_index,
                         sa::SegmentLocation loc, std::function<void()> done)>;

  MaintenanceAgent(sim::Engine& engine, EcClient& ec,
                   sa::SegmentTable& segments, const EcParams& params,
                   EcClient::SubmitFn probe_submit, RemapFn remap);

  using FragKey = std::pair<std::uint64_t, std::uint64_t>;  ///< (vd, seg)

  /// Health-change notification (server, alive). In sharded runs the
  /// cluster routes the ClusterView write through a global barrier op, the
  /// same way RemapFn routes SegmentTable overrides.
  using HealthFn = std::function<void(net::IpAddr, bool)>;
  void set_health_listener(HealthFn fn) { health_fn_ = std::move(fn); }

  /// Wires the cluster-level control plane in: with `exposure_order`,
  /// `pump_rebuild` drains the most-exposed queued segment first (exposure
  /// = dead-holder fragments of the segment's stripe per the view) instead
  /// of FIFO. The view is read-only here; health writes go via HealthFn.
  void set_cluster_view(const placement::ClusterView* view,
                        bool exposure_order) {
    view_ = view;
    exposure_order_ = exposure_order;
  }

  /// One completed (not dropped) segment rebuild, in completion order.
  /// `exposure` is the stripe's dead-fragment count at the moment the
  /// segment was popped from the queue — the drain-order invariant the
  /// placement tests assert on. Only recorded when a view is wired.
  struct RebuildRecord {
    std::uint64_t vd = 0;
    std::uint64_t seg = 0;
    int exposure = 0;
  };
  const std::vector<RebuildRecord>& rebuild_log() const {
    return rebuild_log_;
  }

  // --- signals from the data path --------------------------------------
  /// Foreground I/O touched `vd` (arms the probe timer).
  void on_activity(std::uint64_t vd);
  /// A fragment sub-I/O against `server` failed (fast-path detection).
  void on_fragment_failure(net::IpAddr server);
  /// The EcClient left a row with stale parity (torn RMW).
  void on_row_damage(std::uint64_t vd, std::uint32_t stripe,
                     std::uint32_t row);

  /// Test hook: declare a server dead immediately, as if probes had
  /// exhausted `probe_failures_to_dead`.
  void force_server_down(net::IpAddr server);
  /// Test hook: revive a server (probes would discover this eventually).
  void force_server_up(net::IpAddr server);

  struct Stats {
    std::uint64_t probes = 0;
    std::uint64_t probe_failures = 0;
    std::uint64_t servers_died = 0;
    std::uint64_t servers_revived = 0;
    std::uint64_t segments_rebuilt = 0;
    std::uint64_t segments_stalled = 0;
    std::uint64_t cells_rebuilt = 0;
    std::uint64_t rows_repaired = 0;
    std::uint64_t repair_failures = 0;
  };
  const Stats& stats() const { return stats_; }

  std::size_t rebuild_backlog() const {
    return rebuild_q_.size() + (rebuild_active_ ? 1 : 0);
  }
  std::size_t stalled_segments() const { return stalled_.size(); }
  std::size_t pending_repairs() const {
    return damage_q_.size() + stalled_rows_.size() + (repair_active_ ? 1 : 0);
  }
  /// All rebuild/repair work (including stalled) has drained.
  bool idle() const {
    return rebuild_backlog() == 0 && damage_q_.empty() && !repair_active_ &&
           stalled_.empty() && stalled_rows_.empty();
  }

 private:
  struct ServerHealth {
    bool dead = false;
    bool outstanding = false;    ///< a probe is in flight
    std::uint64_t probe_gen = 0;  ///< invalidates late probe completions
    sim::TimerId timeout_timer = 0;
    int fails = 0;
  };
  struct RowKey {
    std::uint64_t vd = 0;
    std::uint32_t stripe = 0;
    std::uint32_t row = 0;
    bool operator<(const RowKey& o) const {
      if (vd != o.vd) return vd < o.vd;
      if (stripe != o.stripe) return stripe < o.stripe;
      return row < o.row;
    }
  };
  void ensure_timer();
  void tick();
  void probe_all();
  void probe(net::IpAddr server);
  void probe_done(net::IpAddr server, std::uint64_t gen, bool ok);
  void note_failure(net::IpAddr server);
  void note_ok(net::IpAddr server);
  void declare_dead(net::IpAddr server);
  void declare_alive(net::IpAddr server);
  /// Health changed: stalled segments/rows get another chance.
  void requeue_stalled();
  /// Physical offset of a cell currently mapped to `server`, if any.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> probe_target(
      net::IpAddr server);
  /// Every server any registered VD stripes over, ordered.
  std::vector<net::IpAddr> tracked_servers() const;

  void pump_rebuild();
  /// Dead-holder fragments of the stripe containing `seg` (view required).
  int exposure_of(std::uint64_t vd, std::uint64_t seg);
  void start_segment_rebuild(std::uint64_t vd, std::uint64_t seg);
  void rebuild_rows(std::uint64_t vd, std::uint64_t seg, std::uint32_t stripe,
                    int frag, std::vector<std::uint32_t> rows, int attempt);
  void finish_segment(std::uint64_t vd, std::uint64_t seg, bool ok);
  void stall_segment(std::uint64_t vd, std::uint64_t seg);

  void pump_repairs();

  sim::Engine& engine_;
  EcClient& ec_;
  sa::SegmentTable& segments_;
  EcParams params_;
  EcClient::SubmitFn probe_submit_;
  RemapFn remap_;
  HealthFn health_fn_;
  TokenBucket bucket_;
  const placement::ClusterView* view_ = nullptr;  ///< not owned; may be null
  bool exposure_order_ = false;
  int active_exposure_ = 0;  ///< exposure of the segment being rebuilt
  std::vector<RebuildRecord> rebuild_log_;
  std::vector<sa::SegmentLocation> frag_scratch_;  ///< reused per pump

  std::set<std::uint64_t> vds_;  ///< VDs seen via on_activity
  std::map<net::IpAddr, ServerHealth> health_;
  std::map<net::IpAddr, std::pair<std::uint64_t, std::uint64_t>>
      probe_cache_;  ///< server -> (vd, phys offset)

  bool timer_armed_ = false;
  bool activity_ = false;

  std::deque<FragKey> rebuild_q_;
  std::set<FragKey> queued_;  ///< dedup for rebuild_q_ + active segment
  bool rebuild_active_ = false;
  std::set<FragKey> stalled_;

  std::deque<RowKey> damage_q_;
  std::set<RowKey> damage_queued_;
  bool repair_active_ = false;
  std::map<RowKey, int> repair_attempts_;
  std::set<RowKey> stalled_rows_;

  Stats stats_;
};

}  // namespace repro::ec
