// Fleet-wide erasure-coding knobs. Lives on stack::StackParams (and thus
// ebs::ClusterParams / ScenarioSpec) the same way the qos subsystem's
// params do: `enabled == false` means no EC object is ever built and the
// run is bit-identical to a spec that predates the field.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace repro::obs {
struct JsonValue;
class JsonWriter;
}  // namespace repro::obs

namespace repro::ec {

struct EcParams {
  bool enabled = false;
  /// Stripe geometry: k data + m parity fragments, placed on k+m distinct
  /// block servers. Degraded reads reconstruct from any k.
  int k = 4;
  int m = 2;
  /// Rebuild throttle in rebuilt bytes per simulated second (token bucket
  /// over the maintenance agent's reconstruct-writes). 0 = unthrottled —
  /// the `bench/ec_rebuild` trade-off knob.
  double rebuild_bandwidth_cap = 0.0;
  /// Fragment-health probing (maintenance agent): a probe read per tracked
  /// server every `probe_interval`; a server is declared dead after
  /// `probe_failures_to_dead` consecutive timeouts/errors.
  TimeNs probe_interval = ms(5);
  TimeNs probe_timeout = ms(15);
  int probe_failures_to_dead = 2;
  /// Concurrent reconstruct operations per maintenance agent.
  int rebuild_concurrency = 2;
  /// Backoff before retrying a failed row repair / reconstruct.
  TimeNs repair_retry = ms(10);

  /// Fragment cell: EC math runs per 4 KB block, the granularity every
  /// workload and the durability oracle already use. Fixed, not a knob.
  static constexpr std::uint32_t kCellBytes = 4096;
};

/// JSON round-trip (ScenarioSpec "ec" object). Mirrors qos::write_qos_params.
void write_ec_params(obs::JsonWriter& w, const EcParams& p);
bool read_ec_params(const obs::JsonValue& v, EcParams* p);
/// Keys `read_ec_params` understands — the scenario strict parser rejects
/// anything else.
bool ec_params_key_allowed(const std::string& key);

}  // namespace repro::ec
