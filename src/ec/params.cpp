#include "ec/params.h"

#include "obs/json.h"
#include "obs/json_reader.h"

namespace repro::ec {

void write_ec_params(obs::JsonWriter& w, const EcParams& p) {
  w.begin_object();
  w.field("enabled", p.enabled);
  w.field("k", p.k);
  w.field("m", p.m);
  w.field("rebuild_bandwidth_cap", p.rebuild_bandwidth_cap);
  w.field("probe_interval_us", static_cast<double>(p.probe_interval) / 1e3);
  w.field("probe_timeout_us", static_cast<double>(p.probe_timeout) / 1e3);
  w.field("probe_failures_to_dead", p.probe_failures_to_dead);
  w.field("rebuild_concurrency", p.rebuild_concurrency);
  w.field("repair_retry_us", static_cast<double>(p.repair_retry) / 1e3);
  w.end_object();
}

bool read_ec_params(const obs::JsonValue& v, EcParams* p) {
  if (v.type != obs::JsonValue::Type::kObject) return false;
  obs::json_bool(v, "enabled", &p->enabled);
  double num = 0.0;
  if (obs::json_number(v, "k", &num)) p->k = static_cast<int>(num);
  if (obs::json_number(v, "m", &num)) p->m = static_cast<int>(num);
  obs::json_number(v, "rebuild_bandwidth_cap", &p->rebuild_bandwidth_cap);
  if (obs::json_number(v, "probe_interval_us", &num)) {
    p->probe_interval = static_cast<TimeNs>(num * 1e3);
  }
  if (obs::json_number(v, "probe_timeout_us", &num)) {
    p->probe_timeout = static_cast<TimeNs>(num * 1e3);
  }
  if (obs::json_number(v, "probe_failures_to_dead", &num)) {
    p->probe_failures_to_dead = static_cast<int>(num);
  }
  if (obs::json_number(v, "rebuild_concurrency", &num)) {
    p->rebuild_concurrency = static_cast<int>(num);
  }
  if (obs::json_number(v, "repair_retry_us", &num)) {
    p->repair_retry = static_cast<TimeNs>(num * 1e3);
  }
  // k caps at 32: the client's write directory tracks data-fragment
  // coverage in a 32-bit mask (one bit per data fragment of a row).
  if (p->k < 1 || p->k > 32 || p->m < 1 || p->k + p->m > 128) return false;
  return true;
}

bool ec_params_key_allowed(const std::string& key) {
  static const char* const kKeys[] = {
      "enabled",        "k",
      "m",              "rebuild_bandwidth_cap",
      "probe_interval_us", "probe_timeout_us",
      "probe_failures_to_dead", "rebuild_concurrency",
      "repair_retry_us"};
  for (const char* k : kKeys) {
    if (key == k) return true;
  }
  return false;
}

}  // namespace repro::ec
