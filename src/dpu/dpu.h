// ALI-DPU: the card's shared resources (§4.2).
//
//  * infra CPU — six wimpy cores for control-plane work,
//  * internal PCIe — the under-provisioned interconnect between the NIC/
//    FPGA complex and the DPU CPU/memory ("far less than 100Gbps" while
//    Ethernet is 2x25G). Any stack whose data path hops through DPU memory
//    (LUNA, RDMA, SOLAR with offload off) pays it twice per payload,
//  * guest DMA — the host-facing PCIe the DMA engine uses to reach guest
//    memory (fast; every stack uses it exactly once per payload),
//  * FPGA — the programmable pipeline SOLAR's data path runs in.
#pragma once

#include <memory>

#include "common/rng.h"
#include "dpu/fpga.h"
#include "sim/cpu.h"
#include "sim/engine.h"
#include "sim/pcie.h"

namespace repro::dpu {

struct DpuParams {
  int cpu_cores = 6;
  BitsPerSec internal_pcie_rate = gbps(38);
  TimeNs internal_pcie_latency = ns(700);
  BitsPerSec guest_dma_rate = gbps(120);
  TimeNs guest_dma_latency = ns(400);
  FpgaParams fpga;
  std::uint64_t cipher_key = 0x5EC5EC5EC5EC5ECull;
};

class AliDpu {
 public:
  AliDpu(sim::Engine& engine, const DpuParams& params, Rng rng)
      : params_(params),
        cpu_(engine, "dpu-cpu", params.cpu_cores,
             sim::CpuPool::Dispatch::kByHash),
        internal_pcie_(engine, "dpu-pcie", params.internal_pcie_rate,
                       params.internal_pcie_latency),
        guest_dma_(engine, "guest-dma", params.guest_dma_rate,
                   params.guest_dma_latency),
        fpga_(params.fpga, rng, params.cipher_key) {}

  sim::CpuPool& cpu() { return cpu_; }
  sim::PcieChannel& internal_pcie() { return internal_pcie_; }
  sim::PcieChannel& guest_dma() { return guest_dma_; }
  FpgaPipeline& fpga() { return fpga_; }
  const DpuParams& params() const { return params_; }

 private:
  DpuParams params_;
  sim::CpuPool cpu_;
  sim::PcieChannel internal_pcie_;
  sim::PcieChannel guest_dma_;
  FpgaPipeline fpga_;
};

}  // namespace repro::dpu
