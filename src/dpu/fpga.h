// ALI-DPU FPGA pipeline model (Figures 12/13).
//
// The pipeline stages SOLAR offloads — QoS/Block/Addr table lookups, CRC,
// SEC (crypto), PktGen — are represented with per-stage latencies and,
// crucially, with *fault injection*: production data (Fig. 11) shows FPGA
// bit flips are the single largest cause of data corruption, which is why
// SOLAR keeps a software CRC-aggregation check on the DPU CPU (§4.5).
// Faults here are real: they corrupt actual payload bytes or CRC values,
// and the software aggregation check must catch them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sa/crypto.h"
#include "transport/message.h"

namespace repro::dpu {

struct FpgaFaults {
  /// Probability that processing a block flips a bit in the data *after*
  /// the CRC was computed (consistent CRC, corrupted payload).
  double data_bitflip_rate = 0.0;
  /// Probability that the CRC engine produces a wrong CRC for good data.
  double crc_engine_error_rate = 0.0;
  /// Probability that a block is corrupted *before* CRC (CRC matches the
  /// corrupted data — undetectable per-block, caught by aggregation).
  double pre_crc_bitflip_rate = 0.0;
};

struct FpgaParams {
  TimeNs table_lookup_latency = ns(120);   ///< QoS/Block/Addr match-action
  TimeNs crc_latency = ns(350);            ///< 4 KB through the CRC engine
  TimeNs sec_latency = ns(450);            ///< 4 KB through the cipher
  TimeNs pktgen_latency = ns(150);
  FpgaFaults faults;
};

struct FpgaStats {
  std::uint64_t blocks_processed = 0;
  std::uint64_t data_bitflips = 0;
  std::uint64_t crc_engine_errors = 0;
  std::uint64_t pre_crc_bitflips = 0;
  std::uint64_t faults_injected() const {
    return data_bitflips + crc_engine_errors + pre_crc_bitflips;
  }
};

class FpgaPipeline {
 public:
  FpgaPipeline(FpgaParams params, Rng rng, std::uint64_t cipher_key = 0)
      : params_(params), rng_(rng), cipher_(cipher_key) {}

  /// TX write path: optional SEC, then CRC. Mutates the block in place and
  /// fills block.crc with what the (possibly faulty) hardware computed.
  /// Returns the pipeline latency for this block.
  TimeNs process_write_block(std::uint64_t vd_id,
                             transport::DataBlock& block, bool encrypt);

  /// RX read path: hardware CRC check (then optional decrypt). `hw_ok` is
  /// the hardware's verdict — which can be wrong in either direction when
  /// the fault injector fires. Returns the pipeline latency.
  TimeNs process_read_block(std::uint64_t vd_id, transport::DataBlock& block,
                            bool decrypt, bool& hw_ok);

  TimeNs lookup_latency() const { return params_.table_lookup_latency; }
  TimeNs pktgen_latency() const { return params_.pktgen_latency; }

  const FpgaStats& stats() const { return stats_; }
  FpgaParams& params() { return params_; }
  const sa::BlockCipher& cipher() const { return cipher_; }

 private:
  void flip_random_bit(std::vector<std::uint8_t>& data);

  FpgaParams params_;
  Rng rng_;
  sa::BlockCipher cipher_;
  FpgaStats stats_;
};

}  // namespace repro::dpu
