#include "dpu/resources.h"

namespace repro::dpu {
namespace {

ModuleUsage finish(std::string name, std::uint64_t luts,
                   std::uint64_t bram_bits, const FpgaDevice& dev) {
  ModuleUsage u;
  u.name = std::move(name);
  u.luts = luts;
  u.bram_bits = bram_bits;
  u.lut_pct = 100.0 * static_cast<double>(luts) /
              static_cast<double>(dev.total_luts);
  u.bram_pct = 100.0 * static_cast<double>(bram_bits) /
               static_cast<double>(dev.total_bram_bits);
  return u;
}

}  // namespace

std::vector<ModuleUsage> solar_resource_usage(const SolarHwConfig& cfg,
                                              const FpgaDevice& dev) {
  std::vector<ModuleUsage> out;

  // Addr: hashed lookup over outstanding READ packets. Logic scales with
  // entry count (hash, comparators, free-list), storage with entry bits.
  out.push_back(finish(
      "Addr",
      1200 + static_cast<std::uint64_t>(cfg.addr_entries * 0.78),
      static_cast<std::uint64_t>(cfg.addr_entries) * cfg.addr_entry_bits,
      dev));

  // Block: plain match-action table; lookup logic is tiny, storage is the
  // segment map.
  out.push_back(finish(
      "Block", 400 + static_cast<std::uint64_t>(cfg.block_entries * 0.01),
      static_cast<std::uint64_t>(cfg.block_entries) * cfg.block_entry_bits,
      dev));

  // QoS: token-bucket update per VD.
  out.push_back(finish(
      "QoS", 300 + static_cast<std::uint64_t>(cfg.qos_entries * 0.2),
      static_cast<std::uint64_t>(cfg.qos_entries) * cfg.qos_entry_bits, dev));

  // SEC: wide pipelined cipher; logic scales with datapath width, BRAM
  // holds round keys / s-boxes.
  out.push_back(finish(
      "SEC", static_cast<std::uint64_t>(cfg.datapath_bits * 28.6),
      static_cast<std::uint64_t>(cfg.datapath_bits) * 640, dev));

  // CRC: a XOR tree over the datapath; no storage at all.
  out.push_back(
      finish("CRC", static_cast<std::uint64_t>(cfg.datapath_bits) * 3 + 33, 0,
             dev));

  std::uint64_t luts = 0;
  std::uint64_t bram = 0;
  for (const auto& m : out) {
    luts += m.luts;
    bram += m.bram_bits;
  }
  out.push_back(finish("Total", luts, bram, dev));
  return out;
}

}  // namespace repro::dpu
