#include "dpu/fpga.h"

#include "common/crc32.h"

namespace repro::dpu {

void FpgaPipeline::flip_random_bit(std::vector<std::uint8_t>& data) {
  if (data.empty()) return;
  const std::size_t byte = rng_.next_below(data.size());
  data[byte] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
}

TimeNs FpgaPipeline::process_write_block(std::uint64_t vd_id,
                                         transport::DataBlock& block,
                                         bool encrypt) {
  ++stats_.blocks_processed;
  TimeNs latency = params_.crc_latency;
  // Figure 12 stage order: CRC over the plaintext, then SEC. The CRC in
  // the EBS header therefore always covers the guest's original bytes.
  //
  // Corruption *before* the CRC stage: the CRC matches the corrupted
  // bytes, so no per-block check anywhere can see it — only the software
  // aggregation against the guest's original data does.
  if (block.has_payload() &&
      rng_.bernoulli(params_.faults.pre_crc_bitflip_rate)) {
    flip_random_bit(block.data);
    ++stats_.pre_crc_bitflips;
  }
  block.crc = block.has_payload()
                  ? crc32_raw(block.data)
                  : static_cast<std::uint32_t>(block.lba * 2654435761u);
  if (rng_.bernoulli(params_.faults.crc_engine_error_rate)) {
    block.crc ^= 1u << rng_.next_below(32);
    ++stats_.crc_engine_errors;
  }
  // Corruption after the CRC stage (e.g. on the way to SEC/PktGen).
  if (block.has_payload() &&
      rng_.bernoulli(params_.faults.data_bitflip_rate)) {
    flip_random_bit(block.data);
    ++stats_.data_bitflips;
  }
  if (encrypt) {
    latency += params_.sec_latency;
    if (block.has_payload()) cipher_.apply(vd_id, block.lba, block.data);
  }
  return latency + params_.pktgen_latency;
}

TimeNs FpgaPipeline::process_read_block(std::uint64_t vd_id,
                                        transport::DataBlock& block,
                                        bool decrypt, bool& hw_ok) {
  ++stats_.blocks_processed;
  TimeNs latency = params_.crc_latency;
  // Reverse of the write pipeline: SEC decrypt first, then the CRC check
  // against the plaintext CRC carried in the EBS header.
  if (decrypt) {
    latency += params_.sec_latency;
    if (block.has_payload()) cipher_.apply(vd_id, block.lba, block.data);
  }
  // Bit flip on the inbound path before the CRC engine sees the data: the
  // hardware check itself would catch this one...
  if (block.has_payload() &&
      rng_.bernoulli(params_.faults.data_bitflip_rate)) {
    flip_random_bit(block.data);
    ++stats_.data_bitflips;
  }
  hw_ok = !block.has_payload() || crc32_raw(block.data) == block.crc;
  // ...but a faulty CRC engine can report the wrong verdict.
  if (rng_.bernoulli(params_.faults.crc_engine_error_rate)) {
    hw_ok = !hw_ok;
    ++stats_.crc_engine_errors;
  }
  // Bit flip after the check (on the DMA path to guest memory): per-block
  // verification passed, data is corrupt — aggregation's job again.
  if (block.has_payload() &&
      rng_.bernoulli(params_.faults.pre_crc_bitflip_rate)) {
    flip_random_bit(block.data);
    ++stats_.pre_crc_bitflips;
  }
  return latency;
}

}  // namespace repro::dpu
