// FPGA resource cost model for Table 3.
//
// The paper reports SOLAR's LUT/BRAM consumption per module on ALI-DPU.
// We cannot synthesize RTL here, so this is a *cost model*: per-module
// formulas in terms of the configured table geometries and datapath
// widths, with coefficients calibrated so the default SOLAR configuration
// lands at the paper's utilization. The point the model preserves is the
// paper's: the entire SOLAR data path fits in a sliver of the FPGA
// (<10% LUTs, <20% BRAM), because the one-block-one-packet design needs
// no reassembly buffers or connection state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace repro::dpu {

/// Mid-range datacenter FPGA (Xilinx KU15P-class).
struct FpgaDevice {
  std::uint64_t total_luts = 523'000;
  std::uint64_t total_bram_bits = 984ull * 36 * 1024;  // 36Kb blocks
};

struct SolarHwConfig {
  // Addr table: one entry per outstanding READ packet (rpc id, pkt id,
  // guest address, length) — §4.5, Figure 13.
  std::uint32_t addr_entries = 32768;
  std::uint32_t addr_entry_bits = 90;  // rpc id + pkt id + guest addr + len
  // Block (segment) table: VD LBA range -> segment/server mapping
  // (compressed: segment base + server index).
  std::uint32_t block_entries = 65536;
  std::uint32_t block_entry_bits = 48;
  // QoS table: per-VD token state.
  std::uint32_t qos_entries = 1024;
  std::uint32_t qos_entry_bits = 128;
  // Datapath width in bits (affects CRC/SEC/PktGen logic).
  std::uint32_t datapath_bits = 512;
};

struct ModuleUsage {
  std::string name;
  std::uint64_t luts = 0;
  std::uint64_t bram_bits = 0;
  double lut_pct = 0.0;
  double bram_pct = 0.0;
};

/// Per-module usage (Addr, Block, QoS, SEC, CRC) plus a "Total" row,
/// mirroring Table 3's layout.
std::vector<ModuleUsage> solar_resource_usage(const SolarHwConfig& cfg,
                                              const FpgaDevice& dev = {});

}  // namespace repro::dpu
