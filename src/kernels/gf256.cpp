#include "kernels/gf256.h"

#include <cstdlib>

namespace repro::kernels {
namespace {

Gf256 build_tables() {
  Gf256 t{};
  std::uint32_t x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if ((x & 0x100u) != 0) x ^= 0x11Du;
  }
  // Doubled exp: exp[a + b] works without a mod-255 per multiply.
  for (int i = 255; i < 510; ++i) {
    t.exp[static_cast<std::size_t>(i)] = t.exp[static_cast<std::size_t>(i - 255)];
  }

  // Padded pair: log_pad[0] parks v == 0 in the zero region of exp_pad.
  for (int v = 0; v < 256; ++v) {
    t.log_pad[v] = v == 0 ? 512 : t.log[v];
  }
  for (int i = 0; i < 510; ++i) t.exp_pad[i] = t.exp[i];
  for (int i = 510; i < 768; ++i) t.exp_pad[i] = 0;

  // Split-nibble pshufb tables.
  auto mul = [&t](std::uint8_t a, std::uint8_t b) -> std::uint8_t {
    if (a == 0 || b == 0) return 0;
    return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
  };
  for (int c = 0; c < 256; ++c) {
    for (int i = 0; i < 16; ++i) {
      t.nib_lo[c][i] = mul(static_cast<std::uint8_t>(c),
                           static_cast<std::uint8_t>(i));
      t.nib_hi[c][i] = mul(static_cast<std::uint8_t>(c),
                           static_cast<std::uint8_t>(i << 4));
    }
  }
  return t;
}

}  // namespace

const Gf256& gf256() {
  static const Gf256 t = build_tables();
  return t;
}

std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Gf256& t = gf256();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t gf256_inv(std::uint8_t a) {
  if (a == 0) std::abort();  // division by zero: codec invariant broken
  const Gf256& t = gf256();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

}  // namespace repro::kernels
