// GF(256) arithmetic tables (polynomial 0x11D), shared by every kernel tier.
//
// Beyond the classic log/exp pair this carries two derived forms:
//
//  * a PADDED log/exp pair making scalar multiply-accumulate branch-free:
//    log_pad[0] = 512 and exp_pad[510..767] = 0, so
//        exp_pad[log[c] + log_pad[v]]
//    is c*v for every v INCLUDING v == 0 (index <= 254 + 512 = 766) — no
//    per-byte `if (v != 0)` mispredicting on random payloads;
//
//  * per-coefficient split-nibble tables for `pshufb`: for each c,
//    nib_lo[c][i] = c * i and nib_hi[c][i] = c * (i << 4), so
//        c * v == nib_lo[c][v & 0xF] ^ nib_hi[c][v >> 4]
//    (GF(256) multiply distributes over the XOR-decomposition of v). 16-byte
//    aligned so the vector tiers can load them straight into registers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace repro::kernels {

struct Gf256 {
  std::uint8_t exp[512];       ///< doubled: exp[i] = g^(i mod 255), i < 510
  std::uint8_t log[256];       ///< log[0] unused (callers check)
  std::uint16_t log_pad[256];  ///< log_pad[0] = 512, else log[v]
  std::uint8_t exp_pad[768];   ///< exp_pad[0..509] = exp, exp_pad[510..] = 0
  alignas(16) std::uint8_t nib_lo[256][16];
  alignas(16) std::uint8_t nib_hi[256][16];
};

/// The singleton tables (built on first use, ~24 KB).
const Gf256& gf256();

std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; aborts on 0 (a codec invariant, never data-driven).
std::uint8_t gf256_inv(std::uint8_t a);

}  // namespace repro::kernels
