// Internal seams between the dispatcher and the per-tier translation units.
// Each vector TU is compiled with its own -m flags and exports either its op
// table or nullptr when the compiler/arch can't build it; dispatch.cpp snaps
// the pieces together after CPUID.
#pragma once

#include <cstddef>
#include <cstdint>

namespace repro::kernels::detail {

/// The GF/XOR portion of a tier (CRC is composed separately so the CLMUL
/// kernel can ride any vector tier).
struct TierOps {
  void (*gf_mul_acc)(std::uint8_t c, const std::uint8_t* in, std::uint8_t* out,
                     std::size_t n);
  void (*ec_encode)(std::size_t k, std::size_t m,
                    const std::uint8_t* const* coef_rows,
                    const std::uint8_t* const* data,
                    std::uint8_t* const* parity, std::size_t n);
  void (*xor_acc)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);
};

const TierOps* scalar_ops();
const TierOps* ssse3_ops();  ///< nullptr when not compiled for x86+SSSE3
const TierOps* avx2_ops();   ///< nullptr when not compiled for x86+AVX2

using CrcFn = std::uint32_t (*)(std::uint32_t state, const std::uint8_t* data,
                                std::size_t n);

/// Slice-by-8 scalar CRC-32 (raw register form) — the reference kernel and
/// the sub-64-byte / tail path of the CLMUL kernel.
std::uint32_t crc32_slice8(std::uint32_t state, const std::uint8_t* data,
                           std::size_t n);

/// PCLMULQDQ 64-byte folding kernel, or nullptr when not compiled in.
CrcFn crc32_clmul_fn();

/// Branch-free scalar multiply-accumulate — also the vector tiers' tail.
void mul_acc_scalar(std::uint8_t c, const std::uint8_t* in, std::uint8_t* out,
                    std::size_t n);

}  // namespace repro::kernels::detail
