// Scalar reference tier. Portable, allocation-free, and the semantic ground
// truth every vector tier must match bit-for-bit.
#include <bit>
#include <cstring>

#include "kernels/gf256.h"
#include "kernels/internal.h"

namespace repro::kernels::detail {
namespace {

void xor_acc_scalar(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void ec_encode_scalar(std::size_t k, std::size_t m,
                      const std::uint8_t* const* coef_rows,
                      const std::uint8_t* const* data,
                      std::uint8_t* const* parity, std::size_t n) {
  for (std::size_t q = 0; q < m; ++q) std::memset(parity[q], 0, n);
  // Fragment-major: each 4 KB data fragment stays cache-hot across all m
  // parity rows instead of being re-streamed once per row.
  for (std::size_t p = 0; p < k; ++p) {
    if (data[p] == nullptr) continue;
    for (std::size_t q = 0; q < m; ++q) {
      mul_acc_scalar(coef_rows[q][p], data[p], parity[q], n);
    }
  }
}

// --- CRC-32, slice-by-8 -----------------------------------------------------

constexpr std::uint32_t kPoly = 0xEDB88320u;

struct CrcTables {
  std::uint32_t t[8][256];
};

CrcTables build_crc_tables() {
  CrcTables tab{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int j = 0; j < 8; ++j) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    tab.t[0][i] = c;
  }
  for (int s = 1; s < 8; ++s) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tab.t[s][i] = tab.t[0][tab.t[s - 1][i] & 0xFFu] ^ (tab.t[s - 1][i] >> 8);
    }
  }
  return tab;
}

const CrcTables& crc_tables() {
  static const CrcTables tab = build_crc_tables();
  return tab;
}

}  // namespace

void mul_acc_scalar(std::uint8_t c, const std::uint8_t* in, std::uint8_t* out,
                    std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_acc_scalar(out, in, n);
    return;
  }
  const Gf256& t = gf256();
  const std::uint16_t lc = t.log[c];
  // Branch-free: v == 0 indexes the zero region of exp_pad via log_pad.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] ^= t.exp_pad[static_cast<std::size_t>(lc) + t.log_pad[in[i]]];
  }
}

std::uint32_t crc32_slice8(std::uint32_t state, const std::uint8_t* data,
                           std::size_t n) {
  const CrcTables& tab = crc_tables();
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    for (; i + 8 <= n; i += 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, data + i, 4);
      std::memcpy(&hi, data + i + 4, 4);
      lo ^= state;
      state = tab.t[7][lo & 0xFFu] ^ tab.t[6][(lo >> 8) & 0xFFu] ^
              tab.t[5][(lo >> 16) & 0xFFu] ^ tab.t[4][lo >> 24] ^
              tab.t[3][hi & 0xFFu] ^ tab.t[2][(hi >> 8) & 0xFFu] ^
              tab.t[1][(hi >> 16) & 0xFFu] ^ tab.t[0][hi >> 24];
    }
  }
  for (; i < n; ++i) {
    state = tab.t[0][(state ^ data[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

const TierOps* scalar_ops() {
  static const TierOps ops = {&mul_acc_scalar, &ec_encode_scalar,
                              &xor_acc_scalar};
  return &ops;
}

}  // namespace repro::kernels::detail
