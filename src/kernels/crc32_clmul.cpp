// PCLMULQDQ-folded CRC-32 (reflected, poly 0xEDB88320), after Gopal et al.,
// "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ" (Intel,
// 2009) — the same fold structure zlib and the kernel use. Four 128-bit
// accumulators fold 64 input bytes per step; the accumulators then collapse
// 4→1, 128→64 bits, and a Barrett reduction yields the 32-bit register.
// Sub-64-byte inputs and tails ride the scalar slice-by-8 kernel, which is
// bit-identical by construction (the cross-tier suite checks every length).
#if defined(__PCLMUL__) && (defined(__x86_64__) || defined(__i386__))

#include <smmintrin.h>
#include <wmmintrin.h>

#include "kernels/internal.h"

namespace repro::kernels::detail {
namespace {

// Folding constants for the reflected polynomial (bit-reversed, +1 bit):
//   k1 = x^(4*128+32) mod P, k2 = x^(4*128-32) mod P   (64-byte fold)
//   k3 = x^(128+32)  mod P,  k4 = x^(128-32)  mod P    (16-byte fold)
//   k5 = x^64 mod P                                     (128 -> 64 bits)
//   P' = reciprocal polynomial, mu = floor(x^64 / P)    (Barrett)
alignas(16) const std::uint64_t kK1K2[2] = {0x0154442bd4, 0x01c6e41596};
alignas(16) const std::uint64_t kK3K4[2] = {0x01751997d0, 0x00ccaa009e};
alignas(16) const std::uint64_t kK5K0[2] = {0x0163cd6124, 0x0000000000};
alignas(16) const std::uint64_t kPolyMu[2] = {0x01db710641, 0x01f7011641};

/// Requires n >= 64 and n % 16 == 0.
std::uint32_t fold_core(std::uint32_t state, const std::uint8_t* buf,
                        std::size_t n) {
  const __m128i* p = reinterpret_cast<const __m128i*>(buf);
  __m128i x1 = _mm_loadu_si128(p + 0);
  __m128i x2 = _mm_loadu_si128(p + 1);
  __m128i x3 = _mm_loadu_si128(p + 2);
  __m128i x4 = _mm_loadu_si128(p + 3);
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
  __m128i k = _mm_load_si128(reinterpret_cast<const __m128i*>(kK1K2));
  p += 4;
  n -= 64;

  while (n >= 64) {
    const __m128i f1 = _mm_clmulepi64_si128(x1, k, 0x00);
    const __m128i f2 = _mm_clmulepi64_si128(x2, k, 0x00);
    const __m128i f3 = _mm_clmulepi64_si128(x3, k, 0x00);
    const __m128i f4 = _mm_clmulepi64_si128(x4, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f1), _mm_loadu_si128(p + 0));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, f2), _mm_loadu_si128(p + 1));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, f3), _mm_loadu_si128(p + 2));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, f4), _mm_loadu_si128(p + 3));
    p += 4;
    n -= 64;
  }

  // Collapse the four accumulators into x1.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(kK3K4));
  __m128i f = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x2);
  f = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x3);
  f = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, f), x4);

  // Remaining 16-byte blocks.
  while (n >= 16) {
    f = _mm_clmulepi64_si128(x1, k, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, f), _mm_loadu_si128(p));
    ++p;
    n -= 16;
  }

  // 128 -> 64 bits.
  const __m128i low32 = _mm_setr_epi32(~0, 0, ~0, 0);
  f = _mm_clmulepi64_si128(x1, k, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, f);
  k = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kK5K0));
  f = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, low32);
  x1 = _mm_clmulepi64_si128(x1, k, 0x00);
  x1 = _mm_xor_si128(x1, f);

  // Barrett reduction to 32 bits.
  k = _mm_load_si128(reinterpret_cast<const __m128i*>(kPolyMu));
  f = _mm_and_si128(x1, low32);
  f = _mm_clmulepi64_si128(f, k, 0x10);
  f = _mm_and_si128(f, low32);
  f = _mm_clmulepi64_si128(f, k, 0x00);
  x1 = _mm_xor_si128(x1, f);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

std::uint32_t crc32_clmul(std::uint32_t state, const std::uint8_t* data,
                          std::size_t n) {
  if (n >= 64) {
    const std::size_t folded = n & ~static_cast<std::size_t>(15);
    state = fold_core(state, data, folded);
    data += folded;
    n -= folded;
  }
  return crc32_slice8(state, data, n);
}

}  // namespace

CrcFn crc32_clmul_fn() { return &crc32_clmul; }

}  // namespace repro::kernels::detail

#else  // !(__PCLMUL__ && x86)

#include "kernels/internal.h"

namespace repro::kernels::detail {
CrcFn crc32_clmul_fn() { return nullptr; }
}  // namespace repro::kernels::detail

#endif
