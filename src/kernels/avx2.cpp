// AVX2 tier: 32-byte `vpshufb` split-nibble GF(256) kernels. Same algorithm
// as the SSSE3 tier with the 16-byte nibble tables broadcast to both 128-bit
// lanes (vpshufb shuffles within lanes, which is exactly what a 16-entry
// table wants). See ssse3.cpp for the fused-encode structure.
#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cstring>

#include "kernels/gf256.h"
#include "kernels/internal.h"

namespace repro::kernels::detail {
namespace {

void xor_acc_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

__m256i broadcast16(const std::uint8_t* table) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(table)));
}

void mul_acc_avx2(std::uint8_t c, const std::uint8_t* in, std::uint8_t* out,
                  std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_acc_avx2(out, in, n);
    return;
  }
  const Gf256& t = gf256();
  const __m256i lo = broadcast16(t.nib_lo[c]);
  const __m256i hi = broadcast16(t.nib_hi[c]);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
    const __m256i h = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
    const __m256i o =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_xor_si256(o, _mm256_xor_si256(l, h)));
  }
  mul_acc_scalar(c, in + i, out + i, n - i);
}

struct Row {
  __m256i lo;
  __m256i hi;
  std::uint8_t* out;
  std::uint8_t c;
};

// One sweep of `in` updating R parity rows, R a compile-time constant so the
// inner loop fully unrolls and the 2*R nibble tables stay in ymm registers
// (R = 4 -> 8 table regs + v/l/h/mask/prod/o comfortably fits the 16 ymms).
// Reloading tables from the Row array per chunk is what made a fused sweep
// lose to row-at-a-time mul_acc on L1-resident cells.
template <int R>
void encode_group(const std::uint8_t* in, const Row* rows, std::size_t n,
                  const __m256i mask) {
  __m256i lo[R];
  __m256i hi[R];
  std::uint8_t* out[R];
  for (int r = 0; r < R; ++r) {
    lo[r] = rows[r].lo;
    hi[r] = rows[r].hi;
    out[r] = rows[r].out;
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i l = _mm256_and_si256(v, mask);
    const __m256i h = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    for (int r = 0; r < R; ++r) {
      const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(lo[r], l),
                                            _mm256_shuffle_epi8(hi[r], h));
      const __m256i o =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out[r] + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out[r] + i),
                          _mm256_xor_si256(o, prod));
    }
  }
  for (int r = 0; r < R; ++r) {
    mul_acc_scalar(rows[r].c, in + i, out[r] + i, n - i);
  }
}

void ec_encode_avx2(std::size_t k, std::size_t m,
                    const std::uint8_t* const* coef_rows,
                    const std::uint8_t* const* data,
                    std::uint8_t* const* parity, std::size_t n) {
  for (std::size_t q = 0; q < m; ++q) std::memset(parity[q], 0, n);
  const Gf256& t = gf256();
  const __m256i mask = _mm256_set1_epi8(0x0F);
  constexpr std::size_t kMaxRows = 128;  // codec caps k + m at 128
  Row rows[kMaxRows];
  for (std::size_t p = 0; p < k; ++p) {
    const std::uint8_t* in = data[p];
    if (in == nullptr) continue;
    std::size_t nr = 0;
    for (std::size_t q = 0; q < m; ++q) {
      const std::uint8_t c = coef_rows[q][p];
      if (c == 0) continue;
      rows[nr].lo = broadcast16(t.nib_lo[c]);
      rows[nr].hi = broadcast16(t.nib_hi[c]);
      rows[nr].out = parity[q];
      rows[nr].c = c;
      ++nr;
    }
    std::size_t r = 0;
    for (; r + 4 <= nr; r += 4) encode_group<4>(in, rows + r, n, mask);
    switch (nr - r) {
      case 3: encode_group<3>(in, rows + r, n, mask); break;
      case 2: encode_group<2>(in, rows + r, n, mask); break;
      case 1: encode_group<1>(in, rows + r, n, mask); break;
      default: break;
    }
  }
}

}  // namespace

const TierOps* avx2_ops() {
  static const TierOps ops = {&mul_acc_avx2, &ec_encode_avx2, &xor_acc_avx2};
  return &ops;
}

}  // namespace repro::kernels::detail

#else  // !(__AVX2__ && x86)

#include "kernels/internal.h"

namespace repro::kernels::detail {
const TierOps* avx2_ops() { return nullptr; }
}  // namespace repro::kernels::detail

#endif
