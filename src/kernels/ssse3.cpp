// SSSE3 tier: 16-byte `pshufb` split-nibble GF(256) kernels.
//
// A pshufb against the per-coefficient nibble tables is a 16-wide GF(256)
// multiply: product = nib_lo[c][v & 0xF] ^ nib_hi[c][v >> 4] lane-wise. The
// fused encode extracts each data vector's nibbles ONCE and replays them
// against every parity row's tables, so m rows cost one load + two pshufb/
// xor pairs per row instead of m full passes over the fragment.
//
// Compiled with -mssse3 only; nothing here runs unless CPUID said the host
// has SSSE3 (dispatch.cpp). Falls out as a nullptr stub off x86.
#if defined(__SSSE3__) && (defined(__x86_64__) || defined(__i386__))

#include <tmmintrin.h>

#include <cstring>

#include "kernels/gf256.h"
#include "kernels/internal.h"

namespace repro::kernels::detail {
namespace {

void xor_acc_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(a, b));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mul_acc_ssse3(std::uint8_t c, const std::uint8_t* in, std::uint8_t* out,
                   std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_acc_ssse3(out, in, n);
    return;
  }
  const Gf256& t = gf256();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
    const __m128i h =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    const __m128i o =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_xor_si128(o, _mm_xor_si128(l, h)));
  }
  mul_acc_scalar(c, in + i, out + i, n - i);
}

struct Row {
  __m128i lo;
  __m128i hi;
  std::uint8_t* out;
  std::uint8_t c;
};

// One sweep of `in` updating R parity rows with the 2*R nibble tables held in
// xmm registers (R is a compile-time constant so the row loop fully unrolls).
// See avx2.cpp for why: per-chunk table reloads from the Row array made a
// fused sweep lose to row-at-a-time mul_acc on L1-resident cells.
template <int R>
void encode_group(const std::uint8_t* in, const Row* rows, std::size_t n,
                  const __m128i mask) {
  __m128i lo[R];
  __m128i hi[R];
  std::uint8_t* out[R];
  for (int r = 0; r < R; ++r) {
    lo[r] = rows[r].lo;
    hi[r] = rows[r].hi;
    out[r] = rows[r].out;
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i l = _mm_and_si128(v, mask);
    const __m128i h = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    for (int r = 0; r < R; ++r) {
      const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(lo[r], l),
                                         _mm_shuffle_epi8(hi[r], h));
      const __m128i o =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(out[r] + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out[r] + i),
                       _mm_xor_si128(o, prod));
    }
  }
  for (int r = 0; r < R; ++r) {
    mul_acc_scalar(rows[r].c, in + i, out[r] + i, n - i);
  }
}

void ec_encode_ssse3(std::size_t k, std::size_t m,
                     const std::uint8_t* const* coef_rows,
                     const std::uint8_t* const* data,
                     std::uint8_t* const* parity, std::size_t n) {
  for (std::size_t q = 0; q < m; ++q) std::memset(parity[q], 0, n);
  const Gf256& t = gf256();
  const __m128i mask = _mm_set1_epi8(0x0F);
  constexpr std::size_t kMaxRows = 128;  // codec caps k + m at 128
  Row rows[kMaxRows];
  for (std::size_t p = 0; p < k; ++p) {
    const std::uint8_t* in = data[p];
    if (in == nullptr) continue;
    std::size_t nr = 0;
    for (std::size_t q = 0; q < m; ++q) {
      const std::uint8_t c = coef_rows[q][p];
      if (c == 0) continue;
      rows[nr].lo =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c]));
      rows[nr].hi =
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c]));
      rows[nr].out = parity[q];
      rows[nr].c = c;
      ++nr;
    }
    std::size_t r = 0;
    for (; r + 4 <= nr; r += 4) encode_group<4>(in, rows + r, n, mask);
    switch (nr - r) {
      case 3: encode_group<3>(in, rows + r, n, mask); break;
      case 2: encode_group<2>(in, rows + r, n, mask); break;
      case 1: encode_group<1>(in, rows + r, n, mask); break;
      default: break;
    }
  }
}

}  // namespace

const TierOps* ssse3_ops() {
  static const TierOps ops = {&mul_acc_ssse3, &ec_encode_ssse3,
                              &xor_acc_ssse3};
  return &ops;
}

}  // namespace repro::kernels::detail

#else  // !(__SSSE3__ && x86)

#include "kernels/internal.h"

namespace repro::kernels::detail {
const TierOps* ssse3_ops() { return nullptr; }
}  // namespace repro::kernels::detail

#endif
