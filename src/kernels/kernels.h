// Dispatched data-plane kernel library (`repro_kernels`).
//
// The simulator *really* computes the bytes its data plane claims to move:
// every EC write multiplies 4 KB cells over GF(256), every SOLAR block and
// chaos shadow-CRC audit runs a CRC-32, every aggregate check XORs blocks.
// Those inner loops are the software analogue of the paper's offload story —
// the work SOLAR pushes onto the FPGA/P4 engines is exactly the work a host
// burns general-purpose cycles on. This library gives the repo an ISA-L-style
// kernel layer: one scalar reference tier plus SSSE3 (`pshufb` split-nibble)
// and AVX2 vector tiers, selected once at process start.
//
// Hard invariant (carried from PR 1/2's determinism work): every tier returns
// BIT-IDENTICAL results. GF(256) and CRC arithmetic are exact, so a seeded
// simulation's metrics, traces, and chaos signatures can never depend on the
// host ISA. The cross-tier property suite (tests/kernels_test.cpp) and the
// forced-scalar CI job enforce this.
//
// Dispatch rules:
//  * The tier is chosen once, on first use, from CPUID: AVX2 > SSSE3 >
//    scalar. CRC-32 additionally upgrades to a CLMUL-folded kernel on the
//    vector tiers when the CPU has PCLMULQDQ (scalar tier always runs
//    slice-by-8, so pinning "scalar" pins *everything* scalar).
//  * `REPRO_KERNEL_DISPATCH=scalar|ssse3|avx2` pins the process to one tier
//    so CI can force the reference tier or test a specific one. A pin that
//    names an unknown or hardware-unavailable tier aborts loudly — a pinned
//    run must never silently fall back to a different kernel.
//  * `set_tier()` lets tests and benches sweep tiers programmatically, but
//    only within `available_tiers()` — which an env pin narrows to the
//    pinned tier, so a pinned process stays pinned even through the sweeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace repro::kernels {

enum class Tier : int {
  kScalar = 0,  ///< portable reference; branch-free table walk
  kSsse3 = 1,   ///< 16-byte `pshufb` split-nibble GF(256)
  kAvx2 = 2,    ///< 32-byte `vpshufb` GF(256)
};

/// One tier's kernel table. All function pointers are non-null.
struct Kernels {
  Tier tier;
  bool crc_is_clmul;  ///< CRC-32 runs the PCLMULQDQ folding kernel

  /// out[i] ^= c * in[i] over GF(256) for n bytes — the multiply-accumulate
  /// every RS encode/decode path reduces to. c == 0 is a no-op, c == 1 is a
  /// pure XOR.
  void (*gf_mul_acc)(std::uint8_t c, const std::uint8_t* in, std::uint8_t* out,
                     std::size_t n);

  /// Fused multi-row encode: parity[q][i] = XOR_p coef_rows[q][p] * data[p][i]
  /// for q in [0, m), p in [0, k), i in [0, n). Parity buffers are zeroed
  /// first; data[p] == nullptr means an absent (all-zero) fragment. Each data
  /// fragment is swept ONCE with all m parity rows updated in the same pass
  /// (nibble extraction shared across rows), instead of m separate mul_acc
  /// sweeps re-streaming every fragment.
  void (*ec_encode)(std::size_t k, std::size_t m,
                    const std::uint8_t* const* coef_rows,
                    const std::uint8_t* const* data,
                    std::uint8_t* const* parity, std::size_t n);

  /// Raw-register CRC-32 (reflected, poly 0xEDB88320): no init/final XOR,
  /// feed the return value back in as `state` to stream. Scalar tier is
  /// slice-by-8; vector tiers fold 64 bytes per step with PCLMULQDQ when
  /// available.
  std::uint32_t (*crc32_update)(std::uint32_t state, const std::uint8_t* data,
                                std::size_t n);

  /// dst[i] ^= src[i] for n bytes, word-wide.
  void (*xor_acc)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);
};

/// The active tier's kernels. First call resolves dispatch (CPUID + the
/// REPRO_KERNEL_DISPATCH pin); later calls are a pointer read. Thread-safe
/// to call; `set_tier` must not race in-flight kernels (tests/benches switch
/// tiers only between runs).
const Kernels& active();

/// Tiers usable in this process: hardware-supported, narrowed to the pinned
/// tier when REPRO_KERNEL_DISPATCH is set. Always contains kScalar or is
/// exactly {pinned}. Ordered scalar first.
std::vector<Tier> available_tiers();

/// Repoints `active()` at `tier`. Returns false (and changes nothing) if the
/// tier is not in `available_tiers()`.
bool set_tier(Tier tier);

/// Highest tier in `available_tiers()` — what first-use dispatch picks.
Tier best_tier();

const char* tier_name(Tier tier);
std::optional<Tier> tier_from_string(std::string_view name);

}  // namespace repro::kernels
