// Runtime tier selection. Resolved exactly once, on first use: CPUID decides
// what the host can run, REPRO_KERNEL_DISPATCH optionally pins one tier, and
// the winning tier's table becomes `active()`. See kernels.h for the rules.
#include "kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/internal.h"

namespace repro::kernels {
namespace {

constexpr int kNumTiers = 3;

struct Dispatch {
  bool hw[kNumTiers] = {true, false, false};  // scalar always runs
  bool pinned = false;
  Tier pin = Tier::kScalar;
  Kernels tables[kNumTiers] = {};
  const Kernels* current = nullptr;
};

[[noreturn]] void die(const char* msg, const char* value) {
  std::fprintf(stderr,
               "repro_kernels: REPRO_KERNEL_DISPATCH=%s %s; "
               "valid tiers: scalar, ssse3, avx2\n",
               value, msg);
  std::abort();  // a pinned run must never silently run a different kernel
}

Dispatch init_dispatch() {
  Dispatch d;
  const detail::TierOps* ops[kNumTiers] = {detail::scalar_ops(),
                                           detail::ssse3_ops(),
                                           detail::avx2_ops()};
  bool clmul = false;
#if defined(__x86_64__) || defined(__i386__)
  d.hw[1] = ops[1] != nullptr && __builtin_cpu_supports("ssse3");
  d.hw[2] = ops[2] != nullptr && __builtin_cpu_supports("avx2");
  clmul = detail::crc32_clmul_fn() != nullptr &&
          __builtin_cpu_supports("pclmul");
#endif

  for (int i = 0; i < kNumTiers; ++i) {
    if (!d.hw[i]) continue;
    Kernels& t = d.tables[i];
    t.tier = static_cast<Tier>(i);
    t.gf_mul_acc = ops[i]->gf_mul_acc;
    t.ec_encode = ops[i]->ec_encode;
    t.xor_acc = ops[i]->xor_acc;
    // Scalar means scalar: only the vector tiers upgrade CRC to CLMUL, so a
    // forced-scalar run exercises the pure reference path end to end.
    t.crc_is_clmul = i != 0 && clmul;
    t.crc32_update =
        t.crc_is_clmul ? detail::crc32_clmul_fn() : &detail::crc32_slice8;
  }

  Tier chosen = Tier::kScalar;
  for (int i = kNumTiers - 1; i >= 0; --i) {
    if (d.hw[i]) {
      chosen = static_cast<Tier>(i);
      break;
    }
  }
  if (const char* env = std::getenv("REPRO_KERNEL_DISPATCH");
      env != nullptr && env[0] != '\0') {
    const auto parsed = tier_from_string(env);
    if (!parsed.has_value()) die("is not a known tier", env);
    if (!d.hw[static_cast<int>(*parsed)]) {
      die("is not available on this host", env);
    }
    d.pinned = true;
    d.pin = *parsed;
    chosen = *parsed;
  }
  d.current = &d.tables[static_cast<int>(chosen)];
  return d;
}

Dispatch& dispatch() {
  static Dispatch d = init_dispatch();
  return d;
}

}  // namespace

const Kernels& active() { return *dispatch().current; }

std::vector<Tier> available_tiers() {
  Dispatch& d = dispatch();
  if (d.pinned) return {d.pin};
  std::vector<Tier> tiers;
  for (int i = 0; i < kNumTiers; ++i) {
    if (d.hw[i]) tiers.push_back(static_cast<Tier>(i));
  }
  return tiers;
}

bool set_tier(Tier tier) {
  Dispatch& d = dispatch();
  const int i = static_cast<int>(tier);
  if (i < 0 || i >= kNumTiers || !d.hw[i]) return false;
  if (d.pinned && tier != d.pin) return false;
  d.current = &d.tables[i];
  return true;
}

Tier best_tier() {
  const auto tiers = available_tiers();
  return tiers.back();
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSsse3:
      return "ssse3";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<Tier> tier_from_string(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "ssse3") return Tier::kSsse3;
  if (name == "avx2") return Tier::kAvx2;
  return std::nullopt;
}

}  // namespace repro::kernels
