// A miniature P4-style architecture: parser -> match-action tables ->
// deparser/verdict, with externs for CRC and the cipher.
//
// §4.6's claim is that SOLAR's storage virtualization *is* a packet
// pipeline: "the functions in SA are essentially block reading, data
// computation, block writing, and table checking/maintaining, [so] the
// data path of SA can be expressed with the P4 language". This module
// makes the claim concrete: src/p4/solar_program.cpp builds the SOLAR SA
// data path out of these primitives, operating on the *real wire bytes*
// of proto/headers.h, and tests prove it equivalent to the FPGA model.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace repro::p4 {

/// Per-packet processing context: raw bytes in, parsed fields + verdict out.
struct PacketCtx {
  std::vector<std::uint8_t> bytes;
  std::map<std::string, std::uint64_t> fields;  ///< parsed + metadata
  std::vector<std::uint8_t> payload;
  bool dropped = false;
  std::string drop_reason;
  /// Final disposition set by actions: "to_dma", "to_cpu", "to_wire", ...
  std::string verdict;

  std::uint64_t field(const std::string& name) const {
    auto it = fields.find(name);
    return it == fields.end() ? 0 : it->second;
  }
  bool has_field(const std::string& name) const {
    return fields.contains(name);
  }
};

/// Fixed-layout little-endian header parser (a P4 parse graph with one
/// state per field; sufficient for SOLAR's flat headers).
class Parser {
 public:
  Parser& field(std::string name, int width_bytes);
  /// Remaining bytes become the payload; `expect_len_field`, if set, names
  /// a parsed field that must equal the payload length (else drop).
  Parser& payload_rest(std::string expect_len_field = {});

  /// Returns false (and marks dropped) on truncation/length mismatch.
  bool parse(PacketCtx& ctx) const;

 private:
  struct Field {
    std::string name;
    int width;
  };
  std::vector<Field> fields_;
  bool take_payload_ = false;
  std::string expect_len_field_;
};

/// Exact-match match-action table.
class Table {
 public:
  Table(std::string name, std::vector<std::string> key_fields)
      : name_(std::move(name)), key_fields_(std::move(key_fields)) {}

  struct Entry {
    std::string action;
    std::vector<std::uint64_t> args;
  };

  void add_entry(const std::vector<std::uint64_t>& key, std::string action,
                 std::vector<std::uint64_t> args = {});
  void set_default(std::string action, std::vector<std::uint64_t> args = {});

  const std::string& name() const { return name_; }
  const std::vector<std::string>& key_fields() const { return key_fields_; }
  /// nullptr when no entry matches and no default is set.
  const Entry* lookup(const PacketCtx& ctx) const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::string name_;
  std::vector<std::string> key_fields_;
  std::map<std::vector<std::uint64_t>, Entry> entries_;
  std::optional<Entry> default_;
};

using ActionFn =
    std::function<void(PacketCtx&, const std::vector<std::uint64_t>&)>;

/// A straight-line pipeline: parser, then each table in order (the matched
/// entry's action runs immediately — match-action), then done. Dropped
/// packets short-circuit.
class Pipeline {
 public:
  explicit Pipeline(std::string name) : name_(std::move(name)) {}

  void set_parser(Parser parser) { parser_ = std::move(parser); }
  Table& add_table(std::string name, std::vector<std::string> key_fields);
  Table* table(const std::string& name);
  void register_action(std::string name, ActionFn fn);

  /// Runs the packet; returns false if it was dropped.
  bool process(PacketCtx& ctx) const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Parser parser_;
  std::vector<Table> tables_;
  std::map<std::string, ActionFn> actions_;
};

}  // namespace repro::p4
