#include "p4/solar_program.h"

#include "common/crc32.h"
#include "proto/headers.h"

namespace repro::p4 {
namespace {

/// Parser for the SOLAR wire layout (RPC HDR | EBS HDR | payload), with
/// field names mirroring the header structs.
Parser solar_frame_parser() {
  Parser p;
  p.field("rpc.rpc_id", 8)
      .field("rpc.pkt_id", 2)
      .field("rpc.pkt_count", 2)
      .field("rpc.msg_type", 1)
      .field("rpc.flags", 1)
      .field("rpc.path_id", 2)
      .field("ebs.vd_id", 8)
      .field("ebs.segment_id", 8)
      .field("ebs.lba", 8)
      .field("ebs.block_len", 4)
      .field("ebs.payload_crc", 4)
      .field("ebs.op", 1)
      .field("ebs.version", 1)
      .field("ebs.qos_class", 2)
      .payload_rest("ebs.block_len");
  return p;
}

}  // namespace

Pipeline make_read_rx_pipeline(const SolarProgramConfig& cfg) {
  Pipeline pipe("solar-read-rx");
  pipe.set_parser(solar_frame_parser());

  // Stage 1: sanity — only READ responses enter this pipeline.
  auto& kind = pipe.add_table("msg_kind", {"rpc.msg_type"});
  kind.add_entry({static_cast<std::uint64_t>(
                     proto::RpcMsgType::kReadResponse)},
                 "accept");
  // (no default: anything else is a table miss == drop to CPU)

  // Stage 2: Addr table — (rpc_id, pkt_id) -> guest address (Fig. 13).
  auto& addr = pipe.add_table("addr", {"rpc.rpc_id", "rpc.pkt_id"});
  (void)addr;  // entries installed by the control plane (tests/caller)

  // Stage 3: SEC + CRC externs, then DMA.
  auto& integrity = pipe.add_table("integrity", {});
  integrity.set_default("check_and_dma");

  pipe.register_action("accept",
                       [](PacketCtx&, const std::vector<std::uint64_t>&) {});
  pipe.register_action(
      "dma", [](PacketCtx& ctx, const std::vector<std::uint64_t>& args) {
        ctx.fields["dma_addr"] = args.empty() ? 0 : args[0];
      });
  const auto key = cfg.cipher_key;
  const bool encrypt = cfg.encrypt;
  pipe.register_action(
      "check_and_dma",
      [key, encrypt](PacketCtx& ctx, const std::vector<std::uint64_t>&) {
        if (encrypt) {
          sa::BlockCipher cipher(key);
          cipher.apply(ctx.field("ebs.vd_id"), ctx.field("ebs.lba"),
                       ctx.payload);
        }
        if (crc32_raw(ctx.payload) != ctx.field("ebs.payload_crc")) {
          ctx.dropped = true;
          ctx.drop_reason = "crc_mismatch";
          return;
        }
        ctx.verdict = "to_dma";
      });
  return pipe;
}

Pipeline make_write_tx_pipeline(const SolarProgramConfig& cfg) {
  Pipeline pipe("solar-write-tx");
  // The write side has no wire parse: metadata comes via DMA doorbell.
  pipe.set_parser(Parser{});

  auto& qos = pipe.add_table("qos", {"nvme.vd"});
  (void)qos;  // per-VD entries installed by the control plane

  auto& block = pipe.add_table("block", {"nvme.vd", "nvme.segment_index"});
  (void)block;

  auto& datapath = pipe.add_table("datapath", {});
  datapath.set_default("crc_sec_pktgen");

  pipe.register_action("qos_pass",
                       [](PacketCtx&, const std::vector<std::uint64_t>&) {});
  pipe.register_action(
      "qos_drop", [](PacketCtx& ctx, const std::vector<std::uint64_t>&) {
        ctx.dropped = true;
        ctx.drop_reason = "qos_reject";
      });
  pipe.register_action(
      "route", [](PacketCtx& ctx, const std::vector<std::uint64_t>& args) {
        ctx.fields["route.segment_id"] = args.size() > 0 ? args[0] : 0;
        ctx.fields["route.server"] = args.size() > 1 ? args[1] : 0;
      });
  const auto key = cfg.cipher_key;
  const bool encrypt = cfg.encrypt;
  pipe.register_action(
      "crc_sec_pktgen",
      [key, encrypt](PacketCtx& ctx, const std::vector<std::uint64_t>&) {
        ctx.fields["ebs.payload_crc"] = crc32_raw(ctx.payload);
        if (encrypt) {
          sa::BlockCipher cipher(key);
          cipher.apply(ctx.field("nvme.vd"), ctx.field("nvme.lba"),
                       ctx.payload);
        }
        ctx.verdict = "to_wire";
      });
  return pipe;
}

}  // namespace repro::p4
