// SOLAR's SA data path expressed as P4-style pipelines (§4.6).
//
// Two programs cover the offloaded data path of Figures 12/13:
//
//  * WRITE TX: parse the (virtual) NVMe command metadata, run the QoS and
//    Block match-action stages, CRC + optional SEC externs, and emit the
//    packet — verdict "to_wire" with the segment/server resolved.
//  * READ RX: parse the SOLAR frame bytes, look up the Addr table by
//    (rpc_id, pkt_id), optional SEC decrypt, CRC-check the payload, and
//    DMA to the guest address — verdict "to_dma" (headers "to_cpu").
//
// The programs run on real wire bytes (proto/headers.h layouts). Tests in
// tests/p4_test.cpp prove the READ RX program's accept/reject behaviour
// matches the FPGA model on the same inputs.
#pragma once

#include <cstdint>

#include "p4/pipeline.h"
#include "sa/crypto.h"

namespace repro::p4 {

struct SolarProgramConfig {
  bool encrypt = false;
  std::uint64_t cipher_key = 0x5EC5EC5EC5EC5ECull;
};

/// READ RX pipeline: fields "rpc.*" / "ebs.*" parsed from the wire, Addr
/// table keyed (rpc.rpc_id, rpc.pkt_id) -> action "dma" {guest_addr}.
/// After processing, ctx.field("dma_addr") holds the landing address,
/// ctx.payload the (decrypted) block, verdict "to_dma". CRC failures drop
/// with reason "crc_mismatch".
Pipeline make_read_rx_pipeline(const SolarProgramConfig& cfg);

/// WRITE TX pipeline: metadata fields ("nvme.vd", "nvme.lba", "nvme.len")
/// are pre-populated by the caller (they arrive by DMA, not as a packet),
/// payload = the data block. QoS table keyed vd -> "qos_pass"/"qos_drop";
/// Block table keyed (vd, segment_index) -> "route" {segment_id, server}.
/// CRC extern fills field "ebs.payload_crc"; SEC encrypts in place.
/// Verdict "to_wire"; fields "route.segment_id" and "route.server" are the
/// PktGen inputs.
Pipeline make_write_tx_pipeline(const SolarProgramConfig& cfg);

}  // namespace repro::p4
