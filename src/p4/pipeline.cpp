#include "p4/pipeline.h"

namespace repro::p4 {

Parser& Parser::field(std::string name, int width_bytes) {
  fields_.push_back({std::move(name), width_bytes});
  return *this;
}

Parser& Parser::payload_rest(std::string expect_len_field) {
  take_payload_ = true;
  expect_len_field_ = std::move(expect_len_field);
  return *this;
}

bool Parser::parse(PacketCtx& ctx) const {
  std::size_t pos = 0;
  for (const auto& f : fields_) {
    if (pos + static_cast<std::size_t>(f.width) > ctx.bytes.size()) {
      ctx.dropped = true;
      ctx.drop_reason = "parser_underflow:" + f.name;
      return false;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < f.width; ++i) {
      v |= static_cast<std::uint64_t>(ctx.bytes[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    ctx.fields[f.name] = v;
    pos += static_cast<std::size_t>(f.width);
  }
  if (take_payload_) {
    ctx.payload.assign(ctx.bytes.begin() + static_cast<long>(pos),
                       ctx.bytes.end());
    if (!expect_len_field_.empty() &&
        ctx.field(expect_len_field_) != ctx.payload.size()) {
      ctx.dropped = true;
      ctx.drop_reason = "payload_length_mismatch";
      return false;
    }
  } else if (pos != ctx.bytes.size()) {
    ctx.dropped = true;
    ctx.drop_reason = "trailing_bytes";
    return false;
  }
  return true;
}

void Table::add_entry(const std::vector<std::uint64_t>& key,
                      std::string action, std::vector<std::uint64_t> args) {
  entries_[key] = Entry{std::move(action), std::move(args)};
}

void Table::set_default(std::string action, std::vector<std::uint64_t> args) {
  default_ = Entry{std::move(action), std::move(args)};
}

const Table::Entry* Table::lookup(const PacketCtx& ctx) const {
  std::vector<std::uint64_t> key;
  key.reserve(key_fields_.size());
  for (const auto& f : key_fields_) key.push_back(ctx.field(f));
  auto it = entries_.find(key);
  if (it != entries_.end()) return &it->second;
  return default_ ? &*default_ : nullptr;
}

Table& Pipeline::add_table(std::string name,
                           std::vector<std::string> key_fields) {
  tables_.emplace_back(std::move(name), std::move(key_fields));
  return tables_.back();
}

Table* Pipeline::table(const std::string& name) {
  for (auto& t : tables_) {
    if (t.name() == name) return &t;
  }
  return nullptr;
}

void Pipeline::register_action(std::string name, ActionFn fn) {
  actions_[std::move(name)] = std::move(fn);
}

bool Pipeline::process(PacketCtx& ctx) const {
  if (!parser_.parse(ctx)) return false;
  for (const auto& t : tables_) {
    const Table::Entry* entry = t.lookup(ctx);
    if (entry == nullptr) {
      ctx.dropped = true;
      ctx.drop_reason = "table_miss:" + t.name();
      return false;
    }
    auto it = actions_.find(entry->action);
    if (it == actions_.end()) {
      ctx.dropped = true;
      ctx.drop_reason = "unknown_action:" + entry->action;
      return false;
    }
    it->second(ctx, entry->args);
    if (ctx.dropped) return false;
  }
  return true;
}

}  // namespace repro::p4
