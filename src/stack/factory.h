// StackFactory: the one place a StackKind becomes a data path.
//
// A registry keyed by StackKind (compute side) and ServerFamily (server
// side). The five built-in adapters self-register on first use; external
// experiments can override or extend the registry before building a
// cluster (e.g. to wrap a stack with instrumentation).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "stack/stack.h"

namespace repro::stack {

class StackFactory {
 public:
  using ComputeFn =
      std::function<std::unique_ptr<ComputeStack>(StackKind, ComputeContext&)>;
  using ServerFn =
      std::function<std::unique_ptr<ServerStack>(ServerContext&)>;

  /// Process-wide registry, with the built-in adapters pre-registered.
  static StackFactory& instance();

  void register_compute(StackKind kind, ComputeFn fn);
  void register_server(ServerFamily family, ServerFn fn);

  /// Builds the compute-side data path for `kind`. Fatal on unregistered
  /// kinds — a cluster cannot exist without its data path.
  std::unique_ptr<ComputeStack> make_compute(StackKind kind,
                                             ComputeContext ctx) const;
  /// Builds the server-side engine for `family`.
  std::unique_ptr<ServerStack> make_server(ServerFamily family,
                                           ServerContext ctx) const;

 private:
  StackFactory();

  std::map<StackKind, ComputeFn> compute_;
  std::map<ServerFamily, ServerFn> server_;
};

}  // namespace repro::stack
