// The stack abstraction: one compute-side and one server-side interface
// that all five generations implement.
//
// `ComputeStack` is everything a compute node does with an I/O once the
// guest rings the doorbell: the data path (software SA over a byte-stream
// transport, or the fused SOLAR client), core accounting for the Table 1
// "consumed cores" metric, observability registration, and the chaos hooks
// the fault injector drives (CPU stalls, PCIe degradation, FPGA fault
// knobs). `ServerStack` is the matching storage-side engine in front of the
// block server.
//
// Adapters are created through the StackFactory (factory.h); nothing
// outside src/stack branches on StackKind to build or drive a data path.
#pragma once

#include <memory>

#include "common/rng.h"
#include "dpu/dpu.h"
#include "ec/params.h"
#include "obs/resettable.h"
#include "qos/slo.h"
#include "rdma/rdma.h"
#include "sa/agent.h"
#include "sa/crypto.h"
#include "sa/qos_table.h"
#include "sa/segment_table.h"
#include "solar/client.h"
#include "solar/server.h"
#include "stack/kind.h"
#include "storage/block_server.h"
#include "transport/tcp.h"

namespace repro::obs {
class Obs;
}

namespace repro::qos {
class CpuScheduler;
}

namespace repro::stack {

/// Per-fleet stack configuration shared by every node. `ebs::ClusterParams`
/// derives from this, so experiment code keeps writing `params.solar.…`.
struct StackParams {
  bool on_dpu = false;  ///< compute side hosted on ALI-DPU (bare-metal)
  int host_cpu_cores = 8;
  int server_stack_cores = 6;
  dpu::DpuParams dpu;
  sa::SaParams sa;
  solar::SolarParams solar;
  rdma::RdmaParams rdma;
  qos::QosParams qos;
  ec::EcParams ec;
};

/// Everything a compute-side adapter needs from the node that hosts it.
/// `rng` is the node's forked stream; adapters draw sub-streams from it
/// with the same fork indices the pre-refactor wiring used, so homogeneous
/// clusters stay bit-identical.
struct ComputeContext {
  sim::Engine& engine;
  net::Nic& nic;
  sa::SegmentTable& segments;
  sa::QosTable& qos;
  sa::BlockCipher* cipher;
  const StackParams& params;
  Rng rng;
  /// Per-tenant SLO contracts (qos subsystem); null when the fleet runs
  /// without admission control — adapters then skip scheduler creation.
  const qos::SloTable* slos = nullptr;
};

/// Compute-side data path of one stack generation on one node.
class ComputeStack : public obs::Resettable {
 public:
  ~ComputeStack() override = default;

  virtual StackKind kind() const = 0;

  /// Guest-visible I/O submission (the virtio/NVMe doorbell).
  virtual void submit_io(transport::IoRequest io,
                         transport::IoCompleteFn done) = 0;

  /// "Consumed cores" on the compute side over `over` ns (Table 1 metric).
  virtual double consumed_cores(TimeNs over) const = 0;
  virtual void reset_accounting() = 0;

  /// obs::Resettable: warmup resets route through the registry path.
  void reset_counters() override { reset_accounting(); }

  /// Registers this stack's metrics/gauges on `obs` (labels: node=<nic>).
  virtual void register_observables(obs::Obs& obs, net::Nic& nic) = 0;

  // --- chaos hooks (fault injection / repair) --------------------------
  /// Stalls the cores the data path runs on (DPU cores when hosted there).
  virtual void chaos_stall_cores(TimeNs duration) = 0;
  /// Degrades the DPU's internal PCIe by `magnitude`; returns the previous
  /// degradation factor, or 0.0 when the stack has no DPU to degrade.
  virtual double chaos_pcie_degrade(double /*magnitude*/) { return 0.0; }
  /// Restores the internal PCIe to `saved` (0.0 = pristine).
  virtual void chaos_pcie_restore(double /*saved*/) {}
  /// FPGA fault knobs, or nullptr when no FPGA pipeline exists on the node.
  virtual dpu::FpgaFaults* chaos_fpga_faults() { return nullptr; }

  // --- component accessors (experiments, chaos, tests) -----------------
  virtual sim::CpuPool* host_cpu() { return nullptr; }
  virtual dpu::AliDpu* dpu() { return nullptr; }
  virtual solar::SolarClient* solar() { return nullptr; }
  virtual sa::StorageAgent* agent() { return nullptr; }
  /// The tenant-aware WFQ CPU scheduler, when `sched_enabled` built one.
  virtual qos::CpuScheduler* scheduler() { return nullptr; }
  virtual transport::TcpStack* tcp() { return nullptr; }
};

/// Everything a server-side adapter needs from its storage node. `rng` is
/// pre-forked by the node (stream 2 for the first family, 3, 4, … for
/// additional families on heterogeneous fleets).
struct ServerContext {
  sim::Engine& engine;
  net::Nic& nic;
  sim::CpuPool& cpu;
  storage::BlockServer& block_server;
  const StackParams& params;
  /// Storage servers always run the user-space stack server-side once LUNA
  /// shipped; only an all-kernel-TCP fleet runs kernel TCP there too.
  bool kernel_generation;
  Rng rng;
  /// Transport family the EC server wraps (fragments are served by a plain
  /// transport engine; EC logic lives compute-side). Only read when
  /// constructing ServerFamily::kEcServer.
  ServerFamily ec_inner = ServerFamily::kSolar;
};

/// Server-side engine of one stack family in front of the block server.
/// Construction installs the NIC deliver hook; heterogeneous nodes snapshot
/// and demux those hooks by destination port (see ebs::StorageNode).
class ServerStack {
 public:
  virtual ~ServerStack() = default;
  virtual ServerFamily family() const = 0;
};

}  // namespace repro::stack
