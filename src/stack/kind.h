// The five stack generations of the paper's timeline, as data.
//
//   kKernelTcp — SA in software + kernel TCP        (pre-2019)
//   kLuna      — SA in software + user-space TCP    (§3)
//   kRdma      — SA in software + RC RDMA           (the rejected option)
//   kSolarStar — SOLAR protocol, data path on CPU   (§4.7 ablation)
//   kSolar     — SOLAR fully offloaded              (§4)
//
// Everything that needs to branch on a generation goes through this header
// (or the adapters in this directory); the rest of the tree treats a stack
// as an opaque ComputeStack/ServerStack.
#pragma once

#include <cstdint>
#include <string>

namespace repro::stack {

enum class StackKind { kKernelTcp, kLuna, kRdma, kSolarStar, kSolar };

/// Canonical display name: "kernel-tcp", "luna", "rdma", "solar*", "solar".
std::string to_string(StackKind kind);

/// CLI-safe name (no '*' or '-'): "kernel_tcp", ..., "solar_star", "solar".
std::string cli_string(StackKind kind);

/// Inverse of both `to_string` and `cli_string`. Returns false on unknown
/// names and leaves `*out` untouched.
bool stack_from_string(const std::string& name, StackKind* out);

/// SOLAR protocol family (fused SA + transport on the DPU): SOLAR*, SOLAR.
bool solar_family(StackKind kind);

/// Only the fully-offloaded generation pushes payloads through the FPGA
/// pipeline; SOLAR* and the software stacks never touch it.
bool has_fpga_datapath(StackKind kind);

/// Which server-side engine a generation talks to. Kernel TCP and LUNA
/// share the byte-stream server (profile differs), the SOLAR pair shares
/// the one-block-one-packet server. `kEcServer` is the erasure-coding
/// family: fragment storage served through one of the transport families
/// (`ServerContext.ec_inner`), with the compute side striping k+m fragments
/// across servers instead of replicating.
enum class ServerFamily { kTcp, kRdma, kSolar, kEcServer };

inline constexpr int kNumServerFamilies = 4;

ServerFamily server_family(StackKind kind);

/// Display name: "tcp", "rdma", "solar", "ec".
std::string to_string(ServerFamily family);

/// UDP/TCP destination port the family's server listens on — the demux key
/// for heterogeneous storage nodes serving several generations at once.
std::uint16_t server_port(ServerFamily family);

}  // namespace repro::stack
