// The five concrete stack adapters and the factory registry.
//
// Construction preserves the exact RNG fork indices of the pre-refactor
// wiring (dpu=1, solar client=2, tcp/rdma=3 on the compute side; the
// server side receives its stream pre-forked), so homogeneous clusters
// are bit-identical to the old hard-wired composition.
#include "stack/factory.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "obs/obs.h"
#include "qos/scheduler.h"

namespace repro::stack {

namespace {

/// Shared compute-side plumbing: optional host CPU pool + optional DPU,
/// core accounting over both, the DPU-backed chaos hooks, and the
/// cpu/dpu observability block. The original injector drove DPU faults on
/// *any* node with a DPU (including software stacks hosted on one), so the
/// hooks key off the DPU's presence, not the generation.
class ComputeStackBase : public ComputeStack {
 public:
  double consumed_cores(TimeNs over) const override {
    double total = 0.0;
    if (cpu_) total += cpu_->consumed_cores(over);
    if (dpu_) total += dpu_->cpu().consumed_cores(over);
    return total;
  }

  void reset_accounting() override {
    if (cpu_) cpu_->reset_accounting();
    if (dpu_) dpu_->cpu().reset_accounting();
  }

  void register_observables(obs::Obs& obs, net::Nic& nic) override {
    obs::Registry& reg = obs.registry();
    const obs::Labels node = obs::label("node", nic.name());
    if (cpu_) {
      reg.expose_gauge("cpu.busy_ns", node,
                       [c = cpu_.get()]() -> std::int64_t {
                         return c->total_busy_ns();
                       });
      reg.add_resettable(cpu_.get());
    }
    if (dpu_) {
      reg.expose_gauge("dpu.cpu.busy_ns", node,
                       [c = &dpu_->cpu()]() -> std::int64_t {
                         return c->total_busy_ns();
                       });
      reg.expose_gauge("dpu.pcie.bytes", node,
                       [p = &dpu_->internal_pcie()]() -> std::int64_t {
                         return static_cast<std::int64_t>(
                             p->bytes_transferred());
                       });
      reg.expose_gauge("dpu.pcie.backlog_ns", node,
                       [p = &dpu_->internal_pcie()]() -> std::int64_t {
                         return p->backlog();
                       });
      reg.expose_gauge("dpu.guest_dma.bytes", node,
                       [p = &dpu_->guest_dma()]() -> std::int64_t {
                         return static_cast<std::int64_t>(
                             p->bytes_transferred());
                       });
      reg.add_resettable(&dpu_->cpu());
      reg.add_resettable(&dpu_->internal_pcie());
      reg.add_resettable(&dpu_->guest_dma());
    }
    register_stack_observables(obs, nic, reg);
  }

  void chaos_stall_cores(TimeNs duration) override {
    if (dpu_) {
      dpu_->cpu().stall_all(duration);
    } else if (cpu_) {
      cpu_->stall_all(duration);
    }
  }

  double chaos_pcie_degrade(double magnitude) override {
    if (!dpu_) return 0.0;
    const double saved = dpu_->internal_pcie().degrade();
    dpu_->internal_pcie().set_degrade(magnitude);
    return saved;
  }

  void chaos_pcie_restore(double saved) override {
    if (dpu_) dpu_->internal_pcie().set_degrade(saved > 0.0 ? saved : 1.0);
  }

  dpu::FpgaFaults* chaos_fpga_faults() override {
    return dpu_ ? &dpu_->fpga().params().faults : nullptr;
  }

  sim::CpuPool* host_cpu() override { return cpu_.get(); }
  dpu::AliDpu* dpu() override { return dpu_.get(); }

 protected:
  /// Stack-specific metrics after the shared cpu/dpu block (registration
  /// order is part of the export contract).
  virtual void register_stack_observables(obs::Obs& obs, net::Nic& nic,
                                          obs::Registry& reg) = 0;

  std::unique_ptr<sim::CpuPool> cpu_;
  std::unique_ptr<dpu::AliDpu> dpu_;
};

/// SOLAR / SOLAR*: the fused SA + transport on ALI-DPU (§4). SOLAR* is the
/// same protocol with `offload = false` (§4.7 ablation).
class SolarFamilyStack final : public ComputeStackBase {
 public:
  SolarFamilyStack(StackKind kind, ComputeContext& ctx) : kind_(kind) {
    dpu_ = std::make_unique<dpu::AliDpu>(ctx.engine, ctx.params.dpu,
                                         ctx.rng.fork(1));
    solar::SolarParams sp = ctx.params.solar;
    sp.offload = kind == StackKind::kSolar;
    solar_ = std::make_unique<solar::SolarClient>(
        ctx.engine, *dpu_, ctx.nic, ctx.segments, ctx.qos, sp,
        ctx.rng.fork(2));
    // Tenant-aware WFQ over the DPU cores (qos subsystem). Only built when
    // scheduling is on AND the fleet carries SLO contracts — otherwise the
    // client dispatches straight to the pool, bit-identical to before.
    if (ctx.params.qos.enabled && ctx.params.qos.sched_enabled &&
        ctx.slos != nullptr) {
      sched_ = std::make_unique<qos::CpuScheduler>(dpu_->cpu(), *ctx.slos,
                                                   ctx.params.qos);
      solar_->set_cpu_scheduler(sched_.get());
    }
  }

  StackKind kind() const override { return kind_; }

  void submit_io(transport::IoRequest io,
                 transport::IoCompleteFn done) override {
    solar_->submit_io(std::move(io), std::move(done));
  }

  solar::SolarClient* solar() override { return solar_.get(); }
  qos::CpuScheduler* scheduler() override { return sched_.get(); }

 private:
  void register_stack_observables(obs::Obs& obs, net::Nic& nic,
                                  obs::Registry& reg) override {
    (void)obs;
    (void)nic;
    solar_->register_metrics(reg);
  }

  StackKind kind_;
  std::unique_ptr<solar::SolarClient> solar_;
  std::unique_ptr<qos::CpuScheduler> sched_;
};

/// Shared shape of the three software-SA generations: a StorageAgent over
/// an RPC transport, optionally hosted on a DPU — where every payload byte
/// crosses the internal PCIe twice in each direction (Fig. 10 a/b).
class SoftwareStackBase : public ComputeStackBase {
 public:
  void submit_io(transport::IoRequest io,
                 transport::IoCompleteFn done) override {
    if (!pcie_taxed_) {
      agent_->submit_io(std::move(io), std::move(done));
      return;
    }
    auto& pcie = dpu_->internal_pcie();
    const std::uint32_t len = io.len;
    const bool write = io.op == transport::OpType::kWrite;
    auto forward = [this, io = std::move(io), done = std::move(done), len,
                    write]() mutable {
      agent_->submit_io(
          std::move(io),
          [this, done = std::move(done), len, write](transport::IoResult res) {
            if (write) {
              done(std::move(res));
              return;
            }
            auto& pcie2 = dpu_->internal_pcie();
            auto shared = std::make_shared<transport::IoResult>(std::move(res));
            pcie2.transfer(len, [this, shared, done, len]() mutable {
              dpu_->internal_pcie().transfer(len, [shared, done] {
                done(std::move(*shared));
              });
            });
          });
    };
    if (write) {
      pcie.transfer(len, [this, len, forward = std::move(forward)]() mutable {
        dpu_->internal_pcie().transfer(len, std::move(forward));
      });
    } else {
      forward();
    }
  }

  sa::StorageAgent* agent() override { return agent_.get(); }

 protected:
  void register_stack_observables(obs::Obs& obs, net::Nic& nic,
                                  obs::Registry& reg) override {
    agent_->set_obs(&obs, static_cast<std::uint32_t>(nic.id()));
    agent_->register_metrics(reg, nic.name());
  }

  std::unique_ptr<sa::StorageAgent> agent_;
  bool pcie_taxed_ = false;  ///< software stack on DPU: internal PCIe x2
};

/// Kernel TCP / LUNA: one TCP engine parameterized by the cost profile.
class TcpComputeStack final : public SoftwareStackBase {
 public:
  TcpComputeStack(StackKind kind, ComputeContext& ctx) : kind_(kind) {
    const StackParams& p = ctx.params;
    const bool kernel = kind == StackKind::kKernelTcp;
    if (p.on_dpu) {
      dpu_ = std::make_unique<dpu::AliDpu>(ctx.engine, p.dpu, ctx.rng.fork(1));
      pcie_taxed_ = true;
    }
    const int cores = p.on_dpu ? p.dpu.cpu_cores : p.host_cpu_cores;
    // Kernel TCP schedules work across cores with cross-core cost;
    // LUNA is share-nothing by connection/VD hash (§3.2).
    cpu_ = std::make_unique<sim::CpuPool>(
        ctx.engine, "host-cpu", cores,
        kernel ? sim::CpuPool::Dispatch::kLeastLoaded
               : sim::CpuPool::Dispatch::kByHash,
        kernel ? ns(250) : 0);
    tcp_ = std::make_unique<transport::TcpStack>(
        ctx.engine, ctx.nic, *cpu_,
        kernel ? transport::kernel_tcp_profile() : transport::luna_profile(),
        ctx.rng.fork(3));
    agent_ = std::make_unique<sa::StorageAgent>(
        ctx.engine, *cpu_, ctx.segments, ctx.qos, *tcp_, ctx.cipher, p.sa);
  }

  StackKind kind() const override { return kind_; }
  transport::TcpStack* tcp() override { return tcp_.get(); }

 private:
  StackKind kind_;
  std::unique_ptr<transport::TcpStack> tcp_;
};

/// RC RDMA under the software SA (the rejected alternative, §3.1).
class RdmaComputeStack final : public SoftwareStackBase {
 public:
  explicit RdmaComputeStack(ComputeContext& ctx) {
    const StackParams& p = ctx.params;
    if (p.on_dpu) {
      dpu_ = std::make_unique<dpu::AliDpu>(ctx.engine, p.dpu, ctx.rng.fork(1));
      pcie_taxed_ = true;
    }
    const int cores = p.on_dpu ? p.dpu.cpu_cores : p.host_cpu_cores;
    cpu_ = std::make_unique<sim::CpuPool>(ctx.engine, "host-cpu", cores,
                                          sim::CpuPool::Dispatch::kByHash);
    rdma_ = std::make_unique<rdma::RdmaStack>(ctx.engine, ctx.nic, *cpu_,
                                              p.rdma, ctx.rng.fork(3));
    agent_ = std::make_unique<sa::StorageAgent>(
        ctx.engine, *cpu_, ctx.segments, ctx.qos, *rdma_, ctx.cipher, p.sa);
  }

  StackKind kind() const override { return StackKind::kRdma; }

 private:
  std::unique_ptr<rdma::RdmaStack> rdma_;
};

// --- server side -----------------------------------------------------

class TcpServerStack final : public ServerStack {
 public:
  explicit TcpServerStack(ServerContext& ctx) {
    tcp_ = std::make_unique<transport::TcpStack>(
        ctx.engine, ctx.nic, ctx.cpu,
        ctx.kernel_generation ? transport::kernel_tcp_profile()
                              : transport::luna_profile(),
        std::move(ctx.rng));
    tcp_->set_handler(
        [bs = &ctx.block_server](transport::StorageRequest req,
                                 std::function<void(transport::StorageResponse)>
                                     reply) {
          bs->handle(std::move(req), std::move(reply));
        });
  }

  ServerFamily family() const override { return ServerFamily::kTcp; }

 private:
  std::unique_ptr<transport::TcpStack> tcp_;
};

class RdmaServerStack final : public ServerStack {
 public:
  explicit RdmaServerStack(ServerContext& ctx) {
    rdma_ = std::make_unique<rdma::RdmaStack>(ctx.engine, ctx.nic, ctx.cpu,
                                              ctx.params.rdma,
                                              std::move(ctx.rng));
    rdma_->set_handler(
        [bs = &ctx.block_server](transport::StorageRequest req,
                                 std::function<void(transport::StorageResponse)>
                                     reply) {
          bs->handle(std::move(req), std::move(reply));
        });
  }

  ServerFamily family() const override { return ServerFamily::kRdma; }

 private:
  std::unique_ptr<rdma::RdmaStack> rdma_;
};

class SolarServerStack final : public ServerStack {
 public:
  explicit SolarServerStack(ServerContext& ctx) {
    solar_ = std::make_unique<solar::SolarServer>(
        ctx.engine, ctx.nic, ctx.cpu, ctx.block_server,
        solar::SolarServerParams{}, std::move(ctx.rng));
  }

  ServerFamily family() const override { return ServerFamily::kSolar; }

 private:
  std::unique_ptr<solar::SolarServer> solar_;
};

/// EC fragment server: fragments are plain blocks in the node's
/// SegmentStore, served by the wrapped transport family's engine
/// (`ctx.ec_inner`). All EC-specific behavior — striping, parity RMW,
/// degraded decode, rebuild — is compute-side, so the server family only
/// changes the fleet's identity (and replication factor: EC nodes store
/// one copy per fragment).
class EcServerStack final : public ServerStack {
 public:
  explicit EcServerStack(std::unique_ptr<ServerStack> inner)
      : inner_(std::move(inner)) {}

  ServerFamily family() const override { return ServerFamily::kEcServer; }

 private:
  std::unique_ptr<ServerStack> inner_;
};

}  // namespace

StackFactory::StackFactory() {
  auto tcp_compute = [](StackKind kind, ComputeContext& ctx) {
    return std::unique_ptr<ComputeStack>(new TcpComputeStack(kind, ctx));
  };
  auto solar_compute = [](StackKind kind, ComputeContext& ctx) {
    return std::unique_ptr<ComputeStack>(new SolarFamilyStack(kind, ctx));
  };
  register_compute(StackKind::kKernelTcp, tcp_compute);
  register_compute(StackKind::kLuna, tcp_compute);
  register_compute(StackKind::kRdma, [](StackKind, ComputeContext& ctx) {
    return std::unique_ptr<ComputeStack>(new RdmaComputeStack(ctx));
  });
  register_compute(StackKind::kSolarStar, solar_compute);
  register_compute(StackKind::kSolar, solar_compute);

  register_server(ServerFamily::kTcp, [](ServerContext& ctx) {
    return std::unique_ptr<ServerStack>(new TcpServerStack(ctx));
  });
  register_server(ServerFamily::kRdma, [](ServerContext& ctx) {
    return std::unique_ptr<ServerStack>(new RdmaServerStack(ctx));
  });
  register_server(ServerFamily::kSolar, [](ServerContext& ctx) {
    return std::unique_ptr<ServerStack>(new SolarServerStack(ctx));
  });
  register_server(ServerFamily::kEcServer, [](ServerContext& ctx) {
    if (ctx.ec_inner == ServerFamily::kEcServer) {
      std::abort();  // the wrapped family must be a transport family
    }
    auto inner =
        StackFactory::instance().make_server(ctx.ec_inner, std::move(ctx));
    return std::unique_ptr<ServerStack>(new EcServerStack(std::move(inner)));
  });
}

StackFactory& StackFactory::instance() {
  static StackFactory factory;
  return factory;
}

void StackFactory::register_compute(StackKind kind, ComputeFn fn) {
  compute_[kind] = std::move(fn);
}

void StackFactory::register_server(ServerFamily family, ServerFn fn) {
  server_[family] = std::move(fn);
}

std::unique_ptr<ComputeStack> StackFactory::make_compute(
    StackKind kind, ComputeContext ctx) const {
  const auto it = compute_.find(kind);
  if (it == compute_.end()) {
    std::abort();  // a cluster cannot exist without its data path
  }
  return it->second(kind, ctx);
}

std::unique_ptr<ServerStack> StackFactory::make_server(
    ServerFamily family, ServerContext ctx) const {
  const auto it = server_.find(family);
  if (it == server_.end()) {
    std::abort();
  }
  return it->second(ctx);
}

}  // namespace repro::stack
