#include "stack/kind.h"

#include "rdma/rdma.h"
#include "solar/client.h"
#include "transport/tcp.h"

namespace repro::stack {

namespace {

struct Name {
  StackKind kind;
  const char* canonical;
  const char* cli;
};
constexpr Name kNames[] = {
    {StackKind::kKernelTcp, "kernel-tcp", "kernel_tcp"},
    {StackKind::kLuna, "luna", "luna"},
    {StackKind::kRdma, "rdma", "rdma"},
    {StackKind::kSolarStar, "solar*", "solar_star"},
    {StackKind::kSolar, "solar", "solar"},
};

}  // namespace

std::string to_string(StackKind kind) {
  for (const Name& n : kNames) {
    if (n.kind == kind) return n.canonical;
  }
  return "?";
}

std::string cli_string(StackKind kind) {
  for (const Name& n : kNames) {
    if (n.kind == kind) return n.cli;
  }
  return "?";
}

bool stack_from_string(const std::string& name, StackKind* out) {
  for (const Name& n : kNames) {
    if (name == n.canonical || name == n.cli) {
      *out = n.kind;
      return true;
    }
  }
  return false;
}

bool solar_family(StackKind kind) {
  return kind == StackKind::kSolar || kind == StackKind::kSolarStar;
}

bool has_fpga_datapath(StackKind kind) { return kind == StackKind::kSolar; }

ServerFamily server_family(StackKind kind) {
  switch (kind) {
    case StackKind::kKernelTcp:
    case StackKind::kLuna:
      return ServerFamily::kTcp;
    case StackKind::kRdma:
      return ServerFamily::kRdma;
    case StackKind::kSolarStar:
    case StackKind::kSolar:
      return ServerFamily::kSolar;
  }
  return ServerFamily::kTcp;
}

std::string to_string(ServerFamily family) {
  switch (family) {
    case ServerFamily::kTcp: return "tcp";
    case ServerFamily::kRdma: return "rdma";
    case ServerFamily::kSolar: return "solar";
    case ServerFamily::kEcServer: return "ec";
  }
  return "?";
}

std::uint16_t server_port(ServerFamily family) {
  switch (family) {
    case ServerFamily::kTcp: return transport::TcpStack::kServerPort;
    case ServerFamily::kRdma: return rdma::RdmaStack::kServerPort;
    case ServerFamily::kSolar: return solar::SolarClient::kServerPort;
    // The EC family serves fragments through its inner transport family's
    // engine, which listens on that family's port; this value exists only
    // so the demux table stays total.
    case ServerFamily::kEcServer: return 9030;
  }
  return 0;
}

}  // namespace repro::stack
