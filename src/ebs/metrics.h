// Per-experiment metric collection: latency histograms per trace component
// (the Fig. 6 breakdown), throughput and IOPS counters, and the I/O-hang
// detector used by Table 2 / Fig. 8 (an I/O with no response for >= 1 s).
#pragma once

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/units.h"
#include "obs/registry.h"
#include "transport/message.h"

namespace repro::ebs {

class MetricSink {
 public:
  /// Threshold above which an I/O counts as a "hang" (paper: one minute of
  /// no response marks a VM-visible hang; Table 2 counts >= 1 s).
  static constexpr TimeNs kHangThreshold = seconds(1);

  void record(const transport::IoRequest& io, const transport::IoResult& res,
              TimeNs issued_at);

  const Histogram& total() const { return total_; }
  const Histogram& sa() const { return sa_; }
  const Histogram& fn() const { return fn_; }
  const Histogram& bn() const { return bn_; }
  const Histogram& ssd() const { return ssd_; }
  const Histogram& reads() const { return read_total_; }
  const Histogram& writes() const { return write_total_; }

  std::uint64_t ios() const { return ios_; }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t hangs() const { return hangs_; }
  std::uint64_t bytes() const { return bytes_; }

  double iops(TimeNs over) const {
    return over > 0 ? static_cast<double>(ios_) * 1e9 /
                          static_cast<double>(over)
                    : 0.0;
  }
  double throughput_gbps(TimeNs over) const {
    return over > 0 ? static_cast<double>(bytes_) * 8.0 /
                          static_cast<double>(over)
                    : 0.0;
  }
  double throughput_mbps(TimeNs over) const {  // MB/s
    return over > 0 ? static_cast<double>(bytes_) * 1e3 /
                          static_cast<double>(over)
                    : 0.0;
  }

  void clear();

  /// Publishes the sink's histograms and counters on a registry (the
  /// accessors above keep working unchanged — the registry holds
  /// addresses, not copies).
  void register_with(obs::Registry& reg, const obs::Labels& labels);

 private:
  Histogram total_, sa_, fn_, bn_, ssd_, read_total_, write_total_;
  std::uint64_t ios_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t hangs_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace repro::ebs
